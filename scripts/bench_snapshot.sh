#!/usr/bin/env bash
# Solver benchmark snapshot: runs the synchronization-cost ablation
# across the mesh-size trajectory (tiny → medium → large by default,
# ~10³–10⁵·4 unknowns) and distills it into BENCH_solver.json at the
# repo root — median/MAD of the per-GMRES-iteration wall time, regions
# launched per iteration, and serial-anchored speedups for the serial /
# region-per-op / persistent-region / adaptive execution modes.
#
# Every snapshot is ALSO appended (with commit/date/config provenance) to
# the append-only BENCH_history.jsonl, which is what `perf_regress`
# judges new runs against; the append step also evaluates the
# speedup-vs-threads scaling rule on the fresh artifact (export
# FUN3D_PERF_GATE=hard to make a scaling inversion fail this script).
# BENCH_solver.json stays the latest-snapshot view; the history file is
# the trajectory.
#
# Usage: scripts/bench_snapshot.sh [meshes] [reps] [threads]
#        (defaults: tiny,medium,large 3 1,2,4)
set -euo pipefail
cd "$(dirname "$0")/.."

MESHES="${1:-tiny,medium,large}"
REPS="${2:-3}"
THREADS="${3:-1,2,4}"

cargo run --release --offline -q -p fun3d-bench --bin sync_ablation -- \
    --meshes "$MESHES" --reps "$REPS" --threads "$THREADS"

ARTIFACT=target/experiments/sync_ablation.json
if [ ! -f "$ARTIFACT" ]; then
    echo "FAIL: $ARTIFACT not produced" >&2
    exit 1
fi
# Validate before snapshotting (same strict parser as verify.sh).
cargo run --release --offline -q -p fun3d-bench --bin sync_ablation -- --check "$ARTIFACT"

# The snapshot is the ablation artifact plus provenance (commit + date),
# assembled without external JSON tooling: the artifact is a single
# well-formed object, so wrapping it textually is safe.
COMMIT=$(git rev-parse --short HEAD 2>/dev/null || echo unknown)
DATE=$(date -u +%Y-%m-%dT%H:%M:%SZ)
{
    printf '{\n  "commit": "%s",\n  "date": "%s",\n  "ablation": ' "$COMMIT" "$DATE"
    cat "$ARTIFACT"
    printf '\n}\n'
} > BENCH_solver.json

echo "[solver benchmark snapshot written to BENCH_solver.json]"

# Tiled edge-kernel ablation rides the same snapshot: measured effective
# GB/s of tiled vs owner-writes vs serial-best on the same meshes. The
# binary aborts on any equivalence miss before timing, and --check
# validates the artifact; its gbps keys append to the same history
# below.
cargo run --release --offline -q -p fun3d-bench --bin tiled_flux -- \
    --meshes "$MESHES" --threads "$THREADS" --reps "$REPS"
TILED_ARTIFACT=target/experiments/tiled_flux.json
if [ ! -f "$TILED_ARTIFACT" ]; then
    echo "FAIL: $TILED_ARTIFACT not produced" >&2
    exit 1
fi
cargo run --release --offline -q -p fun3d-bench --bin tiled_flux -- --check "$TILED_ARTIFACT"

# Append the distilled metrics (one entry per snapshot, metric keys
# qualified by mesh) to the performance history, evaluate the scaling
# rule on the artifact, and judge the new entry against the baseline
# window (soft gate by default; export FUN3D_PERF_GATE=hard to make a
# regression or scaling inversion fail this script).
cargo run --release --offline -q -p fun3d-bench --bin perf_regress -- \
    --append "$ARTIFACT" --history BENCH_history.jsonl \
    --commit "$COMMIT" --date "$DATE" \
    --config "meshes=$MESHES" --config "reps=$REPS" --config "threads=$THREADS"
cargo run --release --offline -q -p fun3d-bench --bin perf_regress -- \
    --append "$TILED_ARTIFACT" --history BENCH_history.jsonl \
    --commit "$COMMIT" --date "$DATE" \
    --config "meshes=$MESHES" --config "threads=$THREADS"
# Serving tier rides the snapshot too: the load benchmark's cache
# ablation (warm vs cache-off throughput), open-loop latency phases,
# and reject probe. --check enforces the 2x cache floor and the forced
# admission reject before anything is appended.
cargo run --release --offline -q -p fun3d-bench --bin load_gen -- \
    --requests 16 --rates 4,8 --repeats 4
SERVE_ARTIFACT=target/experiments/load_gen.json
if [ ! -f "$SERVE_ARTIFACT" ]; then
    echo "FAIL: $SERVE_ARTIFACT not produced" >&2
    exit 1
fi
cargo run --release --offline -q -p fun3d-bench --bin load_gen -- --check "$SERVE_ARTIFACT"
cargo run --release --offline -q -p fun3d-bench --bin perf_regress -- \
    --append "$SERVE_ARTIFACT" --history BENCH_history.jsonl \
    --commit "$COMMIT" --date "$DATE" --config "rates=4,8"

cargo run --release --offline -q -p fun3d-bench --bin perf_regress -- \
    --history BENCH_history.jsonl

echo "[history appended to BENCH_history.jsonl]"
