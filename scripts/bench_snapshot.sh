#!/usr/bin/env bash
# Solver benchmark snapshot: runs the synchronization-cost ablation and
# distills it into BENCH_solver.json at the repo root — median/MAD of the
# per-GMRES-iteration wall time and regions launched per iteration, for
# the region-per-op and persistent-region execution modes.
#
# Every snapshot is ALSO appended (with commit/date/config provenance) to
# the append-only BENCH_history.jsonl, which is what `perf_regress`
# judges new runs against. BENCH_solver.json stays the latest-snapshot
# view; the history file is the trajectory.
#
# Usage: scripts/bench_snapshot.sh [mesh] [reps]   (defaults: tiny 5)
set -euo pipefail
cd "$(dirname "$0")/.."

MESH="${1:-tiny}"
REPS="${2:-5}"

cargo run --release --offline -q -p fun3d-bench --bin sync_ablation -- --mesh "$MESH" --reps "$REPS"

ARTIFACT=target/experiments/sync_ablation.json
if [ ! -f "$ARTIFACT" ]; then
    echo "FAIL: $ARTIFACT not produced" >&2
    exit 1
fi
# Validate before snapshotting (same strict parser as verify.sh).
cargo run --release --offline -q -p fun3d-bench --bin sync_ablation -- --check "$ARTIFACT"

# The snapshot is the ablation artifact plus provenance (commit + date),
# assembled without external JSON tooling: the artifact is a single
# well-formed object, so wrapping it textually is safe.
COMMIT=$(git rev-parse --short HEAD 2>/dev/null || echo unknown)
DATE=$(date -u +%Y-%m-%dT%H:%M:%SZ)
{
    printf '{\n  "commit": "%s",\n  "date": "%s",\n  "ablation": ' "$COMMIT" "$DATE"
    cat "$ARTIFACT"
    printf '\n}\n'
} > BENCH_solver.json

echo "[solver benchmark snapshot written to BENCH_solver.json]"

# Append the distilled metrics to the performance history and judge the
# new entry against the baseline window (soft gate by default; export
# FUN3D_PERF_GATE=hard to make a regression fail this script).
cargo run --release --offline -q -p fun3d-bench --bin perf_regress -- \
    --append "$ARTIFACT" --history BENCH_history.jsonl \
    --commit "$COMMIT" --date "$DATE" --config "mesh=$MESH" --config "reps=$REPS"
cargo run --release --offline -q -p fun3d-bench --bin perf_regress -- \
    --history BENCH_history.jsonl

echo "[history appended to BENCH_history.jsonl]"
