#!/usr/bin/env bash
# Tier-1 verification for the hermetic workspace.
#
# 1. Guard: every dependency in every manifest must be an in-tree path
#    dependency (directly or via `workspace = true` indirection to the
#    root's path-only [workspace.dependencies]). Any version/git/registry
#    dependency would break the offline build, so it fails the guard
#    before cargo even runs.
# 2. Build + test with `--offline` and an empty-registry assumption.
# 3. Model-check the sync substrate: the fun3d-check suite plus the
#    protocol models compiled under `--cfg fun3d_check`, under a fixed
#    schedule budget; any data race / deadlock / livelock fails. The
#    harness itself is negative-tested: a deliberately racy canary model
#    must make the test binary exit nonzero.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== guard: manifests must contain only path dependencies =="
fail=0
for m in Cargo.toml crates/*/Cargo.toml; do
    # Scan only *dependencies sections; flag entries that neither point at
    # a path nor defer to the (path-only) workspace dependency table.
    bad=$(awk '
        /^\[/ { sect = $0 }
        sect ~ /dependencies/ && !/^\[/ && /=/ && !/^[[:space:]]*#/ {
            if ($0 !~ /path[[:space:]]*=/ && $0 !~ /workspace[[:space:]]*=[[:space:]]*true/)
                print "  " FILENAME ": " $0
        }' "$m")
    if [ -n "$bad" ]; then
        echo "non-path dependency in $m:"
        echo "$bad"
        fail=1
    fi
done
if [ "$fail" -ne 0 ]; then
    echo "FAIL: external dependencies are not allowed (offline build)"
    exit 1
fi
echo "ok: all dependencies are workspace-path crates"

echo "== cargo build --release --offline =="
cargo build --release --offline

echo "== cargo test -q --offline =="
cargo test -q --offline

echo "== model check: fun3d-check self-tests =="
# Fixed schedule budget so the exhaustive searches are deterministic in
# both coverage and runtime, regardless of environment defaults.
export FUN3D_CHECK_BUDGET=400000
cargo test -q --offline -p fun3d-check

echo "== model check: sync-substrate protocols (--cfg fun3d_check) =="
# Separate target dir: the cfg changes the shim types workspace-wide, so
# sharing ./target would thrash the normal build's incremental state.
RUSTFLAGS="--cfg fun3d_check" CARGO_TARGET_DIR=target/check \
    cargo test -q --offline -p fun3d-check -p fun3d-threads -p fun3d-util

echo "== model check: negative canary (a race MUST fail the suite) =="
# Same idiom as the dependency guard above: prove the checker actually
# turns races into failures by running a deliberately racy model and
# requiring a nonzero exit.
if cargo test -q --offline -p fun3d-check --test checker -- \
    --ignored canary_unchecked_race_fails_the_suite >/dev/null 2>&1; then
    echo "FAIL: the racy canary model passed — the checker is not detecting races"
    exit 1
fi
echo "ok: model checker catches the canary race"

echo "== perf_report on the tiny mesh (telemetry + sampler artifacts) =="
# Run the telemetry report end to end — at full detail the sampling
# profiler rides along — then prove every artifact is machine-readable
# with the binary's own strict parsers (--check): the JSON summary (now
# including the measured-vs-model roofline table), the Chrome trace, the
# folded flamegraph text, and the speedscope profile.
cargo run --release --offline -q -p fun3d-bench --bin perf_report -- --mesh tiny --threads 2
for artifact in target/experiments/perf_report.json \
                target/experiments/perf_report.trace.json \
                target/experiments/perf_report.folded \
                target/experiments/perf_report.speedscope.json; do
    if [ ! -f "$artifact" ]; then
        echo "FAIL: missing telemetry artifact $artifact"
        exit 1
    fi
    cargo run --release --offline -q -p fun3d-bench --bin perf_report -- --check "$artifact"
done
echo "ok: telemetry artifacts present and parsable"

echo "== flight recorder: injected faults must dump, clean runs must not =="
# The black-box contract, negative canary first: a clean convergent
# solve must leave no dump. Then two injected failures — a NaN residual
# (anomaly detector) and a worker panic inside a pool region (launcher
# hook) — must each leave a dump that survives the strict validator and
# renders. flight_demo itself exits nonzero if a dump is missing,
# malformed, or unexpectedly present; the explicit --check below proves
# the artifacts validate through the standalone viewer too.
FLIGHT_DIR=target/experiments/verify_flight
rm -rf "$FLIGHT_DIR"
cargo run --release --offline -q -p fun3d-bench --bin flight_demo -- --inject none --dir "$FLIGHT_DIR"
cargo run --release --offline -q -p fun3d-bench --bin flight_demo -- --inject divergence --dir "$FLIGHT_DIR"
# The injected panic's backtrace is expected noise, not a failure.
cargo run --release --offline -q -p fun3d-bench --bin flight_demo -- --inject panic --dir "$FLIGHT_DIR" 2>/dev/null
for trigger in divergence region_panic; do
    artifact="$FLIGHT_DIR/flight.$trigger.json"
    if [ ! -f "$artifact" ]; then
        echo "FAIL: missing flight dump $artifact"
        exit 1
    fi
    cargo run --release --offline -q -p fun3d-bench --bin flight_view -- --check "$artifact"
    cargo run --release --offline -q -p fun3d-bench --bin flight_view -- "$artifact" >/dev/null
done
echo "ok: flight dumps provoked, validated, and renderable; clean run left none"

echo "== sync_ablation across mesh sizes (execution-policy ablation) =="
# Serial / region-per-op / persistent-region / adaptive GMRES on a
# quick two-point size trajectory: the run itself asserts per-op and
# team are bitwise identical and that auto matches whatever scheme it
# selected; --check validates the artifact, the structural claim
# (regions/iteration collapses to ~1 in team mode), and the per-mesh
# scaling section (serial-anchored speedups + crossover verdicts).
cargo run --release --offline -q -p fun3d-bench --bin sync_ablation -- \
    --meshes tiny,small --reps 3
if [ ! -f target/experiments/sync_ablation.json ]; then
    echo "FAIL: missing sync ablation artifact"
    exit 1
fi
cargo run --release --offline -q -p fun3d-bench --bin sync_ablation -- --check target/experiments/sync_ablation.json
echo "ok: sync ablation artifact present and parsable"

echo "== tiled edge kernels (locality tiling gate) =="
# The tiled strategy's standing proof: the binary verifies every timed
# variant (tiled serial + pooled, both exec modes via the staged
# ablation row, owner-writes) against the serial SoA reference *before*
# timing — an equivalence miss exits nonzero here. --check then
# validates the artifact shape: tile-quality invariants (reuse >= 0.5,
# >= 1 tile/color) and finite positive timings for every variant row.
cargo run --release --offline -q -p fun3d-bench --bin tiled_flux -- \
    --meshes tiny,small --threads 1,2 --reps 3
if [ ! -f target/experiments/tiled_flux.json ]; then
    echo "FAIL: missing tiled_flux artifact"
    exit 1
fi
cargo run --release --offline -q -p fun3d-bench --bin tiled_flux -- --check target/experiments/tiled_flux.json
echo "ok: tiled kernels agree with the serial reference; artifact parsable"

echo "== perf history + scaling gate (perf_regress) =="
# Detector self-check first: a synthetic history with an injected 3x
# slowdown AND a synthetic mesh where threads run slower than serial
# above the crossover (the thread-scaling inversion) must both be
# flagged, and under a hard gate those flags must turn into a nonzero
# exit (negative canary, same idiom as the model-check one above).
cargo run --release --offline -q -p fun3d-bench --bin perf_regress -- --self-test
if FUN3D_PERF_GATE=hard cargo run --release --offline -q -p fun3d-bench \
    --bin perf_regress -- --self-test >/dev/null 2>&1; then
    echo "FAIL: hard gate did not fail on the injected slowdown/inversion canaries"
    exit 1
fi
echo "ok: perf_regress detects the injected regressions and the hard gate fails on them"
# Then the real pipeline on a throwaway history: three appends of the
# ablation artifact just produced (identical entries — a flat baseline),
# judged under both gates. Identical snapshots must never trip the
# gate, and the fresh snapshot must pass the scaling rule under a HARD
# gate: above the crossover threads>1 must beat serial (on machines
# where no crossover exists the rule is vacuous by construction —
# parallel execution is never modeled to win, and Auto runs serial).
PERF_HIST=target/experiments/verify_history.jsonl
rm -f "$PERF_HIST"
for i in 1 2 3; do
    FUN3D_PERF_GATE=hard cargo run --release --offline -q -p fun3d-bench --bin perf_regress -- \
        --append target/experiments/sync_ablation.json --history "$PERF_HIST" \
        --commit "verify-$i" --date "verify" --config meshes=tiny,small >/dev/null
    # The tiled artifact rides the same history: its higher-is-better
    # gbps keys (e.g. small.flux_tiled.gbps@2t) exercise the bandwidth
    # orientation in perfdb under the hard gate.
    FUN3D_PERF_GATE=hard cargo run --release --offline -q -p fun3d-bench --bin perf_regress -- \
        --append target/experiments/tiled_flux.json --history "$PERF_HIST" \
        --commit "verify-$i" --date "verify" >/dev/null
done
cargo run --release --offline -q -p fun3d-bench --bin perf_regress -- --history "$PERF_HIST"
FUN3D_PERF_GATE=hard cargo run --release --offline -q -p fun3d-bench \
    --bin perf_regress -- --history "$PERF_HIST"
# The repo-level history, when present, is judged as a soft gate (export
# FUN3D_PERF_GATE=hard locally to enforce it).
if [ -f BENCH_history.jsonl ]; then
    cargo run --release --offline -q -p fun3d-bench --bin perf_regress -- \
        --history BENCH_history.jsonl
fi
echo "ok: perf history gate wired"

echo "== serve tier (fun3d-serve + load_gen) =="
# Service smoke over the NDJSON stdin transport: two good requests (the
# second must be an artifact-cache hit) and one malformed request that
# must come back as a structured bad_request rejection, not a crash.
SERVE_OUT=$(printf '%s\n' \
    '{"tenant":"verify","mesh":"tiny","max_steps":2,"rtol":1e-2}' \
    '{"tenant":"verify","mesh":"tiny","max_steps":2,"rtol":1e-2}' \
    '{"tenant":"verify","mesh":"not-a-mesh"}' \
    | cargo run --release --offline -q -p fun3d-serve --bin serve -- --teams 1 --team-threads 1 2>/dev/null)
for needle in '"ok":true' '"cache":"app+factor"' '"reason":"bad_request"'; do
    if ! grep -qF "$needle" <<<"$SERVE_OUT"; then
        echo "FAIL: serve stdin smoke missing $needle"
        echo "$SERVE_OUT"
        exit 1
    fi
done
echo "ok: serve NDJSON transport answers, caches repeats, rejects bad requests"

# Load benchmark smoke: open-loop phases must all succeed at the lowest
# rate, the reject probe must observe at least one forced admission
# reject, and the artifact's cache ablation must clear the 2x floor —
# all enforced by the strict --check validator.
cargo run --release --offline -q -p fun3d-bench --bin load_gen -- \
    --requests 12 --rates 4,8 --repeats 4
if [ ! -f target/experiments/load_gen.json ]; then
    echo "FAIL: missing load_gen artifact"
    exit 1
fi
cargo run --release --offline -q -p fun3d-bench --bin load_gen -- --check target/experiments/load_gen.json
# Negative canary for the validator: a load_gen artifact whose cache
# speedup is below the floor must FAIL the check.
sed 's/"speedup": *[0-9.]*/"speedup": 1.1/' target/experiments/load_gen.json \
    > target/experiments/load_gen_bad.json
if cargo run --release --offline -q -p fun3d-bench --bin load_gen -- \
    --check target/experiments/load_gen_bad.json >/dev/null 2>&1; then
    echo "FAIL: load_gen --check accepted a sub-2x cache speedup"
    exit 1
fi
rm -f target/experiments/load_gen_bad.json
# The serving metrics ride the throwaway history under the hard gate:
# rps / p50 / p99 / hit-rate keys — and the service's own serve.live.*
# percentiles — must append and judge cleanly.
FUN3D_PERF_GATE=hard cargo run --release --offline -q -p fun3d-bench --bin perf_regress -- \
    --append target/experiments/load_gen.json --history "$PERF_HIST" \
    --commit "verify-serve" --date "verify" >/dev/null
if ! grep -q 'serve\.live\.' "$PERF_HIST"; then
    echo "FAIL: load_gen append carried no serve.live.* keys"
    exit 1
fi
echo "ok: serve load benchmark gated (2x cache floor, forced reject, history append)"

echo "== live metrics plane (stats command, metrics socket, metrics_view) =="
# In-band stats: a solve followed by {"cmd":"stats"} must answer one
# stats line whose embedded snapshot validates strictly, with live
# per-tenant percentiles for the tenant just served.
METRICS_DIR=target/experiments/verify_metrics
rm -rf "$METRICS_DIR"
mkdir -p "$METRICS_DIR"
STATS_OUT=$(printf '%s\n' \
    '{"tenant":"verify","mesh":"tiny","max_steps":2,"rtol":1e-2}' \
    '{"cmd":"stats"}' \
    | cargo run --release --offline -q -p fun3d-serve --bin serve -- --teams 1 --team-threads 1 2>/dev/null)
# The one-shot pipe races stats against the solve, so this smoke checks
# structure only; the live per-tenant numbers are asserted on the
# fifo-held service below, where ordering is controlled.
for needle in '"kind":"stats"' '"schema":"fun3d.metrics.v1"'; do
    if ! grep -qF "$needle" <<<"$STATS_OUT"; then
        echo "FAIL: stats reply missing $needle"
        echo "$STATS_OUT"
        exit 1
    fi
done

# Out-of-band metrics socket: hold a serve process open on a fifo, let
# it finish one solve, then fetch + strictly validate both expositions
# through metrics_view, and keep the JSON snapshot for the canary.
METRICS_SOCK=$METRICS_DIR/metrics.sock
FIFO=$METRICS_DIR/stdin.fifo
mkfifo "$FIFO"
cargo run --release --offline -q -p fun3d-serve --bin serve -- \
    --metrics-socket "$METRICS_SOCK" --teams 1 --team-threads 1 \
    < "$FIFO" > "$METRICS_DIR/serve.out" 2>/dev/null &
SERVE_PID=$!
exec 9> "$FIFO"
printf '%s\n' '{"tenant":"verify","mesh":"tiny","max_steps":2,"rtol":1e-2}' >&9
# Wait for the solve's reply so the snapshot below has live data.
for _ in $(seq 1 100); do
    grep -q '"ok":true' "$METRICS_DIR/serve.out" 2>/dev/null && break
    sleep 0.2
done
# Now the solve is done: an in-band stats request must answer with live
# per-tenant p50/p99 and the stage histograms (the acceptance claim).
printf '%s\n' '{"cmd":"stats"}' >&9
for _ in $(seq 1 100); do
    grep -q '"kind":"stats"' "$METRICS_DIR/serve.out" 2>/dev/null && break
    sleep 0.2
done
LIVE_STATS=$(grep '"kind":"stats"' "$METRICS_DIR/serve.out")
for needle in '"verify":{"count":1' '"p50_ms":' '"p99_ms":' '"cache_hit_rate":' 'serve.total_ns'; do
    if ! grep -qF "$needle" <<<"$LIVE_STATS"; then
        echo "FAIL: live stats reply missing $needle"
        echo "$LIVE_STATS"
        exit 1
    fi
done
cargo run --release --offline -q -p fun3d-bench --bin metrics_view -- --socket "$METRICS_SOCK" --check
cargo run --release --offline -q -p fun3d-bench --bin metrics_view -- --socket "$METRICS_SOCK" --prom --check
cargo run --release --offline -q -p fun3d-bench --bin metrics_view -- --socket "$METRICS_SOCK" \
    > "$METRICS_DIR/rendered.txt"
if ! grep -q 'serve\.tenant\.verify\.total_ns' "$METRICS_DIR/rendered.txt"; then
    echo "FAIL: live snapshot missing the per-tenant stage histogram"
    exit 1
fi
# Save the JSON snapshot, close the service, and validate the file path.
python3 - "$METRICS_SOCK" "$METRICS_DIR/snapshot.json" <<'EOF' 2>/dev/null || \
    SNAP_FALLBACK=1
import socket, sys
s = socket.socket(socket.AF_UNIX)
s.connect(sys.argv[1])
s.sendall(b"json\n")
buf = b""
while True:
    chunk = s.recv(65536)
    if not chunk:
        break
    buf += chunk
open(sys.argv[2], "wb").write(buf)
EOF
if [ "${SNAP_FALLBACK:-0}" = "1" ]; then
    # No python3 in the container: the stats command's embedded snapshot
    # is the same artifact.
    grep '"kind":"stats"' <<<"$STATS_OUT" | sed 's/.*"metrics"://; s/}}$/}/' \
        > "$METRICS_DIR/snapshot.json"
fi
exec 9>&-
wait "$SERVE_PID"
rm -f "$FIFO"
cargo run --release --offline -q -p fun3d-bench --bin metrics_view -- --check "$METRICS_DIR/snapshot.json"
# Negative canary: corrupt the snapshot (a bucket count goes negative)
# and the strict validator must reject it.
sed 's/"count":[0-9]*/"count":-3/' "$METRICS_DIR/snapshot.json" \
    > "$METRICS_DIR/snapshot_bad.json"
if cargo run --release --offline -q -p fun3d-bench --bin metrics_view -- \
    --check "$METRICS_DIR/snapshot_bad.json" >/dev/null 2>&1; then
    echo "FAIL: metrics_view --check accepted a corrupted snapshot"
    exit 1
fi
rm -f "$METRICS_DIR/snapshot_bad.json"
# Bounded-error acceptance: the randomized property pitting histogram
# quantiles against exact sorted percentiles (one log-bucket tolerance).
cargo test -q --offline --release -p fun3d-util --lib quantiles_bounded_error >/dev/null
echo "ok: live metrics plane answers, validates, and rejects corruption"

echo "verify: OK"
