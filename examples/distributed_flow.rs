//! The distributed nonlinear application end-to-end: the same wing-bump
//! flow as `quickstart`, but solved by rank-parallel ΨNKS with real halo
//! exchanges and allreduces (the execution model of the paper's
//! multi-node study), and compared against the serial solution.
//!
//! ```sh
//! cargo run --release --example distributed_flow
//! ```

use fun3d_cluster::dapp::{solve, GlobalSetup, RankApp};
use fun3d_cluster::Universe;
use fun3d_core::{Fun3dApp, FlowConditions, OptConfig};
use fun3d_mesh::generator::MeshPreset;
use fun3d_solver::ptc::PtcConfig;

fn main() {
    let mut mesh = MeshPreset::Small.build();
    Fun3dApp::rcm_reorder(&mut mesh);
    println!(
        "mesh: {} vertices / {} edges",
        mesh.nvertices(),
        mesh.edges().len()
    );

    // serial reference
    let mut app = Fun3dApp::new(mesh.clone(), FlowConditions::default(), OptConfig::baseline());
    let (u_serial, s) = app.run(&PtcConfig {
        dt0: 2.0,
        rtol: 1e-8,
        max_steps: 80,
        ..Default::default()
    });
    println!(
        "serial:      {} steps, {} linear iterations",
        s.time_steps, s.linear_iters
    );

    for nranks in [2usize, 4] {
        let setup = GlobalSetup::new(mesh.clone(), FlowConditions::default(), nranks);
        let setup_ref = &setup;
        let results = Universe::run(nranks, move |comm| {
            let mut rank_app = RankApp::new(setup_ref, comm.rank());
            let (u, stats) = solve(&comm, &mut rank_app, 2.0, 1e-8, 80, 1);
            (rank_app.sub.owned.clone(), u, stats)
        });
        let mut u_dist = vec![0.0; mesh.nvertices() * 4];
        let mut steps = 0;
        let mut iters = 0;
        for (owned, u, stats) in results {
            assert!(stats.converged, "a rank failed to converge");
            steps = stats.time_steps;
            iters = stats.linear_iters;
            for (l, &g) in owned.iter().enumerate() {
                u_dist[g as usize * 4..g as usize * 4 + 4]
                    .copy_from_slice(&u[l * 4..l * 4 + 4]);
            }
        }
        let diff: f64 = u_serial
            .iter()
            .zip(&u_dist)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            .sqrt();
        let norm: f64 = u_serial.iter().map(|v| v * v).sum::<f64>().sqrt();
        println!(
            "{nranks} ranks:     {steps} steps, {iters} linear iterations, \
             |u_dist - u_serial|/|u| = {:.2e}",
            diff / norm
        );
    }
    println!("\nThe distributed solver walks the same pseudo-transient path and");
    println!("lands on the same flow — through genuine message passing.");
}
