//! Distributed solve demo: domain decomposition + in-process "MPI" ranks
//! + block-Jacobi ILU GMRES, with the Schwarz convergence degradation
//! the paper discusses made visible.
//!
//! ```sh
//! cargo run --release --example distributed_solve
//! ```

use fun3d_cluster::dsolve::{gmres, DistSystem};
use fun3d_cluster::{Decomposition, Universe};
use fun3d_mesh::generator::MeshPreset;
use fun3d_sparse::Bcsr4;

fn main() {
    // A block-sparse system on the mesh's vertex-neighbor pattern — the
    // same shape as the first-order Jacobian.
    let mesh = MeshPreset::Small.build();
    let edges = mesh.edges();
    let nv = mesh.nvertices();
    let mut a = Bcsr4::from_edges(nv, &edges);
    a.fill_diag_dominant(2024);
    let n = a.dim();
    let xref: Vec<f64> = (0..n).map(|i| (i as f64 * 0.13).sin()).collect();
    let mut b = vec![0.0; n];
    a.spmv(&xref, &mut b);
    println!("system: {} block rows ({} unknowns), {} blocks\n", a.nrows(), n, a.nblocks());
    println!("{:>6} {:>12} {:>12} {:>14}", "ranks", "iterations", "rel. error", "halo doubles");

    for nranks in [1usize, 2, 4, 8] {
        let decomp = Decomposition::build(nv, &edges, nranks);
        let subs = decomp.subdomains.clone();
        let a_ref = &a;
        let b_ref = &b;
        let results = Universe::run(nranks, move |comm| {
            let sub = subs[comm.rank()].clone();
            let halo = sub.halo_doubles();
            let sys = DistSystem::new(a_ref, sub, 0);
            let blocal: Vec<f64> = sys
                .sub
                .owned
                .iter()
                .flat_map(|&g| b_ref[g as usize * 4..g as usize * 4 + 4].to_vec())
                .collect();
            let mut x = vec![0.0; sys.nowned()];
            let res = gmres(&comm, &sys, &blocal, &mut x, 30, 1e-10, 1000);
            (sys.sub.owned.clone(), x, res.iterations, halo)
        });

        // stitch the global solution and evaluate the error
        let mut xg = vec![0.0; n];
        let mut iters = 0;
        let mut halo_total = 0;
        for (owned, x, it, halo) in results {
            iters = it;
            halo_total += halo;
            for (l, &g) in owned.iter().enumerate() {
                xg[g as usize * 4..g as usize * 4 + 4].copy_from_slice(&x[l * 4..l * 4 + 4]);
            }
        }
        let err = xg
            .iter()
            .zip(&xref)
            .map(|(p, q)| (p - q) * (p - q))
            .sum::<f64>()
            .sqrt()
            / xref.iter().map(|v| v * v).sum::<f64>().sqrt();
        println!("{nranks:>6} {iters:>12} {err:>12.2e} {halo_total:>14}");
    }
    println!("\nNote how iterations grow with subdomain count: the single-level");
    println!("additive-Schwarz degradation behind the paper's +30% at 256 nodes.");
}
