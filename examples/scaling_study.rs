//! Strong-scaling study: simulate the paper's 256-node Stampede sweep
//! for all three execution styles from real decompositions of a local
//! mesh plus the calibrated machine/network model.
//!
//! ```sh
//! cargo run --release --example scaling_study
//! ```

use fun3d_cluster::scaling::{simulate_point, ExecStyle, ScalingConfig, SurfaceModel};
use fun3d_machine::{MachineSpec, NetworkSpec};
use fun3d_mesh::generator::MeshPreset;

fn main() {
    let mesh = MeshPreset::Small.build();
    let machine = MachineSpec::xeon_e5_2680();
    let net = NetworkSpec::stampede_fdr();
    let sm = SurfaceModel::calibrate(mesh.nvertices(), &mesh.edges(), 8);
    const MESH_D_VERTS: f64 = 2.76e6;

    println!("machine: {} | network: FDR fat tree", machine.name);
    println!(
        "\n{:>6} {:>12} {:>12} {:>12} {:>8} {:>10}",
        "nodes", "baseline(s)", "optimized(s)", "hybrid(s)", "comm%", "iters"
    );
    for nodes in [1usize, 4, 16, 64, 256] {
        let styles = [ExecStyle::Baseline, ExecStyle::Optimized, ExecStyle::Hybrid];
        let mut totals = [0.0f64; 3];
        let mut commfrac = 0.0;
        let mut iters = 0.0;
        for (k, style) in styles.into_iter().enumerate() {
            let cfg = ScalingConfig::mesh_d(style);
            let w = sm.workload(nodes * cfg.ranks_per_node(), MESH_D_VERTS, 2.0);
            let p = simulate_point(&machine, &net, &cfg, nodes, &w);
            totals[k] = p.total_s;
            if style == ExecStyle::Optimized {
                commfrac = p.comm_fraction();
                iters = p.linear_iters;
            }
        }
        println!(
            "{nodes:>6} {:>12.2} {:>12.2} {:>12.2} {:>7.0}% {:>10.0}",
            totals[0],
            totals[1],
            totals[2],
            100.0 * commfrac,
            iters
        );
    }
    println!("\nShapes to compare with the paper: optimized < hybrid < baseline at");
    println!("every node count; communication fraction climbing toward ~70% at 256");
    println!("nodes; linear iterations creeping up ~30% for the MPI-only styles.");
}
