//! Kernel tuning walk-through: the paper's Section V optimizations, one
//! at a time, on the edge-based flux kernel — with live verification
//! that every variant produces the same residual.
//!
//! ```sh
//! cargo run --release --example kernel_tuning
//! ```

use fun3d_core::geom::NodeSoa;
use fun3d_core::{flux, EdgeGeom, FlowConditions, NodeAos};
use fun3d_mesh::generator::MeshPreset;
use fun3d_mesh::DualMesh;
use fun3d_partition::{natural_partition, partition_graph, MultilevelConfig, OwnerWritesPlan};
use fun3d_threads::ThreadPool;
use fun3d_util::Timer;

fn time_variant(name: &str, reference: Option<&[f64]>, mut run: impl FnMut(&mut [f64]), n4: usize) -> Vec<f64> {
    let mut res = vec![0.0; n4];
    run(&mut res); // warm-up + correctness sample
    let t = Timer::start();
    let reps = 5;
    for _ in 0..reps {
        res.iter_mut().for_each(|x| *x = 0.0);
        run(&mut res);
    }
    let secs = t.seconds() / reps as f64;
    let check = match reference {
        None => "reference".to_string(),
        Some(r) => {
            let max_err = r
                .iter()
                .zip(&res)
                .map(|(a, b)| (a - b).abs())
                .fold(0.0, f64::max);
            format!("max |Δ| vs reference = {max_err:.2e}")
        }
    };
    println!("{name:<42} {secs:>10.6} s   {check}");
    res
}

fn main() {
    let mut mesh = MeshPreset::Medium.build();
    fun3d_core::Fun3dApp::rcm_reorder(&mut mesh);
    let dual = DualMesh::build(&mesh);
    let geom = EdgeGeom::build(&mesh, &dual);
    let cond = FlowConditions::default();
    let mut node = NodeAos::zeros(mesh.nvertices());
    node.set_freestream(&cond.qinf);
    let mut rng = fun3d_util::Rng64::new(3);
    for x in node.q.iter_mut() {
        *x += rng.range_f64(-0.05, 0.05);
    }
    let bc = fun3d_core::bc::BcData::build(&dual);
    fun3d_core::gradient::green_gauss(&geom, &bc, &dual.vol, &mut node);
    let soa = NodeSoa::from_aos(&node);
    let n4 = node.n * 4;
    println!(
        "mesh: {} vertices, {} edges\n",
        mesh.nvertices(),
        geom.nedges()
    );

    let reference = time_variant(
        "scalar, SoA node data (baseline)",
        None,
        |res| flux::serial_soa(&geom, &soa, cond.beta, res),
        n4,
    );
    time_variant(
        "scalar, AoS node data",
        Some(&reference),
        |res| flux::serial_aos(&geom, &node, cond.beta, res),
        n4,
    );
    time_variant(
        "AoS + SIMD 4-edge batching",
        Some(&reference),
        |res| flux::serial_aos_simd(&geom, &node, cond.beta, res),
        n4,
    );
    time_variant(
        "AoS + SIMD + software prefetch",
        Some(&reference),
        |res| flux::serial_aos_simd_prefetch(&geom, &node, cond.beta, res),
        n4,
    );

    // Threaded strategies (2 workers; this container has one core, so
    // these demonstrate correctness, not speed).
    let nt = 2;
    let pool = ThreadPool::new(nt);
    let nat_plan = OwnerWritesPlan::build(&geom.edges, &natural_partition(node.n, nt), nt);
    time_variant(
        "threaded: atomics (natural edge split)",
        Some(&reference),
        |res| flux::atomics(&pool, &geom, &node, cond.beta, res),
        n4,
    );
    println!(
        "  natural owner-writes replication overhead: {:.1}%",
        100.0 * nat_plan.replication_overhead()
    );
    time_variant(
        "threaded: owner-writes (natural split)",
        Some(&reference),
        |res| flux::owner_writes(&pool, &nat_plan, &geom, &node, cond.beta, res),
        n4,
    );
    let graph = fun3d_mesh::Graph::from_edges(node.n, &geom.edges);
    let ml_plan = OwnerWritesPlan::build(
        &geom.edges,
        &partition_graph(&graph, nt, &MultilevelConfig::default()),
        nt,
    );
    println!(
        "  multilevel owner-writes replication overhead: {:.1}%",
        100.0 * ml_plan.replication_overhead()
    );
    time_variant(
        "threaded: owner-writes (multilevel) + SIMD",
        Some(&reference),
        |res| flux::owner_writes_opt(&pool, &ml_plan, &geom, &node, cond.beta, res),
        n4,
    );
}
