//! Quickstart: generate a mesh, solve the flow, inspect the profile.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use fun3d_core::{Fun3dApp, FlowConditions, OptConfig};
use fun3d_mesh::generator::MeshPreset;
use fun3d_mesh::stats::MeshStats;
use fun3d_solver::ptc::PtcConfig;

fn main() {
    // 1. Generate a synthetic wing-bump channel mesh (the stand-in for
    //    the paper's ONERA M6 meshes) and restore locality with RCM.
    let mut mesh = MeshPreset::Small.build();
    println!("generated:  {}", MeshStats::of(&mesh));
    Fun3dApp::rcm_reorder(&mut mesh);
    println!("after RCM:  {}", MeshStats::of(&mesh));

    // 2. Build the application — incompressible Euler with artificial
    //    compressibility, pseudo-transient Newton-Krylov-Schwarz — in its
    //    fully optimized single-node configuration.
    let cfg = OptConfig::optimized(2);
    let mut app = Fun3dApp::new(mesh, FlowConditions::default(), cfg);

    // 3. March to steady state.
    let (state, stats) = app.run(&PtcConfig {
        dt0: 2.0,
        rtol: 1e-8,
        max_steps: 100,
        ..Default::default()
    });
    println!(
        "\nconverged: {} in {} pseudo-time steps / {} linear iterations",
        stats.converged, stats.time_steps, stats.linear_iters
    );
    println!(
        "residual drop: {:.2e} -> {:.2e}",
        stats.res_history.first().unwrap(),
        stats.res_history.last().unwrap()
    );

    // 4. Physics sanity: peak pressure perturbation over the bump.
    let p_max = (0..state.len() / 4)
        .map(|v| state[v * 4])
        .fold(f64::MIN, f64::max);
    println!("peak pressure coefficient-ish value: {p_max:.4}");

    // 5. The per-kernel profile (the paper's Fig. 5 instrument).
    println!("\n{}", app.profile().report());
}
