//! Property tests for the tiled (cache-blocked) edge-kernel strategy:
//! on random meshes and random scratch budgets, tiled flux and gradient
//! agree with the streaming serial kernels to rounding, the pooled
//! drivers are *bitwise* equal to their serial tiled counterparts at
//! every thread count (inter-tile coloring fixes the accumulation
//! order), and the two execution modes — scratch-pad `Staged` and
//! gather-in-place `Direct` — are bitwise interchangeable.
//!
//! Runs on the in-tree `fun3d_util::proptest_mini` harness; failures
//! print a `FUN3D_PROP_SEED` that replays deterministically.

use fun3d_core::flux::TileExec;
use fun3d_core::geom::{EdgeGeom, NodeAos, NodeSoa};
use fun3d_core::{flux, gradient, FlowConditions, TiledGeom};
use fun3d_mesh::generator::ChannelSpec;
use fun3d_mesh::DualMesh;
use fun3d_partition::{EdgeTiling, TilingConfig};
use fun3d_threads::ThreadPool;
use fun3d_util::{prop_assert, prop_assert_eq, prop_cases};

struct Fixture {
    geom: EdgeGeom,
    node: NodeAos,
    bc: fun3d_core::bc::BcData,
    vol: Vec<f64>,
}

fn random_fixture(seed: u64, jitter: f64, amp: f64) -> Fixture {
    let mut spec = ChannelSpec::with_resolution(6, 5, 4);
    spec.seed = seed;
    spec.jitter = jitter;
    let mesh = spec.build();
    let dual = DualMesh::build(&mesh);
    let geom = EdgeGeom::build(&mesh, &dual);
    let cond = FlowConditions::default();
    let mut node = NodeAos::zeros(mesh.nvertices());
    node.set_freestream(&cond.qinf);
    let mut rng = fun3d_util::Rng64::new(seed ^ 0x7155);
    for x in node.q.iter_mut() {
        *x += rng.range_f64(-amp, amp);
    }
    let bc = fun3d_core::bc::BcData::build(&dual);
    gradient::green_gauss(&geom, &bc, &dual.vol, &mut node);
    Fixture { geom, node, bc, vol: dual.vol }
}

fn close(a: &[f64], b: &[f64], tol: f64) -> Result<(), String> {
    let scale = a.iter().map(|x| x.abs()).fold(0.0, f64::max).max(1.0);
    for i in 0..a.len() {
        if (a[i] - b[i]).abs() > tol * scale {
            return Err(format!("entry {i}: {} vs {}", a[i], b[i]));
        }
    }
    Ok(())
}

prop_cases! {
    fn tiled_flux_agrees_with_serial(g, cases = 10) {
        let seed = g.u64();
        let jitter = g.f64_range(0.0, 0.3);
        let amp = g.f64_range(0.0, 0.4);
        // Budgets from degenerate (single-edge tiles) through realistic
        // to whole-mesh-in-one-tile.
        let budget = [1usize, 2048, 64 * 1024, usize::MAX][g.usize_range(0, 4)];
        let nthreads = g.usize_range(1, 5);

        let fix = random_fixture(seed, jitter, amp);
        let n4 = fix.node.n * 4;
        let soa = NodeSoa::from_aos(&fix.node);
        let mut reference = vec![0.0; n4];
        flux::serial_soa(&fix.geom, &soa, 1.0, &mut reference);

        let tiling = EdgeTiling::build(
            fix.node.n,
            &fix.geom.edges,
            &TilingConfig::with_target_bytes(budget),
        );
        let tg = TiledGeom::new(&tiling, &fix.geom);

        // Serial tiled, staged exec: ULP-level agreement with the
        // streaming reference (edge order is permuted, so not bitwise).
        let mut staged = vec![0.0; n4];
        flux::tiled(&tiling, &tg, &fix.node, 1.0, TileExec::Staged, &mut staged);
        prop_assert!(close(&reference, &staged, 1e-11).is_ok());

        // Direct exec runs the same arithmetic in the same order
        // without the scratch copy: bitwise equal to staged.
        let mut direct = vec![0.0; n4];
        flux::tiled(&tiling, &tg, &fix.node, 1.0, TileExec::Direct, &mut direct);
        prop_assert_eq!(&staged, &direct, "staged vs direct must be bitwise equal");

        // Pooled tiled: the inter-tile coloring pins the accumulation
        // order, so any thread count is bitwise equal to serial tiled.
        let pool = ThreadPool::new(nthreads);
        for exec in [TileExec::Staged, TileExec::Direct] {
            let mut pooled = vec![0.0; n4];
            flux::tiled_pooled(&pool, &tiling, &tg, &fix.node, 1.0, exec, &mut pooled);
            prop_assert_eq!(&staged, &pooled, "pooled must be bitwise equal to serial");
        }
    }

    fn tiled_gradient_agrees_with_serial(g, cases = 10) {
        let seed = g.u64();
        let jitter = g.f64_range(0.0, 0.3);
        let amp = g.f64_range(0.0, 0.4);
        let budget = [1usize, 2048, 64 * 1024, usize::MAX][g.usize_range(0, 4)];
        let nthreads = g.usize_range(1, 5);

        let fix = random_fixture(seed, jitter, amp);
        let mut reference = fix.node.clone();
        gradient::green_gauss(&fix.geom, &fix.bc, &fix.vol, &mut reference);

        let tiling = EdgeTiling::build(
            fix.node.n,
            &fix.geom.edges,
            &TilingConfig::with_target_bytes(budget),
        );
        let tg = TiledGeom::new(&tiling, &fix.geom);

        let mut staged = fix.node.clone();
        gradient::green_gauss_tiled(&tiling, &tg, &fix.bc, &fix.vol, TileExec::Staged, &mut staged);
        prop_assert!(close(&reference.grad, &staged.grad, 1e-11).is_ok());

        let mut direct = fix.node.clone();
        gradient::green_gauss_tiled(&tiling, &tg, &fix.bc, &fix.vol, TileExec::Direct, &mut direct);
        prop_assert_eq!(&staged.grad, &direct.grad, "staged vs direct gradient");

        let pool = ThreadPool::new(nthreads);
        for exec in [TileExec::Staged, TileExec::Direct] {
            let mut pooled = fix.node.clone();
            gradient::green_gauss_tiled_pooled(
                &pool, &tiling, &tg, &fix.bc, &fix.vol, exec, &mut pooled,
            );
            prop_assert_eq!(&staged.grad, &pooled.grad, "pooled gradient bitwise");
        }
    }
}
