//! Property tests: every optimization variant of every kernel computes
//! the same answer as its scalar reference, over random states and
//! geometries — the contract that makes the paper's "optimizations" pure
//! performance transformations.
//!
//! Runs on the in-tree `fun3d_util::proptest_mini` harness: each case is
//! seeded, failures shrink by halving the drawn inputs, and the report
//! prints a `FUN3D_PROP_SEED` that replays the case deterministically.

use fun3d_core::geom::{EdgeGeom, NodeAos, NodeSoa};
use fun3d_core::{flux, FlowConditions};
use fun3d_mesh::generator::ChannelSpec;
use fun3d_mesh::DualMesh;
use fun3d_partition::{natural_partition, partition_graph, MultilevelConfig, OwnerWritesPlan};
use fun3d_threads::ThreadPool;
use fun3d_util::{prop_assert, prop_assert_eq, prop_cases};

fn random_fixture(seed: u64, jitter: f64, amp: f64) -> (EdgeGeom, NodeAos) {
    let mut spec = ChannelSpec::with_resolution(6, 5, 4);
    spec.seed = seed;
    spec.jitter = jitter;
    let mesh = spec.build();
    let dual = DualMesh::build(&mesh);
    let geom = EdgeGeom::build(&mesh, &dual);
    let cond = FlowConditions::default();
    let mut node = NodeAos::zeros(mesh.nvertices());
    node.set_freestream(&cond.qinf);
    let mut rng = fun3d_util::Rng64::new(seed ^ 0xABCD);
    for x in node.q.iter_mut() {
        *x += rng.range_f64(-amp, amp);
    }
    let bc = fun3d_core::bc::BcData::build(&dual);
    fun3d_core::gradient::green_gauss(&geom, &bc, &dual.vol, &mut node);
    (geom, node)
}

fn scalar_reference(geom: &EdgeGeom, node: &NodeAos) -> Vec<f64> {
    let mut r = vec![0.0; node.n * 4];
    flux::serial_aos(geom, node, 1.0, &mut r);
    r
}

fn close(a: &[f64], b: &[f64], tol: f64) -> Result<(), String> {
    let scale = a.iter().map(|x| x.abs()).fold(0.0, f64::max).max(1.0);
    for i in 0..a.len() {
        if (a[i] - b[i]).abs() > tol * scale {
            return Err(format!("entry {i}: {} vs {}", a[i], b[i]));
        }
    }
    Ok(())
}

prop_cases! {
    fn all_flux_variants_agree(g, cases = 12) {
        let seed = g.u64();
        let jitter = g.f64_range(0.0, 0.3);
        let amp = g.f64_range(0.0, 0.4);
        let nthreads = g.usize_range(1, 5);

        let (geom, node) = random_fixture(seed, jitter, amp);
        let reference = scalar_reference(&geom, &node);
        let n4 = node.n * 4;

        // SoA layout
        let soa = NodeSoa::from_aos(&node);
        let mut r = vec![0.0; n4];
        flux::serial_soa(&geom, &soa, 1.0, &mut r);
        prop_assert_eq!(&reference, &r, "SoA must be bitwise identical");

        // SIMD batching
        let mut r = vec![0.0; n4];
        flux::serial_aos_simd(&geom, &node, 1.0, &mut r);
        prop_assert!(close(&reference, &r, 1e-12).is_ok());

        // SIMD + prefetch
        let mut r = vec![0.0; n4];
        flux::serial_aos_simd_prefetch(&geom, &node, 1.0, &mut r);
        prop_assert!(close(&reference, &r, 1e-12).is_ok());

        // threaded variants
        let pool = ThreadPool::new(nthreads);
        let mut r = vec![0.0; n4];
        flux::atomics(&pool, &geom, &node, 1.0, &mut r);
        prop_assert!(close(&reference, &r, 1e-11).is_ok());

        let nat = OwnerWritesPlan::build(&geom.edges, &natural_partition(node.n, nthreads), nthreads);
        let mut r = vec![0.0; n4];
        flux::owner_writes(&pool, &nat, &geom, &node, 1.0, &mut r);
        prop_assert_eq!(&reference, &r, "owner-writes must be bitwise identical");

        let graph = fun3d_mesh::Graph::from_edges(node.n, &geom.edges);
        let ml = OwnerWritesPlan::build(
            &geom.edges,
            &partition_graph(&graph, nthreads, &MultilevelConfig::default()),
            nthreads,
        );
        let mut r = vec![0.0; n4];
        flux::owner_writes_opt(&pool, &ml, &geom, &node, 1.0, &mut r);
        prop_assert!(close(&reference, &r, 1e-12).is_ok());
    }

    fn triangular_solve_strategies_agree(g, cases = 12) {
        let seed = g.u64();
        let nthreads = g.usize_range(1, 5);

        use fun3d_sparse::{ilu, trsv, levels, p2p, Bcsr4, LevelSchedule, P2pSchedule};
        let mut spec = ChannelSpec::with_resolution(5, 4, 4);
        spec.seed = seed;
        let mesh = spec.build();
        let mut a = Bcsr4::from_edges(mesh.nvertices(), &mesh.edges());
        a.fill_diag_dominant(seed);
        let f = ilu::iluk(&a, 1);
        let n = a.dim();
        let b: Vec<f64> = (0..n).map(|i| ((i as f64) * 0.37).sin()).collect();
        let serial = trsv::solve(&f, &b);

        let pool = ThreadPool::new(nthreads);
        let lf = LevelSchedule::forward(&f.l);
        let lb = LevelSchedule::backward(&f.u);
        let x = levels::solve_levels(&f, &b, &pool, &lf, &lb);
        prop_assert_eq!(&serial, &x, "level-scheduled differs");

        let pf = P2pSchedule::forward(&f.l, nthreads);
        let pb = P2pSchedule::backward(&f.u, nthreads);
        let x = p2p::solve_p2p(&f, &b, &pool, &pf, &pb);
        prop_assert_eq!(&serial, &x, "p2p differs");
    }
}
