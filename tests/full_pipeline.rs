//! End-to-end integration: mesh generation → reordering → solver →
//! profile, across optimization configurations.

use fun3d_core::{app::IluParallel, Fun3dApp, FlowConditions, OptConfig};
use fun3d_mesh::generator::MeshPreset;
use fun3d_solver::ptc::PtcConfig;

fn ptc() -> PtcConfig {
    PtcConfig {
        dt0: 2.0,
        rtol: 1e-7,
        max_steps: 80,
        ..Default::default()
    }
}

fn solve(cfg: OptConfig) -> (Vec<f64>, fun3d_solver::ptc::PtcStats) {
    let mut mesh = MeshPreset::Tiny.build();
    Fun3dApp::rcm_reorder(&mut mesh);
    let mut app = Fun3dApp::new(mesh, FlowConditions::default(), cfg);
    app.run(&ptc())
}

fn rel_diff(a: &[f64], b: &[f64]) -> f64 {
    let num: f64 = a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum::<f64>().sqrt();
    let den: f64 = a.iter().map(|x| x * x).sum::<f64>().sqrt();
    num / den.max(1e-300)
}

#[test]
fn every_configuration_converges_to_the_same_flow() {
    let (base, sb) = solve(OptConfig::baseline());
    assert!(sb.converged);

    let mut configs: Vec<(&str, OptConfig)> = vec![
        ("optimized-2t", OptConfig::optimized(2)),
        ("optimized-4t", OptConfig::optimized(4)),
    ];
    let mut lvl = OptConfig::optimized(2);
    lvl.ilu_parallel = IluParallel::Levels;
    configs.push(("levels-2t", lvl));
    let mut serial_simd = OptConfig::baseline();
    serial_simd.use_simd = true;
    serial_simd.use_prefetch = true;
    configs.push(("serial+simd", serial_simd));
    let mut natural = OptConfig::optimized(3);
    natural.metis_partition = false;
    configs.push(("natural-partition", natural));

    for (name, cfg) in configs {
        let (u, stats) = solve(cfg);
        assert!(stats.converged, "{name} did not converge");
        let d = rel_diff(&base, &u);
        assert!(d < 1e-4, "{name}: solution differs from baseline by {d}");
    }
}

#[test]
fn profile_covers_all_paper_kernels() {
    let mut mesh = MeshPreset::Tiny.build();
    Fun3dApp::rcm_reorder(&mut mesh);
    let mut app = Fun3dApp::new(mesh, FlowConditions::default(), OptConfig::baseline());
    let (_, stats) = app.run(&ptc());
    assert!(stats.converged);
    let prof = app.profile();
    for phase in ["flux", "gradient", "jacobian", "ilu", "trsv", "total"] {
        assert!(prof.seconds(phase) > 0.0, "phase {phase} unrecorded");
    }
    // the tracked kernels should dominate, as in the paper's Fig. 5
    let tracked: f64 = ["flux", "gradient", "jacobian", "ilu", "trsv"]
        .iter()
        .map(|p| prof.seconds(p))
        .sum();
    let frac = tracked / prof.seconds("total");
    assert!(
        frac > 0.5,
        "kernels should dominate the profile, got {frac:.2}"
    );
}

#[test]
fn solver_is_deterministic_serially() {
    let (a, sa) = solve(OptConfig::baseline());
    let (b, sb) = solve(OptConfig::baseline());
    assert_eq!(a, b, "two serial runs must agree bitwise");
    assert_eq!(sa.linear_iters, sb.linear_iters);
}

#[test]
fn residual_history_is_publishable() {
    let (_, stats) = solve(OptConfig::baseline());
    let h = &stats.res_history;
    assert_eq!(h.len(), stats.time_steps + 1);
    assert!(h.last().unwrap() / h.first().unwrap() < 1e-6);
}

#[test]
fn ilu0_vs_ilu1_tradeoff_runs() {
    let mut c0 = OptConfig::baseline();
    c0.ilu_fill = 0;
    let (_, s0) = solve(c0);
    let mut c1 = OptConfig::baseline();
    c1.ilu_fill = 1;
    let (_, s1) = solve(c1);
    assert!(s0.converged && s1.converged);
}
