//! Property-based cross-crate invariants: random mesh geometries and
//! matrices must satisfy the identities the discretization depends on.
//!
//! Runs on the in-tree `fun3d_util::proptest_mini` harness (seeded cases,
//! shrink-by-halving, deterministic `FUN3D_PROP_SEED` replay).

use fun3d_mesh::generator::ChannelSpec;
use fun3d_mesh::DualMesh;
use fun3d_partition::{partition_graph, MultilevelConfig, OwnerWritesPlan};
use fun3d_sparse::{ilu, trsv, Bcsr4};
use fun3d_util::proptest_mini::Gen;
use fun3d_util::{prop_assert, prop_cases};

/// Draws a small random channel mesh with varying geometry (the port of
/// the old proptest `mesh_spec()` strategy).
fn mesh_spec(g: &mut Gen) -> ChannelSpec {
    let ni = g.usize_range(4, 8);
    let nj = g.usize_range(3, 6);
    let nk = g.usize_range(3, 6);
    let thickness = g.f64_range(0.0, 0.25);
    let jitter = g.f64_range(0.0, 0.3);
    let seed = g.u64();
    let mut spec = ChannelSpec::with_resolution(ni, nj, nk);
    spec.thickness = thickness;
    spec.jitter = jitter;
    spec.seed = seed;
    spec
}

prop_cases! {
    fn dual_closure_holds_for_random_geometry(g, cases = 16) {
        let spec = mesh_spec(g);
        let mesh = spec.build();
        let dual = DualMesh::build(&mesh);
        let scale = dual
            .edge_normal
            .iter()
            .map(|n| n.norm())
            .fold(0.0, f64::max)
            .max(1.0);
        prop_assert!(dual.max_closure_defect() < 1e-11 * scale);
        // volumes positive and summing to the mesh volume
        prop_assert!(dual.vol.iter().all(|&v| v > 0.0));
        let dv: f64 = dual.vol.iter().sum();
        let tv = mesh.total_volume();
        prop_assert!((dv - tv).abs() < 1e-9 * tv);
    }

    fn owner_writes_plan_covers_every_edge(g, cases = 16) {
        let spec = mesh_spec(g);
        let nthreads = g.usize_range(1, 6);
        let mesh = spec.build();
        let edges = mesh.edges();
        let graph = mesh.vertex_graph();
        let part = partition_graph(&graph, nthreads, &MultilevelConfig::default());
        let plan = OwnerWritesPlan::build(&edges, &part, nthreads);
        // every endpoint written exactly once
        let mut writes = vec![[0u8; 2]; edges.len()];
        for t in 0..nthreads {
            for (k, &eid) in plan.edges_of[t].iter().enumerate() {
                let mask = plan.writes_of[t][k];
                if mask & 1 != 0 { writes[eid as usize][0] += 1; }
                if mask & 2 != 0 { writes[eid as usize][1] += 1; }
            }
        }
        prop_assert!(writes.iter().all(|w| w[0] == 1 && w[1] == 1));
        prop_assert!(plan.replication_overhead() >= 0.0);
    }

    fn ilu_preconditioned_residual_shrinks(g, cases = 16) {
        let seed = g.u64();
        let fill = g.usize_range(0, 3);
        // random diagonally dominant block matrix on a fixed small mesh
        let spec = ChannelSpec::with_resolution(5, 4, 4);
        let mesh = spec.build();
        let mut a = Bcsr4::from_edges(mesh.nvertices(), &mesh.edges());
        a.fill_diag_dominant(seed);
        let f = ilu::iluk(&a, fill);
        let n = a.dim();
        let xref: Vec<f64> = (0..n).map(|i| ((i * 29 % 17) as f64 - 8.0) * 0.1).collect();
        let mut b = vec![0.0; n];
        a.spmv(&xref, &mut b);
        let x = trsv::solve(&f, &b);
        // one application of (LU)^-1 A must contract toward the solution
        let err: f64 = x.iter().zip(&xref).map(|(p, q)| (p - q) * (p - q)).sum::<f64>().sqrt();
        let norm: f64 = xref.iter().map(|v| v * v).sum::<f64>().sqrt();
        prop_assert!(err < 0.6 * norm, "err {err} norm {norm}");
    }

    fn rcm_never_hurts_bandwidth(g, cases = 16) {
        let spec = mesh_spec(g);
        let mut mesh = spec.build();
        let before = mesh.vertex_graph().bandwidth();
        let perm = fun3d_mesh::reorder::rcm(&mesh.vertex_graph());
        mesh.renumber(&perm);
        let after = mesh.vertex_graph().bandwidth();
        prop_assert!(after <= before, "RCM worsened bandwidth: {before} -> {after}");
    }
}
