//! Property-based cross-crate invariants: random mesh geometries and
//! matrices must satisfy the identities the discretization depends on.

use fun3d_mesh::generator::ChannelSpec;
use fun3d_mesh::DualMesh;
use fun3d_partition::{partition_graph, MultilevelConfig, OwnerWritesPlan};
use fun3d_sparse::{ilu, trsv, Bcsr4};
use proptest::prelude::*;

/// Strategy: small random channel meshes with varying geometry.
fn mesh_spec() -> impl Strategy<Value = ChannelSpec> {
    (
        4usize..8,
        3usize..6,
        3usize..6,
        0.0f64..0.25,
        0.0f64..0.3,
        any::<u64>(),
    )
        .prop_map(|(ni, nj, nk, thickness, jitter, seed)| {
            let mut spec = ChannelSpec::with_resolution(ni, nj, nk);
            spec.thickness = thickness;
            spec.jitter = jitter;
            spec.seed = seed;
            spec
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn dual_closure_holds_for_random_geometry(spec in mesh_spec()) {
        let mesh = spec.build();
        let dual = DualMesh::build(&mesh);
        let scale = dual
            .edge_normal
            .iter()
            .map(|n| n.norm())
            .fold(0.0, f64::max)
            .max(1.0);
        prop_assert!(dual.max_closure_defect() < 1e-11 * scale);
        // volumes positive and summing to the mesh volume
        prop_assert!(dual.vol.iter().all(|&v| v > 0.0));
        let dv: f64 = dual.vol.iter().sum();
        let tv = mesh.total_volume();
        prop_assert!((dv - tv).abs() < 1e-9 * tv);
    }

    #[test]
    fn owner_writes_plan_covers_every_edge(spec in mesh_spec(), nthreads in 1usize..6) {
        let mesh = spec.build();
        let edges = mesh.edges();
        let graph = mesh.vertex_graph();
        let part = partition_graph(&graph, nthreads, &MultilevelConfig::default());
        let plan = OwnerWritesPlan::build(&edges, &part, nthreads);
        // every endpoint written exactly once
        let mut writes = vec![[0u8; 2]; edges.len()];
        for t in 0..nthreads {
            for (k, &eid) in plan.edges_of[t].iter().enumerate() {
                let mask = plan.writes_of[t][k];
                if mask & 1 != 0 { writes[eid as usize][0] += 1; }
                if mask & 2 != 0 { writes[eid as usize][1] += 1; }
            }
        }
        prop_assert!(writes.iter().all(|w| w[0] == 1 && w[1] == 1));
        prop_assert!(plan.replication_overhead() >= 0.0);
    }

    #[test]
    fn ilu_preconditioned_residual_shrinks(seed in any::<u64>(), fill in 0usize..3) {
        // random diagonally dominant block matrix on a fixed small mesh
        let spec = ChannelSpec::with_resolution(5, 4, 4);
        let mesh = spec.build();
        let mut a = Bcsr4::from_edges(mesh.nvertices(), &mesh.edges());
        a.fill_diag_dominant(seed);
        let f = ilu::iluk(&a, fill);
        let n = a.dim();
        let xref: Vec<f64> = (0..n).map(|i| ((i * 29 % 17) as f64 - 8.0) * 0.1).collect();
        let mut b = vec![0.0; n];
        a.spmv(&xref, &mut b);
        let x = trsv::solve(&f, &b);
        // one application of (LU)^-1 A must contract toward the solution
        let err: f64 = x.iter().zip(&xref).map(|(p, q)| (p - q) * (p - q)).sum::<f64>().sqrt();
        let norm: f64 = xref.iter().map(|v| v * v).sum::<f64>().sqrt();
        prop_assert!(err < 0.6 * norm, "err {err} norm {norm}");
    }

    #[test]
    fn rcm_never_hurts_bandwidth(spec in mesh_spec()) {
        let mut mesh = spec.build();
        let before = mesh.vertex_graph().bandwidth();
        let perm = fun3d_mesh::reorder::rcm(&mesh.vertex_graph());
        mesh.renumber(&perm);
        let after = mesh.vertex_graph().bandwidth();
        prop_assert!(after <= before, "RCM worsened bandwidth: {before} -> {after}");
    }
}
