//! Cross-crate integration: the distributed (rank-parallel) solve path
//! must agree with the serial solver stack on the same system.

use fun3d_cluster::dsolve::{gmres, DistSystem};
use fun3d_cluster::{Decomposition, Universe};
use fun3d_mesh::generator::MeshPreset;
use fun3d_solver::gmres::{Gmres, GmresConfig};
use fun3d_solver::precond::SerialIlu;
use fun3d_sparse::Bcsr4;

fn system() -> (usize, Vec<[u32; 2]>, Bcsr4, Vec<f64>) {
    let mesh = MeshPreset::Tiny.build();
    let edges = mesh.edges();
    let nv = mesh.nvertices();
    let mut a = Bcsr4::from_edges(nv, &edges);
    a.fill_diag_dominant(99);
    let n = a.dim();
    let xref: Vec<f64> = (0..n).map(|i| ((i % 13) as f64 - 6.0) * 0.2).collect();
    let mut b = vec![0.0; n];
    a.spmv(&xref, &mut b);
    (nv, edges, a, b)
}

#[test]
fn distributed_gmres_agrees_with_serial_gmres() {
    let (nv, edges, a, b) = system();
    let n = a.dim();

    // serial reference (global ILU preconditioner)
    let mut x_serial = vec![0.0; n];
    let ilu = SerialIlu::new(&a, 0);
    let res = Gmres::new(
        n,
        GmresConfig {
            rtol: 1e-10,
            max_iters: 500,
            ..Default::default()
        },
    )
    .solve(&a, &ilu, &b, &mut x_serial);
    assert!(res.residual <= 1e-9 * res.residual0.max(1.0) || res.iterations < 500);

    // distributed (4 ranks, block-Jacobi ILU)
    let decomp = Decomposition::build(nv, &edges, 4);
    let subs = decomp.subdomains.clone();
    let a_ref = &a;
    let b_ref = &b;
    let results = Universe::run(4, move |comm| {
        let sub = subs[comm.rank()].clone();
        let sys = DistSystem::new(a_ref, sub, 0);
        let blocal: Vec<f64> = sys
            .sub
            .owned
            .iter()
            .flat_map(|&g| b_ref[g as usize * 4..g as usize * 4 + 4].to_vec())
            .collect();
        let mut x = vec![0.0; sys.nowned()];
        let r = gmres(&comm, &sys, &blocal, &mut x, 30, 1e-10, 500);
        assert!(r.converged);
        (sys.sub.owned.clone(), x)
    });
    let mut x_dist = vec![0.0; n];
    for (owned, x) in results {
        for (l, &g) in owned.iter().enumerate() {
            x_dist[g as usize * 4..g as usize * 4 + 4].copy_from_slice(&x[l * 4..l * 4 + 4]);
        }
    }

    let diff: f64 = x_serial
        .iter()
        .zip(&x_dist)
        .map(|(p, q)| (p - q) * (p - q))
        .sum::<f64>()
        .sqrt();
    let norm: f64 = x_serial.iter().map(|v| v * v).sum::<f64>().sqrt();
    assert!(diff < 1e-6 * norm, "diff {diff} vs norm {norm}");
}

#[test]
fn distributed_results_independent_of_rank_count() {
    let (nv, edges, a, b) = system();
    let n = a.dim();
    let mut solutions: Vec<Vec<f64>> = Vec::new();
    for nranks in [1usize, 2, 3] {
        let decomp = Decomposition::build(nv, &edges, nranks);
        let subs = decomp.subdomains.clone();
        let a_ref = &a;
        let b_ref = &b;
        let results = Universe::run(nranks, move |comm| {
            let sub = subs[comm.rank()].clone();
            let sys = DistSystem::new(a_ref, sub, 0);
            let blocal: Vec<f64> = sys
                .sub
                .owned
                .iter()
                .flat_map(|&g| b_ref[g as usize * 4..g as usize * 4 + 4].to_vec())
                .collect();
            let mut x = vec![0.0; sys.nowned()];
            gmres(&comm, &sys, &blocal, &mut x, 30, 1e-11, 800);
            (sys.sub.owned.clone(), x)
        });
        let mut xg = vec![0.0; n];
        for (owned, x) in results {
            for (l, &g) in owned.iter().enumerate() {
                xg[g as usize * 4..g as usize * 4 + 4].copy_from_slice(&x[l * 4..l * 4 + 4]);
            }
        }
        solutions.push(xg);
    }
    for k in 1..solutions.len() {
        let diff: f64 = solutions[0]
            .iter()
            .zip(&solutions[k])
            .map(|(p, q)| (p - q) * (p - q))
            .sum::<f64>()
            .sqrt();
        let norm: f64 = solutions[0].iter().map(|v| v * v).sum::<f64>().sqrt();
        assert!(diff < 1e-6 * norm, "rank-count variant {k}: {diff}");
    }
}
