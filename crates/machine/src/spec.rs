//! Processor descriptions.

/// A socket-level machine description.
#[derive(Clone, Copy, Debug)]
pub struct MachineSpec {
    /// Human-readable name.
    pub name: &'static str,
    /// Physical cores.
    pub cores: usize,
    /// Hardware threads per core.
    pub smt: usize,
    /// Core clock in GHz.
    pub freq_ghz: f64,
    /// DP SIMD lanes.
    pub simd_width: usize,
    /// Peak DP flops per cycle per core (mul + add pipes × width).
    pub flops_per_cycle: f64,
    /// Sustainable (STREAM) memory bandwidth, GB/s.
    pub stream_gbs: f64,
    /// Peak memory bandwidth, GB/s.
    pub peak_bw_gbs: f64,
    /// Cores needed to saturate STREAM bandwidth (the paper's Fig. 7b
    /// shows TRSV saturating around 4 cores).
    pub bw_saturation_cores: f64,
    /// Throughput gain of running 2 SMT threads on one core relative to
    /// 1 thread (1.0 = no gain, 2.0 = perfect scaling).
    pub smt_yield: f64,
    /// Cost of one contended atomic read-modify-write, nanoseconds.
    pub atomic_ns: f64,
    /// Base cost of a centralized spinning barrier, nanoseconds, at 2
    /// threads; grows ~logarithmically with thread count.
    pub barrier_base_ns: f64,
    /// Cost of one P2P flag wait that is already satisfied, nanoseconds.
    pub p2p_wait_ns: f64,
    /// Per-core private L2 capacity, bytes. The locality tiler sizes its
    /// scratch-pad working set to stay resident here (L1 is too small for
    /// a useful tile, L3 is shared and already covered by RCM locality).
    pub l2_bytes: usize,
    /// Shared last-level cache capacity, bytes. The tile-execution
    /// policy compares the node working set against this: explicit
    /// scratch-pad staging only pays off when the gathers would
    /// otherwise miss to DRAM.
    pub llc_bytes: usize,
}

impl MachineSpec {
    /// One socket of the paper's single-node workstation:
    /// Intel Xeon E5-2690 v2 ("Ivy Bridge EP"), 10 cores @ 3.0 GHz.
    pub fn xeon_e5_2690v2() -> MachineSpec {
        MachineSpec {
            name: "Xeon E5-2690 v2 (10c @ 3.0 GHz)",
            cores: 10,
            smt: 2,
            freq_ghz: 3.0,
            simd_width: 4,
            flops_per_cycle: 8.0, // 4-wide mul + 4-wide add per cycle
            stream_gbs: 34.8,
            peak_bw_gbs: 42.2,
            bw_saturation_cores: 4.0,
            smt_yield: 1.25,
            atomic_ns: 18.0,
            barrier_base_ns: 250.0,
            p2p_wait_ns: 35.0,
            l2_bytes: 256 * 1024, // Ivy Bridge EP: 256 KiB private L2/core
            llc_bytes: 25 * 1024 * 1024, // 25 MiB shared L3
        }
    }

    /// One socket of a TACC Stampede node: Xeon E5-2680, 8 cores @ 2.7
    /// GHz (the scaling studies run 16 MPI ranks per 2-socket node).
    pub fn xeon_e5_2680() -> MachineSpec {
        MachineSpec {
            name: "Xeon E5-2680 (8c @ 2.7 GHz)",
            cores: 8,
            smt: 1, // hyper-threading disabled on Stampede
            freq_ghz: 2.7,
            simd_width: 4,
            flops_per_cycle: 8.0,
            stream_gbs: 38.0, // per-socket share of node STREAM
            peak_bw_gbs: 51.2,
            bw_saturation_cores: 4.0,
            smt_yield: 1.0, // hyper-threading disabled on Stampede
            atomic_ns: 20.0,
            barrier_base_ns: 280.0,
            p2p_wait_ns: 40.0,
            l2_bytes: 256 * 1024, // Sandy Bridge EP: 256 KiB private L2/core
            llc_bytes: 20 * 1024 * 1024, // 20 MiB shared L3
        }
    }

    /// A best-effort description of the machine the process is running
    /// on: core count from the scheduler (`available_parallelism`, which
    /// respects affinity masks and cgroup quotas), the remaining
    /// microarchitectural numbers borrowed from the Ivy Bridge EP preset
    /// scaled to that core count. Good enough for the execution-policy
    /// chooser, which only needs the *shape* of the bandwidth ramp and
    /// the barrier-cost growth — measured sync costs are layered on top
    /// by the calibration probe.
    ///
    /// Detected once per process (the sysfs cache-topology probe walks
    /// several files): the first call populates a `OnceLock`, every
    /// later call — e.g. per-request policy decisions in `fun3d-serve`
    /// — copies the cached value.
    pub fn host() -> MachineSpec {
        static HOST: std::sync::OnceLock<MachineSpec> = std::sync::OnceLock::new();
        *HOST.get_or_init(Self::detect_host)
    }

    fn detect_host() -> MachineSpec {
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        let proto = MachineSpec::xeon_e5_2690v2();
        MachineSpec {
            name: "detected host",
            cores,
            smt: 1,
            // Per-core bandwidth share of the prototype, saturating at
            // the same ~4-core point (or earlier on smaller hosts).
            stream_gbs: proto.stream_gbs * (cores as f64 / proto.cores as f64).min(1.0),
            peak_bw_gbs: proto.peak_bw_gbs * (cores as f64 / proto.cores as f64).min(1.0),
            bw_saturation_cores: proto.bw_saturation_cores.min(cores as f64),
            smt_yield: 1.0,
            l2_bytes: detect_cache_bytes(2, 64 * 1024..=4 * 1024 * 1024)
                .unwrap_or(proto.l2_bytes),
            llc_bytes: detect_cache_bytes(3, 1024 * 1024..=1024 * 1024 * 1024)
                .unwrap_or(proto.llc_bytes),
            ..proto
        }
    }

    /// Peak DP Gflop/s of the whole socket.
    pub fn peak_gflops(&self) -> f64 {
        self.cores as f64 * self.freq_ghz * self.flops_per_cycle
    }

    /// Machine balance: the roofline ridge point in flop/byte. Kernels
    /// with lower arithmetic intensity are memory-bound on this socket,
    /// higher are compute-bound.
    pub fn balance_flops_per_byte(&self) -> f64 {
        self.peak_gflops() / self.stream_gbs
    }

    /// Sustainable bandwidth available when `threads` cores are active
    /// (linear ramp until `bw_saturation_cores`, then flat at STREAM).
    pub fn bandwidth_at(&self, threads: usize) -> f64 {
        let t = threads.max(1) as f64;
        self.stream_gbs * (t / self.bw_saturation_cores).min(1.0)
    }

    /// Barrier cost at a given thread count (centralized sense-reversing:
    /// one RMW each plus propagation ~ log t).
    pub fn barrier_ns(&self, threads: usize) -> f64 {
        if threads <= 1 {
            0.0
        } else {
            self.barrier_base_ns * (1.0 + (threads as f64).log2())
        }
    }

    /// Seconds for `cycles` of single-thread work.
    pub fn seconds(&self, cycles: f64) -> f64 {
        cycles / (self.freq_ghz * 1e9)
    }

    /// Wall seconds for per-thread compute workloads, folding SMT: when
    /// more threads run than physical cores exist, consecutive threads
    /// share a core, whose combined throughput is `smt_yield` of one
    /// thread's.
    pub fn thread_compute_seconds(&self, per_thread_cycles: &[f64]) -> f64 {
        let threads = per_thread_cycles.len();
        if threads <= self.cores {
            return self.seconds(per_thread_cycles.iter().copied().fold(0.0, f64::max));
        }
        let per_core = threads.div_ceil(self.cores);
        let mut worst: f64 = 0.0;
        for core in per_thread_cycles.chunks(per_core) {
            let total: f64 = core.iter().sum();
            let yield_factor = if core.len() > 1 { self.smt_yield } else { 1.0 };
            worst = worst.max(total / yield_factor);
        }
        self.seconds(worst)
    }
}

/// Reads cpu0's data/unified cache capacity at `level` from sysfs
/// (Linux), e.g. "2048K" or "260M". Returns `None` off-Linux, in
/// sandboxes that hide sysfs, or for readings outside `plausible` —
/// the caller falls back to the preset value.
fn detect_cache_bytes(
    level: u32,
    plausible: std::ops::RangeInclusive<usize>,
) -> Option<usize> {
    let base = "/sys/devices/system/cpu/cpu0/cache";
    for idx in 0..6 {
        let lvl = std::fs::read_to_string(format!("{base}/index{idx}/level")).ok()?;
        if lvl.trim() != level.to_string() {
            continue;
        }
        let ty = std::fs::read_to_string(format!("{base}/index{idx}/type")).ok()?;
        if ty.trim() == "Instruction" {
            continue;
        }
        let size = std::fs::read_to_string(format!("{base}/index{idx}/size")).ok()?;
        let size = size.trim();
        let (digits, mult) = match size.as_bytes().last()? {
            b'K' => (&size[..size.len() - 1], 1024),
            b'M' => (&size[..size.len() - 1], 1024 * 1024),
            _ => (size, 1),
        };
        let bytes = digits.parse::<usize>().ok()? * mult;
        return plausible.contains(&bytes).then_some(bytes);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_peak_gflops() {
        let m = MachineSpec::xeon_e5_2690v2();
        // "the 10 cores can deliver a peak performance of 240 Gflop/s"
        assert!((m.peak_gflops() - 240.0).abs() < 1e-9);
    }

    #[test]
    fn balance_is_ridge_point() {
        let m = MachineSpec::xeon_e5_2690v2();
        // 240 Gflop/s over 34.8 GB/s STREAM: deeply memory-starved, as
        // the paper argues for the unstructured kernels.
        let b = m.balance_flops_per_byte();
        assert!((b - 240.0 / 34.8).abs() < 1e-9);
        assert!(b > 5.0);
    }

    #[test]
    fn bandwidth_saturates() {
        let m = MachineSpec::xeon_e5_2690v2();
        assert!(m.bandwidth_at(1) < m.stream_gbs);
        assert!((m.bandwidth_at(4) - m.stream_gbs).abs() < 1e-9);
        assert_eq!(m.bandwidth_at(10), m.bandwidth_at(20));
    }

    #[test]
    fn barrier_grows_with_threads() {
        let m = MachineSpec::xeon_e5_2690v2();
        assert_eq!(m.barrier_ns(1), 0.0);
        assert!(m.barrier_ns(4) > m.barrier_ns(2));
        assert!(m.barrier_ns(16) > m.barrier_ns(8));
    }

    #[test]
    fn smt_folding_throughput() {
        let m = MachineSpec::xeon_e5_2690v2();
        // 10 threads, one per core: plain max
        let t10 = m.thread_compute_seconds(&vec![3.0e9; 10]);
        assert!((t10 - 1.0).abs() < 1e-12);
        // 20 threads on 10 cores: 2x work per core at 1.25x yield
        let t20 = m.thread_compute_seconds(&vec![3.0e9; 20]);
        assert!((t20 - 2.0 / 1.25).abs() < 1e-9, "t20 = {t20}");
        // SMT never makes things worse than serializing the pair
        assert!(t20 < 2.0 * t10 + 1e-12);
    }

    #[test]
    fn smt_folding_imbalanced() {
        let m = MachineSpec::xeon_e5_2690v2();
        // one hot thread dominates regardless of folding
        let mut loads = vec![1.0e9; 20];
        loads[3] = 30.0e9;
        let t = m.thread_compute_seconds(&loads);
        assert!(t >= m.seconds(30.0e9) / m.smt_yield);
    }

    #[test]
    fn host_spec_is_sane() {
        let h = MachineSpec::host();
        assert!(h.cores >= 1);
        assert!(h.stream_gbs > 0.0);
        assert!(h.bw_saturation_cores >= 1.0);
        assert!(h.bw_saturation_cores <= h.cores as f64 + 1e-9 || h.cores >= 4);
        // Bandwidth at full occupancy reaches the STREAM figure.
        assert!((h.bandwidth_at(h.cores.max(4)) - h.stream_gbs).abs() < 1e-9);
    }

    #[test]
    fn l2_capacity_present() {
        // The tiler divides by this; it must be a plausible per-core L2
        // on every preset (64 KiB..4 MiB covers everything we model).
        for m in [
            MachineSpec::xeon_e5_2690v2(),
            MachineSpec::xeon_e5_2680(),
            MachineSpec::host(),
        ] {
            assert!(m.l2_bytes >= 64 * 1024, "{}: l2 too small", m.name);
            assert!(m.l2_bytes <= 4 * 1024 * 1024, "{}: l2 too big", m.name);
            assert!(m.llc_bytes >= m.l2_bytes, "{}: llc below l2", m.name);
        }
    }

    #[test]
    fn seconds_conversion() {
        let m = MachineSpec::xeon_e5_2690v2();
        assert!((m.seconds(3.0e9) - 1.0).abs() < 1e-12);
    }
}
