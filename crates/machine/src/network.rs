//! FDR InfiniBand fat-tree network model.
//!
//! A latency/bandwidth (LogGP-flavoured) model of Stampede's fabric:
//! Mellanox FDR (56 Gb/s ≈ 6.8 GB/s per port) in a 2-level fat tree.
//! Collectives use log-tree algorithms, so an `MPI_Allreduce` of the
//! small messages a Krylov solver sends (one or a few doubles) costs
//! `2·⌈log₂P⌉` latency terms — exactly the term that grows with scale
//! and makes Mesh-D communication-bound at 256 nodes (Fig. 10).

/// Network parameters.
#[derive(Clone, Copy, Debug)]
pub struct NetworkSpec {
    /// One-way small-message latency within a leaf switch, microseconds.
    pub latency_us: f64,
    /// Extra per-hop latency when crossing to the spine, microseconds.
    pub hop_us: f64,
    /// Per-port bandwidth, GB/s.
    pub bw_gbs: f64,
    /// Nodes per leaf switch (Stampede: 20 per leaf).
    pub nodes_per_leaf: usize,
    /// MPI software overhead per message, microseconds.
    pub overhead_us: f64,
    /// OS-noise straggling per collective participant level,
    /// microseconds: the expected extra wait a collective suffers grows
    /// ~logarithmically with participants (noise amplification at
    /// synchronization points). Calibrated so Mesh-D turns
    /// communication-bound at 256 nodes as the paper reports.
    pub noise_us: f64,
}

impl NetworkSpec {
    /// Stampede's FDR InfiniBand 2-level fat tree.
    pub fn stampede_fdr() -> NetworkSpec {
        NetworkSpec {
            latency_us: 1.1,
            hop_us: 0.5,
            bw_gbs: 6.8,
            nodes_per_leaf: 20,
            overhead_us: 0.4,
            noise_us: 1000.0,
        }
    }

    /// Expected straggler wait per collective spanning `nnodes` nodes:
    /// `noise_us` at 256 nodes, shrinking as `N^0.75` below that. OS
    /// noise is a *per-node* phenomenon — the slowest node governs every
    /// collective regardless of how many ranks each node hosts — so the
    /// hybrid configuration does not escape it by using fewer ranks.
    pub fn noise_wait(&self, nnodes: usize) -> f64 {
        if nnodes <= 1 {
            0.0
        } else {
            self.noise_us * 1e-6 * (nnodes as f64 / 256.0).powf(0.75)
        }
    }

    /// Effective one-way latency between two ranks `nodes` apart
    /// (0 = same node → shared-memory transport).
    pub fn point_latency_us(&self, same_node: bool, same_leaf: bool) -> f64 {
        if same_node {
            0.3 // shared-memory MPI transport
        } else if same_leaf {
            self.latency_us + self.overhead_us
        } else {
            self.latency_us + 2.0 * self.hop_us + self.overhead_us
        }
    }

    /// Seconds for a point-to-point message of `bytes` crossing the
    /// given distance class.
    pub fn p2p_time(&self, bytes: f64, same_node: bool, same_leaf: bool) -> f64 {
        self.point_latency_us(same_node, same_leaf) * 1e-6 + bytes / (self.bw_gbs * 1e9)
    }

    /// Seconds for an allreduce over `nranks` ranks spread over `nnodes`
    /// nodes, message of `bytes`. Log-tree: `2⌈log₂(nranks)⌉` phases;
    /// phases that cross nodes pay network latency, in-node phases pay
    /// the shared-memory latency.
    pub fn allreduce_time(&self, nranks: usize, nnodes: usize, bytes: f64) -> f64 {
        if nranks <= 1 {
            return 0.0;
        }
        let phases = 2.0 * (nranks as f64).log2().ceil();
        let cross_phases = 2.0 * (nnodes.max(1) as f64).log2().ceil();
        let in_node_phases = (phases - cross_phases).max(0.0);
        let cross_leaf = nnodes > self.nodes_per_leaf;
        let cross_lat = self.point_latency_us(false, !cross_leaf) * 1e-6;
        let local_lat = self.point_latency_us(true, true) * 1e-6;
        let per_phase_bytes = bytes / (self.bw_gbs * 1e9);
        cross_phases * (cross_lat + per_phase_bytes) + in_node_phases * (local_lat + per_phase_bytes)
    }

    /// Seconds for a halo exchange: each rank sends `neighbor_bytes` to
    /// each of `nneighbors` neighbors; sends overlap, so the cost is the
    /// max single-port serialization plus one latency.
    pub fn halo_time(&self, nneighbors: usize, neighbor_bytes: f64, same_node: bool) -> f64 {
        if nneighbors == 0 {
            return 0.0;
        }
        let lat = self.point_latency_us(same_node, true) * 1e-6;
        lat + nneighbors as f64 * neighbor_bytes / (self.bw_gbs * 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn net() -> NetworkSpec {
        NetworkSpec::stampede_fdr()
    }

    #[test]
    fn allreduce_grows_logarithmically() {
        let n = net();
        let t16 = n.allreduce_time(16 * 16, 16, 8.0);
        let t256 = n.allreduce_time(256 * 16, 256, 8.0);
        assert!(t256 > t16);
        // ratio should be ~log-ish, not linear
        assert!(t256 / t16 < 4.0, "ratio {}", t256 / t16);
    }

    #[test]
    fn small_allreduce_latency_bound() {
        let n = net();
        let t8 = n.allreduce_time(4096, 256, 8.0);
        let t80 = n.allreduce_time(4096, 256, 80.0);
        // 10x the bytes, nearly identical time at these sizes
        assert!(t80 < 1.2 * t8);
    }

    #[test]
    fn p2p_distance_classes_ordered() {
        let n = net();
        let same_node = n.p2p_time(1e4, true, true);
        let same_leaf = n.p2p_time(1e4, false, true);
        let cross = n.p2p_time(1e4, false, false);
        assert!(same_node < same_leaf);
        assert!(same_leaf < cross);
    }

    #[test]
    fn halo_scales_with_neighbors_and_bytes() {
        let n = net();
        let t1 = n.halo_time(4, 1e4, false);
        let t2 = n.halo_time(8, 1e4, false);
        assert!(t2 > t1);
        assert_eq!(n.halo_time(0, 1e6, false), 0.0);
    }

    #[test]
    fn single_rank_allreduce_is_free() {
        assert_eq!(net().allreduce_time(1, 1, 8.0), 0.0);
    }

    #[test]
    fn noise_wait_monotone_in_nodes() {
        let n = net();
        assert_eq!(n.noise_wait(1), 0.0);
        assert!(n.noise_wait(16) < n.noise_wait(64));
        assert!(n.noise_wait(64) < n.noise_wait(256));
        // calibration anchor: noise_us microseconds at 256 nodes
        assert!((n.noise_wait(256) - n.noise_us * 1e-6).abs() < 1e-12);
    }

    #[test]
    fn large_message_bandwidth_bound() {
        let n = net();
        let bytes = 1e8;
        let t = n.p2p_time(bytes, false, false);
        let bw_time = bytes / (n.bw_gbs * 1e9);
        assert!((t - bw_time) / bw_time < 0.01);
    }
}
