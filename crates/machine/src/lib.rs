//! Analytic performance models of the paper's hardware.
//!
//! This container exposes **one CPU core**, so the multicore and
//! multi-node behaviour the paper measures cannot be timed directly (see
//! DESIGN.md, *Substitutions*). This crate models the paper's machines:
//!
//! * the single-node box — 2× Intel Xeon E5-2690 v2 (we model the single
//!   socket the paper's 10-core results use): 10 cores @ 3.0 GHz, 2-way
//!   SMT, 4-wide DP AVX issuing mul+add per cycle → 240 Gflop/s, 42.2
//!   GB/s peak / 34.8 GB/s STREAM memory;
//! * a Stampede node — 2× Xeon E5-2680 (8 cores @ 2.7 GHz each) with
//!   Mellanox FDR InfiniBand in a 2-level fat tree;
//!
//! and the cost models used by the figure harnesses:
//!
//! * [`kernels`] — roofline-style times for the edge loops (threaded via
//!   real per-thread workload counts: replication, imbalance, atomics)
//!   and the sparse recurrences (level-scheduled with barrier costs, or
//!   P2P with wait costs, both bandwidth-capped);
//! * [`network`] — a latency/bandwidth (LogGP-flavoured) model of FDR
//!   with log-tree collectives, used for the multi-node figures.
//!
//! **Calibration policy** (documented in EXPERIMENTS.md): single-thread
//! constants (cycles per edge/row for each code variant) are calibrated
//! against the paper's own single-thread measurements; every *parallel*
//! effect — load imbalance, replication overhead, DAG level widths,
//! synchronization counts, bandwidth saturation, message counts — comes
//! from the real data structures produced by this repository's
//! implementations.

pub mod kernels;
pub mod network;
pub mod spec;

pub use kernels::{EdgeLoopCosts, RecurrenceCosts};
pub use network::NetworkSpec;
pub use spec::MachineSpec;
