//! Kernel time models.
//!
//! The models take the *real* per-thread workload extracted from this
//! repository's schedulers (owner-writes plans, level schedules, P2P
//! schedules) and charge hardware costs from a [`MachineSpec`].

use crate::spec::MachineSpec;

/// Single-thread cost constants for the edge-based flux kernel, per code
/// variant, in cycles per edge. Calibrated to the paper's single-thread
/// measurements (Fig. 6a: AoS data structures +40%, SIMD +40%, prefetch
/// +15%); the absolute scalar baseline matches the paper's Table I / Fig.
/// 5 flux share on Mesh-C.
#[derive(Clone, Copy, Debug)]
pub struct EdgeLoopCosts {
    /// Baseline scalar loop with SoA node data.
    pub scalar_soa: f64,
    /// Scalar loop with AoS node data.
    pub scalar_aos: f64,
    /// AoS + 4-edge SIMD batching.
    pub simd: f64,
    /// AoS + SIMD + software prefetch.
    pub simd_prefetch: f64,
    /// Effective DRAM traffic per processed edge after cache reuse,
    /// bytes (the kernel is compute-bound: ~9.4 flop/byte of *accessed*
    /// data, far less DRAM traffic thanks to RCM locality).
    pub dram_bytes_per_edge: f64,
}

impl Default for EdgeLoopCosts {
    fn default() -> Self {
        // scalar_soa: baseline flux on Mesh-C ≈ 42% of 282 s over ~420
        // kernel invocations of 2.4e6 edges at 3 GHz → ≈ 350 cyc/edge.
        let scalar_soa = 350.0;
        let scalar_aos = scalar_soa / 1.40; // paper: 40% benefit
        let simd = scalar_aos / 1.40; // paper: 40% benefit
        let simd_prefetch = simd / 1.15; // paper: 15% benefit
        EdgeLoopCosts {
            scalar_soa,
            scalar_aos,
            simd,
            simd_prefetch,
            dram_bytes_per_edge: 48.0,
        }
    }
}

/// Time for one execution of a threaded edge loop.
///
/// * `per_thread_edges` — edges processed by each thread, *including*
///   replicated (cut) edges: both the imbalance and the replication
///   overhead of the real plan flow in here;
/// * `cycles_per_edge` — the single-thread variant cost;
/// * `atomics_per_edge` — atomic RMWs issued per edge (8 for the
///   atomics strategy: two 4-component updates), 0 otherwise.
///
/// The loop time is the slowest thread's compute time, floored by the
/// shared-bandwidth streaming time of the aggregate DRAM traffic.
pub fn edge_loop_time(
    m: &MachineSpec,
    per_thread_edges: &[usize],
    cycles_per_edge: f64,
    dram_bytes_per_edge: f64,
    atomics_per_edge: f64,
) -> f64 {
    let threads = per_thread_edges.len().max(1);
    let max_edges = per_thread_edges.iter().copied().max().unwrap_or(0) as f64;
    let total_edges: usize = per_thread_edges.iter().sum();
    let cycles: Vec<f64> = per_thread_edges
        .iter()
        .map(|&e| e as f64 * cycles_per_edge)
        .collect();
    let compute =
        m.thread_compute_seconds(&cycles) + max_edges * atomics_per_edge * m.atomic_ns * 1e-9;
    let bw = m.bandwidth_at(threads.min(m.cores));
    let memory = total_edges as f64 * dram_bytes_per_edge / (bw * 1e9);
    compute.max(memory)
}

/// Single-thread cost constants for the sparse recurrences (TRSV and
/// ILU), cycles per processed block and effective DRAM bytes per block.
#[derive(Clone, Copy, Debug)]
pub struct RecurrenceCosts {
    /// Cycles per off-diagonal 4×4 block op in TRSV (matvec, streaming).
    pub trsv_cycles_per_block: f64,
    /// Cycles per block op in the ILU factorization (matmul-heavy).
    pub ilu_cycles_per_block: f64,
    /// DRAM bytes per block touched by TRSV (streaming; a 4×4 block is
    /// 128 B plus index + vector traffic).
    pub trsv_bytes_per_block: f64,
    /// DRAM bytes per block op of ILU (some reuse across a row's
    /// updates).
    pub ilu_bytes_per_block: f64,
}

impl Default for RecurrenceCosts {
    fn default() -> Self {
        RecurrenceCosts {
            trsv_cycles_per_block: 40.0,
            ilu_cycles_per_block: 150.0,
            trsv_bytes_per_block: 150.0,
            ilu_bytes_per_block: 170.0,
        }
    }
}

/// Time for a level-scheduled sweep: per level, the slowest thread's
/// block work plus one barrier; the whole sweep is floored by the
/// bandwidth time of the aggregate traffic.
///
/// `level_block_weights[l]` holds the per-row block counts of level `l`
/// (rows are distributed over threads in contiguous chunks).
pub fn level_sched_time(
    m: &MachineSpec,
    threads: usize,
    level_block_weights: &[Vec<usize>],
    cycles_per_block: f64,
    bytes_per_block: f64,
) -> f64 {
    let threads = threads.max(1);
    let mut compute = 0.0f64;
    let mut total_blocks = 0usize;
    let mut per_thread = vec![0.0f64; threads];
    for weights in level_block_weights {
        total_blocks += weights.iter().sum::<usize>();
        // contiguous chunking of the level's rows across threads
        let n = weights.len();
        for (t, slot) in per_thread.iter_mut().enumerate() {
            let r = chunk(n, threads, t);
            *slot = weights[r].iter().sum::<usize>() as f64 * cycles_per_block;
        }
        compute += m.thread_compute_seconds(&per_thread);
        compute += m.barrier_ns(threads) * 1e-9;
    }
    let bw = m.bandwidth_at(threads.min(m.cores));
    let memory = total_blocks as f64 * bytes_per_block / (bw * 1e9);
    compute.max(memory)
}

/// Time for a P2P-scheduled sweep: the slowest thread's block work plus
/// its wait costs, floored by aggregate bandwidth time. The paper's gain
/// comes from replacing `nlevels` barriers with `nwaits` cheap flag
/// spins and from nnz-balanced chunking; a small critical-path term
/// models the serialization the DAG still imposes.
pub fn p2p_time(
    m: &MachineSpec,
    per_thread_blocks: &[usize],
    per_thread_waits: &[usize],
    critical_path_blocks: f64,
    cycles_per_block: f64,
    bytes_per_block: f64,
) -> f64 {
    let threads = per_thread_blocks.len().max(1);
    let total_blocks: usize = per_thread_blocks.iter().sum();
    let cycles: Vec<f64> = per_thread_blocks
        .iter()
        .map(|&b| b as f64 * cycles_per_block)
        .collect();
    let max_waits = per_thread_waits.iter().copied().max().unwrap_or(0) as f64;
    let compute = m.thread_compute_seconds(&cycles) + max_waits * m.p2p_wait_ns * 1e-9;
    // The DAG's critical path bounds the sweep regardless of threads.
    let critical = m.seconds(critical_path_blocks * cycles_per_block);
    let bw = m.bandwidth_at(threads.min(m.cores));
    let memory = total_blocks as f64 * bytes_per_block / (bw * 1e9);
    compute.max(critical).max(memory)
}

fn chunk(n: usize, k: usize, t: usize) -> std::ops::Range<usize> {
    let base = n / k;
    let extra = n % k;
    let start = t * base + t.min(extra);
    let len = base + usize::from(t < extra);
    start..(start + len).min(n)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m() -> MachineSpec {
        MachineSpec::xeon_e5_2690v2()
    }

    #[test]
    fn edge_loop_scales_with_threads() {
        let costs = EdgeLoopCosts::default();
        let e = 1_000_000usize;
        let t1 = edge_loop_time(&m(), &[e], costs.scalar_aos, costs.dram_bytes_per_edge, 0.0);
        let per4 = vec![e / 4; 4];
        let t4 = edge_loop_time(&m(), &per4, costs.scalar_aos, costs.dram_bytes_per_edge, 0.0);
        assert!(t4 < t1 / 3.0, "t1={t1} t4={t4}");
    }

    #[test]
    fn imbalance_hurts() {
        let costs = EdgeLoopCosts::default();
        let balanced = vec![250_000usize; 4];
        let skewed = vec![400_000usize, 200_000, 200_000, 200_000];
        let tb = edge_loop_time(&m(), &balanced, costs.simd, costs.dram_bytes_per_edge, 0.0);
        let ts = edge_loop_time(&m(), &skewed, costs.simd, costs.dram_bytes_per_edge, 0.0);
        assert!(ts > tb * 1.3);
    }

    #[test]
    fn atomics_add_cost() {
        let costs = EdgeLoopCosts::default();
        let e = vec![100_000usize; 4];
        let plain = edge_loop_time(&m(), &e, costs.scalar_aos, costs.dram_bytes_per_edge, 0.0);
        let atomic = edge_loop_time(&m(), &e, costs.scalar_aos, costs.dram_bytes_per_edge, 8.0);
        assert!(atomic > plain * 1.5, "plain {plain} atomic {atomic}");
    }

    #[test]
    fn variant_ordering_matches_paper() {
        let c = EdgeLoopCosts::default();
        assert!(c.scalar_soa > c.scalar_aos);
        assert!(c.scalar_aos > c.simd);
        assert!(c.simd > c.simd_prefetch);
        // cumulative single-thread gain ≈ 1.4 * 1.4 * 1.15 ≈ 2.25
        let gain = c.scalar_soa / c.simd_prefetch;
        assert!((2.0..2.6).contains(&gain), "gain {gain}");
    }

    #[test]
    fn level_schedule_pays_barriers() {
        // Many thin levels vs few wide levels with identical total work:
        // thin levels must cost more.
        let wide: Vec<Vec<usize>> = vec![vec![7; 1000]; 10];
        let thin: Vec<Vec<usize>> = vec![vec![7; 10]; 1000];
        let tw = level_sched_time(&m(), 10, &wide, 40.0, 150.0);
        let tt = level_sched_time(&m(), 10, &thin, 40.0, 150.0);
        assert!(tt > tw, "thin {tt} wide {tw}");
    }

    #[test]
    fn p2p_beats_levels_on_same_workload() {
        // Equal work; levels pay 500 barriers, p2p pays a few waits.
        let levels: Vec<Vec<usize>> = vec![vec![7; 40]; 500];
        let tl = level_sched_time(&m(), 10, &levels, 40.0, 150.0);
        let blocks = 500 * 40 * 7 / 10;
        let tp = p2p_time(
            &m(),
            &vec![blocks; 10],
            &vec![300; 10],
            7.0 * 500.0, // critical path: one row per level
            40.0,
            150.0,
        );
        assert!(tp < tl, "p2p {tp} levels {tl}");
    }

    #[test]
    fn bandwidth_floor_applies() {
        // Huge traffic with trivial compute: time = bytes / STREAM.
        let t = edge_loop_time(&m(), &[1_000_000; 10], 1.0, 10_000.0, 0.0);
        let expect = 10.0e6 * 10_000.0 / (34.8e9);
        assert!((t - expect).abs() < 0.05 * expect);
    }

    #[test]
    fn critical_path_bounds_p2p() {
        let t = p2p_time(&m(), &[100; 16], &[0; 16], 1.0e9, 40.0, 0.0);
        assert!(t >= m().seconds(1.0e9 * 40.0) * 0.99);
    }
}
