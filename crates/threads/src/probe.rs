//! Synchronization-cost calibration probe.
//!
//! The execution-policy chooser (`fun3d-solver`) needs the *measured*
//! cost of the two primitives a parallel GMRES iteration pays for on
//! this machine: launching one SPMD region through the doorbell, and
//! crossing one barrier phase inside a region. The `crates/machine`
//! model predicts both from a spec; this probe measures them on the live
//! pool so the model's sync terms can be replaced by reality (the same
//! measure-then-choose loop FASTEST-3D runs at node level).

use crate::{SpinBarrier, ThreadPool};
use fun3d_util::telemetry::metrics;
use std::time::Instant;

/// Measured synchronization costs of a live pool, seconds.
#[derive(Clone, Copy, Debug)]
pub struct SyncCosts {
    /// Wall cost of one empty `ThreadPool::run` (post + wait + retire).
    pub region_launch_s: f64,
    /// Wall cost of one `SpinBarrier::wait` phase with all workers
    /// participating, amortized inside a single region.
    pub barrier_phase_s: f64,
}

impl SyncCosts {
    /// Measures both costs on `pool`. Cheap (~a few hundred microseconds
    /// on an idle machine) but noisy on a loaded one: the median of
    /// `reps` batches is reported, so occasional preemption of one batch
    /// does not poison the estimate.
    pub fn measure(pool: &ThreadPool) -> SyncCosts {
        const REPS: usize = 5;
        const REGIONS: u32 = 32;
        const PHASES: u32 = 128;

        // Warm the pool (first launches fault in stacks, set the pace).
        for _ in 0..4 {
            pool.run(|_| {});
        }
        let mut launch = [0.0f64; REPS];
        for l in launch.iter_mut() {
            let t0 = Instant::now();
            for _ in 0..REGIONS {
                pool.run(|_| {});
            }
            *l = t0.elapsed().as_secs_f64() / REGIONS as f64;
        }

        let barrier = SpinBarrier::new(pool.size());
        let mut phase = [0.0f64; REPS];
        for p in phase.iter_mut() {
            let t0 = Instant::now();
            pool.run(|_tid| {
                for _ in 0..PHASES {
                    barrier.wait();
                }
            });
            // One region launch rides along; subtract the median launch
            // cost so the estimate is the barrier alone.
            *p = (t0.elapsed().as_secs_f64() / PHASES as f64).max(0.0);
        }

        let region_launch_s = median(&mut launch);
        let gross_phase = median(&mut phase);
        let barrier_phase_s =
            (gross_phase - region_launch_s / PHASES as f64).max(1e-9);
        let costs = SyncCosts { region_launch_s, barrier_phase_s };
        costs.record_observed(pool.size());
        costs
    }

    /// Feeds this measurement into the per-pool-size live histograms
    /// that [`SyncCosts::observed`] reads back.
    fn record_observed(&self, pool_size: usize) {
        if !metrics::enabled() {
            return;
        }
        metrics::histogram(&format!("threads.p{pool_size}.region_launch_ns"))
            .record((self.region_launch_s * 1e9) as u64);
        metrics::histogram(&format!("threads.p{pool_size}.barrier_phase_ns"))
            .record((self.barrier_phase_s * 1e9) as u64);
    }

    /// The *observed* sync costs for a pool size, from the live metrics
    /// histograms every probe run feeds — the distribution-backed source
    /// the execution policy consults before paying for a fresh one-shot
    /// probe. `None` until at least one probe of this size has recorded.
    pub fn observed(pool_size: usize) -> Option<SyncCosts> {
        if !metrics::enabled() {
            return None;
        }
        let snap = metrics::snapshot();
        let launch = snap.hist(&format!("threads.p{pool_size}.region_launch_ns"))?;
        let phase = snap.hist(&format!("threads.p{pool_size}.barrier_phase_ns"))?;
        if launch.count == 0 || phase.count == 0 {
            return None;
        }
        Some(SyncCosts {
            region_launch_s: (launch.quantile(0.5) / 1e9).max(1e-9),
            barrier_phase_s: (phase.quantile(0.5) / 1e9).max(1e-9),
        })
    }
}

fn median(xs: &mut [f64]) -> f64 {
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
    xs[xs.len() / 2]
}

/// CPU time consumed by the whole process, nanoseconds
/// (`CLOCK_PROCESS_CPUTIME_ID`). The tree is hermetic (no libc crate),
/// so Linux/x86-64 issues `clock_gettime` directly, mirroring the
/// affinity syscall in `pool`; other targets report `None`.
#[cfg(all(target_os = "linux", target_arch = "x86_64"))]
pub fn process_cpu_time_ns() -> Option<u64> {
    let mut ts = [0i64; 2]; // timespec { tv_sec, tv_nsec }
    let ret: i64;
    // SAFETY: clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts) only writes
    // the two-word timespec; rcx/r11 are clobbered by `syscall`.
    unsafe {
        std::arch::asm!(
            "syscall",
            inlateout("rax") 228i64 => ret, // __NR_clock_gettime
            in("rdi") 2i64,                 // CLOCK_PROCESS_CPUTIME_ID
            in("rsi") ts.as_mut_ptr(),
            lateout("rcx") _,
            lateout("r11") _,
            options(nostack)
        );
    }
    if ret == 0 {
        Some((ts[0] as u64).saturating_mul(1_000_000_000).saturating_add(ts[1] as u64))
    } else {
        None
    }
}

#[cfg(not(all(target_os = "linux", target_arch = "x86_64")))]
pub fn process_cpu_time_ns() -> Option<u64> {
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sync_costs_are_positive_and_ordered() {
        let pool = ThreadPool::new(2);
        let c = SyncCosts::measure(&pool);
        assert!(c.region_launch_s > 0.0);
        assert!(c.barrier_phase_s > 0.0);
        // A barrier phase must be cheaper than a full doorbell round
        // trip plus worker wake; allow generous noise either way but
        // both must be microsecond-scale, not millisecond-scale stalls.
        assert!(c.region_launch_s < 0.05, "launch {}", c.region_launch_s);
        assert!(c.barrier_phase_s < 0.05, "phase {}", c.barrier_phase_s);
        // The probe feeds the live histograms, so the observed source now
        // answers for this pool size with a cost of the same decade.
        if metrics::enabled() {
            let o = SyncCosts::observed(pool.size()).expect("probe recorded");
            assert!(o.region_launch_s > 0.0 && o.region_launch_s < 0.05);
            assert!(o.barrier_phase_s > 0.0 && o.barrier_phase_s < 0.05);
        }
        // A size never probed has no observed costs.
        assert!(SyncCosts::observed(63).is_none());
    }

    #[cfg(all(target_os = "linux", target_arch = "x86_64"))]
    #[test]
    fn cpu_time_advances() {
        let a = process_cpu_time_ns().expect("clock_gettime");
        let mut acc = 0u64;
        for i in 0..200_000u64 {
            acc = acc.wrapping_add(i.wrapping_mul(2654435761));
        }
        std::hint::black_box(acc);
        let b = process_cpu_time_ns().expect("clock_gettime");
        assert!(b >= a);
    }
}
