//! Atomic accumulation into shared `f64` arrays.
//!
//! The paper's first edge-loop strategy ("Basic partitioning with
//! atomics") lets every thread update any vertex, resolving the
//! write-write races with atomic adds. x86 has no atomic f64 add, so —
//! exactly like an OpenMP `atomic` on a double — each add is a
//! compare-exchange loop on the 64-bit bit pattern.
//!
//! Contention is *measured*, not assumed: every CAS retry is counted,
//! and the view records the totals to telemetry as the
//! `atomicf64.retries` kernel counter (`calls` = contended adds,
//! `items` = total retries) once when it is dropped — one record per
//! parallel region, never from the inner loop.

use fun3d_util::telemetry;

#[cfg(not(fun3d_check))]
use std::sync::atomic::{AtomicU64, Ordering};

#[cfg(fun3d_check)]
use crate::sync_shim::{AtomicU64, Ordering};

/// A view of a mutable `f64` slice that permits concurrent atomic updates.
///
/// Constructed from an exclusive borrow, so for the view's lifetime the
/// atomics are the only access path — the reinterpretation is sound
/// because `AtomicU64` has the same size/alignment as `f64` and the borrow
/// checker keeps plain accesses out until the view is dropped.
///
/// Model builds (`cfg(fun3d_check)`) cannot reinterpret in place — the
/// checker's tracked atomic is wider than 8 bytes — so the view copies
/// the values into tracked atomics at construction and writes them back
/// at drop. The protocol, orderings, and retry accounting are identical.
pub struct AtomicF64View<'a> {
    #[cfg(not(fun3d_check))]
    cells: &'a [AtomicU64],
    #[cfg(fun3d_check)]
    cells: Vec<AtomicU64>,
    #[cfg(fun3d_check)]
    src: *mut f64,
    #[cfg(fun3d_check)]
    _borrow: std::marker::PhantomData<&'a mut [f64]>,
    /// Total CAS retries across all threads (Relaxed statistic; the
    /// region join orders it before the Drop-time read).
    retries: std::sync::atomic::AtomicU64,
    /// Adds that needed at least one retry.
    contended: std::sync::atomic::AtomicU64,
}

// SAFETY (fun3d_check builds only): `src` is a raw pointer solely so the
// copy-back in Drop can reach the borrowed slice; all shared access goes
// through the tracked atomics, and the PhantomData keeps the unique
// borrow alive for the view's lifetime.
#[cfg(fun3d_check)]
unsafe impl Send for AtomicF64View<'_> {}
#[cfg(fun3d_check)]
unsafe impl Sync for AtomicF64View<'_> {}

impl<'a> AtomicF64View<'a> {
    /// Wraps a mutable slice for the duration of a parallel region.
    #[cfg(not(fun3d_check))]
    pub fn new(xs: &'a mut [f64]) -> Self {
        // SAFETY: f64 and AtomicU64 are both 8 bytes with 8-byte alignment
        // on all supported targets; we hold the unique &mut borrow, so no
        // non-atomic access can alias the cells while the view lives.
        let cells = unsafe { &*(xs as *mut [f64] as *const [AtomicU64]) };
        AtomicF64View {
            cells,
            retries: std::sync::atomic::AtomicU64::new(0),
            contended: std::sync::atomic::AtomicU64::new(0),
        }
    }

    /// Wraps a mutable slice for the duration of a parallel region
    /// (model build: copy-in/copy-back through tracked atomics).
    #[cfg(fun3d_check)]
    pub fn new(xs: &'a mut [f64]) -> Self {
        AtomicF64View {
            cells: xs.iter().map(|&x| AtomicU64::new(x.to_bits())).collect(),
            src: xs.as_mut_ptr(),
            _borrow: std::marker::PhantomData,
            retries: std::sync::atomic::AtomicU64::new(0),
            contended: std::sync::atomic::AtomicU64::new(0),
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// True when the view is empty.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Atomically `x[i] += v` via a CAS loop. Returns the number of CAS
    /// retries (0 when uncontended), which the machine model uses to
    /// account for contention.
    #[inline]
    pub fn fetch_add(&self, i: usize, v: f64) -> u32 {
        let cell = &self.cells[i];
        let mut retries = 0;
        // Relaxed throughout the loop: the adds commute and publish no
        // other data; cross-thread visibility of the *final* values is
        // ordered by the region join (pool `done`/Acquire handshake)
        // before any non-atomic read of the slice.
        let mut cur = cell.load(Ordering::Relaxed);
        loop {
            let new = f64::to_bits(f64::from_bits(cur) + v);
            match cell.compare_exchange_weak(cur, new, Ordering::Relaxed, Ordering::Relaxed) {
                Ok(_) => break,
                Err(actual) => {
                    cur = actual;
                    retries += 1;
                }
            }
        }
        if retries > 0 {
            // Relaxed statistics: totals are read after the region joins.
            self.retries
                .fetch_add(retries as u64, std::sync::atomic::Ordering::Relaxed);
            self.contended
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        }
        retries
    }

    /// Atomic read of element `i`.
    #[inline]
    pub fn load(&self, i: usize) -> f64 {
        // Relaxed: the caller orders cross-thread write→read pairs with
        // region joins / flags; the atomicity is all this read needs.
        f64::from_bits(self.cells[i].load(Ordering::Relaxed))
    }

    /// Atomic store of element `i`.
    #[inline]
    pub fn store(&self, i: usize, v: f64) {
        // Relaxed: same contract as `load` — values, not publication.
        self.cells[i].store(f64::to_bits(v), Ordering::Relaxed);
    }

    /// Total CAS retries observed so far (Relaxed read; exact once the
    /// region has joined).
    pub fn retries(&self) -> u64 {
        self.retries.load(std::sync::atomic::Ordering::Relaxed)
    }
}

impl Drop for AtomicF64View<'_> {
    fn drop(&mut self) {
        #[cfg(fun3d_check)]
        {
            // Copy-back: the unique borrow revives when the view dies.
            for (i, cell) in self.cells.iter().enumerate() {
                // SAFETY: src/len came from the borrowed slice; `i` is in
                // bounds by construction.
                unsafe { *self.src.add(i) = f64::from_bits(cell.load(Ordering::Relaxed)) };
            }
        }
        let retries = self.retries.load(std::sync::atomic::Ordering::Relaxed);
        if retries > 0 {
            telemetry::record_kernel(
                "atomicf64.retries",
                telemetry::KernelCounts {
                    calls: self.contended.load(std::sync::atomic::Ordering::Relaxed),
                    items: retries,
                    bytes_read: 0,
                    bytes_written: 0,
                    flops: 0,
                },
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ThreadPool;

    #[test]
    fn single_thread_add() {
        let mut xs = vec![1.0, 2.0];
        {
            let view = AtomicF64View::new(&mut xs);
            view.fetch_add(0, 0.5);
            view.fetch_add(1, -2.0);
            assert_eq!(view.load(0), 1.5);
        }
        assert_eq!(xs, vec![1.5, 0.0]);
    }

    #[test]
    fn store_and_len() {
        let mut xs = vec![0.0; 3];
        let view = AtomicF64View::new(&mut xs);
        view.store(2, 7.0);
        assert_eq!(view.load(2), 7.0);
        assert_eq!(view.len(), 3);
        assert!(!view.is_empty());
    }

    #[test]
    fn concurrent_adds_sum_exactly() {
        // Adding integers (exactly representable) from many threads must
        // lose nothing: atomicity check.
        let pool = ThreadPool::new(4);
        let mut xs = vec![0.0f64; 8];
        {
            let view = AtomicF64View::new(&mut xs);
            pool.run(|_tid| {
                for k in 0..1000 {
                    view.fetch_add(k % 8, 1.0);
                }
            });
        }
        let total: f64 = xs.iter().sum();
        assert_eq!(total, 4.0 * 1000.0);
        for &x in &xs {
            assert_eq!(x, 500.0);
        }
    }

    #[test]
    fn empty_view() {
        let mut xs: Vec<f64> = Vec::new();
        let view = AtomicF64View::new(&mut xs);
        assert!(view.is_empty());
    }

    #[test]
    fn retry_totals_reach_telemetry() {
        // Plumbing check for the `atomicf64.retries` counter: force the
        // retry path deterministically by making the first CAS lose (the
        // cell changes between the view's load and its compare-exchange
        // in a controlled interleaving is hard to stage on one core, so
        // this test checks the accounting seam instead: a nonzero
        // `retries` total at drop must surface exactly one counter
        // record with matching items).
        telemetry::set_level(telemetry::Level::Counters);
        let before = telemetry::local_counters()
            .get("atomicf64.retries")
            .copied()
            .unwrap_or_default();
        {
            let mut xs = vec![0.0f64; 2];
            let view = AtomicF64View::new(&mut xs);
            // Seed the counters as a real contended run would.
            view.retries.fetch_add(3, std::sync::atomic::Ordering::Relaxed);
            view.contended.fetch_add(2, std::sync::atomic::Ordering::Relaxed);
            assert_eq!(view.retries(), 3);
        }
        let after = telemetry::local_counters()
            .get("atomicf64.retries")
            .copied()
            .unwrap_or_default();
        assert_eq!(after.items - before.items, 3, "retry total must be recorded");
        assert_eq!(after.calls - before.calls, 2, "contended-add count must be recorded");
    }
}
