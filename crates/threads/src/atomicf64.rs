//! Atomic accumulation into shared `f64` arrays.
//!
//! The paper's first edge-loop strategy ("Basic partitioning with
//! atomics") lets every thread update any vertex, resolving the
//! write-write races with atomic adds. x86 has no atomic f64 add, so —
//! exactly like an OpenMP `atomic` on a double — each add is a
//! compare-exchange loop on the 64-bit bit pattern.

use std::sync::atomic::{AtomicU64, Ordering};

/// A view of a mutable `f64` slice that permits concurrent atomic updates.
///
/// Constructed from an exclusive borrow, so for the view's lifetime the
/// atomics are the only access path — the reinterpretation is sound
/// because `AtomicU64` has the same size/alignment as `f64` and the borrow
/// checker keeps plain accesses out until the view is dropped.
pub struct AtomicF64View<'a> {
    cells: &'a [AtomicU64],
}

impl<'a> AtomicF64View<'a> {
    /// Wraps a mutable slice for the duration of a parallel region.
    pub fn new(xs: &'a mut [f64]) -> Self {
        // SAFETY: f64 and AtomicU64 are both 8 bytes with 8-byte alignment
        // on all supported targets; we hold the unique &mut borrow, so no
        // non-atomic access can alias the cells while the view lives.
        let cells = unsafe { &*(xs as *mut [f64] as *const [AtomicU64]) };
        AtomicF64View { cells }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// True when the view is empty.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Atomically `x[i] += v` via a CAS loop. Returns the number of CAS
    /// retries (0 when uncontended), which the machine model uses to
    /// account for contention.
    #[inline]
    pub fn fetch_add(&self, i: usize, v: f64) -> u32 {
        let cell = &self.cells[i];
        let mut retries = 0;
        let mut cur = cell.load(Ordering::Relaxed);
        loop {
            let new = f64::to_bits(f64::from_bits(cur) + v);
            match cell.compare_exchange_weak(cur, new, Ordering::Relaxed, Ordering::Relaxed) {
                Ok(_) => return retries,
                Err(actual) => {
                    cur = actual;
                    retries += 1;
                }
            }
        }
    }

    /// Atomic read of element `i`.
    #[inline]
    pub fn load(&self, i: usize) -> f64 {
        f64::from_bits(self.cells[i].load(Ordering::Relaxed))
    }

    /// Atomic store of element `i`.
    #[inline]
    pub fn store(&self, i: usize, v: f64) {
        self.cells[i].store(f64::to_bits(v), Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ThreadPool;

    #[test]
    fn single_thread_add() {
        let mut xs = vec![1.0, 2.0];
        {
            let view = AtomicF64View::new(&mut xs);
            view.fetch_add(0, 0.5);
            view.fetch_add(1, -2.0);
            assert_eq!(view.load(0), 1.5);
        }
        assert_eq!(xs, vec![1.5, 0.0]);
    }

    #[test]
    fn store_and_len() {
        let mut xs = vec![0.0; 3];
        let view = AtomicF64View::new(&mut xs);
        view.store(2, 7.0);
        assert_eq!(view.load(2), 7.0);
        assert_eq!(view.len(), 3);
        assert!(!view.is_empty());
    }

    #[test]
    fn concurrent_adds_sum_exactly() {
        // Adding integers (exactly representable) from many threads must
        // lose nothing: atomicity check.
        let pool = ThreadPool::new(4);
        let mut xs = vec![0.0f64; 8];
        {
            let view = AtomicF64View::new(&mut xs);
            pool.run(|_tid| {
                for k in 0..1000 {
                    view.fetch_add(k % 8, 1.0);
                }
            });
        }
        let total: f64 = xs.iter().sum();
        assert_eq!(total, 4.0 * 1000.0);
        for &x in &xs {
            assert_eq!(x, 500.0);
        }
    }

    #[test]
    fn empty_view() {
        let mut xs: Vec<f64> = Vec::new();
        let view = AtomicF64View::new(&mut xs);
        assert!(view.is_empty());
    }
}
