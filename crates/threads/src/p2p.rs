//! Point-to-point completion flags.
//!
//! The sparsified-synchronization triangular solver (Park et al. [26],
//! used by the paper for both TRSV and ILU) replaces per-level barriers
//! with fine-grained dependencies: a consumer row spins until each of its
//! (sparsified) producer rows has published completion. [`DoneFlags`] is
//! that mechanism — one epoch-tagged flag per task, `publish` with Release
//! and `wait_for` with Acquire so the produced data is visible.

use crate::sync_shim::{spin_hint, yield_now, AtomicU64, Ordering};

/// One completion flag per task, tagged with an epoch so the structure is
/// reusable across solves without clearing (clearing would itself need a
/// barrier).
///
/// Epoch wraparound: a flag last published at epoch `e` still holds `e`
/// arbitrarily many epochs later, so if the epoch counter ever wrapped
/// back to `e`, that stale flag would satisfy a waiter for work that has
/// not run. [`DoneFlags::next_epoch`] therefore resets every flag when
/// the counter wraps — an O(n) event once per 2⁶⁴ solves, i.e. never in
/// practice, but the guard makes the aliasing impossible rather than
/// merely implausible.
pub struct DoneFlags {
    flags: Vec<AtomicU64>,
    epoch: u64,
}

impl DoneFlags {
    /// Creates flags for `n` tasks, all unpublished.
    pub fn new(n: usize) -> Self {
        DoneFlags {
            flags: (0..n).map(|_| AtomicU64::new(0)).collect(),
            epoch: 1,
        }
    }

    /// Test constructor: like [`DoneFlags::new`] but starting at an
    /// arbitrary epoch, so wraparound behaviour is exercisable without
    /// 2⁶⁴ calls to `next_epoch`.
    pub fn with_start_epoch(n: usize, epoch: u64) -> Self {
        assert!(epoch >= 1, "epoch 0 is the never-published flag value");
        DoneFlags {
            flags: (0..n).map(|_| AtomicU64::new(0)).collect(),
            epoch,
        }
    }

    /// Number of tasks.
    pub fn len(&self) -> usize {
        self.flags.len()
    }

    /// True when there are no tasks.
    pub fn is_empty(&self) -> bool {
        self.flags.is_empty()
    }

    /// Starts a new solve: all tasks become unpublished in O(1).
    /// Requires external synchronization (call between parallel regions).
    pub fn next_epoch(&mut self) {
        if self.epoch == u64::MAX {
            // Wraparound: flags published in bygone epochs must not alias
            // the restarted counter. `&mut self` (plus the documented
            // between-regions contract) means no concurrent waiter exists,
            // so plain Relaxed stores suffice.
            for f in &self.flags {
                f.store(0, Ordering::Relaxed);
            }
            self.epoch = 1;
        } else {
            self.epoch += 1;
        }
    }

    /// Current epoch (used by tests).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Marks task `i` complete for the current epoch (Release: makes the
    /// task's writes visible to waiters).
    #[inline]
    pub fn publish(&self, i: usize) {
        // Release: publishes the producer task's data writes to any
        // consumer whose Acquire load in `is_done`/`wait_for` observes
        // this epoch value — the edge replacing a per-level barrier.
        self.flags[i].store(self.epoch, Ordering::Release);
    }

    /// True if task `i` has completed in the current epoch.
    #[inline]
    pub fn is_done(&self, i: usize) -> bool {
        // Acquire: pairs with `publish`'s Release store, so observing the
        // current epoch also makes the producer's writes visible.
        self.flags[i].load(Ordering::Acquire) == self.epoch
    }

    /// Spins until task `i` completes in the current epoch.
    #[inline]
    pub fn wait_for(&self, i: usize) {
        let mut spins = 0u32;
        // Acquire: same pairing as `is_done` — the loop exit is the
        // consumer's entitlement to read the producer row's results.
        while self.flags[i].load(Ordering::Acquire) != self.epoch {
            spins = spins.wrapping_add(1);
            if spins % 64 == 0 {
                yield_now();
            } else {
                spin_hint();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ThreadPool;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn publish_then_done() {
        let flags = DoneFlags::new(4);
        assert!(!flags.is_done(2));
        flags.publish(2);
        assert!(flags.is_done(2));
        assert!(!flags.is_done(0));
    }

    #[test]
    fn epoch_reset_clears_all() {
        let mut flags = DoneFlags::new(3);
        flags.publish(0);
        flags.publish(1);
        flags.publish(2);
        flags.next_epoch();
        assert!(!flags.is_done(0));
        assert!(!flags.is_done(1));
        assert!(!flags.is_done(2));
        flags.publish(1);
        assert!(flags.is_done(1));
    }

    #[test]
    fn epoch_wraparound_does_not_alias_stale_flags() {
        // A flag published at the final epoch must not read as done after
        // the counter wraps — and, the sharper aliasing case, a flag
        // published at some epoch `e` long ago must not read as done when
        // the wrapped counter climbs back to `e`.
        let mut flags = DoneFlags::with_start_epoch(3, u64::MAX - 1);
        flags.publish(0); // holds MAX - 1
        flags.next_epoch(); // epoch = MAX
        assert!(!flags.is_done(0), "stale flag from the previous epoch");
        flags.publish(1); // holds MAX
        flags.next_epoch(); // wraps: reset + epoch = 1
        assert_eq!(flags.epoch(), 1);
        assert!(!flags.is_done(0), "pre-wrap flag must not survive the wrap");
        assert!(!flags.is_done(1), "final-epoch flag must not survive the wrap");
        // Without the reset, task 0's ghost value (MAX - 1) would come
        // back to life when the counter reached MAX - 1 again; after the
        // reset the structure behaves exactly like a fresh one.
        flags.publish(2);
        assert!(flags.is_done(2));
        flags.next_epoch();
        assert_eq!(flags.epoch(), 2);
        assert!(!flags.is_done(2));
    }

    #[test]
    fn wait_for_sees_producer_writes() {
        // Producer writes data then publishes; consumer waits then reads.
        let pool = ThreadPool::new(2);
        let flags = DoneFlags::new(1);
        let data = AtomicUsize::new(0);
        let observed = AtomicUsize::new(0);
        pool.run(|tid| {
            if tid == 0 {
                data.store(42, Ordering::Relaxed);
                flags.publish(0);
            } else {
                flags.wait_for(0);
                observed.store(data.load(Ordering::Relaxed), Ordering::SeqCst);
            }
        });
        assert_eq!(observed.load(Ordering::SeqCst), 42);
    }

    #[test]
    fn chain_of_dependencies() {
        // Task i waits for i-1; order of completion must be 0..n.
        let n = 8;
        let pool = ThreadPool::new(4);
        let flags = DoneFlags::new(n);
        let order = std::sync::Mutex::new(Vec::new());
        pool.run(|tid| {
            // Static cyclic assignment of tasks to threads.
            for task in (0..n).filter(|t| t % 4 == tid) {
                if task > 0 {
                    flags.wait_for(task - 1);
                }
                order.lock().unwrap().push(task);
                flags.publish(task);
            }
        });
        let order = order.into_inner().unwrap();
        assert_eq!(order, (0..n).collect::<Vec<_>>());
    }
}
