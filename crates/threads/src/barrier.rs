//! A spinning sense-reversing barrier.
//!
//! Level-scheduled sparse recurrences synchronize after *every* level of
//! the task DAG — hundreds of barriers per triangular solve — so barrier
//! latency is on the critical path (one of the two problems the paper's
//! P2P sparsification attacks). A centralized sense-reversing barrier with
//! busy-waiting keeps the cost to one atomic RMW plus a spin, with no
//! kernel round trips.

use crate::sync_shim::{spin_hint, yield_now, AtomicBool, AtomicU64, AtomicUsize, Ordering};
use fun3d_util::telemetry;

/// Barrier phases completed across *every* [`SpinBarrier`] in the
/// process (always counted, leader-only increment). Delta this around a
/// solve for the flight recorder's barrier-crossing summary.
static TOTAL_CROSSINGS: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

/// Process-wide barrier crossings so far (see [`TOTAL_CROSSINGS`]).
pub fn total_crossings() -> u64 {
    TOTAL_CROSSINGS.load(std::sync::atomic::Ordering::Relaxed)
}

/// A reusable spinning barrier for a fixed number of participants.
pub struct SpinBarrier {
    count: AtomicUsize,
    sense: AtomicBool,
    crossings: AtomicU64,
    parties: usize,
    /// Pace tracking for the adaptive waiter nap (real builds only; the
    /// model checker sees the pure spin protocol). The leader stamps each
    /// crossing with nanoseconds since construction; the EWMA of the
    /// inter-crossing interval sizes the nap a late waiter may take, so a
    /// descheduled party costs at most ~1/8 of a phase in extra latency
    /// instead of a yield storm on an oversubscribed core.
    #[cfg(not(fun3d_check))]
    origin: std::time::Instant,
    #[cfg(not(fun3d_check))]
    last_cross_ns: std::sync::atomic::AtomicU64,
    #[cfg(not(fun3d_check))]
    pace_ns: std::sync::atomic::AtomicU64,
    #[cfg(not(fun3d_check))]
    adaptive: bool,
}

impl SpinBarrier {
    /// Creates a barrier for `parties` threads (`parties >= 1`), with
    /// the adaptive nap defaulted from `FUN3D_ADAPTIVE_SPIN`.
    pub fn new(parties: usize) -> Self {
        Self::with_adaptive(parties, crate::adaptive_spin_default())
    }

    /// Creates a barrier with the adaptive waiter nap explicitly on or
    /// off (construction-time so tests can compare both in one process).
    pub fn with_adaptive(parties: usize, adaptive: bool) -> Self {
        #[cfg(fun3d_check)]
        let _ = adaptive;
        assert!(parties >= 1);
        SpinBarrier {
            count: AtomicUsize::new(0),
            sense: AtomicBool::new(false),
            crossings: AtomicU64::new(0),
            parties,
            #[cfg(not(fun3d_check))]
            origin: std::time::Instant::now(),
            #[cfg(not(fun3d_check))]
            last_cross_ns: std::sync::atomic::AtomicU64::new(0),
            #[cfg(not(fun3d_check))]
            pace_ns: std::sync::atomic::AtomicU64::new(0),
            #[cfg(not(fun3d_check))]
            adaptive,
        }
    }

    /// Current inter-crossing pace estimate, ns (0 = none yet; model
    /// builds always report 0).
    pub fn pace_ns(&self) -> u64 {
        #[cfg(not(fun3d_check))]
        {
            self.pace_ns.load(Ordering::Relaxed)
        }
        #[cfg(fun3d_check)]
        {
            0
        }
    }

    /// Leader-only: fold the interval since the previous crossing into
    /// the pace estimate. No-op in model builds.
    #[cfg(not(fun3d_check))]
    fn note_crossing(&self) {
        let now = self.origin.elapsed().as_nanos().min(u64::MAX as u128) as u64;
        // Relaxed swap: only the (unique) leader of a phase writes here.
        let last = self.last_cross_ns.swap(now, Ordering::Relaxed);
        if last == 0 || now <= last {
            return;
        }
        let d = now - last;
        // Discard outliers (an idle gap between solves is not a phase).
        if d > 10_000_000 {
            return;
        }
        // Live inter-crossing distribution, same outlier filter as the
        // pace EWMA — the observed barrier cost AutoPolicy consults.
        telemetry::metrics::record_ns("threads.barrier_wait_ns", d);
        let old = self.pace_ns.load(Ordering::Relaxed);
        let new = if old == 0 { d } else { (3 * old + d) / 4 };
        self.pace_ns.store(new.max(1), Ordering::Relaxed);
    }
    #[cfg(fun3d_check)]
    fn note_crossing(&self) {}

    /// Number of participating threads.
    pub fn parties(&self) -> usize {
        self.parties
    }

    /// Completed barrier phases over this barrier's lifetime — together
    /// with `ThreadPool::regions_launched` this quantifies the
    /// synchronization a solver iteration actually pays.
    pub fn crossings(&self) -> u64 {
        // Relaxed: monotonic statistic; callers read it quiescently.
        self.crossings.load(Ordering::Relaxed)
    }

    /// Blocks (spinning) until all `parties` threads have called `wait`.
    /// Returns `true` on exactly one thread per phase (the last arriver),
    /// mirroring `std::sync::Barrier`'s leader flag.
    pub fn wait(&self) -> bool {
        // Relaxed: `sense` only flips between this thread's own phases;
        // the phase boundary itself is ordered by the AcqRel RMW below
        // plus the Release/Acquire sense handshake.
        let my_sense = !self.sense.load(Ordering::Relaxed);
        // AcqRel: the Acquire half orders this thread after every earlier
        // arriver's Release half, so the closing arriver has seen all
        // pre-barrier writes; the Release half publishes this thread's
        // pre-barrier writes into that chain.
        let arrived = self.count.fetch_add(1, Ordering::AcqRel) + 1;
        if arrived == self.parties {
            // Relaxed: the reset only needs to be ordered before the NEXT
            // phase's arrivals, which the Release sense store below (and
            // each waiter's Acquire of it) provides.
            self.count.store(0, Ordering::Relaxed);
            // Relaxed: monotonic stat, read casually via `crossings()`.
            self.crossings.fetch_add(1, Ordering::Relaxed);
            TOTAL_CROSSINGS.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            self.note_crossing();
            // Release: publishes the closing arriver's accumulated view
            // (count RMW chain) — and the count reset — to every waiter's
            // Acquire sense load; this is the edge that makes data
            // written before the barrier visible after it.
            self.sense.store(my_sense, Ordering::Release);
            // One record per completed phase (leader only, after the
            // waiters are released), so the telemetry "barrier.phase"
            // counter is the global crossing count, not parties x
            // crossings.
            telemetry::record_kernel(
                "barrier.phase",
                telemetry::KernelCounts::once(self.parties as u64, 0, 0, 0),
            );
            true
        } else {
            let mut spins = 0u32;
            // Acquire: pairs with the leader's Release sense store, so
            // every pre-barrier write of every party (gathered through
            // the AcqRel count chain) is visible once the spin exits.
            while self.sense.load(Ordering::Acquire) != my_sense {
                spins = spins.wrapping_add(1);
                if spins % 64 == 0 {
                    // On an oversubscribed machine (this container has a
                    // single core) pure spinning livelocks; yield lets the
                    // remaining parties run.
                    yield_now();
                    // Past a few hundred waits the phase is clearly
                    // stalled on a descheduled party: nap for ~1/8 of the
                    // observed phase pace instead of a yield storm, so
                    // the party holding the work gets the core. Real
                    // builds only; bounded so a bad pace estimate costs
                    // at most 100 us per wait.
                    #[cfg(not(fun3d_check))]
                    if self.adaptive && spins >= 256 {
                        let pace = self.pace_ns.load(Ordering::Relaxed);
                        if pace > 0 {
                            let nap = (pace / 8).clamp(1_000, 100_000);
                            std::thread::sleep(std::time::Duration::from_nanos(nap));
                        }
                    }
                } else {
                    spin_hint();
                }
            }
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ThreadPool;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn single_party_never_blocks() {
        let b = SpinBarrier::new(1);
        for _ in 0..10 {
            assert!(b.wait());
        }
    }

    #[test]
    fn synchronizes_phases() {
        // Each thread increments a phase counter, waits, and checks that
        // the counter equals parties * phase — i.e. no thread raced ahead.
        let parties = 4;
        let pool = ThreadPool::new(parties);
        let barrier = SpinBarrier::new(parties);
        let counter = AtomicUsize::new(0);
        let failures = AtomicUsize::new(0);
        pool.run(|_tid| {
            for phase in 1..=20usize {
                counter.fetch_add(1, Ordering::SeqCst);
                barrier.wait();
                if counter.load(Ordering::SeqCst) < parties * phase {
                    failures.fetch_add(1, Ordering::SeqCst);
                }
                barrier.wait();
            }
        });
        assert_eq!(failures.load(Ordering::SeqCst), 0);
    }

    #[test]
    fn exactly_one_leader_per_phase() {
        let parties = 3;
        let pool = ThreadPool::new(parties);
        let barrier = SpinBarrier::new(parties);
        let leaders = AtomicUsize::new(0);
        pool.run(|_tid| {
            for _ in 0..10 {
                if barrier.wait() {
                    leaders.fetch_add(1, Ordering::SeqCst);
                }
            }
        });
        assert_eq!(leaders.load(Ordering::SeqCst), 10);
    }
}
