//! The synchronization shim the protocol modules are written against.
//!
//! Re-export of [`fun3d_check::shim`]: plain `std::sync::atomic` types
//! (plus an untracked `UnsafeCell` wrapper and std spin/yield hints) in
//! normal builds, and the model checker's tracked types when the
//! workspace is compiled with `RUSTFLAGS="--cfg fun3d_check"`. Protocol
//! code imports orderings, atomics, cells, and wait hints from here and
//! nowhere else — that single import line is what makes the doorbell,
//! barrier, P2P flags, tree-reduce, and telemetry-ring protocols
//! checkable without a second copy of their logic.
//!
//! See `crates/check/src/shim.rs` for the exact surface and the
//! model-mode semantics (including the documented under-approximations).

pub use fun3d_check::shim::*;
