//! Shared-memory threading runtime for the FUN3D kernels.
//!
//! This crate replaces the OpenMP runtime the paper used. It provides the
//! exact scheduling ingredients the paper's strategies need:
//!
//! * a persistent [`ThreadPool`] whose workers execute SPMD regions
//!   (`f(tid)` on every thread, like an `omp parallel` region), launched
//!   through a spin-doorbell so a region costs a few atomic ops,
//! * a [`Team`] context ([`team`]) — barrier, per-thread scratch, and a
//!   deterministic [`TreeReduce`] — so whole solver iterations run
//!   inside one region separated by barrier phases,
//! * a [`PoolSet`] checkout/checkin free-list ([`lease`]) handing those
//!   persistent pools across concurrent jobs (one exclusive launcher at
//!   a time, no pool churn) with a budget high-water mark,
//! * static range chunking ([`chunk_range`]) for "basic partitioning",
//! * a spinning sense-reversing [`SpinBarrier`] for level-scheduled sparse
//!   recurrences (barrier after each level),
//! * point-to-point synchronization cells ([`p2p::DoneFlags`]) for the
//!   sparsified-synchronization TRSV/ILU of Park et al. [26],
//! * atomic `f64` accumulation ([`atomicf64`]) for the
//!   "basic partitioning with atomics" edge-loop strategy,
//! * a cfg-switched synchronization shim ([`sync_shim`]) — std atomics
//!   in normal builds, `fun3d-check`'s tracked atomics under
//!   `--cfg fun3d_check` — so every protocol above runs unmodified
//!   beneath the deterministic model checker.

pub mod atomicf64;
pub mod barrier;
pub mod lease;
pub mod p2p;
pub mod pool;
pub mod probe;
pub mod sync_shim;
pub mod team;

pub use atomicf64::AtomicF64View;
pub use barrier::SpinBarrier;
pub use lease::{PoolLease, PoolSet};
pub use p2p::DoneFlags;
pub use pool::{adaptive_spin_default, Bell, JobPtr, ThreadPool};
pub use probe::SyncCosts;
pub use team::{Team, TeamMember, TeamSlice, TreeReduce};

/// Schedulable cores as the OS reports them (`available_parallelism`,
/// which respects affinity masks and cgroup quotas), 1 on failure.
/// Kernels with barrier phases consult this to avoid spinning an
/// oversubscribed pool through scheduler round-trips.
pub fn available_cores() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Splits `0..n` into `nthreads` near-equal contiguous chunks and returns
/// chunk `tid` as a half-open range. The first `n % nthreads` chunks get
/// one extra element, so sizes differ by at most one.
pub fn chunk_range(n: usize, nthreads: usize, tid: usize) -> std::ops::Range<usize> {
    assert!(nthreads > 0 && tid < nthreads);
    let base = n / nthreads;
    let extra = n % nthreads;
    let start = tid * base + tid.min(extra);
    let len = base + usize::from(tid < extra);
    start..(start + len).min(n)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunks_cover_range_exactly() {
        for n in [0usize, 1, 7, 64, 1000, 1001] {
            for t in [1usize, 2, 3, 7, 16] {
                let mut covered = 0usize;
                let mut prev_end = 0usize;
                for tid in 0..t {
                    let r = chunk_range(n, t, tid);
                    assert_eq!(r.start, prev_end, "chunks must be contiguous");
                    prev_end = r.end;
                    covered += r.len();
                }
                assert_eq!(prev_end, n);
                assert_eq!(covered, n);
            }
        }
    }

    #[test]
    fn chunks_balanced_within_one() {
        for n in [10usize, 11, 99] {
            let t = 4;
            let sizes: Vec<usize> = (0..t).map(|tid| chunk_range(n, t, tid).len()).collect();
            let min = *sizes.iter().min().unwrap();
            let max = *sizes.iter().max().unwrap();
            assert!(max - min <= 1);
        }
    }

    #[test]
    #[should_panic]
    fn tid_out_of_range_panics() {
        chunk_range(10, 2, 2);
    }
}
