//! Team execution context for persistent SPMD regions.
//!
//! A [`Team`] gives the threads of one pool region the collective
//! machinery an OpenMP parallel region would have: a shared
//! [`SpinBarrier`], per-thread cache-padded scratch slots, a leader
//! broadcast cell, and a deterministic [`TreeReduce`] combining
//! primitive. With these, an entire GMRES iteration (SpMV → triangular
//! solves → orthogonalization → update) runs inside **one**
//! `ThreadPool::run`, separated by barrier phases instead of region
//! boundaries — the paper's "whole solve in one parallel region"
//! restructuring.
//!
//! Reductions are **bitwise reproducible at a fixed thread count**: each
//! thread deposits its partial into its own slot, the fan-in combines the
//! slots in thread order (0, 1, …, nt−1), and the result is fanned out
//! through a broadcast cell. The combine order never depends on arrival
//! order, so repeated runs agree bit-for-bit — the same contract as the
//! per-op `vecops::par` reductions, which is what makes the persistent-
//! region and region-per-op solver paths produce identical histories.

use crate::barrier::SpinBarrier;
use crate::sync_shim::ShimCell;
use std::cell::UnsafeCell;

/// f64s per padding unit: slots are rounded to 64-byte lines so two
/// threads' partials never share a cache line (no reduction false
/// sharing).
const LINE_F64: usize = 8;

fn padded(width: usize) -> usize {
    width.div_ceil(LINE_F64) * LINE_F64
}

/// A borrow-erased view of an `f64` slice shared across the threads of a
/// region. The type is `Send + Sync` so a region closure can capture it;
/// every access is `unsafe` because disjointness and phase ordering are
/// the caller's contract (the same discipline as the kernels' `SendPtr`).
#[derive(Clone, Copy)]
pub struct TeamSlice {
    ptr: *mut f64,
    len: usize,
}

unsafe impl Send for TeamSlice {}
unsafe impl Sync for TeamSlice {}

impl TeamSlice {
    /// Wraps a uniquely borrowed slice. The borrow is erased: the caller
    /// must not touch `s` through any other path until the region using
    /// the view has completed.
    pub fn new(s: &mut [f64]) -> TeamSlice {
        TeamSlice {
            ptr: s.as_mut_ptr(),
            len: s.len(),
        }
    }

    /// Wraps a raw pointer/length pair. Used for read-only shared inputs
    /// (cast from `*const`) where the team protocol guarantees no write,
    /// or for buffers whose unique borrow was erased further up the
    /// stack. The caller owns all aliasing reasoning.
    pub fn from_raw(ptr: *mut f64, len: usize) -> TeamSlice {
        TeamSlice { ptr, len }
    }

    /// Element count.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Raw base pointer.
    pub fn as_ptr(&self) -> *mut f64 {
        self.ptr
    }

    /// Reads element `i`.
    ///
    /// # Safety
    /// `i < len`, and no thread may be writing `i` concurrently (order
    /// cross-thread write→read pairs with a barrier or published flag).
    #[inline]
    pub unsafe fn get(&self, i: usize) -> f64 {
        debug_assert!(i < self.len);
        *self.ptr.add(i)
    }

    /// Writes element `i`.
    ///
    /// # Safety
    /// `i < len`, and no other thread may access `i` concurrently.
    #[inline]
    pub unsafe fn set(&self, i: usize, v: f64) {
        debug_assert!(i < self.len);
        *self.ptr.add(i) = v;
    }

    /// A shared sub-slice view.
    ///
    /// # Safety
    /// In-bounds, and reads must be ordered after any cross-thread writes.
    #[inline]
    pub unsafe fn slice(&self, range: std::ops::Range<usize>) -> &[f64] {
        debug_assert!(range.end <= self.len);
        std::slice::from_raw_parts(self.ptr.add(range.start), range.len())
    }

    /// A mutable sub-slice view.
    ///
    /// # Safety
    /// In-bounds, and the range must be accessed by exactly one thread
    /// for the duration of the borrow.
    #[inline]
    #[allow(clippy::mut_from_ref)]
    pub unsafe fn slice_mut(&self, range: std::ops::Range<usize>) -> &mut [f64] {
        debug_assert!(range.end <= self.len);
        std::slice::from_raw_parts_mut(self.ptr.add(range.start), range.len())
    }
}

/// Deterministic fan-in/fan-out reduction over per-thread partials.
///
/// Every thread writes up to `width` partials into its padded slot, the
/// fan-in barrier closes, the phase leader combines slot values **in
/// thread order** and publishes the sums, and the fan-out barrier
/// releases all threads with identical results. Two barrier crossings per
/// combine, zero allocation, and a combine order independent of thread
/// arrival — fixed-`nt` bitwise reproducibility.
pub struct TreeReduce {
    nt: usize,
    width: usize,
    stride: usize,
    slots: UnsafeCell<Box<[f64]>>,
    result: UnsafeCell<Box<[f64]>>,
    /// One zero-sized tracked tag per slot: model builds bracket each
    /// slot access through its tag so the checker sees per-slot
    /// happens-before (whole-array tracking would flag the *disjoint*
    /// slot writes as races; separate boxed slots would lose the
    /// cache-line padding). Zero bytes and fully inlined away in normal
    /// builds.
    slot_tags: Box<[ShimCell<()>]>,
    /// Tracked tag bracketing the leader's `result` writes and the
    /// fan-out reads.
    result_tag: ShimCell<()>,
}

// SAFETY: slot `tid` is written only by thread `tid` before the fan-in
// barrier; `result` is written only by the phase leader between the two
// barriers. All cross-thread reads are barrier-ordered after the writes.
unsafe impl Sync for TreeReduce {}

impl TreeReduce {
    /// A reducer for `nt` threads combining up to `width` values at once.
    pub fn new(nt: usize, width: usize) -> TreeReduce {
        assert!(nt >= 1 && width >= 1);
        let stride = padded(width);
        TreeReduce {
            nt,
            width,
            stride,
            slots: UnsafeCell::new(vec![0.0; nt * stride].into_boxed_slice()),
            result: UnsafeCell::new(vec![0.0; width].into_boxed_slice()),
            slot_tags: (0..nt).map(|_| ShimCell::new(())).collect(),
            result_tag: ShimCell::new(()),
        }
    }

    /// Maximum values combined per call.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Combines `partials` (one set per thread, `partials.len() <= width`)
    /// into thread-order sums visible to every thread in `out`.
    ///
    /// Every thread of the team must call this with the same `k =
    /// partials.len()`; the call synchronizes through `barrier` twice.
    pub fn combine(&self, tid: usize, barrier: &SpinBarrier, partials: &[f64], out: &mut [f64]) {
        let k = partials.len();
        assert!(k <= self.width, "combine of {k} > width {}", self.width);
        assert_eq!(out.len(), k);
        assert!(tid < self.nt);
        // SAFETY: slot `tid` is this thread's alone until the barrier.
        // The slot's tag cell brackets the write so model builds check
        // the per-slot happens-before the barrier is supposed to supply.
        self.slot_tags[tid].with_mut(|_| unsafe {
            let slots = &mut *self.slots.get();
            slots[tid * self.stride..tid * self.stride + k].copy_from_slice(partials);
        });
        if barrier.wait() {
            // Fan-in leader: thread-order sum per component.
            // SAFETY: all slot writes are ordered before this barrier;
            // only the single leader writes `result`.
            self.result_tag.with_mut(|_| unsafe {
                let slots = &*self.slots.get();
                let result = &mut *self.result.get();
                for j in 0..k {
                    let mut acc = 0.0;
                    for t in 0..self.nt {
                        acc += self.slot_tags[t].with(|_| slots[t * self.stride + j]);
                    }
                    result[j] = acc;
                }
            });
        }
        barrier.wait();
        // SAFETY: the leader's `result` write is ordered before the
        // fan-out barrier; the next `combine`'s leader write is ordered
        // after every thread re-arrives at its fan-in barrier, which is
        // after this read in each thread's program order.
        self.result_tag.with(|_| unsafe {
            let result = &*self.result.get();
            out.copy_from_slice(&result[..k]);
        });
    }

    /// Scalar convenience form of [`TreeReduce::combine`].
    pub fn combine1(&self, tid: usize, barrier: &SpinBarrier, partial: f64) -> f64 {
        let mut out = [0.0];
        self.combine(tid, barrier, &[partial], &mut out);
        out[0]
    }
}

/// Shared collective state for the threads of one persistent region.
pub struct Team {
    nthreads: usize,
    barrier: SpinBarrier,
    reduce: TreeReduce,
    scratch_stride: usize,
    scratch: UnsafeCell<Box<[f64]>>,
    /// Tracked cell: model builds race-check the root-write /
    /// barrier / all-read broadcast protocol.
    bcast: ShimCell<f64>,
}

// SAFETY: scratch slot `tid` is only handed to thread `tid` (member
// contract below); `bcast` is written by one root thread and read after a
// barrier.
unsafe impl Sync for Team {}

impl Team {
    /// A team of `nthreads` with `scratch` f64s of per-thread scratch and
    /// reductions up to `scratch.max(1)` wide.
    pub fn new(nthreads: usize, scratch: usize) -> Team {
        let width = scratch.max(1);
        Team {
            nthreads,
            barrier: SpinBarrier::new(nthreads),
            reduce: TreeReduce::new(nthreads, width),
            scratch_stride: padded(width),
            scratch: UnsafeCell::new(vec![0.0; nthreads * padded(width)].into_boxed_slice()),
            bcast: ShimCell::new(0.0),
        }
    }

    /// Team size.
    pub fn nthreads(&self) -> usize {
        self.nthreads
    }

    /// The team barrier.
    pub fn barrier(&self) -> &SpinBarrier {
        &self.barrier
    }

    /// The reduction primitive.
    pub fn reduce(&self) -> &TreeReduce {
        &self.reduce
    }

    /// This thread's view of the team.
    ///
    /// # Safety
    /// At most one live member per `tid`: the per-thread scratch slot is
    /// exclusive to the member, so two members with the same `tid` would
    /// alias mutable state.
    pub unsafe fn member(&self, tid: usize) -> TeamMember<'_> {
        assert!(tid < self.nthreads, "tid {tid} out of team of {}", self.nthreads);
        TeamMember { team: self, tid }
    }
}

/// One thread's handle on a [`Team`] (create via [`Team::member`]).
pub struct TeamMember<'a> {
    team: &'a Team,
    tid: usize,
}

impl<'a> TeamMember<'a> {
    /// This thread's id within the team.
    pub fn tid(&self) -> usize {
        self.tid
    }

    /// Team size.
    pub fn nthreads(&self) -> usize {
        self.team.nthreads
    }

    /// The underlying team.
    pub fn team(&self) -> &'a Team {
        self.team
    }

    /// This thread's static chunk of `0..n`.
    pub fn chunk(&self, n: usize) -> std::ops::Range<usize> {
        crate::chunk_range(n, self.team.nthreads, self.tid)
    }

    /// Barrier phase; returns the leader flag.
    pub fn barrier(&self) -> bool {
        self.team.barrier.wait()
    }

    /// Deterministic sum of one partial per thread (two barrier phases).
    pub fn sum(&self, partial: f64) -> f64 {
        self.team.reduce.combine1(self.tid, &self.team.barrier, partial)
    }

    /// Deterministic k-way sum of per-thread partials (two barrier
    /// phases for the whole batch).
    pub fn sums(&self, partials: &[f64], out: &mut [f64]) {
        self.team
            .reduce
            .combine(self.tid, &self.team.barrier, partials, out)
    }

    /// Broadcasts `value` from thread `root` to every thread (two
    /// barrier phases).
    pub fn broadcast(&self, root: usize, value: f64) -> f64 {
        if self.tid == root {
            // SAFETY: only the root writes, before the barrier.
            self.team.bcast.with_mut(|p| unsafe { *p = value });
        }
        self.barrier();
        // SAFETY: write ordered before the barrier; the next write to the
        // cell is ordered after every thread passes the closing barrier.
        let v = self.team.bcast.with(|p| unsafe { *p });
        self.barrier();
        v
    }

    /// This thread's exclusive scratch slot (cache-line padded).
    pub fn scratch(&mut self) -> &mut [f64] {
        let stride = self.team.scratch_stride;
        // SAFETY: slot `tid` belongs to this member alone (Team::member
        // contract) and `&mut self` prevents overlapping borrows.
        unsafe {
            let all = &mut *self.team.scratch.get();
            &mut all[self.tid * stride..(self.tid + 1) * stride]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ThreadPool;

    #[test]
    fn tree_reduce_matches_thread_order_sum() {
        let nt = 4;
        let pool = ThreadPool::new(nt);
        let team = Team::new(nt, 3);
        let outs = std::sync::Mutex::new(vec![vec![0.0; 3]; nt]);
        pool.run(|tid| {
            let tm = unsafe { team.member(tid) };
            let partials = [tid as f64 + 0.5, (tid * tid) as f64, -(tid as f64)];
            let mut out = vec![0.0; 3];
            tm.sums(&partials, &mut out);
            outs.lock().unwrap()[tid] = out;
        });
        let want = [
            (0..nt).map(|t| t as f64 + 0.5).sum::<f64>(),
            (0..nt).map(|t| (t * t) as f64).sum::<f64>(),
            (0..nt).map(|t| -(t as f64)).sum::<f64>(),
        ];
        for o in outs.lock().unwrap().iter() {
            assert_eq!(o.as_slice(), &want);
        }
    }

    #[test]
    fn tree_reduce_deterministic_across_repeats() {
        let nt = 3;
        let pool = ThreadPool::new(nt);
        let team = Team::new(nt, 1);
        let collect = || {
            let out = std::sync::Mutex::new(vec![0.0; nt]);
            pool.run(|tid| {
                let tm = unsafe { team.member(tid) };
                // Partials with rounding sensitivity: 0.1 is inexact.
                let s = tm.sum(0.1 * (tid as f64 + 1.0));
                out.lock().unwrap()[tid] = s;
            });
            out.into_inner().unwrap()
        };
        let a = collect();
        for _ in 0..10 {
            let b = collect();
            assert_eq!(a, b, "combine order must not depend on arrival order");
        }
        // All threads see the identical bit pattern.
        assert!(a.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn broadcast_reaches_all_threads() {
        let nt = 4;
        let pool = ThreadPool::new(nt);
        let team = Team::new(nt, 1);
        let got = std::sync::Mutex::new(vec![0.0; nt]);
        pool.run(|tid| {
            let tm = unsafe { team.member(tid) };
            for round in 0..5 {
                let root = round % nt;
                let v = tm.broadcast(root, if tid == root { root as f64 + 7.0 } else { -1.0 });
                if round == 4 {
                    got.lock().unwrap()[tid] = v;
                }
            }
        });
        assert!(got.lock().unwrap().iter().all(|&v| v == (4 % nt) as f64 + 7.0));
    }

    #[test]
    fn scratch_slots_are_disjoint() {
        let nt = 4;
        let pool = ThreadPool::new(nt);
        let team = Team::new(nt, 5);
        pool.run(|tid| {
            let mut tm = unsafe { team.member(tid) };
            for (i, s) in tm.scratch().iter_mut().enumerate() {
                *s = (tid * 100 + i) as f64;
            }
            tm.barrier();
            for (i, s) in tm.scratch().iter().enumerate().take(5) {
                assert_eq!(*s, (tid * 100 + i) as f64, "scratch overlap at tid {tid}");
            }
        });
    }

    #[test]
    fn team_slice_chunked_writes() {
        let nt = 3;
        let pool = ThreadPool::new(nt);
        let team = Team::new(nt, 1);
        let mut v = vec![0.0; 100];
        let vs = TeamSlice::new(&mut v);
        pool.run(|tid| {
            let tm = unsafe { team.member(tid) };
            let r = tm.chunk(vs.len());
            let mine = unsafe { vs.slice_mut(r.clone()) };
            for (off, x) in mine.iter_mut().enumerate() {
                *x = (r.start + off) as f64;
            }
        });
        for (i, &x) in v.iter().enumerate() {
            assert_eq!(x, i as f64);
        }
    }
}
