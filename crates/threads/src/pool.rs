//! A persistent SPMD thread pool.
//!
//! [`ThreadPool::run`] executes one closure on every worker, passing the
//! worker id, and returns when all workers have finished — the same
//! execution model as an OpenMP `parallel` region, which is what all of the
//! paper's threading strategies are written against. Workers are created
//! once and reused, so a `run` costs two channel messages per worker rather
//! than a thread spawn.

use fun3d_util::telemetry;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// Type-erased SPMD region: called as `job(tid)`.
type Job = Arc<dyn Fn(usize) + Send + Sync>;

struct Shared {
    remaining: Mutex<usize>,
    all_done: Condvar,
    panicked: AtomicBool,
}

/// A fixed-size pool of persistent worker threads executing SPMD regions.
pub struct ThreadPool {
    senders: Vec<Sender<Job>>,
    handles: Vec<JoinHandle<()>>,
    shared: Arc<Shared>,
    size: usize,
}

impl ThreadPool {
    /// Spawns a pool with `size` workers (`size >= 1`).
    pub fn new(size: usize) -> Self {
        assert!(size >= 1, "thread pool needs at least one worker");
        let shared = Arc::new(Shared {
            remaining: Mutex::new(0),
            all_done: Condvar::new(),
            panicked: AtomicBool::new(false),
        });
        let mut senders = Vec::with_capacity(size);
        let mut handles = Vec::with_capacity(size);
        for tid in 0..size {
            let (tx, rx): (Sender<Job>, Receiver<Job>) = channel();
            senders.push(tx);
            let shared = Arc::clone(&shared);
            handles.push(
                std::thread::Builder::new()
                    .name(format!("fun3d-worker-{tid}"))
                    .spawn(move || {
                        while let Ok(job) = rx.recv() {
                            let outcome = catch_unwind(AssertUnwindSafe(|| {
                                // Busy interval on this worker's timeline;
                                // per-thread totals of this span drive the
                                // utilization / load-imbalance report.
                                let _busy = telemetry::span("pool.region");
                                job(tid)
                            }));
                            if outcome.is_err() {
                                shared.panicked.store(true, Ordering::SeqCst);
                            }
                            let mut remaining = shared.remaining.lock().unwrap();
                            *remaining -= 1;
                            if *remaining == 0 {
                                shared.all_done.notify_all();
                            }
                        }
                    })
                    .expect("spawn pool worker"),
            );
        }
        ThreadPool {
            senders,
            handles,
            shared,
            size,
        }
    }

    /// Number of workers.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Runs `f(tid)` on every worker and blocks until all have returned.
    ///
    /// The closure may borrow stack data: `run` does not return until every
    /// worker has finished executing it, so the borrow cannot outlive the
    /// data (the same argument scoped threads rely on).
    ///
    /// # Panics
    /// Panics (after all workers finished the region) if any worker
    /// panicked inside `f`.
    pub fn run<'env, F>(&self, f: F)
    where
        F: Fn(usize) + Send + Sync + 'env,
    {
        {
            let mut remaining = self.shared.remaining.lock().unwrap();
            assert_eq!(*remaining, 0, "ThreadPool::run is not reentrant");
            *remaining = self.size;
        }
        self.shared.panicked.store(false, Ordering::SeqCst);

        // Erase the closure's lifetime so it can be shipped to the workers.
        // SAFETY: we block below until `remaining == 0`, i.e. until every
        // worker has dropped its use of the closure, so the borrowed
        // environment outlives all uses. The Arc itself may live longer in
        // a worker's channel only between jobs, but each worker receives
        // its own clone and drops it right after the call; the final
        // `wait` ensures no call is in flight when we return.
        let job: Job = unsafe {
            std::mem::transmute::<
                Arc<dyn Fn(usize) + Send + Sync + 'env>,
                Arc<dyn Fn(usize) + Send + Sync + 'static>,
            >(Arc::new(f))
        };
        for tx in &self.senders {
            tx.send(Arc::clone(&job)).expect("worker thread is alive");
        }
        drop(job);

        let mut remaining = self.shared.remaining.lock().unwrap();
        while *remaining != 0 {
            remaining = self.shared.all_done.wait(remaining).unwrap();
        }
        drop(remaining);
        if self.shared.panicked.swap(false, Ordering::SeqCst) {
            panic!("a pool worker panicked inside ThreadPool::run");
        }
    }

    /// Static-chunked parallel loop: each worker handles
    /// `chunk_range(n, size, tid)` through `body(tid, range)`.
    pub fn parallel_for<'env, F>(&self, n: usize, body: F)
    where
        F: Fn(usize, std::ops::Range<usize>) + Send + Sync + 'env,
    {
        let size = self.size;
        self.run(move |tid| {
            let range = crate::chunk_range(n, size, tid);
            let _chunk = telemetry::fine_span("pool.chunk");
            telemetry::record_kernel(
                "pool.chunk",
                telemetry::KernelCounts::once(range.len() as u64, 0, 0, 0),
            );
            body(tid, range)
        });
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        self.senders.clear(); // disconnect channels; workers exit recv loop
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn runs_on_every_worker() {
        let pool = ThreadPool::new(4);
        let hits = AtomicUsize::new(0);
        pool.run(|_tid| {
            hits.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(hits.load(Ordering::SeqCst), 4);
    }

    #[test]
    fn tids_are_distinct() {
        let pool = ThreadPool::new(8);
        let mask = AtomicUsize::new(0);
        pool.run(|tid| {
            mask.fetch_or(1 << tid, Ordering::SeqCst);
        });
        assert_eq!(mask.load(Ordering::SeqCst), 0xFF);
    }

    #[test]
    fn borrows_stack_data() {
        let pool = ThreadPool::new(3);
        let data: Vec<usize> = (0..300).collect();
        let sum = AtomicUsize::new(0);
        pool.parallel_for(data.len(), |_tid, range| {
            let local: usize = data[range].iter().sum();
            sum.fetch_add(local, Ordering::SeqCst);
        });
        assert_eq!(sum.load(Ordering::SeqCst), 300 * 299 / 2);
    }

    #[test]
    fn reusable_across_many_runs() {
        let pool = ThreadPool::new(2);
        let count = AtomicUsize::new(0);
        for _ in 0..50 {
            pool.run(|_| {
                count.fetch_add(1, Ordering::SeqCst);
            });
        }
        assert_eq!(count.load(Ordering::SeqCst), 100);
    }

    #[test]
    fn mutates_disjoint_slices() {
        let pool = ThreadPool::new(4);
        let mut data = vec![0.0f64; 1000];
        {
            let cell = std::sync::Mutex::new(&mut data);
            // Simpler pattern used by the kernels: split the buffer first.
            let mut guard = cell.lock().unwrap();
            let chunks: Vec<&mut [f64]> = guard.chunks_mut(250).collect();
            let chunks = std::sync::Mutex::new(chunks);
            pool.run(|tid| {
                let chunk = {
                    let mut c = chunks.lock().unwrap();
                    std::mem::take(&mut c[tid])
                };
                for x in chunk {
                    *x = tid as f64 + 1.0;
                }
            });
        }
        assert!(data[..250].iter().all(|&x| x == 1.0));
        assert!(data[750..].iter().all(|&x| x == 4.0));
    }

    #[test]
    fn worker_panic_propagates() {
        let pool = ThreadPool::new(2);
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.run(|tid| {
                if tid == 1 {
                    panic!("boom");
                }
            });
        }));
        assert!(result.is_err());
        // Pool remains usable after a panic.
        let ok = AtomicUsize::new(0);
        pool.run(|_| {
            ok.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(ok.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn single_worker_pool() {
        let pool = ThreadPool::new(1);
        let hits = AtomicUsize::new(0);
        pool.parallel_for(10, |tid, range| {
            assert_eq!(tid, 0);
            assert_eq!(range, 0..10);
            hits.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(hits.load(Ordering::SeqCst), 1);
    }
}
