//! A persistent SPMD thread pool with spin-doorbell dispatch.
//!
//! [`ThreadPool::run`] executes one closure on every worker, passing the
//! worker id, and returns when all workers have finished — the same
//! execution model as an OpenMP `parallel` region, which is what all of
//! the paper's threading strategies are written against.
//!
//! Dispatch is an epoch/generation **doorbell**: the launcher publishes a
//! raw pointer to the region closure and bumps a generation counter;
//! workers spin (then yield, then nap) on the counter. A region launch is
//! therefore a few atomic operations — no channel messages, no mutex, no
//! condvar wake — which matters because the solver hot loop crosses a
//! region boundary for every kernel it runs (the fork-join cost the
//! paper's persistent-region restructuring attacks). Workers are created
//! once; on Linux each is best-effort pinned to a core (the paper's runs
//! use `KMP_AFFINITY=compact`), disable with `FUN3D_PIN=off`.

use fun3d_util::telemetry;
use std::cell::UnsafeCell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Raw fat pointer to the caller's region closure. Valid only between the
/// epoch bump that publishes it and the completion count that retires it;
/// `run` blocks for that whole window, so the pointee outlives every use.
type JobPtr = *const (dyn Fn(usize) + Sync);

struct Doorbell {
    /// Generation counter: odd/even is irrelevant, workers just watch for
    /// change. Bumped (Release) after `job` is written.
    epoch: AtomicUsize,
    /// Workers that have finished the current region (Release on
    /// increment; the launcher Acquire-spins to `size`).
    done: AtomicUsize,
    /// Set while a `run` is in flight (reentrancy / cross-thread guard).
    active: AtomicBool,
    /// Any worker panicked inside the current region.
    panicked: AtomicBool,
    /// Tells woken workers to exit instead of looking for a job.
    shutdown: AtomicBool,
    /// The published region. Written by the launcher strictly before the
    /// epoch bump, read by workers strictly after observing it.
    job: UnsafeCell<Option<JobPtr>>,
}

// SAFETY: `job` is only written by the launcher while no region is in
// flight and only read by workers after the Release/Acquire epoch
// handshake that orders the write before the reads. (Send: the raw
// pointer member is only a handoff cell, never owned state.)
unsafe impl Sync for Doorbell {}
unsafe impl Send for Doorbell {}

/// A fixed-size pool of persistent worker threads executing SPMD regions.
pub struct ThreadPool {
    handles: Vec<JoinHandle<()>>,
    bell: Arc<Doorbell>,
    regions: AtomicU64,
    size: usize,
}

/// Spin-then-yield-then-nap wait. Pure spinning livelocks on an
/// oversubscribed machine (this container has a single core), and pure
/// yielding burns a core while the pool is idle between solves; the nap
/// caps idle burn at ~10k wakeups/s while keeping worst-case region
/// latency at the nap length.
#[inline]
fn backoff(waits: u32) {
    if waits < 64 {
        std::hint::spin_loop();
    } else if waits < 4096 {
        std::thread::yield_now();
    } else {
        std::thread::sleep(std::time::Duration::from_micros(100));
    }
}

impl ThreadPool {
    /// Spawns a pool with `size` workers (`size >= 1`).
    pub fn new(size: usize) -> Self {
        assert!(size >= 1, "thread pool needs at least one worker");
        let bell = Arc::new(Doorbell {
            epoch: AtomicUsize::new(0),
            done: AtomicUsize::new(0),
            active: AtomicBool::new(false),
            panicked: AtomicBool::new(false),
            shutdown: AtomicBool::new(false),
            job: UnsafeCell::new(None),
        });
        let pin = pinning_enabled();
        let ncores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        let mut handles = Vec::with_capacity(size);
        for tid in 0..size {
            let bell = Arc::clone(&bell);
            handles.push(
                std::thread::Builder::new()
                    .name(format!("fun3d-worker-{tid}"))
                    .spawn(move || {
                        if pin {
                            // Compact affinity: worker t on core t mod P.
                            let _ = affinity::pin_to_cpu(tid % ncores);
                        }
                        worker_loop(&bell, tid);
                    })
                    .expect("spawn pool worker"),
            );
        }
        ThreadPool {
            handles,
            bell,
            regions: AtomicU64::new(0),
            size,
        }
    }

    /// Number of workers.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Regions launched over the pool's lifetime (always counted, even
    /// with telemetry off) — the denominator for "regions per solver
    /// iteration" in the synchronization-cost ablation.
    pub fn regions_launched(&self) -> u64 {
        self.regions.load(Ordering::Relaxed)
    }

    /// Runs `f(tid)` on every worker and blocks until all have returned.
    ///
    /// The closure may borrow stack data: `run` does not return until
    /// every worker has finished executing it, so the borrow cannot
    /// outlive the data (the same argument scoped threads rely on).
    ///
    /// # Panics
    /// Panics (after all workers finished the region) if any worker
    /// panicked inside `f`, and on nested `run` from inside a region.
    pub fn run<'env, F>(&self, f: F)
    where
        F: Fn(usize) + Send + Sync + 'env,
    {
        let bell = &*self.bell;
        assert!(
            !bell.active.swap(true, Ordering::Acquire),
            "ThreadPool::run is not reentrant"
        );
        bell.panicked.store(false, Ordering::Relaxed);
        self.regions.fetch_add(1, Ordering::Relaxed);
        telemetry::record_kernel("pool.launch", telemetry::KernelCounts::once(1, 0, 0, 0));

        // Publish the region: erase the closure's lifetime into a raw fat
        // pointer and ring the doorbell. SAFETY: we block below until
        // every worker has bumped `done`, i.e. until no use of the
        // closure is in flight, so the pointee outlives all calls.
        let wide: &(dyn Fn(usize) + Sync) = &f;
        let job: JobPtr = unsafe { std::mem::transmute(wide) };
        unsafe { *bell.job.get() = Some(job) };
        bell.epoch.fetch_add(1, Ordering::Release);

        // Wait for all workers (spin-then-yield; the launcher never naps
        // — it is on the critical path of every region).
        let mut waits = 0u32;
        while bell.done.load(Ordering::Acquire) != self.size {
            waits = waits.wrapping_add(1);
            if waits % 64 == 0 {
                std::thread::yield_now();
            } else {
                std::hint::spin_loop();
            }
        }
        bell.done.store(0, Ordering::Relaxed);
        unsafe { *bell.job.get() = None };
        bell.active.store(false, Ordering::Release);
        if bell.panicked.swap(false, Ordering::Relaxed) {
            panic!("a pool worker panicked inside ThreadPool::run");
        }
    }

    /// Static-chunked parallel loop: each worker handles
    /// `chunk_range(n, size, tid)` through `body(tid, range)`.
    pub fn parallel_for<'env, F>(&self, n: usize, body: F)
    where
        F: Fn(usize, std::ops::Range<usize>) + Send + Sync + 'env,
    {
        let size = self.size;
        self.run(move |tid| {
            let range = crate::chunk_range(n, size, tid);
            let _chunk = telemetry::fine_span("pool.chunk");
            telemetry::record_kernel(
                "pool.chunk",
                telemetry::KernelCounts::once(range.len() as u64, 0, 0, 0),
            );
            body(tid, range)
        });
    }
}

fn worker_loop(bell: &Doorbell, tid: usize) {
    let mut my_epoch = 0usize;
    loop {
        let mut waits = 0u32;
        let next = loop {
            let e = bell.epoch.load(Ordering::Acquire);
            if e != my_epoch || bell.shutdown.load(Ordering::Acquire) {
                break e;
            }
            backoff(waits);
            waits = waits.wrapping_add(1);
        };
        if bell.shutdown.load(Ordering::Acquire) {
            return;
        }
        my_epoch = next;
        // SAFETY: the Acquire epoch load above pairs with the launcher's
        // Release bump, ordering the job publication before this read;
        // the pointee stays alive until we bump `done`.
        let job = unsafe { (*bell.job.get()).expect("doorbell rang with no job") };
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            // Busy interval on this worker's timeline; per-thread totals
            // of this span drive the utilization / load-imbalance report.
            let _busy = telemetry::span("pool.region");
            (unsafe { &*job })(tid)
        }));
        if outcome.is_err() {
            bell.panicked.store(true, Ordering::Relaxed);
        }
        bell.done.fetch_add(1, Ordering::Release);
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        self.bell.shutdown.store(true, Ordering::Release);
        // Wake nappers/spinners: the epoch change is the doorbell.
        self.bell.epoch.fetch_add(1, Ordering::Release);
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

/// `FUN3D_PIN=off` (or `0`/`no`) disables affinity pinning.
fn pinning_enabled() -> bool {
    match std::env::var("FUN3D_PIN") {
        Ok(v) => !matches!(v.trim().to_ascii_lowercase().as_str(), "off" | "0" | "no"),
        Err(_) => true,
    }
}

/// Best-effort thread pinning. The tree is hermetic (no libc crate), so
/// Linux/x86-64 issues the `sched_setaffinity` syscall directly; every
/// other target is a no-op.
mod affinity {
    #[cfg(all(target_os = "linux", target_arch = "x86_64"))]
    pub fn pin_to_cpu(cpu: usize) -> bool {
        // cpu_set_t as a flat bitmask; 1024 bits matches glibc's default.
        let mut mask = [0u64; 16];
        let word = (cpu / 64) % mask.len();
        mask[word] = 1u64 << (cpu % 64);
        let ret: i64;
        // SAFETY: sched_setaffinity(0, len, mask) only reads `mask` and
        // affects the calling thread; rcx/r11 are clobbered by `syscall`.
        unsafe {
            std::arch::asm!(
                "syscall",
                inlateout("rax") 203i64 => ret, // __NR_sched_setaffinity
                in("rdi") 0usize,               // pid 0 = calling thread
                in("rsi") std::mem::size_of_val(&mask),
                in("rdx") mask.as_ptr(),
                lateout("rcx") _,
                lateout("r11") _,
                options(nostack, readonly)
            );
        }
        ret == 0
    }

    #[cfg(not(all(target_os = "linux", target_arch = "x86_64")))]
    pub fn pin_to_cpu(_cpu: usize) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn runs_on_every_worker() {
        let pool = ThreadPool::new(4);
        let hits = AtomicUsize::new(0);
        pool.run(|_tid| {
            hits.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(hits.load(Ordering::SeqCst), 4);
    }

    #[test]
    fn tids_are_distinct() {
        let pool = ThreadPool::new(8);
        let mask = AtomicUsize::new(0);
        pool.run(|tid| {
            mask.fetch_or(1 << tid, Ordering::SeqCst);
        });
        assert_eq!(mask.load(Ordering::SeqCst), 0xFF);
    }

    #[test]
    fn borrows_stack_data() {
        let pool = ThreadPool::new(3);
        let data: Vec<usize> = (0..300).collect();
        let sum = AtomicUsize::new(0);
        pool.parallel_for(data.len(), |_tid, range| {
            let local: usize = data[range].iter().sum();
            sum.fetch_add(local, Ordering::SeqCst);
        });
        assert_eq!(sum.load(Ordering::SeqCst), 300 * 299 / 2);
    }

    #[test]
    fn reusable_across_many_runs() {
        let pool = ThreadPool::new(2);
        let count = AtomicUsize::new(0);
        for _ in 0..50 {
            pool.run(|_| {
                count.fetch_add(1, Ordering::SeqCst);
            });
        }
        assert_eq!(count.load(Ordering::SeqCst), 100);
    }

    #[test]
    fn counts_region_launches() {
        let pool = ThreadPool::new(2);
        let before = pool.regions_launched();
        for _ in 0..7 {
            pool.run(|_| {});
        }
        assert_eq!(pool.regions_launched() - before, 7);
    }

    #[test]
    fn mutates_disjoint_slices() {
        let pool = ThreadPool::new(4);
        let mut data = vec![0.0f64; 1000];
        {
            let cell = std::sync::Mutex::new(&mut data);
            // Simpler pattern used by the kernels: split the buffer first.
            let mut guard = cell.lock().unwrap();
            let chunks: Vec<&mut [f64]> = guard.chunks_mut(250).collect();
            let chunks = std::sync::Mutex::new(chunks);
            pool.run(|tid| {
                let chunk = {
                    let mut c = chunks.lock().unwrap();
                    std::mem::take(&mut c[tid])
                };
                for x in chunk {
                    *x = tid as f64 + 1.0;
                }
            });
        }
        assert!(data[..250].iter().all(|&x| x == 1.0));
        assert!(data[750..].iter().all(|&x| x == 4.0));
    }

    #[test]
    fn worker_panic_propagates() {
        let pool = ThreadPool::new(2);
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.run(|tid| {
                if tid == 1 {
                    panic!("boom");
                }
            });
        }));
        assert!(result.is_err());
        // Pool remains usable after a panic.
        let ok = AtomicUsize::new(0);
        pool.run(|_| {
            ok.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(ok.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn single_worker_pool() {
        let pool = ThreadPool::new(1);
        let hits = AtomicUsize::new(0);
        pool.parallel_for(10, |tid, range| {
            assert_eq!(tid, 0);
            assert_eq!(range, 0..10);
            hits.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(hits.load(Ordering::SeqCst), 1);
    }
}
