//! A persistent SPMD thread pool with spin-doorbell dispatch.
//!
//! [`ThreadPool::run`] executes one closure on every worker, passing the
//! worker id, and returns when all workers have finished — the same
//! execution model as an OpenMP `parallel` region, which is what all of
//! the paper's threading strategies are written against.
//!
//! Dispatch is an epoch/generation **doorbell**: the launcher publishes a
//! raw pointer to the region closure and bumps a generation counter;
//! workers spin (then yield, then nap) on the counter. A region launch is
//! therefore a few atomic operations — no channel messages, no mutex, no
//! condvar wake — which matters because the solver hot loop crosses a
//! region boundary for every kernel it runs (the fork-join cost the
//! paper's persistent-region restructuring attacks). Workers are created
//! once; on Linux each is best-effort pinned to a core (the paper's runs
//! use `KMP_AFFINITY=compact`), disable with `FUN3D_PIN=off`.

use crate::sync_shim::{spin_hint, yield_now, AtomicBool, AtomicUsize, Ordering, ShimCell};
use fun3d_util::telemetry;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::AtomicU64;
use std::sync::Arc;
use std::thread::JoinHandle;

/// Raw fat pointer to the caller's region closure. Valid only between the
/// epoch bump that publishes it and the completion count that retires it;
/// `run` blocks for that whole window, so the pointee outlives every use.
pub type JobPtr = *const (dyn Fn(usize) + Sync);

/// The epoch/generation doorbell: the launcher/worker handshake behind
/// [`ThreadPool::run`], exposed so the `fun3d-check` model tests can
/// drive the exact protocol with virtual threads. One `post` /
/// `wait_workers` / `retire` cycle on the launcher pairs with one
/// `worker_wait` / `take_job` / `worker_done` cycle on each worker.
pub struct Bell {
    /// Generation counter: odd/even is irrelevant, workers just watch for
    /// change. Bumped (Release) after `job` is written.
    epoch: AtomicUsize,
    /// Workers that have finished the current region (Release on
    /// increment; the launcher Acquire-spins to `size`).
    done: AtomicUsize,
    /// Set while a `run` is in flight (reentrancy / cross-thread guard).
    active: AtomicBool,
    /// Any worker panicked inside the current region.
    panicked: AtomicBool,
    /// Tells woken workers to exit instead of looking for a job.
    shutdown: AtomicBool,
    /// The published region. Written by the launcher strictly before the
    /// epoch bump, read by workers strictly after observing it.
    job: ShimCell<Option<JobPtr>>,
    size: usize,
    /// EWMA of recent region wall durations, nanoseconds (0 = no
    /// observation yet). Plain std atomic, not a shim type: it is a
    /// statistic that only tunes backoff, never part of the protocol the
    /// model checker explores.
    pace_ns: AtomicU64,
    /// Idle-wait statistics (yields / naps burned in `worker_wait`),
    /// exposed so the adaptive-backoff regression test can observe the
    /// spin budget actually spent.
    idle_yields: AtomicU64,
    idle_naps: AtomicU64,
    /// Scale the wait ladder to `pace_ns` (default; `FUN3D_ADAPTIVE_SPIN=off`
    /// pins the pre-adaptive fixed ladder). Only consulted by the real
    /// ladder, hence unused in model builds.
    #[cfg_attr(fun3d_check, allow(dead_code))]
    adaptive: bool,
}

// SAFETY: `job` is only written by the launcher while no region is in
// flight and only read by workers after the Release/Acquire epoch
// handshake that orders the write before the reads. (Send: the raw
// pointer member is only a handoff cell, never owned state.)
unsafe impl Sync for Bell {}
unsafe impl Send for Bell {}

impl Bell {
    /// A doorbell coordinating one launcher with `size` workers, with
    /// the adaptive backoff default taken from `FUN3D_ADAPTIVE_SPIN`.
    pub fn new(size: usize) -> Bell {
        Bell::with_adaptive(size, adaptive_spin_default())
    }

    /// A doorbell with the adaptive backoff explicitly on or off
    /// (construction-time so tests can compare both in one process).
    pub fn with_adaptive(size: usize, adaptive: bool) -> Bell {
        assert!(size >= 1);
        Bell {
            epoch: AtomicUsize::new(0),
            done: AtomicUsize::new(0),
            active: AtomicBool::new(false),
            panicked: AtomicBool::new(false),
            shutdown: AtomicBool::new(false),
            job: ShimCell::new(None),
            size,
            pace_ns: AtomicU64::new(0),
            idle_yields: AtomicU64::new(0),
            idle_naps: AtomicU64::new(0),
            adaptive,
        }
    }

    /// Launcher: folds an observed region wall duration into the pace
    /// estimate that sizes the workers' wait ladder.
    pub fn note_region_ns(&self, ns: u64) {
        // Relaxed: single-writer statistic (the launcher), racy readers
        // only use it to pick a backoff tier.
        let old = self.pace_ns.load(Ordering::Relaxed);
        let new = if old == 0 { ns } else { (3 * old + ns) / 4 };
        self.pace_ns.store(new.max(1), Ordering::Relaxed);
    }

    /// Current region-pace estimate, nanoseconds (0 = none yet).
    pub fn pace_ns(&self) -> u64 {
        self.pace_ns.load(Ordering::Relaxed)
    }

    /// Yields burned by workers waiting for a doorbell ring.
    pub fn idle_yields(&self) -> u64 {
        self.idle_yields.load(Ordering::Relaxed)
    }

    /// Naps taken by workers waiting for a doorbell ring.
    pub fn idle_naps(&self) -> u64 {
        self.idle_naps.load(Ordering::Relaxed)
    }

    /// Worker count this bell coordinates.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Launcher: publishes `job` and rings the doorbell.
    ///
    /// # Panics
    /// Panics if a region is already in flight (nested/concurrent `run`).
    ///
    /// # Safety contract (not enforced by types)
    /// The pointee must stay valid until [`Bell::wait_workers`] returns.
    pub fn post(&self, job: JobPtr) {
        // Acquire on the guard swap: entering the region must be ordered
        // after the previous launcher's `active` Release in `retire`, so
        // back-to-back regions from different launcher threads see each
        // other's teardown (done=0, job=None) completed.
        assert!(
            !self.active.swap(true, Ordering::Acquire),
            "ThreadPool::run is not reentrant"
        );
        // Relaxed: only the launcher reads `panicked` (in `retire`), and
        // worker stores are ordered by the done/Acquire handshake there.
        self.panicked.store(false, Ordering::Relaxed);
        self.job.with_mut(|p| unsafe { *p = Some(job) });
        // Release: publishes the `job` write above to every worker whose
        // Acquire epoch load observes the bump (the doorbell edge).
        self.epoch.fetch_add(1, Ordering::Release);
    }

    /// Launcher: blocks (spin-then-yield, never napping — this is the
    /// critical path of every region) until all workers finished.
    pub fn wait_workers(&self) {
        let mut waits = 0u32;
        // Acquire: pairs with each worker's Release `done` increment, so
        // the workers' region writes are visible once the count closes.
        while self.done.load(Ordering::Acquire) != self.size {
            waits = waits.wrapping_add(1);
            if waits % 64 == 0 {
                yield_now();
            } else {
                spin_hint();
            }
        }
    }

    /// Launcher: retires the completed region; true if a worker panicked.
    pub fn retire(&self) -> bool {
        // Relaxed: ordered before the next region's reuse by the
        // active-swap Acquire in `post` / Release below.
        self.done.store(0, Ordering::Relaxed);
        self.job.with_mut(|p| unsafe { *p = None });
        // Release: the done/job teardown above must be visible to whoever
        // Acquire-swaps `active` for the next region.
        self.active.store(false, Ordering::Release);
        // Relaxed: worker `panicked` stores happened before their `done`
        // increments (program order) which `wait_workers` Acquire-read.
        self.panicked.swap(false, Ordering::Relaxed)
    }

    /// Worker: waits for an epoch different from `my_epoch` (or
    /// shutdown); returns the observed epoch.
    pub fn worker_wait(&self, my_epoch: usize) -> usize {
        let mut waits = 0u32;
        loop {
            // Acquire: pairs with the launcher's Release bump in `post`,
            // ordering the job publication before `take_job`'s read.
            let e = self.epoch.load(Ordering::Acquire);
            // Acquire: pairs with the Release store in `ring_shutdown`.
            if e != my_epoch || self.shutdown.load(Ordering::Acquire) {
                return e;
            }
            self.idle_backoff(waits);
            waits = waits.wrapping_add(1);
        }
    }

    /// One step of the worker wait ladder: spin, then yield, then nap.
    ///
    /// Model builds route every tier through the checker's spin hint.
    /// Real builds size the yield budget and the nap length to the
    /// observed region pace: when regions are microseconds long, a worker
    /// that burned a *fixed* multi-thousand-yield budget per phase was
    /// the dominant cost of nt>1 on small meshes (each yield is a
    /// scheduler round trip stolen from the thread doing real work), so
    /// the ladder now spends at most ~one region-duration yielding before
    /// it starts napping, and nap lengths grow geometrically so long idle
    /// gaps cost few wakeups.
    #[cfg(fun3d_check)]
    fn idle_backoff(&self, _waits: u32) {
        // Inside a model the hint deschedules the virtual thread; outside
        // one (ordinary tests compiled with the cfg) yielding avoids
        // pure-spin livelock on an oversubscribed box.
        yield_now();
    }

    #[cfg(not(fun3d_check))]
    fn idle_backoff(&self, waits: u32) {
        const SPIN: u32 = 64;
        if waits < SPIN {
            std::hint::spin_loop();
            return;
        }
        let pace = if self.adaptive { self.pace_ns.load(Ordering::Relaxed) } else { 0 };
        if pace == 0 {
            // Adaptivity off, or no region observed yet: the fixed
            // pre-adaptive ladder (spin, 4k yields, 100 us naps).
            if waits < 4096 {
                self.idle_yields.fetch_add(1, Ordering::Relaxed);
                std::thread::yield_now();
            } else {
                self.idle_naps.fetch_add(1, Ordering::Relaxed);
                std::thread::sleep(std::time::Duration::from_micros(100));
            }
            return;
        }
        // Yield budget: burn at most ~a quarter of the region's own
        // duration yielding before the first nap (a yield costs on the
        // order of a microsecond once the runqueue has company).
        let budget = SPIN + (pace / 2000).clamp(16, 2048) as u32;
        if waits < budget {
            self.idle_yields.fetch_add(1, Ordering::Relaxed);
            std::thread::yield_now();
            return;
        }
        // Progressive nap: start proportional to the pace (so a sleeping
        // worker costs the region at most ~1/8 of its own duration in
        // latency) and double toward 1 ms for long idle gaps.
        let base = (pace / 8).clamp(2_000, 100_000);
        let nap = (base << (waits - budget).min(8)).min(1_000_000);
        self.idle_naps.fetch_add(1, Ordering::Relaxed);
        std::thread::sleep(std::time::Duration::from_nanos(nap));
    }

    /// True once shutdown has been rung.
    pub fn shutting_down(&self) -> bool {
        // Acquire: pairs with the Release store in `ring_shutdown`.
        self.shutdown.load(Ordering::Acquire)
    }

    /// Worker: reads the published region. Only valid after
    /// [`Bell::worker_wait`] returned a new epoch.
    pub fn take_job(&self) -> JobPtr {
        self.job
            .with(|p| unsafe { *p }.expect("doorbell rang with no job"))
    }

    /// Worker: records a panic inside the current region.
    pub fn note_panic(&self) {
        // Relaxed: ordered before the launcher's read by this worker's
        // Release `done` increment + the launcher's Acquire spin.
        self.panicked.store(true, Ordering::Relaxed);
    }

    /// Worker: marks this worker finished with the current region.
    pub fn worker_done(&self) {
        // Release: publishes this worker's region writes (and any
        // `note_panic`) to the launcher's Acquire spin in `wait_workers`.
        self.done.fetch_add(1, Ordering::Release);
    }

    /// Tells all workers to exit and rings the doorbell to wake them.
    pub fn ring_shutdown(&self) {
        // Release: pairs with the workers' Acquire `shutdown` loads.
        self.shutdown.store(true, Ordering::Release);
        // Release: the epoch change is the doorbell that wakes
        // nappers/spinners so they notice the flag.
        self.epoch.fetch_add(1, Ordering::Release);
    }
}

/// A fixed-size pool of persistent worker threads executing SPMD regions.
pub struct ThreadPool {
    handles: Vec<JoinHandle<()>>,
    bell: Arc<Bell>,
    regions: AtomicU64,
    size: usize,
}

/// `FUN3D_ADAPTIVE_SPIN=off` (or `0`/`no`) pins the fixed pre-adaptive
/// wait ladder; anything else (including unset) scales the ladder to the
/// observed region pace.
pub fn adaptive_spin_default() -> bool {
    match std::env::var("FUN3D_ADAPTIVE_SPIN") {
        Ok(v) => !matches!(v.trim().to_ascii_lowercase().as_str(), "off" | "0" | "no"),
        Err(_) => true,
    }
}

impl ThreadPool {
    /// Spawns a pool with `size` workers (`size >= 1`), adaptive backoff
    /// defaulted from `FUN3D_ADAPTIVE_SPIN`.
    pub fn new(size: usize) -> Self {
        Self::with_adaptive(size, adaptive_spin_default())
    }

    /// Spawns a pool with the adaptive wait ladder explicitly on or off.
    pub fn with_adaptive(size: usize, adaptive: bool) -> Self {
        assert!(size >= 1, "thread pool needs at least one worker");
        let bell = Arc::new(Bell::with_adaptive(size, adaptive));
        let pin = pinning_enabled();
        let ncores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        let mut handles = Vec::with_capacity(size);
        for tid in 0..size {
            let bell = Arc::clone(&bell);
            handles.push(
                std::thread::Builder::new()
                    .name(format!("fun3d-worker-{tid}"))
                    .spawn(move || {
                        if pin {
                            // Compact affinity: worker t on core t mod P.
                            let _ = affinity::pin_to_cpu(tid % ncores);
                        }
                        worker_loop(&bell, tid);
                    })
                    .expect("spawn pool worker"),
            );
        }
        ThreadPool {
            handles,
            bell,
            regions: AtomicU64::new(0),
            size,
        }
    }

    /// Number of workers.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Regions launched over the pool's lifetime (always counted, even
    /// with telemetry off) — the denominator for "regions per solver
    /// iteration" in the synchronization-cost ablation.
    pub fn regions_launched(&self) -> u64 {
        // Relaxed: monotonic statistic, read quiescently between regions.
        self.regions.load(Ordering::Relaxed)
    }

    /// Yields workers burned waiting for regions (see [`Bell::idle_yields`]).
    pub fn idle_yields(&self) -> u64 {
        self.bell.idle_yields()
    }

    /// Naps workers took waiting for regions (see [`Bell::idle_naps`]).
    pub fn idle_naps(&self) -> u64 {
        self.bell.idle_naps()
    }

    /// Current region-pace estimate driving the wait ladder, ns.
    pub fn pace_ns(&self) -> u64 {
        self.bell.pace_ns()
    }

    /// Runs `f(tid)` on every worker and blocks until all have returned.
    ///
    /// The closure may borrow stack data: `run` does not return until
    /// every worker has finished executing it, so the borrow cannot
    /// outlive the data (the same argument scoped threads rely on).
    ///
    /// # Panics
    /// Panics (after all workers finished the region) if any worker
    /// panicked inside `f`, and on nested `run` from inside a region.
    pub fn run<'env, F>(&self, f: F)
    where
        F: Fn(usize) + Send + Sync + 'env,
    {
        let bell = &*self.bell;
        // Relaxed: launcher-only statistic counter, no data published.
        self.regions.fetch_add(1, Ordering::Relaxed);
        telemetry::record_kernel("pool.launch", telemetry::KernelCounts::once(1, 0, 0, 0));

        // Publish the region: erase the closure's lifetime into a raw fat
        // pointer and ring the doorbell. SAFETY: wait_workers blocks
        // until every worker has bumped `done`, i.e. until no use of the
        // closure is in flight, so the pointee outlives all calls.
        let wide: &(dyn Fn(usize) + Sync) = &f;
        let job: JobPtr = unsafe { std::mem::transmute(wide) };
        let t0 = std::time::Instant::now();
        bell.post(job);
        bell.wait_workers();
        // Launch-to-retire wall time is the pace that sizes the workers'
        // wait ladder for the *next* region.
        let region_ns = t0.elapsed().as_nanos().min(u64::MAX as u128) as u64;
        bell.note_region_ns(region_ns);
        // Live distribution of region walls: the *observed* sync-cost
        // source AutoPolicy consults before paying for a one-shot probe.
        telemetry::metrics::record_ns("threads.region_ns", region_ns);
        if bell.retire() {
            // Black-box moment: the launcher still has the solve context
            // (rank/solve tags live on this thread), so record the event
            // and dump the flight log *before* the panic unwinds it away.
            telemetry::flight::note_region_panic(self.size);
            panic!("a pool worker panicked inside ThreadPool::run");
        }
    }

    /// Static-chunked parallel loop: each worker handles
    /// `chunk_range(n, size, tid)` through `body(tid, range)`.
    pub fn parallel_for<'env, F>(&self, n: usize, body: F)
    where
        F: Fn(usize, std::ops::Range<usize>) + Send + Sync + 'env,
    {
        let size = self.size;
        self.run(move |tid| {
            let range = crate::chunk_range(n, size, tid);
            let _chunk = telemetry::fine_span("pool.chunk");
            telemetry::record_kernel(
                "pool.chunk",
                telemetry::KernelCounts::once(range.len() as u64, 0, 0, 0),
            );
            body(tid, range)
        });
    }
}

fn worker_loop(bell: &Bell, tid: usize) {
    let mut my_epoch = 0usize;
    loop {
        let next = bell.worker_wait(my_epoch);
        if bell.shutting_down() {
            return;
        }
        my_epoch = next;
        // SAFETY: worker_wait's Acquire epoch load pairs with the
        // launcher's Release bump, ordering the job publication before
        // this read; the pointee stays alive until we bump `done`.
        let job = bell.take_job();
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            // Busy interval on this worker's timeline; per-thread totals
            // of this span drive the utilization / load-imbalance report.
            let _busy = telemetry::span("pool.region");
            (unsafe { &*job })(tid)
        }));
        if outcome.is_err() {
            bell.note_panic();
        }
        bell.worker_done();
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        self.bell.ring_shutdown();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

/// `FUN3D_PIN=off` (or `0`/`no`) disables affinity pinning.
fn pinning_enabled() -> bool {
    match std::env::var("FUN3D_PIN") {
        Ok(v) => !matches!(v.trim().to_ascii_lowercase().as_str(), "off" | "0" | "no"),
        Err(_) => true,
    }
}

/// Best-effort thread pinning. The tree is hermetic (no libc crate), so
/// Linux/x86-64 issues the `sched_setaffinity` syscall directly; every
/// other target is a no-op.
mod affinity {
    #[cfg(all(target_os = "linux", target_arch = "x86_64"))]
    pub fn pin_to_cpu(cpu: usize) -> bool {
        // cpu_set_t as a flat bitmask; 1024 bits matches glibc's default.
        let mut mask = [0u64; 16];
        let word = (cpu / 64) % mask.len();
        mask[word] = 1u64 << (cpu % 64);
        let ret: i64;
        // SAFETY: sched_setaffinity(0, len, mask) only reads `mask` and
        // affects the calling thread; rcx/r11 are clobbered by `syscall`.
        unsafe {
            std::arch::asm!(
                "syscall",
                inlateout("rax") 203i64 => ret, // __NR_sched_setaffinity
                in("rdi") 0usize,               // pid 0 = calling thread
                in("rsi") std::mem::size_of_val(&mask),
                in("rdx") mask.as_ptr(),
                lateout("rcx") _,
                lateout("r11") _,
                options(nostack, readonly)
            );
        }
        ret == 0
    }

    #[cfg(not(all(target_os = "linux", target_arch = "x86_64")))]
    pub fn pin_to_cpu(_cpu: usize) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn runs_on_every_worker() {
        let pool = ThreadPool::new(4);
        let hits = AtomicUsize::new(0);
        pool.run(|_tid| {
            hits.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(hits.load(Ordering::SeqCst), 4);
    }

    #[test]
    fn tids_are_distinct() {
        let pool = ThreadPool::new(8);
        let mask = AtomicUsize::new(0);
        pool.run(|tid| {
            mask.fetch_or(1 << tid, Ordering::SeqCst);
        });
        assert_eq!(mask.load(Ordering::SeqCst), 0xFF);
    }

    #[test]
    fn borrows_stack_data() {
        let pool = ThreadPool::new(3);
        let data: Vec<usize> = (0..300).collect();
        let sum = AtomicUsize::new(0);
        pool.parallel_for(data.len(), |_tid, range| {
            let local: usize = data[range].iter().sum();
            sum.fetch_add(local, Ordering::SeqCst);
        });
        assert_eq!(sum.load(Ordering::SeqCst), 300 * 299 / 2);
    }

    #[test]
    fn reusable_across_many_runs() {
        let pool = ThreadPool::new(2);
        let count = AtomicUsize::new(0);
        for _ in 0..50 {
            pool.run(|_| {
                count.fetch_add(1, Ordering::SeqCst);
            });
        }
        assert_eq!(count.load(Ordering::SeqCst), 100);
    }

    #[test]
    fn counts_region_launches() {
        let pool = ThreadPool::new(2);
        let before = pool.regions_launched();
        for _ in 0..7 {
            pool.run(|_| {});
        }
        assert_eq!(pool.regions_launched() - before, 7);
    }

    #[test]
    fn mutates_disjoint_slices() {
        let pool = ThreadPool::new(4);
        let mut data = vec![0.0f64; 1000];
        {
            let cell = std::sync::Mutex::new(&mut data);
            // Simpler pattern used by the kernels: split the buffer first.
            let mut guard = cell.lock().unwrap();
            let chunks: Vec<&mut [f64]> = guard.chunks_mut(250).collect();
            let chunks = std::sync::Mutex::new(chunks);
            pool.run(|tid| {
                let chunk = {
                    let mut c = chunks.lock().unwrap();
                    std::mem::take(&mut c[tid])
                };
                for x in chunk {
                    *x = tid as f64 + 1.0;
                }
            });
        }
        assert!(data[..250].iter().all(|&x| x == 1.0));
        assert!(data[750..].iter().all(|&x| x == 4.0));
    }

    #[test]
    fn worker_panic_propagates() {
        let pool = ThreadPool::new(2);
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.run(|tid| {
                if tid == 1 {
                    panic!("boom");
                }
            });
        }));
        assert!(result.is_err());
        // Pool remains usable after a panic.
        let ok = AtomicUsize::new(0);
        pool.run(|_| {
            ok.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(ok.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn single_worker_pool() {
        let pool = ThreadPool::new(1);
        let hits = AtomicUsize::new(0);
        pool.parallel_for(10, |tid, range| {
            assert_eq!(tid, 0);
            assert_eq!(range, 0..10);
            hits.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(hits.load(Ordering::SeqCst), 1);
    }
}
