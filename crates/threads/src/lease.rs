//! Pool checkout/checkin for multi-tenant reuse of persistent pools.
//!
//! [`ThreadPool::run`] requires an exclusive launcher — concurrent `run`
//! calls on one pool would race on the doorbell (the pool panics on the
//! reentrancy guard). A service executing many jobs concurrently
//! therefore needs *pool handoff*, not pool sharing: a fixed set of
//! pools is created once (no churn between requests — the whole point
//! of the persistent doorbell substrate), and each job checks one out
//! for the duration of its solve, returning it on drop.
//!
//! [`PoolSet`] is that free-list: a `Mutex`-guarded set of pool indices
//! plus a `Condvar` for blocked borrowers. It also keeps the
//! *high-water* worker count — the maximum number of workers leased out
//! simultaneously — so a scheduler can prove it never exceeded its
//! configured budget (asserted in the serve tests).

use crate::pool::ThreadPool;
use std::sync::{Arc, Condvar, Mutex};

/// A fixed set of persistent [`ThreadPool`]s handed out one borrower at
/// a time. Created once, leased per job, never resized.
pub struct PoolSet {
    pools: Vec<Arc<ThreadPool>>,
    state: Mutex<FreeState>,
    available: Condvar,
}

struct FreeState {
    /// Free pool indices (LIFO: the most recently returned pool has the
    /// warmest workers).
    free: Vec<usize>,
    /// Workers currently leased out.
    leased_workers: usize,
    /// Maximum of `leased_workers` ever observed.
    high_water: usize,
}

/// An exclusive borrow of one pool from a [`PoolSet`]; checks the pool
/// back in (and wakes one blocked borrower) on drop.
pub struct PoolLease<'a> {
    set: &'a PoolSet,
    idx: usize,
}

impl PoolSet {
    /// Builds one pool per entry of `sizes` (workers each). An empty
    /// list is a valid set on which every checkout fails.
    pub fn new(sizes: &[usize]) -> PoolSet {
        let pools: Vec<Arc<ThreadPool>> =
            sizes.iter().map(|&n| Arc::new(ThreadPool::new(n))).collect();
        let free = (0..pools.len()).collect();
        PoolSet {
            pools,
            state: Mutex::new(FreeState {
                free,
                leased_workers: 0,
                high_water: 0,
            }),
            available: Condvar::new(),
        }
    }

    /// Number of pools in the set.
    pub fn len(&self) -> usize {
        self.pools.len()
    }

    /// True when the set holds no pools at all.
    pub fn is_empty(&self) -> bool {
        self.pools.is_empty()
    }

    /// Sum of workers across all pools — the configured worker budget.
    pub fn total_workers(&self) -> usize {
        self.pools.iter().map(|p| p.size()).sum()
    }

    /// Largest single pool in the set.
    pub fn max_pool_size(&self) -> usize {
        self.pools.iter().map(|p| p.size()).max().unwrap_or(0)
    }

    /// Maximum number of workers that were ever leased out
    /// simultaneously. Can never exceed [`PoolSet::total_workers`]; a
    /// scheduler asserts this against its budget after a load run.
    pub fn high_water(&self) -> usize {
        self.state.lock().unwrap().high_water
    }

    /// Checks out a free pool with at least `min(want, largest)`
    /// workers, blocking until one is returned. Returns `None` only on
    /// an empty set (nothing could ever satisfy the request).
    pub fn checkout(&self, want: usize) -> Option<PoolLease<'_>> {
        if self.pools.is_empty() {
            return None;
        }
        let want = want.min(self.max_pool_size());
        let mut st = self.state.lock().unwrap();
        loop {
            if let Some(pos) = self.pick(&st, want) {
                return Some(self.take(&mut st, pos));
            }
            st = self.available.wait(st).unwrap();
        }
    }

    /// Non-blocking [`PoolSet::checkout`]: `None` when no free pool is
    /// big enough right now.
    pub fn try_checkout(&self, want: usize) -> Option<PoolLease<'_>> {
        if self.pools.is_empty() {
            return None;
        }
        let want = want.min(self.max_pool_size());
        let mut st = self.state.lock().unwrap();
        let pos = self.pick(&st, want)?;
        Some(self.take(&mut st, pos))
    }

    /// [`PoolSet::checkout`] returning a lease that owns the set (for
    /// `'static` borrowers such as spawned dispatcher threads).
    pub fn checkout_owned(self: &Arc<Self>, want: usize) -> Option<OwnedPoolLease> {
        let lease = self.checkout(want)?;
        let idx = lease.idx;
        std::mem::forget(lease);
        Some(OwnedPoolLease {
            set: Arc::clone(self),
            idx,
        })
    }

    /// Position in `free` of the best satisfying pool: the *smallest*
    /// free pool with `size >= want`, so big pools stay available for
    /// big requests.
    fn pick(&self, st: &FreeState, want: usize) -> Option<usize> {
        st.free
            .iter()
            .enumerate()
            .filter(|&(_, &idx)| self.pools[idx].size() >= want)
            .min_by_key(|&(_, &idx)| self.pools[idx].size())
            .map(|(pos, _)| pos)
    }

    fn take(&self, st: &mut FreeState, pos: usize) -> PoolLease<'_> {
        let idx = st.free.swap_remove(pos);
        st.leased_workers += self.pools[idx].size();
        st.high_water = st.high_water.max(st.leased_workers);
        PoolLease { set: self, idx }
    }
}

impl PoolLease<'_> {
    /// The leased pool. The lease guarantees exclusive `run` access.
    pub fn pool(&self) -> &Arc<ThreadPool> {
        &self.set.pools[self.idx]
    }
}

impl Drop for PoolLease<'_> {
    fn drop(&mut self) {
        checkin(self.set, self.idx);
    }
}

/// A [`PoolLease`] that owns its `Arc<PoolSet>` — for borrowers that
/// outlive the scope holding the set, like a service's dispatcher
/// threads, each of which checks a pool out once at startup and keeps
/// it for the thread's lifetime.
pub struct OwnedPoolLease {
    set: Arc<PoolSet>,
    idx: usize,
}

impl OwnedPoolLease {
    /// The leased pool. The lease guarantees exclusive `run` access.
    pub fn pool(&self) -> &Arc<ThreadPool> {
        &self.set.pools[self.idx]
    }
}

impl Drop for OwnedPoolLease {
    fn drop(&mut self) {
        checkin(&self.set, self.idx);
    }
}

fn checkin(set: &PoolSet, idx: usize) {
    let mut st = set.state.lock().unwrap();
    st.leased_workers -= set.pools[idx].size();
    st.free.push(idx);
    drop(st);
    set.available.notify_one();
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn checkout_prefers_smallest_satisfying_pool() {
        let set = PoolSet::new(&[4, 2, 2]);
        let a = set.checkout(1).unwrap();
        assert_eq!(a.pool().size(), 2);
        let b = set.checkout(3).unwrap();
        assert_eq!(b.pool().size(), 4);
        assert_eq!(set.high_water(), 6);
    }

    #[test]
    fn oversized_requests_clamp_to_largest_pool() {
        let set = PoolSet::new(&[2]);
        let lease = set.checkout(64).unwrap();
        assert_eq!(lease.pool().size(), 2);
        assert!(set.try_checkout(1).is_none());
    }

    #[test]
    fn owned_lease_moves_across_threads_and_checks_in() {
        let set = Arc::new(PoolSet::new(&[2]));
        let lease = set.checkout_owned(2).unwrap();
        let h = std::thread::spawn(move || {
            lease.pool().run(&|_tid| {});
            drop(lease);
        });
        h.join().unwrap();
        assert!(set.try_checkout(2).is_some(), "pool must be back in the free list");
        assert_eq!(set.high_water(), 2);
    }

    #[test]
    fn empty_set_refuses() {
        let set = PoolSet::new(&[]);
        assert!(set.checkout(1).is_none());
        assert_eq!(set.total_workers(), 0);
    }

    #[test]
    fn drop_wakes_a_blocked_borrower_and_budget_holds() {
        let set = Arc::new(PoolSet::new(&[2, 2]));
        let peak = Arc::new(AtomicUsize::new(0));
        let live = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let (set, peak, live) = (set.clone(), peak.clone(), live.clone());
                std::thread::spawn(move || {
                    for _ in 0..5 {
                        let lease = set.checkout(2).unwrap();
                        let now = live.fetch_add(1, Ordering::SeqCst) + 1;
                        peak.fetch_max(now, Ordering::SeqCst);
                        lease.pool().run(&|_tid| {
                            std::hint::spin_loop();
                        });
                        live.fetch_sub(1, Ordering::SeqCst);
                        drop(lease);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        // Two pools -> at most two concurrent borrowers, and the set's
        // own high-water mark stays within the configured budget.
        assert!(peak.load(Ordering::SeqCst) <= 2);
        assert!(set.high_water() <= set.total_workers());
        assert_eq!(set.high_water(), 4);
    }
}
