//! Model checks for the threads crate's lock-free protocols, driven by
//! fun3d-check virtual threads. Compiled only under `--cfg fun3d_check`
//! (see `scripts/verify.sh`), where `fun3d_threads::sync_shim` resolves
//! to the checker's tracked atomics — so these tests explore *schedules*,
//! not wall-clock luck.
//!
//! Each protocol gets two tests:
//! - a **positive** model: the real production type, exercised end to end
//!   at 2–3 virtual threads under bounded-exhaustive DFS, must complete
//!   every schedule with no data race, deadlock, or livelock;
//! - a **mutant**: an inline copy of the protocol's synchronization
//!   skeleton with exactly one ordering downgraded (`Release` →
//!   `Relaxed`), which the checker must catch — proving the orderings the
//!   real code uses are load-bearing, not cargo-culted.
#![cfg(fun3d_check)]

use fun3d_check::{explore, thread, Config, FailureKind};
use fun3d_threads::sync_shim::{
    spin_hint, AtomicBool, AtomicU64, AtomicUsize, Ordering, ShimCell,
};
use fun3d_threads::{AtomicF64View, Bell, DoneFlags, SpinBarrier, Team};
use std::sync::Arc;

/// Exhaustive exploration budget shared by every protocol model. The
/// preemption bound keeps the doorbell's full region round-trip tractable
/// while still covering every bug class these protocols can express with
/// two context switches (one to expose a window, one to step into it).
fn cfg() -> Config {
    Config {
        max_threads: 4,
        preemption_bound: Some(2),
        max_schedules: 400_000,
        history: 3,
    }
}

fn assert_clean(report: fun3d_check::Report) {
    // Schedule counts are quoted in EXPERIMENTS.md; visible via
    // `cargo test ... -- --nocapture`.
    eprintln!("explored {} schedules (exhaustive: {})", report.schedules, report.exhaustive);
    assert!(report.failure.is_none(), "{:?}", report.failure);
    assert!(
        report.exhaustive,
        "budget too small: {} schedules explored without exhausting",
        report.schedules
    );
    assert!(report.schedules >= 2, "model degenerated to one schedule");
}

fn assert_race(report: fun3d_check::Report) -> fun3d_check::Failure {
    let f = report.failure.expect("checker must catch the seeded mutant");
    assert_eq!(f.kind, FailureKind::DataRace, "{}", f.message);
    assert!(!f.schedule.is_empty(), "failure must carry a replayable schedule");
    f
}

// ---- protocol 1: doorbell dispatch (pool.rs Bell) ----

/// One launcher (the root virtual thread) + `nworkers` workers running
/// the exact Bell protocol from `ThreadPool`: post → worker_wait/
/// take_job/worker_done → wait_workers/retire → ring_shutdown. The
/// payload is a non-atomic cell written before `post` and read inside
/// the region — only the Release epoch bump / Acquire epoch load edge
/// makes that safe, which is precisely what the model verifies.
fn doorbell_round_trip(nworkers: usize) -> impl Fn() + Send + Sync + 'static {
    move || {
        let bell = Arc::new(Bell::new(nworkers));
        let workers: Vec<_> = (0..nworkers)
            .map(|_| {
                let bell = Arc::clone(&bell);
                thread::spawn(move || {
                    let mut my_epoch = 0usize;
                    loop {
                        let e = bell.worker_wait(my_epoch);
                        if bell.shutting_down() {
                            return;
                        }
                        my_epoch = e;
                        let job = bell.take_job();
                        // SAFETY: same argument as worker_loop — the
                        // launcher blocks in wait_workers until every
                        // worker_done, so the pointee is alive.
                        (unsafe { &*job })(0);
                        bell.worker_done();
                    }
                })
            })
            .collect();

        let payload = ShimCell::new(0u64);
        let hits = AtomicUsize::new(0);
        payload.with_mut(|p| unsafe { *p = 42 });
        let region = |_tid: usize| {
            payload.with(|p| assert_eq!(unsafe { *p }, 42, "region saw unpublished payload"));
            hits.fetch_add(1, Ordering::Relaxed);
        };
        let wide: &(dyn Fn(usize) + Sync) = &region;
        // SAFETY: lifetime erasure as in ThreadPool::run; wait_workers
        // below outlives every use.
        let job: fun3d_threads::JobPtr = unsafe { std::mem::transmute(wide) };
        bell.post(job);
        bell.wait_workers();
        assert!(!bell.retire(), "no worker panicked");
        assert_eq!(hits.load(Ordering::Relaxed), nworkers);
        bell.ring_shutdown();
        for w in workers {
            w.join();
        }
    }
}

#[test]
fn doorbell_region_round_trip_is_race_free() {
    // One worker at the full preemption bound: every ≤2-switch schedule
    // of the complete post/region/retire/shutdown cycle.
    assert_clean(explore(&cfg(), doorbell_round_trip(1)));
}

#[test]
fn doorbell_two_workers_round_trip_is_race_free() {
    // Two workers (3 virtual threads) at bound 1: covers the
    // done-count accumulation and both workers' independent wakeups
    // while keeping the exhaustive search tractable (bound 2 at this
    // thread count is ~400k schedules / ~45 s for this one model).
    let c = Config {
        preemption_bound: Some(1),
        ..cfg()
    };
    assert_clean(explore(&c, doorbell_round_trip(2)));
}

#[test]
fn doorbell_relaxed_epoch_bump_is_caught() {
    // Mutant skeleton of `Bell::post`: the job is still written before
    // the epoch bump, but the bump is Relaxed — the doorbell rings
    // without publishing the job, so the worker's read of the job cell
    // races with the launcher's write.
    let report = explore(&cfg(), || {
        let epoch = Arc::new(AtomicUsize::new(0));
        let job = Arc::new(ShimCell::new(0u64));
        let (e2, j2) = (Arc::clone(&epoch), Arc::clone(&job));
        let worker = thread::spawn(move || {
            // Worker side is unchanged (Acquire, as in worker_wait).
            while e2.load(Ordering::Acquire) == 0 {
                spin_hint();
            }
            j2.with(|p| unsafe { *p });
        });
        job.with_mut(|p| unsafe { *p = 7 });
        epoch.fetch_add(1, Ordering::Relaxed); // BUG: Bell::post uses Release
        worker.join();
    });
    assert_race(report);
}

// ---- protocol 2: sense-reversing barrier (barrier.rs) ----

#[test]
fn barrier_publishes_pre_barrier_writes() {
    // Classic barrier contract: each side writes its own cell before the
    // barrier and reads the other side's after. Both directions must be
    // ordered — the late arriver's view travels through the AcqRel count
    // chain, the early arriver's through the Release/Acquire sense edge.
    let report = explore(&cfg(), || {
        let b = Arc::new(SpinBarrier::new(2));
        let mine = Arc::new(ShimCell::new(0u64));
        let theirs = Arc::new(ShimCell::new(0u64));
        let (b2, m2, t2) = (Arc::clone(&b), Arc::clone(&mine), Arc::clone(&theirs));
        let t = thread::spawn(move || {
            t2.with_mut(|p| unsafe { *p = 2 });
            b2.wait();
            m2.with(|p| assert_eq!(unsafe { *p }, 1));
        });
        mine.with_mut(|p| unsafe { *p = 1 });
        b.wait();
        theirs.with(|p| assert_eq!(unsafe { *p }, 2));
        t.join();
    });
    assert_clean(report);
}

#[test]
fn barrier_relaxed_sense_store_is_caught() {
    // Mutant skeleton of `SpinBarrier::wait`: identical except the
    // leader's sense flip is Relaxed. The waiter still sees the flip
    // (coherence) but inherits no view, so its read of the leader's
    // pre-barrier write races.
    struct MutantBarrier {
        count: AtomicUsize,
        sense: AtomicBool,
        parties: usize,
    }
    impl MutantBarrier {
        fn wait(&self) -> bool {
            let my_sense = !self.sense.load(Ordering::Relaxed);
            let arrived = self.count.fetch_add(1, Ordering::AcqRel) + 1;
            if arrived == self.parties {
                self.count.store(0, Ordering::Relaxed);
                self.sense.store(my_sense, Ordering::Relaxed); // BUG: Release
                true
            } else {
                while self.sense.load(Ordering::Acquire) != my_sense {
                    spin_hint();
                }
                false
            }
        }
    }
    let report = explore(&cfg(), || {
        let b = Arc::new(MutantBarrier {
            count: AtomicUsize::new(0),
            sense: AtomicBool::new(false),
            parties: 2,
        });
        let a = Arc::new(ShimCell::new(0u64));
        let c = Arc::new(ShimCell::new(0u64));
        let (b2, a2, c2) = (Arc::clone(&b), Arc::clone(&a), Arc::clone(&c));
        let t = thread::spawn(move || {
            c2.with_mut(|p| unsafe { *p = 2 });
            b2.wait();
            a2.with(|p| unsafe { *p });
        });
        a.with_mut(|p| unsafe { *p = 1 });
        b.wait();
        c.with(|p| unsafe { *p });
        t.join();
    });
    assert_race(report);
}

// ---- protocol 3: P2P completion flags (p2p.rs DoneFlags) ----

#[test]
fn doneflags_publish_wait_hands_off_data() {
    // The sparsified-sync dependency edge: producer writes row data and
    // publishes; consumer waits and reads. Exactly the paper's
    // level-free triangular-solve handshake.
    let report = explore(&cfg(), || {
        let flags = Arc::new(DoneFlags::new(1));
        let row = Arc::new(ShimCell::new(0u64));
        let (f2, r2) = (Arc::clone(&flags), Arc::clone(&row));
        let producer = thread::spawn(move || {
            r2.with_mut(|p| unsafe { *p = 7 });
            f2.publish(0);
        });
        flags.wait_for(0);
        row.with(|p| assert_eq!(unsafe { *p }, 7, "consumer saw unpublished row"));
        producer.join();
    });
    assert_clean(report);
}

#[test]
fn doneflags_relaxed_publish_is_caught() {
    // Mutant skeleton of `DoneFlags::publish`: the epoch-tagged flag
    // store is Relaxed, so the consumer's wait_for loop exit carries no
    // view of the producer's row write.
    let report = explore(&cfg(), || {
        let flag = Arc::new(AtomicU64::new(0));
        let row = Arc::new(ShimCell::new(0u64));
        let (f2, r2) = (Arc::clone(&flag), Arc::clone(&row));
        let producer = thread::spawn(move || {
            r2.with_mut(|p| unsafe { *p = 7 });
            f2.store(1, Ordering::Relaxed); // BUG: publish uses Release
        });
        while flag.load(Ordering::Acquire) != 1 {
            spin_hint();
        }
        row.with(|p| unsafe { *p });
        producer.join();
    });
    assert_race(report);
}

// ---- protocol 4: tree-reduction mailboxes (team.rs TreeReduce) ----

#[test]
fn tree_reduce_combine_is_race_free() {
    // Full combine at nt = 2: per-thread slot deposit, fan-in barrier,
    // leader sum in thread order, fan-out barrier. The slot/result tag
    // cells give the checker per-slot visibility, so a missing barrier
    // edge anywhere in the two-phase protocol would surface as a race.
    let report = explore(&cfg(), || {
        let team = Arc::new(Team::new(2, 1));
        let t2 = Arc::clone(&team);
        let t = thread::spawn(move || {
            // SAFETY: unique tid per member (0 below, 1 here).
            let m = unsafe { t2.member(1) };
            assert_eq!(m.sum(2.0), 3.0);
        });
        let m = unsafe { team.member(0) };
        assert_eq!(m.sum(1.0), 3.0);
        t.join();
    });
    assert_clean(report);
}

#[test]
fn tree_reduce_relaxed_fanout_is_caught() {
    // Mutant skeleton of the combine fan-out: slots deposit through an
    // AcqRel arrival count (sound), the leader sums and posts the result,
    // but the fan-out release flag is Relaxed — so the non-leader's read
    // of the result mailbox races with the leader's write.
    let report = explore(&cfg(), || {
        let arrivals = Arc::new(AtomicUsize::new(0));
        let ready = Arc::new(AtomicBool::new(false));
        let slot0 = Arc::new(ShimCell::new(0.0f64));
        let slot1 = Arc::new(ShimCell::new(0.0f64));
        let result = Arc::new(ShimCell::new(0.0f64));
        let (ar2, rd2, s1b, res2) = (
            Arc::clone(&arrivals),
            Arc::clone(&ready),
            Arc::clone(&slot1),
            Arc::clone(&result),
        );
        let t = thread::spawn(move || {
            s1b.with_mut(|p| unsafe { *p = 2.0 });
            ar2.fetch_add(1, Ordering::AcqRel);
            while !rd2.load(Ordering::Acquire) {
                spin_hint();
            }
            res2.with(|p| unsafe { *p });
        });
        slot0.with_mut(|p| unsafe { *p = 1.0 });
        arrivals.fetch_add(1, Ordering::AcqRel);
        while arrivals.load(Ordering::Acquire) != 2 {
            spin_hint();
        }
        let sum = slot0.with(|p| unsafe { *p }) + slot1.with(|p| unsafe { *p });
        result.with_mut(|p| unsafe { *p = sum });
        ready.store(true, Ordering::Relaxed); // BUG: fan-out needs Release
        t.join();
    });
    assert_race(report);
}

// ---- satellite: AtomicF64View retry accounting under the model ----

#[test]
fn atomicf64_contended_adds_are_exact_and_retry() {
    // Two virtual threads fetch_add the same element. Exhaustive
    // exploration must (a) never lose an add in any schedule, and
    // (b) include schedules where a CAS loses and retries — the event the
    // `atomicf64.retries` telemetry counter reports.
    let total_retries = Arc::new(std::sync::atomic::AtomicU64::new(0));
    let tr = Arc::clone(&total_retries);
    let report = explore(&cfg(), move || {
        // Leak per execution (8 bytes x a few hundred schedules): the
        // view must be 'static to cross thread::spawn.
        let xs: &'static mut [f64] = Box::leak(vec![0.0f64; 1].into_boxed_slice());
        let view = Arc::new(AtomicF64View::new(xs));
        let v2 = Arc::clone(&view);
        let t = thread::spawn(move || v2.fetch_add(0, 1.0));
        let r0 = view.fetch_add(0, 1.0);
        let r1 = t.join();
        assert_eq!(view.load(0), 2.0, "lost an atomic add");
        tr.fetch_add(
            (r0 + r1) as u64,
            std::sync::atomic::Ordering::Relaxed,
        );
    });
    assert_clean(report);
    assert!(
        total_retries.load(std::sync::atomic::Ordering::Relaxed) > 0,
        "exhaustive exploration must include a losing-CAS schedule"
    );
}

// ---- team broadcast rides the same barrier edges ----

#[test]
fn team_broadcast_is_race_free() {
    let report = explore(&cfg(), || {
        let team = Arc::new(Team::new(2, 1));
        let t2 = Arc::clone(&team);
        let t = thread::spawn(move || {
            // SAFETY: unique tid per member.
            let m = unsafe { t2.member(1) };
            assert_eq!(m.broadcast(0, -1.0), 9.0);
        });
        let m = unsafe { team.member(0) };
        assert_eq!(m.broadcast(0, 9.0), 9.0);
        t.join();
    });
    assert_clean(report);
}
