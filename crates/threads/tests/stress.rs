//! Stress tests for the spin-doorbell dispatch and the barrier under
//! oversubscription. The CI container has a single core, so every test
//! here runs with more threads than cores — the regime where a naive
//! spin livelocks and where the yield paths must carry the protocol.

use fun3d_threads::{SpinBarrier, ThreadPool};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};

#[test]
fn repeated_regions_under_contention() {
    // Two pools driven concurrently from two launcher threads: doorbell
    // epochs must never cross-talk, every region must run on every
    // worker exactly once.
    let rounds = 400;
    let handles: Vec<_> = (0..2)
        .map(|p| {
            std::thread::spawn(move || {
                let nt = 3 + p;
                let pool = ThreadPool::new(nt);
                let count = AtomicUsize::new(0);
                for _ in 0..rounds {
                    pool.run(|_| {
                        count.fetch_add(1, Ordering::Relaxed);
                    });
                }
                assert_eq!(count.load(Ordering::Relaxed), rounds * nt);
                assert_eq!(pool.regions_launched(), rounds as u64);
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
}

#[test]
fn panic_in_region_recovery_repeated() {
    // A worker panic must propagate to the launcher and leave the
    // doorbell consistent, across many panic/recover cycles.
    let pool = ThreadPool::new(4);
    for round in 0..50 {
        let bad = round % 4;
        let r = catch_unwind(AssertUnwindSafe(|| {
            pool.run(|tid| {
                if tid == bad {
                    panic!("stress panic {round}");
                }
            });
        }));
        assert!(r.is_err(), "round {round}: panic must propagate");
        // The very next region must run cleanly on all workers.
        let ok = AtomicUsize::new(0);
        pool.run(|_| {
            ok.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(ok.load(Ordering::Relaxed), 4, "round {round}");
    }
}

#[test]
fn nested_run_asserts() {
    // A region body calling back into `run` on the same pool must trip
    // the reentrancy assertion (as a worker panic seen by the launcher),
    // not deadlock; the pool stays usable afterwards.
    let pool = ThreadPool::new(2);
    let r = catch_unwind(AssertUnwindSafe(|| {
        pool.run(|tid| {
            if tid == 0 {
                pool.run(|_| {});
            }
        });
    }));
    assert!(r.is_err(), "nested run must panic, not deadlock");
    let ok = AtomicUsize::new(0);
    pool.run(|_| {
        ok.fetch_add(1, Ordering::Relaxed);
    });
    assert_eq!(ok.load(Ordering::Relaxed), 2);
}

#[test]
fn barrier_phase_ordering_oversubscribed() {
    // 8 threads on (typically) 1 core, 200 phases: after barrier p, every
    // thread must observe all 8 increments of phase p. A lost wakeup or
    // sense error shows up as a short counter.
    let nt = 8;
    let phases = 200usize;
    let pool = ThreadPool::new(nt);
    let barrier = SpinBarrier::new(nt);
    let counter = AtomicUsize::new(0);
    let violations = AtomicUsize::new(0);
    pool.run(|_tid| {
        for phase in 1..=phases {
            counter.fetch_add(1, Ordering::SeqCst);
            barrier.wait();
            if counter.load(Ordering::SeqCst) < nt * phase {
                violations.fetch_add(1, Ordering::SeqCst);
            }
            barrier.wait();
        }
    });
    assert_eq!(violations.load(Ordering::SeqCst), 0);
    assert_eq!(counter.load(Ordering::SeqCst), nt * phases);
    assert_eq!(barrier.crossings(), 2 * phases as u64);
}

#[test]
fn doorbell_latency_smoke_many_empty_regions() {
    // Thousands of empty regions: exercises the fast path (publish, two
    // waits, retire) with nothing to amortize it. Mostly a liveness
    // check at oversubscription; also pins down the launch counter.
    let pool = ThreadPool::new(4);
    for _ in 0..2000 {
        pool.run(|_| {});
    }
    assert_eq!(pool.regions_launched(), 2000);
}
