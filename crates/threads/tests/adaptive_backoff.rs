//! Regression tests for the pace-proportional wait ladder.
//!
//! The bug being pinned down: with a *fixed* spin→yield→nap ladder every
//! doorbell wait burned up to ~4k scheduler yields per phase even when
//! the region's work was microseconds — on an oversubscribed core those
//! yields are stolen from the thread doing real work, and they dominated
//! the nt>1 slowdown on the tiny fixture. The adaptive ladder sizes the
//! yield budget and nap length to the observed region pace, so the idle
//! phases must now cost dramatically fewer yields (and less CPU time)
//! for microsecond-scale regions.
//!
//! The model-check cfg replaces the ladder wholesale, so nothing here is
//! meaningful under `--cfg fun3d_check`.
#![cfg(not(fun3d_check))]

use fun3d_threads::probe::process_cpu_time_ns;
use fun3d_threads::ThreadPool;
use std::time::{Duration, Instant};

/// Drives `pool` through the tiny-region-then-idle pattern that exposed
/// the bug: a ~40 us region (so the pace estimate is microsecond-scale)
/// followed by a millisecond-scale gap in which the workers sit in
/// `worker_wait` burning their ladder budget. The gap is long enough
/// that the fixed ladder exhausts its full ~4k-yield budget every time.
fn tiny_regions_with_idle_gaps(pool: &ThreadPool, gaps: u32) {
    for _ in 0..gaps {
        pool.run(|_tid| {
            let t0 = Instant::now();
            while t0.elapsed() < Duration::from_micros(40) {
                std::hint::spin_loop();
            }
        });
        std::thread::sleep(Duration::from_millis(8));
    }
}

#[test]
fn adaptive_ladder_slashes_idle_yields_on_tiny_regions() {
    const GAPS: u32 = 25;

    let fixed = ThreadPool::with_adaptive(2, false);
    tiny_regions_with_idle_gaps(&fixed, GAPS);
    let fixed_yields = fixed.idle_yields();
    drop(fixed);

    let adaptive = ThreadPool::with_adaptive(2, true);
    tiny_regions_with_idle_gaps(&adaptive, GAPS);
    let adaptive_yields = adaptive.idle_yields();
    // The pace must have been learned as microsecond-scale.
    let pace = adaptive.pace_ns();
    drop(adaptive);

    assert!(pace > 0 && pace < 2_000_000, "pace estimate {pace} ns");
    // Fixed ladder: ~4k yields per worker per gap. Adaptive: a budget of
    // ~pace/500 (tens to low hundreds) before the first nap. A 4x margin
    // keeps the assertion robust to scheduler noise while still failing
    // hard if the budget ever reverts to the fixed 4k.
    assert!(
        adaptive_yields * 4 < fixed_yields,
        "adaptive ladder burned {adaptive_yields} yields vs fixed {fixed_yields}"
    );
    // And the ladder still reaches the nap tier during the gaps instead
    // of yielding forever.
    // (fixed pools nap too — this guards the adaptive path specifically)
}

#[cfg(all(target_os = "linux", target_arch = "x86_64"))]
#[test]
fn adaptive_ladder_cuts_idle_phase_cpu_time() {
    const GAPS: u32 = 25;

    // Two attempts: CPU-time comparisons on a shared machine can be
    // perturbed by outside load; one retry keeps the test honest without
    // being flaky.
    for attempt in 0..2 {
        let fixed = ThreadPool::with_adaptive(2, false);
        let f0 = process_cpu_time_ns().expect("clock_gettime");
        tiny_regions_with_idle_gaps(&fixed, GAPS);
        let fixed_cpu = process_cpu_time_ns().expect("clock_gettime") - f0;
        drop(fixed);

        let adaptive = ThreadPool::with_adaptive(2, true);
        let a0 = process_cpu_time_ns().expect("clock_gettime");
        tiny_regions_with_idle_gaps(&adaptive, GAPS);
        let adaptive_cpu = process_cpu_time_ns().expect("clock_gettime") - a0;
        drop(adaptive);

        if adaptive_cpu < fixed_cpu {
            return;
        }
        if attempt == 1 {
            panic!(
                "idle-phase CPU time did not drop: adaptive {adaptive_cpu} ns \
                 vs fixed {fixed_cpu} ns"
            );
        }
    }
}
