//! Sampler lifecycle against the thread pool: the profiler must attach
//! to a live pool, observe its spans, and detach cleanly — no deadlock
//! on teardown in either order, no torn stacks, bounded overhead, and a
//! dark `Off` path that publishes nothing.
//!
//! The telemetry level is process-global, so every test serializes on
//! `LEVEL_LOCK` and restores the default before releasing it (the same
//! pattern as the unit tests in `fun3d_util::telemetry`).

use fun3d_threads::ThreadPool;
use fun3d_util::telemetry::{self, sampler::Sampler, Level};
use std::sync::Mutex;
use std::time::{Duration, Instant};

static LEVEL_LOCK: Mutex<()> = Mutex::new(());

/// A compute-shaped workload long enough for a 200µs sampler to land
/// many ticks: repeated parallel sweeps over a small buffer.
fn churn(pool: &ThreadPool, sweeps: usize) -> f64 {
    let mut acc = 0.0f64;
    let data: Vec<f64> = (0..4096).map(|i| i as f64).collect();
    for _ in 0..sweeps {
        let chunks: Vec<Mutex<f64>> = (0..pool.size()).map(|_| Mutex::new(0.0)).collect();
        pool.parallel_for(data.len(), |tid, range| {
            let s: f64 = data[range].iter().map(|x| x.sqrt().sin()).sum();
            *chunks[tid].lock().unwrap() += s;
        });
        acc += chunks.iter().map(|c| *c.lock().unwrap()).sum::<f64>();
    }
    acc
}

#[test]
fn sampler_observes_pool_spans_and_both_teardown_orders_are_clean() {
    let _g = LEVEL_LOCK.lock().unwrap_or_else(|p| p.into_inner());
    telemetry::set_level(Level::Full);

    // Order 1: pool torn down while the sampler is still running.
    let sampler = Sampler::start(Duration::from_micros(200));
    {
        let pool = ThreadPool::new(2);
        std::hint::black_box(churn(&pool, 300));
    } // pool dropped here, sampler still sweeping
    std::thread::sleep(Duration::from_millis(2));
    let profile = sampler.stop();
    assert!(profile.ticks > 0, "sampler never woke");
    // Every sampled path must be made of real span names — a torn read
    // that survived validation would show up as garbage frames here.
    let known = ["pool.region", "pool.chunk", telemetry::sampler::IDLE_FRAME];
    for s in &profile.stacks {
        for f in &s.frames {
            assert!(known.contains(f), "unexpected sampled frame {f:?} in {s:?}");
        }
    }
    // The workload is hundreds of sweeps of real work: the profiler
    // must have caught the pool inside a region at least once.
    assert!(
        profile.busy_samples() > 0,
        "no busy samples over 300 sweeps: {profile:?}"
    );

    // Order 2: sampler stopped while the pool is still alive and busy.
    let pool = ThreadPool::new(2);
    let sampler = Sampler::start(Duration::from_micros(200));
    std::hint::black_box(churn(&pool, 50));
    let profile = sampler.stop();
    assert!(profile.ticks > 0);
    std::hint::black_box(churn(&pool, 10)); // pool still works after detach
    drop(pool);

    telemetry::set_level(Level::Counters);
}

#[test]
fn repeated_start_stop_cycles_do_not_deadlock_or_leak() {
    let _g = LEVEL_LOCK.lock().unwrap_or_else(|p| p.into_inner());
    telemetry::set_level(Level::Full);
    let pool = ThreadPool::new(2);
    for i in 0..5 {
        let sampler = Sampler::start(Duration::from_micros(100));
        std::hint::black_box(churn(&pool, 20));
        let profile = sampler.stop();
        assert!(profile.ticks > 0, "cycle {i}: sampler never woke");
    }
    // Dropping without an explicit stop must also shut the thread down.
    let sampler = Sampler::start(Duration::from_micros(100));
    std::hint::black_box(churn(&pool, 5));
    drop(sampler);
    telemetry::set_level(Level::Counters);
}

#[test]
fn sampler_overhead_on_the_workload_is_bounded() {
    let _g = LEVEL_LOCK.lock().unwrap_or_else(|p| p.into_inner());
    telemetry::set_level(Level::Full);
    let pool = ThreadPool::new(2);
    let sweeps = 150;
    std::hint::black_box(churn(&pool, sweeps)); // warm-up
    let t0 = Instant::now();
    std::hint::black_box(churn(&pool, sweeps));
    let without = t0.elapsed();
    let sampler = Sampler::start(Duration::from_micros(250));
    let t1 = Instant::now();
    std::hint::black_box(churn(&pool, sweeps));
    let with = t1.elapsed();
    let profile = sampler.stop();
    assert!(profile.ticks > 0);
    // The slot path is a few uncontended atomic stores per span and the
    // sweep never blocks recording threads, so the true overhead is a
    // few percent. The bound is deliberately loose — shared CI boxes
    // jitter — but still catches a pathological sampler (one that holds
    // the registry lock for milliseconds or makes workers spin).
    assert!(
        with < without * 10 + Duration::from_millis(100),
        "sampler overhead out of bounds: {without:?} -> {with:?}"
    );
    telemetry::set_level(Level::Counters);
}

#[test]
fn off_level_publishes_no_slots_to_the_sampler() {
    let _g = LEVEL_LOCK.lock().unwrap_or_else(|p| p.into_inner());
    telemetry::set_level(Level::Off);
    let pool = ThreadPool::new(2);
    let sampler = Sampler::start(Duration::from_micros(100));
    std::hint::black_box(churn(&pool, 100));
    let profile = sampler.stop();
    // Spans are inactive at Off, so no slot ever publishes a frame: the
    // sampler may tick and see idle threads, never a busy stack.
    assert_eq!(
        profile.busy_samples(),
        0,
        "Off-level run produced busy samples: {profile:?}"
    );
    telemetry::set_level(Level::Counters);
}
