//! End-to-end flight-recorder coverage of the ΨTC anomaly triggers:
//! each synthetic failure mode must abort the solve, name its trigger
//! in `PtcStats::anomaly`, and leave (exactly) the matching validated
//! dump artifact — while a clean convergent solve leaves none.
//!
//! The dump directory/prefix are process globals, so every test takes
//! `DUMP_LOCK` and points the recorder at its own directory before
//! solving.

use fun3d_solver::precond::{IdentityPrecond, Preconditioner, SerialIlu};
use fun3d_solver::ptc::{self, PtcConfig, PtcProblem};
use fun3d_solver::{Anomaly, AnomalyConfig};
use fun3d_sparse::Bcsr4;
use fun3d_util::telemetry::flight;
use fun3d_util::telemetry::json::Json;
use std::path::PathBuf;
use std::sync::Mutex;

static DUMP_LOCK: Mutex<()> = Mutex::new(());

/// Points dumps at a fresh per-test directory and returns it.
fn dump_dir(test: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR"))
        .join("flight-anomaly")
        .join(test);
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    flight::set_dump_dir(&dir);
    flight::set_dump_prefix("flight");
    dir
}

/// Asserts the dump for `trigger` exists, validates strictly, and
/// carries a matching `anomaly` event in its timeline; returns the doc.
fn expect_dump(dir: &PathBuf, trigger: flight::Trigger) -> Json {
    let path = dir.join(format!("flight.{}.json", trigger.slug()));
    assert!(path.exists(), "expected dump {} missing", path.display());
    let events = flight::check_dump_file(&path).expect("dump must validate strictly");
    assert!(events > 0);
    let doc = Json::parse(&std::fs::read_to_string(&path).unwrap()).unwrap();
    assert_eq!(doc.get("trigger").and_then(Json::as_str), Some(trigger.slug()));
    let timeline = doc.get("timeline").and_then(Json::as_arr).unwrap();
    assert!(
        timeline.iter().any(|e| {
            e.get("event").and_then(Json::as_str) == Some("anomaly")
                && e.get("trigger").and_then(Json::as_str) == Some(trigger.slug())
        }),
        "timeline lacks the anomaly event naming '{}'",
        trigger.slug()
    );
    doc
}

fn no_dumps(dir: &PathBuf) {
    let left: Vec<_> = std::fs::read_dir(dir)
        .unwrap()
        .map(|e| e.unwrap().file_name())
        .collect();
    assert!(left.is_empty(), "clean solve left artifacts: {left:?}");
}

/// `f(u) = A u − b` on the tiny mesh: converges under SER.
struct LinearProblem {
    a: Bcsr4,
    b: Vec<f64>,
    precond: Option<SerialIlu>,
    /// When set, `residual` writes NaN into component 0 from the Nth
    /// evaluation on (counts every call, including FD perturbations).
    poison_after: Option<usize>,
    calls: usize,
}

impl LinearProblem {
    fn new(seed: u64) -> LinearProblem {
        let m = fun3d_mesh::generator::MeshPreset::Tiny.build();
        let mut a = Bcsr4::from_edges(m.nvertices(), &m.edges());
        a.fill_diag_dominant(seed);
        let n = a.dim();
        let b: Vec<f64> = (0..n).map(|i| ((i % 11) as f64 - 5.0) * 0.1).collect();
        LinearProblem {
            a,
            b,
            precond: None,
            poison_after: None,
            calls: 0,
        }
    }
}

impl PtcProblem for LinearProblem {
    fn dim(&self) -> usize {
        self.a.dim()
    }
    fn residual(&mut self, u: &[f64], r: &mut [f64]) {
        self.calls += 1;
        self.a.spmv(u, r);
        for i in 0..r.len() {
            r[i] -= self.b[i];
        }
        if self.poison_after.is_some_and(|n| self.calls > n) {
            r[0] = f64::NAN;
        }
    }
    fn time_diag(&self, dt: f64, out: &mut [f64]) {
        out.iter_mut().for_each(|o| *o = 1.0 / dt);
    }
    fn build_preconditioner(&mut self, _u: &[f64], _time_diag: &[f64]) {
        if self.precond.is_none() {
            self.precond = Some(SerialIlu::new(&self.a, 0));
        }
    }
    fn preconditioner(&self) -> &dyn Preconditioner {
        self.precond.as_ref().unwrap()
    }
}

/// `f(u) = c` (constant, nonzero): the residual never moves, the
/// canonical stagnating solve.
struct StuckProblem {
    c: Vec<f64>,
    ident: IdentityPrecond,
}

impl StuckProblem {
    fn new(n: usize) -> StuckProblem {
        StuckProblem {
            c: (0..n).map(|i| 1.0 + (i % 3) as f64).collect(),
            ident: IdentityPrecond(n),
        }
    }
}

impl PtcProblem for StuckProblem {
    fn dim(&self) -> usize {
        self.c.len()
    }
    fn residual(&mut self, _u: &[f64], r: &mut [f64]) {
        r.copy_from_slice(&self.c);
    }
    fn time_diag(&self, dt: f64, out: &mut [f64]) {
        out.iter_mut().for_each(|o| *o = 1.0 / dt);
    }
    fn build_preconditioner(&mut self, _u: &[f64], _s: &[f64]) {}
    fn preconditioner(&self) -> &dyn Preconditioner {
        &self.ident
    }
}

#[test]
fn clean_convergence_writes_no_dump() {
    let _g = DUMP_LOCK.lock().unwrap();
    let dir = dump_dir("clean");
    let mut p = LinearProblem::new(91);
    let mut u = vec![0.0; p.dim()];
    let stats = ptc::solve(&mut p, &mut u, &PtcConfig::default());
    assert!(stats.converged);
    assert!(stats.anomaly.is_none());
    no_dumps(&dir);
}

#[test]
fn nan_residual_dumps_a_divergence_artifact() {
    let _g = DUMP_LOCK.lock().unwrap();
    let dir = dump_dir("divergence");
    let mut p = LinearProblem::new(92);
    // Let a step or two complete first (each step costs a handful of
    // residual calls through the FD Jacobian), so the dump holds real
    // history before the failure.
    p.poison_after = Some(12);
    let mut u = vec![0.0; p.dim()];
    let stats = ptc::solve(
        &mut p,
        &mut u,
        &PtcConfig {
            dt0: 0.5,
            rtol: 1e-12,
            ..Default::default()
        },
    );
    assert!(!stats.converged);
    let step = match stats.anomaly {
        Some(Anomaly::Divergence { step, .. }) => step,
        ref other => panic!("expected divergence, got {other:?}"),
    };
    assert!(step >= 1);
    let doc = expect_dump(&dir, flight::Trigger::Divergence);
    // The poisoned residual must survive the strict artifact verbatim
    // (non-finite floats degrade to strings, never to null).
    let timeline = doc.get("timeline").and_then(Json::as_arr).unwrap();
    assert!(timeline.iter().any(|e| {
        e.get("event").and_then(Json::as_str) == Some("ptc_step")
            && e.get("res").and_then(Json::as_str) == Some("NaN")
    }));
}

#[test]
fn flat_residual_dumps_a_stagnation_artifact() {
    let _g = DUMP_LOCK.lock().unwrap();
    let dir = dump_dir("stagnation");
    let mut p = StuckProblem::new(32);
    let mut u = vec![0.0; 32];
    let stats = ptc::solve(
        &mut p,
        &mut u,
        &PtcConfig {
            max_steps: 50,
            anomaly: AnomalyConfig {
                stall_window: 4,
                ..Default::default()
            },
            ..Default::default()
        },
    );
    assert!(!stats.converged);
    assert!(matches!(stats.anomaly, Some(Anomaly::Stagnation { .. })));
    // Must fire right after the window fills, not at max_steps.
    assert!(stats.time_steps <= 10, "fired too late: {}", stats.time_steps);
    expect_dump(&dir, flight::Trigger::Stagnation);
}

#[test]
fn exhausted_wall_budget_dumps_an_artifact() {
    let _g = DUMP_LOCK.lock().unwrap();
    let dir = dump_dir("wall-budget");
    let mut p = LinearProblem::new(93);
    let mut u = vec![0.0; p.dim()];
    let stats = ptc::solve(
        &mut p,
        &mut u,
        &PtcConfig {
            // Slow convergence + a zero budget: the very first step
            // overruns.
            dt0: 1e-3,
            rtol: 1e-14,
            anomaly: AnomalyConfig {
                wall_budget_s: Some(0.0),
                ..Default::default()
            },
            ..Default::default()
        },
    );
    assert!(!stats.converged);
    let elapsed = match stats.anomaly {
        Some(Anomaly::WallBudget { elapsed_s, .. }) => elapsed_s,
        ref other => panic!("expected wall-budget overrun, got {other:?}"),
    };
    assert!(elapsed > 0.0);
    expect_dump(&dir, flight::Trigger::WallBudget);
}

#[test]
fn explicit_request_dumps_at_solve_end() {
    let _g = DUMP_LOCK.lock().unwrap();
    let dir = dump_dir("request");
    std::env::set_var("FUN3D_FLIGHT_DUMP", "1");
    let mut p = LinearProblem::new(94);
    let mut u = vec![0.0; p.dim()];
    let stats = ptc::solve(&mut p, &mut u, &PtcConfig::default());
    std::env::remove_var("FUN3D_FLIGHT_DUMP");
    assert!(stats.converged, "request dumps must not disturb the solve");
    assert!(stats.anomaly.is_none());
    let path = dir.join("flight.request.json");
    assert!(path.exists());
    flight::check_dump_file(&path).expect("request dump must validate");
    let doc = Json::parse(&std::fs::read_to_string(&path).unwrap()).unwrap();
    assert_eq!(doc.get("trigger").and_then(Json::as_str), Some("request"));
    // A completed solve's dump carries its bracketing events, tagged
    // with this solve's id.
    let timeline = doc.get("timeline").and_then(Json::as_arr).unwrap();
    for name in ["solve_start", "solve_end"] {
        assert!(
            timeline.iter().any(|e| {
                e.get("event").and_then(Json::as_str) == Some(name)
                    && e.get("solve").and_then(Json::as_f64)
                        == Some(stats.solve_id as f64)
            }),
            "timeline lacks {name} for solve {}",
            stats.solve_id
        );
    }
}
