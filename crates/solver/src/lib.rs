//! Newton–Krylov–Schwarz solver stack (the PETSc Vec/KSP/SNES/PC substrate).
//!
//! PETSc-FUN3D's solver is ΨNKS: **pseudo-transient continuation** wraps
//! an **inexact Newton** method whose linear systems are solved by
//! **restarted GMRES**, preconditioned with an **additive Schwarz / block-
//! Jacobi ILU** of a lower-order Jacobian, with the true Jacobian action
//! applied **matrix-free** by finite differences [12]. This crate
//! implements each layer:
//!
//! * [`vecops`] — the PETSc vector primitives by name (`VecWAXPY`,
//!   `VecMAXPY`, `VecMDot`, `VecNorm`, scatters), serial and threaded;
//!   the paper calls out that these are *not* threaded in stock PETSc and
//!   optimizes them (Section VI.A);
//! * [`op`] — linear operators: assembled BCSR or finite-difference
//!   matrix-free Jacobian with a pseudo-time diagonal shift;
//! * [`precond`] — identity, global ILU, and block-Jacobi (zero-overlap
//!   additive Schwarz) ILU preconditioners with serial, level-scheduled
//!   and P2P-synchronized application;
//! * [`gmres`] — left-preconditioned GMRES(m) with classical Gram-Schmidt
//!   (PETSc's default KSP for this code) and Givens least squares, in
//!   serial, region-per-op, and persistent-SPMD-region execution modes;
//! * [`team`] — the in-region vector primitives those persistent regions
//!   are built from (barrier phases + tree reductions, no fork-join);
//! * [`ptc`] — pseudo-transient continuation with switched evolution
//!   relaxation (Mulder & Van Leer [11]): `Δt` grows as the steady
//!   residual falls, driving Newton to the steady state.

pub mod anomaly;
pub mod factor_cache;
pub mod gmres;
pub mod op;
pub mod policy;
pub mod precond;
pub mod ptc;
pub mod team;
pub mod vecops;

pub use anomaly::{Anomaly, AnomalyConfig, AnomalyDetector};
pub use factor_cache::{CacheStats, KeyedCache};
pub use gmres::{Gmres, GmresConfig, GmresExec, GmresOutcome, GmresResult};
pub use op::{FdJacobian, LinearOperator, ShiftedOperator};
pub use policy::{AutoPolicy, Decision, ExecMode, FluxScheme};
pub use precond::{BlockJacobiIlu, IdentityPrecond, IluApply, Preconditioner, SerialIlu};
pub use ptc::{PtcConfig, PtcProblem, PtcStats};
