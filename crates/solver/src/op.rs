//! Linear operators for the Krylov solver.

use fun3d_sparse::Bcsr4;
use fun3d_threads::{TeamMember, TeamSlice, ThreadPool};

/// Anything that can apply `y = A x`.
pub trait LinearOperator {
    /// Scalar dimension of the operator.
    fn dim(&self) -> usize;

    /// Applies the operator: `y = A x`.
    fn apply(&self, x: &[f64], y: &mut [f64]);

    /// Region-per-op threaded apply (one pool region). Defaults to the
    /// serial apply; assembled operators override with a parallel SpMV.
    fn apply_parallel(&self, _pool: &ThreadPool, x: &[f64], y: &mut [f64]) {
        self.apply(x, y);
    }

    /// True when [`LinearOperator::apply_team`] is implemented, i.e. the
    /// operator can run inside a persistent SPMD region. Matrix-free
    /// operators that launch their own pool regions (e.g. an FD Jacobian
    /// whose residual is threaded) must return `false`; the solver then
    /// applies them on the main thread *between* regions (hybrid mode).
    fn team_capable(&self) -> bool {
        false
    }

    /// Applies this thread's share of `y = A x` inside a running SPMD
    /// region. `x` must be fully published (barrier or region entry)
    /// before the call; the caller barriers before any cross-chunk read
    /// of `y`.
    ///
    /// # Safety
    /// Called concurrently by every thread of the team. Implementations
    /// (and the data they touch) must be data-race free under that
    /// calling pattern. Only called when [`LinearOperator::team_capable`]
    /// returns `true`.
    unsafe fn apply_team(&self, _tm: &TeamMember, _x: TeamSlice, _y: TeamSlice) {
        unimplemented!("operator is not team-capable (team_capable() == false)")
    }
}

impl LinearOperator for Bcsr4 {
    fn dim(&self) -> usize {
        Bcsr4::dim(self)
    }

    fn apply(&self, x: &[f64], y: &mut [f64]) {
        self.spmv(x, y);
    }

    fn apply_parallel(&self, pool: &ThreadPool, x: &[f64], y: &mut [f64]) {
        self.spmv_parallel(pool, x, y);
    }

    fn team_capable(&self) -> bool {
        true
    }

    unsafe fn apply_team(&self, tm: &TeamMember, x: TeamSlice, y: TeamSlice) {
        // SAFETY: x is published per the trait contract; spmv_team writes
        // disjoint row chunks.
        let xs = unsafe { x.slice(0..x.len()) };
        self.spmv_team(tm.tid(), tm.nthreads(), xs, y);
    }
}

/// Matrix-free Jacobian-vector products by one-sided finite differences
/// [12]:  `J v ≈ (F(u + εv) − F(u)) / ε` with the standard step
/// `ε = sqrt(machine-eps) · (1 + ‖u‖) / ‖v‖`.
///
/// An optional per-unknown diagonal shift models the pseudo-transient
/// term `V/Δt`, so the operator applied is `diag(shift) + ∂F/∂u`.
pub struct FdJacobian<'a, F: Fn(&[f64], &mut [f64])> {
    residual: F,
    /// Base state `u`.
    u: &'a [f64],
    /// Residual at the base state, `F(u)`.
    r0: &'a [f64],
    /// Pseudo-time diagonal (`V_i/Δt` per unknown), empty for none.
    shift: &'a [f64],
    unorm: f64,
    /// Scratch for the perturbed state and residual.
    scratch: std::cell::RefCell<(Vec<f64>, Vec<f64>)>,
}

impl<'a, F: Fn(&[f64], &mut [f64])> FdJacobian<'a, F> {
    /// Creates the operator. `shift` must be empty or `u.len()` long.
    pub fn new(residual: F, u: &'a [f64], r0: &'a [f64], shift: &'a [f64]) -> Self {
        assert_eq!(u.len(), r0.len());
        assert!(shift.is_empty() || shift.len() == u.len());
        let unorm = crate::vecops::norm2(u);
        let n = u.len();
        FdJacobian {
            residual,
            u,
            r0,
            shift,
            unorm,
            scratch: std::cell::RefCell::new((vec![0.0; n], vec![0.0; n])),
        }
    }

    /// Number of residual evaluations performed so far is not tracked
    /// here; the application layer counts them in its profiler.
    pub fn epsilon(&self, vnorm: f64) -> f64 {
        let sqrt_eps = f64::EPSILON.sqrt();
        sqrt_eps * (1.0 + self.unorm) / vnorm.max(1e-300)
    }
}

impl<F: Fn(&[f64], &mut [f64])> LinearOperator for FdJacobian<'_, F> {
    fn dim(&self) -> usize {
        self.u.len()
    }

    fn apply(&self, v: &[f64], y: &mut [f64]) {
        let n = self.u.len();
        assert_eq!(v.len(), n);
        assert_eq!(y.len(), n);
        let vnorm = crate::vecops::norm2(v);
        if vnorm == 0.0 {
            y.iter_mut().for_each(|x| *x = 0.0);
            return;
        }
        let eps = self.epsilon(vnorm);
        let mut scratch = self.scratch.borrow_mut();
        let (up, rp) = &mut *scratch;
        for i in 0..n {
            up[i] = self.u[i] + eps * v[i];
        }
        (self.residual)(up, rp);
        let inv_eps = 1.0 / eps;
        for i in 0..n {
            y[i] = (rp[i] - self.r0[i]) * inv_eps;
        }
        if !self.shift.is_empty() {
            for i in 0..n {
                y[i] += self.shift[i] * v[i];
            }
        }
    }
}

/// An assembled operator plus a diagonal shift: `(diag(s) + A) x`.
/// Used in tests and as the "assembled Jacobian" path.
pub struct ShiftedOperator<'a> {
    /// The assembled matrix.
    pub a: &'a Bcsr4,
    /// Per-unknown diagonal shift.
    pub shift: &'a [f64],
}

impl LinearOperator for ShiftedOperator<'_> {
    fn dim(&self) -> usize {
        self.a.dim()
    }

    fn apply(&self, x: &[f64], y: &mut [f64]) {
        self.a.spmv(x, y);
        if !self.shift.is_empty() {
            for i in 0..y.len() {
                y[i] += self.shift[i] * x[i];
            }
        }
    }

    fn apply_parallel(&self, pool: &ThreadPool, x: &[f64], y: &mut [f64]) {
        self.a.spmv_parallel(pool, x, y);
        if !self.shift.is_empty() {
            for i in 0..y.len() {
                y[i] += self.shift[i] * x[i];
            }
        }
    }

    fn team_capable(&self) -> bool {
        true
    }

    unsafe fn apply_team(&self, tm: &TeamMember, x: TeamSlice, y: TeamSlice) {
        let (tid, nt) = (tm.tid(), tm.nthreads());
        // SAFETY: x published per the trait contract.
        let xs = unsafe { x.slice(0..x.len()) };
        self.a.spmv_team(tid, nt, xs, y);
        if !self.shift.is_empty() {
            // Shift over the scalar span of this thread's *row* chunk, so
            // every element touched here was just written by this thread
            // (no barrier needed between SpMV and shift).
            let rows = fun3d_threads::chunk_range(self.a.nrows(), nt, tid);
            // SAFETY: disjoint per-thread spans.
            unsafe {
                for i in rows.start * 4..rows.end * 4 {
                    y.set(i, y.get(i) + self.shift[i] * x.get(i));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_matrix() -> Bcsr4 {
        let mut a = Bcsr4::from_pattern(&[vec![0, 1], vec![0, 1]]);
        a.fill_diag_dominant(51);
        a
    }

    #[test]
    fn fd_jacobian_of_linear_function_is_exact() {
        // For linear F(u) = A u, the FD Jacobian action equals A v up to
        // rounding for any base state.
        let a = small_matrix();
        let n = a.dim();
        let residual = |u: &[f64], r: &mut [f64]| a.spmv(u, r);
        let u: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).sin()).collect();
        let mut r0 = vec![0.0; n];
        residual(&u, &mut r0);
        let jac = FdJacobian::new(residual, &u, &r0, &[]);
        let v: Vec<f64> = (0..n).map(|i| 1.0 + (i % 3) as f64).collect();
        let mut jv = vec![0.0; n];
        jac.apply(&v, &mut jv);
        let mut av = vec![0.0; n];
        a.spmv(&v, &mut av);
        for i in 0..n {
            assert!(
                (jv[i] - av[i]).abs() < 1e-6 * (1.0 + av[i].abs()),
                "i={i}: {} vs {}",
                jv[i],
                av[i]
            );
        }
    }

    #[test]
    fn fd_jacobian_of_quadratic_function() {
        // F(u)_i = u_i^2 has Jacobian diag(2u); FD should be close.
        let residual = |u: &[f64], r: &mut [f64]| {
            for i in 0..u.len() {
                r[i] = u[i] * u[i];
            }
        };
        let u = vec![1.0, 2.0, -3.0, 0.5];
        let mut r0 = vec![0.0; 4];
        residual(&u, &mut r0);
        let jac = FdJacobian::new(residual, &u, &r0, &[]);
        let v = vec![1.0, 1.0, 1.0, 1.0];
        let mut jv = vec![0.0; 4];
        jac.apply(&v, &mut jv);
        for i in 0..4 {
            assert!(
                (jv[i] - 2.0 * u[i]).abs() < 1e-5,
                "i={i}: {} vs {}",
                jv[i],
                2.0 * u[i]
            );
        }
    }

    #[test]
    fn shift_adds_diagonal_term() {
        let a = small_matrix();
        let n = a.dim();
        let residual = |u: &[f64], r: &mut [f64]| a.spmv(u, r);
        let u = vec![0.0; n];
        let mut r0 = vec![0.0; n];
        residual(&u, &mut r0);
        let shift: Vec<f64> = (0..n).map(|i| 10.0 + i as f64).collect();
        let jac = FdJacobian::new(residual, &u, &r0, &shift);
        let v: Vec<f64> = (0..n).map(|i| (i as f64 + 1.0) * 0.1).collect();
        let mut jv = vec![0.0; n];
        jac.apply(&v, &mut jv);
        let mut want = vec![0.0; n];
        a.spmv(&v, &mut want);
        for i in 0..n {
            want[i] += shift[i] * v[i];
        }
        for i in 0..n {
            assert!((jv[i] - want[i]).abs() < 1e-6 * (1.0 + want[i].abs()));
        }
    }

    #[test]
    fn zero_vector_maps_to_zero() {
        let a = small_matrix();
        let n = a.dim();
        let residual = |u: &[f64], r: &mut [f64]| a.spmv(u, r);
        let u = vec![1.0; n];
        let mut r0 = vec![0.0; n];
        residual(&u, &mut r0);
        let jac = FdJacobian::new(residual, &u, &r0, &[]);
        let v = vec![0.0; n];
        let mut jv = vec![1.0; n];
        jac.apply(&v, &mut jv);
        assert!(jv.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn shifted_operator_matches_manual() {
        let a = small_matrix();
        let n = a.dim();
        let shift: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let op = ShiftedOperator { a: &a, shift: &shift };
        assert_eq!(op.dim(), n);
        let x: Vec<f64> = (0..n).map(|i| (i as f64).cos()).collect();
        let mut y = vec![0.0; n];
        op.apply(&x, &mut y);
        let mut want = vec![0.0; n];
        a.spmv(&x, &mut want);
        for i in 0..n {
            want[i] += shift[i] * x[i];
            assert!((y[i] - want[i]).abs() < 1e-14);
        }
    }
}
