//! PETSc-named vector primitives, serial and threaded.
//!
//! The paper finds that after optimizing the main kernels, the PETSc
//! native vector primitives (`VecMAXPY`, `VecWAXPY`, `VecMDOT`, `VecNorm`)
//! and `VecScatter` become a significant fraction of runtime and are not
//! thread-parallel in stock PETSc; it replaces them with threaded,
//! vectorized implementations. Both forms live here so the application
//! can run in "stock" and "optimized" configurations.

use fun3d_threads::ThreadPool;

/// `w = a*x + y` (PETSc `VecWAXPY`).
pub fn waxpy(w: &mut [f64], a: f64, x: &[f64], y: &[f64]) {
    assert!(w.len() == x.len() && x.len() == y.len());
    for i in 0..w.len() {
        w[i] = a * x[i] + y[i];
    }
}

/// `y += a*x` (PETSc `VecAXPY`).
pub fn axpy(y: &mut [f64], a: f64, x: &[f64]) {
    assert_eq!(y.len(), x.len());
    for i in 0..y.len() {
        y[i] += a * x[i];
    }
}

/// `y += Σ_k alpha[k] * xs[k]` (PETSc `VecMAXPY`), cache-blocked over the
/// vectors so `y` is traversed once.
pub fn maxpy(y: &mut [f64], alpha: &[f64], xs: &[&[f64]]) {
    assert_eq!(alpha.len(), xs.len());
    for x in xs {
        assert_eq!(x.len(), y.len());
    }
    for i in 0..y.len() {
        let mut acc = y[i];
        for (a, x) in alpha.iter().zip(xs) {
            acc += a * x[i];
        }
        y[i] = acc;
    }
}

/// `out[k] = <x, ys[k]>` (PETSc `VecMDot`), single pass over `x`.
pub fn mdot(x: &[f64], ys: &[&[f64]], out: &mut [f64]) {
    assert_eq!(ys.len(), out.len());
    out.iter_mut().for_each(|o| *o = 0.0);
    for (k, y) in ys.iter().enumerate() {
        assert_eq!(y.len(), x.len());
        let mut acc = 0.0;
        for i in 0..x.len() {
            acc += x[i] * y[i];
        }
        out[k] = acc;
    }
}

/// `w = b - w` in place (residual formation step).
pub fn bsub(w: &mut [f64], b: &[f64]) {
    assert_eq!(w.len(), b.len());
    for i in 0..w.len() {
        w[i] = b[i] - w[i];
    }
}

/// `dst = src / s` elementwise (basis normalization; kept as a division
/// so all execution paths round identically).
pub fn div_into(dst: &mut [f64], src: &[f64], s: f64) {
    assert_eq!(dst.len(), src.len());
    for i in 0..dst.len() {
        dst[i] = src[i] / s;
    }
}

/// `<x, y>` (PETSc `VecDot`).
pub fn dot(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len());
    x.iter().zip(y).map(|(a, b)| a * b).sum()
}

/// 2-norm (PETSc `VecNorm` with `NORM_2`).
pub fn norm2(x: &[f64]) -> f64 {
    dot(x, x).sqrt()
}

/// `x *= a` (PETSc `VecScale`).
pub fn scale(x: &mut [f64], a: f64) {
    for v in x {
        *v *= a;
    }
}

/// Gather: `dst[k] = src[idx[k]]` (one half of PETSc `VecScatter`).
pub fn gather(src: &[f64], idx: &[u32], dst: &mut [f64]) {
    assert_eq!(idx.len(), dst.len());
    for (d, &i) in dst.iter_mut().zip(idx) {
        *d = src[i as usize];
    }
}

/// Scatter-add: `dst[idx[k]] += src[k]` (the other half of `VecScatter`).
pub fn scatter_add(dst: &mut [f64], idx: &[u32], src: &[f64]) {
    assert_eq!(idx.len(), src.len());
    for (&i, &s) in idx.iter().zip(src) {
        dst[i as usize] += s;
    }
}

/// Threaded variants (the paper's optimized replacements). Each splits the
/// index space statically across the pool.
pub mod par {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    struct SendPtr(*mut f64);
    unsafe impl Send for SendPtr {}
    unsafe impl Sync for SendPtr {}

    /// Threaded `w = a*x + y`.
    pub fn waxpy(pool: &ThreadPool, w: &mut [f64], a: f64, x: &[f64], y: &[f64]) {
        assert!(w.len() == x.len() && x.len() == y.len());
        let wp = SendPtr(w.as_mut_ptr());
        pool.parallel_for(x.len(), |_tid, r| {
            let wp = &wp;
            for i in r {
                // SAFETY: ranges are disjoint per thread.
                unsafe { *wp.0.add(i) = a * x[i] + y[i] };
            }
        });
    }

    /// Threaded `y += a*x`.
    pub fn axpy(pool: &ThreadPool, y: &mut [f64], a: f64, x: &[f64]) {
        assert_eq!(y.len(), x.len());
        let yp = SendPtr(y.as_mut_ptr());
        pool.parallel_for(x.len(), |_tid, r| {
            let yp = &yp;
            for i in r {
                // SAFETY: disjoint ranges.
                unsafe { *yp.0.add(i) += a * x[i] };
            }
        });
    }

    /// Threaded `y += Σ alpha[k] xs[k]`.
    pub fn maxpy(pool: &ThreadPool, y: &mut [f64], alpha: &[f64], xs: &[&[f64]]) {
        assert_eq!(alpha.len(), xs.len());
        let yp = SendPtr(y.as_mut_ptr());
        pool.parallel_for(y.len(), |_tid, r| {
            let yp = &yp;
            for i in r {
                let mut acc = unsafe { *yp.0.add(i) };
                for (a, x) in alpha.iter().zip(xs) {
                    acc += a * x[i];
                }
                // SAFETY: disjoint ranges.
                unsafe { *yp.0.add(i) = acc };
            }
        });
    }

    /// Threaded `w = b - w` in place.
    pub fn bsub(pool: &ThreadPool, w: &mut [f64], b: &[f64]) {
        assert_eq!(w.len(), b.len());
        let wp = SendPtr(w.as_mut_ptr());
        pool.parallel_for(w.len(), |_tid, r| {
            let wp = &wp;
            for i in r {
                // SAFETY: disjoint ranges.
                unsafe { *wp.0.add(i) = b[i] - *wp.0.add(i) };
            }
        });
    }

    /// Threaded `dst = src / s` elementwise.
    pub fn div_into(pool: &ThreadPool, dst: &mut [f64], src: &[f64], s: f64) {
        assert_eq!(dst.len(), src.len());
        let dp = SendPtr(dst.as_mut_ptr());
        pool.parallel_for(src.len(), |_tid, r| {
            let dp = &dp;
            for i in r {
                // SAFETY: disjoint ranges.
                unsafe { *dp.0.add(i) = src[i] / s };
            }
        });
    }

    /// Threaded dot product with deterministic per-thread partials
    /// combined in thread order.
    pub fn dot(pool: &ThreadPool, x: &[f64], y: &[f64]) -> f64 {
        assert_eq!(x.len(), y.len());
        let nt = pool.size();
        let partials: Vec<AtomicU64> = (0..nt).map(|_| AtomicU64::new(0)).collect();
        pool.parallel_for(x.len(), |tid, r| {
            let mut acc = 0.0;
            for i in r {
                acc += x[i] * y[i];
            }
            partials[tid].store(acc.to_bits(), Ordering::Relaxed);
        });
        partials
            .iter()
            .map(|p| f64::from_bits(p.load(Ordering::Relaxed)))
            .sum()
    }

    /// Threaded 2-norm.
    pub fn norm2(pool: &ThreadPool, x: &[f64]) -> f64 {
        dot(pool, x, x).sqrt()
    }

    /// Threaded multi-dot: ONE region for all `ys.len()` products (not one
    /// region per vector). Each thread makes a single pass over its chunk
    /// of `x`, accumulating all K partials; partials are combined in
    /// thread order, so each component is bitwise identical to a
    /// per-vector [`dot`] call at the same thread count.
    pub fn mdot(pool: &ThreadPool, x: &[f64], ys: &[&[f64]], out: &mut [f64]) {
        assert_eq!(ys.len(), out.len());
        let k = ys.len();
        if k == 0 {
            return;
        }
        for y in ys {
            assert_eq!(y.len(), x.len());
        }
        let nt = pool.size();
        let partials: Vec<AtomicU64> = (0..nt * k).map(|_| AtomicU64::new(0)).collect();
        pool.parallel_for(x.len(), |tid, r| {
            let mut accs = vec![0.0f64; k];
            for i in r {
                let xi = x[i];
                for (acc, y) in accs.iter_mut().zip(ys) {
                    *acc += xi * y[i];
                }
            }
            for (kk, acc) in accs.iter().enumerate() {
                partials[tid * k + kk].store(acc.to_bits(), Ordering::Relaxed);
            }
        });
        for (kk, o) in out.iter_mut().enumerate() {
            *o = (0..nt)
                .map(|t| f64::from_bits(partials[t * k + kk].load(Ordering::Relaxed)))
                .sum();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vecs(n: usize) -> (Vec<f64>, Vec<f64>) {
        let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.1).sin()).collect();
        let y: Vec<f64> = (0..n).map(|i| (i as f64 * 0.2).cos()).collect();
        (x, y)
    }

    #[test]
    fn waxpy_formula() {
        let (x, y) = vecs(17);
        let mut w = vec![0.0; 17];
        waxpy(&mut w, 2.0, &x, &y);
        for i in 0..17 {
            assert!((w[i] - (2.0 * x[i] + y[i])).abs() < 1e-15);
        }
    }

    #[test]
    fn axpy_and_scale() {
        let (x, _) = vecs(9);
        let mut y = vec![1.0; 9];
        axpy(&mut y, 3.0, &x);
        for i in 0..9 {
            assert!((y[i] - (1.0 + 3.0 * x[i])).abs() < 1e-15);
        }
        scale(&mut y, 0.0);
        assert!(y.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn maxpy_matches_sequential_axpys() {
        let (x, y) = vecs(23);
        let z: Vec<f64> = (0..23).map(|i| i as f64).collect();
        let mut a = z.clone();
        maxpy(&mut a, &[0.5, -1.5], &[&x, &y]);
        let mut b = z;
        axpy(&mut b, 0.5, &x);
        axpy(&mut b, -1.5, &y);
        for i in 0..23 {
            assert!((a[i] - b[i]).abs() < 1e-14);
        }
    }

    #[test]
    fn mdot_and_norm() {
        let (x, y) = vecs(11);
        let mut out = [0.0; 2];
        mdot(&x, &[&x, &y], &mut out);
        assert!((out[0] - dot(&x, &x)).abs() < 1e-14);
        assert!((out[1] - dot(&x, &y)).abs() < 1e-14);
        assert!((norm2(&x) - out[0].sqrt()).abs() < 1e-14);
    }

    #[test]
    fn gather_scatter_roundtrip() {
        let src = vec![10.0, 20.0, 30.0, 40.0];
        let idx = vec![3u32, 0, 2];
        let mut buf = vec![0.0; 3];
        gather(&src, &idx, &mut buf);
        assert_eq!(buf, vec![40.0, 10.0, 30.0]);
        let mut dst = vec![0.0; 4];
        scatter_add(&mut dst, &idx, &buf);
        assert_eq!(dst, vec![10.0, 0.0, 30.0, 40.0]);
    }

    #[test]
    fn parallel_variants_match_serial() {
        let pool = ThreadPool::new(4);
        let (x, y) = vecs(1001);
        // waxpy
        let mut ws = vec![0.0; x.len()];
        waxpy(&mut ws, 1.7, &x, &y);
        let mut wp = vec![0.0; x.len()];
        par::waxpy(&pool, &mut wp, 1.7, &x, &y);
        assert_eq!(ws, wp);
        // axpy
        let mut ys = y.clone();
        axpy(&mut ys, -0.3, &x);
        let mut yp = y.clone();
        par::axpy(&pool, &mut yp, -0.3, &x);
        assert_eq!(ys, yp);
        // dot / norm: deterministic partials summed in fixed order;
        // may differ from serial by rounding only.
        let ds = dot(&x, &y);
        let dp = par::dot(&pool, &x, &y);
        assert!((ds - dp).abs() < 1e-12 * x.len() as f64);
        // maxpy
        let mut ms = y.clone();
        maxpy(&mut ms, &[0.2, 0.4], &[&x, &y.clone()]);
        let mut mp = y.clone();
        par::maxpy(&pool, &mut mp, &[0.2, 0.4], &[&x, &y.clone()]);
        for i in 0..x.len() {
            assert!((ms[i] - mp[i]).abs() < 1e-14);
        }
        // mdot
        let mut outs = [0.0; 2];
        mdot(&x, &[&x, &y], &mut outs);
        let mut outp = [0.0; 2];
        par::mdot(&pool, &x, &[&x, &y], &mut outp);
        for k in 0..2 {
            assert!((outs[k] - outp[k]).abs() < 1e-11);
        }
    }

    #[test]
    fn parallel_mdot_single_region_matches_per_vector_dot_bitwise() {
        // The fused mdot must produce, component by component, exactly
        // the bits of a per-vector par::dot at the same thread count …
        let pool = ThreadPool::new(4);
        let n = 1003;
        let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).sin()).collect();
        let ys: Vec<Vec<f64>> = (0..5)
            .map(|k| (0..n).map(|i| (i as f64 * 0.11 + k as f64).cos()).collect())
            .collect();
        let refs: Vec<&[f64]> = ys.iter().map(|v| v.as_slice()).collect();
        let mut fused = vec![0.0; refs.len()];
        let before = pool.regions_launched();
        par::mdot(&pool, &x, &refs, &mut fused);
        // … and do it in ONE region, not one per vector.
        assert_eq!(pool.regions_launched() - before, 1);
        for (k, y) in refs.iter().enumerate() {
            let d = par::dot(&pool, &x, y);
            assert_eq!(fused[k].to_bits(), d.to_bits(), "component {k}");
        }
    }

    #[test]
    fn parallel_mdot_exact_on_integer_data() {
        // Integer-valued doubles with small products: every partial sum is
        // exact, so the fused parallel mdot must equal the serial mdot
        // exactly regardless of association.
        let pool = ThreadPool::new(3);
        let n = 512;
        let x: Vec<f64> = (0..n).map(|i| ((i % 7) as f64) - 3.0).collect();
        let ys: Vec<Vec<f64>> = (0..4)
            .map(|k| (0..n).map(|i| ((i + k) % 5) as f64).collect())
            .collect();
        let refs: Vec<&[f64]> = ys.iter().map(|v| v.as_slice()).collect();
        let mut serial = vec![0.0; refs.len()];
        mdot(&x, &refs, &mut serial);
        let mut par_out = vec![0.0; refs.len()];
        par::mdot(&pool, &x, &refs, &mut par_out);
        assert_eq!(serial, par_out);
    }

    #[test]
    fn parallel_dot_deterministic_across_runs() {
        let pool = ThreadPool::new(3);
        let (x, y) = vecs(997);
        let a = par::dot(&pool, &x, &y);
        let b = par::dot(&pool, &x, &y);
        assert_eq!(a, b, "fixed-order reduction must be deterministic");
    }
}
