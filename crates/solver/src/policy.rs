//! Adaptive execution-policy chooser for the linear solver.
//!
//! The thread-scaling inversion this fixes: `optimized(nt)` used to
//! hard-code persistent-region (team) execution whenever `nt > 1`, so on
//! meshes too small to amortize region-launch and barrier cost the
//! "optimized" configuration ran *slower* than serial — the opposite of
//! the paper's thesis, certified by the perf gate. The chooser models a
//! GMRES iteration the same way FASTEST-3D picks its node-level execution
//! scheme: memory-bound work time from the `crates/machine` bandwidth
//! ramp, synchronization time from the *measured* region-launch and
//! barrier-phase costs (`fun3d_threads::SyncCosts`), and picks whichever
//! of Serial / PerOp / Team minimizes the modeled iteration time.
//!
//! `FUN3D_EXEC=serial|per-op|team|auto` overrides whatever the
//! application configured (read where the solve is launched, see
//! [`ExecMode::from_env`]).

use fun3d_machine::MachineSpec;
use fun3d_threads::{SyncCosts, ThreadPool};
use fun3d_util::telemetry::flight;
use std::sync::Mutex;

/// Solver execution scheme, as configured (Auto resolves to one of the
/// three concrete schemes per solve).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExecMode {
    /// Single-threaded vector ops.
    Serial,
    /// Region-per-op threading.
    PerOp,
    /// Persistent SPMD regions (one region per Arnoldi iteration).
    Team,
    /// Pick Serial / PerOp / Team per solve from the machine model plus
    /// measured sync costs.
    Auto,
}

impl ExecMode {
    /// Canonical name (the form [`ExecMode::parse`] accepts).
    pub fn name(self) -> &'static str {
        match self {
            ExecMode::Serial => "serial",
            ExecMode::PerOp => "per-op",
            ExecMode::Team => "team",
            ExecMode::Auto => "auto",
        }
    }

    /// Parses `serial|per-op|team|auto` (also accepts `perop`/`per_op`).
    pub fn parse(s: &str) -> Option<ExecMode> {
        match s.trim().to_ascii_lowercase().as_str() {
            "serial" => Some(ExecMode::Serial),
            "per-op" | "perop" | "per_op" => Some(ExecMode::PerOp),
            "team" => Some(ExecMode::Team),
            "auto" => Some(ExecMode::Auto),
            _ => None,
        }
    }

    /// The `FUN3D_EXEC` override, if set and valid.
    pub fn from_env() -> Option<ExecMode> {
        std::env::var("FUN3D_EXEC").ok().and_then(|v| ExecMode::parse(&v))
    }
}

/// Residual-path edge-kernel scheme: how the flux/gradient loops resolve
/// their write conflicts and schedule their memory traffic.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FluxScheme {
    /// The paper's streaming kernels: serial SIMD+prefetch at one
    /// thread, owner-writes replication on the pool.
    Stream,
    /// Cache-blocked tiles with scratch-pad staging and inter-tile
    /// coloring (`flux::tiled` / `tiled_pooled`).
    Tiled,
    /// Resolve Stream vs Tiled per mesh from the machine model (see
    /// [`FluxScheme::resolve`]).
    Auto,
}

/// Staged residual-path bytes per vertex (state 4 + gradient 12 +
/// residual 4 doubles) — the working set the tiling decision weighs
/// against the private L2. Mirrors `fun3d_partition::tiling`'s
/// `TILE_BYTES_PER_VERTEX`.
pub const RESIDUAL_BYTES_PER_VERTEX: usize = (4 + 12 + 4) * 8;

impl FluxScheme {
    /// Canonical name (the form [`FluxScheme::parse`] accepts).
    pub fn name(self) -> &'static str {
        match self {
            FluxScheme::Stream => "stream",
            FluxScheme::Tiled => "tiled",
            FluxScheme::Auto => "auto",
        }
    }

    /// Parses `stream|tiled|auto`.
    pub fn parse(s: &str) -> Option<FluxScheme> {
        match s.trim().to_ascii_lowercase().as_str() {
            "stream" => Some(FluxScheme::Stream),
            "tiled" => Some(FluxScheme::Tiled),
            "auto" => Some(FluxScheme::Auto),
            _ => None,
        }
    }

    /// The `FUN3D_FLUX` override, if set and valid.
    pub fn from_env() -> Option<FluxScheme> {
        std::env::var("FUN3D_FLUX").ok().and_then(|v| FluxScheme::parse(&v))
    }

    /// Resolves `Auto` for a mesh of `nvertices` vertices run on
    /// `nthreads` threads: tile when the residual-path node working set
    /// overflows the private L2 capacity of the cores in use — the
    /// regime where the streaming kernels' per-edge gathers miss cache
    /// and staging pays for itself. Below it the node arrays are already
    /// cache-resident and tiling only adds stage/scatter overhead.
    /// `Stream` and `Tiled` return themselves (explicit configuration
    /// wins). Never returns `Auto`.
    pub fn resolve(self, machine: &MachineSpec, nvertices: usize, nthreads: usize) -> FluxScheme {
        match self {
            FluxScheme::Auto => {
                let working_set = nvertices * RESIDUAL_BYTES_PER_VERTEX;
                let l2_total = machine.l2_bytes * nthreads.clamp(1, machine.cores);
                if working_set > l2_total {
                    FluxScheme::Tiled
                } else {
                    FluxScheme::Stream
                }
            }
            concrete => concrete,
        }
    }
}

/// Regions a region-per-op GMRES iteration launches (SpMV + bsub + mdot
/// + maxpy + norm + div, preconditioner sweeps riding along): measured
/// ~7.3–7.9 on the gated meshes; the model rounds up.
pub const PER_OP_REGIONS_PER_ITER: f64 = 8.0;
/// Regions a persistent-region iteration launches (one per Arnoldi step
/// plus the amortized cycle-start and solution-update regions).
pub const TEAM_REGIONS_PER_ITER: f64 = 1.25;
/// Barrier phases inside one persistent-region Arnoldi iteration
/// (operator, preconditioner, reduction, and basis-update phases).
pub const TEAM_BARRIERS_PER_ITER: f64 = 6.0;
/// Default memory traffic per unknown per GMRES iteration, bytes:
/// basis-vector reads in CGS plus SpMV/preconditioner sweeps. Calibrated
/// against the medium-mesh ablation (37 ms/iter at ~102k unknowns on a
/// ~3.5 GB/s single-core share); override the field for other kernels.
pub const WORK_BYTES_PER_UNKNOWN: f64 = 1200.0;
/// A parallel scheme must beat serial by this factor to be chosen
/// (hysteresis: near the crossover, prefer the simple scheme).
pub const PARALLEL_MARGIN: f64 = 1.1;

/// The decision function: machine model + measured sync costs.
#[derive(Clone, Copy, Debug)]
pub struct AutoPolicy {
    /// Bandwidth ramp / core counts.
    pub machine: MachineSpec,
    /// Measured wall cost of one empty pool region (launch + join).
    pub region_launch_s: f64,
    /// Measured wall cost of one barrier phase.
    pub barrier_phase_s: f64,
    /// Cores the process can actually use (affinity/cgroup aware);
    /// threads beyond this share cores and cannot add bandwidth.
    pub effective_cores: usize,
    /// Modeled memory traffic per unknown per iteration, bytes.
    pub work_bytes_per_unknown: f64,
}

impl AutoPolicy {
    /// A policy from explicit parts (tests drive this with synthetic
    /// machines and sync costs).
    pub fn from_parts(
        machine: MachineSpec,
        region_launch_s: f64,
        barrier_phase_s: f64,
    ) -> AutoPolicy {
        AutoPolicy {
            machine,
            region_launch_s,
            barrier_phase_s,
            effective_cores: machine.cores,
            work_bytes_per_unknown: WORK_BYTES_PER_UNKNOWN,
        }
    }

    /// A policy for the running machine and a live pool: host spec plus
    /// the calibration probe's measured sync costs. The probe result is
    /// cached per pool size, so repeated solves pay it once.
    pub fn for_pool(pool: &ThreadPool) -> AutoPolicy {
        let costs = cached_sync_costs(pool);
        AutoPolicy::from_parts(MachineSpec::host(), costs.region_launch_s, costs.barrier_phase_s)
    }

    /// Modeled seconds of memory-bound work per iteration at `threads`
    /// active cores.
    fn work_s(&self, unknowns: usize, threads: usize) -> f64 {
        self.work_bytes_per_unknown * unknowns as f64
            / (self.machine.bandwidth_at(threads) * 1e9)
    }

    /// Modeled per-iteration synchronization cost of each parallel
    /// scheme, seconds: (per-op, team).
    fn sync_s(&self) -> (f64, f64) {
        let per_op = PER_OP_REGIONS_PER_ITER * self.region_launch_s;
        let team = TEAM_REGIONS_PER_ITER * self.region_launch_s
            + TEAM_BARRIERS_PER_ITER * self.barrier_phase_s;
        (per_op, team)
    }

    /// Picks the execution scheme for a solve of `unknowns` unknowns on
    /// an `nt`-worker pool. Never returns [`ExecMode::Auto`].
    pub fn choose(&self, unknowns: usize, nt: usize) -> ExecMode {
        self.decision(unknowns, nt).mode
    }

    /// [`AutoPolicy::choose`] with the modeled inputs attached — what the
    /// flight recorder logs so a dump explains *why* a scheme ran.
    pub fn decision(&self, unknowns: usize, nt: usize) -> Decision {
        let serial_s = self.work_s(unknowns, 1);
        let nt_eff = nt.min(self.effective_cores);
        if nt <= 1 || nt_eff <= 1 {
            // Threads beyond the usable cores only add sync cost: with
            // one effective core there is no bandwidth to win, so the
            // inversion case (threads slower than serial) is excluded by
            // construction.
            return Decision {
                mode: ExecMode::Serial,
                serial_s,
                parallel_s: f64::INFINITY,
                crossover: None,
            };
        }
        let par_work = self.work_s(unknowns, nt_eff);
        let (sync_per_op, sync_team) = self.sync_s();
        let per_op = par_work + sync_per_op;
        let team = par_work + sync_team;
        let (best, best_t) = if team <= per_op {
            (ExecMode::Team, team)
        } else {
            (ExecMode::PerOp, per_op)
        };
        let mode = if best_t * PARALLEL_MARGIN < serial_s {
            best
        } else {
            ExecMode::Serial
        };
        Decision {
            mode,
            serial_s,
            parallel_s: best_t,
            crossover: self.crossover_unknowns(nt),
        }
    }

    /// The problem size (unknowns) above which the best parallel scheme
    /// beats serial at `nt` threads, or `None` when it never does (e.g.
    /// one effective core: the bandwidth ramp is flat, so the sync cost
    /// is never amortized). Solves `m·(work(n)/ramp + sync) =
    /// work(n)` for `n` — both sides are linear in `n`.
    pub fn crossover_unknowns(&self, nt: usize) -> Option<usize> {
        let nt_eff = nt.min(self.effective_cores);
        if nt <= 1 || nt_eff <= 1 {
            return None;
        }
        let c = self.work_bytes_per_unknown;
        let bw1 = self.machine.bandwidth_at(1) * 1e9;
        let bwt = self.machine.bandwidth_at(nt_eff) * 1e9;
        let (sync_per_op, sync_team) = self.sync_s();
        let sync = sync_per_op.min(sync_team);
        let denom = c * (1.0 / bw1 - PARALLEL_MARGIN / bwt);
        if denom <= 0.0 {
            return None;
        }
        Some((PARALLEL_MARGIN * sync / denom).ceil() as usize)
    }
}

/// A resolved policy choice with the modeled costs that produced it.
#[derive(Clone, Copy, Debug)]
pub struct Decision {
    /// The concrete scheme (never [`ExecMode::Auto`]).
    pub mode: ExecMode,
    /// Modeled serial iteration seconds.
    pub serial_s: f64,
    /// Modeled best-parallel iteration seconds (work + sync; infinite
    /// when parallelism is excluded by construction).
    pub parallel_s: f64,
    /// Modeled crossover size, when one exists.
    pub crossover: Option<usize>,
}

impl Decision {
    /// Records this decision on the flight log (the dump's
    /// `policy_decision` row).
    pub fn record(&self, unknowns: usize, nt: usize) {
        let chosen = match self.mode {
            ExecMode::Serial => flight::ExecTag::Serial,
            ExecMode::PerOp => flight::ExecTag::PerOp,
            ExecMode::Team | ExecMode::Auto => flight::ExecTag::Team,
        };
        flight::emit(flight::EventKind::PolicyDecision {
            chosen,
            unknowns: unknowns as u64,
            nt: nt as u64,
            serial_s: self.serial_s,
            parallel_s: self.parallel_s,
            crossover: self
                .crossover
                .map(|c| c as u64)
                .unwrap_or(flight::NO_CROSSOVER),
        });
    }
}

/// Calibration-probe results, cached per pool size: sync costs depend on
/// the worker count (and the machine), not on the specific pool.
fn cached_sync_costs(pool: &ThreadPool) -> SyncCosts {
    static CACHE: Mutex<Vec<(usize, SyncCosts)>> = Mutex::new(Vec::new());
    let mut cache = CACHE.lock().unwrap();
    if let Some((_, c)) = cache.iter().find(|(sz, _)| *sz == pool.size()) {
        return *c;
    }
    // Observed-first: the live `threads.p{N}.*` histograms (fed by every
    // probe run in this process) answer without a fresh one-shot probe;
    // only a size nobody has measured yet pays for a calibration.
    let c = SyncCosts::observed(pool.size()).unwrap_or_else(|| SyncCosts::measure(pool));
    // Calibrations are rare (once per pool size per process) and exactly
    // what a post-hoc dump reader needs to audit policy decisions.
    flight::emit(flight::EventKind::SyncProbe {
        pool_size: pool.size() as u64,
        region_launch_s: c.region_launch_s,
        barrier_phase_s: c.barrier_phase_s,
    });
    cache.push((pool.size(), c));
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A synthetic 10-core machine with sync costs big enough that the
    /// tiny fixture sits below the crossover: the regime the chooser has
    /// to get right.
    fn policy(region_launch_s: f64, barrier_phase_s: f64) -> AutoPolicy {
        AutoPolicy::from_parts(MachineSpec::xeon_e5_2690v2(), region_launch_s, barrier_phase_s)
    }

    #[test]
    fn tiny_problems_run_serial() {
        let p = policy(100e-6, 20e-6);
        assert_eq!(p.choose(700, 4), ExecMode::Serial);
        assert_eq!(p.choose(700, 2), ExecMode::Serial);
        // and trivially at one thread
        assert_eq!(p.choose(700, 1), ExecMode::Serial);
    }

    #[test]
    fn large_problems_run_team() {
        let p = policy(100e-6, 20e-6);
        // barrier phases are cheap relative to 8 launches per iteration,
        // so the persistent-region scheme wins once parallelism pays.
        assert_eq!(p.choose(361_608, 4), ExecMode::Team);
        assert_eq!(p.choose(1_000_000, 8), ExecMode::Team);
    }

    #[test]
    fn per_op_team_crossover_at_modeled_ratio() {
        // Team sync = 1.25·L + 6·B, per-op sync = 8·L: team wins iff
        // B < (8 − 1.25)/6 · L = 1.125·L. Probe both sides of the ratio
        // at a size where parallelism clearly pays.
        let n = 500_000;
        let l = 50e-6;
        let cheap_barrier = policy(l, 0.5 * l);
        assert_eq!(cheap_barrier.choose(n, 4), ExecMode::Team);
        let dear_barrier = policy(l, 2.0 * l);
        assert_eq!(dear_barrier.choose(n, 4), ExecMode::PerOp);
    }

    #[test]
    fn one_effective_core_is_always_serial() {
        let mut p = policy(20e-6, 2e-6);
        p.effective_cores = 1;
        for n in [700usize, 26_000, 361_608, 10_000_000] {
            for nt in [2usize, 4, 8] {
                assert_eq!(p.choose(n, nt), ExecMode::Serial, "n={n} nt={nt}");
            }
            assert_eq!(p.crossover_unknowns(4), None);
        }
    }

    #[test]
    fn crossover_matches_choose_flip() {
        let p = policy(100e-6, 20e-6);
        for nt in [2usize, 4] {
            let n = p.crossover_unknowns(nt).expect("multi-core: crossover exists");
            assert!(n > 0);
            // Just below: serial. At/above: parallel.
            assert_eq!(p.choose(n.saturating_sub(2).max(1), nt), ExecMode::Serial, "nt={nt}");
            assert_ne!(p.choose(n + 1, nt), ExecMode::Serial, "nt={nt}");
        }
    }

    #[test]
    fn tiny_below_crossover_large_above() {
        let p = policy(100e-6, 20e-6);
        let n = p.crossover_unknowns(4).unwrap();
        assert!(n > 700, "tiny (700 unknowns) must sit below the crossover ({n})");
        assert!(n < 361_608, "large (361k unknowns) must sit above the crossover ({n})");
    }

    #[test]
    fn mode_names_round_trip() {
        for m in [ExecMode::Serial, ExecMode::PerOp, ExecMode::Team, ExecMode::Auto] {
            assert_eq!(ExecMode::parse(m.name()), Some(m));
        }
        assert_eq!(ExecMode::parse("PER_OP"), Some(ExecMode::PerOp));
        assert_eq!(ExecMode::parse("nope"), None);
    }

    #[test]
    fn flux_scheme_resolves_by_working_set() {
        let m = MachineSpec::xeon_e5_2690v2(); // 256 KiB L2/core
        // Tiny fixture (~175 vertices, 28 KB): cache-resident, stream.
        assert_eq!(FluxScheme::Auto.resolve(&m, 175, 1), FluxScheme::Stream);
        // Medium mesh (~26k vertices, 4.1 MB): overflows even 10 cores'
        // combined private L2 — tiled.
        assert_eq!(FluxScheme::Auto.resolve(&m, 25_625, 1), FluxScheme::Tiled);
        assert_eq!(FluxScheme::Auto.resolve(&m, 25_625, 10), FluxScheme::Tiled);
        // More threads = more combined L2: the boundary moves up.
        let boundary = m.l2_bytes / RESIDUAL_BYTES_PER_VERTEX;
        assert_eq!(FluxScheme::Auto.resolve(&m, boundary, 1), FluxScheme::Stream);
        assert_eq!(FluxScheme::Auto.resolve(&m, boundary + 1, 1), FluxScheme::Tiled);
        assert_eq!(FluxScheme::Auto.resolve(&m, boundary + 1, 2), FluxScheme::Stream);
        // Explicit schemes win regardless of size.
        assert_eq!(FluxScheme::Stream.resolve(&m, usize::MAX / 1024, 1), FluxScheme::Stream);
        assert_eq!(FluxScheme::Tiled.resolve(&m, 1, 1), FluxScheme::Tiled);
    }

    #[test]
    fn flux_scheme_names_round_trip() {
        for s in [FluxScheme::Stream, FluxScheme::Tiled, FluxScheme::Auto] {
            assert_eq!(FluxScheme::parse(s.name()), Some(s));
        }
        assert_eq!(FluxScheme::parse(" TILED "), Some(FluxScheme::Tiled));
        assert_eq!(FluxScheme::parse("nope"), None);
    }

    #[test]
    fn for_pool_measures_and_caches() {
        let pool = ThreadPool::new(2);
        let p1 = AutoPolicy::for_pool(&pool);
        assert!(p1.region_launch_s > 0.0 && p1.barrier_phase_s > 0.0);
        // Second call must hit the cache (identical numbers).
        let p2 = AutoPolicy::for_pool(&pool);
        assert_eq!(p1.region_launch_s.to_bits(), p2.region_launch_s.to_bits());
        assert_eq!(p1.barrier_phase_s.to_bits(), p2.barrier_phase_s.to_bits());
    }
}
