//! Hash-keyed cross-solve cache for expensive solver artifacts.
//!
//! `OptConfig::ilu_lag` already amortizes ILU factorization *within* one
//! solve by freezing the preconditioner for several pseudo-time steps.
//! This module generalizes the idea *across* solves: the first ILU
//! factors of a ΨTC run are fully determined by the problem key (mesh +
//! discretization + solver knobs — the first build always happens at
//! `dt = dt0` on the free-stream state), so a repeated request can seed
//! its preconditioner from a previous run's factors bitwise-identically
//! instead of re-assembling and re-factoring.
//!
//! [`KeyedCache`] itself is artifact-agnostic (the serve tier also keys
//! whole prepared-app bundles with it); values travel as `Arc<V>` so a
//! hit is a pointer clone, and hit/miss/insert/evict counters are
//! atomics readable while other threads keep using the cache.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Monotonic counters describing cache behaviour over its lifetime.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// `get` calls that found the key.
    pub hits: u64,
    /// `get` calls that missed.
    pub misses: u64,
    /// Values stored (including overwrites of an existing key).
    pub insertions: u64,
    /// Values displaced by the capacity bound.
    pub evictions: u64,
}

impl CacheStats {
    /// Hits over lookups, 0 when nothing was looked up.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A bounded LRU map from `u64` keys (callers hash their request
/// signature) to shared artifacts.
pub struct KeyedCache<V> {
    inner: Mutex<Inner<V>>,
    capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    insertions: AtomicU64,
    evictions: AtomicU64,
}

struct Inner<V> {
    map: HashMap<u64, Entry<V>>,
    /// Logical clock for LRU ordering; bumped on every touch.
    clock: u64,
}

struct Entry<V> {
    value: Arc<V>,
    last_used: u64,
}

impl<V> KeyedCache<V> {
    /// A cache holding at most `capacity` values (`capacity == 0` is a
    /// valid always-miss cache — how `FUN3D_SERVE_CACHE=off` is wired).
    pub fn new(capacity: usize) -> KeyedCache<V> {
        KeyedCache {
            inner: Mutex::new(Inner {
                map: HashMap::new(),
                clock: 0,
            }),
            capacity,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            insertions: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// Looks the key up, refreshing its LRU position on a hit.
    pub fn get(&self, key: u64) -> Option<Arc<V>> {
        let mut inner = self.inner.lock().unwrap();
        inner.clock += 1;
        let clock = inner.clock;
        match inner.map.get_mut(&key) {
            Some(entry) => {
                entry.last_used = clock;
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(Arc::clone(&entry.value))
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Stores a value, evicting the least-recently-used entry when the
    /// capacity bound is hit. A zero-capacity cache drops the value.
    pub fn insert(&self, key: u64, value: Arc<V>) {
        if self.capacity == 0 {
            return;
        }
        let mut inner = self.inner.lock().unwrap();
        inner.clock += 1;
        let clock = inner.clock;
        if !inner.map.contains_key(&key) && inner.map.len() >= self.capacity {
            if let Some((&victim, _)) = inner.map.iter().min_by_key(|(_, e)| e.last_used) {
                inner.map.remove(&victim);
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
        inner.map.insert(
            key,
            Entry {
                value,
                last_used: clock,
            },
        );
        self.insertions.fetch_add(1, Ordering::Relaxed);
    }

    /// Entries currently resident.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().map.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot of the lifetime counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            insertions: self.insertions.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }
}

/// FNV-1a, the repo's standing checksum/key hash (matches the flight
/// recorder's tenant tags so cache keys and flight events correlate).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Extends an FNV-1a hash with one little-endian `u64` word — for
/// building request keys out of mixed string/scalar fields without
/// allocating an intermediate buffer.
pub fn fnv1a_word(mut h: u64, word: u64) -> u64 {
    for &b in &word.to_le_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_miss_and_counters() {
        let cache: KeyedCache<u32> = KeyedCache::new(4);
        assert!(cache.get(1).is_none());
        cache.insert(1, Arc::new(10));
        assert_eq!(*cache.get(1).unwrap(), 10);
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.insertions, s.evictions), (1, 1, 1, 0));
        assert!((s.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn lru_evicts_the_coldest_entry() {
        let cache: KeyedCache<u32> = KeyedCache::new(2);
        cache.insert(1, Arc::new(1));
        cache.insert(2, Arc::new(2));
        cache.get(1); // touch 1 so 2 is now coldest
        cache.insert(3, Arc::new(3));
        assert!(cache.get(2).is_none(), "coldest entry must be evicted");
        assert!(cache.get(1).is_some());
        assert!(cache.get(3).is_some());
        assert_eq!(cache.stats().evictions, 1);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn zero_capacity_never_stores() {
        let cache: KeyedCache<u32> = KeyedCache::new(0);
        cache.insert(1, Arc::new(1));
        assert!(cache.get(1).is_none());
        assert!(cache.is_empty());
        assert_eq!(cache.stats().insertions, 0);
    }

    #[test]
    fn overwrite_keeps_len_and_counts_insertion() {
        let cache: KeyedCache<u32> = KeyedCache::new(2);
        cache.insert(1, Arc::new(1));
        cache.insert(1, Arc::new(2));
        assert_eq!(cache.len(), 1);
        assert_eq!(*cache.get(1).unwrap(), 2);
        assert_eq!(cache.stats().insertions, 2);
        assert_eq!(cache.stats().evictions, 0);
    }

    #[test]
    fn fnv_keys_are_stable_and_order_sensitive() {
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_ne!(fnv1a(b"tiny"), fnv1a(b"small"));
        let a = fnv1a_word(fnv1a(b"k"), 1);
        let b = fnv1a_word(fnv1a(b"k"), 2);
        assert_ne!(a, b);
        assert_ne!(fnv1a_word(fnv1a_word(0, 1), 2), fnv1a_word(fnv1a_word(0, 2), 1));
    }
}
