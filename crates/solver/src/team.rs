//! Team (persistent-region) vector primitives.
//!
//! Per-op threading launches one pool region per vector operation; at
//! solver scale the region launches and their implicit full-pool
//! rendezvous dominate (the paper's fork-join overhead). These variants
//! instead run **inside** an already-open SPMD region: every thread
//! executes its static chunk, and only the reductions synchronize (two
//! barrier phases through the team's [`TreeReduce`]).
//!
//! Bitwise contract: each op partitions `0..n` with the same
//! [`chunk_range`](fun3d_threads::chunk_range) as `vecops::par`, runs the
//! identical per-element accumulation loop, and combines per-thread
//! partials in thread order — so at a fixed thread count every result is
//! bit-for-bit equal to the corresponding `vecops::par` call. That is
//! what lets the persistent-region GMRES reproduce the per-op GMRES
//! history exactly.
//!
//! Synchronization contract (callers): elementwise ops (`axpy`, `waxpy`,
//! `maxpy`, `scale_into`, `copy`) do **not** barrier — each thread only
//! touches its own chunk, and a barrier is required before any op that
//! reads another thread's chunk (SpMV, dot). Reductions (`dot`, `norm2`,
//! `mdot`) barrier internally and return the same value on every thread.

use fun3d_threads::{TeamMember, TeamSlice};

/// Team `<x, y>`: chunk-local partial + deterministic thread-order
/// combine. Returns the same bits on every thread; synchronizes (2
/// barrier phases).
pub fn dot(tm: &TeamMember, x: TeamSlice, y: TeamSlice) -> f64 {
    assert_eq!(x.len(), y.len());
    let r = tm.chunk(x.len());
    let mut acc = 0.0;
    // SAFETY: reads of both vectors; caller ordered all writes before
    // this call (barrier), and no thread writes during it.
    unsafe {
        for i in r {
            acc += x.get(i) * y.get(i);
        }
    }
    tm.sum(acc)
}

/// Team 2-norm (synchronizes; identical on every thread).
pub fn norm2(tm: &TeamMember, x: TeamSlice) -> f64 {
    dot(tm, x, x).sqrt()
}

/// Team multi-dot: `out[k] = <x, ys[k]>` in a single pass over this
/// thread's chunk of `x`, then ONE tree combine for all `k` components
/// (2 barrier phases total). `out` is thread-local storage; after the
/// call every thread holds identical values. Requires `ys.len() <=` the
/// team's reduction width.
pub fn mdot(tm: &TeamMember, x: TeamSlice, ys: &[TeamSlice], out: &mut [f64]) {
    assert_eq!(ys.len(), out.len());
    let k = ys.len();
    if k == 0 {
        return;
    }
    for y in ys {
        assert_eq!(y.len(), x.len());
    }
    let r = tm.chunk(x.len());
    let mut accs = vec![0.0f64; k];
    // SAFETY: reads only; caller ordered writes before the call.
    unsafe {
        for i in r {
            let xi = x.get(i);
            for (acc, y) in accs.iter_mut().zip(ys) {
                *acc += xi * y.get(i);
            }
        }
    }
    tm.sums(&accs, out);
}

/// Team `y += a*x` on this thread's chunk. No barrier.
pub fn axpy(tm: &TeamMember, y: TeamSlice, a: f64, x: TeamSlice) {
    assert_eq!(y.len(), x.len());
    let r = tm.chunk(y.len());
    // SAFETY: chunk-disjoint writes; x reads ordered by caller.
    unsafe {
        for i in r {
            y.set(i, y.get(i) + a * x.get(i));
        }
    }
}

/// Team `w = a*x + y` on this thread's chunk. No barrier.
pub fn waxpy(tm: &TeamMember, w: TeamSlice, a: f64, x: TeamSlice, y: TeamSlice) {
    assert!(w.len() == x.len() && x.len() == y.len());
    let r = tm.chunk(w.len());
    // SAFETY: chunk-disjoint writes; reads ordered by caller.
    unsafe {
        for i in r {
            w.set(i, a * x.get(i) + y.get(i));
        }
    }
}

/// Team `y += Σ_k alpha[k]·xs[k]` on this thread's chunk, `y` traversed
/// once. No barrier.
pub fn maxpy(tm: &TeamMember, y: TeamSlice, alpha: &[f64], xs: &[TeamSlice]) {
    assert_eq!(alpha.len(), xs.len());
    for x in xs {
        assert_eq!(x.len(), y.len());
    }
    let r = tm.chunk(y.len());
    // SAFETY: chunk-disjoint writes; reads ordered by caller.
    unsafe {
        for i in r {
            let mut acc = y.get(i);
            for (a, x) in alpha.iter().zip(xs) {
                acc += a * x.get(i);
            }
            y.set(i, acc);
        }
    }
}

/// Team `w = b - w` in place on this thread's chunk. No barrier.
pub fn bsub(tm: &TeamMember, w: TeamSlice, b: TeamSlice) {
    assert_eq!(w.len(), b.len());
    let r = tm.chunk(w.len());
    // SAFETY: chunk-disjoint read-modify-write.
    unsafe {
        for i in r {
            w.set(i, b.get(i) - w.get(i));
        }
    }
}

/// Team `dst = src / s` elementwise on this thread's chunk (division,
/// not reciprocal-multiply, to round identically to the serial and
/// per-op paths). No barrier.
pub fn div_into(tm: &TeamMember, dst: TeamSlice, src: TeamSlice, s: f64) {
    assert_eq!(dst.len(), src.len());
    let r = tm.chunk(dst.len());
    // SAFETY: chunk-disjoint writes.
    unsafe {
        for i in r {
            dst.set(i, src.get(i) / s);
        }
    }
}

/// Team `dst = a * src` on this thread's chunk. No barrier.
pub fn scale_into(tm: &TeamMember, dst: TeamSlice, a: f64, src: TeamSlice) {
    assert_eq!(dst.len(), src.len());
    let r = tm.chunk(dst.len());
    // SAFETY: chunk-disjoint writes; reads ordered by caller.
    unsafe {
        for i in r {
            dst.set(i, a * src.get(i));
        }
    }
}

/// Team copy `dst = src` on this thread's chunk. No barrier.
pub fn copy(tm: &TeamMember, dst: TeamSlice, src: TeamSlice) {
    assert_eq!(dst.len(), src.len());
    let r = tm.chunk(dst.len());
    // SAFETY: chunk-disjoint writes; reads ordered by caller.
    unsafe {
        for i in r {
            dst.set(i, src.get(i));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vecops;
    use fun3d_threads::{Team, ThreadPool};
    use std::sync::Mutex;

    fn vecs(n: usize) -> (Vec<f64>, Vec<f64>) {
        let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.13).sin()).collect();
        let y: Vec<f64> = (0..n).map(|i| (i as f64 * 0.29).cos()).collect();
        (x, y)
    }

    #[test]
    fn team_dot_matches_par_dot_bitwise() {
        for nt in [1usize, 2, 4] {
            let pool = ThreadPool::new(nt);
            let team = Team::new(nt, 4);
            let (mut x, mut y) = vecs(997);
            let want = vecops::par::dot(&pool, &x, &y);
            let xs = TeamSlice::new(&mut x);
            let ys = TeamSlice::new(&mut y);
            let got = Mutex::new(vec![0.0; nt]);
            pool.run(|tid| {
                let tm = unsafe { team.member(tid) };
                let d = dot(&tm, xs, ys);
                got.lock().unwrap()[tid] = d;
            });
            for &g in got.lock().unwrap().iter() {
                assert_eq!(g.to_bits(), want.to_bits(), "nt={nt}");
            }
        }
    }

    #[test]
    fn team_mdot_matches_par_mdot_bitwise() {
        let nt = 3;
        let pool = ThreadPool::new(nt);
        let team = Team::new(nt, 8);
        let n = 1001;
        let (mut x, _) = vecs(n);
        let mut ys: Vec<Vec<f64>> = (0..5)
            .map(|k| (0..n).map(|i| ((i + 3 * k) as f64 * 0.07).sin()).collect())
            .collect();
        let refs: Vec<&[f64]> = ys.iter().map(|v| v.as_slice()).collect();
        let mut want = vec![0.0; refs.len()];
        vecops::par::mdot(&pool, &x, &refs, &mut want);

        let xs = TeamSlice::new(&mut x);
        let yslices: Vec<TeamSlice> = ys.iter_mut().map(|v| TeamSlice::new(v)).collect();
        let got = Mutex::new(vec![0.0; want.len()]);
        pool.run(|tid| {
            let tm = unsafe { team.member(tid) };
            let mut out = vec![0.0; yslices.len()];
            mdot(&tm, xs, &yslices, &mut out);
            if tid == 0 {
                got.lock().unwrap().copy_from_slice(&out);
            }
        });
        for (k, (&g, &w)) in got.lock().unwrap().iter().zip(&want).enumerate() {
            assert_eq!(g.to_bits(), w.to_bits(), "component {k}");
        }
    }

    #[test]
    fn team_elementwise_match_serial_bitwise() {
        let nt = 4;
        let pool = ThreadPool::new(nt);
        let team = Team::new(nt, 4);
        let n = 513;
        let (x, y) = vecs(n);

        // serial references
        let mut w_ref = vec![0.0; n];
        vecops::waxpy(&mut w_ref, 1.3, &x, &y);
        let mut y_axpy = y.clone();
        vecops::axpy(&mut y_axpy, -0.7, &x);
        let mut y_maxpy = y.clone();
        vecops::maxpy(&mut y_maxpy, &[0.2, -0.4], &[&x, &w_ref.clone()]);
        let scale_ref: Vec<f64> = x.iter().map(|&v| 2.5 * v).collect();

        let mut xb = x.clone();
        let mut yb = y.clone();
        let mut wb = vec![0.0; n];
        let mut ab = y.clone();
        let mut mb = y.clone();
        let mut sb = vec![0.0; n];
        let xs = TeamSlice::new(&mut xb);
        let ys = TeamSlice::new(&mut yb);
        let ws = TeamSlice::new(&mut wb);
        let as_ = TeamSlice::new(&mut ab);
        let ms = TeamSlice::new(&mut mb);
        let ss = TeamSlice::new(&mut sb);
        pool.run(|tid| {
            let tm = unsafe { team.member(tid) };
            waxpy(&tm, ws, 1.3, xs, ys);
            axpy(&tm, as_, -0.7, xs);
            tm.barrier(); // ws fully written before maxpy reads it
            maxpy(&tm, ms, &[0.2, -0.4], &[xs, ws]);
            scale_into(&tm, ss, 2.5, xs);
        });
        assert_eq!(wb, w_ref);
        assert_eq!(ab, y_axpy);
        assert_eq!(mb, y_maxpy);
        assert_eq!(sb, scale_ref);
    }
}
