//! Left-preconditioned restarted GMRES with classical Gram-Schmidt.
//!
//! This mirrors PETSc's default KSP configuration for PETSc-FUN3D:
//! GMRES(30), left preconditioning, classical Gram-Schmidt
//! orthogonalization (the `VecMDot`/`VecMAXPY`-heavy variant whose vector
//! primitives show up in the paper's profile), and a Givens-rotation
//! least-squares update so the residual norm is available every iteration
//! without forming the solution.

use crate::op::LinearOperator;
use crate::precond::Preconditioner;
use crate::vecops;

/// GMRES parameters.
#[derive(Clone, Copy, Debug)]
pub struct GmresConfig {
    /// Restart length (PETSc default 30).
    pub restart: usize,
    /// Relative tolerance on the preconditioned residual.
    pub rtol: f64,
    /// Absolute tolerance on the preconditioned residual.
    pub atol: f64,
    /// Iteration cap across restarts.
    pub max_iters: usize,
    /// Fuse the Gram-Schmidt coefficients and the new basis vector's norm
    /// into a single reduction per iteration ("l1-GMRES", the direction of
    /// Ghysels et al. [28] the paper lists as future work): `‖w⊥‖² =
    /// ‖w‖² − Σᵢ hᵢ²` by Pythagoras, so the separate norm reduction
    /// disappears. Halves the allreduce count at a small numerical-
    /// robustness cost (guarded by a re-normalization fallback).
    pub single_reduction: bool,
}

impl Default for GmresConfig {
    fn default() -> Self {
        GmresConfig {
            restart: 30,
            rtol: 1e-6,
            atol: 1e-50,
            max_iters: 1000,
            single_reduction: false,
        }
    }
}

/// Why GMRES stopped.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GmresOutcome {
    /// Hit the relative tolerance.
    ConvergedRtol,
    /// Hit the absolute tolerance.
    ConvergedAtol,
    /// Ran out of iterations.
    MaxIterations,
    /// Arnoldi produced a zero vector: solution is exact in the subspace.
    Breakdown,
}

/// Result of a solve.
#[derive(Clone, Debug)]
pub struct GmresResult {
    /// Why iteration stopped.
    pub outcome: GmresOutcome,
    /// Iterations performed (matrix applications).
    pub iterations: usize,
    /// Final preconditioned residual norm.
    pub residual: f64,
    /// Initial preconditioned residual norm.
    pub residual0: f64,
    /// Global reductions performed (dot-product/norm rounds — what an
    /// `MPI_Allreduce` would be in the distributed setting). Standard
    /// CGS-GMRES performs 2 per iteration; single-reduction mode 1.
    pub reductions: usize,
}

/// Workspace-owning GMRES solver (buffers reused across calls).
pub struct Gmres {
    /// Configuration.
    pub config: GmresConfig,
    basis: Vec<Vec<f64>>,
    h: Vec<f64>, // Hessenberg, column-major (restart+1) x restart
    work: Vec<f64>,
    work2: Vec<f64>,
}

impl Gmres {
    /// Creates a solver for vectors of length `n`.
    pub fn new(n: usize, config: GmresConfig) -> Self {
        Gmres {
            config,
            basis: (0..config.restart + 1).map(|_| vec![0.0; n]).collect(),
            h: vec![0.0; (config.restart + 1) * config.restart],
            work: vec![0.0; n],
            work2: vec![0.0; n],
        }
    }

    /// Solves `A x = b` with left preconditioning, starting from the
    /// current contents of `x` (use zeros for a fresh solve).
    pub fn solve(
        &mut self,
        a: &dyn LinearOperator,
        m: &dyn Preconditioner,
        b: &[f64],
        x: &mut [f64],
    ) -> GmresResult {
        let n = b.len();
        assert_eq!(a.dim(), n);
        assert_eq!(x.len(), n);
        let restart = self.config.restart;

        let mut total_iters = 0usize;
        let mut reductions = 0usize;
        let mut residual0 = f64::NAN;

        loop {
            // r = M^{-1} (b - A x)
            a.apply(x, &mut self.work);
            for i in 0..n {
                self.work[i] = b[i] - self.work[i];
            }
            m.apply(&self.work, &mut self.work2);
            let beta = vecops::norm2(&self.work2);
            reductions += 1;
            if residual0.is_nan() {
                residual0 = beta;
            }
            if beta <= self.config.atol {
                return GmresResult {
                    outcome: GmresOutcome::ConvergedAtol,
                    iterations: total_iters,
                    residual: beta,
                    residual0,
                    reductions,
                };
            }
            if beta <= self.config.rtol * residual0 {
                return GmresResult {
                    outcome: GmresOutcome::ConvergedRtol,
                    iterations: total_iters,
                    residual: beta,
                    residual0,
                    reductions,
                };
            }
            // v1 = r/beta
            for i in 0..n {
                self.basis[0][i] = self.work2[i] / beta;
            }
            let mut g = vec![0.0; restart + 1];
            g[0] = beta;
            let mut cs = vec![0.0; restart];
            let mut sn = vec![0.0; restart];
            let mut k_done = 0usize;
            let mut finished: Option<GmresOutcome> = None;
            let mut res = beta;

            for k in 0..restart {
                if total_iters >= self.config.max_iters {
                    finished = Some(GmresOutcome::MaxIterations);
                    break;
                }
                total_iters += 1;
                // w = M^{-1} A v_k
                a.apply(&self.basis[k], &mut self.work);
                m.apply(&self.work, &mut self.work2);
                // classical Gram-Schmidt: h[0..=k] = V^T w, w -= V h.
                // In single-reduction mode, <w,w> joins the same fused
                // mdot and the new norm comes from Pythagoras.
                let hkk = {
                    let refs: Vec<&[f64]> =
                        self.basis[..=k].iter().map(|v| v.as_slice()).collect();
                    if self.config.single_reduction {
                        let mut fused: Vec<&[f64]> = refs.clone();
                        fused.push(&self.work2);
                        let mut out = vec![0.0; k + 2];
                        vecops::mdot(&self.work2, &fused, &mut out);
                        reductions += 1;
                        let ww = out.pop().unwrap();
                        let coeffs = out;
                        let neg: Vec<f64> = coeffs.iter().map(|c| -c).collect();
                        vecops::maxpy(&mut self.work2, &neg, &refs);
                        for (i, c) in coeffs.iter().enumerate() {
                            self.h[k * (restart + 1) + i] = *c;
                        }
                        let h2: f64 = coeffs.iter().map(|c| c * c).sum();
                        let mut hkk2 = ww - h2;
                        // Pythagoras holds only as far as the basis is
                        // orthonormal; one-pass CGS loses orthogonality
                        // exactly when the update cancels strongly, so
                        // fall back to a direct norm whenever less than
                        // 1% of ‖w‖² survives (one extra reduction on
                        // those iterations — still fewer on net).
                        if hkk2 < 1e-2 * ww {
                            hkk2 = vecops::dot(&self.work2, &self.work2);
                            reductions += 1;
                        }
                        hkk2.max(0.0).sqrt()
                    } else {
                        let mut coeffs = vec![0.0; k + 1];
                        vecops::mdot(&self.work2, &refs, &mut coeffs);
                        reductions += 1;
                        let neg: Vec<f64> = coeffs.iter().map(|c| -c).collect();
                        vecops::maxpy(&mut self.work2, &neg, &refs);
                        for (i, c) in coeffs.iter().enumerate() {
                            self.h[k * (restart + 1) + i] = *c;
                        }
                        reductions += 1;
                        vecops::norm2(&self.work2)
                    }
                };
                self.h[k * (restart + 1) + k + 1] = hkk;
                k_done = k + 1;
                if hkk <= 1e-14 * res.max(1.0) {
                    finished = Some(GmresOutcome::Breakdown);
                } else {
                    for i in 0..n {
                        self.basis[k + 1][i] = self.work2[i] / hkk;
                    }
                }
                // apply existing Givens rotations to column k
                let col = &mut self.h[k * (restart + 1)..(k + 1) * (restart + 1)];
                for i in 0..k {
                    let t = cs[i] * col[i] + sn[i] * col[i + 1];
                    col[i + 1] = -sn[i] * col[i] + cs[i] * col[i + 1];
                    col[i] = t;
                }
                // new rotation to kill col[k+1]
                let (c, s) = givens(col[k], col[k + 1]);
                cs[k] = c;
                sn[k] = s;
                col[k] = c * col[k] + s * col[k + 1];
                col[k + 1] = 0.0;
                let t = c * g[k] + s * g[k + 1];
                g[k + 1] = -s * g[k] + c * g[k + 1];
                g[k] = t;
                res = g[k + 1].abs();

                if res <= self.config.atol {
                    finished = Some(GmresOutcome::ConvergedAtol);
                } else if res <= self.config.rtol * residual0 {
                    finished = Some(GmresOutcome::ConvergedRtol);
                }
                if finished.is_some() {
                    break;
                }
            }

            // back-substitute y from the triangularized Hessenberg
            let kk = k_done;
            let mut y = vec![0.0; kk];
            for i in (0..kk).rev() {
                let mut acc = g[i];
                for j in i + 1..kk {
                    acc -= self.h[j * (restart + 1) + i] * y[j];
                }
                y[i] = acc / self.h[i * (restart + 1) + i];
            }
            // x += V y
            {
                let refs: Vec<&[f64]> =
                    self.basis[..kk].iter().map(|v| v.as_slice()).collect();
                vecops::maxpy(x, &y, &refs);
            }

            match finished {
                Some(outcome) => {
                    return GmresResult {
                        outcome,
                        iterations: total_iters,
                        residual: res,
                        residual0,
                        reductions,
                    }
                }
                None => {
                    if total_iters >= self.config.max_iters {
                        return GmresResult {
                            outcome: GmresOutcome::MaxIterations,
                            iterations: total_iters,
                            residual: res,
                            residual0,
                            reductions,
                        };
                    }
                    // restart
                }
            }
        }
    }
}

fn givens(a: f64, b: f64) -> (f64, f64) {
    if b == 0.0 {
        (1.0, 0.0)
    } else {
        let r = (a * a + b * b).sqrt();
        (a / r, b / r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::precond::{IdentityPrecond, SerialIlu};
    use fun3d_sparse::Bcsr4;

    fn mesh_matrix(seed: u64) -> Bcsr4 {
        let m = fun3d_mesh::generator::MeshPreset::Tiny.build();
        let mut a = Bcsr4::from_edges(m.nvertices(), &m.edges());
        a.fill_diag_dominant(seed);
        a
    }

    fn check_solution(a: &Bcsr4, b: &[f64], x: &[f64], tol: f64) {
        let n = a.dim();
        let mut ax = vec![0.0; n];
        a.spmv(x, &mut ax);
        let res: f64 = ax
            .iter()
            .zip(b)
            .map(|(p, q)| (p - q) * (p - q))
            .sum::<f64>()
            .sqrt();
        let bnorm: f64 = b.iter().map(|v| v * v).sum::<f64>().sqrt();
        assert!(res < tol * bnorm, "true residual {res} vs bnorm {bnorm}");
    }

    #[test]
    fn solves_spd_like_system_unpreconditioned() {
        let a = mesh_matrix(71);
        let n = a.dim();
        let xref: Vec<f64> = (0..n).map(|i| (i as f64 * 0.19).sin()).collect();
        let mut b = vec![0.0; n];
        a.spmv(&xref, &mut b);
        let mut x = vec![0.0; n];
        let mut solver = Gmres::new(
            n,
            GmresConfig {
                rtol: 1e-10,
                max_iters: 2000,
                ..Default::default()
            },
        );
        let res = solver.solve(&a, &IdentityPrecond(n), &b, &mut x);
        assert!(matches!(
            res.outcome,
            GmresOutcome::ConvergedRtol | GmresOutcome::ConvergedAtol | GmresOutcome::Breakdown
        ));
        check_solution(&a, &b, &x, 1e-7);
    }

    #[test]
    fn ilu_preconditioning_cuts_iterations() {
        let a = mesh_matrix(72);
        let n = a.dim();
        let b: Vec<f64> = (0..n).map(|i| ((i % 7) as f64) - 3.0).collect();
        let cfg = GmresConfig {
            rtol: 1e-8,
            max_iters: 500,
            ..Default::default()
        };
        let mut x1 = vec![0.0; n];
        let r1 = Gmres::new(n, cfg).solve(&a, &IdentityPrecond(n), &b, &mut x1);
        let mut x2 = vec![0.0; n];
        let ilu = SerialIlu::new(&a, 0);
        let r2 = Gmres::new(n, cfg).solve(&a, &ilu, &b, &mut x2);
        assert!(
            r2.iterations * 2 < r1.iterations.max(2),
            "ILU {} vs none {}",
            r2.iterations,
            r1.iterations
        );
        check_solution(&a, &b, &x2, 1e-6);
    }

    #[test]
    fn restart_path_exercised() {
        let a = mesh_matrix(73);
        let n = a.dim();
        let b: Vec<f64> = (0..n).map(|i| (i as f64 * 0.4).cos()).collect();
        let cfg = GmresConfig {
            restart: 5, // force many restarts
            rtol: 1e-8,
            max_iters: 3000,
            ..Default::default()
        };
        let mut x = vec![0.0; n];
        let res = Gmres::new(n, cfg).solve(&a, &IdentityPrecond(n), &b, &mut x);
        assert!(res.iterations > 5, "must restart at least once");
        check_solution(&a, &b, &x, 1e-6);
    }

    #[test]
    fn warm_start_converges_immediately() {
        let a = mesh_matrix(74);
        let n = a.dim();
        let xref: Vec<f64> = (0..n).map(|i| 1.0 + (i % 5) as f64).collect();
        let mut b = vec![0.0; n];
        a.spmv(&xref, &mut b);
        let mut x = xref.clone(); // exact initial guess
        let res = Gmres::new(n, GmresConfig::default()).solve(
            &a,
            &IdentityPrecond(n),
            &b,
            &mut x,
        );
        assert!(res.iterations <= 1);
        assert!(res.residual <= 1e-8 * res.residual0.max(1.0));
    }

    #[test]
    fn identity_system_converges_in_one() {
        // A = I via a diagonal BCSR with identity blocks.
        let mut a = Bcsr4::from_pattern(&[vec![0], vec![1]]);
        for r in 0..2 {
            let k = a.find(r, r as u32).unwrap();
            for i in 0..4 {
                a.blocks[k * 16 + i * 4 + i] = 1.0;
            }
        }
        let n = a.dim();
        let b: Vec<f64> = (0..n).map(|i| i as f64 + 1.0).collect();
        let mut x = vec![0.0; n];
        let res = Gmres::new(n, GmresConfig::default()).solve(
            &a,
            &IdentityPrecond(n),
            &b,
            &mut x,
        );
        assert!(res.iterations <= 2);
        for i in 0..n {
            assert!((x[i] - b[i]).abs() < 1e-10);
        }
    }

    #[test]
    fn single_reduction_matches_standard() {
        let a = mesh_matrix(76);
        let n = a.dim();
        let b: Vec<f64> = (0..n).map(|i| (i as f64 * 0.29).sin()).collect();
        let cfg = GmresConfig {
            rtol: 1e-9,
            max_iters: 800,
            ..Default::default()
        };
        let mut x1 = vec![0.0; n];
        let ilu = SerialIlu::new(&a, 0);
        let r1 = Gmres::new(n, cfg).solve(&a, &ilu, &b, &mut x1);
        let mut cfg2 = cfg;
        cfg2.single_reduction = true;
        let mut x2 = vec![0.0; n];
        let r2 = Gmres::new(n, cfg2).solve(&a, &ilu, &b, &mut x2);
        // identical mathematics, different rounding: iterations within 1.
        assert!(
            (r1.iterations as i64 - r2.iterations as i64).abs() <= 1,
            "{} vs {}",
            r1.iterations,
            r2.iterations
        );
        check_solution(&a, &b, &x2, 1e-6);
    }

    #[test]
    fn single_reduction_reduces_reductions_when_convergence_is_slow() {
        // The fused reduction pays off when the Arnoldi update does not
        // cancel severely — i.e. in the slowly-converging regime where
        // collectives dominate in the first place; with a strong
        // preconditioner the robustness guard falls back to a direct
        // norm (correctness over savings). Use the unpreconditioned
        // system to exercise the winning regime.
        let a = mesh_matrix(77);
        let n = a.dim();
        let b: Vec<f64> = (0..n).map(|i| ((i % 9) as f64) - 4.0).collect();
        let cfg = GmresConfig {
            rtol: 1e-6,
            max_iters: 600,
            ..Default::default()
        };
        let r_std = Gmres::new(n, cfg).solve(&a, &IdentityPrecond(n), &b, &mut vec![0.0; n]);
        let mut cfg1 = cfg;
        cfg1.single_reduction = true;
        let r_one =
            Gmres::new(n, cfg1).solve(&a, &IdentityPrecond(n), &b, &mut vec![0.0; n]);
        let per_std = r_std.reductions as f64 / r_std.iterations.max(1) as f64;
        let per_one = r_one.reductions as f64 / r_one.iterations.max(1) as f64;
        assert!(per_std > 1.8, "standard CGS should do ~2/iter: {per_std}");
        assert!(
            per_one < 1.35,
            "single-reduction should do ~1/iter here: {per_one}"
        );
    }

    #[test]
    fn residual_monotone_triangle() {
        // within a cycle the Givens residual is non-increasing; test via
        // two solves at different tolerances.
        let a = mesh_matrix(75);
        let n = a.dim();
        let b: Vec<f64> = (0..n).map(|i| (i as f64 * 0.7).sin()).collect();
        let loose = Gmres::new(
            n,
            GmresConfig {
                rtol: 1e-2,
                ..Default::default()
            },
        )
        .solve(&a, &IdentityPrecond(n), &b, &mut vec![0.0; n]);
        let tight = Gmres::new(
            n,
            GmresConfig {
                rtol: 1e-8,
                max_iters: 2000,
                ..Default::default()
            },
        )
        .solve(&a, &IdentityPrecond(n), &b, &mut vec![0.0; n]);
        assert!(tight.iterations >= loose.iterations);
        assert!(tight.residual <= loose.residual);
    }
}
