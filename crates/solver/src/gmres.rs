//! Left-preconditioned restarted GMRES with classical Gram-Schmidt.
//!
//! This mirrors PETSc's default KSP configuration for PETSc-FUN3D:
//! GMRES(30), left preconditioning, classical Gram-Schmidt
//! orthogonalization (the `VecMDot`/`VecMAXPY`-heavy variant whose vector
//! primitives show up in the paper's profile), and a Givens-rotation
//! least-squares update so the residual norm is available every iteration
//! without forming the solution.
//!
//! Three execution modes ([`GmresExec`]):
//!
//! * **Serial** — stock single-threaded vector ops (the baseline).
//! * **PerOp** — region-per-op threading: every vector op, SpMV, and
//!   triangular sweep launches its own pool region (how "parallelize the
//!   kernels one by one" naturally composes, and what the paper's
//!   fork-join overhead measurements are about).
//! * **Team** — persistent SPMD regions: each Arnoldi iteration (SpMV →
//!   preconditioner → orthogonalization → basis update) runs inside
//!   **one** region, with [`SpinBarrier`](fun3d_threads::SpinBarrier)
//!   phases instead of region boundaries and tree reductions instead of
//!   per-op rendezvous.
//!
//! PerOp and Team share identical chunking and thread-order reductions,
//! so at a fixed thread count they produce bitwise-identical iterates and
//! residual histories — the persistent-region restructuring changes only
//! synchronization cost, not numerics.

use crate::op::LinearOperator;
use crate::precond::Preconditioner;
use crate::team as team_ops;
use crate::vecops;
use fun3d_threads::{Team, TeamSlice, ThreadPool};

/// GMRES parameters.
#[derive(Clone, Copy, Debug)]
pub struct GmresConfig {
    /// Restart length (PETSc default 30).
    pub restart: usize,
    /// Relative tolerance on the preconditioned residual.
    pub rtol: f64,
    /// Absolute tolerance on the preconditioned residual.
    pub atol: f64,
    /// Iteration cap across restarts.
    pub max_iters: usize,
    /// Fuse the Gram-Schmidt coefficients and the new basis vector's norm
    /// into a single reduction per iteration ("l1-GMRES", the direction of
    /// Ghysels et al. [28] the paper lists as future work): `‖w⊥‖² =
    /// ‖w‖² − Σᵢ hᵢ²` by Pythagoras, so the separate norm reduction
    /// disappears. Halves the allreduce count at a small numerical-
    /// robustness cost (guarded by a re-normalization fallback).
    pub single_reduction: bool,
}

impl Default for GmresConfig {
    fn default() -> Self {
        GmresConfig {
            restart: 30,
            rtol: 1e-6,
            atol: 1e-50,
            max_iters: 1000,
            single_reduction: false,
        }
    }
}

/// How the solve is executed (see module docs).
#[derive(Clone, Copy)]
pub enum GmresExec<'p> {
    /// Single-threaded vector ops.
    Serial,
    /// Region-per-op threading on the given pool.
    PerOp(&'p ThreadPool),
    /// Persistent SPMD regions on the given pool: one region per Arnoldi
    /// iteration.
    Team(&'p ThreadPool),
    /// Pick Serial / PerOp / Team per solve from the machine model plus
    /// the measured sync costs of this pool
    /// ([`AutoPolicy`](crate::policy::AutoPolicy)): serial below the
    /// size where the pool's threads can amortize region-launch and
    /// barrier cost, the cheapest parallel scheme above it.
    Auto(&'p ThreadPool),
}

/// Why GMRES stopped.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GmresOutcome {
    /// Hit the relative tolerance.
    ConvergedRtol,
    /// Hit the absolute tolerance.
    ConvergedAtol,
    /// Ran out of iterations.
    MaxIterations,
    /// Arnoldi produced a zero vector: solution is exact in the subspace.
    Breakdown,
}

/// Result of a solve.
#[derive(Clone, Debug)]
pub struct GmresResult {
    /// Why iteration stopped.
    pub outcome: GmresOutcome,
    /// Iterations performed (matrix applications).
    pub iterations: usize,
    /// Final preconditioned residual norm.
    pub residual: f64,
    /// Initial preconditioned residual norm.
    pub residual0: f64,
    /// Global reductions performed (dot-product/norm rounds — what an
    /// `MPI_Allreduce` would be in the distributed setting). Standard
    /// CGS-GMRES performs 2 per iteration; single-reduction mode 1.
    pub reductions: usize,
    /// Per-iteration Givens residual norms, in iteration order across
    /// restarts. Execution-path equivalence is asserted on this.
    pub history: Vec<f64>,
    /// The concrete execution scheme that ran (`"serial"`, `"per-op"`,
    /// `"team"`) — for [`GmresExec::Auto`], whichever the policy chose.
    pub exec: &'static str,
}

/// Shared-reference wrapper asserting team-call safety for trait objects
/// captured by a region closure.
///
/// SAFETY: inside regions the wrapped reference is only used through the
/// `apply_team` methods, whose trait contracts require data-race freedom
/// under concurrent calls from one team (the default `Preconditioner`
/// implementation confines `self` to the barrier-ordered leader, so even
/// non-`Sync` preconditioners are sound). Operators are dereferenced
/// in-region only when `team_capable()` holds.
struct AssertTeamSafe<'a, T: ?Sized>(&'a T);
unsafe impl<T: ?Sized> Sync for AssertTeamSafe<'_, T> {}
unsafe impl<T: ?Sized> Send for AssertTeamSafe<'_, T> {}

impl<T: ?Sized> AssertTeamSafe<'_, T> {
    /// Accessor (rather than field access) so region closures capture the
    /// wrapper — 2021-edition closures capture individual fields, which
    /// would reintroduce the raw non-`Sync` reference.
    fn get(&self) -> &T {
        self.0
    }
}

/// Workspace-owning GMRES solver (buffers reused across calls).
pub struct Gmres {
    /// Configuration.
    pub config: GmresConfig,
    basis: Vec<Vec<f64>>,
    h: Vec<f64>, // Hessenberg, column-major (restart+1) x restart
    work: Vec<f64>,
    work2: Vec<f64>,
}

impl Gmres {
    /// Creates a solver for vectors of length `n`.
    pub fn new(n: usize, config: GmresConfig) -> Self {
        Gmres {
            config,
            basis: (0..config.restart + 1).map(|_| vec![0.0; n]).collect(),
            h: vec![0.0; (config.restart + 1) * config.restart],
            work: vec![0.0; n],
            work2: vec![0.0; n],
        }
    }

    /// Solves `A x = b` with left preconditioning, starting from the
    /// current contents of `x` (use zeros for a fresh solve). Serial
    /// execution; see [`Gmres::solve_with`] for the threaded modes.
    pub fn solve(
        &mut self,
        a: &dyn LinearOperator,
        m: &dyn Preconditioner,
        b: &[f64],
        x: &mut [f64],
    ) -> GmresResult {
        self.solve_with(a, m, b, x, GmresExec::Serial)
    }

    /// Solves `A x = b` under the chosen execution mode.
    pub fn solve_with(
        &mut self,
        a: &dyn LinearOperator,
        m: &dyn Preconditioner,
        b: &[f64],
        x: &mut [f64],
        exec: GmresExec,
    ) -> GmresResult {
        match exec {
            GmresExec::Serial => self.solve_seq(a, m, b, x, None),
            GmresExec::PerOp(pool) => self.solve_seq(a, m, b, x, Some(pool)),
            GmresExec::Team(pool) => self.solve_team(a, m, b, x, pool),
            GmresExec::Auto(pool) => {
                let decision =
                    crate::policy::AutoPolicy::for_pool(pool).decision(b.len(), pool.size());
                decision.record(b.len(), pool.size());
                match decision.mode {
                    crate::policy::ExecMode::Serial => self.solve_seq(a, m, b, x, None),
                    crate::policy::ExecMode::PerOp => self.solve_seq(a, m, b, x, Some(pool)),
                    _ => self.solve_team(a, m, b, x, pool),
                }
            }
        }
    }

    /// Serial and region-per-op paths: one control flow, ops dispatched
    /// per call site (`pool: None` = serial).
    fn solve_seq(
        &mut self,
        a: &dyn LinearOperator,
        m: &dyn Preconditioner,
        b: &[f64],
        x: &mut [f64],
        pool: Option<&ThreadPool>,
    ) -> GmresResult {
        let n = b.len();
        assert_eq!(a.dim(), n);
        assert_eq!(x.len(), n);
        let restart = self.config.restart;
        let exec = if pool.is_some() { "per-op" } else { "serial" };

        let mut total_iters = 0usize;
        let mut reductions = 0usize;
        let mut residual0 = f64::NAN;
        let mut history = Vec::new();

        loop {
            // r = M^{-1} (b - A x)
            match pool {
                None => a.apply(x, &mut self.work),
                Some(p) => a.apply_parallel(p, x, &mut self.work),
            }
            match pool {
                None => vecops::bsub(&mut self.work, b),
                Some(p) => vecops::par::bsub(p, &mut self.work, b),
            }
            m.apply(&self.work, &mut self.work2);
            let beta = match pool {
                None => vecops::norm2(&self.work2),
                Some(p) => vecops::par::norm2(p, &self.work2),
            };
            reductions += 1;
            if residual0.is_nan() {
                residual0 = beta;
            }
            if beta <= self.config.atol {
                return GmresResult {
                    outcome: GmresOutcome::ConvergedAtol,
                    iterations: total_iters,
                    residual: beta,
                    residual0,
                    reductions,
                    history,
                    exec,
                };
            }
            if beta <= self.config.rtol * residual0 {
                return GmresResult {
                    outcome: GmresOutcome::ConvergedRtol,
                    iterations: total_iters,
                    residual: beta,
                    residual0,
                    reductions,
                    history,
                    exec,
                };
            }
            // v1 = r/beta
            match pool {
                None => vecops::div_into(&mut self.basis[0], &self.work2, beta),
                Some(p) => vecops::par::div_into(p, &mut self.basis[0], &self.work2, beta),
            }
            let mut g = vec![0.0; restart + 1];
            g[0] = beta;
            let mut cs = vec![0.0; restart];
            let mut sn = vec![0.0; restart];
            let mut k_done = 0usize;
            let mut finished: Option<GmresOutcome> = None;
            let mut res = beta;

            for k in 0..restart {
                if total_iters >= self.config.max_iters {
                    finished = Some(GmresOutcome::MaxIterations);
                    break;
                }
                total_iters += 1;
                // w = M^{-1} A v_k
                match pool {
                    None => a.apply(&self.basis[k], &mut self.work),
                    Some(p) => a.apply_parallel(p, &self.basis[k], &mut self.work),
                }
                m.apply(&self.work, &mut self.work2);
                // classical Gram-Schmidt: h[0..=k] = V^T w, w -= V h.
                // In single-reduction mode, <w,w> joins the same fused
                // mdot and the new norm comes from Pythagoras.
                let hkk = {
                    let refs: Vec<&[f64]> =
                        self.basis[..=k].iter().map(|v| v.as_slice()).collect();
                    if self.config.single_reduction {
                        let mut fused: Vec<&[f64]> = refs.clone();
                        fused.push(&self.work2);
                        let mut out = vec![0.0; k + 2];
                        match pool {
                            None => vecops::mdot(&self.work2, &fused, &mut out),
                            Some(p) => vecops::par::mdot(p, &self.work2, &fused, &mut out),
                        }
                        reductions += 1;
                        let ww = out.pop().unwrap();
                        let coeffs = out;
                        let neg: Vec<f64> = coeffs.iter().map(|c| -c).collect();
                        match pool {
                            None => vecops::maxpy(&mut self.work2, &neg, &refs),
                            Some(p) => vecops::par::maxpy(p, &mut self.work2, &neg, &refs),
                        }
                        for (i, c) in coeffs.iter().enumerate() {
                            self.h[k * (restart + 1) + i] = *c;
                        }
                        let h2: f64 = coeffs.iter().map(|c| c * c).sum();
                        let mut hkk2 = ww - h2;
                        // Pythagoras holds only as far as the basis is
                        // orthonormal; one-pass CGS loses orthogonality
                        // exactly when the update cancels strongly, so
                        // fall back to a direct norm whenever less than
                        // 1% of ‖w‖² survives (one extra reduction on
                        // those iterations — still fewer on net).
                        if hkk2 < 1e-2 * ww {
                            hkk2 = match pool {
                                None => vecops::dot(&self.work2, &self.work2),
                                Some(p) => vecops::par::dot(p, &self.work2, &self.work2),
                            };
                            reductions += 1;
                        }
                        hkk2.max(0.0).sqrt()
                    } else {
                        let mut coeffs = vec![0.0; k + 1];
                        match pool {
                            None => vecops::mdot(&self.work2, &refs, &mut coeffs),
                            Some(p) => vecops::par::mdot(p, &self.work2, &refs, &mut coeffs),
                        }
                        reductions += 1;
                        let neg: Vec<f64> = coeffs.iter().map(|c| -c).collect();
                        match pool {
                            None => vecops::maxpy(&mut self.work2, &neg, &refs),
                            Some(p) => vecops::par::maxpy(p, &mut self.work2, &neg, &refs),
                        }
                        for (i, c) in coeffs.iter().enumerate() {
                            self.h[k * (restart + 1) + i] = *c;
                        }
                        reductions += 1;
                        match pool {
                            None => vecops::norm2(&self.work2),
                            Some(p) => vecops::par::norm2(p, &self.work2),
                        }
                    }
                };
                self.h[k * (restart + 1) + k + 1] = hkk;
                k_done = k + 1;
                if hkk <= 1e-14 * res.max(1.0) {
                    finished = Some(GmresOutcome::Breakdown);
                } else {
                    let (head, tail) = self.basis.split_at_mut(k + 1);
                    let _ = head;
                    match pool {
                        None => vecops::div_into(&mut tail[0], &self.work2, hkk),
                        Some(p) => vecops::par::div_into(p, &mut tail[0], &self.work2, hkk),
                    }
                }
                // apply existing Givens rotations to column k
                let col = &mut self.h[k * (restart + 1)..(k + 1) * (restart + 1)];
                for i in 0..k {
                    let t = cs[i] * col[i] + sn[i] * col[i + 1];
                    col[i + 1] = -sn[i] * col[i] + cs[i] * col[i + 1];
                    col[i] = t;
                }
                // new rotation to kill col[k+1]
                let (c, s) = givens(col[k], col[k + 1]);
                cs[k] = c;
                sn[k] = s;
                col[k] = c * col[k] + s * col[k + 1];
                col[k + 1] = 0.0;
                let t = c * g[k] + s * g[k + 1];
                g[k + 1] = -s * g[k] + c * g[k + 1];
                g[k] = t;
                res = g[k + 1].abs();
                history.push(res);

                if res <= self.config.atol {
                    finished = Some(GmresOutcome::ConvergedAtol);
                } else if res <= self.config.rtol * residual0 {
                    finished = Some(GmresOutcome::ConvergedRtol);
                }
                if finished.is_some() {
                    break;
                }
            }

            // back-substitute y from the triangularized Hessenberg
            let kk = k_done;
            let mut y = vec![0.0; kk];
            for i in (0..kk).rev() {
                let mut acc = g[i];
                for j in i + 1..kk {
                    acc -= self.h[j * (restart + 1) + i] * y[j];
                }
                y[i] = acc / self.h[i * (restart + 1) + i];
            }
            // x += V y
            {
                let refs: Vec<&[f64]> =
                    self.basis[..kk].iter().map(|v| v.as_slice()).collect();
                match pool {
                    None => vecops::maxpy(x, &y, &refs),
                    Some(p) => vecops::par::maxpy(p, x, &y, &refs),
                }
            }

            match finished {
                Some(outcome) => {
                    return GmresResult {
                        outcome,
                        iterations: total_iters,
                        residual: res,
                        residual0,
                        reductions,
                        history,
                        exec,
                    }
                }
                None => {
                    if total_iters >= self.config.max_iters {
                        return GmresResult {
                            outcome: GmresOutcome::MaxIterations,
                            iterations: total_iters,
                            residual: res,
                            residual0,
                            reductions,
                            history,
                            exec,
                        };
                    }
                    // restart
                }
            }
        }
    }

    /// Persistent-SPMD path: one pool region per Arnoldi iteration (plus
    /// one at cycle start and one for the solution update per restart
    /// cycle), barrier phases inside. Operators that are not
    /// `team_capable` are applied by the main thread *between* regions
    /// (hybrid mode — matrix-free operators launch their own regions).
    ///
    /// Scalar recurrences (Givens rotations, Hessenberg bookkeeping,
    /// convergence control) stay on the main thread between regions;
    /// regions hand back the reduced scalars through a mailbox buffer.
    fn solve_team(
        &mut self,
        a: &dyn LinearOperator,
        m: &dyn Preconditioner,
        b: &[f64],
        x: &mut [f64],
        pool: &ThreadPool,
    ) -> GmresResult {
        let n = b.len();
        assert_eq!(a.dim(), n);
        assert_eq!(x.len(), n);
        let restart = self.config.restart;
        let nt = pool.size();
        let team = Team::new(nt, restart + 2);
        let hybrid = !a.team_capable();
        let single = self.config.single_reduction;
        let (atol, rtol) = (self.config.atol, self.config.rtol);

        // Borrow-erased views shared with the region closures. From here
        // on, these buffers are touched only through the views: by the
        // team inside regions, by the main thread between them.
        let x_s = TeamSlice::new(x);
        let b_s = TeamSlice::from_raw(b.as_ptr() as *mut f64, n);
        let work_s = TeamSlice::new(&mut self.work);
        let work2_s = TeamSlice::new(&mut self.work2);
        let basis_s: Vec<TeamSlice> = self.basis.iter_mut().map(|v| TeamSlice::new(v)).collect();
        // Region → main-thread mailbox: beta / Gram-Schmidt coefficients
        // in [0..restart+1), h_{k+1,k} at [restart+1], extra-reduction
        // flag at [restart+2]. Leader-written, read between regions.
        let mut cell = vec![0.0f64; restart + 3];
        let cell_s = TeamSlice::new(&mut cell);

        let a_sync = AssertTeamSafe(a);
        let m_sync = AssertTeamSafe(m);

        let exec = "team";
        let mut total_iters = 0usize;
        let mut reductions = 0usize;
        let mut residual0 = f64::NAN;
        let mut history = Vec::new();

        loop {
            // Cycle start: r = M^{-1}(b - A x), beta, v1 — one region.
            if hybrid {
                // SAFETY: no region is active; main thread owns the views.
                unsafe {
                    let xs = x_s.slice(0..n);
                    let ws = work_s.slice_mut(0..n);
                    a.apply(xs, ws);
                }
            }
            let r0_in = residual0;
            pool.run(|tid| {
                // SAFETY: one member per tid per region.
                let tm = unsafe { team.member(tid) };
                if !hybrid {
                    // SAFETY: trait contract — team_capable() holds.
                    unsafe { a_sync.get().apply_team(&tm, x_s, work_s) };
                    tm.barrier();
                }
                team_ops::bsub(&tm, work_s, b_s);
                tm.barrier();
                // SAFETY: r (work) published by the barrier above.
                unsafe { m_sync.get().apply_team(&tm, work_s, work2_s) };
                let beta = team_ops::norm2(&tm, work2_s);
                if tid == 0 {
                    // SAFETY: leader-only write, read after the region.
                    unsafe { cell_s.set(0, beta) };
                }
                // Every thread holds identical beta (deterministic tree
                // reduce), so the convergence branch is uniform; the
                // main thread re-derives the same decision below.
                let r0v = if r0_in.is_nan() { beta } else { r0_in };
                if !(beta <= atol || beta <= rtol * r0v) {
                    team_ops::div_into(&tm, basis_s[0], work2_s, beta);
                }
            });
            let beta = cell[0];
            reductions += 1;
            if residual0.is_nan() {
                residual0 = beta;
            }
            if beta <= atol {
                return GmresResult {
                    outcome: GmresOutcome::ConvergedAtol,
                    iterations: total_iters,
                    residual: beta,
                    residual0,
                    reductions,
                    history,
                    exec,
                };
            }
            if beta <= rtol * residual0 {
                return GmresResult {
                    outcome: GmresOutcome::ConvergedRtol,
                    iterations: total_iters,
                    residual: beta,
                    residual0,
                    reductions,
                    history,
                    exec,
                };
            }
            let mut g = vec![0.0; restart + 1];
            g[0] = beta;
            let mut cs = vec![0.0; restart];
            let mut sn = vec![0.0; restart];
            let mut k_done = 0usize;
            let mut finished: Option<GmresOutcome> = None;
            let mut res = beta;

            for k in 0..restart {
                if total_iters >= self.config.max_iters {
                    finished = Some(GmresOutcome::MaxIterations);
                    break;
                }
                total_iters += 1;
                if hybrid {
                    // SAFETY: no region active.
                    unsafe {
                        let vk = basis_s[k].slice(0..n);
                        let ws = work_s.slice_mut(0..n);
                        a.apply(vk, ws);
                    }
                }
                // One region: w = M⁻¹ A v_k, CGS orthogonalization, new
                // basis vector. Reduced scalars are identical on every
                // thread, so all branches are uniform across the team.
                let res_in = res;
                let basis_prefix = &basis_s[..=k];
                let basis_next = basis_s[k + 1];
                pool.run(|tid| {
                    let tm = unsafe { team.member(tid) };
                    if !hybrid {
                        // SAFETY: v_k published at the previous region's
                        // close; trait contract for concurrency.
                        unsafe { a_sync.get().apply_team(&tm, basis_prefix[k], work_s) };
                        tm.barrier();
                    }
                    // SAFETY: work published (barrier above or region
                    // entry in hybrid mode).
                    unsafe { m_sync.get().apply_team(&tm, work_s, work2_s) };
                    let (hkk, extra) = if single {
                        let mut list: Vec<TeamSlice> = basis_prefix.to_vec();
                        list.push(work2_s);
                        let mut out = vec![0.0; k + 2];
                        team_ops::mdot(&tm, work2_s, &list, &mut out);
                        let ww = out[k + 1];
                        let coeffs = &out[..k + 1];
                        let neg: Vec<f64> = coeffs.iter().map(|c| -c).collect();
                        team_ops::maxpy(&tm, work2_s, &neg, basis_prefix);
                        if tid == 0 {
                            // SAFETY: leader-only mailbox write.
                            unsafe {
                                for (i, c) in coeffs.iter().enumerate() {
                                    cell_s.set(i, *c);
                                }
                            }
                        }
                        let h2: f64 = coeffs.iter().map(|c| c * c).sum();
                        let mut hkk2 = ww - h2;
                        let mut extra = 0.0;
                        if hkk2 < 1e-2 * ww {
                            hkk2 = team_ops::dot(&tm, work2_s, work2_s);
                            extra = 1.0;
                        }
                        (hkk2.max(0.0).sqrt(), extra)
                    } else {
                        let mut coeffs = vec![0.0; k + 1];
                        team_ops::mdot(&tm, work2_s, basis_prefix, &mut coeffs);
                        let neg: Vec<f64> = coeffs.iter().map(|c| -c).collect();
                        team_ops::maxpy(&tm, work2_s, &neg, basis_prefix);
                        let hkk = team_ops::norm2(&tm, work2_s);
                        if tid == 0 {
                            // SAFETY: leader-only mailbox write.
                            unsafe {
                                for (i, c) in coeffs.iter().enumerate() {
                                    cell_s.set(i, *c);
                                }
                            }
                        }
                        (hkk, 0.0)
                    };
                    if tid == 0 {
                        // SAFETY: leader-only mailbox write.
                        unsafe {
                            cell_s.set(restart + 1, hkk);
                            cell_s.set(restart + 2, extra);
                        }
                    }
                    if !(hkk <= 1e-14 * res_in.max(1.0)) {
                        team_ops::div_into(&tm, basis_next, work2_s, hkk);
                    }
                });
                reductions += 1;
                if single {
                    reductions += cell[restart + 2] as usize;
                } else {
                    reductions += 1;
                }
                for i in 0..=k {
                    self.h[k * (restart + 1) + i] = cell[i];
                }
                let hkk = cell[restart + 1];
                self.h[k * (restart + 1) + k + 1] = hkk;
                k_done = k + 1;
                if hkk <= 1e-14 * res.max(1.0) {
                    finished = Some(GmresOutcome::Breakdown);
                }
                // apply existing Givens rotations to column k
                let col = &mut self.h[k * (restart + 1)..(k + 1) * (restart + 1)];
                for i in 0..k {
                    let t = cs[i] * col[i] + sn[i] * col[i + 1];
                    col[i + 1] = -sn[i] * col[i] + cs[i] * col[i + 1];
                    col[i] = t;
                }
                let (c, s) = givens(col[k], col[k + 1]);
                cs[k] = c;
                sn[k] = s;
                col[k] = c * col[k] + s * col[k + 1];
                col[k + 1] = 0.0;
                let t = c * g[k] + s * g[k + 1];
                g[k + 1] = -s * g[k] + c * g[k + 1];
                g[k] = t;
                res = g[k + 1].abs();
                history.push(res);

                if res <= atol {
                    finished = Some(GmresOutcome::ConvergedAtol);
                } else if res <= rtol * residual0 {
                    finished = Some(GmresOutcome::ConvergedRtol);
                }
                if finished.is_some() {
                    break;
                }
            }

            // back-substitution on the main thread
            let kk = k_done;
            let mut y = vec![0.0; kk];
            for i in (0..kk).rev() {
                let mut acc = g[i];
                for j in i + 1..kk {
                    acc -= self.h[j * (restart + 1) + i] * y[j];
                }
                y[i] = acc / self.h[i * (restart + 1) + i];
            }
            // x += V y — one region.
            if kk > 0 {
                let basis_used = &basis_s[..kk];
                pool.run(|tid| {
                    let tm = unsafe { team.member(tid) };
                    team_ops::maxpy(&tm, x_s, &y, basis_used);
                });
            }

            match finished {
                Some(outcome) => {
                    return GmresResult {
                        outcome,
                        iterations: total_iters,
                        residual: res,
                        residual0,
                        reductions,
                        history,
                        exec,
                    }
                }
                None => {
                    if total_iters >= self.config.max_iters {
                        return GmresResult {
                            outcome: GmresOutcome::MaxIterations,
                            iterations: total_iters,
                            residual: res,
                            residual0,
                            reductions,
                            history,
                            exec,
                        };
                    }
                    // restart
                }
            }
        }
    }
}

fn givens(a: f64, b: f64) -> (f64, f64) {
    if b == 0.0 {
        (1.0, 0.0)
    } else {
        let r = (a * a + b * b).sqrt();
        (a / r, b / r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::precond::{IdentityPrecond, SerialIlu};
    use fun3d_sparse::Bcsr4;

    fn mesh_matrix(seed: u64) -> Bcsr4 {
        let m = fun3d_mesh::generator::MeshPreset::Tiny.build();
        let mut a = Bcsr4::from_edges(m.nvertices(), &m.edges());
        a.fill_diag_dominant(seed);
        a
    }

    fn check_solution(a: &Bcsr4, b: &[f64], x: &[f64], tol: f64) {
        let n = a.dim();
        let mut ax = vec![0.0; n];
        a.spmv(x, &mut ax);
        let res: f64 = ax
            .iter()
            .zip(b)
            .map(|(p, q)| (p - q) * (p - q))
            .sum::<f64>()
            .sqrt();
        let bnorm: f64 = b.iter().map(|v| v * v).sum::<f64>().sqrt();
        assert!(res < tol * bnorm, "true residual {res} vs bnorm {bnorm}");
    }

    #[test]
    fn solves_spd_like_system_unpreconditioned() {
        let a = mesh_matrix(71);
        let n = a.dim();
        let xref: Vec<f64> = (0..n).map(|i| (i as f64 * 0.19).sin()).collect();
        let mut b = vec![0.0; n];
        a.spmv(&xref, &mut b);
        let mut x = vec![0.0; n];
        let mut solver = Gmres::new(
            n,
            GmresConfig {
                rtol: 1e-10,
                max_iters: 2000,
                ..Default::default()
            },
        );
        let res = solver.solve(&a, &IdentityPrecond(n), &b, &mut x);
        assert!(matches!(
            res.outcome,
            GmresOutcome::ConvergedRtol | GmresOutcome::ConvergedAtol | GmresOutcome::Breakdown
        ));
        check_solution(&a, &b, &x, 1e-7);
        assert_eq!(res.history.len(), res.iterations);
    }

    #[test]
    fn ilu_preconditioning_cuts_iterations() {
        let a = mesh_matrix(72);
        let n = a.dim();
        let b: Vec<f64> = (0..n).map(|i| ((i % 7) as f64) - 3.0).collect();
        let cfg = GmresConfig {
            rtol: 1e-8,
            max_iters: 500,
            ..Default::default()
        };
        let mut x1 = vec![0.0; n];
        let r1 = Gmres::new(n, cfg).solve(&a, &IdentityPrecond(n), &b, &mut x1);
        let mut x2 = vec![0.0; n];
        let ilu = SerialIlu::new(&a, 0);
        let r2 = Gmres::new(n, cfg).solve(&a, &ilu, &b, &mut x2);
        assert!(
            r2.iterations * 2 < r1.iterations.max(2),
            "ILU {} vs none {}",
            r2.iterations,
            r1.iterations
        );
        check_solution(&a, &b, &x2, 1e-6);
    }

    #[test]
    fn restart_path_exercised() {
        let a = mesh_matrix(73);
        let n = a.dim();
        let b: Vec<f64> = (0..n).map(|i| (i as f64 * 0.4).cos()).collect();
        let cfg = GmresConfig {
            restart: 5, // force many restarts
            rtol: 1e-8,
            max_iters: 3000,
            ..Default::default()
        };
        let mut x = vec![0.0; n];
        let res = Gmres::new(n, cfg).solve(&a, &IdentityPrecond(n), &b, &mut x);
        assert!(res.iterations > 5, "must restart at least once");
        check_solution(&a, &b, &x, 1e-6);
    }

    #[test]
    fn warm_start_converges_immediately() {
        let a = mesh_matrix(74);
        let n = a.dim();
        let xref: Vec<f64> = (0..n).map(|i| 1.0 + (i % 5) as f64).collect();
        let mut b = vec![0.0; n];
        a.spmv(&xref, &mut b);
        let mut x = xref.clone(); // exact initial guess
        let res = Gmres::new(n, GmresConfig::default()).solve(
            &a,
            &IdentityPrecond(n),
            &b,
            &mut x,
        );
        assert!(res.iterations <= 1);
        assert!(res.residual <= 1e-8 * res.residual0.max(1.0));
    }

    #[test]
    fn identity_system_converges_in_one() {
        // A = I via a diagonal BCSR with identity blocks.
        let mut a = Bcsr4::from_pattern(&[vec![0], vec![1]]);
        for r in 0..2 {
            let k = a.find(r, r as u32).unwrap();
            for i in 0..4 {
                a.blocks[k * 16 + i * 4 + i] = 1.0;
            }
        }
        let n = a.dim();
        let b: Vec<f64> = (0..n).map(|i| i as f64 + 1.0).collect();
        let mut x = vec![0.0; n];
        let res = Gmres::new(n, GmresConfig::default()).solve(
            &a,
            &IdentityPrecond(n),
            &b,
            &mut x,
        );
        assert!(res.iterations <= 2);
        for i in 0..n {
            assert!((x[i] - b[i]).abs() < 1e-10);
        }
    }

    #[test]
    fn single_reduction_matches_standard() {
        let a = mesh_matrix(76);
        let n = a.dim();
        let b: Vec<f64> = (0..n).map(|i| (i as f64 * 0.29).sin()).collect();
        let cfg = GmresConfig {
            rtol: 1e-9,
            max_iters: 800,
            ..Default::default()
        };
        let mut x1 = vec![0.0; n];
        let ilu = SerialIlu::new(&a, 0);
        let r1 = Gmres::new(n, cfg).solve(&a, &ilu, &b, &mut x1);
        let mut cfg2 = cfg;
        cfg2.single_reduction = true;
        let mut x2 = vec![0.0; n];
        let r2 = Gmres::new(n, cfg2).solve(&a, &ilu, &b, &mut x2);
        // identical mathematics, different rounding: iterations within 1.
        assert!(
            (r1.iterations as i64 - r2.iterations as i64).abs() <= 1,
            "{} vs {}",
            r1.iterations,
            r2.iterations
        );
        check_solution(&a, &b, &x2, 1e-6);
    }

    #[test]
    fn single_reduction_reduces_reductions_when_convergence_is_slow() {
        // The fused reduction pays off when the Arnoldi update does not
        // cancel severely — i.e. in the slowly-converging regime where
        // collectives dominate in the first place; with a strong
        // preconditioner the robustness guard falls back to a direct
        // norm (correctness over savings). Use the unpreconditioned
        // system to exercise the winning regime.
        let a = mesh_matrix(77);
        let n = a.dim();
        let b: Vec<f64> = (0..n).map(|i| ((i % 9) as f64) - 4.0).collect();
        let cfg = GmresConfig {
            rtol: 1e-6,
            max_iters: 600,
            ..Default::default()
        };
        let r_std = Gmres::new(n, cfg).solve(&a, &IdentityPrecond(n), &b, &mut vec![0.0; n]);
        let mut cfg1 = cfg;
        cfg1.single_reduction = true;
        let r_one =
            Gmres::new(n, cfg1).solve(&a, &IdentityPrecond(n), &b, &mut vec![0.0; n]);
        let per_std = r_std.reductions as f64 / r_std.iterations.max(1) as f64;
        let per_one = r_one.reductions as f64 / r_one.iterations.max(1) as f64;
        assert!(per_std > 1.8, "standard CGS should do ~2/iter: {per_std}");
        assert!(
            per_one < 1.35,
            "single-reduction should do ~1/iter here: {per_one}"
        );
    }

    #[test]
    fn residual_monotone_triangle() {
        // within a cycle the Givens residual is non-increasing; test via
        // two solves at different tolerances.
        let a = mesh_matrix(75);
        let n = a.dim();
        let b: Vec<f64> = (0..n).map(|i| (i as f64 * 0.7).sin()).collect();
        let loose = Gmres::new(
            n,
            GmresConfig {
                rtol: 1e-2,
                ..Default::default()
            },
        )
        .solve(&a, &IdentityPrecond(n), &b, &mut vec![0.0; n]);
        let tight = Gmres::new(
            n,
            GmresConfig {
                rtol: 1e-8,
                max_iters: 2000,
                ..Default::default()
            },
        )
        .solve(&a, &IdentityPrecond(n), &b, &mut vec![0.0; n]);
        assert!(tight.iterations >= loose.iterations);
        assert!(tight.residual <= loose.residual);
    }

    // ---- persistent-region (team) execution ----

    use fun3d_threads::ThreadPool;

    fn solve_mode(
        a: &Bcsr4,
        m: &dyn Preconditioner,
        b: &[f64],
        cfg: GmresConfig,
        exec: GmresExec,
    ) -> (GmresResult, Vec<f64>) {
        let n = a.dim();
        let mut x = vec![0.0; n];
        let r = Gmres::new(n, cfg).solve_with(a, m, b, &mut x, exec);
        (r, x)
    }

    #[test]
    fn team_matches_per_op_bitwise_identity_precond() {
        let a = mesh_matrix(81);
        let n = a.dim();
        let b: Vec<f64> = (0..n).map(|i| (i as f64 * 0.31).sin()).collect();
        let cfg = GmresConfig {
            rtol: 1e-8,
            max_iters: 400,
            ..Default::default()
        };
        for nt in [1usize, 2, 4] {
            let pool = ThreadPool::new(nt);
            let m = IdentityPrecond(n);
            let (rp, xp) = solve_mode(&a, &m, &b, cfg, GmresExec::PerOp(&pool));
            let (rt, xt) = solve_mode(&a, &m, &b, cfg, GmresExec::Team(&pool));
            assert_eq!(rp.iterations, rt.iterations, "nt={nt}");
            assert_eq!(rp.history, rt.history, "nt={nt}: residual history must be identical");
            assert_eq!(xp, xt, "nt={nt}: iterates must be bitwise identical");
            assert_eq!(rp.reductions, rt.reductions, "nt={nt}");
        }
    }

    #[test]
    fn team_matches_per_op_bitwise_ilu_levels_and_p2p() {
        let a = mesh_matrix(82);
        let n = a.dim();
        let b: Vec<f64> = (0..n).map(|i| ((i % 11) as f64) - 5.0).collect();
        let cfg = GmresConfig {
            rtol: 1e-9,
            max_iters: 300,
            ..Default::default()
        };
        for nt in [2usize, 4] {
            let pool = std::sync::Arc::new(ThreadPool::new(nt));
            for mode in ["levels", "p2p"] {
                let ilu = match mode {
                    "levels" => SerialIlu::new(&a, 0).with_levels(pool.clone()),
                    _ => SerialIlu::new(&a, 0).with_p2p(pool.clone()),
                };
                let (rp, xp) = solve_mode(&a, &ilu, &b, cfg, GmresExec::PerOp(&pool));
                let (rt, xt) = solve_mode(&a, &ilu, &b, cfg, GmresExec::Team(&pool));
                assert_eq!(rp.history, rt.history, "nt={nt} {mode}");
                assert_eq!(xp, xt, "nt={nt} {mode}");
            }
        }
    }

    #[test]
    fn team_single_reduction_matches_per_op() {
        let a = mesh_matrix(83);
        let n = a.dim();
        let b: Vec<f64> = (0..n).map(|i| (i as f64 * 0.17).cos()).collect();
        let cfg = GmresConfig {
            rtol: 1e-8,
            max_iters: 400,
            single_reduction: true,
            ..Default::default()
        };
        let pool = ThreadPool::new(3);
        let m = IdentityPrecond(n);
        let (rp, xp) = solve_mode(&a, &m, &b, cfg, GmresExec::PerOp(&pool));
        let (rt, xt) = solve_mode(&a, &m, &b, cfg, GmresExec::Team(&pool));
        assert_eq!(rp.history, rt.history);
        assert_eq!(xp, xt);
        assert_eq!(rp.reductions, rt.reductions);
    }

    #[test]
    fn team_one_region_per_iteration() {
        // Single restart cycle: regions = 1 (cycle start) + iterations
        // (one per Arnoldi step) + 1 (x += V y).
        let a = mesh_matrix(84);
        let n = a.dim();
        let b: Vec<f64> = (0..n).map(|i| (i as f64 * 0.23).sin()).collect();
        let cfg = GmresConfig {
            rtol: 1e-6,
            max_iters: 200,
            ..Default::default()
        };
        let pool = std::sync::Arc::new(ThreadPool::new(2));
        let ilu = SerialIlu::new(&a, 0).with_levels(pool.clone());
        let before = pool.regions_launched();
        let (rt, _) = solve_mode(&a, &ilu, &b, cfg, GmresExec::Team(&pool));
        let regions = pool.regions_launched() - before;
        assert!(
            rt.iterations < cfg.restart,
            "test premise: one cycle ({} iters)",
            rt.iterations
        );
        assert_eq!(regions, rt.iterations as u64 + 2);
    }

    #[test]
    fn team_hybrid_mode_for_non_team_operators() {
        // A matrix-free FD Jacobian is not team-capable (it launches its
        // own regions / holds RefCell scratch): the team path must apply
        // it between regions and still converge to the same solution.
        let a = mesh_matrix(85);
        let n = a.dim();
        let residual = |u: &[f64], r: &mut [f64]| a.spmv(u, r);
        let u = vec![0.0; n];
        let mut r0 = vec![0.0; n];
        residual(&u, &mut r0);
        let jac = crate::op::FdJacobian::new(residual, &u, &r0, &[]);
        assert!(!jac.team_capable());
        let b: Vec<f64> = (0..n).map(|i| (i as f64 * 0.41).sin()).collect();
        let cfg = GmresConfig {
            rtol: 1e-8,
            max_iters: 600,
            ..Default::default()
        };
        let pool = ThreadPool::new(2);
        let mut x = vec![0.0; n];
        let r = Gmres::new(n, cfg).solve_with(&jac, &IdentityPrecond(n), &b, &mut x, GmresExec::Team(&pool));
        assert!(matches!(
            r.outcome,
            GmresOutcome::ConvergedRtol | GmresOutcome::ConvergedAtol | GmresOutcome::Breakdown
        ));
        check_solution(&a, &b, &x, 1e-6);
    }

    #[test]
    fn result_reports_executed_mode() {
        let a = mesh_matrix(87);
        let n = a.dim();
        let b: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).sin()).collect();
        let cfg = GmresConfig {
            rtol: 1e-6,
            max_iters: 200,
            ..Default::default()
        };
        let pool = ThreadPool::new(2);
        let m = IdentityPrecond(n);
        let (r, _) = solve_mode(&a, &m, &b, cfg, GmresExec::Serial);
        assert_eq!(r.exec, "serial");
        let (r, _) = solve_mode(&a, &m, &b, cfg, GmresExec::PerOp(&pool));
        assert_eq!(r.exec, "per-op");
        let (r, _) = solve_mode(&a, &m, &b, cfg, GmresExec::Team(&pool));
        assert_eq!(r.exec, "team");
    }

    #[test]
    fn auto_matches_its_selected_mode_bitwise() {
        // Whatever concrete scheme the policy picks on this machine,
        // Auto must be indistinguishable from running that scheme
        // directly: same residual history, bitwise-identical iterates.
        let a = mesh_matrix(88);
        let n = a.dim();
        let b: Vec<f64> = (0..n).map(|i| ((i % 13) as f64) - 6.0).collect();
        let cfg = GmresConfig {
            rtol: 1e-8,
            max_iters: 300,
            ..Default::default()
        };
        for nt in [1usize, 2] {
            let pool = ThreadPool::new(nt);
            let m = IdentityPrecond(n);
            let (ra, xa) = solve_mode(&a, &m, &b, cfg, GmresExec::Auto(&pool));
            let concrete = match ra.exec {
                "serial" => GmresExec::Serial,
                "per-op" => GmresExec::PerOp(&pool),
                "team" => GmresExec::Team(&pool),
                other => panic!("Auto reported unknown exec {other:?}"),
            };
            let (rc, xc) = solve_mode(&a, &m, &b, cfg, concrete);
            assert_eq!(rc.exec, ra.exec, "nt={nt}");
            assert_eq!(ra.history, rc.history, "nt={nt}");
            assert_eq!(xa, xc, "nt={nt}");
            assert_eq!(ra.reductions, rc.reductions, "nt={nt}");
        }
    }

    #[test]
    fn auto_on_single_worker_pool_is_serial() {
        // An nt=1 pool can never amortize sync cost: the policy must
        // resolve Auto to the serial path regardless of problem size.
        let a = mesh_matrix(89);
        let n = a.dim();
        let b: Vec<f64> = (0..n).map(|i| (i as f64 * 0.11).cos()).collect();
        let cfg = GmresConfig {
            rtol: 1e-6,
            max_iters: 200,
            ..Default::default()
        };
        let pool = ThreadPool::new(1);
        let (r, _) = solve_mode(&a, &IdentityPrecond(n), &b, cfg, GmresExec::Auto(&pool));
        assert_eq!(r.exec, "serial");
    }

    #[test]
    fn serial_path_unchanged_by_refactor() {
        // solve() must still be the stock serial path: same outcome and
        // history as an explicit GmresExec::Serial.
        let a = mesh_matrix(86);
        let n = a.dim();
        let b: Vec<f64> = (0..n).map(|i| (i as f64 * 0.53).cos()).collect();
        let cfg = GmresConfig {
            rtol: 1e-8,
            max_iters: 300,
            ..Default::default()
        };
        let mut x1 = vec![0.0; n];
        let r1 = Gmres::new(n, cfg).solve(&a, &IdentityPrecond(n), &b, &mut x1);
        let mut x2 = vec![0.0; n];
        let r2 = Gmres::new(n, cfg).solve_with(&a, &IdentityPrecond(n), &b, &mut x2, GmresExec::Serial);
        assert_eq!(r1.history, r2.history);
        assert_eq!(x1, x2);
    }
}
