//! Pseudo-transient continuation (ΨTC) with inexact Newton.
//!
//! The implicit step (paper Eq. 2): `F(u_l) = (u_l − u_{l−1})/Δt_l +
//! f(u_l) = 0` with `Δt_l → ∞`, solved by an inexact Newton method whose
//! corrections come from preconditioned GMRES (Eq. 3). The time step
//! follows **switched evolution relaxation**: `Δt_l = Δt_0 · ‖f(u_0)‖ /
//! ‖f(u_{l−1})‖` (capped), so the method behaves like time marching far
//! from the solution and like Newton near it.

use crate::anomaly::{Anomaly, AnomalyConfig, AnomalyDetector};
use crate::gmres::{Gmres, GmresConfig, GmresExec};
use crate::op::FdJacobian;
use crate::policy::ExecMode;
use crate::precond::Preconditioner;
use crate::vecops;
use fun3d_threads::ThreadPool;
use fun3d_util::telemetry;
use fun3d_util::telemetry::flight;
use fun3d_util::Timer;
use std::sync::Arc;
use std::time::Instant;

/// The problem interface the CFD application implements.
pub trait PtcProblem {
    /// Number of scalar unknowns.
    fn dim(&self) -> usize;

    /// Steady residual `r = f(u)` (time term excluded).
    fn residual(&mut self, u: &[f64], r: &mut [f64]);

    /// Writes the pseudo-time diagonal `V_i / Δt` per unknown.
    fn time_diag(&self, dt: f64, out: &mut [f64]);

    /// Rebuilds the preconditioner for state `u` with the given time
    /// diagonal, returning it for this step's linear solves.
    fn build_preconditioner(&mut self, u: &[f64], time_diag: &[f64]);

    /// The preconditioner built by the last `build_preconditioner` call.
    fn preconditioner(&self) -> &dyn Preconditioner;

    /// Hook called once per time step with the current residual norm
    /// (used by the application's progress logging). Default: no-op.
    fn on_step(&mut self, _step: usize, _res_norm: f64, _dt: f64) {}

    /// Thread pool for the linear solver's vector ops, or `None` for
    /// serial execution. Default: serial.
    fn solver_pool(&self) -> Option<Arc<ThreadPool>> {
        None
    }

    /// How GMRES executes when a pool is available: region-per-op,
    /// persistent SPMD regions (one region per Arnoldi iteration — the
    /// FD Jacobian is matrix-free and launches its own regions, so the
    /// operator apply stays between regions, hybrid mode), or
    /// [`ExecMode::Auto`] to pick per solve from the machine model plus
    /// measured sync costs. Ignored without a pool (always serial).
    /// `FUN3D_EXEC=serial|per-op|team|auto` overrides this at run time.
    fn exec_mode(&self) -> ExecMode {
        ExecMode::PerOp
    }
}

/// ΨTC driver parameters.
#[derive(Clone, Copy, Debug)]
pub struct PtcConfig {
    /// Initial CFL-like pseudo-time step.
    pub dt0: f64,
    /// Upper bound on Δt (keeps the shifted system nonsingular).
    pub dt_max: f64,
    /// Stop when ‖f(u)‖ ≤ rtol · ‖f(u₀)‖.
    pub rtol: f64,
    /// Stop when ‖f(u)‖ ≤ atol.
    pub atol: f64,
    /// Maximum pseudo-time steps.
    pub max_steps: usize,
    /// Newton iterations per time step (PETSc-FUN3D uses 1).
    pub newton_per_step: usize,
    /// Linear solver settings.
    pub gmres: GmresConfig,
    /// Residual anomaly detection thresholds (flight-dump triggers).
    /// `FUN3D_WALL_BUDGET=<seconds>` overrides the wall budget.
    pub anomaly: AnomalyConfig,
}

impl Default for PtcConfig {
    fn default() -> Self {
        PtcConfig {
            dt0: 1.0,
            dt_max: 1e12,
            rtol: 1e-8,
            atol: 1e-300,
            max_steps: 200,
            newton_per_step: 1,
            gmres: GmresConfig {
                rtol: 1e-3, // inexact Newton: loose inner tolerance
                ..Default::default()
            },
            anomaly: AnomalyConfig::default(),
        }
    }
}

/// Convergence record of a ΨTC solve.
#[derive(Clone, Debug)]
pub struct PtcStats {
    /// Pseudo-time steps taken.
    pub time_steps: usize,
    /// Total Newton iterations.
    pub newton_iters: usize,
    /// Total linear (GMRES) iterations — the paper's "linear iterations".
    pub linear_iters: usize,
    /// ‖f(u)‖ after each time step.
    pub res_history: Vec<f64>,
    /// True when the tolerance was met.
    pub converged: bool,
    /// The concrete scheme the last linear solve ran (`"serial"`,
    /// `"per-op"`, `"team"`) — with [`ExecMode::Auto`], whatever the
    /// policy picked. `"serial"` when no linear solve ran.
    pub exec: &'static str,
    /// Flight-recorder id of this solve (every event the solve emitted
    /// carries it).
    pub solve_id: u64,
    /// The anomaly that aborted the solve, if any (a flight dump with
    /// the matching trigger was written when the recorder is enabled).
    pub anomaly: Option<Anomaly>,
}

/// Runs ΨTC on `problem`, updating `u` in place.
pub fn solve(problem: &mut dyn PtcProblem, u: &mut [f64], config: &PtcConfig) -> PtcStats {
    let n = problem.dim();
    assert_eq!(u.len(), n);
    let mut r = vec![0.0; n];
    let mut shift = vec![0.0; n];
    let mut rhs = vec![0.0; n];
    let mut delta = vec![0.0; n];
    let mut gmres = Gmres::new(n, config.gmres);
    let pool = problem.solver_pool();
    // `FUN3D_EXEC` wins over the application's configuration.
    let mode = ExecMode::from_env().unwrap_or_else(|| problem.exec_mode());

    let threads = pool.as_deref().map(ThreadPool::size).unwrap_or(1) as u64;
    let solve_id = flight::begin_solve(n as u64, threads);
    let t0 = Instant::now();
    let mut detector = {
        let mut acfg = config.anomaly;
        if let Some(budget) = std::env::var("FUN3D_WALL_BUDGET")
            .ok()
            .and_then(|v| v.trim().parse::<f64>().ok())
        {
            acfg.wall_budget_s = Some(budget);
        }
        AnomalyDetector::new(acfg)
    };
    let regions0 = pool.as_deref().map(ThreadPool::regions_launched);
    let barriers0 = fun3d_threads::barrier::total_crossings();

    problem.residual(u, &mut r);
    let res0 = vecops::norm2(&r);
    let mut res = res0;
    let mut stats = PtcStats {
        time_steps: 0,
        newton_iters: 0,
        linear_iters: 0,
        res_history: vec![res0],
        converged: res0 <= config.atol,
        exec: "serial",
        solve_id: solve_id.0,
        anomaly: None,
    };
    if stats.converged || res0 == 0.0 {
        stats.converged = true;
        flight::end_solve(solve_id, true, 0, 0, res0);
        return stats;
    }

    for step in 0..config.max_steps {
        let _step_span = telemetry::span("ptc.step");
        let step_t0 = Instant::now();
        // SER time step growth.
        let dt = (config.dt0 * res0 / res).min(config.dt_max);
        problem.time_diag(dt, &mut shift);
        {
            let _pc_span = telemetry::span("ptc.precond_build");
            let pc_timer = Timer::start();
            problem.build_preconditioner(u, &shift);
            telemetry::series_push("ptc.precond_build_s", (step + 1) as f64, pc_timer.seconds());
        }

        let mut step_lin_iters = 0usize;
        for _ in 0..config.newton_per_step {
            // Solve (diag(shift) + J) δ = −f(u), matrix-free.
            for i in 0..n {
                rhs[i] = -r[i];
            }
            delta.iter_mut().for_each(|d| *d = 0.0);
            let lin = {
                // Borrow problem immutably for the residual closure: we
                // copy the state into the jacobian via a local closure
                // around a RefCell-free trick — residual needs &mut self,
                // so evaluate through a raw pointer with care.
                let prob_ptr: *mut dyn PtcProblem = problem;
                let residual_fn = move |x: &[f64], out: &mut [f64]| {
                    // SAFETY: FdJacobian::apply is only invoked from
                    // gmres.solve below, while no other borrow of
                    // `problem` is live; calls are strictly sequential.
                    unsafe { (*prob_ptr).residual(x, out) };
                };
                let jac = FdJacobian::new(residual_fn, u, &r, &shift);
                let _gmres_span = telemetry::span("ptc.gmres");
                let exec = match (pool.as_deref(), mode) {
                    (None, _) | (Some(_), ExecMode::Serial) => GmresExec::Serial,
                    (Some(p), ExecMode::PerOp) => GmresExec::PerOp(p),
                    (Some(p), ExecMode::Team) => GmresExec::Team(p),
                    (Some(p), ExecMode::Auto) => GmresExec::Auto(p),
                };
                let gmres_t0 = Instant::now();
                let lin =
                    gmres.solve_with(&jac, problem.preconditioner(), &rhs, &mut delta, exec);
                telemetry::metrics::record_ns(
                    "solver.gmres_ns",
                    gmres_t0.elapsed().as_nanos().min(u64::MAX as u128) as u64,
                );
                lin
            };
            stats.linear_iters += lin.iterations;
            step_lin_iters += lin.iterations;
            stats.newton_iters += 1;
            stats.exec = lin.exec;
            if let Some(tag) = flight::ExecTag::parse(lin.exec) {
                flight::emit(flight::EventKind::Gmres {
                    exec: tag,
                    iterations: lin.iterations as u64,
                    residual: lin.residual,
                    reductions: lin.reductions as u64,
                });
            }
            vecops::axpy(u, 1.0, &delta);
            problem.residual(u, &mut r);
        }

        res = vecops::norm2(&r);
        stats.time_steps = step + 1;
        stats.res_history.push(res);
        telemetry::series_push("ptc.residual", (step + 1) as f64, res);
        telemetry::series_push("ptc.dt", (step + 1) as f64, dt);
        telemetry::series_push("ptc.gmres_iters", (step + 1) as f64, step_lin_iters as f64);
        telemetry::metrics::record_ns(
            "solver.ptc_step_ns",
            step_t0.elapsed().as_nanos().min(u64::MAX as u128) as u64,
        );
        flight::emit(flight::EventKind::PtcStep {
            step: (step + 1) as u64,
            res,
            dt,
            gmres_iters: step_lin_iters as u64,
        });
        problem.on_step(step + 1, res, dt);

        if res <= config.rtol * res0 || res <= config.atol {
            stats.converged = true;
            break;
        }
        // The detector subsumes the old bare `!res.is_finite()` bail: a
        // NaN/Inf residual is a divergence anomaly, and blow-up /
        // stagnation / budget overruns abort too — each with a flight
        // dump naming the trigger, so the black box survives the failure.
        if let Some(anomaly) = detector.observe(step + 1, res, t0.elapsed().as_secs_f64()) {
            flight::emit(flight::EventKind::Anomaly {
                trigger: anomaly.trigger(),
                step: anomaly.step() as u64,
                value: anomaly.value(),
            });
            stats.anomaly = Some(anomaly);
            if flight::enabled() {
                let _ = flight::dump(anomaly.trigger());
            }
            break;
        }
    }

    if let (Some(p), Some(r0)) = (pool.as_deref(), regions0) {
        flight::emit(flight::EventKind::RegionSummary {
            regions: p.regions_launched() - r0,
            barriers: fun3d_threads::barrier::total_crossings() - barriers0,
        });
    }
    flight::end_solve(
        solve_id,
        stats.converged,
        stats.time_steps as u64,
        stats.linear_iters as u64,
        res,
    );
    if flight::enabled() && flight::dump_requested() {
        let _ = flight::dump(flight::Trigger::Request);
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::precond::{IdentityPrecond, SerialIlu};
    use fun3d_sparse::Bcsr4;

    /// Linear test problem: f(u) = A u − b. Steady state solves A u = b.
    struct LinearProblem {
        a: Bcsr4,
        b: Vec<f64>,
        precond: Option<SerialIlu>,
        vol: Vec<f64>,
    }

    impl LinearProblem {
        fn new(seed: u64) -> Self {
            let m = fun3d_mesh::generator::MeshPreset::Tiny.build();
            let mut a = Bcsr4::from_edges(m.nvertices(), &m.edges());
            a.fill_diag_dominant(seed);
            let n = a.dim();
            let b: Vec<f64> = (0..n).map(|i| ((i % 11) as f64 - 5.0) * 0.1).collect();
            let vol = vec![1.0; n];
            LinearProblem {
                a,
                b,
                precond: None,
                vol,
            }
        }
    }

    impl PtcProblem for LinearProblem {
        fn dim(&self) -> usize {
            self.a.dim()
        }
        fn residual(&mut self, u: &[f64], r: &mut [f64]) {
            self.a.spmv(u, r);
            for i in 0..r.len() {
                r[i] -= self.b[i];
            }
        }
        fn time_diag(&self, dt: f64, out: &mut [f64]) {
            for (o, v) in out.iter_mut().zip(&self.vol) {
                *o = v / dt;
            }
        }
        fn build_preconditioner(&mut self, _u: &[f64], _time_diag: &[f64]) {
            // Note: for simplicity the test preconditioner ignores the
            // time shift; it stays a valid (slightly lagged) M⁻¹.
            if self.precond.is_none() {
                self.precond = Some(SerialIlu::new(&self.a, 0));
            }
        }
        fn preconditioner(&self) -> &dyn Preconditioner {
            self.precond.as_ref().unwrap()
        }
    }

    #[test]
    fn converges_to_linear_steady_state() {
        let mut p = LinearProblem::new(81);
        let n = p.dim();
        let mut u = vec![0.0; n];
        let stats = solve(
            &mut p,
            &mut u,
            &PtcConfig {
                dt0: 10.0,
                rtol: 1e-10,
                max_steps: 100,
                ..Default::default()
            },
        );
        assert!(stats.converged, "history: {:?}", stats.res_history);
        // u solves A u = b
        let mut r = vec![0.0; n];
        p.residual(&u, &mut r);
        assert!(vecops::norm2(&r) < 1e-8 * vecops::norm2(&p.b).max(1.0));
    }

    #[test]
    fn residual_history_decreases() {
        let mut p = LinearProblem::new(82);
        let n = p.dim();
        let mut u = vec![0.0; n];
        let stats = solve(
            &mut p,
            &mut u,
            &PtcConfig {
                dt0: 5.0,
                rtol: 1e-9,
                ..Default::default()
            },
        );
        let h = &stats.res_history;
        assert!(h.len() >= 3);
        assert!(h.last().unwrap() < &(h[0] * 1e-6));
        // broadly monotone: each step no worse than 10x the previous
        for w in h.windows(2) {
            assert!(w[1] < 10.0 * w[0]);
        }
    }

    #[test]
    fn small_dt_needs_more_steps_than_large() {
        let run = |dt0: f64| {
            let mut p = LinearProblem::new(83);
            let mut u = vec![0.0; p.dim()];
            solve(
                &mut p,
                &mut u,
                &PtcConfig {
                    dt0,
                    rtol: 1e-8,
                    max_steps: 500,
                    ..Default::default()
                },
            )
        };
        let slow = run(0.05);
        let fast = run(50.0);
        assert!(slow.converged && fast.converged);
        assert!(
            fast.time_steps <= slow.time_steps,
            "dt0=50 took {} steps, dt0=0.05 took {}",
            fast.time_steps,
            slow.time_steps
        );
    }

    #[test]
    fn telemetry_series_record_convergence() {
        telemetry::set_level(telemetry::Level::Counters);
        let mut p = LinearProblem::new(85);
        let mut u = vec![0.0; p.dim()];
        let stats = solve(&mut p, &mut u, &PtcConfig::default());
        assert!(stats.time_steps >= 1);
        let snap = telemetry::snapshot();
        // one residual/dt/gmres_iters point per time step (other tests in
        // this binary may add more, never fewer)
        assert!(snap.series("ptc.residual").len() >= stats.time_steps);
        assert!(snap.series("ptc.dt").len() >= stats.time_steps);
        assert!(snap.series("ptc.gmres_iters").len() >= stats.time_steps);
        assert!(snap.series("ptc.precond_build_s").len() >= stats.time_steps);
    }

    #[test]
    fn counts_linear_iterations() {
        let mut p = LinearProblem::new(84);
        let mut u = vec![0.0; p.dim()];
        let stats = solve(&mut p, &mut u, &PtcConfig::default());
        assert!(stats.linear_iters >= stats.newton_iters);
        assert_eq!(stats.newton_iters, stats.time_steps);
    }

    /// A genuinely nonlinear scalar-ish problem: f(u)_i = u_i + u_i^3 − c_i.
    struct CubicProblem {
        c: Vec<f64>,
        ident: IdentityPrecond,
    }

    impl PtcProblem for CubicProblem {
        fn dim(&self) -> usize {
            self.c.len()
        }
        fn residual(&mut self, u: &[f64], r: &mut [f64]) {
            for i in 0..u.len() {
                r[i] = u[i] + u[i] * u[i] * u[i] - self.c[i];
            }
        }
        fn time_diag(&self, dt: f64, out: &mut [f64]) {
            out.iter_mut().for_each(|o| *o = 1.0 / dt);
        }
        fn build_preconditioner(&mut self, _u: &[f64], _s: &[f64]) {}
        fn preconditioner(&self) -> &dyn Preconditioner {
            &self.ident
        }
    }

    #[test]
    fn nonlinear_problem_converges() {
        let n = 32;
        let c: Vec<f64> = (0..n).map(|i| ((i as f64 * 0.3).sin()) * 2.0).collect();
        let mut p = CubicProblem {
            c: c.clone(),
            ident: IdentityPrecond(n),
        };
        let mut u = vec![0.0; n];
        let stats = solve(
            &mut p,
            &mut u,
            &PtcConfig {
                dt0: 1.0,
                rtol: 1e-10,
                max_steps: 200,
                ..Default::default()
            },
        );
        assert!(stats.converged);
        for i in 0..n {
            let f = u[i] + u[i].powi(3) - c[i];
            assert!(f.abs() < 1e-7, "i={i}: residual {f}");
        }
    }
}
