//! Residual anomaly detection for the ΨTC driver.
//!
//! A production solve fails in a handful of recognizable ways, and the
//! flight recorder ([`fun3d_util::telemetry::flight`]) wants to dump the
//! event log *at the moment of failure*, not after the process is gone:
//!
//! * **divergence** — the residual goes NaN/Inf, or blows up by
//!   [`AnomalyConfig::growth`] over the best residual seen so far;
//! * **stagnation** — over the trailing [`AnomalyConfig::stall_window`]
//!   steps the residual improved by less than
//!   `1 − stall_ratio` (the SER time step stops growing and the solve
//!   will burn its step budget without converging);
//! * **wall-budget overrun** — the solve exceeded
//!   [`AnomalyConfig::wall_budget_s`] seconds
//!   (or the `FUN3D_WALL_BUDGET` environment override).
//!
//! The detector is pure state-machine (no IO, no telemetry): `ptc::solve`
//! feeds it one observation per pseudo-time step and maps a firing onto a
//! flight-dump trigger. Convergence is checked *before* the detector, so
//! a solve that meets its tolerance can never be flagged.

use fun3d_util::telemetry::flight::Trigger;

/// Detection thresholds. The defaults are deliberately loose — the
/// detector's job is flagging runs that are *clearly* wrong, not tuning
/// marginal ones.
#[derive(Clone, Copy, Debug)]
pub struct AnomalyConfig {
    /// Divergence: fire when `res > growth · min(res seen so far)`.
    pub growth: f64,
    /// Stagnation window, steps; 0 disables stagnation detection.
    pub stall_window: usize,
    /// Stagnation: fire when `res > stall_ratio · res[window ago]`
    /// (i.e. less than `1 − stall_ratio` total improvement over the
    /// window).
    pub stall_ratio: f64,
    /// Wall-clock budget in seconds, if any. `FUN3D_WALL_BUDGET` (read
    /// by `ptc::solve`) overrides.
    pub wall_budget_s: Option<f64>,
}

impl Default for AnomalyConfig {
    fn default() -> Self {
        AnomalyConfig {
            growth: 1e3,
            stall_window: 25,
            stall_ratio: 0.99,
            wall_budget_s: None,
        }
    }
}

/// What the detector found, with the evidence.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Anomaly {
    /// NaN/Inf or `growth`-fold blow-up at `step`.
    Divergence {
        /// Step the residual went bad.
        step: usize,
        /// The offending residual norm.
        res: f64,
    },
    /// Residual stalled: `res` vs `ref_res` from `window` steps ago.
    Stagnation {
        /// Step the stall was established.
        step: usize,
        /// Current residual norm.
        res: f64,
        /// Residual `stall_window` steps earlier.
        ref_res: f64,
    },
    /// Wall budget exceeded at `step`.
    WallBudget {
        /// Step the budget ran out.
        step: usize,
        /// Elapsed seconds at that point.
        elapsed_s: f64,
    },
}

impl Anomaly {
    /// The flight-dump trigger this anomaly maps to.
    pub fn trigger(&self) -> Trigger {
        match self {
            Anomaly::Divergence { .. } => Trigger::Divergence,
            Anomaly::Stagnation { .. } => Trigger::Stagnation,
            Anomaly::WallBudget { .. } => Trigger::WallBudget,
        }
    }

    /// Stable slug (the trigger's), recorded in `PtcStats::anomaly`.
    pub fn slug(&self) -> &'static str {
        self.trigger().slug()
    }

    /// The step at which the anomaly fired.
    pub fn step(&self) -> usize {
        match *self {
            Anomaly::Divergence { step, .. }
            | Anomaly::Stagnation { step, .. }
            | Anomaly::WallBudget { step, .. } => step,
        }
    }

    /// The offending value (residual, or elapsed seconds for a budget
    /// overrun) — what the flight event records.
    pub fn value(&self) -> f64 {
        match *self {
            Anomaly::Divergence { res, .. } => res,
            Anomaly::Stagnation { res, .. } => res,
            Anomaly::WallBudget { elapsed_s, .. } => elapsed_s,
        }
    }
}

/// Streaming detector: feed one `(step, res, elapsed)` observation per
/// pseudo-time step via [`AnomalyDetector::observe`].
#[derive(Clone, Debug)]
pub struct AnomalyDetector {
    config: AnomalyConfig,
    /// Best (smallest) residual seen, the divergence baseline.
    best: f64,
    /// Trailing residual history, newest last, at most `stall_window + 1`.
    window: Vec<f64>,
}

impl AnomalyDetector {
    /// A fresh detector with the given thresholds.
    pub fn new(config: AnomalyConfig) -> AnomalyDetector {
        AnomalyDetector {
            config,
            best: f64::INFINITY,
            window: Vec::new(),
        }
    }

    /// Observes the residual after pseudo-time step `step` (1-based) at
    /// `elapsed_s` seconds into the solve. Returns the first anomaly the
    /// history establishes, if any. Call only for non-converged steps.
    pub fn observe(&mut self, step: usize, res: f64, elapsed_s: f64) -> Option<Anomaly> {
        // Divergence dominates: a NaN residual poisons every later test.
        if !res.is_finite() {
            return Some(Anomaly::Divergence { step, res });
        }
        if res > self.config.growth * self.best {
            return Some(Anomaly::Divergence { step, res });
        }
        self.best = self.best.min(res);

        if let Some(budget) = self.config.wall_budget_s {
            if elapsed_s > budget {
                return Some(Anomaly::WallBudget { step, elapsed_s });
            }
        }

        let w = self.config.stall_window;
        if w > 0 {
            self.window.push(res);
            if self.window.len() > w {
                let ref_res = self.window.remove(0);
                if res > self.config.stall_ratio * ref_res {
                    return Some(Anomaly::Stagnation { step, res, ref_res });
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn detector(config: AnomalyConfig) -> AnomalyDetector {
        AnomalyDetector::new(config)
    }

    #[test]
    fn clean_geometric_convergence_is_never_flagged() {
        let mut d = detector(AnomalyConfig::default());
        let mut res = 1.0;
        for step in 1..=200 {
            assert_eq!(d.observe(step, res, step as f64 * 0.01), None, "step {step}");
            res *= 0.7;
        }
    }

    #[test]
    fn nan_and_inf_fire_divergence_immediately() {
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let mut d = detector(AnomalyConfig::default());
            assert_eq!(d.observe(1, 1.0, 0.0), None);
            match d.observe(2, bad, 0.0) {
                Some(a @ Anomaly::Divergence { step: 2, .. }) => {
                    assert_eq!(a.trigger(), Trigger::Divergence);
                    assert_eq!(a.slug(), "divergence");
                }
                other => panic!("want divergence for {bad}, got {other:?}"),
            }
        }
    }

    #[test]
    fn growth_blowup_fires_divergence() {
        let mut d = detector(AnomalyConfig {
            growth: 100.0,
            ..Default::default()
        });
        assert_eq!(d.observe(1, 1.0, 0.0), None);
        assert_eq!(d.observe(2, 0.1, 0.0), None); // best = 0.1
        assert_eq!(d.observe(3, 5.0, 0.0), None); // 50x best: under threshold
        let a = d.observe(4, 20.0, 0.0).expect("200x best must fire");
        assert_eq!(a, Anomaly::Divergence { step: 4, res: 20.0 });
    }

    #[test]
    fn flat_residual_fires_stagnation_after_window() {
        let w = 10;
        let mut d = detector(AnomalyConfig {
            stall_window: w,
            stall_ratio: 0.99,
            ..Default::default()
        });
        for step in 1..=w {
            assert_eq!(d.observe(step, 0.5, 0.0), None, "window still filling");
        }
        match d.observe(w + 1, 0.5, 0.0) {
            Some(Anomaly::Stagnation { step, res, ref_res }) => {
                assert_eq!(step, w + 1);
                assert_eq!(res, 0.5);
                assert_eq!(ref_res, 0.5);
            }
            other => panic!("want stagnation, got {other:?}"),
        }
    }

    #[test]
    fn slow_but_real_progress_is_not_stagnation() {
        // 3% improvement per step is far more than 1% over any window.
        let mut d = detector(AnomalyConfig {
            stall_window: 10,
            stall_ratio: 0.99,
            ..Default::default()
        });
        let mut res = 1.0;
        for step in 1..=100 {
            assert_eq!(d.observe(step, res, 0.0), None, "step {step}");
            res *= 0.97;
        }
    }

    #[test]
    fn zero_window_disables_stagnation() {
        let mut d = detector(AnomalyConfig {
            stall_window: 0,
            ..Default::default()
        });
        for step in 1..=500 {
            assert_eq!(d.observe(step, 1.0, 0.0), None);
        }
    }

    #[test]
    fn budget_overrun_fires_wall_budget() {
        let mut d = detector(AnomalyConfig {
            wall_budget_s: Some(2.0),
            ..Default::default()
        });
        assert_eq!(d.observe(1, 1.0, 1.5), None);
        match d.observe(2, 0.9, 2.5) {
            Some(a @ Anomaly::WallBudget { step: 2, .. }) => {
                assert_eq!(a.trigger(), Trigger::WallBudget);
                assert_eq!(a.value(), 2.5);
            }
            other => panic!("want wall budget, got {other:?}"),
        }
    }

    #[test]
    fn no_budget_never_fires_wall_budget() {
        let mut d = detector(AnomalyConfig::default());
        assert_eq!(d.observe(1, 1.0, 1e9), None);
    }
}
