//! Preconditioners: identity, global ILU, and block-Jacobi (zero-overlap
//! additive Schwarz) ILU.
//!
//! The Schwarz preconditioner solves an ILU factorization *per subdomain*
//! concurrently; the paper notes this also improves flop rates serially
//! because smaller subdomain blocks stay cache-resident [14]. The ILU
//! application can run serially, level-scheduled, or with P2P sparsified
//! synchronization — the three strategies of Fig. 7.

use fun3d_sparse::{ilu, levels, p2p, Bcsr4, IluFactors, LevelSchedule, P2pProgress, P2pSchedule};
use fun3d_threads::{TeamMember, TeamSlice, ThreadPool};

/// Anything that can apply `z = M⁻¹ r`.
pub trait Preconditioner {
    /// Applies the preconditioner.
    fn apply(&self, r: &[f64], z: &mut [f64]);
    /// Scalar dimension.
    fn dim(&self) -> usize;

    /// Applies this thread's share of `z = M⁻¹ r` inside a running SPMD
    /// region. Contract: `r` is fully published (barrier/region entry)
    /// before the call, and on return `z` is fully published to every
    /// thread (implementations end with a barrier).
    ///
    /// The default routes the whole apply through the team leader —
    /// correct for any preconditioner (one thread, barrier-ordered),
    /// with zero intra-apply parallelism. Threaded TRSV preconditioners
    /// override it with team sweeps.
    ///
    /// # Safety
    /// Called concurrently by every thread of the team. Implementations
    /// must be data-race free under that pattern; the default is, because
    /// only the leader dereferences shared state between two barriers.
    unsafe fn apply_team(&self, tm: &TeamMember, r: TeamSlice, z: TeamSlice) {
        if tm.tid() == 0 {
            // SAFETY: r is published (contract); nobody else touches z
            // until the barrier below.
            unsafe {
                let rs = r.slice(0..r.len());
                let zs = z.slice_mut(0..z.len());
                self.apply(rs, zs);
            }
        }
        tm.barrier();
    }
}

/// No preconditioning: `z = r`.
pub struct IdentityPrecond(pub usize);

impl Preconditioner for IdentityPrecond {
    fn apply(&self, r: &[f64], z: &mut [f64]) {
        z.copy_from_slice(r);
    }
    fn dim(&self) -> usize {
        self.0
    }

    unsafe fn apply_team(&self, tm: &TeamMember, r: TeamSlice, z: TeamSlice) {
        crate::team::copy(tm, z, r);
        tm.barrier();
    }
}

/// How an ILU triangular solve is parallelized.
pub enum IluApply {
    /// Single-threaded sweeps.
    Serial,
    /// Level-scheduled with a barrier per level.
    Levels {
        /// Executing pool.
        pool: std::sync::Arc<ThreadPool>,
        /// Forward-sweep schedule.
        fwd: LevelSchedule,
        /// Backward-sweep schedule.
        bwd: LevelSchedule,
    },
    /// Sparsified point-to-point synchronization.
    P2p {
        /// Executing pool.
        pool: std::sync::Arc<ThreadPool>,
        /// Forward-sweep schedule.
        fwd: P2pSchedule,
        /// Backward-sweep schedule.
        bwd: P2pSchedule,
        /// Reusable forward-sweep progress counters (team applies).
        fwd_progress: P2pProgress,
        /// Reusable backward-sweep progress counters (team applies).
        bwd_progress: P2pProgress,
    },
}

/// A single global ILU preconditioner.
pub struct SerialIlu {
    /// The factors.
    pub factors: IluFactors,
    /// Application strategy.
    pub apply_mode: IluApply,
}

impl SerialIlu {
    /// Factors `a` with ILU(`fill`), serial application.
    pub fn new(a: &Bcsr4, fill: usize) -> Self {
        SerialIlu {
            factors: ilu::iluk(a, fill),
            apply_mode: IluApply::Serial,
        }
    }

    /// Upgrades the application strategy to level scheduling.
    pub fn with_levels(mut self, pool: std::sync::Arc<ThreadPool>) -> Self {
        let fwd = LevelSchedule::forward(&self.factors.l);
        let bwd = LevelSchedule::backward(&self.factors.u);
        self.apply_mode = IluApply::Levels { pool, fwd, bwd };
        self
    }

    /// Upgrades the application strategy to P2P synchronization.
    pub fn with_p2p(mut self, pool: std::sync::Arc<ThreadPool>) -> Self {
        let nt = pool.size();
        let fwd = P2pSchedule::forward(&self.factors.l, nt);
        let bwd = P2pSchedule::backward(&self.factors.u, nt);
        self.apply_mode = IluApply::P2p {
            pool,
            fwd,
            bwd,
            fwd_progress: P2pProgress::new(nt),
            bwd_progress: P2pProgress::new(nt),
        };
        self
    }
}

impl Preconditioner for SerialIlu {
    fn apply(&self, r: &[f64], z: &mut [f64]) {
        match &self.apply_mode {
            IluApply::Serial => {
                let mut y = vec![0.0; r.len()];
                fun3d_sparse::trsv::forward(&self.factors, r, &mut y);
                fun3d_sparse::trsv::backward(&self.factors, &y, z);
            }
            IluApply::Levels { pool, fwd, bwd } => {
                let x = levels::solve_levels(&self.factors, r, pool, fwd, bwd);
                z.copy_from_slice(&x);
            }
            IluApply::P2p { pool, fwd, bwd, .. } => {
                let x = p2p::solve_p2p(&self.factors, r, pool, fwd, bwd);
                z.copy_from_slice(&x);
            }
        }
    }

    fn dim(&self) -> usize {
        self.factors.nrows() * 4
    }

    unsafe fn apply_team(&self, tm: &TeamMember, r: TeamSlice, z: TeamSlice) {
        let (tid, nt) = (tm.tid(), tm.nthreads());
        match &self.apply_mode {
            // No threaded sweep available: leader applies serially.
            IluApply::Serial => {
                if tid == 0 {
                    // SAFETY: r published (contract); z untouched by the
                    // other threads until the barrier.
                    unsafe {
                        let rs = r.slice(0..r.len());
                        let zs = z.slice_mut(0..z.len());
                        self.apply(rs, zs);
                    }
                }
                tm.barrier();
            }
            // Level-scheduled sweeps inside the caller's region. The
            // forward solve writes z from r; the backward solve runs in
            // place z→z (row i's input is read before its output is
            // stored, so it is bitwise identical to the out-of-place
            // pooled path). Both sweeps end with a level barrier, so z is
            // published on return.
            IluApply::Levels { fwd, bwd, .. } => {
                let barrier = tm.team().barrier();
                levels::forward_levels_team(&self.factors, r, z, tid, nt, fwd, barrier);
                levels::backward_levels_team(&self.factors, z, z, tid, nt, bwd, barrier);
            }
            // P2P sweeps: reset own counters, publish the resets with a
            // barrier, sweep; barrier between the sweeps because forward
            // ownership and backward ownership partition the rows
            // differently, and after, to publish z.
            IluApply::P2p {
                fwd,
                bwd,
                fwd_progress,
                bwd_progress,
                ..
            } => {
                assert_eq!(nt, fwd.nthreads());
                fwd_progress.reset_mine(tid);
                bwd_progress.reset_mine(tid);
                tm.barrier();
                p2p::forward_p2p_team(&self.factors, r, z, tid, fwd, fwd_progress);
                tm.barrier();
                p2p::backward_p2p_team(&self.factors, z, z, tid, bwd, bwd_progress);
                tm.barrier();
            }
        }
    }
}

/// Block-Jacobi / zero-overlap additive Schwarz: the matrix rows are
/// grouped into subdomains; each subdomain's diagonal block is factored
/// with ILU and solved independently (couplings between subdomains are
/// dropped from the preconditioner, as in PETSc's `PCBJACOBI` + `PCILU`).
pub struct BlockJacobiIlu {
    /// Per-subdomain factors of the local diagonal block.
    pub locals: Vec<IluFactors>,
    /// Block-row ranges of each subdomain (contiguous after reordering).
    pub ranges: Vec<std::ops::Range<usize>>,
    dim: usize,
}

impl BlockJacobiIlu {
    /// Builds from a matrix and a list of contiguous block-row ranges
    /// covering `0..a.nrows()`.
    pub fn new(a: &Bcsr4, ranges: Vec<std::ops::Range<usize>>, fill: usize) -> Self {
        let mut locals = Vec::with_capacity(ranges.len());
        for r in &ranges {
            let local = extract_diagonal_block(a, r.clone());
            locals.push(ilu::iluk(&local, fill));
        }
        BlockJacobiIlu {
            locals,
            ranges,
            dim: a.dim(),
        }
    }

    /// Splits `nrows` into `k` near-equal contiguous subdomains.
    pub fn even_ranges(nrows: usize, k: usize) -> Vec<std::ops::Range<usize>> {
        (0..k).map(|t| fun3d_threads::chunk_range(nrows, k, t)).collect()
    }
}

/// Extracts the square diagonal sub-block of `a` for the given contiguous
/// block-row range, renumbering columns locally.
fn extract_diagonal_block(a: &Bcsr4, range: std::ops::Range<usize>) -> Bcsr4 {
    let lo = range.start as u32;
    let hi = range.end as u32;
    let cols: Vec<Vec<u32>> = range
        .clone()
        .map(|r| {
            a.col_idx[a.row_ptr[r]..a.row_ptr[r + 1]]
                .iter()
                .copied()
                .filter(|&c| c >= lo && c < hi)
                .map(|c| c - lo)
                .collect()
        })
        .collect();
    let mut local = Bcsr4::from_pattern(&cols);
    for (lr, r) in range.clone().enumerate() {
        for k in a.row_ptr[r]..a.row_ptr[r + 1] {
            let c = a.col_idx[k];
            if c >= lo && c < hi {
                let lk = local.find(lr, c - lo).unwrap();
                local.blocks[lk * 16..(lk + 1) * 16]
                    .copy_from_slice(&a.blocks[k * 16..(k + 1) * 16]);
            }
        }
    }
    local
}

impl Preconditioner for BlockJacobiIlu {
    fn apply(&self, r: &[f64], z: &mut [f64]) {
        for (local, range) in self.locals.iter().zip(&self.ranges) {
            let s = range.start * 4..range.end * 4;
            let x = fun3d_sparse::trsv::solve(local, &r[s.clone()]);
            z[s].copy_from_slice(&x);
        }
    }

    fn dim(&self) -> usize {
        self.dim
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mesh_matrix(seed: u64) -> Bcsr4 {
        let m = fun3d_mesh::generator::MeshPreset::Tiny.build();
        let mut a = Bcsr4::from_edges(m.nvertices(), &m.edges());
        a.fill_diag_dominant(seed);
        a
    }

    fn residual_reduction(a: &Bcsr4, p: &dyn Preconditioner) -> f64 {
        // one Richardson step: how much does M⁻¹ shrink the error of Ax=b?
        let n = a.dim();
        let xref: Vec<f64> = (0..n).map(|i| (i as f64 * 0.21).sin()).collect();
        let mut b = vec![0.0; n];
        a.spmv(&xref, &mut b);
        let mut z = vec![0.0; n];
        p.apply(&b, &mut z); // z ≈ xref
        let err: f64 = z
            .iter()
            .zip(&xref)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            .sqrt();
        let norm: f64 = xref.iter().map(|v| v * v).sum::<f64>().sqrt();
        err / norm
    }

    #[test]
    fn identity_copies() {
        let p = IdentityPrecond(4);
        let r = vec![1.0, 2.0, 3.0, 4.0];
        let mut z = vec![0.0; 4];
        p.apply(&r, &mut z);
        assert_eq!(z, r);
        assert_eq!(p.dim(), 4);
    }

    #[test]
    fn global_ilu_is_strong() {
        let a = mesh_matrix(61);
        let p = SerialIlu::new(&a, 0);
        assert!(residual_reduction(&a, &p) < 0.3);
    }

    #[test]
    fn ilu1_stronger_than_ilu0() {
        let a = mesh_matrix(62);
        let r0 = residual_reduction(&a, &SerialIlu::new(&a, 0));
        let r1 = residual_reduction(&a, &SerialIlu::new(&a, 1));
        assert!(r1 < r0, "ILU(1) {r1} should beat ILU(0) {r0}");
    }

    #[test]
    fn block_jacobi_weaker_than_global_but_usable() {
        let a = mesh_matrix(63);
        let global = residual_reduction(&a, &SerialIlu::new(&a, 0));
        let ranges = BlockJacobiIlu::even_ranges(a.nrows(), 4);
        let bj = BlockJacobiIlu::new(&a, ranges, 0);
        let blocked = residual_reduction(&a, &bj);
        assert!(blocked < 0.9, "block-Jacobi too weak: {blocked}");
        assert!(
            blocked >= global * 0.5,
            "sanity: dropping couplings should not *improve* much"
        );
    }

    #[test]
    fn threaded_applications_match_serial() {
        let a = mesh_matrix(64);
        let n = a.dim();
        let r: Vec<f64> = (0..n).map(|i| (i as f64 * 0.13).cos()).collect();
        let serial = SerialIlu::new(&a, 1);
        let mut z0 = vec![0.0; n];
        serial.apply(&r, &mut z0);
        let pool = std::sync::Arc::new(ThreadPool::new(3));
        let lv = SerialIlu::new(&a, 1).with_levels(pool.clone());
        let mut z1 = vec![0.0; n];
        lv.apply(&r, &mut z1);
        assert_eq!(z0, z1, "level-scheduled apply differs");
        let pp = SerialIlu::new(&a, 1).with_p2p(pool);
        let mut z2 = vec![0.0; n];
        pp.apply(&r, &mut z2);
        assert_eq!(z0, z2, "p2p apply differs");
    }

    #[test]
    fn even_ranges_cover() {
        let ranges = BlockJacobiIlu::even_ranges(10, 3);
        assert_eq!(ranges.len(), 3);
        assert_eq!(ranges[0].start, 0);
        assert_eq!(ranges.last().unwrap().end, 10);
    }

    #[test]
    fn extract_diagonal_block_values() {
        let a = mesh_matrix(65);
        let sub = extract_diagonal_block(&a, 2..5);
        assert_eq!(sub.nrows(), 3);
        // diagonal blocks must match the original
        for (lr, r) in (2..5).enumerate() {
            let orig = a.find(r, r as u32).unwrap();
            let loc = sub.find(lr, lr as u32).unwrap();
            assert_eq!(a.block(orig), sub.block(loc));
        }
    }
}
