//! Mesh statistics, mirroring the quantities the paper's Table I reports.

use crate::{Graph, Mesh};

/// Headline statistics of a mesh.
#[derive(Clone, Copy, Debug)]
pub struct MeshStats {
    /// Number of vertices.
    pub nvertices: usize,
    /// Number of unique edges.
    pub nedges: usize,
    /// Number of tetrahedra.
    pub ntets: usize,
    /// Number of boundary triangles.
    pub nboundary: usize,
    /// Average vertex degree (2·edges / vertices).
    pub avg_degree: f64,
    /// Maximum vertex degree.
    pub max_degree: usize,
    /// Graph bandwidth of the current numbering.
    pub bandwidth: usize,
}

impl MeshStats {
    /// Computes statistics for a mesh.
    pub fn of(mesh: &Mesh) -> MeshStats {
        let edges = mesh.edges();
        let graph = Graph::from_edges(mesh.nvertices(), &edges);
        MeshStats {
            nvertices: mesh.nvertices(),
            nedges: edges.len(),
            ntets: mesh.ntets(),
            nboundary: mesh.boundary.len(),
            avg_degree: 2.0 * edges.len() as f64 / mesh.nvertices().max(1) as f64,
            max_degree: graph.max_degree(),
            bandwidth: graph.bandwidth(),
        }
    }
}

impl std::fmt::Display for MeshStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "vertices={} edges={} tets={} boundary-tris={} avg-deg={:.2} max-deg={} bandwidth={}",
            self.nvertices,
            self.nedges,
            self.ntets,
            self.nboundary,
            self.avg_degree,
            self.max_degree,
            self.bandwidth
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::MeshPreset;

    #[test]
    fn stats_of_tiny_mesh() {
        let m = MeshPreset::Tiny.build();
        let s = MeshStats::of(&m);
        assert_eq!(s.nvertices, m.nvertices());
        assert_eq!(s.ntets, m.ntets());
        assert!(s.nedges > s.nvertices);
        assert!(s.avg_degree > 5.0 && s.avg_degree < 15.0);
        assert!(s.max_degree >= 14, "Kuhn interior degree is 14");
        assert!(s.nboundary > 0);
    }

    #[test]
    fn display_mentions_all_fields() {
        let m = MeshPreset::Tiny.build();
        let text = MeshStats::of(&m).to_string();
        for key in ["vertices=", "edges=", "tets=", "bandwidth="] {
            assert!(text.contains(key), "missing {key} in {text}");
        }
    }
}
