//! Compressed sparse row (CSR) adjacency graphs.
//!
//! Used for vertex adjacency (RCM reordering, partitioning) and as the
//! symbolic pattern backing the block-sparse Jacobian.

/// An undirected graph in CSR form: neighbors of `v` are
/// `adj[xadj[v]..xadj[v+1]]`, stored sorted; every edge appears in both
/// endpoint lists.
#[derive(Clone, Debug, PartialEq)]
pub struct Graph {
    /// Row pointers, length `n + 1`.
    pub xadj: Vec<usize>,
    /// Concatenated sorted neighbor lists.
    pub adj: Vec<u32>,
}

impl Graph {
    /// Builds the CSR adjacency from a deduplicated undirected edge list.
    pub fn from_edges(nvertices: usize, edges: &[[u32; 2]]) -> Self {
        let mut degree = vec![0usize; nvertices];
        for e in edges {
            degree[e[0] as usize] += 1;
            degree[e[1] as usize] += 1;
        }
        let mut xadj = vec![0usize; nvertices + 1];
        for v in 0..nvertices {
            xadj[v + 1] = xadj[v] + degree[v];
        }
        let mut adj = vec![0u32; xadj[nvertices]];
        let mut cursor = xadj.clone();
        for e in edges {
            let (u, v) = (e[0] as usize, e[1] as usize);
            adj[cursor[u]] = e[1];
            cursor[u] += 1;
            adj[cursor[v]] = e[0];
            cursor[v] += 1;
        }
        for v in 0..nvertices {
            adj[xadj[v]..xadj[v + 1]].sort_unstable();
        }
        Graph { xadj, adj }
    }

    /// Number of vertices.
    pub fn nvertices(&self) -> usize {
        self.xadj.len() - 1
    }

    /// Number of undirected edges.
    pub fn nedges(&self) -> usize {
        self.adj.len() / 2
    }

    /// Sorted neighbor list of `v`.
    #[inline]
    pub fn neighbors(&self, v: usize) -> &[u32] {
        &self.adj[self.xadj[v]..self.xadj[v + 1]]
    }

    /// Degree of `v`.
    #[inline]
    pub fn degree(&self, v: usize) -> usize {
        self.xadj[v + 1] - self.xadj[v]
    }

    /// Maximum degree over all vertices (0 for an empty graph).
    pub fn max_degree(&self) -> usize {
        (0..self.nvertices()).map(|v| self.degree(v)).max().unwrap_or(0)
    }

    /// The graph bandwidth: `max |u - v|` over edges. A proxy for data
    /// locality of edge loops — RCM exists to shrink it.
    pub fn bandwidth(&self) -> usize {
        let mut bw = 0usize;
        for v in 0..self.nvertices() {
            for &u in self.neighbors(v) {
                bw = bw.max((u as usize).abs_diff(v));
            }
        }
        bw
    }

    /// Induced subgraph renumbering helper: true if `u` and `v` are
    /// adjacent (binary search on the sorted neighbor list).
    pub fn connected(&self, u: usize, v: usize) -> bool {
        self.neighbors(u).binary_search(&(v as u32)).is_ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path4() -> Graph {
        Graph::from_edges(4, &[[0, 1], [1, 2], [2, 3]])
    }

    #[test]
    fn csr_structure() {
        let g = path4();
        assert_eq!(g.nvertices(), 4);
        assert_eq!(g.nedges(), 3);
        assert_eq!(g.neighbors(0), &[1]);
        assert_eq!(g.neighbors(1), &[0, 2]);
        assert_eq!(g.neighbors(2), &[1, 3]);
        assert_eq!(g.degree(1), 2);
        assert_eq!(g.max_degree(), 2);
    }

    #[test]
    fn neighbors_sorted() {
        let g = Graph::from_edges(5, &[[4, 0], [0, 2], [1, 0], [0, 3]]);
        assert_eq!(g.neighbors(0), &[1, 2, 3, 4]);
    }

    #[test]
    fn bandwidth_of_path_and_star() {
        assert_eq!(path4().bandwidth(), 1);
        let star = Graph::from_edges(5, &[[0, 4], [1, 4], [2, 4], [3, 4]]);
        assert_eq!(star.bandwidth(), 4);
    }

    #[test]
    fn connected_queries() {
        let g = path4();
        assert!(g.connected(0, 1));
        assert!(g.connected(1, 0));
        assert!(!g.connected(0, 2));
    }

    #[test]
    fn isolated_vertices_allowed() {
        let g = Graph::from_edges(3, &[]);
        assert_eq!(g.nedges(), 0);
        assert_eq!(g.degree(1), 0);
        assert_eq!(g.max_degree(), 0);
        assert_eq!(g.bandwidth(), 0);
    }
}
