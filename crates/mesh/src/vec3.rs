//! Minimal 3-vector used for coordinates, normals and velocities.

use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// A 3-component `f64` vector.
#[derive(Clone, Copy, Debug, PartialEq, Default)]
pub struct Vec3 {
    /// x component.
    pub x: f64,
    /// y component.
    pub y: f64,
    /// z component.
    pub z: f64,
}

impl Vec3 {
    /// The zero vector.
    pub const ZERO: Vec3 = Vec3 { x: 0.0, y: 0.0, z: 0.0 };

    /// Constructs from components.
    #[inline]
    pub const fn new(x: f64, y: f64, z: f64) -> Self {
        Vec3 { x, y, z }
    }

    /// Dot product.
    #[inline]
    pub fn dot(self, o: Vec3) -> f64 {
        self.x * o.x + self.y * o.y + self.z * o.z
    }

    /// Cross product.
    #[inline]
    pub fn cross(self, o: Vec3) -> Vec3 {
        Vec3 {
            x: self.y * o.z - self.z * o.y,
            y: self.z * o.x - self.x * o.z,
            z: self.x * o.y - self.y * o.x,
        }
    }

    /// Euclidean norm.
    #[inline]
    pub fn norm(self) -> f64 {
        self.dot(self).sqrt()
    }

    /// Squared norm.
    #[inline]
    pub fn norm2(self) -> f64 {
        self.dot(self)
    }

    /// Unit vector in the same direction; panics on the zero vector in
    /// debug builds, returns zero in release (callers check area first).
    #[inline]
    pub fn normalized(self) -> Vec3 {
        let n = self.norm();
        debug_assert!(n > 0.0, "normalizing the zero vector");
        if n > 0.0 {
            self / n
        } else {
            Vec3::ZERO
        }
    }

    /// Component array `[x, y, z]`.
    #[inline]
    pub fn to_array(self) -> [f64; 3] {
        [self.x, self.y, self.z]
    }
}

impl From<[f64; 3]> for Vec3 {
    fn from(a: [f64; 3]) -> Self {
        Vec3::new(a[0], a[1], a[2])
    }
}

impl Add for Vec3 {
    type Output = Vec3;
    #[inline]
    fn add(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x + o.x, self.y + o.y, self.z + o.z)
    }
}

impl Sub for Vec3 {
    type Output = Vec3;
    #[inline]
    fn sub(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x - o.x, self.y - o.y, self.z - o.z)
    }
}

impl AddAssign for Vec3 {
    #[inline]
    fn add_assign(&mut self, o: Vec3) {
        *self = *self + o;
    }
}

impl SubAssign for Vec3 {
    #[inline]
    fn sub_assign(&mut self, o: Vec3) {
        *self = *self - o;
    }
}

impl Mul<f64> for Vec3 {
    type Output = Vec3;
    #[inline]
    fn mul(self, s: f64) -> Vec3 {
        Vec3::new(self.x * s, self.y * s, self.z * s)
    }
}

impl Mul<Vec3> for f64 {
    type Output = Vec3;
    #[inline]
    fn mul(self, v: Vec3) -> Vec3 {
        v * self
    }
}

impl Div<f64> for Vec3 {
    type Output = Vec3;
    #[inline]
    fn div(self, s: f64) -> Vec3 {
        Vec3::new(self.x / s, self.y / s, self.z / s)
    }
}

impl Neg for Vec3 {
    type Output = Vec3;
    #[inline]
    fn neg(self) -> Vec3 {
        Vec3::new(-self.x, -self.y, -self.z)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_and_cross_orthonormal_basis() {
        let ex = Vec3::new(1.0, 0.0, 0.0);
        let ey = Vec3::new(0.0, 1.0, 0.0);
        let ez = Vec3::new(0.0, 0.0, 1.0);
        assert_eq!(ex.dot(ey), 0.0);
        assert_eq!(ex.cross(ey), ez);
        assert_eq!(ey.cross(ez), ex);
        assert_eq!(ez.cross(ex), ey);
    }

    #[test]
    fn cross_is_antisymmetric() {
        let a = Vec3::new(1.0, 2.0, 3.0);
        let b = Vec3::new(-4.0, 0.5, 2.0);
        assert_eq!(a.cross(b), -(b.cross(a)));
        assert!(a.cross(b).dot(a).abs() < 1e-14);
        assert!(a.cross(b).dot(b).abs() < 1e-14);
    }

    #[test]
    fn norm_and_normalized() {
        let v = Vec3::new(3.0, 4.0, 0.0);
        assert_eq!(v.norm(), 5.0);
        assert_eq!(v.norm2(), 25.0);
        let u = v.normalized();
        assert!((u.norm() - 1.0).abs() < 1e-15);
    }

    #[test]
    fn arithmetic() {
        let a = Vec3::new(1.0, 2.0, 3.0);
        let b = Vec3::new(0.5, 0.5, 0.5);
        assert_eq!(a + b, Vec3::new(1.5, 2.5, 3.5));
        assert_eq!(a - b, Vec3::new(0.5, 1.5, 2.5));
        assert_eq!(a * 2.0, Vec3::new(2.0, 4.0, 6.0));
        assert_eq!(2.0 * a, a * 2.0);
        assert_eq!(a / 2.0, Vec3::new(0.5, 1.0, 1.5));
        let mut c = a;
        c += b;
        c -= b;
        assert_eq!(c, a);
    }

    #[test]
    fn conversions() {
        let v = Vec3::from([1.0, 2.0, 3.0]);
        assert_eq!(v.to_array(), [1.0, 2.0, 3.0]);
    }
}
