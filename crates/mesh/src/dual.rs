//! Median-dual control-volume metrics.
//!
//! For a vertex-centered scheme the control volume of vertex `v` is its
//! median-dual cell: inside each incident tet, the region bounded by the
//! planes through edge midpoints, face centroids and the tet centroid.
//! Three geometric quantities drive the discretization:
//!
//! * **edge dual-face area vectors** `s_e`: the directed area of the dual
//!   face crossed by edge `e = (a, b)`, oriented from `a` to `b`. Each tet
//!   containing the edge contributes the quadrilateral (edge midpoint →
//!   face centroid → tet centroid → other face centroid);
//! * **vertex dual volumes** `V_v`: each tet donates a quarter of its
//!   volume to each of its vertices (exact for the median dual);
//! * **boundary vertex normals**: each outward-wound boundary triangle
//!   donates a third of its directed area to each of its vertices, split
//!   per BC tag.
//!
//! The discrete Gauss identity ties them together: for every vertex,
//! `Σ_out s_e − Σ_in s_e + n_bnd(v) = 0`. Free-stream preservation of the
//! flux scheme is a corollary, and the property tests below enforce it.

use crate::{BcTag, Mesh, Vec3};

/// Signed volume of the tet `(a, b, c, d)`; positive when `d` lies on the
/// positive side of triangle `(a, b, c)`.
#[inline]
pub fn tet_volume(a: Vec3, b: Vec3, c: Vec3, d: Vec3) -> f64 {
    (b - a).cross(c - a).dot(d - a) / 6.0
}

/// Directed area of triangle `(a, b, c)` (right-hand rule, magnitude =
/// area).
#[inline]
pub fn tri_area_vec(a: Vec3, b: Vec3, c: Vec3) -> Vec3 {
    (b - a).cross(c - a) * 0.5
}

/// Per-vertex aggregated boundary normal for one BC tag.
#[derive(Clone, Copy, Debug)]
pub struct BoundaryNormal {
    /// Vertex index.
    pub vertex: u32,
    /// Outward area-weighted normal (sum of tri-area/3 contributions).
    pub normal: Vec3,
    /// Which boundary this belongs to.
    pub tag: BcTag,
}

/// The median-dual metric data for a tetrahedral mesh.
#[derive(Clone, Debug)]
pub struct DualMesh {
    /// Unique mesh edges `[lo, hi]`, `lo < hi`, lexicographically sorted.
    pub edges: Vec<[u32; 2]>,
    /// Directed dual-face area per edge, oriented `lo → hi`.
    pub edge_normal: Vec<Vec3>,
    /// Median-dual volume per vertex.
    pub vol: Vec<f64>,
    /// Aggregated outward boundary normals, one entry per (vertex, tag)
    /// pair that occurs on the boundary.
    pub boundary: Vec<BoundaryNormal>,
}

/// The six edges of a tet in local indices, each quadruple
/// `(i, j, k, l)` an even permutation of `(0, 1, 2, 3)`; `k` and `l`
/// identify the two faces `(i, j, k)` and `(i, j, l)` flanking the edge.
const TET_EDGES: [[usize; 4]; 6] = [
    [0, 1, 2, 3],
    [0, 2, 3, 1],
    [0, 3, 1, 2],
    [1, 2, 0, 3],
    [1, 3, 2, 0],
    [2, 3, 0, 1],
];

impl DualMesh {
    /// Computes all dual metrics for `mesh`. Tets with non-positive volume
    /// are re-oriented on the fly (the generator always produces positive
    /// tets, but external meshes may not).
    pub fn build(mesh: &Mesh) -> DualMesh {
        let edges = mesh.edges();
        let edge_index = EdgeIndex::new(&edges, mesh.nvertices());
        let mut edge_normal = vec![Vec3::ZERO; edges.len()];
        let mut vol = vec![0.0; mesh.nvertices()];

        for tet in &mesh.tets {
            let mut t = *tet;
            let mut p = [
                mesh.coords[t[0] as usize],
                mesh.coords[t[1] as usize],
                mesh.coords[t[2] as usize],
                mesh.coords[t[3] as usize],
            ];
            let mut v6 = tet_volume(p[0], p[1], p[2], p[3]);
            if v6 < 0.0 {
                t.swap(2, 3);
                p.swap(2, 3);
                v6 = -v6;
            }
            let quarter = v6 / 4.0;
            for &vi in &t {
                vol[vi as usize] += quarter;
            }
            let centroid = (p[0] + p[1] + p[2] + p[3]) / 4.0;
            for le in &TET_EDGES {
                let (i, j, k, l) = (le[0], le[1], le[2], le[3]);
                let m = (p[i] + p[j]) * 0.5;
                let g1 = (p[i] + p[j] + p[k]) / 3.0;
                let g2 = (p[i] + p[j] + p[l]) / 3.0;
                // Directed area of the planar-fan quad m → g1 → c → g2,
                // oriented from local vertex i toward j for an even
                // permutation (validated by the closure tests).
                let area = tri_area_vec(m, g1, centroid) + tri_area_vec(m, centroid, g2);
                let (a, b) = (t[i], t[j]);
                let (eid, flip) = edge_index.lookup(a, b);
                edge_normal[eid] += if flip { -area } else { area };
            }
        }

        let boundary = aggregate_boundary(mesh);

        DualMesh {
            edges,
            edge_normal,
            vol,
            boundary,
        }
    }

    /// Number of edges.
    pub fn nedges(&self) -> usize {
        self.edges.len()
    }

    /// Number of vertices.
    pub fn nvertices(&self) -> usize {
        self.vol.len()
    }

    /// Maximum closure defect `‖Σ s_e + n_bnd‖` over all vertices; zero up
    /// to rounding for a valid mesh. Exposed so integration tests and the
    /// generator's self-check can assert mesh validity.
    pub fn max_closure_defect(&self) -> f64 {
        let mut defect = vec![Vec3::ZERO; self.nvertices()];
        for (e, &n) in self.edges.iter().zip(&self.edge_normal) {
            defect[e[0] as usize] += n;
            defect[e[1] as usize] -= n;
        }
        for b in &self.boundary {
            defect[b.vertex as usize] += b.normal;
        }
        defect.iter().map(|d| d.norm()).fold(0.0, f64::max)
    }
}

/// Maps an unordered vertex pair to its edge id, via per-vertex sorted
/// neighbor lists (CSR); O(log degree) per lookup.
struct EdgeIndex {
    xadj: Vec<usize>,
    adj: Vec<u32>,
    eid: Vec<usize>,
}

impl EdgeIndex {
    fn new(edges: &[[u32; 2]], nvertices: usize) -> Self {
        // Only the lo→hi direction is stored: lookups normalize first.
        let mut degree = vec![0usize; nvertices];
        for e in edges {
            degree[e[0] as usize] += 1;
        }
        let mut xadj = vec![0usize; nvertices + 1];
        for v in 0..nvertices {
            xadj[v + 1] = xadj[v] + degree[v];
        }
        let mut adj = vec![0u32; edges.len()];
        let mut eid = vec![0usize; edges.len()];
        let mut cursor = xadj.clone();
        for (id, e) in edges.iter().enumerate() {
            let lo = e[0] as usize;
            adj[cursor[lo]] = e[1];
            eid[cursor[lo]] = id;
            cursor[lo] += 1;
        }
        // edges are lexicographically sorted, so each bucket is sorted too.
        EdgeIndex { xadj, adj, eid }
    }

    /// Returns `(edge id, flipped)` where `flipped` is true when the query
    /// direction `a→b` is opposite the stored `lo→hi` orientation.
    fn lookup(&self, a: u32, b: u32) -> (usize, bool) {
        let (lo, hi, flip) = if a < b { (a, b, false) } else { (b, a, true) };
        let lo = lo as usize;
        let bucket = &self.adj[self.xadj[lo]..self.xadj[lo + 1]];
        let k = bucket.binary_search(&hi).expect("edge must exist");
        (self.eid[self.xadj[lo] + k], flip)
    }
}

fn aggregate_boundary(mesh: &Mesh) -> Vec<BoundaryNormal> {
    use std::collections::HashMap;
    let mut acc: HashMap<(u32, BcTag), Vec3> = HashMap::new();
    for tri in &mesh.boundary {
        let a = mesh.coords[tri.verts[0] as usize];
        let b = mesh.coords[tri.verts[1] as usize];
        let c = mesh.coords[tri.verts[2] as usize];
        let third = tri_area_vec(a, b, c) / 3.0;
        for &v in &tri.verts {
            *acc.entry((v, tri.tag)).or_insert(Vec3::ZERO) += third;
        }
    }
    let mut out: Vec<BoundaryNormal> = acc
        .into_iter()
        .map(|((vertex, tag), normal)| BoundaryNormal { vertex, normal, tag })
        .collect();
    out.sort_by_key(|b| (b.vertex, b.tag as u8));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::single_tet;

    #[test]
    fn tet_volume_reference() {
        let a = Vec3::new(0.0, 0.0, 0.0);
        let b = Vec3::new(1.0, 0.0, 0.0);
        let c = Vec3::new(0.0, 1.0, 0.0);
        let d = Vec3::new(0.0, 0.0, 1.0);
        assert!((tet_volume(a, b, c, d) - 1.0 / 6.0).abs() < 1e-15);
        assert!((tet_volume(a, c, b, d) + 1.0 / 6.0).abs() < 1e-15);
    }

    #[test]
    fn tri_area_reference() {
        let a = Vec3::ZERO;
        let b = Vec3::new(1.0, 0.0, 0.0);
        let c = Vec3::new(0.0, 1.0, 0.0);
        let s = tri_area_vec(a, b, c);
        assert_eq!(s, Vec3::new(0.0, 0.0, 0.5));
    }

    #[test]
    fn dual_volumes_sum_to_mesh_volume() {
        let m = single_tet();
        let d = DualMesh::build(&m);
        let total: f64 = d.vol.iter().sum();
        assert!((total - m.total_volume()).abs() < 1e-14);
        // Median dual on a single tet: each vertex gets exactly a quarter.
        for &v in &d.vol {
            assert!((v - m.total_volume() / 4.0).abs() < 1e-14);
        }
    }

    #[test]
    fn edge_normals_oriented_lo_to_hi() {
        // For the reference tet, each dual face normal must have positive
        // dot product with the edge direction lo → hi.
        let m = single_tet();
        let d = DualMesh::build(&m);
        for (e, &n) in d.edges.iter().zip(&d.edge_normal) {
            let dir = m.coords[e[1] as usize] - m.coords[e[0] as usize];
            assert!(
                n.dot(dir) > 0.0,
                "edge {e:?} normal {n:?} points against the edge"
            );
        }
    }

    #[test]
    fn closure_identity_single_tet() {
        let m = single_tet();
        let d = DualMesh::build(&m);
        assert!(
            d.max_closure_defect() < 1e-13,
            "defect {}",
            d.max_closure_defect()
        );
    }

    #[test]
    fn closure_identity_two_tets() {
        // Two tets glued on a face; boundary = the 6 outer faces.
        use crate::BoundaryTri;
        let coords = vec![
            Vec3::new(0.0, 0.0, 0.0),
            Vec3::new(1.0, 0.0, 0.0),
            Vec3::new(0.0, 1.0, 0.0),
            Vec3::new(0.0, 0.0, 1.0),
            Vec3::new(1.0, 1.0, 1.0),
        ];
        let tets = vec![[0, 1, 2, 3], [1, 2, 3, 4]];
        // Verify orientations are positive before trusting windings.
        for t in &tets {
            assert!(
                tet_volume(
                    coords[t[0] as usize],
                    coords[t[1] as usize],
                    coords[t[2] as usize],
                    coords[t[3] as usize]
                ) > 0.0
            );
        }
        let boundary = vec![
            BoundaryTri { verts: [0, 2, 1], tag: BcTag::SlipWall },
            BoundaryTri { verts: [0, 1, 3], tag: BcTag::SlipWall },
            BoundaryTri { verts: [0, 3, 2], tag: BcTag::SlipWall },
            BoundaryTri { verts: [1, 2, 4], tag: BcTag::SlipWall },
            BoundaryTri { verts: [1, 4, 3], tag: BcTag::SlipWall },
            BoundaryTri { verts: [2, 3, 4], tag: BcTag::SlipWall },
        ];
        let m = Mesh { coords, tets, boundary };
        let d = DualMesh::build(&m);
        assert!(
            d.max_closure_defect() < 1e-13,
            "defect {}",
            d.max_closure_defect()
        );
        let total: f64 = d.vol.iter().sum();
        assert!((total - m.total_volume()).abs() < 1e-14);
    }

    #[test]
    fn negative_tet_reoriented() {
        // Same single tet but stored with negative orientation: metrics
        // must come out identical.
        let mut m = single_tet();
        let good = DualMesh::build(&m);
        m.tets[0] = [0, 2, 1, 3];
        let fixed = DualMesh::build(&m);
        let total: f64 = fixed.vol.iter().sum();
        assert!((total - 1.0 / 6.0).abs() < 1e-14);
        for (a, b) in good.edge_normal.iter().zip(&fixed.edge_normal) {
            assert!((*a - *b).norm() < 1e-14);
        }
    }

    #[test]
    fn boundary_normals_aggregate_per_tag() {
        let m = single_tet();
        let d = DualMesh::build(&m);
        // Every vertex lies on the boundary; total outward area over all
        // vertices equals total surface area vector = 0 for a closed body.
        let sum = d
            .boundary
            .iter()
            .fold(Vec3::ZERO, |acc, b| acc + b.normal);
        assert!(sum.norm() < 1e-14);
    }
}
