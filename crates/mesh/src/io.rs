//! Plain-text mesh file I/O.
//!
//! A minimal, self-describing format so externally generated meshes can
//! be fed to the solver (and our synthetic meshes can be exported for
//! inspection). Line-oriented, whitespace-separated:
//!
//! ```text
//! fun3d-rs-mesh 1
//! vertices <n>
//! <x> <y> <z>            # n lines
//! tets <m>
//! <a> <b> <c> <d>        # m lines
//! boundary <k>
//! <a> <b> <c> <tag>      # k lines; tag ∈ {farfield, slipwall, symmetry}
//! ```

use crate::{BcTag, BoundaryTri, Mesh, Vec3};
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

/// Errors from reading a mesh file.
#[derive(Debug)]
pub enum MeshIoError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Structural or numeric problem, with a line number (1-based).
    Parse(usize, String),
}

impl std::fmt::Display for MeshIoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MeshIoError::Io(e) => write!(f, "mesh io: {e}"),
            MeshIoError::Parse(line, msg) => write!(f, "mesh parse (line {line}): {msg}"),
        }
    }
}

impl std::error::Error for MeshIoError {}

impl From<std::io::Error> for MeshIoError {
    fn from(e: std::io::Error) -> Self {
        MeshIoError::Io(e)
    }
}

fn tag_name(tag: BcTag) -> &'static str {
    match tag {
        BcTag::FarField => "farfield",
        BcTag::SlipWall => "slipwall",
        BcTag::Symmetry => "symmetry",
    }
}

fn parse_tag(s: &str, line: usize) -> Result<BcTag, MeshIoError> {
    match s {
        "farfield" => Ok(BcTag::FarField),
        "slipwall" => Ok(BcTag::SlipWall),
        "symmetry" => Ok(BcTag::Symmetry),
        other => Err(MeshIoError::Parse(line, format!("unknown tag '{other}'"))),
    }
}

/// Writes a mesh to any writer.
pub fn write_mesh<W: Write>(mesh: &Mesh, w: W) -> std::io::Result<()> {
    let mut w = BufWriter::new(w);
    writeln!(w, "fun3d-rs-mesh 1")?;
    writeln!(w, "vertices {}", mesh.nvertices())?;
    for c in &mesh.coords {
        writeln!(w, "{:.17e} {:.17e} {:.17e}", c.x, c.y, c.z)?;
    }
    writeln!(w, "tets {}", mesh.ntets())?;
    for t in &mesh.tets {
        writeln!(w, "{} {} {} {}", t[0], t[1], t[2], t[3])?;
    }
    writeln!(w, "boundary {}", mesh.boundary.len())?;
    for b in &mesh.boundary {
        writeln!(
            w,
            "{} {} {} {}",
            b.verts[0],
            b.verts[1],
            b.verts[2],
            tag_name(b.tag)
        )?;
    }
    w.flush()
}

/// Writes a mesh to a file path.
pub fn save(mesh: &Mesh, path: &Path) -> std::io::Result<()> {
    write_mesh(mesh, std::fs::File::create(path)?)
}

/// Reads a mesh from any reader.
pub fn read_mesh<R: Read>(r: R) -> Result<Mesh, MeshIoError> {
    let reader = BufReader::new(r);
    let mut lines = reader.lines().enumerate();
    let mut next = |what: &str| -> Result<(usize, String), MeshIoError> {
        loop {
            match lines.next() {
                None => {
                    return Err(MeshIoError::Parse(0, format!("unexpected EOF expecting {what}")))
                }
                Some((i, line)) => {
                    let line = line?;
                    let trimmed = line.split('#').next().unwrap_or("").trim().to_string();
                    if !trimmed.is_empty() {
                        return Ok((i + 1, trimmed));
                    }
                }
            }
        }
    };

    let (ln, header) = next("header")?;
    if header != "fun3d-rs-mesh 1" {
        return Err(MeshIoError::Parse(ln, format!("bad header '{header}'")));
    }

    let parse_count = |ln: usize, line: &str, kw: &str| -> Result<usize, MeshIoError> {
        let mut it = line.split_whitespace();
        match (it.next(), it.next()) {
            (Some(k), Some(n)) if k == kw => n
                .parse()
                .map_err(|e| MeshIoError::Parse(ln, format!("bad count: {e}"))),
            _ => Err(MeshIoError::Parse(ln, format!("expected '{kw} <n>'"))),
        }
    };

    let (ln, line) = next("vertices")?;
    let nv = parse_count(ln, &line, "vertices")?;
    let mut coords = Vec::with_capacity(nv);
    for _ in 0..nv {
        let (ln, line) = next("vertex coordinates")?;
        let xs: Result<Vec<f64>, _> = line.split_whitespace().map(str::parse).collect();
        let xs = xs.map_err(|e| MeshIoError::Parse(ln, format!("bad coordinate: {e}")))?;
        if xs.len() != 3 {
            return Err(MeshIoError::Parse(ln, "need 3 coordinates".into()));
        }
        coords.push(Vec3::new(xs[0], xs[1], xs[2]));
    }

    let (ln, line) = next("tets")?;
    let nt = parse_count(ln, &line, "tets")?;
    let mut tets = Vec::with_capacity(nt);
    for _ in 0..nt {
        let (ln, line) = next("tet vertices")?;
        let vs: Result<Vec<u32>, _> = line.split_whitespace().map(str::parse).collect();
        let vs = vs.map_err(|e| MeshIoError::Parse(ln, format!("bad tet index: {e}")))?;
        if vs.len() != 4 {
            return Err(MeshIoError::Parse(ln, "need 4 vertex indices".into()));
        }
        for &v in &vs {
            if v as usize >= nv {
                return Err(MeshIoError::Parse(ln, format!("tet index {v} out of range")));
            }
        }
        tets.push([vs[0], vs[1], vs[2], vs[3]]);
    }

    let (ln, line) = next("boundary")?;
    let nb = parse_count(ln, &line, "boundary")?;
    let mut boundary = Vec::with_capacity(nb);
    for _ in 0..nb {
        let (ln, line) = next("boundary triangle")?;
        let parts: Vec<&str> = line.split_whitespace().collect();
        if parts.len() != 4 {
            return Err(MeshIoError::Parse(ln, "need 3 indices + tag".into()));
        }
        let mut verts = [0u32; 3];
        for (slot, p) in verts.iter_mut().zip(&parts[..3]) {
            *slot = p
                .parse()
                .map_err(|e| MeshIoError::Parse(ln, format!("bad index: {e}")))?;
            if *slot as usize >= nv {
                return Err(MeshIoError::Parse(ln, format!("boundary index {slot} out of range")));
            }
        }
        boundary.push(BoundaryTri {
            verts,
            tag: parse_tag(parts[3], ln)?,
        });
    }

    Ok(Mesh {
        coords,
        tets,
        boundary,
    })
}

/// Reads a mesh from a file path.
pub fn load(path: &Path) -> Result<Mesh, MeshIoError> {
    read_mesh(std::fs::File::open(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::MeshPreset;

    #[test]
    fn roundtrip_preserves_everything() {
        let mesh = MeshPreset::Tiny.build();
        let mut buf = Vec::new();
        write_mesh(&mesh, &mut buf).unwrap();
        let back = read_mesh(buf.as_slice()).unwrap();
        assert_eq!(mesh.nvertices(), back.nvertices());
        assert_eq!(mesh.tets, back.tets);
        assert_eq!(mesh.boundary.len(), back.boundary.len());
        for (a, b) in mesh.boundary.iter().zip(&back.boundary) {
            assert_eq!(a.verts, b.verts);
            assert_eq!(a.tag, b.tag);
        }
        for (a, b) in mesh.coords.iter().zip(&back.coords) {
            assert_eq!(a, b, "coordinates must roundtrip bitwise (%.17e)");
        }
    }

    #[test]
    fn roundtrip_through_file() {
        let mesh = MeshPreset::Tiny.build();
        let path = std::env::temp_dir().join("fun3d_mesh_io_test.msh");
        save(&mesh, &path).unwrap();
        let back = load(&path).unwrap();
        assert_eq!(mesh.tets, back.tets);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn comments_and_blank_lines_tolerated() {
        let text = "\
# a comment
fun3d-rs-mesh 1

vertices 4
0 0 0
1 0 0   # inline comment
0 1 0
0 0 1
tets 1
0 1 2 3
boundary 1
0 2 1 slipwall
";
        let mesh = read_mesh(text.as_bytes()).unwrap();
        assert_eq!(mesh.nvertices(), 4);
        assert_eq!(mesh.ntets(), 1);
        assert_eq!(mesh.boundary[0].tag, BcTag::SlipWall);
    }

    #[test]
    fn bad_header_rejected() {
        let e = read_mesh("not-a-mesh\n".as_bytes()).unwrap_err();
        assert!(matches!(e, MeshIoError::Parse(1, _)), "{e}");
    }

    #[test]
    fn out_of_range_index_rejected() {
        let text = "fun3d-rs-mesh 1\nvertices 2\n0 0 0\n1 1 1\ntets 1\n0 1 2 3\n";
        let e = read_mesh(text.as_bytes()).unwrap_err();
        assert!(e.to_string().contains("out of range"), "{e}");
    }

    #[test]
    fn unknown_tag_rejected() {
        let text = "fun3d-rs-mesh 1\nvertices 3\n0 0 0\n1 0 0\n0 1 0\ntets 0\nboundary 1\n0 1 2 viscous\n";
        let e = read_mesh(text.as_bytes()).unwrap_err();
        assert!(e.to_string().contains("unknown tag"), "{e}");
    }

    #[test]
    fn loaded_mesh_is_solvable() {
        // The imported mesh must drive the dual metrics like the original.
        let mesh = MeshPreset::Tiny.build();
        let mut buf = Vec::new();
        write_mesh(&mesh, &mut buf).unwrap();
        let back = read_mesh(buf.as_slice()).unwrap();
        let d1 = crate::DualMesh::build(&mesh);
        let d2 = crate::DualMesh::build(&back);
        assert_eq!(d1.nedges(), d2.nedges());
        for (a, b) in d1.vol.iter().zip(&d2.vol) {
            assert_eq!(a, b);
        }
    }
}
