//! Locality-restoring orderings.
//!
//! The paper reorders vertex numbering with Reverse Cuthill-McKee [22] to
//! improve locality of the edge loops and narrow the Jacobian band, and
//! additionally sorts each edge's endpoints and the edge list itself so
//! accesses stream in increasing vertex order.

use crate::Graph;

/// Computes the RCM permutation of a graph: `perm[old] = new`.
///
/// Classic algorithm: repeated BFS from a pseudo-peripheral vertex of each
/// connected component, visiting neighbors in increasing-degree order,
/// then reversing the numbering.
pub fn rcm(graph: &Graph) -> Vec<usize> {
    let n = graph.nvertices();
    let mut order: Vec<u32> = Vec::with_capacity(n); // BFS visit order
    let mut visited = vec![false; n];
    let mut queue: std::collections::VecDeque<u32> = std::collections::VecDeque::new();
    let mut scratch: Vec<u32> = Vec::new();

    // Process components in order of their minimum vertex id for
    // determinism.
    for start in 0..n {
        if visited[start] {
            continue;
        }
        let root = pseudo_peripheral(graph, start as u32, &visited);
        visited[root as usize] = true;
        queue.push_back(root);
        while let Some(v) = queue.pop_front() {
            order.push(v);
            scratch.clear();
            scratch.extend(
                graph
                    .neighbors(v as usize)
                    .iter()
                    .copied()
                    .filter(|&u| !visited[u as usize]),
            );
            scratch.sort_unstable_by_key(|&u| graph.degree(u as usize));
            for &u in &scratch {
                visited[u as usize] = true;
                queue.push_back(u);
            }
        }
    }
    debug_assert_eq!(order.len(), n);

    // Reverse and invert: vertex visited t-th from the end gets number t.
    let mut perm = vec![0usize; n];
    for (t, &v) in order.iter().rev().enumerate() {
        perm[v as usize] = t;
    }
    perm
}

/// Finds an approximate pseudo-peripheral vertex: repeat BFS, moving to a
/// minimum-degree vertex of the last (deepest) level until the
/// eccentricity stops growing.
fn pseudo_peripheral(graph: &Graph, start: u32, global_visited: &[bool]) -> u32 {
    let mut root = start;
    let mut depth = 0usize;
    for _ in 0..8 {
        // depth-capped; converges in 2-3 iterations in practice
        let (levels, max_level) = bfs_levels(graph, root, global_visited);
        if max_level <= depth {
            break;
        }
        depth = max_level;
        // minimum-degree vertex in the deepest level
        let mut best: Option<u32> = None;
        for (v, &lvl) in levels.iter().enumerate() {
            if lvl == Some(max_level) {
                let better = match best {
                    None => true,
                    Some(b) => graph.degree(v) < graph.degree(b as usize),
                };
                if better {
                    best = Some(v as u32);
                }
            }
        }
        root = best.unwrap_or(root);
    }
    root
}

fn bfs_levels(
    graph: &Graph,
    root: u32,
    global_visited: &[bool],
) -> (Vec<Option<usize>>, usize) {
    let n = graph.nvertices();
    let mut level: Vec<Option<usize>> = vec![None; n];
    let mut queue = std::collections::VecDeque::new();
    level[root as usize] = Some(0);
    queue.push_back(root);
    let mut max_level = 0;
    while let Some(v) = queue.pop_front() {
        let lv = level[v as usize].unwrap();
        max_level = max_level.max(lv);
        for &u in graph.neighbors(v as usize) {
            if level[u as usize].is_none() && !global_visited[u as usize] {
                level[u as usize] = Some(lv + 1);
                queue.push_back(u);
            }
        }
    }
    (level, max_level)
}

/// Normalizes an edge list for streaming access: endpoints ordered
/// `lo < hi` and edges sorted lexicographically. Returns the sorted list.
pub fn sort_edges(edges: &[[u32; 2]]) -> Vec<[u32; 2]> {
    let mut out: Vec<[u32; 2]> = edges
        .iter()
        .map(|&[a, b]| if a < b { [a, b] } else { [b, a] })
        .collect();
    out.sort_unstable();
    out
}

/// The inverse of a permutation: `inv[perm[i]] = i`.
pub fn invert_permutation(perm: &[usize]) -> Vec<usize> {
    let mut inv = vec![0usize; perm.len()];
    for (i, &p) in perm.iter().enumerate() {
        inv[p] = i;
    }
    inv
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::MeshPreset;

    fn is_permutation(p: &[usize]) -> bool {
        let mut seen = vec![false; p.len()];
        for &x in p {
            if x >= p.len() || seen[x] {
                return false;
            }
            seen[x] = true;
        }
        true
    }

    #[test]
    fn rcm_on_path_graph_is_monotone() {
        // A path graph already has bandwidth 1; RCM must preserve it.
        let g = Graph::from_edges(5, &[[0, 1], [1, 2], [2, 3], [3, 4]]);
        let perm = rcm(&g);
        assert!(is_permutation(&perm));
        let edges: Vec<[u32; 2]> = (0..4)
            .map(|i| {
                let a = perm[i] as u32;
                let b = perm[i + 1] as u32;
                if a < b {
                    [a, b]
                } else {
                    [b, a]
                }
            })
            .collect();
        let g2 = Graph::from_edges(5, &edges);
        assert_eq!(g2.bandwidth(), 1);
    }

    #[test]
    fn rcm_reduces_bandwidth_of_scrambled_mesh() {
        let m = MeshPreset::Tiny.build(); // scrambled by default
        let g = m.vertex_graph();
        let before = g.bandwidth();
        let perm = rcm(&g);
        assert!(is_permutation(&perm));
        let edges: Vec<[u32; 2]> = m
            .edges()
            .iter()
            .map(|&[a, b]| {
                let (a, b) = (perm[a as usize] as u32, perm[b as usize] as u32);
                if a < b {
                    [a, b]
                } else {
                    [b, a]
                }
            })
            .collect();
        let after = Graph::from_edges(g.nvertices(), &edges).bandwidth();
        assert!(
            after * 3 < before,
            "RCM bandwidth {after} not much better than scrambled {before}"
        );
    }

    #[test]
    fn rcm_handles_disconnected_graphs() {
        let g = Graph::from_edges(6, &[[0, 1], [2, 3]]); // + isolated 4, 5
        let perm = rcm(&g);
        assert!(is_permutation(&perm));
    }

    #[test]
    fn rcm_empty_graph() {
        let g = Graph::from_edges(0, &[]);
        assert!(rcm(&g).is_empty());
    }

    #[test]
    fn sort_edges_normalizes() {
        let edges = [[3u32, 1], [0, 2], [2, 0], [1, 3]];
        let sorted = sort_edges(&edges);
        assert_eq!(sorted, vec![[0, 2], [0, 2], [1, 3], [1, 3]]);
    }

    #[test]
    fn invert_permutation_roundtrip() {
        let p = vec![2usize, 0, 3, 1];
        let inv = invert_permutation(&p);
        for i in 0..p.len() {
            assert_eq!(inv[p[i]], i);
            assert_eq!(p[inv[i]], i);
        }
    }
}
