//! Tetrahedral, vertex-centered unstructured meshes.
//!
//! FUN3D (Anderson & Bonhaus) is a tetrahedral vertex-centered code: the
//! unknowns live at mesh vertices, and the control volumes are the cells
//! of the **median dual** — each vertex's volume is bounded by pieces of
//! the surfaces that bisect the edges of its incident tetrahedra. Fluxes
//! are exchanged *per edge*, through the dual face associated with that
//! edge, which is why the hot loops of the application are edge-based.
//!
//! The paper's meshes (ONERA M6 wing, "Mesh-C" with 3.58e5 vertices /
//! 2.40e6 edges and "Mesh-D" with 2.76e6 / 1.89e7) are not publicly
//! available, so [`generator`] synthesizes an equivalent workload: a
//! channel with a swept, tapered wing-shaped bump, meshed with a
//! structured curvilinear hex grid split into tetrahedra (Kuhn
//! subdivision, which tiles conformingly), vertices jittered and then
//! randomly permuted so all structure must be rediscovered by reordering
//! — the same path a genuinely unstructured mesh takes. The resulting
//! edge-per-vertex ratio (~6.7) matches the paper's meshes.
//!
//! [`dual`] computes the median-dual metrics (edge dual-face area vectors,
//! vertex dual volumes, boundary vertex normals) and the discrete closure
//! identities the flux discretization relies on. [`reorder`] implements
//! Reverse Cuthill-McKee and the edge sorting the paper applies for
//! locality.

pub mod dual;
pub mod generator;
pub mod graph;
pub mod io;
pub mod reorder;
pub mod stats;
pub mod vec3;

pub use dual::DualMesh;
pub use generator::{ChannelSpec, MeshPreset};
pub use graph::Graph;
pub use vec3::Vec3;

/// Boundary-condition tag for a boundary face.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BcTag {
    /// Characteristic far-field (inflow/outflow) boundary.
    FarField,
    /// Inviscid slip wall (the wing surface / channel floor).
    SlipWall,
    /// Symmetry plane (treated identically to a slip wall for Euler).
    Symmetry,
}

/// A boundary triangle with its tag. Vertices are ordered so the triangle
/// normal points *out* of the domain.
#[derive(Clone, Copy, Debug)]
pub struct BoundaryTri {
    /// The three vertex indices, outward-wound.
    pub verts: [u32; 3],
    /// The kind of boundary this face belongs to.
    pub tag: BcTag,
}

/// A tetrahedral mesh: vertex coordinates, positively-oriented tets, and
/// tagged boundary triangles.
#[derive(Clone, Debug)]
pub struct Mesh {
    /// Vertex coordinates.
    pub coords: Vec<Vec3>,
    /// Tetrahedra as vertex quadruples, oriented with positive volume.
    pub tets: Vec<[u32; 4]>,
    /// Boundary triangles, outward-wound, with BC tags.
    pub boundary: Vec<BoundaryTri>,
}

impl Mesh {
    /// Number of vertices.
    pub fn nvertices(&self) -> usize {
        self.coords.len()
    }

    /// Number of tetrahedra.
    pub fn ntets(&self) -> usize {
        self.tets.len()
    }

    /// Extracts the unique undirected edge list, each edge stored as
    /// `[lo, hi]` with `lo < hi`, sorted lexicographically — the paper's
    /// "vertices at one end of each edge are sorted in an increasing
    /// order" normalization.
    pub fn edges(&self) -> Vec<[u32; 2]> {
        let mut edges: Vec<[u32; 2]> = Vec::with_capacity(self.tets.len() * 6);
        for t in &self.tets {
            for (a, b) in [(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)] {
                let (u, v) = (t[a], t[b]);
                edges.push(if u < v { [u, v] } else { [v, u] });
            }
        }
        edges.sort_unstable();
        edges.dedup();
        edges
    }

    /// Builds the vertex adjacency graph from the edge list.
    pub fn vertex_graph(&self) -> Graph {
        Graph::from_edges(self.nvertices(), &self.edges())
    }

    /// Applies a vertex renumbering: vertex `v` becomes `perm[v]`.
    /// Tets and boundary faces are rewritten; coordinates are moved.
    pub fn renumber(&mut self, perm: &[usize]) {
        assert_eq!(perm.len(), self.nvertices());
        let mut coords = vec![Vec3::ZERO; self.coords.len()];
        for (old, &new) in perm.iter().enumerate() {
            coords[new] = self.coords[old];
        }
        self.coords = coords;
        for t in &mut self.tets {
            for v in t.iter_mut() {
                *v = perm[*v as usize] as u32;
            }
        }
        for b in &mut self.boundary {
            for v in b.verts.iter_mut() {
                *v = perm[*v as usize] as u32;
            }
        }
    }

    /// Total volume of all tets (= volume of the meshed domain).
    pub fn total_volume(&self) -> f64 {
        self.tets
            .iter()
            .map(|t| {
                dual::tet_volume(
                    self.coords[t[0] as usize],
                    self.coords[t[1] as usize],
                    self.coords[t[2] as usize],
                    self.coords[t[3] as usize],
                )
            })
            .sum()
    }
}

#[cfg(test)]
pub(crate) fn single_tet() -> Mesh {
    let coords = vec![
        Vec3::new(0.0, 0.0, 0.0),
        Vec3::new(1.0, 0.0, 0.0),
        Vec3::new(0.0, 1.0, 0.0),
        Vec3::new(0.0, 0.0, 1.0),
    ];
    // Outward-wound boundary faces of the positively-oriented tet.
    let boundary = vec![
        BoundaryTri { verts: [0, 2, 1], tag: BcTag::SlipWall },
        BoundaryTri { verts: [0, 1, 3], tag: BcTag::SlipWall },
        BoundaryTri { verts: [0, 3, 2], tag: BcTag::SlipWall },
        BoundaryTri { verts: [1, 2, 3], tag: BcTag::SlipWall },
    ];
    Mesh {
        coords,
        tets: vec![[0, 1, 2, 3]],
        boundary,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_tet_edges() {
        let m = single_tet();
        let e = m.edges();
        assert_eq!(e.len(), 6);
        assert_eq!(e[0], [0, 1]);
        assert!(e.windows(2).all(|w| w[0] < w[1]), "sorted and unique");
    }

    #[test]
    fn edges_deduplicated_between_tets() {
        // Two tets sharing face (1,2,3): edges of the shared face counted once.
        let coords = vec![
            Vec3::new(0.0, 0.0, 0.0),
            Vec3::new(1.0, 0.0, 0.0),
            Vec3::new(0.0, 1.0, 0.0),
            Vec3::new(0.0, 0.0, 1.0),
            Vec3::new(1.0, 1.0, 1.0),
        ];
        let m = Mesh {
            coords,
            tets: vec![[0, 1, 2, 3], [4, 1, 3, 2]],
            boundary: vec![],
        };
        // 6 + 6 - 3 shared = 9 unique edges
        assert_eq!(m.edges().len(), 9);
    }

    #[test]
    fn renumber_is_consistent() {
        let mut m = single_tet();
        let before_vol = m.total_volume();
        m.renumber(&[3, 2, 1, 0]);
        assert!((m.total_volume() - before_vol).abs() < 1e-14);
        assert_eq!(m.coords[3], Vec3::new(0.0, 0.0, 0.0));
        assert_eq!(m.edges().len(), 6);
    }

    #[test]
    fn total_volume_of_reference_tet() {
        let m = single_tet();
        assert!((m.total_volume() - 1.0 / 6.0).abs() < 1e-14);
    }
}
