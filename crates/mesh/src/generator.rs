//! Synthetic unstructured-mesh generator.
//!
//! Stand-in for the paper's ONERA M6 wing meshes (see DESIGN.md,
//! *Substitutions*): a rectangular channel whose floor carries a swept,
//! tapered, smoothly-capped wing-shaped bump. A structured curvilinear hex
//! grid is fitted to the geometry, every hex is split into six tetrahedra
//! with the Kuhn subdivision (identical in every cell, hence conforming
//! across cell faces), interior vertices are jittered in parametric space
//! to break any residual regularity, and finally the vertex numbering is
//! scrambled with a seeded permutation so the delivered mesh behaves like
//! an arbitrary-order unstructured mesh file — locality must be recovered
//! by RCM, exactly as the paper does.
//!
//! The Kuhn split gives interior vertices 14 neighbors, i.e. ~7 edges per
//! vertex, matching the paper's meshes (2.40e6 edges / 3.58e5 vertices ≈
//! 6.7).

use crate::{BcTag, BoundaryTri, Mesh, Vec3};
use fun3d_util::Rng64;
use std::collections::HashMap;

/// Geometry and resolution of the synthetic channel-with-wing mesh.
#[derive(Clone, Copy, Debug)]
pub struct ChannelSpec {
    /// Grid points along x (streamwise).
    pub ni: usize,
    /// Grid points along y (spanwise).
    pub nj: usize,
    /// Grid points along z (wall-normal).
    pub nk: usize,
    /// Channel length.
    pub lx: f64,
    /// Channel span.
    pub ly: f64,
    /// Channel height.
    pub lz: f64,
    /// Chord of the bump at the root (y = 0).
    pub chord: f64,
    /// Leading-edge position of the bump at the root.
    pub x_le: f64,
    /// Maximum bump height (fraction of `lz` is up to the caller).
    pub thickness: f64,
    /// Spanwise extent of the bump; the cap is smooth at the tip.
    pub span: f64,
    /// Leading-edge sweep: dx of the leading edge per unit y.
    pub sweep: f64,
    /// Taper: chord at the tip is `chord * (1 - taper)`.
    pub taper: f64,
    /// Wall-normal clustering strength for the tanh stretching (0 = none).
    pub cluster: f64,
    /// Parametric jitter amplitude as a fraction of one grid step
    /// (0 ≤ jitter < 0.5 keeps the mapping injective).
    pub jitter: f64,
    /// Scramble the vertex numbering with a seeded random permutation.
    pub scramble: bool,
    /// RNG seed for jitter and scrambling.
    pub seed: u64,
}

impl ChannelSpec {
    /// A spec with the given resolution and the default wing geometry.
    pub fn with_resolution(ni: usize, nj: usize, nk: usize) -> Self {
        ChannelSpec {
            ni,
            nj,
            nk,
            lx: 4.0,
            ly: 2.0,
            lz: 2.0,
            chord: 1.0,
            x_le: 1.2,
            thickness: 0.12,
            span: 1.4,
            sweep: 0.55,
            taper: 0.45,
            cluster: 1.4,
            jitter: 0.18,
            scramble: true,
            seed: 0x00F0_4D3D,
        }
    }

    /// Number of vertices the spec will produce.
    pub fn nvertices(&self) -> usize {
        self.ni * self.nj * self.nk
    }

    /// Height of the channel floor (bump) at `(x, y)`.
    pub fn floor(&self, x: f64, y: f64) -> f64 {
        if y >= self.span {
            return 0.0;
        }
        // Smooth spanwise cap and linear taper/sweep.
        let eta = y / self.span;
        let cap = (std::f64::consts::FRAC_PI_2 * eta).cos().powi(2);
        let chord = self.chord * (1.0 - self.taper * eta);
        let x_le = self.x_le + self.sweep * y;
        let xi = (x - x_le) / chord;
        if !(0.0..=1.0).contains(&xi) {
            return 0.0;
        }
        let profile = (std::f64::consts::PI * xi).sin().powi(2);
        self.thickness * cap * profile
    }

    /// Wall-normal stretching: maps `c ∈ [0,1]` to `[0,1]`, clustering
    /// points toward the wall when `cluster > 0`.
    fn stretch(&self, c: f64) -> f64 {
        if self.cluster <= 0.0 {
            c
        } else {
            (self.cluster * c).tanh() / self.cluster.tanh()
        }
    }

    /// Maps jittered parametric coordinates to physical space.
    fn map(&self, a: f64, b: f64, c: f64) -> Vec3 {
        let x = self.lx * a;
        let y = self.ly * b;
        let h = self.floor(x, y);
        let z = h + (self.lz - h) * self.stretch(c);
        Vec3::new(x, y, z)
    }

    /// Generates the mesh.
    pub fn build(&self) -> Mesh {
        assert!(
            self.ni >= 2 && self.nj >= 2 && self.nk >= 2,
            "need at least 2 grid points per direction"
        );
        assert!(self.jitter >= 0.0 && self.jitter < 0.5, "jitter must stay below half a step");
        let (ni, nj, nk) = (self.ni, self.nj, self.nk);
        let nv = ni * nj * nk;
        let vid = |i: usize, j: usize, k: usize| -> u32 { ((i * nj + j) * nk + k) as u32 };

        let mut rng = Rng64::new(self.seed);
        let mut coords = Vec::with_capacity(nv);
        let (da, db, dc) = (
            1.0 / (ni - 1) as f64,
            1.0 / (nj - 1) as f64,
            1.0 / (nk - 1) as f64,
        );
        for i in 0..ni {
            for j in 0..nj {
                for k in 0..nk {
                    let mut a = i as f64 * da;
                    let mut b = j as f64 * db;
                    let mut c = k as f64 * dc;
                    // Jitter only strictly interior coordinates so every
                    // boundary plane stays planar in parameter space.
                    if i > 0 && i < ni - 1 {
                        a += rng.range_f64(-self.jitter, self.jitter) * da;
                    }
                    if j > 0 && j < nj - 1 {
                        b += rng.range_f64(-self.jitter, self.jitter) * db;
                    }
                    if k > 0 && k < nk - 1 {
                        c += rng.range_f64(-self.jitter, self.jitter) * dc;
                    }
                    coords.push(self.map(a, b, c));
                }
            }
        }

        // Kuhn subdivision: 6 tets per hex, one per permutation of the
        // axis step order; identical in every cell => conforming.
        const AXIS_PERMS: [[usize; 3]; 6] = [
            [0, 1, 2],
            [0, 2, 1],
            [1, 0, 2],
            [1, 2, 0],
            [2, 0, 1],
            [2, 1, 0],
        ];
        let mut tets = Vec::with_capacity((ni - 1) * (nj - 1) * (nk - 1) * 6);
        for i in 0..ni - 1 {
            for j in 0..nj - 1 {
                for k in 0..nk - 1 {
                    for perm in &AXIS_PERMS {
                        let mut d = [0usize; 3]; // running (di, dj, dk)
                        let mut tet = [vid(i, j, k); 4];
                        for (step, &axis) in perm.iter().enumerate() {
                            d[axis] = 1;
                            tet[step + 1] = vid(i + d[0], j + d[1], k + d[2]);
                        }
                        // Orient positively in physical space.
                        let v = crate::dual::tet_volume(
                            coords[tet[0] as usize],
                            coords[tet[1] as usize],
                            coords[tet[2] as usize],
                            coords[tet[3] as usize],
                        );
                        if v < 0.0 {
                            tet.swap(2, 3);
                        }
                        tets.push(tet);
                    }
                }
            }
        }

        let boundary = extract_boundary(&coords, &tets, |v| {
            // Classify a vertex by the boundary planes it lies on, using
            // its structured index (valid because boundary coordinates are
            // never jittered).
            let v = v as usize;
            let i = v / (nj * nk);
            let j = (v / nk) % nj;
            let k = v % nk;
            PlaneSet {
                x_lo: i == 0,
                x_hi: i == ni - 1,
                y_lo: j == 0,
                y_hi: j == nj - 1,
                z_lo: k == 0,
                z_hi: k == nk - 1,
            }
        });

        let mut mesh = Mesh { coords, tets, boundary };
        if self.scramble {
            let perm = rng.permutation(nv);
            mesh.renumber(&perm);
        }
        mesh
    }
}

/// Which structured boundary planes a vertex lies on.
#[derive(Clone, Copy, Debug, Default)]
struct PlaneSet {
    x_lo: bool,
    x_hi: bool,
    y_lo: bool,
    y_hi: bool,
    z_lo: bool,
    z_hi: bool,
}

impl PlaneSet {
    fn intersect(self, o: PlaneSet) -> PlaneSet {
        PlaneSet {
            x_lo: self.x_lo && o.x_lo,
            x_hi: self.x_hi && o.x_hi,
            y_lo: self.y_lo && o.y_lo,
            y_hi: self.y_hi && o.y_hi,
            z_lo: self.z_lo && o.z_lo,
            z_hi: self.z_hi && o.z_hi,
        }
    }

    /// BC tag for a face whose three vertices share these planes.
    fn tag(self) -> BcTag {
        if self.z_lo {
            BcTag::SlipWall
        } else if self.y_lo || self.y_hi {
            BcTag::Symmetry
        } else if self.x_lo || self.x_hi || self.z_hi {
            BcTag::FarField
        } else {
            // A boundary face must lie on some plane; flag loudly.
            unreachable!("boundary face not on any structured plane")
        }
    }
}

/// Finds all tet faces that occur exactly once (the domain boundary),
/// winds them outward, and tags them via the vertex classifier.
fn extract_boundary(
    coords: &[Vec3],
    tets: &[[u32; 4]],
    classify: impl Fn(u32) -> PlaneSet,
) -> Vec<BoundaryTri> {
    // face key (sorted triple) -> (count, one (face, opposite) instance)
    let mut faces: HashMap<[u32; 3], (u32, [u32; 3], u32)> =
        HashMap::with_capacity(tets.len() * 2);
    for t in tets {
        for (f, opp) in [
            ([t[0], t[1], t[2]], t[3]),
            ([t[0], t[1], t[3]], t[2]),
            ([t[0], t[2], t[3]], t[1]),
            ([t[1], t[2], t[3]], t[0]),
        ] {
            let mut key = f;
            key.sort_unstable();
            faces
                .entry(key)
                .and_modify(|e| e.0 += 1)
                .or_insert((1, f, opp));
        }
    }
    let mut out = Vec::new();
    for (_, (count, f, opp)) in faces {
        if count != 1 {
            debug_assert_eq!(count, 2, "non-manifold face");
            continue;
        }
        // Outward winding: the opposite vertex must lie on the *negative*
        // side of the triangle.
        let (a, b, c) = (f[0], f[1], f[2]);
        let vol = crate::dual::tet_volume(
            coords[a as usize],
            coords[b as usize],
            coords[c as usize],
            coords[opp as usize],
        );
        let verts = if vol > 0.0 { [a, c, b] } else { [a, b, c] };
        let planes = classify(a).intersect(classify(b)).intersect(classify(c));
        out.push(BoundaryTri { verts, tag: planes.tag() });
    }
    out.sort_by_key(|t| t.verts);
    out
}

/// Named mesh sizes used across tests and experiments.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MeshPreset {
    /// ~175 vertices — unit tests.
    Tiny,
    /// ~3.5k vertices — integration tests.
    Small,
    /// ~26k vertices — default experiment size on this container.
    Medium,
    /// ~90k vertices — larger experiment size.
    Large,
    /// 359k vertices / ~2.4M edges — the paper's Mesh-C scale.
    MeshC,
    /// ~2.76M vertices / ~19M edges — the paper's Mesh-D scale.
    MeshD,
}

impl MeshPreset {
    /// The generator spec for this preset.
    pub fn spec(self) -> ChannelSpec {
        match self {
            MeshPreset::Tiny => ChannelSpec::with_resolution(7, 5, 5),
            MeshPreset::Small => ChannelSpec::with_resolution(21, 13, 13),
            MeshPreset::Medium => ChannelSpec::with_resolution(41, 25, 25),
            MeshPreset::Large => ChannelSpec::with_resolution(61, 39, 38),
            MeshPreset::MeshC => ChannelSpec::with_resolution(121, 55, 54),
            MeshPreset::MeshD => ChannelSpec::with_resolution(239, 109, 106),
        }
    }

    /// Builds the mesh for this preset.
    pub fn build(self) -> Mesh {
        self.spec().build()
    }

    /// Number of solver unknowns (4 conserved variables per vertex)
    /// without building the mesh — used for size-aware bench budgeting
    /// and by the execution-policy chooser.
    pub fn unknowns(self) -> usize {
        self.spec().nvertices() * 4
    }

    /// The canonical preset name (the form [`MeshPreset::parse`] accepts).
    pub fn name(self) -> &'static str {
        match self {
            MeshPreset::Tiny => "tiny",
            MeshPreset::Small => "small",
            MeshPreset::Medium => "medium",
            MeshPreset::Large => "large",
            MeshPreset::MeshC => "mesh-c",
            MeshPreset::MeshD => "mesh-d",
        }
    }

    /// Parses a preset name (`tiny|small|medium|large|mesh-c|mesh-d`).
    pub fn parse(s: &str) -> Option<MeshPreset> {
        match s.to_ascii_lowercase().as_str() {
            "tiny" => Some(MeshPreset::Tiny),
            "small" => Some(MeshPreset::Small),
            "medium" => Some(MeshPreset::Medium),
            "large" => Some(MeshPreset::Large),
            "mesh-c" | "meshc" | "c" => Some(MeshPreset::MeshC),
            "mesh-d" | "meshd" | "d" => Some(MeshPreset::MeshD),
        _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DualMesh;

    #[test]
    fn tiny_mesh_counts() {
        let spec = MeshPreset::Tiny.spec();
        let m = spec.build();
        assert_eq!(m.nvertices(), 7 * 5 * 5);
        assert_eq!(m.ntets(), 6 * 6 * 4 * 4);
    }

    #[test]
    fn all_tets_positively_oriented() {
        let m = MeshPreset::Tiny.build();
        for t in &m.tets {
            let v = crate::dual::tet_volume(
                m.coords[t[0] as usize],
                m.coords[t[1] as usize],
                m.coords[t[2] as usize],
                m.coords[t[3] as usize],
            );
            assert!(v > 1e-12, "tet volume {v} not positive");
        }
    }

    #[test]
    fn volume_matches_domain_minus_bump() {
        // With zero thickness and no clustering the domain is a box.
        let mut spec = ChannelSpec::with_resolution(9, 7, 7);
        spec.thickness = 0.0;
        spec.cluster = 0.0;
        spec.jitter = 0.0;
        let m = spec.build();
        let vol = m.total_volume();
        let expect = spec.lx * spec.ly * spec.lz;
        assert!(
            (vol - expect).abs() < 1e-10 * expect,
            "vol {vol} vs box {expect}"
        );
    }

    #[test]
    fn closure_identity_holds_on_generated_mesh() {
        let m = MeshPreset::Tiny.build();
        let d = DualMesh::build(&m);
        let scale = d.edge_normal.iter().map(|n| n.norm()).fold(0.0, f64::max);
        assert!(
            d.max_closure_defect() < 1e-12 * scale.max(1.0),
            "closure defect {} (scale {scale})",
            d.max_closure_defect()
        );
    }

    #[test]
    fn dual_volume_sums_to_total() {
        let m = MeshPreset::Tiny.build();
        let d = DualMesh::build(&m);
        let dv: f64 = d.vol.iter().sum();
        let tv = m.total_volume();
        assert!((dv - tv).abs() < 1e-10 * tv);
    }

    #[test]
    fn boundary_covers_the_hull() {
        // Sum of outward boundary normals of a closed surface is zero.
        let m = MeshPreset::Tiny.build();
        let total = m.boundary.iter().fold(Vec3::ZERO, |acc, t| {
            acc + crate::dual::tri_area_vec(
                m.coords[t.verts[0] as usize],
                m.coords[t.verts[1] as usize],
                m.coords[t.verts[2] as usize],
            )
        });
        assert!(total.norm() < 1e-12, "open hull: residual {total:?}");
        // Quad faces of the structured hull are split into 2 triangles:
        let spec = MeshPreset::Tiny.spec();
        let (ni, nj, nk) = (spec.ni - 1, spec.nj - 1, spec.nk - 1);
        let quads = 2 * (ni * nj + nj * nk + ni * nk);
        assert_eq!(m.boundary.len(), 2 * quads);
    }

    #[test]
    fn all_tags_present() {
        let m = MeshPreset::Tiny.build();
        let has = |t: BcTag| m.boundary.iter().any(|b| b.tag == t);
        assert!(has(BcTag::SlipWall));
        assert!(has(BcTag::Symmetry));
        assert!(has(BcTag::FarField));
    }

    #[test]
    fn scramble_changes_ordering_not_geometry() {
        let mut spec = MeshPreset::Tiny.spec();
        spec.scramble = false;
        let plain = spec.build();
        spec.scramble = true;
        let scrambled = spec.build();
        assert!((plain.total_volume() - scrambled.total_volume()).abs() < 1e-12);
        assert_eq!(plain.edges().len(), scrambled.edges().len());
        // Bandwidth of the scrambled mesh should be much larger.
        let bw_plain = plain.vertex_graph().bandwidth();
        let bw_scrambled = scrambled.vertex_graph().bandwidth();
        assert!(bw_scrambled > 2 * bw_plain);
    }

    #[test]
    fn edge_per_vertex_ratio_matches_paper() {
        let m = MeshPreset::Small.build();
        let ratio = m.edges().len() as f64 / m.nvertices() as f64;
        // Paper's Mesh-C: 6.7. Kuhn tets: ~7 interior, less on the hull.
        assert!(
            (5.5..7.2).contains(&ratio),
            "edges/vertex = {ratio}, expected ~6.7"
        );
    }

    #[test]
    fn floor_bump_inside_chord_only() {
        let spec = MeshPreset::Small.spec();
        assert_eq!(spec.floor(0.0, 0.0), 0.0);
        assert_eq!(spec.floor(spec.lx, 0.0), 0.0);
        let mid = spec.x_le + 0.5 * spec.chord;
        assert!(spec.floor(mid, 0.0) > 0.5 * spec.thickness);
        // Beyond the span the floor is flat.
        assert_eq!(spec.floor(mid, spec.span + 0.1), 0.0);
    }

    #[test]
    fn preset_unknowns_without_build() {
        let m = MeshPreset::Tiny.build();
        assert_eq!(MeshPreset::Tiny.unknowns(), m.nvertices() * 4);
        // The estimate must be exact for every preset spec (structured
        // grids: ni*nj*nk vertices survive generation unchanged).
        assert_eq!(MeshPreset::Medium.unknowns(), 41 * 25 * 25 * 4);
        assert!(MeshPreset::MeshC.unknowns() > 1_000_000);
    }

    #[test]
    fn preset_parse() {
        assert_eq!(MeshPreset::parse("mesh-c"), Some(MeshPreset::MeshC));
        assert_eq!(MeshPreset::parse("TINY"), Some(MeshPreset::Tiny));
        assert_eq!(MeshPreset::parse("nope"), None);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let a = MeshPreset::Tiny.build();
        let b = MeshPreset::Tiny.build();
        assert_eq!(a.coords.len(), b.coords.len());
        for (p, q) in a.coords.iter().zip(&b.coords) {
            assert_eq!(p, q);
        }
        assert_eq!(a.tets, b.tets);
    }
}
