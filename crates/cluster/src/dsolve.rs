//! A genuinely distributed GMRES + block-Jacobi-ILU solve over the rank
//! runtime — the correctness backbone of the multi-node experiments.
//!
//! Each rank owns the matrix rows of its subdomain's vertices; matrix
//! columns reference owned + ghost vertices, and a halo exchange
//! refreshes ghost values before every matrix application (PETSc's
//! `VecScatter`). Inner products allreduce over ranks. The preconditioner
//! is one ILU per rank on the owned-owned diagonal block — single-level
//! additive Schwarz with zero overlap, whose convergence degradation with
//! rank count is exactly the effect the paper reports (+30% iterations at
//! 256 nodes, Section VI.B.3).

use crate::comm::Comm;
use crate::decompose::Subdomain;
use fun3d_sparse::{ilu, trsv, Bcsr4, IluFactors};

/// Halo exchange with an arbitrary per-vertex stride: sends owned
/// boundary values, fills ghost slots.
pub fn halo_exchange_stride(comm: &Comm, sub: &Subdomain, x: &mut [f64], stride: usize) {
    assert_eq!(x.len(), sub.nlocal() * stride);
    const TAG: u32 = 11;
    for (nbr, list) in &sub.send_lists {
        let mut buf = Vec::with_capacity(list.len() * stride);
        for &l in list {
            buf.extend_from_slice(&x[l as usize * stride..(l as usize + 1) * stride]);
        }
        comm.send(*nbr, TAG, buf);
    }
    for (nbr, list) in &sub.recv_lists {
        let buf = comm.recv(*nbr, TAG);
        assert_eq!(buf.len(), list.len() * stride);
        for (i, &l) in list.iter().enumerate() {
            x[l as usize * stride..(l as usize + 1) * stride]
                .copy_from_slice(&buf[i * stride..(i + 1) * stride]);
        }
    }
}

/// Halo exchange of a 4-vars-per-vertex vector (the state layout).
pub fn halo_exchange(comm: &Comm, sub: &Subdomain, x: &mut [f64]) {
    halo_exchange_stride(comm, sub, x, 4);
}

/// Extracts the local block rows of a global BCSR matrix: rows for owned
/// vertices (local row ids), columns remapped to local (owned + ghost)
/// ids; ghost rows are left empty.
pub fn localize_matrix(aglob: &Bcsr4, sub: &Subdomain) -> Bcsr4 {
    let nlocal = sub.nlocal();
    let mut g2l = std::collections::HashMap::with_capacity(nlocal);
    for (l, &g) in sub.owned.iter().enumerate() {
        g2l.insert(g, l as u32);
    }
    for (l, &g) in sub.ghosts.iter().enumerate() {
        g2l.insert(g, (sub.nowned() + l) as u32);
    }
    let mut cols: Vec<Vec<u32>> = vec![Vec::new(); nlocal];
    for (lr, &g) in sub.owned.iter().enumerate() {
        let g = g as usize;
        for k in aglob.row_ptr[g]..aglob.row_ptr[g + 1] {
            if let Some(&lc) = g2l.get(&aglob.col_idx[k]) {
                cols[lr].push(lc);
            }
            // columns outside owned+ghost can only appear if the matrix
            // pattern is wider than the mesh edges; the Jacobian's is not.
        }
        cols[lr].sort_unstable();
    }
    let mut local = Bcsr4::from_pattern(&cols);
    for (lr, &g) in sub.owned.iter().enumerate() {
        let g = g as usize;
        for k in aglob.row_ptr[g]..aglob.row_ptr[g + 1] {
            if let Some(&lc) = g2l.get(&aglob.col_idx[k]) {
                let lk = local.find(lr, lc).unwrap();
                local.blocks[lk * 16..(lk + 1) * 16]
                    .copy_from_slice(&aglob.blocks[k * 16..(k + 1) * 16]);
            }
        }
    }
    local
}

/// Extracts the owned-owned diagonal block and factors it with ILU(fill).
pub fn local_ilu(local: &Bcsr4, sub: &Subdomain, fill: usize) -> IluFactors {
    let nowned = sub.nowned();
    let cols: Vec<Vec<u32>> = (0..nowned)
        .map(|r| {
            local.col_idx[local.row_ptr[r]..local.row_ptr[r + 1]]
                .iter()
                .copied()
                .filter(|&c| (c as usize) < nowned)
                .collect()
        })
        .collect();
    let mut diag = Bcsr4::from_pattern(&cols);
    for r in 0..nowned {
        for k in local.row_ptr[r]..local.row_ptr[r + 1] {
            let c = local.col_idx[k];
            if (c as usize) < nowned {
                let dk = diag.find(r, c).unwrap();
                diag.blocks[dk * 16..(dk + 1) * 16]
                    .copy_from_slice(&local.blocks[k * 16..(k + 1) * 16]);
            }
        }
    }
    ilu::iluk(&diag, fill)
}

/// One rank's distributed linear-system context.
pub struct DistSystem {
    /// This rank's subdomain.
    pub sub: Subdomain,
    /// Local matrix rows (owned rows, owned+ghost columns).
    pub a: Bcsr4,
    /// Block-Jacobi ILU of the owned-owned block.
    pub precond: IluFactors,
}

impl DistSystem {
    /// Builds from the global matrix and a subdomain.
    pub fn new(aglob: &Bcsr4, sub: Subdomain, fill: usize) -> DistSystem {
        let a = localize_matrix(aglob, &sub);
        let precond = local_ilu(&a, &sub, fill);
        DistSystem { sub, a, precond }
    }

    /// Owned scalar dimension.
    pub fn nowned(&self) -> usize {
        self.sub.nowned() * 4
    }

    /// Distributed matvec: halo-exchange `x` (length nlocal·4, owned part
    /// significant), then `y_owned = A_local · x_local`.
    pub fn spmv(&self, comm: &Comm, x: &mut [f64], y: &mut [f64]) {
        halo_exchange(comm, &self.sub, x);
        let mut full = vec![0.0; self.sub.nlocal() * 4];
        self.a.spmv(x, &mut full);
        y.copy_from_slice(&full[..self.nowned()]);
    }

    /// Applies the local ILU to the owned part of `r`.
    pub fn apply_precond(&self, r: &[f64], z: &mut [f64]) {
        let x = trsv::solve(&self.precond, &r[..self.nowned()]);
        z[..self.nowned()].copy_from_slice(&x);
    }
}

/// Distributed dot product over owned entries.
pub fn ddot(comm: &Comm, x: &[f64], y: &[f64]) -> f64 {
    let local: f64 = x.iter().zip(y).map(|(a, b)| a * b).sum();
    comm.allreduce_sum(&[local])[0]
}

/// Distributed 2-norm over owned entries.
pub fn dnorm2(comm: &Comm, x: &[f64]) -> f64 {
    ddot(comm, x, x).sqrt()
}

/// Result of a distributed GMRES solve (per rank; identical on all).
#[derive(Clone, Copy, Debug)]
pub struct DistSolveResult {
    /// Iterations used.
    pub iterations: usize,
    /// Final preconditioned residual norm.
    pub residual: f64,
    /// Whether the tolerance was met.
    pub converged: bool,
}

/// Distributed left-preconditioned GMRES(restart). `b` and `x` are the
/// owned parts; returns identical results on every rank.
pub fn gmres(
    comm: &Comm,
    sys: &DistSystem,
    b: &[f64],
    x: &mut [f64],
    restart: usize,
    rtol: f64,
    max_iters: usize,
) -> DistSolveResult {
    let n = sys.nowned();
    assert_eq!(b.len(), n);
    assert_eq!(x.len(), n);
    let nlocal = sys.sub.nlocal() * 4;
    let mut xfull = vec![0.0; nlocal];
    let mut w = vec![0.0; n];
    let mut z = vec![0.0; n];
    let mut basis: Vec<Vec<f64>> = (0..restart + 1).map(|_| vec![0.0; n]).collect();
    let mut h = vec![0.0; (restart + 1) * restart];

    let mut total = 0usize;
    let mut res0 = f64::NAN;
    loop {
        // r = M⁻¹(b − A x)
        xfull[..n].copy_from_slice(x);
        sys.spmv(comm, &mut xfull, &mut w);
        for i in 0..n {
            w[i] = b[i] - w[i];
        }
        sys.apply_precond(&w, &mut z);
        let beta = dnorm2(comm, &z[..n]);
        if res0.is_nan() {
            res0 = beta;
        }
        if beta <= rtol * res0 || beta == 0.0 {
            return DistSolveResult {
                iterations: total,
                residual: beta,
                converged: true,
            };
        }
        for i in 0..n {
            basis[0][i] = z[i] / beta;
        }
        let mut g = vec![0.0; restart + 1];
        g[0] = beta;
        let mut cs = vec![0.0; restart];
        let mut sn = vec![0.0; restart];
        let mut kdone = 0usize;
        let mut res = beta;
        let mut converged = false;

        for k in 0..restart {
            if total >= max_iters {
                break;
            }
            total += 1;
            xfull[..n].copy_from_slice(&basis[k]);
            sys.spmv(comm, &mut xfull, &mut w);
            sys.apply_precond(&w, &mut z);
            // CGS with one fused allreduce (VecMDot semantics)
            let mut dots_local = vec![0.0; k + 1];
            for (j, vj) in basis[..=k].iter().enumerate() {
                dots_local[j] = z[..n].iter().zip(vj).map(|(a, b)| a * b).sum();
            }
            let dots = comm.allreduce_sum(&dots_local);
            for (j, vj) in basis[..=k].iter().enumerate() {
                for i in 0..n {
                    z[i] -= dots[j] * vj[i];
                }
                h[k * (restart + 1) + j] = dots[j];
            }
            let hnorm = dnorm2(comm, &z[..n]);
            h[k * (restart + 1) + k + 1] = hnorm;
            kdone = k + 1;
            if hnorm > 1e-14 * res.max(1.0) {
                for i in 0..n {
                    basis[k + 1][i] = z[i] / hnorm;
                }
            }
            let col = &mut h[k * (restart + 1)..(k + 1) * (restart + 1)];
            for i in 0..k {
                let t = cs[i] * col[i] + sn[i] * col[i + 1];
                col[i + 1] = -sn[i] * col[i] + cs[i] * col[i + 1];
                col[i] = t;
            }
            let denom = (col[k] * col[k] + col[k + 1] * col[k + 1]).sqrt();
            let (c, s) = if col[k + 1] == 0.0 {
                (1.0, 0.0)
            } else {
                (col[k] / denom, col[k + 1] / denom)
            };
            cs[k] = c;
            sn[k] = s;
            col[k] = c * col[k] + s * col[k + 1];
            col[k + 1] = 0.0;
            let t = c * g[k] + s * g[k + 1];
            g[k + 1] = -s * g[k] + c * g[k + 1];
            g[k] = t;
            res = g[k + 1].abs();
            if res <= rtol * res0 || hnorm <= 1e-14 * res.max(1.0) {
                converged = true;
                break;
            }
        }

        // form update
        let mut y = vec![0.0; kdone];
        for i in (0..kdone).rev() {
            let mut acc = g[i];
            for j in i + 1..kdone {
                acc -= h[j * (restart + 1) + i] * y[j];
            }
            y[i] = acc / h[i * (restart + 1) + i];
        }
        for (j, vj) in basis[..kdone].iter().enumerate() {
            for i in 0..n {
                x[i] += y[j] * vj[i];
            }
        }
        if converged || total >= max_iters {
            return DistSolveResult {
                iterations: total,
                residual: res,
                converged,
            };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comm::Universe;
    use crate::decompose::Decomposition;
    use fun3d_mesh::generator::MeshPreset;

    fn global_system() -> (Bcsr4, Vec<f64>, Vec<f64>) {
        let m = MeshPreset::Tiny.build();
        let mut a = Bcsr4::from_edges(m.nvertices(), &m.edges());
        a.fill_diag_dominant(123);
        let n = a.dim();
        let xref: Vec<f64> = (0..n).map(|i| (i as f64 * 0.17).sin()).collect();
        let mut b = vec![0.0; n];
        a.spmv(&xref, &mut b);
        (a, b, xref)
    }

    fn solve_distributed(nranks: usize) -> (Vec<f64>, usize) {
        let (a, b, _) = global_system();
        let nv = a.nrows();
        let edges = {
            let m = MeshPreset::Tiny.build();
            m.edges()
        };
        let decomp = Decomposition::build(nv, &edges, nranks);
        let subs = decomp.subdomains.clone();
        let results = Universe::run(nranks, |comm| {
            let sub = subs[comm.rank()].clone();
            let sys = DistSystem::new(&a, sub, 0);
            let blocal: Vec<f64> = sys
                .sub
                .owned
                .iter()
                .flat_map(|&g| b[g as usize * 4..g as usize * 4 + 4].to_vec())
                .collect();
            let mut x = vec![0.0; sys.nowned()];
            let stats = gmres(&comm, &sys, &blocal, &mut x, 30, 1e-10, 500);
            assert!(stats.converged, "rank {} diverged", comm.rank());
            (sys.sub.owned.clone(), x, stats.iterations)
        });
        // stitch the global solution
        let mut xg = vec![0.0; nv * 4];
        let mut iters = 0;
        for (owned, x, it) in results {
            iters = it;
            for (l, &g) in owned.iter().enumerate() {
                xg[g as usize * 4..g as usize * 4 + 4].copy_from_slice(&x[l * 4..l * 4 + 4]);
            }
        }
        (xg, iters)
    }

    #[test]
    fn distributed_matches_reference_solution() {
        let (_, _, xref) = global_system();
        for nranks in [1usize, 2, 4] {
            let (xg, _) = solve_distributed(nranks);
            let err: f64 = xg
                .iter()
                .zip(&xref)
                .map(|(a, b)| (a - b) * (a - b))
                .sum::<f64>()
                .sqrt();
            let norm: f64 = xref.iter().map(|v| v * v).sum::<f64>().sqrt();
            assert!(err < 1e-6 * norm, "nranks={nranks}: err {err} norm {norm}");
        }
    }

    #[test]
    fn more_subdomains_weaker_preconditioner() {
        // Schwarz convergence degradation: iterations grow (or stay
        // equal) as the domain is split more finely.
        let (_, i1) = solve_distributed(1);
        let (_, i4) = solve_distributed(4);
        assert!(
            i4 >= i1,
            "iterations should not drop with more subdomains: {i1} -> {i4}"
        );
    }

    #[test]
    fn halo_exchange_moves_owned_to_ghosts() {
        let m = MeshPreset::Tiny.build();
        let edges = m.edges();
        let nv = m.nvertices();
        let decomp = Decomposition::build(nv, &edges, 3);
        let subs = decomp.subdomains.clone();
        Universe::run(3, |comm| {
            let sub = &subs[comm.rank()];
            let mut x = vec![0.0; sub.nlocal() * 4];
            // owned entries = global id, ghosts = -1
            for (l, &g) in sub.owned.iter().enumerate() {
                for c in 0..4 {
                    x[l * 4 + c] = g as f64;
                }
            }
            for l in sub.nowned()..sub.nlocal() {
                for c in 0..4 {
                    x[l * 4 + c] = -1.0;
                }
            }
            halo_exchange(&comm, sub, &mut x);
            for (l, &g) in sub.ghosts.iter().enumerate() {
                let li = sub.nowned() + l;
                for c in 0..4 {
                    assert_eq!(x[li * 4 + c], g as f64, "ghost {g} not filled");
                }
            }
        });
    }

    #[test]
    fn halo_exchange_telemetry_matches_ghost_size_formula() {
        use fun3d_util::telemetry;
        telemetry::set_level(telemetry::Level::Counters);
        let m = MeshPreset::Tiny.build();
        let edges = m.edges();
        let nv = m.nvertices();
        let decomp = Decomposition::build(nv, &edges, 3);
        let subs = decomp.subdomains.clone();
        Universe::run(3, |comm| {
            // Each rank thread is fresh, so its local counters start empty;
            // delta against the baseline anyway in case the runtime reuses
            // threads someday.
            let sub = &subs[comm.rank()];
            let base = |n: &str| {
                telemetry::local_counters().get(n).copied().unwrap_or_default()
            };
            let (s0, r0) = (base("comm.send"), base("comm.recv"));
            let mut x = vec![1.0; sub.nlocal() * 4];
            halo_exchange(&comm, sub, &mut x);
            let (s1, r1) = (base("comm.send"), base("comm.recv"));
            // analytic ghost-size formula: halo_doubles() doubles sent,
            // one message per neighbor
            assert_eq!(s1.bytes_written - s0.bytes_written, (sub.halo_doubles() * 8) as u64);
            assert_eq!(s1.items - s0.items, sub.send_lists.len() as u64);
            let recv_doubles: usize = sub.recv_lists.iter().map(|(_, l)| l.len() * 4).sum();
            assert_eq!(r1.bytes_read - r0.bytes_read, (recv_doubles * 8) as u64);
            assert_eq!(r1.items - r0.items, sub.recv_lists.len() as u64);
        });
    }

    #[test]
    fn localize_matrix_preserves_owned_rows() {
        let (a, _, _) = global_system();
        let m = MeshPreset::Tiny.build();
        let decomp = Decomposition::build(a.nrows(), &m.edges(), 2);
        let sub = decomp.subdomains[0].clone();
        let local = localize_matrix(&a, &sub);
        assert_eq!(local.nrows(), sub.nlocal());
        // row sums of owned rows must match the global rows (all columns
        // of a mesh-pattern row are owned or ghost)
        for (lr, &g) in sub.owned.iter().enumerate() {
            let g = g as usize;
            let global_blocks = a.row_ptr[g + 1] - a.row_ptr[g];
            let local_blocks = local.row_ptr[lr + 1] - local.row_ptr[lr];
            assert_eq!(global_blocks, local_blocks, "row {g}");
            let gsum: f64 = a.blocks[a.row_ptr[g] * 16..a.row_ptr[g + 1] * 16].iter().sum();
            let lsum: f64 =
                local.blocks[local.row_ptr[lr] * 16..local.row_ptr[lr + 1] * 16].iter().sum();
            assert!((gsum - lsum).abs() < 1e-12);
        }
    }
}
