//! An in-process MPI-like communicator: ranks are threads, messages are
//! moved `Vec<f64>` buffers, collectives have MPI semantics.
//!
//! Only the operations PETSc-FUN3D's solver needs are provided: matched
//! send/recv (FIFO per (source, destination) pair), sum/max allreduce,
//! and barrier. Statistics (message and byte counts per op class) are
//! recorded for the communication-overhead accounting of Fig. 10.
//!
//! Built entirely on `std::sync` (mpsc channels + `Mutex`) so the
//! workspace stays hermetic. `std::sync::mpsc` gives exactly the FIFO
//! per-(src,dst) ordering MPI guarantees for a single tag in flight, and
//! since Rust 1.72 `Sender` is `Sync`, so one channel per directed rank
//! pair can be shared from a single `Arc`.

use fun3d_util::telemetry;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Barrier, Mutex, PoisonError};

/// A tagged message.
struct Msg {
    tag: u32,
    data: Vec<f64>,
}

struct Shared {
    size: usize,
    /// channels[src * size + dst]
    senders: Vec<Sender<Msg>>,
    receivers: Vec<Mutex<Receiver<Msg>>>,
    barrier: Barrier,
    /// Statistics.
    p2p_msgs: AtomicU64,
    p2p_bytes: AtomicU64,
    collectives: AtomicU64,
}

/// The launcher: spins up `size` rank threads and joins them.
pub struct Universe;

impl Universe {
    /// Runs `f(comm)` on `size` rank threads; returns the per-rank return
    /// values in rank order.
    pub fn run<T, F>(size: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(Comm) -> T + Send + Sync,
    {
        assert!(size >= 1);
        let mut senders = Vec::with_capacity(size * size);
        let mut receivers = Vec::with_capacity(size * size);
        for _ in 0..size * size {
            let (tx, rx) = channel::<Msg>();
            senders.push(tx);
            receivers.push(Mutex::new(rx));
        }
        let shared = Arc::new(Shared {
            size,
            senders,
            receivers,
            barrier: Barrier::new(size),
            p2p_msgs: AtomicU64::new(0),
            p2p_bytes: AtomicU64::new(0),
            collectives: AtomicU64::new(0),
        });
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(size);
            for rank in 0..size {
                let shared = Arc::clone(&shared);
                let f = &f;
                handles.push(scope.spawn(move || {
                    telemetry::set_thread_label(format!("rank-{rank}"));
                    // Flight events from this thread carry the rank, so a
                    // dump merges all ranks into one causally-ordered
                    // record (ranks share the process telemetry epoch).
                    telemetry::flight::set_rank(rank as u64);
                    f(Comm::new(rank, shared))
                }));
            }
            handles
                .into_iter()
                .map(|h| h.join().expect("rank panicked"))
                .collect()
        })
    }
}

/// A rank's endpoint.
pub struct Comm {
    rank: usize,
    shared: Arc<Shared>,
    // Per-rank live histograms (size + latency per direction), handles
    // resolved once at rank startup so the record path never takes the
    // registry lock.
    send_bytes: Arc<telemetry::metrics::Histogram>,
    send_ns: Arc<telemetry::metrics::Histogram>,
    recv_bytes: Arc<telemetry::metrics::Histogram>,
    recv_ns: Arc<telemetry::metrics::Histogram>,
}

impl Comm {
    fn new(rank: usize, shared: Arc<Shared>) -> Comm {
        let hist = |dir: &str, what: &str| {
            telemetry::metrics::histogram(&format!("cluster.rank{rank}.{dir}_{what}"))
        };
        Comm {
            rank,
            shared,
            send_bytes: hist("send", "bytes"),
            send_ns: hist("send", "ns"),
            recv_bytes: hist("recv", "bytes"),
            recv_ns: hist("recv", "ns"),
        }
    }

    /// This rank's id.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Communicator size.
    pub fn size(&self) -> usize {
        self.shared.size
    }

    /// Sends `data` to `dst` with a tag. Non-blocking (buffered).
    pub fn send(&self, dst: usize, tag: u32, data: Vec<f64>) {
        self.shared.p2p_msgs.fetch_add(1, Ordering::Relaxed);
        let bytes = (data.len() * 8) as u64;
        self.shared.p2p_bytes.fetch_add(bytes, Ordering::Relaxed);
        // Same counter vocabulary as the compute kernels: one message is
        // one item; the payload counts as bytes written by this rank.
        telemetry::record_kernel("comm.send", telemetry::KernelCounts::once(1, 0, bytes, 0));
        telemetry::flight::emit(telemetry::flight::EventKind::CommSend {
            peer: dst as u64,
            bytes,
        });
        let t0 = std::time::Instant::now();
        self.shared.senders[self.rank * self.shared.size + dst]
            .send(Msg { tag, data })
            .expect("receiver alive");
        self.send_bytes.record(bytes);
        self.send_ns
            .record(t0.elapsed().as_nanos().min(u64::MAX as u128) as u64);
    }

    /// Receives the next message from `src`; its tag must match
    /// (messages between a pair are consumed in order, like MPI with a
    /// single tag in flight).
    pub fn recv(&self, src: usize, tag: u32) -> Vec<f64> {
        // A rank that panics below (tag mismatch) poisons this mutex while
        // its peers may still be draining their own recvs; recover the
        // guard instead of cascading the poison into a deadlocked
        // collective — the paired `recv` on the mpsc channel fails cleanly
        // once the panicked rank's senders drop.
        let t0 = std::time::Instant::now();
        let rx = self.shared.receivers[src * self.shared.size + self.rank]
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        let msg = rx.recv().expect("sender alive");
        self.recv_bytes.record((msg.data.len() * 8) as u64);
        self.recv_ns
            .record(t0.elapsed().as_nanos().min(u64::MAX as u128) as u64);
        assert_eq!(
            msg.tag, tag,
            "out-of-order tag between ranks {src}->{}",
            self.rank
        );
        telemetry::record_kernel(
            "comm.recv",
            telemetry::KernelCounts::once(1, (msg.data.len() * 8) as u64, 0, 0),
        );
        telemetry::flight::emit(telemetry::flight::EventKind::CommRecv {
            peer: src as u64,
            bytes: (msg.data.len() * 8) as u64,
        });
        msg.data
    }

    /// Barrier across all ranks.
    pub fn barrier(&self) {
        self.shared.barrier.wait();
    }

    /// Sum-allreduce: every rank passes equal-length slices; all receive
    /// the elementwise sum (deterministic rank order).
    pub fn allreduce_sum(&self, x: &[f64]) -> Vec<f64> {
        self.shared.collectives.fetch_add(1, Ordering::Relaxed);
        self.reduce(x, |acc, v| *acc += v)
    }

    /// Max-allreduce.
    pub fn allreduce_max(&self, x: &[f64]) -> Vec<f64> {
        self.shared.collectives.fetch_add(1, Ordering::Relaxed);
        self.reduce(x, |acc, v| {
            if v > *acc {
                *acc = v;
            }
        })
    }

    fn reduce(&self, x: &[f64], combine: impl Fn(&mut f64, f64)) -> Vec<f64> {
        // Gather-to-root in rank order (deterministic FP reduction), then
        // broadcast — not performance-relevant in-process.
        let size = self.shared.size;
        if size == 1 {
            return x.to_vec();
        }
        // All ranks send to rank 0; rank 0 combines in rank order and
        // broadcasts back.
        const TAG: u32 = u32::MAX - 1;
        if self.rank == 0 {
            let mut acc = x.to_vec();
            for src in 1..size {
                let data = self.recv(src, TAG);
                assert_eq!(data.len(), acc.len());
                for (a, v) in acc.iter_mut().zip(data) {
                    combine(a, v);
                }
            }
            for dst in 1..size {
                self.send(dst, TAG, acc.clone());
            }
            acc
        } else {
            self.send(0, TAG, x.to_vec());
            self.recv(0, TAG)
        }
    }

    /// Total point-to-point messages sent so far (all ranks).
    pub fn stat_p2p_msgs(&self) -> u64 {
        self.shared.p2p_msgs.load(Ordering::Relaxed)
    }

    /// Total point-to-point bytes sent so far (all ranks).
    pub fn stat_p2p_bytes(&self) -> u64 {
        self.shared.p2p_bytes.load(Ordering::Relaxed)
    }

    /// Total collective operations so far (all ranks, counted once per
    /// participant).
    pub fn stat_collectives(&self) -> u64 {
        self.shared.collectives.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_send_recv() {
        let out = Universe::run(4, |comm| {
            let next = (comm.rank() + 1) % comm.size();
            let prev = (comm.rank() + comm.size() - 1) % comm.size();
            comm.send(next, 7, vec![comm.rank() as f64]);
            let got = comm.recv(prev, 7);
            got[0]
        });
        assert_eq!(out, vec![3.0, 0.0, 1.0, 2.0]);
    }

    #[test]
    fn allreduce_sum_correct_and_deterministic() {
        let a = Universe::run(5, |comm| comm.allreduce_sum(&[comm.rank() as f64 + 0.5]));
        for v in &a {
            assert_eq!(v[0], 0.5 + 1.5 + 2.5 + 3.5 + 4.5);
        }
        let b = Universe::run(5, |comm| comm.allreduce_sum(&[comm.rank() as f64 + 0.5]));
        assert_eq!(a, b);
    }

    #[test]
    fn allreduce_max() {
        let out = Universe::run(3, |comm| {
            comm.allreduce_max(&[-(comm.rank() as f64), comm.rank() as f64])
        });
        for v in out {
            assert_eq!(v, vec![0.0, 2.0]);
        }
    }

    #[test]
    fn single_rank_allreduce() {
        let out = Universe::run(1, |comm| comm.allreduce_sum(&[42.0]));
        assert_eq!(out[0], vec![42.0]);
    }

    #[test]
    fn barrier_orders_phases() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let counter = AtomicUsize::new(0);
        Universe::run(4, |comm| {
            counter.fetch_add(1, Ordering::SeqCst);
            comm.barrier();
            assert_eq!(counter.load(Ordering::SeqCst), 4);
        });
    }

    #[test]
    fn stats_accumulate() {
        let msgs = Universe::run(2, |comm| {
            if comm.rank() == 0 {
                comm.send(1, 1, vec![1.0, 2.0]);
            } else {
                comm.recv(0, 1);
            }
            comm.barrier();
            (comm.stat_p2p_msgs(), comm.stat_p2p_bytes())
        });
        assert_eq!(msgs[0].0, 1);
        assert_eq!(msgs[0].1, 16);
    }

    #[test]
    fn multiple_messages_fifo() {
        Universe::run(2, |comm| {
            if comm.rank() == 0 {
                comm.send(1, 1, vec![1.0]);
                comm.send(1, 2, vec![2.0]);
                comm.send(1, 3, vec![3.0]);
            } else {
                assert_eq!(comm.recv(0, 1), vec![1.0]);
                assert_eq!(comm.recv(0, 2), vec![2.0]);
                assert_eq!(comm.recv(0, 3), vec![3.0]);
            }
        });
    }
}
