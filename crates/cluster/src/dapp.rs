//! The distributed nonlinear application: rank-parallel PETSc-FUN3D.
//!
//! Each rank owns a subdomain of the mesh and runs the full ΨNKS stack
//! through real message passing:
//!
//! * residual: halo-exchange state → local Green-Gauss gradients
//!   (owner-only writes) → halo-exchange gradients → masked Roe flux loop
//!   → local boundary fluxes;
//! * Jacobian: first-order assembly of the *owned rows* (columns span
//!   owned + ghost), pseudo-time shift, per-rank ILU of the owned-owned
//!   block (zero-overlap additive Schwarz);
//! * linear solve: matrix-free distributed GMRES — the operator action
//!   finite-differences the distributed residual; inner products
//!   allreduce;
//! * pseudo-transient continuation with SER time-step growth, with the
//!   residual norm agreed by allreduce so every rank steps identically.
//!
//! This is the execution model of the paper's multi-node experiments
//! (Section VI.B): MPI-only when every rank is one core, "Hybrid" when a
//! rank spans a socket. In-process, ranks are threads.

use crate::comm::Comm;
use crate::decompose::{Decomposition, Subdomain};
use crate::dsolve::{dnorm2, halo_exchange, halo_exchange_stride, local_ilu};
use fun3d_core::bc::BcData;
use fun3d_core::euler::{self, FlowConditions};
use fun3d_core::geom::EdgeGeom;
use fun3d_mesh::{DualMesh, Mesh};
use fun3d_sparse::{trsv, Bcsr4, IluFactors};

/// Immutable global inputs shared (read-only) by all ranks.
pub struct GlobalSetup {
    /// The mesh.
    pub mesh: Mesh,
    /// Dual metrics.
    pub dual: DualMesh,
    /// Global edge geometry.
    pub geom: EdgeGeom,
    /// Global boundary table.
    pub bc: BcData,
    /// Flow conditions.
    pub cond: FlowConditions,
    /// The decomposition.
    pub decomp: Decomposition,
}

impl GlobalSetup {
    /// Decomposes a mesh over `nranks`.
    pub fn new(mesh: Mesh, cond: FlowConditions, nranks: usize) -> GlobalSetup {
        let dual = DualMesh::build(&mesh);
        let geom = EdgeGeom::build(&mesh, &dual);
        let bc = BcData::build(&dual);
        let decomp = Decomposition::build(mesh.nvertices(), &geom.edges, nranks);
        GlobalSetup {
            mesh,
            dual,
            geom,
            bc,
            cond,
            decomp,
        }
    }
}

/// One rank's local problem data.
pub struct RankApp<'a> {
    /// Shared read-only globals.
    pub setup: &'a GlobalSetup,
    /// This rank's subdomain.
    pub sub: Subdomain,
    /// Local edge geometry (subdomain edges, local vertex ids).
    nx: Vec<f64>,
    ny: Vec<f64>,
    nz: Vec<f64>,
    rx: Vec<f64>,
    ry: Vec<f64>,
    rz: Vec<f64>,
    /// Boundary entries for owned vertices: (local vertex, normal, tag).
    bc_local: Vec<(u32, [f64; 3], fun3d_mesh::BcTag)>,
    /// Dual volumes of owned vertices.
    vol: Vec<f64>,
    /// Jacobian rows for owned vertices (local columns).
    jac: Bcsr4,
    factors: Option<IluFactors>,
}

impl<'a> RankApp<'a> {
    /// Builds rank `rank`'s local problem.
    pub fn new(setup: &'a GlobalSetup, rank: usize) -> RankApp<'a> {
        let sub = setup.decomp.subdomains[rank].clone();
        let ne = sub.edges.len();
        let mut nx = Vec::with_capacity(ne);
        let mut ny = Vec::with_capacity(ne);
        let mut nz = Vec::with_capacity(ne);
        let mut rx = Vec::with_capacity(ne);
        let mut ry = Vec::with_capacity(ne);
        let mut rz = Vec::with_capacity(ne);
        for &gid in &sub.edge_gids {
            let g = gid as usize;
            nx.push(setup.geom.nx[g]);
            ny.push(setup.geom.ny[g]);
            nz.push(setup.geom.nz[g]);
            rx.push(setup.geom.rx[g]);
            ry.push(setup.geom.ry[g]);
            rz.push(setup.geom.rz[g]);
        }
        // global->local vertex map for owned vertices
        let mut g2l = std::collections::HashMap::with_capacity(sub.nlocal());
        for (l, &g) in sub.owned.iter().enumerate() {
            g2l.insert(g, l as u32);
        }
        for (l, &g) in sub.ghosts.iter().enumerate() {
            g2l.insert(g, (sub.nowned() + l) as u32);
        }
        let mut bc_local = Vec::new();
        for i in 0..setup.bc.len() {
            if let Some(&l) = g2l.get(&setup.bc.vertex[i]) {
                if (l as usize) < sub.nowned() {
                    bc_local.push((
                        l,
                        [setup.bc.nx[i], setup.bc.ny[i], setup.bc.nz[i]],
                        setup.bc.tag[i],
                    ));
                }
            }
        }
        let vol: Vec<f64> = sub.owned.iter().map(|&g| setup.dual.vol[g as usize]).collect();
        // Jacobian pattern: owned rows over their local-edge neighbors.
        let nowned = sub.nowned();
        let mut cols: Vec<Vec<u32>> = (0..nowned).map(|v| vec![v as u32]).collect();
        for (le, &mask) in sub.edges.iter().zip(&sub.write_masks) {
            let (a, b) = (le[0], le[1]);
            if mask & 1 != 0 {
                cols[a as usize].push(b);
            }
            if mask & 2 != 0 {
                cols[b as usize].push(a);
            }
        }
        for c in cols.iter_mut() {
            c.sort_unstable();
            c.dedup();
        }
        // extend to nlocal rows (ghost rows empty) so columns are valid
        let mut full_cols = cols;
        full_cols.resize(sub.nlocal(), Vec::new());
        let jac = Bcsr4::from_pattern(&full_cols);

        RankApp {
            setup,
            sub,
            nx,
            ny,
            nz,
            rx,
            ry,
            rz,
            bc_local,
            vol,
            jac,
            factors: None,
        }
    }

    /// Owned scalar unknowns.
    pub fn nowned4(&self) -> usize {
        self.sub.nowned() * 4
    }

    /// Local scalar unknowns (owned + ghost).
    pub fn nlocal4(&self) -> usize {
        self.sub.nlocal() * 4
    }

    /// Free-stream local state.
    pub fn initial_state(&self) -> Vec<f64> {
        let mut u = vec![0.0; self.nlocal4()];
        for v in 0..self.sub.nlocal() {
            u[v * 4..v * 4 + 4].copy_from_slice(&self.setup.cond.qinf);
        }
        u
    }

    /// Distributed residual: `u` is the local state (owned part
    /// significant on entry; ghosts refreshed here); writes the owned
    /// residual into `r`. `grad` is a `nlocal*12` scratch buffer.
    pub fn residual(&self, comm: &Comm, u: &mut [f64], grad: &mut [f64], r: &mut [f64]) {
        assert_eq!(u.len(), self.nlocal4());
        assert_eq!(grad.len(), self.sub.nlocal() * 12);
        assert_eq!(r.len(), self.nowned4());
        let beta = self.setup.cond.beta;
        halo_exchange(comm, &self.sub, u);

        // Green-Gauss on owned vertices (owner-only writes), then
        // exchange ghost gradients.
        grad.iter_mut().for_each(|x| *x = 0.0);
        for (k, (le, &mask)) in self.sub.edges.iter().zip(&self.sub.write_masks).enumerate() {
            let (a, b) = (le[0] as usize, le[1] as usize);
            let s = [self.nx[k], self.ny[k], self.nz[k]];
            for c in 0..4 {
                let qf = 0.5 * (u[a * 4 + c] + u[b * 4 + c]);
                for d in 0..3 {
                    if mask & 1 != 0 {
                        grad[a * 12 + c * 3 + d] += qf * s[d];
                    }
                    if mask & 2 != 0 {
                        grad[b * 12 + c * 3 + d] -= qf * s[d];
                    }
                }
            }
        }
        for &(v, n, _) in &self.bc_local {
            let v = v as usize;
            for c in 0..4 {
                let qv = u[v * 4 + c];
                for d in 0..3 {
                    grad[v * 12 + c * 3 + d] += qv * n[d];
                }
            }
        }
        for v in 0..self.sub.nowned() {
            let inv = 1.0 / self.vol[v];
            for f in 0..12 {
                grad[v * 12 + f] *= inv;
            }
        }
        halo_exchange_stride(comm, &self.sub, grad, 12);

        // Masked Roe flux loop (second-order reconstruction).
        r.iter_mut().for_each(|x| *x = 0.0);
        for (k, (le, &mask)) in self.sub.edges.iter().zip(&self.sub.write_masks).enumerate() {
            let (a, b) = (le[0] as usize, le[1] as usize);
            let n = [self.nx[k], self.ny[k], self.nz[k]];
            let rr = [self.rx[k], self.ry[k], self.rz[k]];
            let mut ql = [0.0f64; 4];
            let mut qr = [0.0f64; 4];
            for c in 0..4 {
                let ga = &grad[a * 12 + c * 3..a * 12 + c * 3 + 3];
                let gb = &grad[b * 12 + c * 3..b * 12 + c * 3 + 3];
                let da = ga[0] * rr[0] + ga[1] * rr[1] + ga[2] * rr[2];
                let db = gb[0] * rr[0] + gb[1] * rr[1] + gb[2] * rr[2];
                ql[c] = u[a * 4 + c] + 0.5 * da;
                qr[c] = u[b * 4 + c] - 0.5 * db;
            }
            let f = euler::roe_flux(&ql, &qr, &n, beta);
            for c in 0..4 {
                if mask & 1 != 0 {
                    r[a * 4 + c] += f[c];
                }
                if mask & 2 != 0 {
                    r[b * 4 + c] -= f[c];
                }
            }
        }
        for &(v, n, tag) in &self.bc_local {
            let v = v as usize;
            let q: [f64; 4] = u[v * 4..v * 4 + 4].try_into().unwrap();
            let f = match tag {
                fun3d_mesh::BcTag::SlipWall | fun3d_mesh::BcTag::Symmetry => {
                    fun3d_core::bc::wall_flux(&q, &n)
                }
                fun3d_mesh::BcTag::FarField => {
                    fun3d_core::bc::farfield_flux(&q, &self.setup.cond.qinf, &n, beta)
                }
            };
            for c in 0..4 {
                r[v * 4 + c] += f[c];
            }
        }
    }

    /// Assembles the first-order Jacobian of the owned rows (columns over
    /// owned + ghost), adds the pseudo-time shift, and refreshes the
    /// per-rank ILU factors. `u` must have current ghost values.
    pub fn build_preconditioner(&mut self, u: &[f64], dt: f64, fill: usize) {
        let beta = self.setup.cond.beta;
        self.jac.zero_values();
        for (k, (le, &mask)) in self.sub.edges.iter().zip(&self.sub.write_masks).enumerate() {
            let (a, b) = (le[0] as usize, le[1] as usize);
            let n = [self.nx[k], self.ny[k], self.nz[k]];
            let qa: [f64; 4] = u[a * 4..a * 4 + 4].try_into().unwrap();
            let qb: [f64; 4] = u[b * 4..b * 4 + 4].try_into().unwrap();
            let lam = euler::spectral_radius(&qa, &n, beta)
                .max(euler::spectral_radius(&qb, &n, beta));
            let mut da = euler::flux_jacobian(&qa, &n, beta);
            let mut db = euler::flux_jacobian(&qb, &n, beta);
            for x in da.iter_mut() {
                *x *= 0.5;
            }
            for x in db.iter_mut() {
                *x *= 0.5;
            }
            for d in 0..4 {
                da[d * 4 + d] += 0.5 * lam;
                db[d * 4 + d] -= 0.5 * lam;
            }
            let neg = |m: &[f64; 16]| {
                let mut o = *m;
                for x in o.iter_mut() {
                    *x = -*x;
                }
                o
            };
            if mask & 1 != 0 {
                self.jac.add_block(a, a as u32, &da);
                self.jac.add_block(a, b as u32, &db);
            }
            if mask & 2 != 0 {
                self.jac.add_block(b, a as u32, &neg(&da));
                self.jac.add_block(b, b as u32, &neg(&db));
            }
        }
        for &(v, n, tag) in &self.bc_local {
            let v = v as usize;
            let q: [f64; 4] = u[v * 4..v * 4 + 4].try_into().unwrap();
            let block = match tag {
                fun3d_mesh::BcTag::SlipWall | fun3d_mesh::BcTag::Symmetry => {
                    let mut b = [0.0f64; 16];
                    b[4] = n[0];
                    b[8] = n[1];
                    b[12] = n[2];
                    b
                }
                fun3d_mesh::BcTag::FarField => {
                    let qm = [
                        0.5 * (q[0] + self.setup.cond.qinf[0]),
                        0.5 * (q[1] + self.setup.cond.qinf[1]),
                        0.5 * (q[2] + self.setup.cond.qinf[2]),
                        0.5 * (q[3] + self.setup.cond.qinf[3]),
                    ];
                    let lam = euler::spectral_radius(&qm, &n, beta);
                    let mut b = euler::flux_jacobian(&q, &n, beta);
                    for x in b.iter_mut() {
                        *x *= 0.5;
                    }
                    for d in 0..4 {
                        b[d * 4 + d] += 0.5 * lam;
                    }
                    b
                }
            };
            self.jac.add_block(v, v as u32, &block);
        }
        // pseudo-time shift on owned diagonals
        for v in 0..self.sub.nowned() {
            let vdt = self.vol[v] / dt;
            let k = self.jac.find(v, v as u32).unwrap();
            self.jac.blocks[k * 16] += vdt / beta;
            for d in 1..4 {
                self.jac.blocks[k * 16 + d * 4 + d] += vdt;
            }
        }
        self.factors = Some(local_ilu(&self.jac, &self.sub, fill));
    }

    fn apply_precond(&self, r: &[f64], z: &mut [f64]) {
        let f = self.factors.as_ref().expect("preconditioner built");
        let x = trsv::solve(f, r);
        z.copy_from_slice(&x);
    }
}

/// Per-rank outcome of a distributed pseudo-transient solve.
#[derive(Clone, Debug)]
pub struct DistPtcStats {
    /// Pseudo-time steps.
    pub time_steps: usize,
    /// Total linear iterations.
    pub linear_iters: usize,
    /// Global residual norms per step.
    pub res_history: Vec<f64>,
    /// Converged?
    pub converged: bool,
}

/// Runs the distributed ΨNKS solve on one rank (call from every rank of
/// a [`crate::comm::Universe`]). Returns the owned state and statistics
/// (identical stats on every rank).
pub fn solve(
    comm: &Comm,
    app: &mut RankApp<'_>,
    dt0: f64,
    rtol: f64,
    max_steps: usize,
    fill: usize,
) -> (Vec<f64>, DistPtcStats) {
    let n = app.nowned4();
    let mut u = app.initial_state();
    let mut grad = vec![0.0; app.sub.nlocal() * 12];
    let mut r = vec![0.0; n];
    let mut shift_dt;

    app.residual(comm, &mut u, &mut grad, &mut r);
    let res0 = dnorm2(comm, &r);
    let mut res = res0;
    let mut stats = DistPtcStats {
        time_steps: 0,
        linear_iters: 0,
        res_history: vec![res0],
        converged: false,
    };

    for step in 0..max_steps {
        shift_dt = (dt0 * res0 / res).min(1e12);
        app.build_preconditioner(&u, shift_dt, fill);

        // matrix-free distributed GMRES on (V/Δt + J) δ = −r
        let mut delta = vec![0.0; n];
        let iters = dist_gmres_matrix_free(comm, app, &u, &r, shift_dt, &mut delta, 30, 1e-3, 200);
        stats.linear_iters += iters;
        for i in 0..n {
            u[i] += delta[i];
        }
        app.residual(comm, &mut u, &mut grad, &mut r);
        res = dnorm2(comm, &r);
        stats.time_steps = step + 1;
        stats.res_history.push(res);
        if res <= rtol * res0 {
            stats.converged = true;
            break;
        }
        if !res.is_finite() {
            break;
        }
    }
    (u[..n].to_vec(), stats)
}

/// Left-preconditioned distributed GMRES where the operator action is a
/// finite difference of the distributed residual plus the pseudo-time
/// diagonal. Returns iterations.
#[allow(clippy::too_many_arguments)]
fn dist_gmres_matrix_free(
    comm: &Comm,
    app: &RankApp<'_>,
    u: &[f64],
    r0: &[f64],
    dt: f64,
    x: &mut [f64],
    restart: usize,
    rtol: f64,
    max_iters: usize,
) -> usize {
    let n = app.nowned4();
    let nlocal = app.nlocal4();
    let unorm = dnorm2(comm, &u[..n]);
    let mut grad = vec![0.0; app.sub.nlocal() * 12];
    let mut upert = vec![0.0; nlocal];
    let mut rpert = vec![0.0; n];

    // operator: y = shift .* v + (R(u + eps v) - R(u)) / eps
    let mut apply = |v: &[f64], y: &mut [f64], comm: &Comm| {
        let vnorm = dnorm2(comm, v);
        if vnorm == 0.0 {
            y.iter_mut().for_each(|z| *z = 0.0);
            return;
        }
        let eps = f64::EPSILON.sqrt() * (1.0 + unorm) / vnorm;
        upert[..n].copy_from_slice(&u[..n]);
        for i in 0..n {
            upert[i] += eps * v[i];
        }
        app.residual(comm, &mut upert, &mut grad, &mut rpert);
        let inv = 1.0 / eps;
        for i in 0..n {
            y[i] = (rpert[i] - r0[i]) * inv;
        }
        for vtx in 0..app.sub.nowned() {
            let vdt = app.vol[vtx] / dt;
            y[vtx * 4] += vdt / app.setup.cond.beta * v[vtx * 4];
            for c in 1..4 {
                y[vtx * 4 + c] += vdt * v[vtx * 4 + c];
            }
        }
    };

    let b: Vec<f64> = r0.iter().map(|x| -x).collect();
    let mut w = vec![0.0; n];
    let mut z = vec![0.0; n];
    let mut basis: Vec<Vec<f64>> = (0..restart + 1).map(|_| vec![0.0; n]).collect();
    let mut h = vec![0.0; (restart + 1) * restart];
    let mut total = 0usize;
    let mut res0g = f64::NAN;

    loop {
        apply(x, &mut w, comm);
        for i in 0..n {
            w[i] = b[i] - w[i];
        }
        app.apply_precond(&w, &mut z);
        let beta = dnorm2(comm, &z);
        if res0g.is_nan() {
            res0g = beta;
        }
        if beta <= rtol * res0g || beta == 0.0 || total >= max_iters {
            return total;
        }
        for i in 0..n {
            basis[0][i] = z[i] / beta;
        }
        let mut g = vec![0.0; restart + 1];
        g[0] = beta;
        let mut cs = vec![0.0; restart];
        let mut sn = vec![0.0; restart];
        let mut kdone = 0usize;
        let mut res = beta;
        let mut converged = false;

        for k in 0..restart {
            if total >= max_iters {
                break;
            }
            total += 1;
            apply(&basis[k], &mut w, comm);
            app.apply_precond(&w, &mut z);
            let mut dots_local = vec![0.0; k + 1];
            for (j, vj) in basis[..=k].iter().enumerate() {
                dots_local[j] = z.iter().zip(vj).map(|(a, b)| a * b).sum();
            }
            let dots = comm.allreduce_sum(&dots_local);
            for (j, vj) in basis[..=k].iter().enumerate() {
                for i in 0..n {
                    z[i] -= dots[j] * vj[i];
                }
                h[k * (restart + 1) + j] = dots[j];
            }
            let hnorm = dnorm2(comm, &z);
            h[k * (restart + 1) + k + 1] = hnorm;
            kdone = k + 1;
            if hnorm > 1e-14 * res.max(1.0) {
                for i in 0..n {
                    basis[k + 1][i] = z[i] / hnorm;
                }
            }
            let col = &mut h[k * (restart + 1)..(k + 1) * (restart + 1)];
            for i in 0..k {
                let t = cs[i] * col[i] + sn[i] * col[i + 1];
                col[i + 1] = -sn[i] * col[i] + cs[i] * col[i + 1];
                col[i] = t;
            }
            let denom = (col[k] * col[k] + col[k + 1] * col[k + 1]).sqrt();
            let (c, s) = if col[k + 1] == 0.0 {
                (1.0, 0.0)
            } else {
                (col[k] / denom, col[k + 1] / denom)
            };
            cs[k] = c;
            sn[k] = s;
            col[k] = c * col[k] + s * col[k + 1];
            col[k + 1] = 0.0;
            let t = c * g[k] + s * g[k + 1];
            g[k + 1] = -s * g[k] + c * g[k + 1];
            g[k] = t;
            res = g[k + 1].abs();
            if res <= rtol * res0g || hnorm <= 1e-14 * res.max(1.0) {
                converged = true;
                break;
            }
        }
        let mut y = vec![0.0; kdone];
        for i in (0..kdone).rev() {
            let mut acc = g[i];
            for j in i + 1..kdone {
                acc -= h[j * (restart + 1) + i] * y[j];
            }
            y[i] = acc / h[i * (restart + 1) + i];
        }
        for (j, vj) in basis[..kdone].iter().enumerate() {
            for i in 0..n {
                x[i] += y[j] * vj[i];
            }
        }
        if converged || total >= max_iters {
            return total;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comm::Universe;
    use fun3d_core::{Fun3dApp, OptConfig};
    use fun3d_mesh::generator::MeshPreset;
    use fun3d_solver::ptc::PtcConfig;

    fn serial_reference() -> (Mesh, Vec<f64>) {
        let mut mesh = MeshPreset::Tiny.build();
        Fun3dApp::rcm_reorder(&mut mesh);
        let mut app = Fun3dApp::new(mesh.clone(), FlowConditions::default(), OptConfig::baseline());
        let (u, stats) = app.run(&PtcConfig {
            dt0: 2.0,
            rtol: 1e-8,
            max_steps: 80,
            ..Default::default()
        });
        assert!(stats.converged);
        (mesh, u)
    }

    fn distributed_solution(mesh: &Mesh, nranks: usize) -> Vec<f64> {
        let setup = GlobalSetup::new(mesh.clone(), FlowConditions::default(), nranks);
        let setup_ref = &setup;
        let results = Universe::run(nranks, move |comm| {
            let mut app = RankApp::new(setup_ref, comm.rank());
            let (u, stats) = solve(&comm, &mut app, 2.0, 1e-8, 80, 1);
            assert!(stats.converged, "rank {} diverged", comm.rank());
            (app.sub.owned.clone(), u)
        });
        let n = mesh.nvertices() * 4;
        let mut ug = vec![0.0; n];
        for (owned, u) in results {
            for (l, &g) in owned.iter().enumerate() {
                ug[g as usize * 4..g as usize * 4 + 4].copy_from_slice(&u[l * 4..l * 4 + 4]);
            }
        }
        ug
    }

    #[test]
    fn distributed_residual_matches_serial_residual() {
        // The masked distributed residual, stitched over ranks, must equal
        // the serial residual of the same state bit-for-bit in structure
        // (same discretization; FP order differs only in gradient halo
        // rounding — expect agreement to tight tolerance).
        let mut mesh = MeshPreset::Tiny.build();
        Fun3dApp::rcm_reorder(&mut mesh);
        let cond = FlowConditions::default();

        // serial residual at a randomized state
        let dual = DualMesh::build(&mesh);
        let geom = EdgeGeom::build(&mesh, &dual);
        let bc = BcData::build(&dual);
        let mut node = fun3d_core::NodeAos::zeros(mesh.nvertices());
        node.set_freestream(&cond.qinf);
        let mut rng = fun3d_util::Rng64::new(77);
        for x in node.q.iter_mut() {
            *x += rng.range_f64(-0.05, 0.05);
        }
        let ug = node.q.clone();
        fun3d_core::gradient::green_gauss(&geom, &bc, &dual.vol, &mut node);
        let mut r_serial = vec![0.0; mesh.nvertices() * 4];
        fun3d_core::flux::serial_aos(&geom, &node, cond.beta, &mut r_serial);
        fun3d_core::bc::residual(&bc, &node, &cond, &mut r_serial);

        // distributed residual at the same state
        let nranks = 3;
        let setup = GlobalSetup::new(mesh.clone(), cond, nranks);
        let setup_ref = &setup;
        let ug_ref = &ug;
        let results = Universe::run(nranks, move |comm| {
            let app = RankApp::new(setup_ref, comm.rank());
            let mut u = vec![0.0; app.nlocal4()];
            for (l, &g) in app.sub.owned.iter().enumerate() {
                u[l * 4..l * 4 + 4]
                    .copy_from_slice(&ug_ref[g as usize * 4..g as usize * 4 + 4]);
            }
            let mut grad = vec![0.0; app.sub.nlocal() * 12];
            let mut r = vec![0.0; app.nowned4()];
            app.residual(&comm, &mut u, &mut grad, &mut r);
            (app.sub.owned.clone(), r)
        });
        let mut r_dist = vec![0.0; mesh.nvertices() * 4];
        for (owned, r) in results {
            for (l, &g) in owned.iter().enumerate() {
                r_dist[g as usize * 4..g as usize * 4 + 4]
                    .copy_from_slice(&r[l * 4..l * 4 + 4]);
            }
        }
        let scale = r_serial.iter().map(|x| x.abs()).fold(0.0, f64::max);
        for i in 0..r_serial.len() {
            assert!(
                (r_serial[i] - r_dist[i]).abs() < 1e-11 * scale.max(1.0),
                "entry {i}: serial {} vs dist {}",
                r_serial[i],
                r_dist[i]
            );
        }
    }

    #[test]
    fn distributed_nonlinear_solve_matches_serial() {
        let (mesh, u_serial) = serial_reference();
        for nranks in [1usize, 3] {
            let u_dist = distributed_solution(&mesh, nranks);
            let diff: f64 = u_serial
                .iter()
                .zip(&u_dist)
                .map(|(a, b)| (a - b) * (a - b))
                .sum::<f64>()
                .sqrt();
            let norm: f64 = u_serial.iter().map(|v| v * v).sum::<f64>().sqrt();
            assert!(
                diff < 1e-4 * norm,
                "nranks={nranks}: states differ by {diff} (norm {norm})"
            );
        }
    }
}
