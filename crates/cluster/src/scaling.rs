//! Strong-scaling simulator for the multi-node experiments (Figs. 9–11).
//!
//! The simulator combines three ingredients:
//!
//! 1. **real decompositions** — the multilevel partitioner produces
//!    per-rank workloads (owned vertices, processed edges including
//!    replication, halo sizes, neighbor counts), so load imbalance and
//!    surface-to-volume effects are measured, not assumed;
//! 2. **machine model** — per-rank kernel times on the Stampede node
//!    (ranks on a socket share its bandwidth), allreduce and halo costs
//!    from the FDR fat-tree model;
//! 3. **convergence model** — single-level additive Schwarz degrades
//!    with subdomain count; the iteration multiplier
//!    `1 + α·ln(R/R₀)` is calibrated to the paper's "+30% iterations at
//!    256 nodes (4096 ranks)" and its *shape* is validated against real
//!    distributed solves in [`crate::dsolve`] at feasible rank counts.
//!
//! When the requested mesh is larger than what this container can
//! partition in reasonable time, the harness decomposes a smaller
//! geometrically-similar mesh and rescales per-rank volumes linearly and
//! surfaces by the ⅔ power (documented in EXPERIMENTS.md).

use crate::decompose::Decomposition;
use fun3d_machine::{EdgeLoopCosts, MachineSpec, NetworkSpec, RecurrenceCosts};

/// Per-rank workload extracted from a decomposition.
#[derive(Clone, Debug)]
pub struct RankLoad {
    /// Owned block rows.
    pub rows: f64,
    /// Edges processed (cut edges counted on both sides).
    pub edges: f64,
    /// Factor blocks touched per TRSV sweep (L + U + diagonal).
    pub trsv_blocks: f64,
    /// Block operations per ILU factorization.
    pub ilu_blocks: f64,
    /// Doubles sent per halo exchange.
    pub halo_doubles: f64,
    /// Neighbor ranks.
    pub neighbors: f64,
}

/// The workload of every rank plus global iteration statistics.
#[derive(Clone, Debug)]
pub struct Workload {
    /// Per-rank loads.
    pub ranks: Vec<RankLoad>,
}

impl Workload {
    /// Extracts real per-rank loads from a decomposition. `fill_factor`
    /// approximates the factor-blocks-per-row ratio (ILU(0) on a mesh
    /// pattern: ~7 lower+upper blocks per row + diagonal; ILU(1): ~2.1×).
    pub fn from_decomposition(decomp: &Decomposition, fill_factor: f64) -> Workload {
        let ranks = decomp
            .subdomains
            .iter()
            .map(|s| {
                let rows = s.nowned() as f64;
                let edges = s.edges.len() as f64;
                // factored blocks per row ≈ (2·local edges/vertex + 1)·fill
                let blocks_per_row = (2.0 * edges / rows.max(1.0) + 1.0) * fill_factor;
                RankLoad {
                    rows,
                    edges,
                    trsv_blocks: rows * blocks_per_row,
                    ilu_blocks: rows * blocks_per_row * 2.2,
                    halo_doubles: s.halo_doubles() as f64,
                    neighbors: s.nneighbors() as f64,
                }
            })
            .collect();
        Workload { ranks }
    }

    /// Rescales the workload to a mesh `vol_factor` times larger:
    /// volumetric quantities scale linearly, surface quantities by the
    /// ⅔ power.
    pub fn rescale(&self, vol_factor: f64) -> Workload {
        let surf = vol_factor.powf(2.0 / 3.0);
        Workload {
            ranks: self
                .ranks
                .iter()
                .map(|r| RankLoad {
                    rows: r.rows * vol_factor,
                    edges: r.edges * vol_factor,
                    trsv_blocks: r.trsv_blocks * vol_factor,
                    ilu_blocks: r.ilu_blocks * vol_factor,
                    halo_doubles: r.halo_doubles * surf,
                    neighbors: r.neighbors,
                })
                .collect(),
        }
    }
}

/// Surface-to-volume scaling model, calibrated from a *real*
/// decomposition at a feasible rank count and used to synthesize
/// per-rank workloads at rank counts where decomposing the full mesh on
/// this container would be degenerate or too slow (e.g. 4096 ranks of
/// Mesh-D).
///
/// For a k-way partition of a 3D mesh, per-rank surface (halo, cut
/// edges) scales as `(V/k)^(2/3)`; the coefficient and the measured
/// imbalance come from the calibration decomposition.
#[derive(Clone, Copy, Debug)]
pub struct SurfaceModel {
    /// Halo doubles per rank per unit `(V/k)^(2/3)`.
    pub halo_coeff: f64,
    /// Replicated (cut) edges per rank per unit `(V/k)^(2/3)`.
    pub cut_coeff: f64,
    /// Max/mean row imbalance observed.
    pub imbalance: f64,
    /// Mean neighbor count observed.
    pub neighbors: f64,
    /// Edges per vertex of the mesh family.
    pub edges_per_vertex: f64,
}

impl SurfaceModel {
    /// Calibrates from a real decomposition of (`nvertices`, `edges`)
    /// over `ranks` ranks.
    pub fn calibrate(nvertices: usize, edges: &[[u32; 2]], ranks: usize) -> SurfaceModel {
        let decomp = Decomposition::build(nvertices, edges, ranks);
        let w = Workload::from_decomposition(&decomp, 1.0);
        let vk = (nvertices as f64 / ranks as f64).powf(2.0 / 3.0);
        let mean =
            |f: &dyn Fn(&RankLoad) -> f64| w.ranks.iter().map(|r| f(r)).sum::<f64>() / ranks as f64;
        let halo_coeff = mean(&|r| r.halo_doubles) / vk;
        let interior_edges = edges.len() as f64 / ranks as f64;
        let cut_coeff = (mean(&|r| r.edges) - interior_edges).max(0.0) / vk;
        let max_rows = w.ranks.iter().map(|r| r.rows).fold(0.0f64, f64::max);
        SurfaceModel {
            halo_coeff,
            cut_coeff,
            imbalance: max_rows / mean(&|r| r.rows),
            neighbors: mean(&|r| r.neighbors),
            edges_per_vertex: edges.len() as f64 / nvertices as f64,
        }
    }

    /// Synthesizes a workload for `ranks` ranks of a mesh with
    /// `nvertices` vertices, using the calibrated surface laws.
    pub fn workload(&self, ranks: usize, nvertices: f64, fill_factor: f64) -> Workload {
        let rows_mean = nvertices / ranks as f64;
        let vk = rows_mean.powf(2.0 / 3.0);
        let interior = rows_mean * self.edges_per_vertex;
        let edges_mean = interior + self.cut_coeff * vk;
        let blocks_per_row = (2.0 * edges_mean / rows_mean + 1.0) * fill_factor;
        let loads: Vec<RankLoad> = (0..ranks)
            .map(|r| {
                // one max-loaded rank carries the calibrated imbalance;
                // the rest sit slightly below the mean to conserve totals
                let scale = if r == 0 {
                    self.imbalance
                } else {
                    (ranks as f64 - self.imbalance) / (ranks as f64 - 1.0).max(1.0)
                };
                RankLoad {
                    rows: rows_mean * scale,
                    edges: edges_mean * scale,
                    trsv_blocks: rows_mean * scale * blocks_per_row,
                    ilu_blocks: rows_mean * scale * blocks_per_row * 2.2,
                    halo_doubles: self.halo_coeff * vk,
                    neighbors: self.neighbors,
                }
            })
            .collect();
        Workload { ranks: loads }
    }
}

/// Execution style of a scaling configuration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExecStyle {
    /// 16 MPI ranks per node, out-of-the-box kernels.
    Baseline,
    /// 16 MPI ranks per node, cache+SIMD-optimized kernels.
    Optimized,
    /// 2 ranks per node × 8 threads, all shared-memory optimizations.
    Hybrid,
}

/// Scaling-study parameters.
#[derive(Clone, Copy, Debug)]
pub struct ScalingConfig {
    /// Execution style.
    pub style: ExecStyle,
    /// Cores (= MPI ranks in the pure-MPI styles) per node.
    pub cores_per_node: usize,
    /// Pseudo-time steps of the run (Mesh-D: 29).
    pub time_steps: f64,
    /// Linear iterations at the reference rank count (Mesh-D: 1709).
    pub base_linear_iters: f64,
    /// Reference rank count for the convergence model.
    pub base_ranks: f64,
    /// Convergence-degradation coefficient α in `1 + α·ln(R/R₀)`,
    /// calibrated to +30% at 4096/16 ranks → 0.3/ln(256).
    pub alpha: f64,
    /// Serial (unthreaded PETSc primitives) fraction of per-iteration
    /// compute for the Hybrid style (Section VI.B.3's Amdahl term).
    pub unthreaded_fraction: f64,
    /// GMRES restart (allreduce message sizing).
    pub restart: f64,
}

impl ScalingConfig {
    /// The paper's Mesh-D study defaults for a given style.
    pub fn mesh_d(style: ExecStyle) -> ScalingConfig {
        ScalingConfig {
            style,
            cores_per_node: 16,
            time_steps: 29.0,
            base_linear_iters: 1709.0,
            base_ranks: 16.0,
            alpha: 0.3 / (256.0f64).ln(),
            unthreaded_fraction: 0.10,
            restart: 30.0,
        }
    }

    /// Ranks per node for the style.
    pub fn ranks_per_node(&self) -> usize {
        match self.style {
            ExecStyle::Baseline | ExecStyle::Optimized => self.cores_per_node,
            ExecStyle::Hybrid => 2,
        }
    }

    /// Threads per rank for the style.
    pub fn threads_per_rank(&self) -> usize {
        match self.style {
            ExecStyle::Baseline | ExecStyle::Optimized => 1,
            ExecStyle::Hybrid => self.cores_per_node / 2,
        }
    }
}

/// One simulated scaling point.
#[derive(Clone, Copy, Debug)]
pub struct ScalingPoint {
    /// Nodes used.
    pub nodes: usize,
    /// Total MPI ranks.
    pub ranks: usize,
    /// Linear iterations after convergence degradation.
    pub linear_iters: f64,
    /// Seconds of compute.
    pub compute_s: f64,
    /// Seconds in allreduce.
    pub allreduce_s: f64,
    /// Seconds in point-to-point halo exchange.
    pub halo_s: f64,
    /// Total seconds.
    pub total_s: f64,
}

impl ScalingPoint {
    /// Fraction of total time spent communicating.
    pub fn comm_fraction(&self) -> f64 {
        (self.allreduce_s + self.halo_s) / self.total_s
    }

    /// Allreduce share of communication time.
    pub fn allreduce_share(&self) -> f64 {
        let comm = self.allreduce_s + self.halo_s;
        if comm > 0.0 {
            self.allreduce_s / comm
        } else {
            0.0
        }
    }
}

/// Simulates one scaling point from a per-rank workload.
pub fn simulate_point(
    machine: &MachineSpec,
    net: &NetworkSpec,
    cfg: &ScalingConfig,
    nodes: usize,
    load: &Workload,
) -> ScalingPoint {
    let ranks = load.ranks.len();
    assert_eq!(ranks, nodes * cfg.ranks_per_node(), "workload/rank mismatch");
    let edge_costs = EdgeLoopCosts::default();
    let rec_costs = RecurrenceCosts::default();
    let cycles_per_edge = match cfg.style {
        ExecStyle::Baseline => edge_costs.scalar_soa,
        ExecStyle::Optimized | ExecStyle::Hybrid => edge_costs.simd_prefetch,
    };

    // Iterations with Schwarz degradation. Hybrid has 8× fewer
    // subdomains, hence fewer iterations — the coupling argument of
    // Section VI.B.3.
    let linear_iters = cfg.base_linear_iters
        * (1.0 + cfg.alpha * (ranks as f64 / cfg.base_ranks).max(1.0).ln());

    // --- compute time per linear iteration -------------------------
    // Ranks on one socket share its bandwidth; model the busiest socket.
    let ranks_per_socket = (cfg.ranks_per_node() / 2).max(1);
    // Active cores per socket = ranks × threads (hybrid ranks span the
    // socket), bounding how much of the socket's bandwidth is reachable.
    let cores_per_socket = (ranks_per_socket * cfg.threads_per_rank()).min(machine.cores);
    let socket_time = |per_rank: &dyn Fn(&RankLoad) -> f64, shared_bytes: &dyn Fn(&RankLoad) -> f64| -> f64 {
        let mut worst: f64 = 0.0;
        for chunk in load.ranks.chunks(ranks_per_socket) {
            let t_compute = chunk.iter().map(|r| per_rank(r)).fold(0.0f64, f64::max);
            let bytes: f64 = chunk.iter().map(|r| shared_bytes(r)).sum();
            let bw = machine.bandwidth_at(cores_per_socket);
            let t_mem = bytes / (bw * 1e9);
            worst = worst.max(t_compute.max(t_mem));
        }
        worst
    };

    // The FUN3D kernels (flux, TRSV, ILU) are fully threaded in the
    // Hybrid style; the unthreaded PETSc vector/scatter primitives stay
    // on one core (the Amdahl term of Section VI.B.3).
    let tpr = cfg.threads_per_rank() as f64;

    // flux (matrix-free matvec ≙ one residual eval) per iteration
    let flux_per_iter = socket_time(
        &|r| machine.seconds(r.edges * cycles_per_edge) / tpr,
        &|r| r.edges * edge_costs.dram_bytes_per_edge,
    );
    // preconditioner TRSV per iteration
    let trsv_per_iter = socket_time(
        &|r| machine.seconds(r.trsv_blocks * rec_costs.trsv_cycles_per_block) / tpr,
        &|r| r.trsv_blocks * rec_costs.trsv_bytes_per_block,
    );
    // Vector primitives per iteration: `unthreaded_fraction` of a rank's
    // single-core kernel time; threaded (scales with ranks) in the pure
    // MPI styles, serial per rank in Hybrid.
    let rank_serial_cycles = load
        .ranks
        .iter()
        .map(|r| {
            r.edges * cycles_per_edge + r.trsv_blocks * rec_costs.trsv_cycles_per_block
        })
        .fold(0.0f64, f64::max);
    let vec_per_iter = cfg.unthreaded_fraction
        * machine.seconds(rank_serial_cycles)
        * if cfg.style == ExecStyle::Hybrid { 1.0 } else { 1.0 / tpr };

    // per time step: gradient+Jacobian (≈ 0.5 flux evals) + ILU
    let ilu_per_step = socket_time(
        &|r| machine.seconds(r.ilu_blocks * rec_costs.ilu_cycles_per_block) / tpr,
        &|r| r.ilu_blocks * rec_costs.ilu_bytes_per_block,
    );
    let per_step_extra = 0.5 * flux_per_iter + ilu_per_step;

    let compute_s = linear_iters * (flux_per_iter + trsv_per_iter + vec_per_iter)
        + cfg.time_steps * per_step_extra;

    // --- communication ----------------------------------------------
    // 2 allreduces per iteration (VecMDot fused + VecNorm), small
    // messages; plus 2 norms per time step.
    let mdot_bytes = 8.0 * cfg.restart / 2.0;
    let allreduce_per_iter = net.allreduce_time(ranks, nodes, mdot_bytes)
        + net.allreduce_time(ranks, nodes, 8.0);
    // Profilers such as mpiP attribute *wait* time at the collective to
    // MPI_Allreduce: ranks arriving early sit in the collective until the
    // slowest arrives. Charge the real per-rank imbalance (max − mean of
    // the compute entering each collective) plus the OS-noise straggling
    // that grows with participant count — this is what makes Mesh-D
    // communication-bound at 256 nodes even though the wire time of a
    // 240-byte allreduce is tiny.
    let mean_rank_edges = load.ranks.iter().map(|r| r.edges).sum::<f64>() / ranks as f64;
    let max_rank_edges = load.ranks.iter().map(|r| r.edges).fold(0.0f64, f64::max);
    let imbalance_wait = machine
        .seconds((max_rank_edges - mean_rank_edges) * cycles_per_edge)
        / tpr;
    let noise_wait = net.noise_wait(nodes);
    let allreduce_s = linear_iters * (2.0 * (allreduce_per_iter / 2.0 + imbalance_wait + noise_wait))
        + cfg.time_steps * 2.0 * net.allreduce_time(ranks, nodes, 8.0);

    // 1 halo exchange per matvec; worst rank's halo
    let halo_per_iter = load
        .ranks
        .iter()
        .map(|r| net.halo_time(r.neighbors as usize, r.halo_doubles * 8.0 / r.neighbors.max(1.0), nodes == 1))
        .fold(0.0f64, f64::max);
    let halo_s = (linear_iters + cfg.time_steps) * halo_per_iter;

    ScalingPoint {
        nodes,
        ranks,
        linear_iters,
        compute_s,
        allreduce_s,
        halo_s,
        total_s: compute_s + allreduce_s + halo_s,
    }
}

/// Builds a workload for `nodes` nodes by decomposing `edges` over the
/// rank count (real partitioner) and rescaling to `vol_factor`.
pub fn workload_for(
    nvertices: usize,
    edges: &[[u32; 2]],
    cfg: &ScalingConfig,
    nodes: usize,
    vol_factor: f64,
    fill_factor: f64,
) -> Workload {
    let ranks = nodes * cfg.ranks_per_node();
    let decomp = Decomposition::build(nvertices, edges, ranks);
    Workload::from_decomposition(&decomp, fill_factor).rescale(vol_factor)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fun3d_mesh::generator::MeshPreset;

    fn small_workload(nodes: usize, cfg: &ScalingConfig) -> Workload {
        let m = MeshPreset::Small.build();
        workload_for(m.nvertices(), &m.edges(), cfg, nodes, 1.0, 2.0)
    }

    #[test]
    fn compute_shrinks_with_nodes() {
        let machine = MachineSpec::xeon_e5_2680();
        let net = NetworkSpec::stampede_fdr();
        let cfg = ScalingConfig::mesh_d(ExecStyle::Optimized);
        let p1 = simulate_point(&machine, &net, &cfg, 1, &small_workload(1, &cfg));
        let p4 = simulate_point(&machine, &net, &cfg, 4, &small_workload(4, &cfg));
        assert!(p4.compute_s < p1.compute_s / 2.0);
    }

    #[test]
    fn comm_fraction_grows_with_nodes() {
        let machine = MachineSpec::xeon_e5_2680();
        let net = NetworkSpec::stampede_fdr();
        let cfg = ScalingConfig::mesh_d(ExecStyle::Optimized);
        let p1 = simulate_point(&machine, &net, &cfg, 1, &small_workload(1, &cfg));
        let p8 = simulate_point(&machine, &net, &cfg, 8, &small_workload(8, &cfg));
        assert!(p8.comm_fraction() > p1.comm_fraction());
    }

    #[test]
    fn optimized_beats_baseline_at_all_scales() {
        let machine = MachineSpec::xeon_e5_2680();
        let net = NetworkSpec::stampede_fdr();
        for nodes in [1usize, 2, 4] {
            let cb = ScalingConfig::mesh_d(ExecStyle::Baseline);
            let co = ScalingConfig::mesh_d(ExecStyle::Optimized);
            let pb = simulate_point(&machine, &net, &cb, nodes, &small_workload(nodes, &cb));
            let po = simulate_point(&machine, &net, &co, nodes, &small_workload(nodes, &co));
            assert!(
                po.total_s < pb.total_s,
                "nodes={nodes}: optimized {} vs baseline {}",
                po.total_s,
                pb.total_s
            );
        }
    }

    #[test]
    fn hybrid_between_baseline_and_optimized() {
        // Realistic regime: Mesh-D-scale per-rank workloads synthesized
        // through the calibrated surface model (a raw decomposition of
        // the tiny test mesh over 64 ranks would be degenerate).
        let machine = MachineSpec::xeon_e5_2680();
        let net = NetworkSpec::stampede_fdr();
        let m = MeshPreset::Small.build();
        let sm = SurfaceModel::calibrate(m.nvertices(), &m.edges(), 8);
        let mesh_d_verts = 2.76e6;
        for nodes in [4usize, 64] {
            let cb = ScalingConfig::mesh_d(ExecStyle::Baseline);
            let co = ScalingConfig::mesh_d(ExecStyle::Optimized);
            let ch = ScalingConfig::mesh_d(ExecStyle::Hybrid);
            let wl = |cfg: &ScalingConfig| {
                sm.workload(nodes * cfg.ranks_per_node(), mesh_d_verts, 2.0)
            };
            let pb = simulate_point(&machine, &net, &cb, nodes, &wl(&cb));
            let po = simulate_point(&machine, &net, &co, nodes, &wl(&co));
            let ph = simulate_point(&machine, &net, &ch, nodes, &wl(&ch));
            assert!(
                ph.total_s < pb.total_s,
                "nodes={nodes}: hybrid {} must beat baseline {}",
                ph.total_s,
                pb.total_s
            );
            assert!(
                po.total_s < ph.total_s,
                "nodes={nodes}: MPI-only optimized {} beats hybrid {}",
                po.total_s,
                ph.total_s
            );
        }
    }

    #[test]
    fn iterations_grow_with_ranks() {
        let cfg = ScalingConfig::mesh_d(ExecStyle::Optimized);
        let machine = MachineSpec::xeon_e5_2680();
        let net = NetworkSpec::stampede_fdr();
        let p1 = simulate_point(&machine, &net, &cfg, 1, &small_workload(1, &cfg));
        let p8 = simulate_point(&machine, &net, &cfg, 8, &small_workload(8, &cfg));
        assert!(p8.linear_iters > p1.linear_iters);
        // calibration: 4096 ranks should land at about +30%
        let mult = 1.0 + cfg.alpha * (4096.0f64 / 16.0).ln();
        assert!((mult - 1.3).abs() < 0.01);
    }

    #[test]
    fn rescale_laws() {
        let cfg = ScalingConfig::mesh_d(ExecStyle::Optimized);
        let w = small_workload(1, &cfg);
        let w8 = w.rescale(8.0);
        for (a, b) in w.ranks.iter().zip(&w8.ranks) {
            assert!((b.rows - 8.0 * a.rows).abs() < 1e-9);
            assert!((b.halo_doubles - 4.0 * a.halo_doubles).abs() < 1e-6);
        }
    }

    #[test]
    fn surface_model_matches_real_decomposition_scale() {
        // Calibrate at 8 ranks, synthesize at 8 ranks: totals must match
        // the real decomposition closely.
        let m = MeshPreset::Small.build();
        let edges = m.edges();
        let sm = SurfaceModel::calibrate(m.nvertices(), &edges, 8);
        let synth = sm.workload(8, m.nvertices() as f64, 1.0);
        let decomp = Decomposition::build(m.nvertices(), &edges, 8);
        let real = Workload::from_decomposition(&decomp, 1.0);
        let total = |w: &Workload, f: &dyn Fn(&RankLoad) -> f64| -> f64 {
            w.ranks.iter().map(|r| f(r)).sum()
        };
        let rows_err = (total(&synth, &|r| r.rows) - total(&real, &|r| r.rows)).abs()
            / total(&real, &|r| r.rows);
        assert!(rows_err < 0.01, "rows err {rows_err}");
        let edges_err = (total(&synth, &|r| r.edges) - total(&real, &|r| r.edges)).abs()
            / total(&real, &|r| r.edges);
        assert!(edges_err < 0.05, "edges err {edges_err}");
        let halo_err =
            (total(&synth, &|r| r.halo_doubles) - total(&real, &|r| r.halo_doubles)).abs()
                / total(&real, &|r| r.halo_doubles);
        assert!(halo_err < 0.1, "halo err {halo_err}");
    }

    #[test]
    fn surface_model_replication_shrinks_with_subdomain_size() {
        // Surface-to-volume: the replicated fraction of edges must fall
        // as subdomains grow (fixed rank count, growing mesh).
        let m = MeshPreset::Small.build();
        let sm = SurfaceModel::calibrate(m.nvertices(), &m.edges(), 8);
        let frac = |verts: f64| {
            let w = sm.workload(8, verts, 1.0);
            let total_edges: f64 = w.ranks.iter().map(|r| r.edges).sum();
            let interior = verts * sm.edges_per_vertex;
            (total_edges - interior) / interior
        };
        assert!(frac(1e6) < frac(1e4), "{} vs {}", frac(1e6), frac(1e4));
    }

    #[test]
    fn hybrid_has_fewer_ranks() {
        let ch = ScalingConfig::mesh_d(ExecStyle::Hybrid);
        assert_eq!(ch.ranks_per_node(), 2);
        assert_eq!(ch.threads_per_rank(), 8);
        let w = small_workload(4, &ch);
        assert_eq!(w.ranks.len(), 8);
    }
}
