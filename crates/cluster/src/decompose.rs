//! Schwarz domain decomposition over ranks.
//!
//! Vertices are partitioned across ranks (with the multilevel
//! partitioner); each rank stores its **owned** vertices plus a one-deep
//! **ghost** layer (neighbors owned elsewhere). Edges with at least one
//! owned endpoint are processed locally (cut edges on both sides,
//! owner-only writes — the rank-level mirror of the thread strategy), and
//! ghost state is refreshed by a halo exchange before each evaluation.
//! The same structure yields the per-rank workload statistics the
//! scaling simulator charges to the machine model.

use fun3d_mesh::Graph;
use fun3d_partition::{partition_graph, MultilevelConfig, Partition};

/// One rank's piece of the domain.
#[derive(Clone, Debug)]
pub struct Subdomain {
    /// Owning rank.
    pub rank: usize,
    /// Global ids of owned vertices (ascending); local ids `0..nowned`.
    pub owned: Vec<u32>,
    /// Global ids of ghost vertices (ascending); local ids
    /// `nowned..nowned+nghost`.
    pub ghosts: Vec<u32>,
    /// Local edges as local-id pairs; every edge has ≥1 owned endpoint.
    pub edges: Vec<[u32; 2]>,
    /// Global edge id of each local edge (index into the global list).
    pub edge_gids: Vec<u32>,
    /// Write masks per local edge (bit 0: endpoint 0 owned, bit 1:
    /// endpoint 1 owned).
    pub write_masks: Vec<u8>,
    /// For each neighbor rank: `(rank, owned local ids to send)`.
    pub send_lists: Vec<(usize, Vec<u32>)>,
    /// For each neighbor rank: `(rank, ghost local ids to receive
    /// into)`, ordered to match the peer's send list.
    pub recv_lists: Vec<(usize, Vec<u32>)>,
}

impl Subdomain {
    /// Owned vertex count.
    pub fn nowned(&self) -> usize {
        self.owned.len()
    }

    /// Total local vertices (owned + ghost).
    pub fn nlocal(&self) -> usize {
        self.owned.len() + self.ghosts.len()
    }

    /// Neighbor rank count.
    pub fn nneighbors(&self) -> usize {
        self.send_lists.len()
    }

    /// Doubles sent per halo exchange (4 state vars per vertex).
    pub fn halo_doubles(&self) -> usize {
        self.send_lists.iter().map(|(_, l)| l.len() * 4).sum()
    }
}

/// The full decomposition.
#[derive(Clone, Debug)]
pub struct Decomposition {
    /// Owning rank per global vertex.
    pub part: Partition,
    /// Per-rank subdomains.
    pub subdomains: Vec<Subdomain>,
}

impl Decomposition {
    /// Decomposes a global edge list over `nranks` ranks.
    pub fn build(nvertices: usize, edges: &[[u32; 2]], nranks: usize) -> Decomposition {
        let part = if nranks == 1 {
            vec![0u32; nvertices]
        } else {
            let graph = Graph::from_edges(nvertices, edges);
            partition_graph(&graph, nranks, &MultilevelConfig::default())
        };
        let subdomains = (0..nranks)
            .map(|r| build_subdomain(r, nvertices, edges, &part))
            .collect();
        Decomposition { part, subdomains }
    }
}

fn build_subdomain(
    rank: usize,
    nvertices: usize,
    edges: &[[u32; 2]],
    part: &Partition,
) -> Subdomain {
    let r = rank as u32;
    let owned: Vec<u32> = (0..nvertices as u32).filter(|&v| part[v as usize] == r).collect();

    // Ghosts: non-owned endpoints of edges touching owned vertices.
    let mut ghost_set: Vec<u32> = Vec::new();
    for e in edges {
        let p0 = part[e[0] as usize];
        let p1 = part[e[1] as usize];
        if p0 == r && p1 != r {
            ghost_set.push(e[1]);
        } else if p1 == r && p0 != r {
            ghost_set.push(e[0]);
        }
    }
    ghost_set.sort_unstable();
    ghost_set.dedup();

    // global -> local map
    let mut g2l = std::collections::HashMap::with_capacity(owned.len() + ghost_set.len());
    for (l, &g) in owned.iter().enumerate() {
        g2l.insert(g, l as u32);
    }
    for (l, &g) in ghost_set.iter().enumerate() {
        g2l.insert(g, (owned.len() + l) as u32);
    }

    // Local edges: any edge with ≥1 owned endpoint.
    let mut local_edges = Vec::new();
    let mut edge_gids = Vec::new();
    let mut masks = Vec::new();
    for (eid, e) in edges.iter().enumerate() {
        let p0 = part[e[0] as usize];
        let p1 = part[e[1] as usize];
        if p0 != r && p1 != r {
            continue;
        }
        local_edges.push([g2l[&e[0]], g2l[&e[1]]]);
        edge_gids.push(eid as u32);
        masks.push(u8::from(p0 == r) | (u8::from(p1 == r) << 1));
    }

    // Halo lists: ghosts grouped by owner; the matching send list on the
    // owner side is "my owned vertices that rank X ghosts", which both
    // sides can derive independently because both orderings are by
    // ascending global id.
    let mut recv_by: std::collections::BTreeMap<usize, Vec<u32>> = Default::default();
    for (l, &g) in ghost_set.iter().enumerate() {
        recv_by
            .entry(part[g as usize] as usize)
            .or_default()
            .push((owned.len() + l) as u32);
    }
    // send lists: owned vertices adjacent to each neighbor rank
    let mut send_globals: std::collections::BTreeMap<usize, Vec<u32>> = Default::default();
    for e in edges {
        let p0 = part[e[0] as usize] as usize;
        let p1 = part[e[1] as usize] as usize;
        if p0 == rank && p1 != rank {
            send_globals.entry(p1).or_default().push(e[0]);
        } else if p1 == rank && p0 != rank {
            send_globals.entry(p0).or_default().push(e[1]);
        }
    }
    let send_lists: Vec<(usize, Vec<u32>)> = send_globals
        .into_iter()
        .map(|(nbr, mut globals)| {
            globals.sort_unstable();
            globals.dedup();
            (nbr, globals.into_iter().map(|g| g2l[&g]).collect())
        })
        .collect();
    let recv_lists: Vec<(usize, Vec<u32>)> = recv_by.into_iter().collect();

    Subdomain {
        rank,
        owned,
        ghosts: ghost_set,
        edges: local_edges,
        edge_gids,
        write_masks: masks,
        send_lists,
        recv_lists,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fun3d_mesh::generator::MeshPreset;

    fn mesh_edges() -> (usize, Vec<[u32; 2]>) {
        let m = MeshPreset::Tiny.build();
        (m.nvertices(), m.edges())
    }

    #[test]
    fn owned_sets_partition_vertices() {
        let (nv, edges) = mesh_edges();
        let d = Decomposition::build(nv, &edges, 4);
        let mut count = 0;
        for s in &d.subdomains {
            count += s.nowned();
            for &g in &s.owned {
                assert_eq!(d.part[g as usize] as usize, s.rank);
            }
        }
        assert_eq!(count, nv);
    }

    #[test]
    fn ghosts_are_exactly_cut_neighbors() {
        let (nv, edges) = mesh_edges();
        let d = Decomposition::build(nv, &edges, 3);
        for s in &d.subdomains {
            for &g in &s.ghosts {
                assert_ne!(d.part[g as usize] as usize, s.rank);
                // each ghost must be adjacent to an owned vertex
                let adjacent = edges.iter().any(|e| {
                    (e[0] == g && d.part[e[1] as usize] as usize == s.rank)
                        || (e[1] == g && d.part[e[0] as usize] as usize == s.rank)
                });
                assert!(adjacent, "ghost {g} not adjacent to rank {}", s.rank);
            }
        }
    }

    #[test]
    fn every_edge_processed_and_owned_endpoints_written_once() {
        let (nv, edges) = mesh_edges();
        let d = Decomposition::build(nv, &edges, 4);
        // map each global edge to per-endpoint write count
        let mut writes = std::collections::HashMap::<[u32; 2], [u32; 2]>::new();
        for s in &d.subdomains {
            let nlocal_owned = s.nowned();
            let l2g = |l: u32| -> u32 {
                if (l as usize) < nlocal_owned {
                    s.owned[l as usize]
                } else {
                    s.ghosts[l as usize - nlocal_owned]
                }
            };
            for (le, &mask) in s.edges.iter().zip(&s.write_masks) {
                let g0 = l2g(le[0]);
                let g1 = l2g(le[1]);
                let key = if g0 < g1 { [g0, g1] } else { [g1, g0] };
                let flip = g0 > g1;
                let ent = writes.entry(key).or_insert([0, 0]);
                if mask & 1 != 0 {
                    ent[usize::from(flip)] += 1;
                }
                if mask & 2 != 0 {
                    ent[usize::from(!flip)] += 1;
                }
            }
        }
        assert_eq!(writes.len(), edges.len(), "every global edge covered");
        for (e, w) in writes {
            assert_eq!(w, [1, 1], "edge {e:?} endpoints written {w:?} times");
        }
    }

    #[test]
    fn halo_lists_match_pairwise() {
        let (nv, edges) = mesh_edges();
        let d = Decomposition::build(nv, &edges, 4);
        for s in &d.subdomains {
            for (nbr, send) in &s.send_lists {
                let peer = &d.subdomains[*nbr];
                let (_, recv) = peer
                    .recv_lists
                    .iter()
                    .find(|(r, _)| *r == s.rank)
                    .expect("peer has matching recv list");
                assert_eq!(send.len(), recv.len(), "rank {} -> {}", s.rank, nbr);
                // global ids must match elementwise
                for (sl, rl) in send.iter().zip(recv) {
                    let sg = s.owned[*sl as usize];
                    let rg = peer.ghosts[*rl as usize - peer.nowned()];
                    assert_eq!(sg, rg);
                }
            }
        }
    }

    #[test]
    fn single_rank_has_no_ghosts() {
        let (nv, edges) = mesh_edges();
        let d = Decomposition::build(nv, &edges, 1);
        let s = &d.subdomains[0];
        assert_eq!(s.nowned(), nv);
        assert!(s.ghosts.is_empty());
        assert_eq!(s.edges.len(), edges.len());
        assert!(s.write_masks.iter().all(|&m| m == 0b11));
        assert_eq!(s.nneighbors(), 0);
    }

    #[test]
    fn halo_doubles_counts_state_size() {
        let (nv, edges) = mesh_edges();
        let d = Decomposition::build(nv, &edges, 2);
        for s in &d.subdomains {
            let total: usize = s.send_lists.iter().map(|(_, l)| l.len()).sum();
            assert_eq!(s.halo_doubles(), total * 4);
        }
    }
}
