//! Multi-node substrate: an in-process message-passing runtime, domain
//! decomposition, a genuinely distributed Krylov solve, and the
//! strong-scaling simulator behind Figs. 9–11.
//!
//! There is no InfiniBand cluster here (nor even a second core), so the
//! multi-node experiments are reproduced in two cooperating layers:
//!
//! 1. **Correctness layer** — [`comm`] runs R "ranks" as OS threads with
//!    MPI-like semantics (send/recv, allreduce, barrier); [`decompose`]
//!    performs the Schwarz domain decomposition (owned + ghost vertices,
//!    halo exchange lists); [`dsolve`] runs a real distributed
//!    GMRES/block-Jacobi-ILU solve through those code paths and is tested
//!    to agree with the serial solver.
//! 2. **Performance layer** — [`scaling`] extracts each rank's real
//!    workload (edges incl. replication, factor rows, halo sizes,
//!    neighbor counts) from the same decomposition and charges hardware
//!    costs from [`fun3d_machine`]: Stampede node kernels plus the FDR
//!    fat-tree network model, with the Krylov allreduce count taken from
//!    the solver's actual algorithm (one `VecMDot` + one `VecNorm` per
//!    iteration).

pub mod comm;
pub mod dapp;
pub mod decompose;
pub mod dsolve;
pub mod scaling;

pub use comm::{Comm, Universe};
pub use decompose::{Decomposition, Subdomain};
pub use scaling::{ScalingConfig, ScalingPoint};
