//! Cross-rank flight-recorder correlation: every rank thread of an
//! in-process `Universe` records into its own ring tagged with its
//! rank, and one `snapshot()` merges them into a single causally
//!-ordered timeline — the multi-rank half of the black-box story.

use fun3d_cluster::Universe;
use fun3d_util::telemetry::flight::{self, EventKind};

#[test]
fn rank_comm_events_merge_into_one_ordered_timeline() {
    flight::set_enabled(true);
    // Distinctive payload sizes so this test's events are identifiable
    // even though the process-wide log may hold events from elsewhere.
    const A: usize = 11; // rank 0 -> 1: 88 bytes
    const B: usize = 23; // rank 1 -> 0: 184 bytes
    Universe::run(2, |comm| {
        if comm.rank() == 0 {
            comm.send(1, 5, vec![1.0; A]);
            let got = comm.recv(1, 6);
            assert_eq!(got.len(), B);
        } else {
            let got = comm.recv(0, 5);
            assert_eq!(got.len(), A);
            comm.send(0, 6, vec![2.0; B]);
        }
    });

    let log = flight::snapshot();
    // The merge is globally time-ordered (ties broken by rank).
    for w in log.events.windows(2) {
        assert!(
            (w[0].t_ns, w[0].rank) <= (w[1].t_ns, w[1].rank),
            "snapshot not time-ordered: {:?} then {:?}",
            w[0],
            w[1]
        );
    }

    let find = |want: EventKind| {
        log.events
            .iter()
            .find(|e| e.kind == want)
            .unwrap_or_else(|| panic!("missing event {want:?}"))
    };
    // Each rank's traffic, tagged with the emitting rank.
    let send_a = find(EventKind::CommSend { peer: 1, bytes: (A * 8) as u64 });
    let recv_a = find(EventKind::CommRecv { peer: 0, bytes: (A * 8) as u64 });
    let send_b = find(EventKind::CommSend { peer: 0, bytes: (B * 8) as u64 });
    let recv_b = find(EventKind::CommRecv { peer: 1, bytes: (B * 8) as u64 });
    assert_eq!(send_a.rank, 0);
    assert_eq!(recv_a.rank, 1);
    assert_eq!(send_b.rank, 1);
    assert_eq!(recv_b.rank, 0);

    // Causal order across ranks: the ranks share the process telemetry
    // epoch, and a send is recorded before the message is enqueued while
    // the matching recv is recorded after it arrives — so each matched
    // pair must appear send-before-recv in the merged record.
    assert!(send_a.t_ns <= recv_a.t_ns, "send(0->1) after its recv");
    assert!(send_b.t_ns <= recv_b.t_ns, "send(1->0) after its recv");
    // And the protocol itself is serialized: rank 1 cannot have sent B
    // before it received A.
    assert!(recv_a.t_ns <= send_b.t_ns, "rank 1 sent before it received");
}
