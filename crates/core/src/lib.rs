//! The FUN3D application core: incompressible Euler flow on unstructured
//! tetrahedral meshes, discretized vertex-centered with artificial
//! compressibility, solved by pseudo-transient Newton–Krylov–Schwarz.
//!
//! This crate is the paper's primary subject. It contains:
//!
//! * [`euler`] — the physics: state `q = (p, u, v, w)`, the artificial-
//!   compressibility inviscid flux `F·n̂ = (βΘ, uΘ + nₓp, vΘ + n_y p,
//!   wΘ + n_z p)` (paper Eq. 1), its Jacobian, and the Roe-type
//!   flux-difference dissipation built from the face eigensystem
//!   `{Θ, Θ±c}`, `c = √(Θ² + βS²)`;
//! * [`geom`] — the SoA edge-geometry arrays the kernels stream
//!   (dual-face normals and across-edge deltas), and both node-data
//!   layouts (SoA and AoS) of the paper's data-structure study;
//! * [`flux`] — the edge-based flux kernel in every optimization variant:
//!   scalar/SoA baseline, atomics, owner-writes replication (natural or
//!   METIS partitions), AoS node data, 4-edge SIMD batching with scalar
//!   write-out, and software prefetching;
//! * [`gradient`] — Green-Gauss nodal gradients (edge-based, the paper's
//!   "Grad" kernel) serial and threaded;
//! * [`jacobian`] — first-order (more diffusive, sparser) flux Jacobian
//!   assembled into 4×4-block BCSR for the Schwarz/ILU preconditioner;
//! * [`bc`] — slip-wall, symmetry and far-field boundary fluxes and their
//!   Jacobian contributions;
//! * [`app`] — [`app::Fun3dApp`]: the full application wiring mesh +
//!   kernels + ILU + GMRES + pseudo-transient continuation together, with
//!   per-kernel profiling and selectable optimization level (the
//!   "baseline" vs "optimized" configurations of Figs. 5 and 8).

pub mod app;
pub mod bc;
pub mod counts;
pub mod euler;
pub mod flux;
pub mod geom;
pub mod gradient;
pub mod jacobian;
pub mod limiter;

pub use app::{Fun3dApp, OptConfig};
pub use euler::{FlowConditions, NVARS};
pub use geom::{EdgeGeom, NodeAos, NodeSoa, TiledGeom};
