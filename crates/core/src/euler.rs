//! Incompressible Euler physics with artificial compressibility.
//!
//! State per vertex: `q = (p, u, v, w)` — pressure and Cartesian velocity.
//! Chorin's artificial compressibility couples pressure to the velocity
//! divergence through the parameter β, giving the hyperbolic system whose
//! inviscid flux through an (area-weighted) face normal `n` is paper
//! Eq. 1. The face eigensystem `{Θ, Θ, Θ+c, Θ−c}` with
//! `c = √(Θ² + βS²)` drives the Roe-type flux-difference dissipation:
//! `|A|` is evaluated as the quadratic matrix polynomial that interpolates
//! `|λ|` on the three distinct eigenvalues (exact for the diagonalizable
//! flux Jacobian, and cheap: three 4×4 matvecs per face).

/// Unknowns per vertex.
pub const NVARS: usize = 4;

/// Free-stream / solver physical parameters.
#[derive(Clone, Copy, Debug)]
pub struct FlowConditions {
    /// Artificial compressibility parameter β (O(u∞²) is typical).
    pub beta: f64,
    /// Free-stream state `(p, u, v, w)`.
    pub qinf: [f64; 4],
}

impl Default for FlowConditions {
    fn default() -> Self {
        FlowConditions {
            beta: 1.0,
            // Unit axial flow, zero gauge pressure.
            qinf: [0.0, 1.0, 0.0, 0.0],
        }
    }
}

/// Inviscid flux through area-weighted normal `n`:
/// `F = (βΘ, uΘ + nₓp, vΘ + n_y p, wΘ + n_z p)`, `Θ = n·(u,v,w)`.
#[inline]
pub fn flux(q: &[f64; 4], n: &[f64; 3], beta: f64) -> [f64; 4] {
    let theta = n[0] * q[1] + n[1] * q[2] + n[2] * q[3];
    [
        beta * theta,
        q[1] * theta + n[0] * q[0],
        q[2] * theta + n[1] * q[0],
        q[3] * theta + n[2] * q[0],
    ]
}

/// The flux Jacobian `A = ∂(F·n)/∂q` at state `q` (row-major 4×4).
#[inline]
pub fn flux_jacobian(q: &[f64; 4], n: &[f64; 3], beta: f64) -> [f64; 16] {
    let theta = n[0] * q[1] + n[1] * q[2] + n[2] * q[3];
    [
        0.0,
        beta * n[0],
        beta * n[1],
        beta * n[2],
        n[0],
        theta + q[1] * n[0],
        q[1] * n[1],
        q[1] * n[2],
        n[1],
        q[2] * n[0],
        theta + q[2] * n[1],
        q[2] * n[2],
        n[2],
        q[3] * n[0],
        q[3] * n[1],
        theta + q[3] * n[2],
    ]
}

/// Face speeds: returns `(Θ, c)` with `c = sqrt(Θ² + β S²)`, `S = |n|`.
#[inline]
pub fn wave_speeds(q: &[f64; 4], n: &[f64; 3], beta: f64) -> (f64, f64) {
    let theta = n[0] * q[1] + n[1] * q[2] + n[2] * q[3];
    let s2 = n[0] * n[0] + n[1] * n[1] + n[2] * n[2];
    (theta, (theta * theta + beta * s2).sqrt())
}

/// Spectral radius of the face Jacobian: `|Θ| + c`.
#[inline]
pub fn spectral_radius(q: &[f64; 4], n: &[f64; 3], beta: f64) -> f64 {
    let (theta, c) = wave_speeds(q, n, beta);
    theta.abs() + c
}

/// Coefficients `(a, b, d)` of the quadratic `p(x) = a x² + b x + d`
/// interpolating `|x|` at the three distinct eigenvalues
/// `{Θ, Θ+c, Θ−c}`. Because the Jacobian is diagonalizable with exactly
/// these eigenvalues, `|A| = p(A)` exactly.
#[inline]
pub fn abs_poly_coeffs(theta: f64, c: f64) -> (f64, f64, f64) {
    // Lagrange interpolation of f(x)=|x| at m1=Θ, m2=Θ+c, m3=Θ−c.
    let (m1, m2, m3) = (theta, theta + c, theta - c);
    let (f1, f2, f3) = (m1.abs(), m2.abs(), m3.abs());
    // denominators: (m1-m2)(m1-m3) = (-c)(c) = -c²; (m2-m1)(m2-m3) = c·2c;
    // (m3-m1)(m3-m2) = (-c)(-2c) = 2c².
    let c2 = c * c;
    let l1 = f1 / (-c2);
    let l2 = f2 / (2.0 * c2);
    let l3 = f3 / (2.0 * c2);
    // p(x) = l1 (x-m2)(x-m3) + l2 (x-m1)(x-m3) + l3 (x-m1)(x-m2)
    let a = l1 + l2 + l3;
    let b = -(l1 * (m2 + m3) + l2 * (m1 + m3) + l3 * (m1 + m2));
    let d = l1 * m2 * m3 + l2 * m1 * m3 + l3 * m1 * m2;
    (a, b, d)
}

/// Roe-type flux-difference interface flux:
/// `F* = ½(F(qL) + F(qR)) − ½|A(q̄)|(qR − qL)` with `q̄ = ½(qL+qR)` and
/// `|A|` evaluated as the interpolating polynomial (three matvecs).
#[inline]
pub fn roe_flux(ql: &[f64; 4], qr: &[f64; 4], n: &[f64; 3], beta: f64) -> [f64; 4] {
    let fl = flux(ql, n, beta);
    let fr = flux(qr, n, beta);
    let qm = [
        0.5 * (ql[0] + qr[0]),
        0.5 * (ql[1] + qr[1]),
        0.5 * (ql[2] + qr[2]),
        0.5 * (ql[3] + qr[3]),
    ];
    let a = flux_jacobian(&qm, n, beta);
    let (theta, c) = wave_speeds(&qm, n, beta);
    let (pa, pb, pd) = abs_poly_coeffs(theta, c);
    let dq = [qr[0] - ql[0], qr[1] - ql[1], qr[2] - ql[2], qr[3] - ql[3]];
    // |A| dq = pa·A(A dq) + pb·A dq + pd·dq
    let adq = matvec4(&a, &dq);
    let aadq = matvec4(&a, &adq);
    let mut out = [0.0; 4];
    for k in 0..4 {
        let diss = pa * aadq[k] + pb * adq[k] + pd * dq[k];
        out[k] = 0.5 * (fl[k] + fr[k]) - 0.5 * diss;
    }
    out
}

#[inline]
fn matvec4(a: &[f64; 16], x: &[f64; 4]) -> [f64; 4] {
    let mut y = [0.0; 4];
    for r in 0..4 {
        y[r] = a[r * 4] * x[0] + a[r * 4 + 1] * x[1] + a[r * 4 + 2] * x[2] + a[r * 4 + 3] * x[3];
    }
    y
}

#[cfg(test)]
mod tests {
    use super::*;

    const N: [f64; 3] = [0.3, -0.5, 0.81];

    #[test]
    fn flux_consistency_with_jacobian() {
        // A is the exact derivative of F: finite-difference check.
        let q = [0.4, 0.9, -0.2, 0.3];
        let beta = 1.3;
        let a = flux_jacobian(&q, &N, beta);
        let f0 = flux(&q, &N, beta);
        let h = 1e-7;
        for j in 0..4 {
            let mut qp = q;
            qp[j] += h;
            let fp = flux(&qp, &N, beta);
            for i in 0..4 {
                let fd = (fp[i] - f0[i]) / h;
                assert!(
                    (fd - a[i * 4 + j]).abs() < 1e-5 * (1.0 + a[i * 4 + j].abs()),
                    "dF{i}/dq{j}: fd {fd} vs analytic {}",
                    a[i * 4 + j]
                );
            }
        }
    }

    #[test]
    fn roe_flux_is_consistent() {
        // F*(q, q, n) = F(q, n): zero dissipation at equal states.
        let q = [0.1, 1.0, 0.2, -0.4];
        let beta = 0.8;
        let f = flux(&q, &N, beta);
        let fstar = roe_flux(&q, &q, &N, beta);
        for k in 0..4 {
            assert!((f[k] - fstar[k]).abs() < 1e-13, "comp {k}");
        }
    }

    #[test]
    fn roe_flux_antisymmetric_in_normal() {
        // F*(qL,qR,n) = −F*(qR,qL,−n): conservation across the face.
        let ql = [0.2, 0.8, -0.1, 0.05];
        let qr = [0.15, 1.1, 0.0, -0.2];
        let beta = 1.0;
        let f1 = roe_flux(&ql, &qr, &N, beta);
        let neg = [-N[0], -N[1], -N[2]];
        let f2 = roe_flux(&qr, &ql, &neg, beta);
        for k in 0..4 {
            assert!((f1[k] + f2[k]).abs() < 1e-12, "comp {k}: {} vs {}", f1[k], f2[k]);
        }
    }

    #[test]
    fn abs_poly_interpolates_abs() {
        for (theta, c) in [(0.5, 1.2), (-0.7, 0.9), (0.0, 1.0), (2.0, 2.3)] {
            let (a, b, d) = abs_poly_coeffs(theta, c);
            for m in [theta, theta + c, theta - c] {
                let p = a * m * m + b * m + d;
                assert!(
                    (p - m.abs()).abs() < 1e-12,
                    "p({m}) = {p}, |m| = {}",
                    m.abs()
                );
            }
        }
    }

    #[test]
    fn dissipation_is_positive_semidefinite_effect() {
        // Upwind property: for supersonic-like Θ >> c impossible here
        // (c > |Θ|), but check the dissipation damps a jump: the Roe flux
        // of a jump should lie "between" the one-sided fluxes along the
        // jump direction. Weak sanity: interface flux differs from the
        // central average in the direction opposing the jump.
        let ql = [0.0, 1.0, 0.0, 0.0];
        let qr = [1.0, 1.0, 0.0, 0.0]; // pressure jump
        let beta = 1.0;
        let n = [1.0, 0.0, 0.0];
        let f = roe_flux(&ql, &qr, &n, beta);
        let central = {
            let fl = flux(&ql, &n, beta);
            let fr = flux(&qr, &n, beta);
            [
                0.5 * (fl[0] + fr[0]),
                0.5 * (fl[1] + fr[1]),
                0.5 * (fl[2] + fr[2]),
                0.5 * (fl[3] + fr[3]),
            ]
        };
        // mass flux must be reduced relative to central when pressure
        // rises downstream (dissipation opposes the jump).
        assert!(f[0] < central[0]);
    }

    #[test]
    fn spectral_radius_bounds_eigenvalues() {
        let q = [0.3, 2.0, -1.0, 0.5];
        let beta = 1.7;
        let (theta, c) = wave_speeds(&q, &N, beta);
        let rho = spectral_radius(&q, &N, beta);
        for m in [theta, theta + c, theta - c] {
            assert!(m.abs() <= rho + 1e-12);
        }
        assert!(c > theta.abs(), "c = sqrt(Θ²+βS²) must exceed |Θ|");
    }

    #[test]
    fn free_stream_defaults() {
        let fc = FlowConditions::default();
        assert_eq!(fc.qinf[1], 1.0);
        assert!(fc.beta > 0.0);
    }
}
