//! Green-Gauss nodal gradients — the paper's "Grad" kernel (13% of the
//! baseline profile), an edge-based loop like the flux kernel.
//!
//! `∇q_v = (1/V_v) [ Σ_edges ±s_e · ½(q_a + q_b) + Σ_bnd n_b · q_v ]`
//!
//! The closure identity `Σ ±s_e + n_b = 0` makes the gradient of a
//! constant field exactly zero.

use crate::bc::BcData;
use crate::flux::TileExec;
use crate::geom::{EdgeGeom, NodeAos, TiledGeom};
use fun3d_partition::{EdgeTiling, OwnerWritesPlan, Tile};
use fun3d_threads::{chunk_range, SpinBarrier, ThreadPool};

/// Serial Green-Gauss gradients: reads `node.q`, writes `node.grad`
/// (comp-major 12 per vertex), using dual volumes `vol`.
pub fn green_gauss(geom: &EdgeGeom, bc: &BcData, vol: &[f64], node: &mut NodeAos) {
    let n = node.n;
    assert_eq!(vol.len(), n);
    node.grad.iter_mut().for_each(|x| *x = 0.0);
    for (k, e) in geom.edges.iter().enumerate() {
        let (a, b) = (e[0] as usize, e[1] as usize);
        let s = [geom.nx[k], geom.ny[k], geom.nz[k]];
        for c in 0..4 {
            let qf = 0.5 * (node.q[a * 4 + c] + node.q[b * 4 + c]);
            for d in 0..3 {
                node.grad[a * 12 + c * 3 + d] += qf * s[d];
                node.grad[b * 12 + c * 3 + d] -= qf * s[d];
            }
        }
    }
    // boundary closure
    for i in 0..bc.len() {
        let v = bc.vertex[i] as usize;
        let nb = [bc.nx[i], bc.ny[i], bc.nz[i]];
        for c in 0..4 {
            let qv = node.q[v * 4 + c];
            for d in 0..3 {
                node.grad[v * 12 + c * 3 + d] += qv * nb[d];
            }
        }
    }
    // divide by dual volume
    for v in 0..n {
        let inv = 1.0 / vol[v];
        for f in 0..12 {
            node.grad[v * 12 + f] *= inv;
        }
    }
}

/// Threaded Green-Gauss with owner-only writes (same plan as the flux
/// kernel). Bitwise-identical to [`green_gauss`].
pub fn green_gauss_threaded(
    pool: &ThreadPool,
    plan: &OwnerWritesPlan,
    geom: &EdgeGeom,
    bc: &BcData,
    vol: &[f64],
    node: &mut NodeAos,
) {
    let n = node.n;
    assert_eq!(vol.len(), n);
    assert_eq!(pool.size(), plan.nthreads());
    node.grad.iter_mut().for_each(|x| *x = 0.0);
    let q = std::mem::take(&mut node.q); // read-only during the region
    {
        let gp = SendPtr(node.grad.as_mut_ptr());
        pool.run(|tid| {
            let gp = &gp;
            let edges = &plan.edges_of[tid];
            let masks = &plan.writes_of[tid];
            for (idx, &eid) in edges.iter().enumerate() {
                let k = eid as usize;
                let e = geom.edges[k];
                let (a, b) = (e[0] as usize, e[1] as usize);
                let s = [geom.nx[k], geom.ny[k], geom.nz[k]];
                let mask = masks[idx];
                for c in 0..4 {
                    let qf = 0.5 * (q[a * 4 + c] + q[b * 4 + c]);
                    for d in 0..3 {
                        // SAFETY: owner-only writes per plan masks.
                        unsafe {
                            if mask & 1 != 0 {
                                *gp.0.add(a * 12 + c * 3 + d) += qf * s[d];
                            }
                            if mask & 2 != 0 {
                                *gp.0.add(b * 12 + c * 3 + d) -= qf * s[d];
                            }
                        }
                    }
                }
            }
        });
    }
    node.q = q;
    for i in 0..bc.len() {
        let v = bc.vertex[i] as usize;
        let nb = [bc.nx[i], bc.ny[i], bc.nz[i]];
        for c in 0..4 {
            let qv = node.q[v * 4 + c];
            for d in 0..3 {
                node.grad[v * 12 + c * 3 + d] += qv * nb[d];
            }
        }
    }
    for v in 0..n {
        let inv = 1.0 / vol[v];
        for f in 0..12 {
            node.grad[v * 12 + f] *= inv;
        }
    }
}

struct SendPtr(*mut f64);
// SAFETY: disjoint writes per the owner-writes plan.
unsafe impl Send for SendPtr {}
unsafe impl Sync for SendPtr {}

/// Per-worker scratch pad for the tiled gradient edge loop: staged state
/// (4/vertex), local-indexed — the reuse-heavy read side. The gradient
/// accumulates directly in the global array (exclusive per the coloring,
/// cache-resident for the tile's lifetime).
pub struct GradScratch {
    q: Vec<f64>,
}

impl GradScratch {
    /// Scratch for up to `max_verts` staged vertices.
    pub fn new(max_verts: usize) -> GradScratch {
        GradScratch {
            q: vec![0.0; max_verts * 4],
        }
    }
}

/// One tile of the gradient edge loop: stage q, accumulate the edge
/// contributions into the global grad (exclusive per the coloring).
///
/// # Safety
/// Caller guarantees exclusive `grad` access for this tile's vertices
/// (inter-tile coloring + barriers, as in the flux kernel).
unsafe fn tile_grad(
    tile: &Tile,
    start: usize,
    geom: &EdgeGeom,
    q: &[f64],
    scratch: &mut GradScratch,
    grad: *mut f64,
) {
    for (l, &v) in tile.verts.iter().enumerate() {
        let v = v as usize;
        scratch.q[l * 4..l * 4 + 4].copy_from_slice(&q[v * 4..v * 4 + 4]);
    }
    // `geom` is tile-ordered ([`TiledGeom`]): this tile's edges are the
    // contiguous range starting at `start`, walked sequentially.
    for idx in 0..tile.edges.len() {
        let k = start + idx;
        let (la, lb) = (tile.local[idx][0] as usize, tile.local[idx][1] as usize);
        let e = geom.edges[k];
        let (a, b) = (e[0] as usize, e[1] as usize);
        let s = [geom.nx[k], geom.ny[k], geom.nz[k]];
        for c in 0..4 {
            let qf = 0.5 * (scratch.q[la * 4 + c] + scratch.q[lb * 4 + c]);
            for d in 0..3 {
                // Exclusive grad access per the caller's coloring contract.
                *grad.add(a * 12 + c * 3 + d) += qf * s[d];
                *grad.add(b * 12 + c * 3 + d) -= qf * s[d];
            }
        }
    }
}

/// One tile of the gradient edge loop, [`TileExec::Direct`] mode: same
/// edge range, same arithmetic, state gathered straight from the global
/// array (the tile working set is L2-sized; hardware stages it on first
/// touch). Bitwise identical to [`tile_grad`].
///
/// # Safety
/// Same exclusivity contract on `grad` as [`tile_grad`].
unsafe fn tile_grad_direct(
    ntile_edges: usize,
    start: usize,
    geom: &EdgeGeom,
    q: &[f64],
    grad: *mut f64,
) {
    for idx in 0..ntile_edges {
        let k = start + idx;
        let e = geom.edges[k];
        let (a, b) = (e[0] as usize, e[1] as usize);
        let s = [geom.nx[k], geom.ny[k], geom.nz[k]];
        for c in 0..4 {
            let qf = 0.5 * (q[a * 4 + c] + q[b * 4 + c]);
            for d in 0..3 {
                // Exclusive grad access per the caller's coloring contract.
                *grad.add(a * 12 + c * 3 + d) += qf * s[d];
                *grad.add(b * 12 + c * 3 + d) -= qf * s[d];
            }
        }
    }
}

/// Tiled Green-Gauss, serial driver: the edge loop runs tile-by-tile in
/// color-major order on a scratch pad (see [`crate::flux::tiled`]); the
/// boundary closure and volume division are the serial epilogue shared
/// with [`green_gauss`]. Bitwise identical to [`green_gauss_tiled_pooled`]
/// at every thread count; matches [`green_gauss`] to rounding (the tile
/// order permutes the per-vertex accumulation).
pub fn green_gauss_tiled(
    tiling: &EdgeTiling,
    geom: &TiledGeom,
    bc: &BcData,
    vol: &[f64],
    exec: TileExec,
    node: &mut NodeAos,
) {
    let n = node.n;
    assert_eq!(vol.len(), n);
    let geom = geom.geom();
    assert_eq!(tiling.nedges, geom.nedges());
    node.grad.iter_mut().for_each(|x| *x = 0.0);
    let mut scratch =
        (exec == TileExec::Staged).then(|| GradScratch::new(tiling.max_tile_verts()));
    let gp = node.grad.as_mut_ptr();
    let q = std::mem::take(&mut node.q);
    for class in &tiling.color_tiles {
        for &t in class {
            let t = t as usize;
            let start = tiling.tile_start[t] as usize;
            // SAFETY: single-threaded — trivially exclusive.
            unsafe {
                match &mut scratch {
                    Some(s) => tile_grad(&tiling.tiles[t], start, geom, &q, s, gp),
                    None => tile_grad_direct(
                        tiling.tiles[t].edges.len(),
                        start,
                        geom,
                        &q,
                        gp,
                    ),
                }
            };
        }
    }
    node.q = q;
    gradient_epilogue(bc, vol, node);
}

/// Tiled Green-Gauss on the persistent pool: one region, colors chunked
/// over workers with a barrier between colors (see
/// [`crate::flux::tiled_pooled`]).
pub fn green_gauss_tiled_pooled(
    pool: &ThreadPool,
    tiling: &EdgeTiling,
    geom: &TiledGeom,
    bc: &BcData,
    vol: &[f64],
    exec: TileExec,
    node: &mut NodeAos,
) {
    let n = node.n;
    assert_eq!(vol.len(), n);
    assert_eq!(tiling.nedges, geom.geom().nedges());
    let nt = pool.size();
    // Oversubscribed pool: the per-color barriers would cost scheduler
    // round-trips; the serial driver is bitwise identical (same
    // color-major order), so use it (see `flux::tiled_pooled`).
    if nt > fun3d_threads::available_cores() {
        return green_gauss_tiled(tiling, geom, bc, vol, exec, node);
    }
    node.grad.iter_mut().for_each(|x| *x = 0.0);
    let barrier = SpinBarrier::new(nt);
    let max_verts = tiling.max_tile_verts();
    let q = std::mem::take(&mut node.q); // read-only during the region
    {
        let gp = SendPtr(node.grad.as_mut_ptr());
        let q = &q;
        let pg = geom.geom();
        pool.run(|tid| {
            let gp = &gp;
            let mut scratch =
                (exec == TileExec::Staged).then(|| GradScratch::new(max_verts));
            for class in &tiling.color_tiles {
                for &t in &class[chunk_range(class.len(), nt, tid)] {
                    let t = t as usize;
                    let start = tiling.tile_start[t] as usize;
                    // SAFETY: same-color tiles are vertex-disjoint; the
                    // barrier orders colors.
                    unsafe {
                        match &mut scratch {
                            Some(s) => {
                                tile_grad(&tiling.tiles[t], start, pg, q, s, gp.0)
                            }
                            None => tile_grad_direct(
                                tiling.tiles[t].edges.len(),
                                start,
                                pg,
                                q,
                                gp.0,
                            ),
                        }
                    };
                }
                barrier.wait();
            }
        });
    }
    node.q = q;
    gradient_epilogue(bc, vol, node);
}

/// Boundary closure + dual-volume division shared by every Green-Gauss
/// driver.
fn gradient_epilogue(bc: &BcData, vol: &[f64], node: &mut NodeAos) {
    for i in 0..bc.len() {
        let v = bc.vertex[i] as usize;
        let nb = [bc.nx[i], bc.ny[i], bc.nz[i]];
        for c in 0..4 {
            let qv = node.q[v * 4 + c];
            for d in 0..3 {
                node.grad[v * 12 + c * 3 + d] += qv * nb[d];
            }
        }
    }
    for v in 0..node.n {
        let inv = 1.0 / vol[v];
        for f in 0..12 {
            node.grad[v * 12 + f] *= inv;
        }
    }
}

/// Weighted least-squares gradients (FUN3D's production gradient scheme).
///
/// For each vertex the gradient minimizes
/// `Σ_j w_j (q_j − q_v − g·d_j)²` over edge neighbors `j`, with
/// inverse-distance-squared weights. The 3×3 normal matrix depends only
/// on geometry, so its inverse is precomputed once; each evaluation is
/// then one weighted sweep over the edges. Unlike edge-midpoint
/// Green-Gauss, LSQ is exact for linear fields at *every* vertex,
/// including the boundary.
pub struct LsqGradient {
    /// CSR row pointers over vertices.
    xadj: Vec<usize>,
    /// Neighbor vertex per entry.
    nbr: Vec<u32>,
    /// Per entry: 3 coefficients `c` such that `g_v += c · (q_j − q_v)`.
    coeff: Vec<[f64; 3]>,
}

impl LsqGradient {
    /// Precomputes the LSQ coefficients from the mesh geometry.
    /// Panics if some vertex's neighbors do not span 3D (never the case
    /// for a valid tetrahedral mesh).
    pub fn build(coords: &[fun3d_mesh::Vec3], edges: &[[u32; 2]]) -> LsqGradient {
        let n = coords.len();
        // adjacency
        let mut degree = vec![0usize; n];
        for e in edges {
            degree[e[0] as usize] += 1;
            degree[e[1] as usize] += 1;
        }
        let mut xadj = vec![0usize; n + 1];
        for v in 0..n {
            xadj[v + 1] = xadj[v] + degree[v];
        }
        let mut nbr = vec![0u32; xadj[n]];
        let mut cursor = xadj.clone();
        for e in edges {
            nbr[cursor[e[0] as usize]] = e[1];
            cursor[e[0] as usize] += 1;
            nbr[cursor[e[1] as usize]] = e[0];
            cursor[e[1] as usize] += 1;
        }
        // per-vertex normal matrix and its inverse applied to each d_j
        let mut coeff = vec![[0.0f64; 3]; xadj[n]];
        for v in 0..n {
            let xv = coords[v];
            // assemble A = Σ w d dᵀ (symmetric 3×3)
            let mut a = [0.0f64; 9];
            for k in xadj[v]..xadj[v + 1] {
                let d = coords[nbr[k] as usize] - xv;
                let w = 1.0 / d.norm2().max(1e-300);
                let dv = [d.x, d.y, d.z];
                for i in 0..3 {
                    for j in 0..3 {
                        a[i * 3 + j] += w * dv[i] * dv[j];
                    }
                }
            }
            let ainv = invert3(&a)
                .unwrap_or_else(|| panic!("degenerate LSQ stencil at vertex {v}"));
            for k in xadj[v]..xadj[v + 1] {
                let d = coords[nbr[k] as usize] - xv;
                let w = 1.0 / d.norm2().max(1e-300);
                let dv = [d.x, d.y, d.z];
                for i in 0..3 {
                    coeff[k][i] =
                        w * (ainv[i * 3] * dv[0] + ainv[i * 3 + 1] * dv[1] + ainv[i * 3 + 2] * dv[2]);
                }
            }
        }
        LsqGradient { xadj, nbr, coeff }
    }

    /// Computes all nodal gradients of the AoS state into `node.grad`.
    pub fn evaluate(&self, node: &mut NodeAos) {
        let n = node.n;
        assert_eq!(self.xadj.len(), n + 1);
        node.grad.iter_mut().for_each(|x| *x = 0.0);
        for v in 0..n {
            let qv: [f64; 4] = node.q[v * 4..v * 4 + 4].try_into().unwrap();
            for k in self.xadj[v]..self.xadj[v + 1] {
                let j = self.nbr[k] as usize;
                let c = self.coeff[k];
                for comp in 0..4 {
                    let dq = node.q[j * 4 + comp] - qv[comp];
                    for d in 0..3 {
                        node.grad[v * 12 + comp * 3 + d] += c[d] * dq;
                    }
                }
            }
        }
    }
}

/// Inverts a symmetric 3×3 matrix (row-major); `None` when singular.
fn invert3(a: &[f64; 9]) -> Option<[f64; 9]> {
    let det = a[0] * (a[4] * a[8] - a[5] * a[7]) - a[1] * (a[3] * a[8] - a[5] * a[6])
        + a[2] * (a[3] * a[7] - a[4] * a[6]);
    if det.abs() < 1e-300 {
        return None;
    }
    let inv_det = 1.0 / det;
    Some([
        (a[4] * a[8] - a[5] * a[7]) * inv_det,
        (a[2] * a[7] - a[1] * a[8]) * inv_det,
        (a[1] * a[5] - a[2] * a[4]) * inv_det,
        (a[5] * a[6] - a[3] * a[8]) * inv_det,
        (a[0] * a[8] - a[2] * a[6]) * inv_det,
        (a[2] * a[3] - a[0] * a[5]) * inv_det,
        (a[3] * a[7] - a[4] * a[6]) * inv_det,
        (a[1] * a[6] - a[0] * a[7]) * inv_det,
        (a[0] * a[4] - a[1] * a[3]) * inv_det,
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bc::BcData;
    use fun3d_mesh::generator::MeshPreset;
    use fun3d_mesh::DualMesh;
    use fun3d_partition::{partition_graph, MultilevelConfig, OwnerWritesPlan};

    fn setup() -> (EdgeGeom, BcData, Vec<f64>, NodeAos) {
        let mesh = MeshPreset::Tiny.build();
        let dual = DualMesh::build(&mesh);
        let geom = EdgeGeom::build(&mesh, &dual);
        let bc = BcData::build(&dual);
        let vol = dual.vol.clone();
        let node = NodeAos::zeros(mesh.nvertices());
        (geom, bc, vol, node)
    }

    #[test]
    fn constant_field_has_zero_gradient() {
        let (geom, bc, vol, mut node) = setup();
        node.set_freestream(&[0.7, 1.0, -0.5, 0.25]);
        green_gauss(&geom, &bc, &vol, &mut node);
        let max = node.grad.iter().map(|x| x.abs()).fold(0.0, f64::max);
        assert!(max < 1e-10, "constant field gradient {max}");
    }

    #[test]
    fn linear_field_gradient_accurate_in_interior() {
        // Green-Gauss with edge-midpoint face values on the median dual
        // reproduces linear fields at interior vertices (the boundary
        // closure uses the vertex value, so hull vertices are only
        // first-order accurate).
        let mesh = MeshPreset::Tiny.build();
        let dual = DualMesh::build(&mesh);
        let geom = EdgeGeom::build(&mesh, &dual);
        let bc = BcData::build(&dual);
        let vol = dual.vol.clone();
        let mut node = NodeAos::zeros(mesh.nvertices());
        // p = 2x − y + 3z, u = x, v = y, w = z
        for (vtx, c) in mesh.coords.iter().enumerate() {
            node.q[vtx * 4] = 2.0 * c.x - c.y + 3.0 * c.z;
            node.q[vtx * 4 + 1] = c.x;
            node.q[vtx * 4 + 2] = c.y;
            node.q[vtx * 4 + 3] = c.z;
        }
        green_gauss(&geom, &bc, &vol, &mut node);
        let expect = [
            [2.0, -1.0, 3.0],
            [1.0, 0.0, 0.0],
            [0.0, 1.0, 0.0],
            [0.0, 0.0, 1.0],
        ];
        let on_boundary: std::collections::HashSet<u32> =
            mesh.boundary.iter().flat_map(|t| t.verts).collect();
        let mut checked = 0usize;
        let mut worst: f64 = 0.0;
        for v in 0..node.n {
            if on_boundary.contains(&(v as u32)) {
                continue;
            }
            checked += 1;
            for c in 0..4 {
                for d in 0..3 {
                    let g = node.grad[v * 12 + c * 3 + d];
                    worst = worst.max((g - expect[c][d]).abs());
                }
            }
        }
        assert!(checked > 0, "no interior vertices in tiny mesh");
        // Edge-midpoint Green-Gauss is consistent but not pointwise exact
        // for linear fields on irregular duals; demand small relative
        // error at interior vertices.
        assert!(worst < 0.15, "interior gradient error {worst}");
    }

    #[test]
    fn lsq_exact_for_linear_fields_everywhere() {
        // Including boundary vertices — the property Green-Gauss with
        // edge-midpoint values lacks.
        let mesh = MeshPreset::Tiny.build();
        let edges = mesh.edges();
        let lsq = LsqGradient::build(&mesh.coords, &edges);
        let mut node = NodeAos::zeros(mesh.nvertices());
        for (v, c) in mesh.coords.iter().enumerate() {
            node.q[v * 4] = 2.0 * c.x - c.y + 3.0 * c.z;
            node.q[v * 4 + 1] = c.x;
            node.q[v * 4 + 2] = -0.5 * c.y + c.z;
            node.q[v * 4 + 3] = 7.0;
        }
        lsq.evaluate(&mut node);
        let expect = [
            [2.0, -1.0, 3.0],
            [1.0, 0.0, 0.0],
            [0.0, -0.5, 1.0],
            [0.0, 0.0, 0.0],
        ];
        for v in 0..node.n {
            for c in 0..4 {
                for d in 0..3 {
                    let g = node.grad[v * 12 + c * 3 + d];
                    assert!(
                        (g - expect[c][d]).abs() < 1e-10,
                        "vertex {v} comp {c} dim {d}: {g} vs {}",
                        expect[c][d]
                    );
                }
            }
        }
    }

    #[test]
    fn lsq_constant_field_zero_gradient() {
        let mesh = MeshPreset::Tiny.build();
        let lsq = LsqGradient::build(&mesh.coords, &mesh.edges());
        let mut node = NodeAos::zeros(mesh.nvertices());
        node.set_freestream(&[0.7, 1.0, -0.2, 0.1]);
        lsq.evaluate(&mut node);
        assert!(node.grad.iter().all(|g| g.abs() < 1e-12));
    }

    #[test]
    fn invert3_roundtrip() {
        let a = [4.0, 1.0, 0.5, 1.0, 3.0, 0.2, 0.5, 0.2, 5.0];
        let inv = invert3(&a).unwrap();
        // A * A^-1 == I
        for i in 0..3 {
            for j in 0..3 {
                let mut s = 0.0;
                for k in 0..3 {
                    s += a[i * 3 + k] * inv[k * 3 + j];
                }
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!((s - expect).abs() < 1e-12, "({i},{j}): {s}");
            }
        }
        assert!(invert3(&[0.0; 9]).is_none());
    }

    #[test]
    fn tiled_matches_serial_to_rounding() {
        let (geom, bc, vol, mut node) = setup();
        for (i, x) in node.q.iter_mut().enumerate() {
            *x = ((i * 53) % 23) as f64 * 0.07 - 0.8;
        }
        let mut serial = node.clone();
        green_gauss(&geom, &bc, &vol, &mut serial);
        for budget in [1usize, 4096, usize::MAX] {
            let tiling = EdgeTiling::build(
                node.n,
                &geom.edges,
                &fun3d_partition::TilingConfig::with_target_bytes(budget),
            );
            let tg = TiledGeom::new(&tiling, &geom);
            let mut t = node.clone();
            green_gauss_tiled(&tiling, &tg, &bc, &vol, TileExec::Staged, &mut t);
            for i in 0..t.grad.len() {
                assert!(
                    (t.grad[i] - serial.grad[i]).abs() <= 1e-11 * (1.0 + serial.grad[i].abs()),
                    "budget {budget} entry {i}: {} vs {}",
                    t.grad[i],
                    serial.grad[i]
                );
            }
            // Direct execution skips the scratch pad but runs the same
            // arithmetic in the same order: bitwise equal to staged.
            let mut d = node.clone();
            green_gauss_tiled(&tiling, &tg, &bc, &vol, TileExec::Direct, &mut d);
            assert_eq!(t.grad, d.grad, "budget {budget}: direct vs staged");
        }
    }

    #[test]
    fn tiled_pooled_matches_tiled_bitwise() {
        let (geom, bc, vol, mut node) = setup();
        for (i, x) in node.q.iter_mut().enumerate() {
            *x = ((i * 29) % 17) as f64 * 0.09 - 0.7;
        }
        let tiling = EdgeTiling::build(
            node.n,
            &geom.edges,
            &fun3d_partition::TilingConfig::with_target_bytes(4096),
        );
        let tg = TiledGeom::new(&tiling, &geom);
        let mut serial = node.clone();
        green_gauss_tiled(&tiling, &tg, &bc, &vol, TileExec::Staged, &mut serial);
        for exec in [TileExec::Staged, TileExec::Direct] {
            for nt in [1usize, 2, 4] {
                let pool = ThreadPool::new(nt);
                let mut par = node.clone();
                green_gauss_tiled_pooled(&pool, &tiling, &tg, &bc, &vol, exec, &mut par);
                assert_eq!(serial.grad, par.grad, "{exec:?} nt={nt}");
            }
        }
    }

    #[test]
    fn threaded_matches_serial_bitwise() {
        let (geom, bc, vol, mut node) = setup();
        for (i, x) in node.q.iter_mut().enumerate() {
            *x = ((i * 37) % 19) as f64 * 0.1 - 0.9;
        }
        let mut serial = node.clone();
        green_gauss(&geom, &bc, &vol, &mut serial);
        let graph = fun3d_mesh::Graph::from_edges(node.n, &geom.edges);
        for nt in [1usize, 3] {
            let part = partition_graph(&graph, nt, &MultilevelConfig::default());
            let plan = OwnerWritesPlan::build(&geom.edges, &part, nt);
            let pool = ThreadPool::new(nt);
            let mut par = node.clone();
            green_gauss_threaded(&pool, &plan, &geom, &bc, &vol, &mut par);
            assert_eq!(serial.grad, par.grad, "nt={nt}");
        }
    }
}
