//! First-order flux Jacobian assembly into 4×4-block BCSR.
//!
//! The preconditioning operator is derived "from a lower-order, sparser
//! and more diffusive discretization than that used for f(u) itself"
//! (paper Section II.B): first-order Rusanov flux, whose Jacobian blocks
//! are `∂F*/∂q_a = ½A(q_a) + ½λI` and `∂F*/∂q_b = ½A(q_b) − ½λI` with
//! the face spectral radius λ frozen. The pattern is exactly
//! vertex-neighbors (mesh edges) plus the diagonal — the narrow band the
//! ILU/TRSV kernels operate on.

use crate::bc::{self, BcData};
use crate::euler::{self, FlowConditions};
use crate::geom::{EdgeGeom, NodeAos};
use fun3d_sparse::Bcsr4;

/// Assembles the first-order Jacobian of the spatial residual, including
/// boundary contributions, into `jac` (pattern must be the mesh pattern
/// from [`Bcsr4::from_edges`]). Values are overwritten.
pub fn assemble(
    geom: &EdgeGeom,
    bc: &BcData,
    node: &NodeAos,
    cond: &FlowConditions,
    jac: &mut Bcsr4,
) {
    jac.zero_values();
    let beta = cond.beta;
    for (k, e) in geom.edges.iter().enumerate() {
        let (a, b) = (e[0] as usize, e[1] as usize);
        let n = [geom.nx[k], geom.ny[k], geom.nz[k]];
        let qa = node.state(a);
        let qb = node.state(b);
        let lam = euler::spectral_radius(&qa, &n, beta)
            .max(euler::spectral_radius(&qb, &n, beta));
        // dF*/dqa = ½A(qa) + ½λI ; dF*/dqb = ½A(qb) − ½λI
        let mut da = euler::flux_jacobian(&qa, &n, beta);
        let mut db = euler::flux_jacobian(&qb, &n, beta);
        for x in da.iter_mut() {
            *x *= 0.5;
        }
        for x in db.iter_mut() {
            *x *= 0.5;
        }
        for d in 0..4 {
            da[d * 4 + d] += 0.5 * lam;
            db[d * 4 + d] -= 0.5 * lam;
        }
        // res[a] += F* ; res[b] -= F*
        jac.add_block(a, a as u32, &da);
        jac.add_block(a, b as u32, &db);
        let neg = |m: &[f64; 16]| {
            let mut o = *m;
            for x in o.iter_mut() {
                *x = -*x;
            }
            o
        };
        jac.add_block(b, a as u32, &neg(&da));
        jac.add_block(b, b as u32, &neg(&db));
    }
    bc::jacobian(bc, node, cond, jac);
}

/// Adds the pseudo-time term `diag(shift)` (one scalar per unknown) onto
/// the diagonal blocks.
pub fn add_time_diagonal(jac: &mut Bcsr4, shift: &[f64]) {
    assert_eq!(shift.len(), jac.dim());
    for r in 0..jac.nrows() {
        let k = jac.find(r, r as u32).expect("diagonal block");
        for d in 0..4 {
            jac.blocks[k * 16 + d * 4 + d] += shift[r * 4 + d];
        }
    }
}

/// First-order residual matching the assembled Jacobian (used by tests to
/// verify the assembly is the exact derivative of *this* function):
/// Rusanov flux without reconstruction, plus boundary fluxes.
pub fn first_order_residual(
    geom: &EdgeGeom,
    bc: &BcData,
    node: &NodeAos,
    cond: &FlowConditions,
    res: &mut [f64],
) {
    res.iter_mut().for_each(|x| *x = 0.0);
    let beta = cond.beta;
    for (k, e) in geom.edges.iter().enumerate() {
        let (a, b) = (e[0] as usize, e[1] as usize);
        let n = [geom.nx[k], geom.ny[k], geom.nz[k]];
        let qa = node.state(a);
        let qb = node.state(b);
        let fa = euler::flux(&qa, &n, beta);
        let fb = euler::flux(&qb, &n, beta);
        let lam = euler::spectral_radius(&qa, &n, beta)
            .max(euler::spectral_radius(&qb, &n, beta));
        for c in 0..4 {
            let f = 0.5 * (fa[c] + fb[c]) - 0.5 * lam * (qb[c] - qa[c]);
            res[a * 4 + c] += f;
            res[b * 4 + c] -= f;
        }
    }
    bc::residual(bc, node, cond, res);
}

#[cfg(test)]
mod tests {
    use super::*;
    use fun3d_mesh::generator::MeshPreset;
    use fun3d_mesh::DualMesh;
    use fun3d_util::Rng64;

    fn setup() -> (EdgeGeom, BcData, NodeAos, Bcsr4) {
        let mesh = MeshPreset::Tiny.build();
        let dual = DualMesh::build(&mesh);
        let geom = EdgeGeom::build(&mesh, &dual);
        let bc = BcData::build(&dual);
        let mut node = NodeAos::zeros(mesh.nvertices());
        let mut rng = Rng64::new(7);
        let cond = FlowConditions::default();
        node.set_freestream(&cond.qinf);
        for x in node.q.iter_mut() {
            *x += rng.range_f64(-0.1, 0.1);
        }
        let jac = Bcsr4::from_edges(mesh.nvertices(), &mesh.edges());
        (geom, bc, node, jac)
    }

    #[test]
    fn jacobian_matches_frozen_lambda_residual_fd() {
        // The assembled blocks are the exact derivative of the
        // first-order residual *with the dissipation coefficients λ
        // frozen at the base state* (the standard approximation). Build
        // that frozen residual explicitly and finite-difference it.
        let (geom, bc, node, mut jac) = setup();
        let cond = FlowConditions::default();
        assemble(&geom, &bc, &node, &cond, &mut jac);
        let beta = cond.beta;

        // Freeze per-edge and per-boundary-entry λ at the base state.
        let lam_edge: Vec<f64> = geom
            .edges
            .iter()
            .enumerate()
            .map(|(k, e)| {
                let n = [geom.nx[k], geom.ny[k], geom.nz[k]];
                let qa = node.state(e[0] as usize);
                let qb = node.state(e[1] as usize);
                euler::spectral_radius(&qa, &n, beta)
                    .max(euler::spectral_radius(&qb, &n, beta))
            })
            .collect();
        let lam_bc: Vec<f64> = (0..bc.len())
            .map(|i| {
                let n = [bc.nx[i], bc.ny[i], bc.nz[i]];
                let q = node.state(bc.vertex[i] as usize);
                let qm = [
                    0.5 * (q[0] + cond.qinf[0]),
                    0.5 * (q[1] + cond.qinf[1]),
                    0.5 * (q[2] + cond.qinf[2]),
                    0.5 * (q[3] + cond.qinf[3]),
                ];
                euler::spectral_radius(&qm, &n, beta)
            })
            .collect();

        let frozen_residual = |nd: &NodeAos, out: &mut [f64]| {
            out.iter_mut().for_each(|x| *x = 0.0);
            for (k, e) in geom.edges.iter().enumerate() {
                let (a, b) = (e[0] as usize, e[1] as usize);
                let n = [geom.nx[k], geom.ny[k], geom.nz[k]];
                let qa = nd.state(a);
                let qb = nd.state(b);
                let fa = euler::flux(&qa, &n, beta);
                let fb = euler::flux(&qb, &n, beta);
                for c in 0..4 {
                    let f = 0.5 * (fa[c] + fb[c]) - 0.5 * lam_edge[k] * (qb[c] - qa[c]);
                    out[a * 4 + c] += f;
                    out[b * 4 + c] -= f;
                }
            }
            for i in 0..bc.len() {
                let v = bc.vertex[i] as usize;
                let n = [bc.nx[i], bc.ny[i], bc.nz[i]];
                let q = nd.state(v);
                let f = match bc.tag[i] {
                    fun3d_mesh::BcTag::SlipWall | fun3d_mesh::BcTag::Symmetry => {
                        crate::bc::wall_flux(&q, &n)
                    }
                    fun3d_mesh::BcTag::FarField => {
                        let fi = euler::flux(&q, &n, beta);
                        let finf = euler::flux(&cond.qinf, &n, beta);
                        let mut f = [0.0; 4];
                        for c in 0..4 {
                            f[c] = 0.5 * (fi[c] + finf[c])
                                - 0.5 * lam_bc[i] * (cond.qinf[c] - q[c]);
                        }
                        f
                    }
                };
                for c in 0..4 {
                    out[v * 4 + c] += f[c];
                }
            }
        };

        let n = jac.dim();
        let mut rng = Rng64::new(8);
        let v: Vec<f64> = (0..n).map(|_| rng.range_f64(-1.0, 1.0)).collect();
        let mut jv = vec![0.0; n];
        jac.spmv(&v, &mut jv);

        let h = 1e-7;
        let mut r0 = vec![0.0; n];
        frozen_residual(&node, &mut r0);
        let mut pert = node.clone();
        for i in 0..n {
            pert.q[i] += h * v[i];
        }
        let mut r1 = vec![0.0; n];
        frozen_residual(&pert, &mut r1);
        let scale = jv.iter().map(|x| x.abs()).fold(0.0, f64::max).max(1.0);
        for i in 0..n {
            let fd = (r1[i] - r0[i]) / h;
            assert!(
                (fd - jv[i]).abs() < 1e-5 * scale,
                "entry {i}: fd {fd} vs J*v {}",
                jv[i]
            );
        }
    }

    #[test]
    fn row_sums_reflect_conservation() {
        // Without boundaries, interior edge contributions are equal and
        // opposite: the column sums over each edge pair cancel. Check the
        // assembled matrix has bounded entries and correct pattern reuse.
        let (geom, bc, node, mut jac) = setup();
        let cond = FlowConditions::default();
        assemble(&geom, &bc, &node, &cond, &mut jac);
        assert!(jac.blocks.iter().all(|x| x.is_finite()));
        // reassembly must give identical values (zeroing works)
        let snapshot = jac.blocks.clone();
        assemble(&geom, &bc, &node, &cond, &mut jac);
        assert_eq!(snapshot, jac.blocks);
    }

    #[test]
    fn time_diagonal_added_once_per_unknown() {
        let (geom, bc, node, mut jac) = setup();
        let cond = FlowConditions::default();
        assemble(&geom, &bc, &node, &cond, &mut jac);
        let before = jac.blocks.clone();
        let n = jac.dim();
        let shift: Vec<f64> = (0..n).map(|i| 1.0 + i as f64).collect();
        add_time_diagonal(&mut jac, &shift);
        for r in 0..jac.nrows() {
            let k = jac.find(r, r as u32).unwrap();
            for d in 0..4 {
                let idx = k * 16 + d * 4 + d;
                assert!(
                    (jac.blocks[idx] - before[idx] - shift[r * 4 + d]).abs() < 1e-14
                );
            }
        }
    }

    #[test]
    fn diagonal_dominance_improves_with_time_term() {
        // A large V/Δt shift must make the matrix strongly diagonally
        // dominant (this is what makes early PTC steps easy to solve).
        let (geom, bc, node, mut jac) = setup();
        let cond = FlowConditions::default();
        assemble(&geom, &bc, &node, &cond, &mut jac);
        let n = jac.dim();
        add_time_diagonal(&mut jac, &vec![1e3; n]);
        let d = jac.to_dense();
        for i in 0..n {
            let diag = d[i * n + i].abs();
            let off: f64 = (0..n).filter(|&j| j != i).map(|j| d[i * n + j].abs()).sum();
            assert!(diag > off, "row {i} not dominant: {diag} vs {off}");
        }
    }
}
