//! The edge-based flux kernel in every optimization variant of Section V.A.
//!
//! All variants compute the identical discrete residual contribution
//!
//! ```text
//! for each edge (a, b):  F* = Roe(qL, qR, n_ab);  res[a] += F*;  res[b] -= F*
//! ```
//!
//! with second-order reconstruction `qL = q_a + ½∇q_a·r`, `qR = q_b −
//! ½∇q_b·r`. They differ in how they are scheduled and how node data is
//! laid out:
//!
//! | variant | threading | node layout | SIMD | prefetch |
//! |---|---|---|---|---|
//! | [`serial_soa`] | — | SoA | — | — |
//! | [`serial_aos`] | — | AoS | — | — |
//! | [`serial_aos_simd`] | — | AoS | 4-edge batch | — |
//! | [`serial_aos_simd_prefetch`] | — | AoS | 4-edge batch | L1+L2 |
//! | [`atomics`] | natural edge split | AoS | — | — |
//! | [`owner_writes`] | vertex partition, owner-only writes | AoS | — | — |
//! | [`owner_writes_opt`] | vertex partition, owner-only writes | AoS | 4-edge batch | L1+L2 |
//! | [`tiled`] | — (color-major tile order) | scratch-pad AoS | 4-edge batch | — |
//! | [`tiled_pooled`] | inter-tile coloring, tiles of a color in parallel | scratch-pad AoS | 4-edge batch | — |
//!
//! The SIMD batch follows the paper's restructuring exactly: the
//! dependency-free compute runs one edge per lane into a temporary
//! buffer; results are committed with scalar writes afterward.
//!
//! The tiled variants go beyond the paper (ROADMAP item 2): vertex data
//! of a cache-sized [`EdgeTiling`] tile is staged once into a dense
//! scratch pad, every intra-tile edge reads and accumulates there with
//! full reuse, and the result is scattered back per unique vertex —
//! replacing the streaming kernels' two DRAM gathers per edge with one
//! stage + one scatter per staged vertex. Same-color tiles are
//! vertex-disjoint, so [`tiled_pooled`] runs each color class across the
//! pool with no atomics and no replicated work, separated by barriers.

use crate::euler;
use crate::geom::{EdgeGeom, NodeAos, NodeSoa, TiledGeom};
use fun3d_partition::{EdgeTiling, OwnerWritesPlan, Tile};
use fun3d_simd::{aos_load_transpose, prefetch_l1, prefetch_l2, F64x4};
use fun3d_threads::{available_cores, chunk_range, AtomicF64View, SpinBarrier, ThreadPool};

/// Prefetch distance in edges. Tuned: the `prefetch_dist` microbench
/// group sweeps 4/8/16/32 on this host (artifact in
/// `target/experiments/microbench.csv`); 8 and 16 tie within noise,
/// 4 and 32 are measurably worse.
pub const PREFETCH_DIST: usize = 16;

/// Shared per-edge physics, scalar form.
#[inline(always)]
fn edge_flux(
    qa: &[f64; 4],
    qb: &[f64; 4],
    ga: &[f64],
    gb: &[f64],
    n: &[f64; 3],
    r: &[f64; 3],
    beta: f64,
) -> [f64; 4] {
    let mut ql = [0.0f64; 4];
    let mut qr = [0.0f64; 4];
    for c in 0..4 {
        let da = ga[c * 3] * r[0] + ga[c * 3 + 1] * r[1] + ga[c * 3 + 2] * r[2];
        let db = gb[c * 3] * r[0] + gb[c * 3 + 1] * r[1] + gb[c * 3 + 2] * r[2];
        ql[c] = qa[c] + 0.5 * da;
        qr[c] = qb[c] - 0.5 * db;
    }
    euler::roe_flux(&ql, &qr, n, beta)
}

/// Baseline: serial scalar loop over edges, SoA node data (4 + 12
/// separate gathers per endpoint).
pub fn serial_soa(geom: &EdgeGeom, node: &NodeSoa, beta: f64, res: &mut [f64]) {
    assert_eq!(res.len(), node.n * 4);
    for (k, e) in geom.edges.iter().enumerate() {
        let (a, b) = (e[0] as usize, e[1] as usize);
        let qa = node.state(a);
        let qb = node.state(b);
        let ga = node.gradient(a);
        let gb = node.gradient(b);
        let n = [geom.nx[k], geom.ny[k], geom.nz[k]];
        let r = [geom.rx[k], geom.ry[k], geom.rz[k]];
        let f = edge_flux(&qa, &qb, &ga, &gb, &n, &r, beta);
        for c in 0..4 {
            res[a * 4 + c] += f[c];
            res[b * 4 + c] -= f[c];
        }
    }
}

/// Serial scalar loop with AoS node data (one contiguous load per
/// endpoint's state and gradient).
pub fn serial_aos(geom: &EdgeGeom, node: &NodeAos, beta: f64, res: &mut [f64]) {
    assert_eq!(res.len(), node.n * 4);
    for (k, e) in geom.edges.iter().enumerate() {
        let (a, b) = (e[0] as usize, e[1] as usize);
        let qa = node.state(a);
        let qb = node.state(b);
        let ga = node.gradient(a);
        let gb = node.gradient(b);
        let n = [geom.nx[k], geom.ny[k], geom.nz[k]];
        let r = [geom.rx[k], geom.ry[k], geom.rz[k]];
        let f = edge_flux(&qa, &qb, &ga, &gb, &n, &r, beta);
        for c in 0..4 {
            res[a * 4 + c] += f[c];
            res[b * 4 + c] -= f[c];
        }
    }
}

/// Vectorized per-edge physics: one edge per SIMD lane.
#[inline(always)]
fn edge_flux_simd(
    qa: &[F64x4; 4],
    qb: &[F64x4; 4],
    ga: &[F64x4; 12],
    gb: &[F64x4; 12],
    n: &[F64x4; 3],
    r: &[F64x4; 3],
    beta: f64,
) -> [F64x4; 4] {
    // reconstruction
    let mut ql = [F64x4::zero(); 4];
    let mut qr = [F64x4::zero(); 4];
    for c in 0..4 {
        let da = ga[c * 3] * r[0] + ga[c * 3 + 1] * r[1] + ga[c * 3 + 2] * r[2];
        let db = gb[c * 3] * r[0] + gb[c * 3 + 1] * r[1] + gb[c * 3 + 2] * r[2];
        ql[c] = qa[c] + da * 0.5;
        qr[c] = qb[c] - db * 0.5;
    }
    // fluxes at both sides
    let flux_of = |q: &[F64x4; 4]| -> [F64x4; 4] {
        let theta = n[0] * q[1] + n[1] * q[2] + n[2] * q[3];
        [
            theta * beta,
            q[1] * theta + n[0] * q[0],
            q[2] * theta + n[1] * q[0],
            q[3] * theta + n[2] * q[0],
        ]
    };
    let fl = flux_of(&ql);
    let fr = flux_of(&qr);
    // mean state and wave structure
    let qm = [
        (ql[0] + qr[0]) * 0.5,
        (ql[1] + qr[1]) * 0.5,
        (ql[2] + qr[2]) * 0.5,
        (ql[3] + qr[3]) * 0.5,
    ];
    let theta = n[0] * qm[1] + n[1] * qm[2] + n[2] * qm[3];
    let s2 = n[0] * n[0] + n[1] * n[1] + n[2] * n[2];
    let c = (theta * theta + s2 * beta).sqrt();
    // |A| polynomial coefficients per lane
    let m2 = theta + c;
    let m3 = theta - c;
    let c2inv = F64x4::splat(1.0) / (c * c);
    let l1 = theta.abs() * c2inv * -1.0;
    let l2 = m2.abs() * c2inv * 0.5;
    let l3 = m3.abs() * c2inv * 0.5;
    let pa = l1 + l2 + l3;
    let pb = -(l1 * (m2 + m3) + l2 * (theta + m3) + l3 * (theta + m2));
    let pd = l1 * m2 * m3 + l2 * theta * m3 + l3 * theta * m2;
    // A(qm) * x applied twice, lane-wise
    let dq = [qr[0] - ql[0], qr[1] - ql[1], qr[2] - ql[2], qr[3] - ql[3]];
    let amul = |x: &[F64x4; 4]| -> [F64x4; 4] {
        let th_x = n[0] * x[1] + n[1] * x[2] + n[2] * x[3];
        let theta_full = theta; // Θ at mean state
        [
            th_x * beta,
            x[0] * n[0] + x[1] * theta_full + qm[1] * th_x,
            x[0] * n[1] + x[2] * theta_full + qm[2] * th_x,
            x[0] * n[2] + x[3] * theta_full + qm[3] * th_x,
        ]
    };
    let adq = amul(&dq);
    let aadq = amul(&adq);
    let mut out = [F64x4::zero(); 4];
    for k in 0..4 {
        let diss = pa * aadq[k] + pb * adq[k] + pd * dq[k];
        out[k] = (fl[k] + fr[k] - diss) * 0.5;
    }
    out
}

/// Gathers the SIMD-transposed state and gradient of four vertices.
#[inline(always)]
fn gather4(node: &NodeAos, idx: [usize; 4]) -> ([F64x4; 4], [F64x4; 12]) {
    let q: [F64x4; 4] = aos_load_transpose::<4>(&node.q, 4, idx);
    let g: [F64x4; 12] = aos_load_transpose::<12>(&node.grad, 12, idx);
    (q, g)
}

/// Processes edges `[k0, k0+4)` as one SIMD batch into `fout`.
#[inline(always)]
fn simd_batch(geom: &EdgeGeom, node: &NodeAos, beta: f64, k0: usize, fout: &mut [[f64; 4]; 4]) {
    let ia = [
        geom.edges[k0][0] as usize,
        geom.edges[k0 + 1][0] as usize,
        geom.edges[k0 + 2][0] as usize,
        geom.edges[k0 + 3][0] as usize,
    ];
    let ib = [
        geom.edges[k0][1] as usize,
        geom.edges[k0 + 1][1] as usize,
        geom.edges[k0 + 2][1] as usize,
        geom.edges[k0 + 3][1] as usize,
    ];
    let (qa, ga) = gather4(node, ia);
    let (qb, gb) = gather4(node, ib);
    let n = [
        F64x4::from_slice(&geom.nx[k0..k0 + 4]),
        F64x4::from_slice(&geom.ny[k0..k0 + 4]),
        F64x4::from_slice(&geom.nz[k0..k0 + 4]),
    ];
    let r = [
        F64x4::from_slice(&geom.rx[k0..k0 + 4]),
        F64x4::from_slice(&geom.ry[k0..k0 + 4]),
        F64x4::from_slice(&geom.rz[k0..k0 + 4]),
    ];
    let f = edge_flux_simd(&qa, &qb, &ga, &gb, &n, &r, beta);
    for lane in 0..4 {
        for c in 0..4 {
            fout[lane][c] = f[c][lane];
        }
    }
}

/// Serial SIMD variant: 4-edge batches, compute into a temporary, scalar
/// write-out; scalar tail loop.
pub fn serial_aos_simd(geom: &EdgeGeom, node: &NodeAos, beta: f64, res: &mut [f64]) {
    assert_eq!(res.len(), node.n * 4);
    let ne = geom.nedges();
    let nbatch = ne / 4 * 4;
    let mut fout = [[0.0f64; 4]; 4];
    let mut k = 0;
    while k < nbatch {
        simd_batch(geom, node, beta, k, &mut fout);
        for lane in 0..4 {
            let e = geom.edges[k + lane];
            let (a, b) = (e[0] as usize, e[1] as usize);
            for c in 0..4 {
                res[a * 4 + c] += fout[lane][c];
                res[b * 4 + c] -= fout[lane][c];
            }
        }
        k += 4;
    }
    scalar_tail(geom, node, beta, res, nbatch, ne);
}

/// SIMD + software prefetch: node data of edges `PREFETCH_DIST` ahead is
/// requested into L1 and edge arrays into L2.
pub fn serial_aos_simd_prefetch(geom: &EdgeGeom, node: &NodeAos, beta: f64, res: &mut [f64]) {
    serial_aos_simd_prefetch_dist(geom, node, beta, res, PREFETCH_DIST);
}

/// Like [`serial_aos_simd_prefetch`] with an explicit prefetch distance
/// (in edges) — the knob the distance-sweep ablation turns.
pub fn serial_aos_simd_prefetch_dist(
    geom: &EdgeGeom,
    node: &NodeAos,
    beta: f64,
    res: &mut [f64],
    dist: usize,
) {
    assert_eq!(res.len(), node.n * 4);
    let ne = geom.nedges();
    let nbatch = ne / 4 * 4;
    let mut fout = [[0.0f64; 4]; 4];
    let mut k = 0;
    while k < nbatch {
        let pk = k + dist;
        if pk + 4 <= ne {
            for lane in 0..4 {
                let e = geom.edges[pk + lane];
                prefetch_l1(&node.q, e[0] as usize * 4);
                prefetch_l1(&node.q, e[1] as usize * 4);
                prefetch_l1(&node.grad, e[0] as usize * 12);
                prefetch_l1(&node.grad, e[1] as usize * 12);
            }
            prefetch_l2(&geom.nx, pk);
            prefetch_l2(&geom.edges, pk);
        }
        simd_batch(geom, node, beta, k, &mut fout);
        for lane in 0..4 {
            let e = geom.edges[k + lane];
            let (a, b) = (e[0] as usize, e[1] as usize);
            for c in 0..4 {
                res[a * 4 + c] += fout[lane][c];
                res[b * 4 + c] -= fout[lane][c];
            }
        }
        k += 4;
    }
    scalar_tail(geom, node, beta, res, nbatch, ne);
}

#[inline]
fn scalar_tail(
    geom: &EdgeGeom,
    node: &NodeAos,
    beta: f64,
    res: &mut [f64],
    from: usize,
    to: usize,
) {
    for k in from..to {
        let e = geom.edges[k];
        let (a, b) = (e[0] as usize, e[1] as usize);
        let qa = node.state(a);
        let qb = node.state(b);
        let n = [geom.nx[k], geom.ny[k], geom.nz[k]];
        let r = [geom.rx[k], geom.ry[k], geom.rz[k]];
        let f = edge_flux(&qa, &qb, node.gradient(a), node.gradient(b), &n, &r, beta);
        for c in 0..4 {
            res[a * 4 + c] += f[c];
            res[b * 4 + c] -= f[c];
        }
    }
}

/// "Basic partitioning with atomics": edges split in natural contiguous
/// ranges over threads; every vertex update is an atomic CAS add.
pub fn atomics(pool: &ThreadPool, geom: &EdgeGeom, node: &NodeAos, beta: f64, res: &mut [f64]) {
    assert_eq!(res.len(), node.n * 4);
    let view = AtomicF64View::new(res);
    pool.parallel_for(geom.nedges(), |_tid, range| {
        for k in range {
            let e = geom.edges[k];
            let (a, b) = (e[0] as usize, e[1] as usize);
            let qa = node.state(a);
            let qb = node.state(b);
            let n = [geom.nx[k], geom.ny[k], geom.nz[k]];
            let r = [geom.rx[k], geom.ry[k], geom.rz[k]];
            let f = edge_flux(&qa, &qb, node.gradient(a), node.gradient(b), &n, &r, beta);
            for c in 0..4 {
                view.fetch_add(a * 4 + c, f[c]);
                view.fetch_add(b * 4 + c, -f[c]);
            }
        }
    });
}

/// Owner-only-writes threading (scalar AoS path): each thread walks its
/// plan edges (interior edges once, cut edges redundantly on both owning
/// threads) and writes only the endpoints it owns.
pub fn owner_writes(
    pool: &ThreadPool,
    plan: &OwnerWritesPlan,
    geom: &EdgeGeom,
    node: &NodeAos,
    beta: f64,
    res: &mut [f64],
) {
    assert_eq!(res.len(), node.n * 4);
    assert_eq!(pool.size(), plan.nthreads());
    let rp = SendPtr(res.as_mut_ptr());
    pool.run(|tid| {
        let rp = &rp;
        let edges = &plan.edges_of[tid];
        let masks = &plan.writes_of[tid];
        for (idx, &eid) in edges.iter().enumerate() {
            let k = eid as usize;
            let e = geom.edges[k];
            let (a, b) = (e[0] as usize, e[1] as usize);
            let qa = node.state(a);
            let qb = node.state(b);
            let n = [geom.nx[k], geom.ny[k], geom.nz[k]];
            let r = [geom.rx[k], geom.ry[k], geom.rz[k]];
            let f = edge_flux(&qa, &qb, node.gradient(a), node.gradient(b), &n, &r, beta);
            let mask = masks[idx];
            // SAFETY: owner-only writes — vertex a (resp. b) is written
            // only by the thread owning it, per the plan's write masks.
            unsafe {
                if mask & 1 != 0 {
                    for c in 0..4 {
                        *rp.0.add(a * 4 + c) += f[c];
                    }
                }
                if mask & 2 != 0 {
                    for c in 0..4 {
                        *rp.0.add(b * 4 + c) -= f[c];
                    }
                }
            }
        }
    });
}

/// Owner-only-writes with the full single-thread optimization stack:
/// 4-edge SIMD batches, temporary-buffer write-out, software prefetch.
pub fn owner_writes_opt(
    pool: &ThreadPool,
    plan: &OwnerWritesPlan,
    geom: &EdgeGeom,
    node: &NodeAos,
    beta: f64,
    res: &mut [f64],
) {
    assert_eq!(res.len(), node.n * 4);
    assert_eq!(pool.size(), plan.nthreads());
    let rp = SendPtr(res.as_mut_ptr());
    pool.run(|tid| {
        let rp = &rp;
        let edges = &plan.edges_of[tid];
        let masks = &plan.writes_of[tid];
        let ne = edges.len();
        let nbatch = ne / 4 * 4;
        let mut fout = [[0.0f64; 4]; 4];
        let mut i = 0;
        while i < nbatch {
            // prefetch ahead within this thread's edge list
            let pi = i + PREFETCH_DIST;
            if pi + 4 <= ne {
                for lane in 0..4 {
                    let e = geom.edges[edges[pi + lane] as usize];
                    prefetch_l1(&node.q, e[0] as usize * 4);
                    prefetch_l1(&node.q, e[1] as usize * 4);
                    prefetch_l1(&node.grad, e[0] as usize * 12);
                    prefetch_l1(&node.grad, e[1] as usize * 12);
                }
            }
            // gather the 4 (possibly non-consecutive) edges of the batch
            let ks = [
                edges[i] as usize,
                edges[i + 1] as usize,
                edges[i + 2] as usize,
                edges[i + 3] as usize,
            ];
            let ia = [
                geom.edges[ks[0]][0] as usize,
                geom.edges[ks[1]][0] as usize,
                geom.edges[ks[2]][0] as usize,
                geom.edges[ks[3]][0] as usize,
            ];
            let ib = [
                geom.edges[ks[0]][1] as usize,
                geom.edges[ks[1]][1] as usize,
                geom.edges[ks[2]][1] as usize,
                geom.edges[ks[3]][1] as usize,
            ];
            let (qa, ga) = gather4(node, ia);
            let (qb, gb) = gather4(node, ib);
            let n = [
                F64x4([geom.nx[ks[0]], geom.nx[ks[1]], geom.nx[ks[2]], geom.nx[ks[3]]]),
                F64x4([geom.ny[ks[0]], geom.ny[ks[1]], geom.ny[ks[2]], geom.ny[ks[3]]]),
                F64x4([geom.nz[ks[0]], geom.nz[ks[1]], geom.nz[ks[2]], geom.nz[ks[3]]]),
            ];
            let r = [
                F64x4([geom.rx[ks[0]], geom.rx[ks[1]], geom.rx[ks[2]], geom.rx[ks[3]]]),
                F64x4([geom.ry[ks[0]], geom.ry[ks[1]], geom.ry[ks[2]], geom.ry[ks[3]]]),
                F64x4([geom.rz[ks[0]], geom.rz[ks[1]], geom.rz[ks[2]], geom.rz[ks[3]]]),
            ];
            let f = edge_flux_simd(&qa, &qb, &ga, &gb, &n, &r, beta);
            for lane in 0..4 {
                for c in 0..4 {
                    fout[lane][c] = f[c][lane];
                }
            }
            // scalar write-out, owner-only
            for lane in 0..4 {
                let mask = masks[i + lane];
                // SAFETY: owner-only writes per the plan.
                unsafe {
                    if mask & 1 != 0 {
                        for c in 0..4 {
                            *rp.0.add(ia[lane] * 4 + c) += fout[lane][c];
                        }
                    }
                    if mask & 2 != 0 {
                        for c in 0..4 {
                            *rp.0.add(ib[lane] * 4 + c) -= fout[lane][c];
                        }
                    }
                }
            }
            i += 4;
        }
        // scalar tail
        for idx in nbatch..ne {
            let k = edges[idx] as usize;
            let e = geom.edges[k];
            let (a, b) = (e[0] as usize, e[1] as usize);
            let qa = node.state(a);
            let qb = node.state(b);
            let n = [geom.nx[k], geom.ny[k], geom.nz[k]];
            let r = [geom.rx[k], geom.ry[k], geom.rz[k]];
            let f = edge_flux(&qa, &qb, node.gradient(a), node.gradient(b), &n, &r, beta);
            let mask = masks[idx];
            // SAFETY: owner-only writes per the plan.
            unsafe {
                if mask & 1 != 0 {
                    for c in 0..4 {
                        *rp.0.add(a * 4 + c) += f[c];
                    }
                }
                if mask & 2 != 0 {
                    for c in 0..4 {
                        *rp.0.add(b * 4 + c) -= f[c];
                    }
                }
            }
        }
    });
}

struct SendPtr(*mut f64);
// SAFETY: threads write disjoint vertex slots per the owner-writes plan.
unsafe impl Send for SendPtr {}
unsafe impl Sync for SendPtr {}

/// How a tile's vertex data reaches the compute loop.
///
/// Both modes run the identical arithmetic over the identical edge
/// order, so they produce **bitwise identical** results — the choice is
/// purely a traffic trade, made once per solve by [`TileExec::auto`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TileExec {
    /// Explicit scratch-pad staging: copy the tile's unique vertices
    /// into a dense local pad, gather through the remap. Pays a copy
    /// per staged vertex to convert DRAM gathers into L1/L2 gathers —
    /// the win the paper-class machines (node arrays ≫ LLC) get from
    /// tiling.
    Staged,
    /// Direct global gathers in tile order: the tile's vertex working
    /// set is L2-sized by construction, so the hardware stages it on
    /// first touch and the remaining gathers hit cache — no copy, no
    /// remap traffic. The right mode when the node arrays are already
    /// LLC-resident and an explicit copy is pure overhead.
    Direct,
}

impl TileExec {
    /// Picks the mode for a machine and mesh: staging only pays when
    /// the flux kernel's node working set (state + gradient + residual
    /// per vertex) cannot live in the last-level cache.
    pub fn auto(machine: &fun3d_machine::MachineSpec, nvertices: usize) -> TileExec {
        let working_set = nvertices * (4 + 12 + 4) * 8;
        if working_set > machine.llc_bytes {
            TileExec::Staged
        } else {
            TileExec::Direct
        }
    }
}

/// Per-worker scratch pad for the tiled kernels, sized to the largest
/// tile: staged state (4/vertex) and gradient (12/vertex), local-index
/// addressed — the reuse-heavy *read* side of the kernel. The residual
/// is accumulated directly in the global array: the coloring already
/// makes the tile's slots exclusive, and they are cache-resident for
/// the tile's lifetime, so a third staged copy would be pure overhead.
pub struct TileScratch {
    q: Vec<f64>,
    grad: Vec<f64>,
}

impl TileScratch {
    /// Allocates a scratch pad holding up to `max_verts` staged vertices.
    pub fn new(max_verts: usize) -> TileScratch {
        TileScratch {
            q: vec![0.0; max_verts * 4],
            grad: vec![0.0; max_verts * 12],
        }
    }
}

/// One tile of the flux kernel: stage → compute (4-edge SIMD batches on
/// the scratch pad, local indices), accumulating into the global
/// residual (exclusive per the coloring, cache-resident for the tile).
///
/// `geom` is the tile-ordered geometry ([`TiledGeom`]) and `start` the
/// tile's offset in it: the loop walks `start..start+len` sequentially,
/// so every geometry array is a pure stream — the scratch-pad gathers
/// are the only indexed accesses left, and they hit L1.
///
/// # Safety
/// The caller must guarantee exclusive access to the `res` slots of this
/// tile's vertices for the duration of the call. The tiled drivers get
/// this from the inter-tile coloring: tiles of one color are
/// vertex-disjoint, and colors are separated by barriers.
unsafe fn tile_flux(
    tile: &Tile,
    start: usize,
    geom: &EdgeGeom,
    node: &NodeAos,
    beta: f64,
    scratch: &mut TileScratch,
    res: *mut f64,
) {
    // Stage: one contiguous copy per unique vertex (slots are sorted by
    // global id, so the global side of the copy is quasi-sequential).
    for (l, &v) in tile.verts.iter().enumerate() {
        let v = v as usize;
        scratch.q[l * 4..l * 4 + 4].copy_from_slice(&node.q[v * 4..v * 4 + 4]);
        scratch.grad[l * 12..l * 12 + 12].copy_from_slice(&node.grad[v * 12..v * 12 + 12]);
    }
    // Compute: the serial_aos_simd batch structure, gathers redirected
    // through the local remap — everything the inner loop touches except
    // the (sequential) edge geometry stream and the residual lines is
    // scratch-pad resident.
    let ne = tile.edges.len();
    let nbatch = ne / 4 * 4;
    let mut fout = [[0.0f64; 4]; 4];
    let mut i = 0;
    while i < nbatch {
        let k = start + i;
        let ia = [
            tile.local[i][0] as usize,
            tile.local[i + 1][0] as usize,
            tile.local[i + 2][0] as usize,
            tile.local[i + 3][0] as usize,
        ];
        let ib = [
            tile.local[i][1] as usize,
            tile.local[i + 1][1] as usize,
            tile.local[i + 2][1] as usize,
            tile.local[i + 3][1] as usize,
        ];
        let qa: [F64x4; 4] = aos_load_transpose::<4>(&scratch.q, 4, ia);
        let ga: [F64x4; 12] = aos_load_transpose::<12>(&scratch.grad, 12, ia);
        let qb: [F64x4; 4] = aos_load_transpose::<4>(&scratch.q, 4, ib);
        let gb: [F64x4; 12] = aos_load_transpose::<12>(&scratch.grad, 12, ib);
        let n = [
            F64x4(geom.nx[k..k + 4].try_into().unwrap()),
            F64x4(geom.ny[k..k + 4].try_into().unwrap()),
            F64x4(geom.nz[k..k + 4].try_into().unwrap()),
        ];
        let r = [
            F64x4(geom.rx[k..k + 4].try_into().unwrap()),
            F64x4(geom.ry[k..k + 4].try_into().unwrap()),
            F64x4(geom.rz[k..k + 4].try_into().unwrap()),
        ];
        let f = edge_flux_simd(&qa, &qb, &ga, &gb, &n, &r, beta);
        for lane in 0..4 {
            for c in 0..4 {
                fout[lane][c] = f[c][lane];
            }
        }
        for lane in 0..4 {
            // Exclusive res access for this tile's vertices per the
            // caller's coloring contract.
            let e = geom.edges[k + lane];
            let (a, b) = (e[0] as usize, e[1] as usize);
            for c in 0..4 {
                *res.add(a * 4 + c) += fout[lane][c];
                *res.add(b * 4 + c) -= fout[lane][c];
            }
        }
        i += 4;
    }
    // scalar tail on the scratch pad
    for idx in nbatch..ne {
        let k = start + idx;
        let (la, lb) = (tile.local[idx][0] as usize, tile.local[idx][1] as usize);
        let qa: [f64; 4] = scratch.q[la * 4..la * 4 + 4].try_into().unwrap();
        let qb: [f64; 4] = scratch.q[lb * 4..lb * 4 + 4].try_into().unwrap();
        let n = [geom.nx[k], geom.ny[k], geom.nz[k]];
        let r = [geom.rx[k], geom.ry[k], geom.rz[k]];
        let f = edge_flux(
            &qa,
            &qb,
            &scratch.grad[la * 12..la * 12 + 12],
            &scratch.grad[lb * 12..lb * 12 + 12],
            &n,
            &r,
            beta,
        );
        let e = geom.edges[k];
        let (a, b) = (e[0] as usize, e[1] as usize);
        for c in 0..4 {
            *res.add(a * 4 + c) += f[c];
            *res.add(b * 4 + c) -= f[c];
        }
    }
}

/// One tile of the flux kernel, [`TileExec::Direct`] mode: the same
/// 4-edge SIMD batches over the same tile-ordered edge range, but the
/// vertex gathers go straight to the global arrays — the tile's
/// L2-sized working set is staged by the hardware on first touch. Node
/// data [`PREFETCH_DIST`] ahead is prefetched to L1 (the streaming
/// kernels' idiom) to cover the first-touch latency.
///
/// Bitwise identical to [`tile_flux`]: identical arithmetic, identical
/// edge order — staging copies values exactly.
///
/// # Safety
/// Same exclusivity contract on `res` as [`tile_flux`].
unsafe fn tile_flux_direct(
    ntile_edges: usize,
    start: usize,
    geom: &EdgeGeom,
    node: &NodeAos,
    beta: f64,
    res: *mut f64,
) {
    let ne = ntile_edges;
    let nbatch = ne / 4 * 4;
    let mut fout = [[0.0f64; 4]; 4];
    let mut i = 0;
    while i < nbatch {
        let k = start + i;
        let pi = k + PREFETCH_DIST;
        if pi + 4 <= start + ne {
            for lane in 0..4 {
                let e = geom.edges[pi + lane];
                prefetch_l1(&node.q, e[0] as usize * 4);
                prefetch_l1(&node.q, e[1] as usize * 4);
                prefetch_l1(&node.grad, e[0] as usize * 12);
                prefetch_l1(&node.grad, e[1] as usize * 12);
            }
        }
        let ia = [
            geom.edges[k][0] as usize,
            geom.edges[k + 1][0] as usize,
            geom.edges[k + 2][0] as usize,
            geom.edges[k + 3][0] as usize,
        ];
        let ib = [
            geom.edges[k][1] as usize,
            geom.edges[k + 1][1] as usize,
            geom.edges[k + 2][1] as usize,
            geom.edges[k + 3][1] as usize,
        ];
        let qa: [F64x4; 4] = aos_load_transpose::<4>(&node.q, 4, ia);
        let ga: [F64x4; 12] = aos_load_transpose::<12>(&node.grad, 12, ia);
        let qb: [F64x4; 4] = aos_load_transpose::<4>(&node.q, 4, ib);
        let gb: [F64x4; 12] = aos_load_transpose::<12>(&node.grad, 12, ib);
        let n = [
            F64x4(geom.nx[k..k + 4].try_into().unwrap()),
            F64x4(geom.ny[k..k + 4].try_into().unwrap()),
            F64x4(geom.nz[k..k + 4].try_into().unwrap()),
        ];
        let r = [
            F64x4(geom.rx[k..k + 4].try_into().unwrap()),
            F64x4(geom.ry[k..k + 4].try_into().unwrap()),
            F64x4(geom.rz[k..k + 4].try_into().unwrap()),
        ];
        let f = edge_flux_simd(&qa, &qb, &ga, &gb, &n, &r, beta);
        for lane in 0..4 {
            for c in 0..4 {
                fout[lane][c] = f[c][lane];
            }
        }
        for lane in 0..4 {
            // Exclusive res access per the caller's coloring contract.
            let (a, b) = (ia[lane], ib[lane]);
            for c in 0..4 {
                *res.add(a * 4 + c) += fout[lane][c];
                *res.add(b * 4 + c) -= fout[lane][c];
            }
        }
        i += 4;
    }
    // scalar tail
    for idx in nbatch..ne {
        let k = start + idx;
        let e = geom.edges[k];
        let (a, b) = (e[0] as usize, e[1] as usize);
        let qa: [f64; 4] = node.q[a * 4..a * 4 + 4].try_into().unwrap();
        let qb: [f64; 4] = node.q[b * 4..b * 4 + 4].try_into().unwrap();
        let n = [geom.nx[k], geom.ny[k], geom.nz[k]];
        let r = [geom.rx[k], geom.ry[k], geom.rz[k]];
        let f = edge_flux(
            &qa,
            &qb,
            &node.grad[a * 12..a * 12 + 12],
            &node.grad[b * 12..b * 12 + 12],
            &n,
            &r,
            beta,
        );
        for c in 0..4 {
            *res.add(a * 4 + c) += f[c];
            *res.add(b * 4 + c) -= f[c];
        }
    }
}

/// Tiled flux, serial driver: tiles in color-major order (colors outer,
/// a color's tiles in order). Within one color every vertex is touched
/// by at most one tile, so the per-vertex accumulation order is the
/// color order — exactly the order [`tiled_pooled`] produces at any
/// thread count, making serial and pooled tiled bitwise identical.
pub fn tiled(
    tiling: &EdgeTiling,
    geom: &TiledGeom,
    node: &NodeAos,
    beta: f64,
    exec: TileExec,
    res: &mut [f64],
) {
    assert_eq!(res.len(), node.n * 4);
    let geom = geom.geom();
    assert_eq!(tiling.nedges, geom.nedges());
    let mut scratch =
        (exec == TileExec::Staged).then(|| TileScratch::new(tiling.max_tile_verts()));
    let rp = res.as_mut_ptr();
    for class in &tiling.color_tiles {
        for &t in class {
            let t = t as usize;
            let start = tiling.tile_start[t] as usize;
            // SAFETY: single-threaded — trivially exclusive.
            unsafe {
                match &mut scratch {
                    Some(s) => tile_flux(&tiling.tiles[t], start, geom, node, beta, s, rp),
                    None => tile_flux_direct(
                        tiling.tiles[t].edges.len(),
                        start,
                        geom,
                        node,
                        beta,
                        rp,
                    ),
                }
            };
        }
    }
}

/// Tiled flux on the persistent pool: one region for the whole kernel;
/// each color's tiles are chunked over the workers (vertex-disjoint, so
/// no masks, no atomics, no replicated edges), with a spin barrier
/// between colors. Bitwise identical to [`tiled`] at every thread count.
pub fn tiled_pooled(
    pool: &ThreadPool,
    tiling: &EdgeTiling,
    geom: &TiledGeom,
    node: &NodeAos,
    beta: f64,
    exec: TileExec,
    res: &mut [f64],
) {
    assert_eq!(res.len(), node.n * 4);
    assert_eq!(tiling.nedges, geom.geom().nedges());
    let nt = pool.size();
    // Oversubscribed pool (more workers than schedulable cores): the
    // per-color barriers would each cost scheduler round-trips instead
    // of spins, dwarfing the kernel. The serial driver produces the
    // bitwise-identical result (same color-major order), so use it.
    if nt > available_cores() {
        return tiled(tiling, geom, node, beta, exec, res);
    }
    let barrier = SpinBarrier::new(nt);
    let max_verts = tiling.max_tile_verts();
    let rp = SendPtr(res.as_mut_ptr());
    let pg = geom.geom();
    pool.run(|tid| {
        let rp = &rp;
        let mut scratch =
            (exec == TileExec::Staged).then(|| TileScratch::new(max_verts));
        for class in &tiling.color_tiles {
            for &t in &class[chunk_range(class.len(), nt, tid)] {
                let t = t as usize;
                let start = tiling.tile_start[t] as usize;
                // SAFETY: same-color tiles are vertex-disjoint and the
                // barrier below orders colors, so each res slot has one
                // writer at a time.
                unsafe {
                    match &mut scratch {
                        Some(s) => {
                            tile_flux(&tiling.tiles[t], start, pg, node, beta, s, rp.0)
                        }
                        None => tile_flux_direct(
                            tiling.tiles[t].edges.len(),
                            start,
                            pg,
                            node,
                            beta,
                            rp.0,
                        ),
                    }
                };
            }
            barrier.wait();
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use fun3d_mesh::generator::MeshPreset;
    use fun3d_mesh::DualMesh;
    use fun3d_partition::{natural_partition, partition_graph, MultilevelConfig};
    use fun3d_util::Rng64;

    fn setup() -> (EdgeGeom, NodeAos, NodeSoa) {
        let mesh = MeshPreset::Tiny.build();
        let dual = DualMesh::build(&mesh);
        let geom = EdgeGeom::build(&mesh, &dual);
        let mut aos = NodeAos::zeros(mesh.nvertices());
        let mut rng = Rng64::new(99);
        for x in aos.q.iter_mut() {
            *x = rng.range_f64(-0.5, 1.5);
        }
        for x in aos.grad.iter_mut() {
            *x = rng.range_f64(-0.2, 0.2);
        }
        let soa = NodeSoa::from_aos(&aos);
        (geom, aos, soa)
    }

    fn run_serial(geom: &EdgeGeom, aos: &NodeAos) -> Vec<f64> {
        let mut res = vec![0.0; aos.n * 4];
        serial_aos(geom, aos, 1.0, &mut res);
        res
    }

    fn assert_close(a: &[f64], b: &[f64], tol: f64, what: &str) {
        assert_eq!(a.len(), b.len());
        for i in 0..a.len() {
            assert!(
                (a[i] - b[i]).abs() <= tol * (1.0 + a[i].abs()),
                "{what}: entry {i}: {} vs {}",
                a[i],
                b[i]
            );
        }
    }

    #[test]
    fn soa_matches_aos_exactly() {
        let (geom, aos, soa) = setup();
        let r1 = run_serial(&geom, &aos);
        let mut r2 = vec![0.0; aos.n * 4];
        serial_soa(&geom, &soa, 1.0, &mut r2);
        assert_eq!(r1, r2, "layouts must not change results");
    }

    #[test]
    fn simd_matches_scalar() {
        let (geom, aos, _) = setup();
        let r1 = run_serial(&geom, &aos);
        let mut r2 = vec![0.0; aos.n * 4];
        serial_aos_simd(&geom, &aos, 1.0, &mut r2);
        assert_close(&r1, &r2, 1e-12, "simd");
    }

    #[test]
    fn prefetch_matches_scalar() {
        let (geom, aos, _) = setup();
        let r1 = run_serial(&geom, &aos);
        let mut r2 = vec![0.0; aos.n * 4];
        serial_aos_simd_prefetch(&geom, &aos, 1.0, &mut r2);
        assert_close(&r1, &r2, 1e-12, "prefetch");
    }

    #[test]
    fn atomics_matches_scalar() {
        let (geom, aos, _) = setup();
        let r1 = run_serial(&geom, &aos);
        let pool = ThreadPool::new(4);
        let mut r2 = vec![0.0; aos.n * 4];
        atomics(&pool, &geom, &aos, 1.0, &mut r2);
        // atomic accumulation order is nondeterministic: tolerance only
        assert_close(&r1, &r2, 1e-11, "atomics");
    }

    #[test]
    fn owner_writes_natural_matches_serial_bitwise() {
        let (geom, aos, _) = setup();
        let r1 = run_serial(&geom, &aos);
        for nt in [1usize, 2, 5] {
            let pool = ThreadPool::new(nt);
            let part = natural_partition(aos.n, nt);
            let plan = OwnerWritesPlan::build(&geom.edges, &part, nt);
            let mut r2 = vec![0.0; aos.n * 4];
            owner_writes(&pool, &plan, &geom, &aos, 1.0, &mut r2);
            assert_eq!(r1, r2, "owner-writes nt={nt} must be bitwise equal");
        }
    }

    #[test]
    fn owner_writes_metis_matches_serial_bitwise() {
        let (geom, aos, _) = setup();
        let r1 = run_serial(&geom, &aos);
        let graph = fun3d_mesh::Graph::from_edges(aos.n, &geom.edges);
        let nt = 4;
        let part = partition_graph(&graph, nt, &MultilevelConfig::default());
        let plan = OwnerWritesPlan::build(&geom.edges, &part, nt);
        let pool = ThreadPool::new(nt);
        let mut r2 = vec![0.0; aos.n * 4];
        owner_writes(&pool, &plan, &geom, &aos, 1.0, &mut r2);
        assert_eq!(r1, r2, "METIS owner-writes must be bitwise equal");
    }

    #[test]
    fn owner_writes_opt_matches_scalar() {
        let (geom, aos, _) = setup();
        let r1 = run_serial(&geom, &aos);
        let graph = fun3d_mesh::Graph::from_edges(aos.n, &geom.edges);
        let nt = 3;
        let part = partition_graph(&graph, nt, &MultilevelConfig::default());
        let plan = OwnerWritesPlan::build(&geom.edges, &part, nt);
        let pool = ThreadPool::new(nt);
        let mut r2 = vec![0.0; aos.n * 4];
        owner_writes_opt(&pool, &plan, &geom, &aos, 1.0, &mut r2);
        assert_close(&r1, &r2, 1e-12, "owner-writes-opt");
    }

    #[test]
    fn tiled_matches_scalar() {
        let (geom, aos, _) = setup();
        let r1 = run_serial(&geom, &aos);
        for budget in [1usize, 2048, 65536, usize::MAX] {
            let tiling = EdgeTiling::build(
                aos.n,
                &geom.edges,
                &fun3d_partition::TilingConfig::with_target_bytes(budget),
            );
            let tg = TiledGeom::new(&tiling, &geom);
            let mut r2 = vec![0.0; aos.n * 4];
            tiled(&tiling, &tg, &aos, 1.0, TileExec::Staged, &mut r2);
            // Tiling reorders the edge accumulation: tolerance compare.
            assert_close(&r1, &r2, 1e-11, "tiled");
            // Direct execution runs the same arithmetic in the same
            // order without the scratch pad: bitwise equal to staged.
            let mut r3 = vec![0.0; aos.n * 4];
            tiled(&tiling, &tg, &aos, 1.0, TileExec::Direct, &mut r3);
            assert_eq!(r2, r3, "budget {budget}: direct must match staged bitwise");
        }
    }

    #[test]
    fn tiled_pooled_matches_tiled_bitwise() {
        let (geom, aos, _) = setup();
        let tiling = EdgeTiling::build(
            aos.n,
            &geom.edges,
            &fun3d_partition::TilingConfig::with_target_bytes(4096),
        );
        let tg = TiledGeom::new(&tiling, &geom);
        let mut r1 = vec![0.0; aos.n * 4];
        tiled(&tiling, &tg, &aos, 1.0, TileExec::Staged, &mut r1);
        for exec in [TileExec::Staged, TileExec::Direct] {
            for nt in [1usize, 2, 3, 5] {
                let pool = ThreadPool::new(nt);
                let mut r2 = vec![0.0; aos.n * 4];
                tiled_pooled(&pool, &tiling, &tg, &aos, 1.0, exec, &mut r2);
                // Color-major order makes the per-vertex accumulation
                // order thread-count independent, and staged vs direct
                // is a pure traffic trade: bitwise, not just close.
                assert_eq!(r1, r2, "tiled_pooled {exec:?} nt={nt} must be bitwise equal");
            }
        }
    }

    #[test]
    fn freestream_residual_is_zero_on_interior() {
        // With a uniform state and zero gradients, interior flux
        // contributions telescope: Σ_edges s_e · F(q∞) per vertex equals
        // F(q∞) applied to the dual-face closure, which is minus the
        // boundary normal. So interior vertices (no boundary faces) get
        // exactly zero residual.
        let mesh = MeshPreset::Tiny.build();
        let dual = DualMesh::build(&mesh);
        let geom = EdgeGeom::build(&mesh, &dual);
        let mut aos = NodeAos::zeros(mesh.nvertices());
        aos.set_freestream(&[0.3, 1.0, 0.1, -0.2]);
        let mut res = vec![0.0; aos.n * 4];
        serial_aos(&geom, &aos, 1.0, &mut res);
        let on_boundary: std::collections::HashSet<u32> = mesh
            .boundary
            .iter()
            .flat_map(|t| t.verts)
            .collect();
        let scale: f64 = res.iter().map(|x| x.abs()).fold(0.0, f64::max);
        for v in 0..aos.n {
            if !on_boundary.contains(&(v as u32)) {
                for c in 0..4 {
                    assert!(
                        res[v * 4 + c].abs() < 1e-12 * scale.max(1.0),
                        "interior vertex {v} comp {c}: {}",
                        res[v * 4 + c]
                    );
                }
            }
        }
    }

    #[test]
    fn replication_overhead_shows_in_plan_not_result() {
        // Natural partitioning has high replication but identical output.
        let (geom, aos, _) = setup();
        let nt = 6;
        let nat = OwnerWritesPlan::build(&geom.edges, &natural_partition(aos.n, nt), nt);
        assert!(nat.replication_overhead() > 0.0);
        let r1 = run_serial(&geom, &aos);
        let pool = ThreadPool::new(nt);
        let mut r2 = vec![0.0; aos.n * 4];
        owner_writes(&pool, &nat, &geom, &aos, 1.0, &mut r2);
        assert_eq!(r1, r2);
    }
}
