//! Barth–Jespersen slope limiting.
//!
//! FUN3D's discretization is a *variable-order* flux-difference scheme:
//! second-order reconstruction with the gradients limited so that no
//! reconstructed face value exceeds the range of the neighboring cell
//! averages (Barth & Jespersen). We implement the limiter as a
//! gradient post-pass: the per-vertex, per-variable factor
//! `φ ∈ [0, 1]` is folded directly into the stored gradients, so every
//! flux-kernel variant (scalar, SIMD, threaded) picks it up without code
//! changes — and the kernel-equivalence tests keep holding.

use crate::geom::{EdgeGeom, NodeAos};

/// Computes Barth–Jespersen limiter factors and scales `node.grad` in
/// place. Returns the per-vertex-per-variable factors (for diagnostics
/// and tests). One edge sweep finds each vertex's admissible range; a
/// second sweep finds the worst reconstruction overshoot.
pub fn apply_barth_jespersen(geom: &EdgeGeom, node: &mut NodeAos) -> Vec<f64> {
    let n = node.n;
    // admissible range per vertex/variable from edge neighbors
    let mut qmin = node.q.clone();
    let mut qmax = node.q.clone();
    for e in &geom.edges {
        let (a, b) = (e[0] as usize, e[1] as usize);
        for c in 0..4 {
            let qa = node.q[a * 4 + c];
            let qb = node.q[b * 4 + c];
            if qb < qmin[a * 4 + c] {
                qmin[a * 4 + c] = qb;
            }
            if qb > qmax[a * 4 + c] {
                qmax[a * 4 + c] = qb;
            }
            if qa < qmin[b * 4 + c] {
                qmin[b * 4 + c] = qa;
            }
            if qa > qmax[b * 4 + c] {
                qmax[b * 4 + c] = qa;
            }
        }
    }
    // worst-case overshoot of the midpoint reconstruction per vertex
    let mut phi = vec![1.0f64; n * 4];
    for (k, e) in geom.edges.iter().enumerate() {
        let (a, b) = (e[0] as usize, e[1] as usize);
        let r = [geom.rx[k], geom.ry[k], geom.rz[k]];
        for c in 0..4 {
            // vertex a reconstructs toward +r/2, vertex b toward -r/2
            for (v, sign) in [(a, 0.5), (b, -0.5)] {
                let g = &node.grad[v * 12 + c * 3..v * 12 + c * 3 + 3];
                let dq = sign * (g[0] * r[0] + g[1] * r[1] + g[2] * r[2]);
                let q0 = node.q[v * 4 + c];
                let limit = if dq > 0.0 {
                    let headroom = qmax[v * 4 + c] - q0;
                    if dq > headroom {
                        headroom / dq
                    } else {
                        1.0
                    }
                } else if dq < 0.0 {
                    let headroom = qmin[v * 4 + c] - q0; // ≤ 0
                    if dq < headroom {
                        headroom / dq
                    } else {
                        1.0
                    }
                } else {
                    1.0
                };
                if limit < phi[v * 4 + c] {
                    phi[v * 4 + c] = limit;
                }
            }
        }
    }
    // fold φ into the gradients
    for v in 0..n {
        for c in 0..4 {
            let f = phi[v * 4 + c];
            if f < 1.0 {
                for d in 0..3 {
                    node.grad[v * 12 + c * 3 + d] *= f;
                }
            }
        }
    }
    phi
}

/// Venkatakrishnan's smooth limiter: like Barth–Jespersen but with a
/// differentiable clip, which avoids the limit-cycle convergence stall
/// BJ exhibits in steady-state solvers. `k_eps` controls how much
/// overshoot is tolerated in smooth regions (larger = less limiting);
/// the classic value is O(0.1–5) scaled by the local solution range.
pub fn apply_venkatakrishnan(geom: &EdgeGeom, node: &mut NodeAos, k_eps: f64) -> Vec<f64> {
    let n = node.n;
    let mut qmin = node.q.clone();
    let mut qmax = node.q.clone();
    for e in &geom.edges {
        let (a, b) = (e[0] as usize, e[1] as usize);
        for c in 0..4 {
            let qa = node.q[a * 4 + c];
            let qb = node.q[b * 4 + c];
            qmin[a * 4 + c] = qmin[a * 4 + c].min(qb);
            qmax[a * 4 + c] = qmax[a * 4 + c].max(qb);
            qmin[b * 4 + c] = qmin[b * 4 + c].min(qa);
            qmax[b * 4 + c] = qmax[b * 4 + c].max(qa);
        }
    }
    // Venkat's smooth ramp for one face: Δ+ is the admissible headroom,
    // Δ− the attempted reconstruction delta (same sign).
    #[inline]
    fn venkat(dplus: f64, dminus: f64, eps2: f64) -> f64 {
        let num = (dplus * dplus + eps2) + 2.0 * dminus * dplus;
        let den = dplus * dplus + 2.0 * dminus * dminus + dminus * dplus + eps2;
        if den.abs() < 1e-300 {
            1.0
        } else {
            (num / den).clamp(0.0, 1.0)
        }
    }
    let mut phi = vec![1.0f64; n * 4];
    for (k, e) in geom.edges.iter().enumerate() {
        let (a, b) = (e[0] as usize, e[1] as usize);
        let r = [geom.rx[k], geom.ry[k], geom.rz[k]];
        for c in 0..4 {
            for (v, sign) in [(a, 0.5), (b, -0.5)] {
                let g = &node.grad[v * 12 + c * 3..v * 12 + c * 3 + 3];
                let dq = sign * (g[0] * r[0] + g[1] * r[1] + g[2] * r[2]);
                if dq == 0.0 {
                    continue;
                }
                let q0 = node.q[v * 4 + c];
                let range = qmax[v * 4 + c] - qmin[v * 4 + c];
                let eps2 = (k_eps * range) * (k_eps * range) + 1e-14;
                let dplus = if dq > 0.0 {
                    qmax[v * 4 + c] - q0
                } else {
                    qmin[v * 4 + c] - q0
                };
                let f = venkat(dplus.abs(), dq.abs(), eps2);
                if f < phi[v * 4 + c] {
                    phi[v * 4 + c] = f;
                }
            }
        }
    }
    for v in 0..n {
        for c in 0..4 {
            let f = phi[v * 4 + c];
            if f < 1.0 {
                for d in 0..3 {
                    node.grad[v * 12 + c * 3 + d] *= f;
                }
            }
        }
    }
    phi
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bc::BcData;
    use crate::gradient;
    use fun3d_mesh::generator::MeshPreset;
    use fun3d_mesh::DualMesh;

    fn setup() -> (EdgeGeom, BcData, Vec<f64>, NodeAos) {
        let mesh = MeshPreset::Tiny.build();
        let dual = DualMesh::build(&mesh);
        let geom = EdgeGeom::build(&mesh, &dual);
        let bc = BcData::build(&dual);
        let vol = dual.vol.clone();
        let node = NodeAos::zeros(mesh.nvertices());
        (geom, bc, vol, node)
    }

    #[test]
    fn smooth_field_untouched() {
        // A gently varying field should not trigger the limiter much:
        // all φ close to 1 away from extrema, gradients mostly intact.
        let (geom, bc, vol, mut node) = setup();
        for v in 0..node.n {
            node.q[v * 4] = 0.001 * v as f64;
            node.q[v * 4 + 1] = 1.0;
        }
        gradient::green_gauss(&geom, &bc, &vol, &mut node);
        let before = node.grad.clone();
        let phi = apply_barth_jespersen(&geom, &mut node);
        let untouched = phi.iter().filter(|&&p| p >= 1.0 - 1e-12).count();
        assert!(
            untouched * 2 > phi.len(),
            "limiter fired on most of a smooth field: {untouched}/{}",
            phi.len()
        );
        // where φ = 1, gradients are bitwise intact
        for v in 0..node.n {
            for c in 0..4 {
                if phi[v * 4 + c] >= 1.0 {
                    for d in 0..3 {
                        assert_eq!(node.grad[v * 12 + c * 3 + d], before[v * 12 + c * 3 + d]);
                    }
                }
            }
        }
    }

    #[test]
    fn phi_in_unit_interval() {
        let (geom, bc, vol, mut node) = setup();
        let mut rng = fun3d_util::Rng64::new(17);
        for x in node.q.iter_mut() {
            *x = rng.range_f64(-1.0, 1.0);
        }
        gradient::green_gauss(&geom, &bc, &vol, &mut node);
        let phi = apply_barth_jespersen(&geom, &mut node);
        assert!(phi.iter().all(|&p| (0.0..=1.0).contains(&p)));
        // a rough random field must trigger limiting somewhere
        assert!(phi.iter().any(|&p| p < 1.0));
    }

    #[test]
    fn limited_reconstruction_stays_in_range() {
        // The defining property: after limiting, midpoint reconstructions
        // never exceed the neighbor range.
        let (geom, bc, vol, mut node) = setup();
        let mut rng = fun3d_util::Rng64::new(23);
        for x in node.q.iter_mut() {
            *x = rng.range_f64(-2.0, 2.0);
        }
        gradient::green_gauss(&geom, &bc, &vol, &mut node);
        apply_barth_jespersen(&geom, &mut node);

        // recompute ranges
        let n = node.n;
        let mut qmin = node.q.clone();
        let mut qmax = node.q.clone();
        for e in &geom.edges {
            let (a, b) = (e[0] as usize, e[1] as usize);
            for c in 0..4 {
                qmin[a * 4 + c] = qmin[a * 4 + c].min(node.q[b * 4 + c]);
                qmax[a * 4 + c] = qmax[a * 4 + c].max(node.q[b * 4 + c]);
                qmin[b * 4 + c] = qmin[b * 4 + c].min(node.q[a * 4 + c]);
                qmax[b * 4 + c] = qmax[b * 4 + c].max(node.q[a * 4 + c]);
            }
        }
        let _ = n;
        for (k, e) in geom.edges.iter().enumerate() {
            let (a, b) = (e[0] as usize, e[1] as usize);
            let r = [geom.rx[k], geom.ry[k], geom.rz[k]];
            for c in 0..4 {
                for (v, sign) in [(a, 0.5), (b, -0.5)] {
                    let g = &node.grad[v * 12 + c * 3..v * 12 + c * 3 + 3];
                    let q = node.q[v * 4 + c] + sign * (g[0] * r[0] + g[1] * r[1] + g[2] * r[2]);
                    assert!(
                        q >= qmin[v * 4 + c] - 1e-10 && q <= qmax[v * 4 + c] + 1e-10,
                        "edge {k} vertex {v} comp {c}: {q} outside [{}, {}]",
                        qmin[v * 4 + c],
                        qmax[v * 4 + c]
                    );
                }
            }
        }
    }

    #[test]
    fn venkat_phi_in_unit_interval_and_smoother_than_bj() {
        let (geom, bc, vol, mut node) = setup();
        let mut rng = fun3d_util::Rng64::new(31);
        for x in node.q.iter_mut() {
            *x = rng.range_f64(-1.0, 1.0);
        }
        gradient::green_gauss(&geom, &bc, &vol, &mut node);
        let mut node_bj = node.clone();
        let phi_v = apply_venkatakrishnan(&geom, &mut node, 0.3);
        let phi_b = apply_barth_jespersen(&geom, &mut node_bj);
        assert!(phi_v.iter().all(|&p| (0.0..=1.0).contains(&p)));
        // Venkat limits less aggressively on average (smooth ramp).
        let mean = |p: &[f64]| p.iter().sum::<f64>() / p.len() as f64;
        assert!(
            mean(&phi_v) >= mean(&phi_b) - 1e-12,
            "venkat {} vs bj {}",
            mean(&phi_v),
            mean(&phi_b)
        );
    }

    #[test]
    fn venkat_smooth_field_barely_limited() {
        let (geom, bc, vol, mut node) = setup();
        for v in 0..node.n {
            node.q[v * 4] = 1e-4 * v as f64;
            node.q[v * 4 + 1] = 1.0;
        }
        gradient::green_gauss(&geom, &bc, &vol, &mut node);
        let phi = apply_venkatakrishnan(&geom, &mut node, 0.3);
        let mean = phi.iter().sum::<f64>() / phi.len() as f64;
        assert!(mean > 0.6, "over-limiting a smooth field: mean φ = {mean}");
    }

    #[test]
    fn constant_field_is_fixed_point() {
        let (geom, bc, vol, mut node) = setup();
        node.set_freestream(&[0.3, 1.0, 0.0, 0.0]);
        gradient::green_gauss(&geom, &bc, &vol, &mut node);
        let phi = apply_barth_jespersen(&geom, &mut node);
        // constant field: zero gradients, zero reconstruction deltas —
        // the limiter must not produce NaNs or zero out anything.
        assert!(phi.iter().all(|p| p.is_finite()));
        assert!(node.grad.iter().all(|g| g.abs() < 1e-10));
    }
}
