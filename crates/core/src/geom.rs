//! Kernel-facing geometry and state layouts.
//!
//! * **Edge data** is streamed in edge order, so it is stored SoA (one
//!   array per field) as the paper prescribes;
//! * **Node data** is gathered irregularly; the paper's data-structure
//!   optimization stores it AoS — all 4 state variables of a vertex
//!   contiguous (`nVertices × 4`), the 12 gradient entries contiguous
//!   (`nVertices × 4 × 3`) — so one vector load per vertex replaces four
//!   gathers. Both layouts are provided; converting between them is
//!   allowed only outside timed regions.

use fun3d_mesh::{DualMesh, Mesh};
use fun3d_partition::EdgeTiling;

/// Streaming (SoA) edge geometry: dual-face normals and across-edge
/// coordinate deltas, plus the endpoint list.
#[derive(Clone, Debug)]
pub struct EdgeGeom {
    /// Edge endpoints `[a, b]` with `a < b`.
    pub edges: Vec<[u32; 2]>,
    /// Dual-face area-weighted normal, x component (oriented a→b).
    pub nx: Vec<f64>,
    /// Normal y component.
    pub ny: Vec<f64>,
    /// Normal z component.
    pub nz: Vec<f64>,
    /// Coordinate delta `x_b − x_a`, x component.
    pub rx: Vec<f64>,
    /// Delta y component.
    pub ry: Vec<f64>,
    /// Delta z component.
    pub rz: Vec<f64>,
}

impl EdgeGeom {
    /// Extracts edge geometry from a mesh and its dual metrics.
    pub fn build(mesh: &Mesh, dual: &DualMesh) -> EdgeGeom {
        let ne = dual.nedges();
        let mut g = EdgeGeom {
            edges: dual.edges.clone(),
            nx: Vec::with_capacity(ne),
            ny: Vec::with_capacity(ne),
            nz: Vec::with_capacity(ne),
            rx: Vec::with_capacity(ne),
            ry: Vec::with_capacity(ne),
            rz: Vec::with_capacity(ne),
        };
        for (e, n) in dual.edges.iter().zip(&dual.edge_normal) {
            g.nx.push(n.x);
            g.ny.push(n.y);
            g.nz.push(n.z);
            let d = mesh.coords[e[1] as usize] - mesh.coords[e[0] as usize];
            g.rx.push(d.x);
            g.ry.push(d.y);
            g.rz.push(d.z);
        }
        g
    }

    /// Number of edges.
    pub fn nedges(&self) -> usize {
        self.edges.len()
    }

    /// Flops per edge of the optimized Roe flux kernel (counted once,
    /// used by the machine model's roofline).
    pub const FLUX_FLOPS_PER_EDGE: f64 = 345.0;

    /// Bytes streamed/gathered per edge by the flux kernel: 6 edge
    /// doubles + 2 endpoints (u32) + two gathered nodes (4 state + 12
    /// gradient doubles each) + two residual read-modify-writes.
    pub const FLUX_BYTES_PER_EDGE: f64 = (6.0 * 8.0) + 8.0 + 2.0 * 16.0 * 8.0 + 2.0 * 2.0 * 32.0;
}

/// Edge geometry permuted into an [`EdgeTiling`]'s color-major tile
/// order: tile `t` owns the contiguous range `tiling.tile_start[t] ..
/// + tiles[t].edges.len()`, so the tiled kernels walk every geometry
/// array strictly sequentially — no per-edge id gather, and the
/// hardware prefetcher covers the whole stream. The endpoint pairs
/// travel with the permutation, so global scatter indices still come
/// straight out of `edges`. Built once per tiling, outside timed
/// regions; the newtype keeps an unpermuted geometry from reaching a
/// tiled kernel by accident.
#[derive(Clone, Debug)]
pub struct TiledGeom(EdgeGeom);

impl TiledGeom {
    /// Permutes `geom` into `tiling`'s color-major tile order.
    pub fn new(tiling: &EdgeTiling, geom: &EdgeGeom) -> TiledGeom {
        assert_eq!(tiling.nedges, geom.nedges());
        let pick = |src: &[f64]| tiling.perm.iter().map(|&e| src[e as usize]).collect();
        TiledGeom(EdgeGeom {
            edges: tiling.perm.iter().map(|&e| geom.edges[e as usize]).collect(),
            nx: pick(&geom.nx),
            ny: pick(&geom.ny),
            nz: pick(&geom.nz),
            rx: pick(&geom.rx),
            ry: pick(&geom.ry),
            rz: pick(&geom.rz),
        })
    }

    /// The permuted geometry (tile-range order).
    #[inline]
    pub fn geom(&self) -> &EdgeGeom {
        &self.0
    }
}

/// SoA node state: one array per variable (the baseline layout).
#[derive(Clone, Debug)]
pub struct NodeSoa {
    /// Pressure per vertex.
    pub p: Vec<f64>,
    /// x-velocity per vertex.
    pub u: Vec<f64>,
    /// y-velocity per vertex.
    pub v: Vec<f64>,
    /// z-velocity per vertex.
    pub w: Vec<f64>,
    /// Gradients: `grad[(comp*3 + dim)][vertex]`, 12 arrays flattened
    /// into one buffer field-major: `grad[f * n + v]`.
    pub grad: Vec<f64>,
    /// Vertex count.
    pub n: usize,
}

impl NodeSoa {
    /// Zero state for `n` vertices.
    pub fn zeros(n: usize) -> NodeSoa {
        NodeSoa {
            p: vec![0.0; n],
            u: vec![0.0; n],
            v: vec![0.0; n],
            w: vec![0.0; n],
            grad: vec![0.0; 12 * n],
            n,
        }
    }

    /// Builds from an AoS layout.
    pub fn from_aos(aos: &NodeAos) -> NodeSoa {
        let n = aos.n;
        let mut s = NodeSoa::zeros(n);
        for v in 0..n {
            s.p[v] = aos.q[v * 4];
            s.u[v] = aos.q[v * 4 + 1];
            s.v[v] = aos.q[v * 4 + 2];
            s.w[v] = aos.q[v * 4 + 3];
            for f in 0..12 {
                s.grad[f * n + v] = aos.grad[v * 12 + f];
            }
        }
        s
    }

    /// Gathers the 4 state variables of vertex `i`.
    #[inline]
    pub fn state(&self, i: usize) -> [f64; 4] {
        [self.p[i], self.u[i], self.v[i], self.w[i]]
    }

    /// Gathers the 12 gradient entries of vertex `i`.
    #[inline]
    pub fn gradient(&self, i: usize) -> [f64; 12] {
        let mut g = [0.0; 12];
        for f in 0..12 {
            g[f] = self.grad[f * self.n + i];
        }
        g
    }
}

/// AoS node state: `q[v*4..v*4+4]` and `grad[v*12..v*12+12]` (the paper's
/// optimized layout).
#[derive(Clone, Debug)]
pub struct NodeAos {
    /// Interleaved state `(p,u,v,w)` per vertex.
    pub q: Vec<f64>,
    /// Interleaved gradients, 12 per vertex (comp-major: `∂p/∂x, ∂p/∂y,
    /// ∂p/∂z, ∂u/∂x, …`).
    pub grad: Vec<f64>,
    /// Vertex count.
    pub n: usize,
}

impl NodeAos {
    /// Zero state for `n` vertices.
    pub fn zeros(n: usize) -> NodeAos {
        NodeAos {
            q: vec![0.0; 4 * n],
            grad: vec![0.0; 12 * n],
            n,
        }
    }

    /// Fills the state with the free-stream value.
    pub fn set_freestream(&mut self, qinf: &[f64; 4]) {
        for v in 0..self.n {
            self.q[v * 4..v * 4 + 4].copy_from_slice(qinf);
        }
    }

    /// State of vertex `i`.
    #[inline]
    pub fn state(&self, i: usize) -> [f64; 4] {
        self.q[i * 4..i * 4 + 4].try_into().unwrap()
    }

    /// Gradient block of vertex `i`.
    #[inline]
    pub fn gradient(&self, i: usize) -> &[f64] {
        &self.grad[i * 12..i * 12 + 12]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fun3d_mesh::generator::MeshPreset;
    use fun3d_mesh::DualMesh;

    #[test]
    fn edge_geom_matches_dual() {
        let m = MeshPreset::Tiny.build();
        let d = DualMesh::build(&m);
        let g = EdgeGeom::build(&m, &d);
        assert_eq!(g.nedges(), d.nedges());
        for (k, e) in g.edges.iter().enumerate() {
            assert_eq!(g.nx[k], d.edge_normal[k].x);
            let delta = m.coords[e[1] as usize] - m.coords[e[0] as usize];
            assert!((g.rx[k] - delta.x).abs() < 1e-15);
            assert!((g.ry[k] - delta.y).abs() < 1e-15);
            assert!((g.rz[k] - delta.z).abs() < 1e-15);
        }
    }

    #[test]
    fn layout_conversion_roundtrip() {
        let n = 13;
        let mut aos = NodeAos::zeros(n);
        for (i, x) in aos.q.iter_mut().enumerate() {
            *x = i as f64 * 0.5;
        }
        for (i, x) in aos.grad.iter_mut().enumerate() {
            *x = i as f64 * -0.25;
        }
        let soa = NodeSoa::from_aos(&aos);
        for v in 0..n {
            assert_eq!(soa.state(v), aos.state(v));
            let ga = aos.gradient(v);
            let gs = soa.gradient(v);
            for f in 0..12 {
                assert_eq!(gs[f], ga[f]);
            }
        }
    }

    #[test]
    fn freestream_fill() {
        let mut aos = NodeAos::zeros(5);
        aos.set_freestream(&[0.1, 1.0, 0.0, -0.5]);
        for v in 0..5 {
            assert_eq!(aos.state(v), [0.1, 1.0, 0.0, -0.5]);
        }
    }
}
