//! Analytic traffic/flop formulas for the application kernels.
//!
//! These are the Table 3-style performance-model numbers: for each kernel
//! the bytes it must move and the floating-point work it must do, derived
//! from mesh and factor sizes rather than measured with hardware
//! counters. Telemetry records one [`KernelCounts`] per kernel
//! invocation using these formulas; a report divides by the measured
//! wall time to get achieved GB/s (Fig. 6's comparison against STREAM)
//! and flop/byte arithmetic intensity.
//!
//! The byte counts model *compulsory* traffic (each operand counted
//! once, read-modify-writes counted as a read plus a write) — actual
//! DRAM traffic can be lower when gathers hit in cache, so an "achieved
//! GB/s" above STREAM indicates cache residency, not a broken model.

use crate::geom::EdgeGeom;
use fun3d_sparse::IluFactors;
use fun3d_util::telemetry::KernelCounts;

/// Bytes of a 4-component state block.
const STATE_BYTES: u64 = 4 * 8;
/// Bytes of a 12-entry gradient block.
const GRAD_BYTES: u64 = 12 * 8;
/// Bytes of one 4×4 Jacobian block.
const BLOCK_BYTES: u64 = 16 * 8;

/// Flux kernel model for one evaluation over `nedges` edges.
///
/// Per edge (see [`EdgeGeom::FLUX_BYTES_PER_EDGE`]): reads 6 geometry
/// doubles, one endpoint pair, two gathered nodes (state + gradient) and
/// the two residual blocks it updates; writes the two residual blocks.
/// Flops follow [`EdgeGeom::FLUX_FLOPS_PER_EDGE`].
pub fn flux(nedges: usize) -> KernelCounts {
    let ne = nedges as u64;
    let reads = ne * (6 * 8 + 8 + 2 * (STATE_BYTES + GRAD_BYTES) + 2 * STATE_BYTES);
    let writes = ne * 2 * STATE_BYTES;
    debug_assert_eq!(
        (reads + writes) as f64,
        EdgeGeom::FLUX_BYTES_PER_EDGE * nedges as f64
    );
    KernelCounts::once(
        ne,
        reads,
        writes,
        (EdgeGeom::FLUX_FLOPS_PER_EDGE * nedges as f64) as u64,
    )
}

/// Green-Gauss gradient model for one evaluation.
///
/// Per edge: read the 3 normal doubles, the endpoint pair and both
/// states, then read-modify-write both 12-entry gradient accumulators
/// (4 vars × 3 dims, one fused multiply-add per entry per endpoint);
/// per vertex: read the dual volume and scale the 12 entries in place.
pub fn gradient(nedges: usize, nvertices: usize) -> KernelCounts {
    let ne = nedges as u64;
    let nv = nvertices as u64;
    let reads = ne * (3 * 8 + 8 + 2 * STATE_BYTES + 2 * GRAD_BYTES) + nv * (8 + GRAD_BYTES);
    let writes = ne * 2 * GRAD_BYTES + nv * GRAD_BYTES;
    let flops = ne * (4 * 3 * 2 * 2) + nv * 12;
    KernelCounts::once(ne, reads, writes, flops)
}

/// Tiled flux model for one evaluation over `nedges` edges with a
/// tiling that stages `vertex_slots` scratch slots (the tiling's
/// measured Σ per-tile unique vertices — `vertex_slots = nedges /
/// reuse_factor`, so the measured reuse parameterizes the model).
///
/// The edge stream (geometry + endpoint pair) is unchanged, but the
/// per-edge vertex gathers and residual read-modify-writes of the
/// streaming model collapse to one stage (state + gradient read) and
/// one scatter (residual read-modify-write) per *slot*: intra-tile
/// reuse happens in the scratch pad, which the tiler sized to stay
/// cache-resident and which therefore never reaches DRAM. The flop
/// count gains the 4 scatter adds per slot.
pub fn flux_tiled(nedges: usize, vertex_slots: usize) -> KernelCounts {
    let ne = nedges as u64;
    let slots = vertex_slots as u64;
    let reads = ne * (6 * 8 + 8) + slots * (STATE_BYTES + GRAD_BYTES + STATE_BYTES);
    let writes = slots * STATE_BYTES;
    let flops = (EdgeGeom::FLUX_FLOPS_PER_EDGE * nedges as f64) as u64 + slots * 4;
    KernelCounts::once(ne, reads, writes, flops)
}

/// Tiled Green-Gauss model: edge normals stream once; state reads and
/// gradient read-modify-writes happen once per scratch slot instead of
/// twice per edge; the per-vertex epilogue (volume scale) is unchanged.
pub fn gradient_tiled(nedges: usize, nvertices: usize, vertex_slots: usize) -> KernelCounts {
    let ne = nedges as u64;
    let nv = nvertices as u64;
    let slots = vertex_slots as u64;
    let reads = ne * (3 * 8 + 8) + slots * (STATE_BYTES + GRAD_BYTES) + nv * (8 + GRAD_BYTES);
    let writes = slots * GRAD_BYTES + nv * GRAD_BYTES;
    let flops = ne * (4 * 3 * 2 * 2) + slots * 12 + nv * 12;
    KernelCounts::once(ne, reads, writes, flops)
}

/// First-order Jacobian assembly model for one rebuild.
///
/// Per edge: read geometry and both states, linearize the Roe flux
/// (~2× the flux flops once for each sign of the perturbation) and
/// read-modify-write four 4×4 blocks (aa, ab, ba, bb); per block row:
/// the time-diagonal update touches the diagonal block.
pub fn jacobian(nedges: usize, nrows: usize) -> KernelCounts {
    let ne = nedges as u64;
    let nr = nrows as u64;
    let reads = ne * (6 * 8 + 8 + 2 * STATE_BYTES + 4 * BLOCK_BYTES) + nr * (BLOCK_BYTES + 4 * 8);
    let writes = ne * 4 * BLOCK_BYTES + nr * BLOCK_BYTES;
    let flops = ne * (2 * EdgeGeom::FLUX_FLOPS_PER_EDGE as u64 + 4 * 16) + nr * 4;
    KernelCounts::once(ne, reads, writes, flops)
}

/// ILU(k) numeric factorization model for one rebuild over factors with
/// the given block populations.
///
/// Each L block triggers one 4×4 inverse-diagonal multiply (~128 flops)
/// plus a row-combine pass over the matching U row; modeled as touching
/// every stored block a small constant number of times.
pub fn ilu_factor(f: &IluFactors) -> KernelCounts {
    let nblocks = (f.l.nblocks() + f.u.nblocks()) as u64;
    let nrows = f.nrows() as u64;
    let reads = 2 * nblocks * BLOCK_BYTES + nrows * BLOCK_BYTES;
    let writes = nblocks * BLOCK_BYTES + nrows * BLOCK_BYTES;
    // block-block multiply-accumulate: 4×4×4 fused multiply-adds
    let flops = nblocks * 128 + nrows * 128;
    KernelCounts::once(nrows, reads, writes, flops)
}

/// Forward+backward triangular sweep model for one preconditioner
/// application: every stored factor byte is streamed once
/// ([`IluFactors::sweep_bytes`]) plus the right-hand side in and the
/// solution out; each off-diagonal block costs one 4×4 block-vector
/// multiply (32 flops), each row one inverse-diagonal multiply.
pub fn trsv(f: &IluFactors) -> KernelCounts {
    let nrows = f.nrows() as u64;
    let nblocks = (f.l.nblocks() + f.u.nblocks()) as u64;
    let reads = f.sweep_bytes() as u64 + nrows * STATE_BYTES;
    let writes = nrows * STATE_BYTES;
    let flops = nblocks * 32 + nrows * 32;
    KernelCounts::once(nrows, reads, writes, flops)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fun3d_sparse::{ilu, Bcsr4};

    #[test]
    fn flux_matches_published_per_edge_constants() {
        let c = flux(1000);
        assert_eq!(c.items, 1000);
        assert_eq!(
            c.bytes() as f64,
            EdgeGeom::FLUX_BYTES_PER_EDGE * 1000.0
        );
        assert_eq!(c.flops as f64, EdgeGeom::FLUX_FLOPS_PER_EDGE * 1000.0);
        // flux is memory-bound: intensity well under 1 flop/byte
        assert!(c.arithmetic_intensity() < 1.0);
    }

    #[test]
    fn tiled_models_shrink_with_reuse() {
        let ne = 1000;
        // A reuse factor of 4 edges/slot: 250 slots.
        let t = flux_tiled(ne, 250);
        let s = flux(ne);
        assert!(t.bytes() < s.bytes(), "tiling must cut modeled traffic");
        // Degenerate tiling (2 slots/edge — single-edge tiles) moves
        // *at most* the streaming traffic.
        let degen = flux_tiled(ne, 2 * ne);
        assert!(degen.bytes() <= s.bytes());
        // Same flux math plus the scatter adds.
        assert!(t.flops >= s.flops);
        let gt = gradient_tiled(ne, 400, 250);
        let gs = gradient(ne, 400);
        assert!(gt.bytes() < gs.bytes());
    }

    #[test]
    fn gradient_and_jacobian_scale_with_edges() {
        let g1 = gradient(100, 40);
        let g2 = gradient(200, 40);
        assert!(g2.bytes() > g1.bytes());
        let j = jacobian(100, 40);
        assert!(j.flops > flux(100).flops, "jacobian costs more than flux");
    }

    #[test]
    fn factor_models_track_stored_blocks() {
        let m = fun3d_mesh::generator::MeshPreset::Tiny.build();
        let mut a = Bcsr4::from_edges(m.nvertices(), &m.edges());
        a.fill_diag_dominant(7);
        let f = ilu::ilu0(&a);
        let fac = ilu_factor(&f);
        let sweep = trsv(&f);
        assert_eq!(fac.items, f.nrows() as u64);
        assert!(sweep.bytes() as usize > f.sweep_bytes());
        assert!(fac.bytes() > sweep.bytes(), "factorization moves more than a sweep");
    }
}
