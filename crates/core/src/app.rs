//! The full PETSc-FUN3D application: mesh + kernels + ΨNKS solver with
//! per-kernel profiling and selectable optimization level.

use crate::bc::{self, BcData};
use crate::euler::FlowConditions;
use crate::geom::{EdgeGeom, NodeAos, TiledGeom};
use crate::{flux, gradient, jacobian};
use fun3d_machine::MachineSpec;
use fun3d_mesh::{reorder, DualMesh, Mesh};
use fun3d_partition::{
    natural_partition, partition_graph, EdgeTiling, MultilevelConfig, OwnerWritesPlan,
    TilingConfig,
};
use fun3d_solver::precond::Preconditioner;
use fun3d_solver::ptc::{self, PtcConfig, PtcProblem, PtcStats};
use fun3d_solver::{ExecMode, FluxScheme};
use fun3d_sparse::{ilu, levels, p2p, trsv, Bcsr4, IluFactors, LevelSchedule, P2pProgress, P2pSchedule};
use fun3d_threads::{TeamMember, TeamSlice, ThreadPool};
use fun3d_util::telemetry;
use fun3d_util::PhaseTimers;
use std::cell::RefCell;
use std::rc::Rc;
use std::sync::Arc;

/// How the ILU triangular solves are parallelized.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IluParallel {
    /// Serial sweeps (the baseline).
    Serial,
    /// Level scheduling with barriers.
    Levels,
    /// Sparsified point-to-point synchronization.
    P2p,
}

/// The optimization configuration of a run — the knobs the paper's
/// "baseline" vs "optimized" comparison turns.
#[derive(Clone, Copy, Debug)]
pub struct OptConfig {
    /// Worker threads (1 = serial execution everywhere).
    pub nthreads: usize,
    /// Use the SIMD edge-batched flux kernel.
    pub use_simd: bool,
    /// Use software prefetching in the flux kernel.
    pub use_prefetch: bool,
    /// Partition vertices with the multilevel (METIS-like) partitioner
    /// instead of natural contiguous ranges.
    pub metis_partition: bool,
    /// ILU fill level (PETSc-FUN3D default is 1).
    pub ilu_fill: usize,
    /// Triangular-solve parallelization.
    pub ilu_parallel: IluParallel,
    /// Apply the Barth–Jespersen limiter to the reconstruction
    /// gradients (the "variable-order" part of the paper's Roe scheme).
    pub use_limiter: bool,
    /// Rebuild the ILU factors only every `n` pseudo-time steps
    /// (1 = every step, the paper's default; the paper notes factor
    /// reuse "is a problem-dependent optimization that is worth
    /// pursuing").
    pub ilu_lag: usize,
    /// Use weighted least-squares nodal gradients (FUN3D's production
    /// scheme; exact for linear fields at all vertices) instead of
    /// edge-midpoint Green-Gauss.
    pub use_lsq_gradients: bool,
    /// Linear-solve execution scheme: serial, region-per-op, persistent
    /// SPMD team regions, or `Auto` (pick per solve from the machine
    /// model + measured sync costs). All schemes are numerically
    /// identical at a fixed thread count; they differ only in how much
    /// fork-join and barrier synchronization they pay, which is what the
    /// paper's synchronization analysis targets.
    pub exec: ExecMode,
    /// Residual-path edge-kernel scheme: streaming (the paper's
    /// kernels), cache-blocked tiling with scratch-pad staging, or
    /// `Auto` (tile when the node working set overflows the private L2
    /// of the cores in use). `FUN3D_FLUX=stream|tiled|auto` overrides.
    pub flux: FluxScheme,
}

impl OptConfig {
    /// The out-of-the-box single-threaded configuration.
    pub fn baseline() -> OptConfig {
        OptConfig {
            nthreads: 1,
            use_simd: false,
            use_prefetch: false,
            metis_partition: false,
            ilu_fill: 1,
            ilu_parallel: IluParallel::Serial,
            use_limiter: false,
            ilu_lag: 1,
            use_lsq_gradients: false,
            exec: ExecMode::PerOp,
            flux: FluxScheme::Stream,
        }
    }

    /// The fully optimized configuration of Section VI.A.
    pub fn optimized(nthreads: usize) -> OptConfig {
        OptConfig {
            nthreads,
            use_simd: true,
            use_prefetch: true,
            metis_partition: true,
            ilu_fill: 1,
            ilu_parallel: if nthreads > 1 {
                IluParallel::P2p
            } else {
                IluParallel::Serial
            },
            use_limiter: false,
            ilu_lag: 1,
            use_lsq_gradients: false,
            // Let the policy model pick serial/per-op/team per solve:
            // hard-coding team mode here is exactly the thread-scaling
            // inversion on small meshes (sync cost > parallel payoff).
            exec: ExecMode::Auto,
            // Same reasoning for the edge kernels: tile only the meshes
            // whose node working set actually misses cache.
            flux: FluxScheme::Auto,
        }
    }
}

enum PrecondMode {
    Serial,
    Levels {
        pool: Arc<ThreadPool>,
        fwd: Arc<LevelSchedule>,
        bwd: Arc<LevelSchedule>,
    },
    P2p {
        pool: Arc<ThreadPool>,
        fwd: Arc<P2pSchedule>,
        bwd: Arc<P2pSchedule>,
        fwd_progress: P2pProgress,
        bwd_progress: P2pProgress,
    },
}

struct AppPrecond {
    factors: IluFactors,
    mode: PrecondMode,
    timers: Rc<RefCell<PhaseTimers>>,
    scratch: RefCell<Vec<f64>>,
}

impl Preconditioner for AppPrecond {
    fn apply(&self, r: &[f64], z: &mut [f64]) {
        let t = std::time::Instant::now();
        let _span = telemetry::span("trsv");
        telemetry::record_kernel("trsv", crate::counts::trsv(&self.factors));
        match &self.mode {
            PrecondMode::Serial => {
                let mut scratch = self.scratch.borrow_mut();
                trsv::solve_into(&self.factors, r, &mut scratch, z);
            }
            PrecondMode::Levels { pool, fwd, bwd } => {
                let x = levels::solve_levels(&self.factors, r, pool, fwd, bwd);
                z.copy_from_slice(&x);
            }
            PrecondMode::P2p { pool, fwd, bwd, .. } => {
                let x = p2p::solve_p2p(&self.factors, r, pool, fwd, bwd);
                z.copy_from_slice(&x);
            }
        }
        self.timers.borrow_mut().add("trsv", t.elapsed());
    }

    fn dim(&self) -> usize {
        self.factors.nrows() * 4
    }

    unsafe fn apply_team(&self, tm: &TeamMember, r: TeamSlice, z: TeamSlice) {
        let (tid, nt) = (tm.tid(), tm.nthreads());
        // Timers/telemetry are leader-only: the main thread is parked in
        // `pool.run` while the region executes, so the leader has
        // exclusive use of the (non-Sync) Rc/RefCell state.
        let t = (tid == 0).then(|| {
            telemetry::record_kernel("trsv", crate::counts::trsv(&self.factors));
            std::time::Instant::now()
        });
        match &self.mode {
            PrecondMode::Serial => {
                if tid == 0 {
                    let _span = telemetry::span("trsv");
                    let mut scratch = self.scratch.borrow_mut();
                    // SAFETY: leader-only access between barriers.
                    let rs = unsafe { r.slice(0..r.len()) };
                    let zs = unsafe { z.slice_mut(0..z.len()) };
                    trsv::solve_into(&self.factors, rs, &mut scratch, zs);
                }
                tm.barrier();
            }
            PrecondMode::Levels { fwd, bwd, .. } => {
                // Forward r -> z, then backward in place (each level ends
                // with a barrier, which also publishes the final z).
                levels::forward_levels_team(&self.factors, r, z, tid, nt, fwd, tm.team().barrier());
                levels::backward_levels_team(&self.factors, z, z, tid, nt, bwd, tm.team().barrier());
            }
            PrecondMode::P2p {
                fwd,
                bwd,
                fwd_progress,
                bwd_progress,
                ..
            } => {
                assert_eq!(nt, fwd_progress.nthreads());
                fwd_progress.reset_mine(tid);
                bwd_progress.reset_mine(tid);
                tm.barrier(); // publish resets (and r)
                p2p::forward_p2p_team(&self.factors, r, z, tid, fwd, fwd_progress);
                tm.barrier(); // fwd/bwd ownership partitions differ
                p2p::backward_p2p_team(&self.factors, z, z, tid, bwd, bwd_progress);
                tm.barrier(); // publish z
            }
        }
        if let Some(t) = t {
            self.timers.borrow_mut().add("trsv", t.elapsed());
        }
    }
}

/// The assembled FUN3D application.
pub struct Fun3dApp {
    /// The (reordered) mesh.
    pub mesh: Mesh,
    /// Median-dual metrics.
    pub dual: DualMesh,
    /// Streaming edge geometry.
    pub geom: EdgeGeom,
    /// Boundary table.
    pub bc: BcData,
    /// Flow conditions.
    pub cond: FlowConditions,
    /// Optimization configuration.
    pub cfg: OptConfig,
    /// Per-kernel timers (shared with the preconditioner wrapper).
    pub timers: Rc<RefCell<PhaseTimers>>,
    node: NodeAos,
    vol: Vec<f64>,
    jac: Bcsr4,
    ilu_pattern: Vec<Vec<u32>>,
    pool: Option<Arc<ThreadPool>>,
    plan: Option<OwnerWritesPlan>,
    tiling: Option<EdgeTiling>,
    /// Tile-ordered geometry for the tiled kernels (Some iff `tiling`).
    tiled_geom: Option<TiledGeom>,
    /// Staged vs direct tile execution, decided once per solve.
    tile_exec: flux::TileExec,
    lvl_fwd: Option<Arc<LevelSchedule>>,
    lvl_bwd: Option<Arc<LevelSchedule>>,
    p2p_fwd: Option<Arc<P2pSchedule>>,
    p2p_bwd: Option<Arc<P2pSchedule>>,
    precond: Option<AppPrecond>,
    lsq: Option<gradient::LsqGradient>,
    /// Residual evaluations performed (flux kernel invocations).
    pub residual_evals: usize,
    /// Pseudo-time steps since the factors were last rebuilt.
    precond_age: usize,
    /// Factors to seed the *first* preconditioner build of the next
    /// solve with, skipping its Jacobian assembly + factorization. Only
    /// bitwise-safe when the seed came from an identical problem: ΨTC's
    /// first build always happens at `dt = dt0` on the free-stream
    /// state, so the first factors are a pure function of (mesh, cfg,
    /// conditions, dt0) — the serve tier keys its factor cache on
    /// exactly that. The solve's operator is matrix-free (`FdJacobian`),
    /// so the skipped assembled matrix feeds nothing else.
    factor_seed: Option<Arc<IluFactors>>,
    /// First-build factors captured for the cross-request cache
    /// (`None` unless [`Fun3dApp::capture_first_factors`] is on).
    first_factors: Option<Arc<IluFactors>>,
    capture_first: bool,
}

impl Fun3dApp {
    /// Reorders a mesh the way the paper's optimized runs do: RCM vertex
    /// numbering plus sorted edges (the generator scrambles on purpose).
    pub fn rcm_reorder(mesh: &mut Mesh) {
        let graph = mesh.vertex_graph();
        let perm = reorder::rcm(&graph);
        mesh.renumber(&perm);
    }

    /// Builds the application over a mesh. The mesh should already be
    /// RCM-reordered for the optimized configurations.
    pub fn new(mesh: Mesh, cond: FlowConditions, cfg: OptConfig) -> Fun3dApp {
        let pool = (cfg.nthreads > 1).then(|| Arc::new(ThreadPool::new(cfg.nthreads)));
        Fun3dApp::with_pool(mesh, cond, cfg, pool)
    }

    /// [`Fun3dApp::new`] with the worker pool supplied by the caller —
    /// the serve tier hands one persistent per-team pool to every app it
    /// builds instead of churning a fresh pool per request. The pool
    /// size must match `cfg.nthreads`; `None` requires a serial config.
    pub fn with_pool(
        mesh: Mesh,
        cond: FlowConditions,
        cfg: OptConfig,
        pool: Option<Arc<ThreadPool>>,
    ) -> Fun3dApp {
        match &pool {
            Some(p) => assert_eq!(
                p.size(),
                cfg.nthreads,
                "supplied pool size must match cfg.nthreads"
            ),
            None => assert_eq!(cfg.nthreads, 1, "threaded config needs a pool"),
        }
        let dual = DualMesh::build(&mesh);
        let geom = EdgeGeom::build(&mesh, &dual);
        let bc = BcData::build(&dual);
        let nv = mesh.nvertices();
        let node = NodeAos::zeros(nv);
        let vol = dual.vol.clone();
        let jac = Bcsr4::from_edges(nv, &geom.edges);
        let ilu_pattern = ilu::symbolic_iluk(&jac, cfg.ilu_fill);

        // Residual-path scheme: env override > config; Auto weighs the
        // node working set against the private L2 of the cores in use.
        let machine = MachineSpec::host();
        let scheme = FluxScheme::from_env()
            .unwrap_or(cfg.flux)
            .resolve(&machine, nv, cfg.nthreads);
        let tiling = (scheme == FluxScheme::Tiled)
            .then(|| EdgeTiling::build(nv, &geom.edges, &TilingConfig::for_machine(&machine)));
        let tiled_geom = tiling.as_ref().map(|tl| TiledGeom::new(tl, &geom));
        let tile_exec = flux::TileExec::auto(&machine, nv);

        let plan = pool.as_ref().map(|_| {
            let part = if cfg.metis_partition {
                let graph = fun3d_mesh::Graph::from_edges(nv, &geom.edges);
                partition_graph(&graph, cfg.nthreads, &MultilevelConfig::default())
            } else {
                natural_partition(nv, cfg.nthreads)
            };
            OwnerWritesPlan::build(&geom.edges, &part, cfg.nthreads)
        });

        // Schedules depend only on the static factor patterns.
        let (lvl_fwd, lvl_bwd, p2p_fwd, p2p_bwd) = if pool.is_some() {
            let lcols: Vec<Vec<u32>> = ilu_pattern
                .iter()
                .enumerate()
                .map(|(i, row)| row.iter().copied().filter(|&c| (c as usize) < i).collect())
                .collect();
            let ucols: Vec<Vec<u32>> = ilu_pattern
                .iter()
                .enumerate()
                .map(|(i, row)| row.iter().copied().filter(|&c| (c as usize) > i).collect())
                .collect();
            let l = Bcsr4::from_pattern(&lcols);
            let u = Bcsr4::from_pattern(&ucols);
            match cfg.ilu_parallel {
                IluParallel::Serial => (None, None, None, None),
                IluParallel::Levels => (
                    Some(Arc::new(LevelSchedule::forward(&l))),
                    Some(Arc::new(LevelSchedule::backward(&u))),
                    None,
                    None,
                ),
                IluParallel::P2p => (
                    None,
                    None,
                    Some(Arc::new(P2pSchedule::forward(&l, cfg.nthreads))),
                    Some(Arc::new(P2pSchedule::backward(&u, cfg.nthreads))),
                ),
            }
        } else {
            (None, None, None, None)
        };

        let lsq = cfg
            .use_lsq_gradients
            .then(|| gradient::LsqGradient::build(&mesh.coords, &geom.edges));

        Fun3dApp {
            mesh,
            dual,
            geom,
            bc,
            cond,
            cfg,
            timers: Rc::new(RefCell::new(PhaseTimers::new())),
            node,
            vol,
            jac,
            ilu_pattern,
            pool,
            plan,
            tiling,
            tiled_geom,
            tile_exec,
            lvl_fwd,
            lvl_bwd,
            p2p_fwd,
            p2p_bwd,
            precond: None,
            lsq,
            residual_evals: 0,
            precond_age: 0,
            factor_seed: None,
            first_factors: None,
            capture_first: false,
        }
    }

    /// Clears per-solve state so the instance can serve another request
    /// with bitwise-identical results to a fresh build: drops the stale
    /// preconditioner (a lagged `ilu_lag > 1` config would otherwise
    /// reuse last request's factors), zeroes the counters, and resets
    /// the timers. The expensive immutable artifacts — reordered mesh,
    /// dual metrics, partitions, tilings, ILU pattern, schedules, pool —
    /// are exactly what stays.
    pub fn reset_for_reuse(&mut self) {
        self.precond = None;
        self.precond_age = 0;
        self.residual_evals = 0;
        self.factor_seed = None;
        self.first_factors = None;
        *self.timers.borrow_mut() = PhaseTimers::new();
    }

    /// Seeds the next solve's first preconditioner build (see the field
    /// doc for the identical-problem contract).
    pub fn set_factor_seed(&mut self, seed: Option<Arc<IluFactors>>) {
        self.factor_seed = seed;
    }

    /// Captures the first build's factors for [`Fun3dApp::first_factors`]
    /// (off by default — it keeps an extra copy of the factors alive).
    pub fn capture_first_factors(&mut self, on: bool) {
        self.capture_first = on;
    }

    /// The first preconditioner build of the current solve, if captured
    /// — what the serve tier inserts into its cross-request factor cache.
    pub fn first_factors(&self) -> Option<Arc<IluFactors>> {
        self.first_factors.clone()
    }

    /// Number of scalar unknowns.
    pub fn nunknowns(&self) -> usize {
        self.node.n * 4
    }

    /// Free-stream initial state vector.
    pub fn initial_state(&self) -> Vec<f64> {
        let mut u = vec![0.0; self.nunknowns()];
        for v in 0..self.node.n {
            u[v * 4..v * 4 + 4].copy_from_slice(&self.cond.qinf);
        }
        u
    }

    /// Runs the full pseudo-transient solve from free stream. Returns the
    /// converged state and statistics. Wall-clock is recorded in the
    /// `total` timer bucket; per-kernel buckets accumulate inside.
    pub fn run(&mut self, ptc_cfg: &PtcConfig) -> (Vec<f64>, PtcStats) {
        let mut u = self.initial_state();
        let t = std::time::Instant::now();
        let stats = ptc::solve(self, &mut u, ptc_cfg);
        self.timers.borrow_mut().add("total", t.elapsed());
        (u, stats)
    }

    /// A copy of the current profile.
    pub fn profile(&self) -> PhaseTimers {
        self.timers.borrow().clone()
    }

    /// The owner-writes plan (None when single-threaded).
    pub fn plan(&self) -> Option<&OwnerWritesPlan> {
        self.plan.as_ref()
    }

    /// The edge tiling the residual path resolved to (None when the
    /// scheme resolved to streaming).
    pub fn tiling(&self) -> Option<&EdgeTiling> {
        self.tiling.as_ref()
    }

    /// The assembled Jacobian (valid after a `build_preconditioner`).
    pub fn jacobian_matrix(&self) -> &Bcsr4 {
        &self.jac
    }

    /// The cached ILU fill pattern.
    pub fn ilu_pattern(&self) -> &[Vec<u32>] {
        &self.ilu_pattern
    }

    fn run_flux(&mut self, r: &mut [f64]) {
        let t = std::time::Instant::now();
        let _span = telemetry::span("flux");
        telemetry::record_kernel(
            "flux",
            match &self.tiling {
                Some(tl) => crate::counts::flux_tiled(self.geom.nedges(), tl.vertex_slots()),
                None => crate::counts::flux(self.geom.nedges()),
            },
        );
        r.iter_mut().for_each(|x| *x = 0.0);
        match (&self.tiling, &self.pool, &self.plan) {
            (Some(tiling), Some(pool), _) => {
                let tg = self.tiled_geom.as_ref().expect("tiled_geom built with tiling");
                flux::tiled_pooled(
                    pool,
                    tiling,
                    tg,
                    &self.node,
                    self.cond.beta,
                    self.tile_exec,
                    r,
                );
            }
            (Some(tiling), None, _) => {
                let tg = self.tiled_geom.as_ref().expect("tiled_geom built with tiling");
                flux::tiled(tiling, tg, &self.node, self.cond.beta, self.tile_exec, r);
            }
            (None, Some(pool), Some(plan)) => {
                if self.cfg.use_simd {
                    flux::owner_writes_opt(pool, plan, &self.geom, &self.node, self.cond.beta, r);
                } else {
                    flux::owner_writes(pool, plan, &self.geom, &self.node, self.cond.beta, r);
                }
            }
            _ => {
                if self.cfg.use_simd && self.cfg.use_prefetch {
                    flux::serial_aos_simd_prefetch(&self.geom, &self.node, self.cond.beta, r);
                } else if self.cfg.use_simd {
                    flux::serial_aos_simd(&self.geom, &self.node, self.cond.beta, r);
                } else {
                    flux::serial_aos(&self.geom, &self.node, self.cond.beta, r);
                }
            }
        }
        bc::residual(&self.bc, &self.node, &self.cond, r);
        self.timers.borrow_mut().add("flux", t.elapsed());
    }
}

impl PtcProblem for Fun3dApp {
    fn dim(&self) -> usize {
        self.nunknowns()
    }

    fn residual(&mut self, u: &[f64], r: &mut [f64]) {
        self.residual_evals += 1;
        self.node.q.copy_from_slice(u);
        {
            let t = std::time::Instant::now();
            let _span = telemetry::span("gradient");
            telemetry::record_kernel(
                "gradient",
                match &self.tiling {
                    Some(tl) if self.lsq.is_none() => crate::counts::gradient_tiled(
                        self.geom.nedges(),
                        self.node.n,
                        tl.vertex_slots(),
                    ),
                    _ => crate::counts::gradient(self.geom.nedges(), self.node.n),
                },
            );
            if let Some(lsq) = &self.lsq {
                lsq.evaluate(&mut self.node);
            } else {
                match (&self.tiling, &self.pool, &self.plan) {
                    (Some(tiling), Some(pool), _) => gradient::green_gauss_tiled_pooled(
                        pool,
                        tiling,
                        self.tiled_geom.as_ref().expect("tiled_geom built with tiling"),
                        &self.bc,
                        &self.vol,
                        self.tile_exec,
                        &mut self.node,
                    ),
                    (Some(tiling), None, _) => gradient::green_gauss_tiled(
                        tiling,
                        self.tiled_geom.as_ref().expect("tiled_geom built with tiling"),
                        &self.bc,
                        &self.vol,
                        self.tile_exec,
                        &mut self.node,
                    ),
                    (None, Some(pool), Some(plan)) => gradient::green_gauss_threaded(
                        pool,
                        plan,
                        &self.geom,
                        &self.bc,
                        &self.vol,
                        &mut self.node,
                    ),
                    _ => gradient::green_gauss(&self.geom, &self.bc, &self.vol, &mut self.node),
                }
            }
            if self.cfg.use_limiter {
                // Venkatakrishnan (smooth) rather than Barth–Jespersen:
                // BJ's hard clip produces limit cycles in steady solvers.
                crate::limiter::apply_venkatakrishnan(&self.geom, &mut self.node, 0.3);
            }
            self.timers.borrow_mut().add("gradient", t.elapsed());
        }
        self.run_flux(r);
    }

    fn time_diag(&self, dt: f64, out: &mut [f64]) {
        for v in 0..self.node.n {
            let vdt = self.vol[v] / dt;
            out[v * 4] = vdt / self.cond.beta;
            out[v * 4 + 1] = vdt;
            out[v * 4 + 2] = vdt;
            out[v * 4 + 3] = vdt;
        }
    }

    fn build_preconditioner(&mut self, u: &[f64], time_diag: &[f64]) {
        // Lagged preconditioner: reuse the existing factors for
        // `ilu_lag - 1` further steps (the Δt shift goes stale too, which
        // is the accepted trade of factor reuse).
        if self.precond.is_some() && self.cfg.ilu_lag > 1 {
            self.precond_age += 1;
            if self.precond_age < self.cfg.ilu_lag {
                return;
            }
        }
        self.precond_age = 0;
        let first_build = self.precond.is_none();
        let seed = if first_build { self.factor_seed.take() } else { None };
        let factors = if let Some(seed) = seed {
            // Seeded first build: the factors are a pure function of the
            // problem key at dt0 (see `factor_seed`), so adopt them and
            // skip both the Jacobian assembly and the factorization.
            // The solve's operator is matrix-free, so nothing else reads
            // the skipped assembled matrix before the next rebuild.
            if self.capture_first {
                self.first_factors = Some(Arc::clone(&seed));
            }
            (*seed).clone()
        } else {
            self.node.q.copy_from_slice(u);
            {
                let t = std::time::Instant::now();
                let _span = telemetry::span("jacobian");
                telemetry::record_kernel(
                    "jacobian",
                    crate::counts::jacobian(self.geom.nedges(), self.node.n),
                );
                jacobian::assemble(&self.geom, &self.bc, &self.node, &self.cond, &mut self.jac);
                jacobian::add_time_diagonal(&mut self.jac, time_diag);
                self.timers.borrow_mut().add("jacobian", t.elapsed());
            }
            let t = std::time::Instant::now();
            let _span = telemetry::span("ilu");
            let f = ilu::factor(&self.jac, &self.ilu_pattern, ilu::TempBuffer::Compressed);
            telemetry::record_kernel("ilu", crate::counts::ilu_factor(&f));
            self.timers.borrow_mut().add("ilu", t.elapsed());
            if first_build && self.capture_first {
                self.first_factors = Some(Arc::new(f.clone()));
            }
            f
        };
        let mode = match self.cfg.ilu_parallel {
            IluParallel::Serial => PrecondMode::Serial,
            IluParallel::Levels => PrecondMode::Levels {
                pool: self.pool.clone().expect("levels mode needs threads"),
                fwd: self.lvl_fwd.clone().unwrap(),
                bwd: self.lvl_bwd.clone().unwrap(),
            },
            IluParallel::P2p => PrecondMode::P2p {
                pool: self.pool.clone().expect("p2p mode needs threads"),
                fwd: self.p2p_fwd.clone().unwrap(),
                bwd: self.p2p_bwd.clone().unwrap(),
                fwd_progress: P2pProgress::new(self.cfg.nthreads),
                bwd_progress: P2pProgress::new(self.cfg.nthreads),
            },
        };
        self.precond = Some(AppPrecond {
            factors,
            mode,
            timers: Rc::clone(&self.timers),
            scratch: RefCell::new(vec![0.0; self.nunknowns()]),
        });
    }

    fn preconditioner(&self) -> &dyn Preconditioner {
        self.precond.as_ref().expect("preconditioner not built")
    }

    fn solver_pool(&self) -> Option<Arc<ThreadPool>> {
        self.pool.clone()
    }

    fn exec_mode(&self) -> ExecMode {
        if self.pool.is_some() {
            self.cfg.exec
        } else {
            ExecMode::Serial
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fun3d_mesh::generator::MeshPreset;

    fn solve_config() -> PtcConfig {
        PtcConfig {
            dt0: 2.0,
            rtol: 1e-6,
            max_steps: 60,
            ..Default::default()
        }
    }

    fn build(cfg: OptConfig) -> Fun3dApp {
        let mut mesh = MeshPreset::Tiny.build();
        Fun3dApp::rcm_reorder(&mut mesh);
        Fun3dApp::new(mesh, FlowConditions::default(), cfg)
    }

    #[test]
    fn baseline_converges() {
        let mut app = build(OptConfig::baseline());
        let (_, stats) = app.run(&solve_config());
        assert!(
            stats.converged,
            "residual history: {:?}",
            stats.res_history
        );
        assert!(stats.linear_iters > 0);
        let prof = app.profile();
        for phase in ["flux", "gradient", "jacobian", "ilu", "trsv", "total"] {
            assert!(prof.calls(phase) > 0, "missing phase {phase}");
        }
    }

    #[test]
    fn telemetry_counters_match_analytic_model() {
        telemetry::set_level(telemetry::Level::Counters);
        let mut app = build(OptConfig::baseline());
        // serial run: every kernel records on this thread, so the delta
        // of our own per-thread counters is deterministic even with other
        // tests running concurrently
        let before = telemetry::local_counters().get("flux").copied().unwrap_or_default();
        let (_, stats) = app.run(&solve_config());
        assert!(stats.converged);
        let after = telemetry::local_counters().get("flux").copied().unwrap_or_default();
        let evals = app.residual_evals as u64;
        let nedges = app.geom.nedges() as u64;
        assert_eq!(after.calls - before.calls, evals);
        assert_eq!(after.items - before.items, evals * nedges);
        assert_eq!(
            (after.bytes() - before.bytes()) as f64,
            EdgeGeom::FLUX_BYTES_PER_EDGE * (evals * nedges) as f64
        );
        assert_eq!(
            (after.flops - before.flops) as f64,
            EdgeGeom::FLUX_FLOPS_PER_EDGE * (evals * nedges) as f64
        );
    }

    #[test]
    fn optimized_matches_baseline_solution() {
        let mut base = build(OptConfig::baseline());
        let (ub, sb) = base.run(&solve_config());
        let mut opt = build(OptConfig::optimized(3));
        let (uo, so) = opt.run(&solve_config());
        assert!(sb.converged && so.converged);
        // Same discretization, same convergence test: states agree to
        // solver tolerance levels.
        let diff: f64 = ub
            .iter()
            .zip(&uo)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            .sqrt();
        let norm: f64 = ub.iter().map(|v| v * v).sum::<f64>().sqrt();
        assert!(diff < 1e-3 * norm, "solutions diverged: {diff} vs {norm}");
    }

    #[test]
    fn auto_flux_scheme_streams_on_tiny() {
        // The tiny fixture's node working set is cache-resident, so the
        // Auto scheme must keep the streaming kernels (and the solver
        // tests above keep their bitwise histories).
        let app = build(OptConfig::optimized(2));
        assert!(app.tiling().is_none(), "tiny mesh must resolve to streaming");
    }

    #[test]
    fn tiled_residual_path_converges_and_matches() {
        let mut base = build(OptConfig::baseline());
        let (ub, sb) = base.run(&solve_config());
        assert!(sb.converged);
        let norm: f64 = ub.iter().map(|v| v * v).sum::<f64>().sqrt();
        for nt in [1usize, 3] {
            let mut cfg = OptConfig::optimized(nt);
            cfg.flux = FluxScheme::Tiled;
            let mut app = build(cfg);
            assert!(app.tiling().is_some(), "explicit tiled must build a tiling");
            let (uo, so) = app.run(&solve_config());
            assert!(so.converged, "nt={nt} history: {:?}", so.res_history);
            let diff: f64 = ub
                .iter()
                .zip(&uo)
                .map(|(a, b)| (a - b) * (a - b))
                .sum::<f64>()
                .sqrt();
            assert!(diff < 1e-3 * norm, "nt={nt}: solutions diverged: {diff} vs {norm}");
        }
    }

    #[test]
    fn ilu0_needs_more_iterations_than_ilu1() {
        // Table II's convergence half: less fill => weaker preconditioner
        // => more linear iterations.
        let run_fill = |fill: usize| {
            let mut cfg = OptConfig::baseline();
            cfg.ilu_fill = fill;
            let mut app = build(cfg);
            let (_, stats) = app.run(&solve_config());
            assert!(stats.converged, "fill={fill}");
            stats.linear_iters
        };
        let it0 = run_fill(0);
        let it1 = run_fill(1);
        assert!(
            it0 >= it1,
            "ILU(0) {it0} iterations should be >= ILU(1) {it1}"
        );
    }

    #[test]
    fn residual_decreases_monotonically_enough() {
        let mut app = build(OptConfig::baseline());
        let (_, stats) = app.run(&solve_config());
        let h = &stats.res_history;
        assert!(h.last().unwrap() < &(h[0] * 1e-5));
    }

    #[test]
    fn solution_has_pressure_rise_at_bump() {
        // Physics smoke test: the converged flow must differ from free
        // stream (nonzero pressure field driven by the bump).
        let mut app = build(OptConfig::baseline());
        let (u, stats) = app.run(&solve_config());
        assert!(stats.converged);
        let p_max = (0..app.node.n)
            .map(|v| u[v * 4].abs())
            .fold(0.0, f64::max);
        assert!(p_max > 1e-3, "pressure field suspiciously flat: {p_max}");
    }

    #[test]
    fn limiter_config_converges() {
        let mut cfg = OptConfig::baseline();
        cfg.use_limiter = true;
        let mut app = build(cfg);
        let (u, stats) = app.run(&solve_config());
        assert!(stats.converged, "history: {:?}", stats.res_history);
        assert!(u.iter().all(|x| x.is_finite()));
    }

    #[test]
    fn lagged_ilu_converges_with_fewer_factorizations() {
        let mut cfg = OptConfig::baseline();
        cfg.ilu_lag = 3;
        let mut app = build(cfg);
        let (_, stats) = app.run(&solve_config());
        assert!(stats.converged);
        let factorizations = app.profile().calls("ilu");
        assert!(
            (factorizations as usize) < stats.time_steps,
            "lagging must skip factorizations: {factorizations} vs {} steps",
            stats.time_steps
        );
    }

    #[test]
    fn lsq_gradient_config_converges() {
        let mut cfg = OptConfig::baseline();
        cfg.use_lsq_gradients = true;
        let mut app = build(cfg);
        let (u, stats) = app.run(&solve_config());
        assert!(stats.converged, "history: {:?}", stats.res_history);
        assert!(u.iter().all(|x| x.is_finite()));
    }

    #[test]
    fn level_scheduled_config_converges() {
        let mut cfg = OptConfig::optimized(2);
        cfg.ilu_parallel = IluParallel::Levels;
        let mut app = build(cfg);
        let (_, stats) = app.run(&solve_config());
        assert!(stats.converged);
    }

    #[test]
    fn reuse_and_factor_seed_are_bitwise_identical() {
        // The serve tier's two reuse layers, pinned at the app level:
        // (1) a reset instance re-solves bitwise-identically to a fresh
        // build, (2) seeding the first preconditioner build from a
        // previous run's captured factors skips one assembly+factor
        // without changing a single bit of the solution or history.
        let mut fresh = build(OptConfig::baseline());
        let (u_ref, s_ref) = fresh.run(&solve_config());
        assert!(s_ref.converged);
        let fresh_factor_calls = fresh.profile().calls("ilu");

        let mut app = build(OptConfig::baseline());
        app.capture_first_factors(true);
        let (u1, s1) = app.run(&solve_config());
        assert_eq!(u1, u_ref);
        assert_eq!(s1.res_history, s_ref.res_history);
        let seed = app.first_factors().expect("first factors captured");

        app.reset_for_reuse();
        app.set_factor_seed(Some(seed));
        let (u2, s2) = app.run(&solve_config());
        assert_eq!(u2, u_ref, "seeded reuse must be bitwise identical");
        assert_eq!(s2.res_history, s_ref.res_history);
        assert_eq!(
            app.profile().calls("ilu") + 1,
            fresh_factor_calls,
            "the seeded first build must skip exactly one factorization"
        );
    }

    #[test]
    fn team_regions_match_per_op_bitwise() {
        // Persistent-region GMRES vs region-per-op GMRES at the same
        // thread count: identical chunking and thread-order reductions
        // make the whole nonlinear solve bitwise reproducible.
        for ilu_parallel in [IluParallel::Levels, IluParallel::P2p] {
            let run = |exec: ExecMode| {
                let mut cfg = OptConfig::optimized(2);
                cfg.ilu_parallel = ilu_parallel;
                cfg.exec = exec;
                let mut app = build(cfg);
                app.run(&solve_config())
            };
            let (u_per_op, s_per_op) = run(ExecMode::PerOp);
            let (u_team, s_team) = run(ExecMode::Team);
            assert!(s_per_op.converged && s_team.converged);
            assert_eq!(s_per_op.res_history, s_team.res_history, "{ilu_parallel:?}");
            assert_eq!(u_per_op, u_team, "{ilu_parallel:?}");
            assert_eq!(s_per_op.linear_iters, s_team.linear_iters);
        }
    }
}
