//! Boundary conditions: slip wall, symmetry, characteristic far field.
//!
//! For the inviscid equations a symmetry plane and a slip wall impose the
//! same condition (no flow through the face): the boundary flux reduces
//! to the pressure term `(0, nₓp, n_y p, n_z p)`. Far-field boundaries
//! use a one-sided Roe/Rusanov flux against the free-stream state, which
//! lets waves leave and enforces inflow data characteristically.

use crate::euler::{self, FlowConditions};
use crate::geom::NodeAos;
use fun3d_mesh::{BcTag, DualMesh};
use fun3d_sparse::Bcsr4;

/// SoA per-(vertex, tag) boundary data: the aggregated outward normals
/// from the dual metrics.
#[derive(Clone, Debug)]
pub struct BcData {
    /// Vertex of each entry.
    pub vertex: Vec<u32>,
    /// Outward area-weighted normal, x.
    pub nx: Vec<f64>,
    /// Normal y.
    pub ny: Vec<f64>,
    /// Normal z.
    pub nz: Vec<f64>,
    /// Boundary kind.
    pub tag: Vec<BcTag>,
}

impl BcData {
    /// Extracts the boundary table from dual metrics.
    pub fn build(dual: &DualMesh) -> BcData {
        let m = dual.boundary.len();
        let mut b = BcData {
            vertex: Vec::with_capacity(m),
            nx: Vec::with_capacity(m),
            ny: Vec::with_capacity(m),
            nz: Vec::with_capacity(m),
            tag: Vec::with_capacity(m),
        };
        for e in &dual.boundary {
            b.vertex.push(e.vertex);
            b.nx.push(e.normal.x);
            b.ny.push(e.normal.y);
            b.nz.push(e.normal.z);
            b.tag.push(e.tag);
        }
        b
    }

    /// Number of (vertex, tag) boundary entries.
    pub fn len(&self) -> usize {
        self.vertex.len()
    }

    /// True when there is no boundary.
    pub fn is_empty(&self) -> bool {
        self.vertex.is_empty()
    }
}

/// Adds boundary flux contributions to the residual.
pub fn residual(bc: &BcData, node: &NodeAos, cond: &FlowConditions, res: &mut [f64]) {
    for i in 0..bc.len() {
        let v = bc.vertex[i] as usize;
        let n = [bc.nx[i], bc.ny[i], bc.nz[i]];
        let q = node.state(v);
        let f = match bc.tag[i] {
            BcTag::SlipWall | BcTag::Symmetry => wall_flux(&q, &n),
            BcTag::FarField => farfield_flux(&q, &cond.qinf, &n, cond.beta),
        };
        for c in 0..4 {
            res[v * 4 + c] += f[c];
        }
    }
}

/// Slip-wall flux: no mass flux through the face, pressure only.
#[inline]
pub fn wall_flux(q: &[f64; 4], n: &[f64; 3]) -> [f64; 4] {
    [0.0, n[0] * q[0], n[1] * q[0], n[2] * q[0]]
}

/// Far-field flux: Rusanov between the interior state and free stream.
#[inline]
pub fn farfield_flux(q: &[f64; 4], qinf: &[f64; 4], n: &[f64; 3], beta: f64) -> [f64; 4] {
    let fi = euler::flux(q, n, beta);
    let finf = euler::flux(qinf, n, beta);
    let qm = [
        0.5 * (q[0] + qinf[0]),
        0.5 * (q[1] + qinf[1]),
        0.5 * (q[2] + qinf[2]),
        0.5 * (q[3] + qinf[3]),
    ];
    let lam = euler::spectral_radius(&qm, n, beta);
    let mut f = [0.0; 4];
    for c in 0..4 {
        f[c] = 0.5 * (fi[c] + finf[c]) - 0.5 * lam * (qinf[c] - q[c]);
    }
    f
}

/// Adds the boundary flux Jacobian `∂F_bnd/∂q_v` into the diagonal blocks
/// of the assembled (first-order) Jacobian.
pub fn jacobian(bc: &BcData, node: &NodeAos, cond: &FlowConditions, jac: &mut Bcsr4) {
    for i in 0..bc.len() {
        let v = bc.vertex[i] as usize;
        let n = [bc.nx[i], bc.ny[i], bc.nz[i]];
        let block = match bc.tag[i] {
            BcTag::SlipWall | BcTag::Symmetry => {
                // dF/dq: only the pressure column is nonzero.
                let mut b = [0.0f64; 16];
                b[1 * 4] = n[0];
                b[2 * 4] = n[1];
                b[3 * 4] = n[2];
                b
            }
            BcTag::FarField => {
                // d/dq [½(F(q)+F(q∞)) − ½λ(q∞−q)] ≈ ½A(q) + ½λI (λ frozen).
                let q = node.state(v);
                let qm = [
                    0.5 * (q[0] + cond.qinf[0]),
                    0.5 * (q[1] + cond.qinf[1]),
                    0.5 * (q[2] + cond.qinf[2]),
                    0.5 * (q[3] + cond.qinf[3]),
                ];
                let lam = euler::spectral_radius(&qm, &n, cond.beta);
                let mut b = euler::flux_jacobian(&q, &n, cond.beta);
                for x in b.iter_mut() {
                    *x *= 0.5;
                }
                for d in 0..4 {
                    b[d * 4 + d] += 0.5 * lam;
                }
                b
            }
        };
        jac.add_block(v, v as u32, &block);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fun3d_mesh::generator::MeshPreset;
    use fun3d_mesh::Vec3;

    #[test]
    fn bc_data_from_dual() {
        let m = MeshPreset::Tiny.build();
        let d = DualMesh::build(&m);
        let bc = BcData::build(&d);
        assert_eq!(bc.len(), d.boundary.len());
        assert!(!bc.is_empty());
    }

    #[test]
    fn wall_flux_has_no_mass_flux() {
        let q = [2.5, 1.0, -1.0, 0.5];
        let n = [0.3, 0.4, -0.5];
        let f = wall_flux(&q, &n);
        assert_eq!(f[0], 0.0);
        assert_eq!(f[1], n[0] * q[0]);
    }

    #[test]
    fn farfield_flux_consistent_at_freestream() {
        // Interior state == free stream: flux must equal F(q∞).
        let cond = FlowConditions::default();
        let n = [0.2, -0.7, 0.4];
        let f = farfield_flux(&cond.qinf, &cond.qinf, &n, cond.beta);
        let exact = euler::flux(&cond.qinf, &n, cond.beta);
        for c in 0..4 {
            assert!((f[c] - exact[c]).abs() < 1e-14);
        }
    }

    #[test]
    fn freestream_preservation_with_boundaries() {
        // Uniform free-stream state with far-field on EVERY boundary:
        // interior flux + boundary flux must vanish everywhere (discrete
        // free-stream preservation), because Σ ±s_e + n_bnd = 0 and the
        // far-field flux reduces to F(q∞)·n at the free stream. (With
        // slip walls preservation legitimately fails wherever the free
        // stream crosses the wall — e.g. on the bump — so walls are
        // retagged here.)
        let mesh = MeshPreset::Tiny.build();
        let dual = DualMesh::build(&mesh);
        let geom = crate::geom::EdgeGeom::build(&mesh, &dual);
        let mut bc = BcData::build(&dual);
        bc.tag.iter_mut().for_each(|t| *t = BcTag::FarField);
        let cond = FlowConditions::default();
        let mut node = NodeAos::zeros(mesh.nvertices());
        node.set_freestream(&cond.qinf);
        let mut res = vec![0.0; node.n * 4];
        crate::flux::serial_aos(&geom, &node, cond.beta, &mut res);
        residual(&bc, &node, &cond, &mut res);
        let max = res.iter().map(|x| x.abs()).fold(0.0, f64::max);
        assert!(max < 1e-11, "free-stream residual {max}");
    }

    #[test]
    fn farfield_jacobian_matches_fd() {
        let cond = FlowConditions::default();
        let q = [0.2, 0.8, 0.1, -0.3];
        let n = [0.5, 0.1, -0.2];
        // numeric dF/dq with λ frozen is approximated by the analytic
        // block up to the dλ/dq term; use a loose tolerance.
        let mut jac = Bcsr4::from_pattern(&[vec![0]]);
        let mut node = NodeAos::zeros(1);
        node.q[..4].copy_from_slice(&q);
        let bc = BcData {
            vertex: vec![0],
            nx: vec![n[0]],
            ny: vec![n[1]],
            nz: vec![n[2]],
            tag: vec![BcTag::FarField],
        };
        jacobian(&bc, &node, &cond, &mut jac);
        let b = jac.block(0);
        let f0 = farfield_flux(&q, &cond.qinf, &n, cond.beta);
        let h = 1e-6;
        for j in 0..4 {
            let mut qp = q;
            qp[j] += h;
            let fp = farfield_flux(&qp, &cond.qinf, &n, cond.beta);
            for i in 0..4 {
                let fd = (fp[i] - f0[i]) / h;
                assert!(
                    (fd - b[i * 4 + j]).abs() < 0.15 * (1.0 + fd.abs()),
                    "d f{i}/dq{j}: fd {fd} vs {}",
                    b[i * 4 + j]
                );
            }
        }
    }

    #[test]
    fn outward_normals_point_out() {
        // At the inflow plane (x = 0) the outward normal points in −x.
        let mesh = MeshPreset::Tiny.build();
        let dual = DualMesh::build(&mesh);
        let bc = BcData::build(&dual);
        let mut found = false;
        for i in 0..bc.len() {
            let v = bc.vertex[i] as usize;
            if mesh.coords[v].x.abs() < 1e-12 && bc.tag[i] == BcTag::FarField {
                // strictly interior inflow-plane vertices have dominant −x
                if mesh.coords[v].y > 0.3
                    && mesh.coords[v].y < 1.7
                    && mesh.coords[v].z > 0.3
                    && mesh.coords[v].z < 1.7
                {
                    assert!(bc.nx[i] < 0.0, "inflow normal x = {}", bc.nx[i]);
                    found = true;
                }
            }
        }
        assert!(found, "no interior inflow vertices checked");
        let _ = Vec3::ZERO; // keep the import used on all paths
    }
}
