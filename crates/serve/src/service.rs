//! The job queue, scheduler, and admission control.
//!
//! Shape of the machine: `teams` dispatcher threads, each permanently
//! holding one persistent [`ThreadPool`] checked out of a shared
//! [`PoolSet`] at startup. Requests are admitted into per-tenant FIFO
//! queues under bounded depth (global and per tenant — the load-shedding
//! layer), and dispatchers pull jobs by weighted round-robin across
//! tenants, so one chatty tenant cannot starve the rest. Each job is
//! executed on the team's cached-or-fresh `Fun3dApp` with
//! `ExecMode::Auto`, which resolves serial vs parallel per solve from
//! the PR 6 cost model — the per-job thread choice without any pool
//! churn.
//!
//! Observability: admission emits `serve_admit`/`serve_reject` flight
//! events on the submitting thread; completion emits `serve_job` tagged
//! with the solve's own `SolveId` (via `flight::emit_tagged`), tying
//! tenant → request → solver events in one dump. Execution is wrapped
//! in a `serve_job` telemetry span.

use crate::cache::{CacheCounters, CacheSnapshot, TeamAppCache};
use crate::tenant_hash;
use crate::wire::SolveRequest;
use fun3d_core::{FlowConditions, Fun3dApp};
use fun3d_machine::MachineSpec;
use fun3d_solver::factor_cache::{fnv1a, fnv1a_word};
use fun3d_threads::{PoolSet, ThreadPool};
use fun3d_util::telemetry::json::Json;
use fun3d_util::telemetry::{self, flight, metrics};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Why a request was shed instead of queued.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RejectReason {
    /// The global queue is at capacity.
    QueueFull,
    /// This tenant's queue is at capacity (others may still admit).
    TenantQueueFull,
    /// The request failed validation/parsing.
    BadRequest,
    /// The service is shutting down.
    Shutdown,
}

impl RejectReason {
    /// Flight-recorder payload code (decoded by
    /// [`flight::reject_reason_slug`]).
    pub fn code(self) -> u64 {
        match self {
            RejectReason::QueueFull => 1,
            RejectReason::TenantQueueFull => 2,
            RejectReason::BadRequest => 3,
            RejectReason::Shutdown => 4,
        }
    }

    /// Stable wire slug (identical to the flight decoding).
    pub fn slug(self) -> &'static str {
        flight::reject_reason_slug(self.code())
    }
}

/// A structured admission rejection.
#[derive(Clone, Debug)]
pub struct Rejected {
    /// Tenant that was shed (may be empty for unparseable requests).
    pub tenant: String,
    /// Why.
    pub reason: RejectReason,
    /// Human detail (e.g. the parse error).
    pub detail: String,
    /// Global queue depth at rejection time.
    pub queue_depth: usize,
}

/// How much of the artifact cache a completed job could reuse.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CacheOutcome {
    /// Neither layer hit: full mesh build + setup + factorization.
    Cold,
    /// Prepared app reused, factors rebuilt.
    App,
    /// Fresh app build, but the first factors were seeded.
    Factor,
    /// Both layers hit: reset, seed, solve.
    AppAndFactor,
}

impl CacheOutcome {
    fn new(app_hit: bool, factor_hit: bool) -> CacheOutcome {
        match (app_hit, factor_hit) {
            (false, false) => CacheOutcome::Cold,
            (true, false) => CacheOutcome::App,
            (false, true) => CacheOutcome::Factor,
            (true, true) => CacheOutcome::AppAndFactor,
        }
    }

    /// Stable wire slug.
    pub fn slug(self) -> &'static str {
        match self {
            CacheOutcome::Cold => "cold",
            CacheOutcome::App => "app",
            CacheOutcome::Factor => "factor",
            CacheOutcome::AppAndFactor => "app+factor",
        }
    }

    fn hits(self) -> u64 {
        matches!(self, CacheOutcome::App | CacheOutcome::AppAndFactor) as u64
            + matches!(self, CacheOutcome::Factor | CacheOutcome::AppAndFactor) as u64
    }
}

/// A completed solve, as delivered to the submitter.
#[derive(Clone, Debug)]
pub struct SolveReply {
    /// Tenant the job belonged to.
    pub tenant: String,
    /// Flight-recorder id of the solve (distinct per job).
    pub solve_id: u64,
    /// Dispatcher team that executed the job.
    pub team: usize,
    /// Worker threads the team offered (1 = serial team).
    pub nt: usize,
    /// Tolerance met.
    pub converged: bool,
    /// Pseudo-time steps taken.
    pub steps: usize,
    /// Total linear iterations.
    pub linear_iters: usize,
    /// Final residual norm.
    pub res: f64,
    /// Full residual history (in-process consumers; not on the wire).
    pub res_history: Vec<f64>,
    /// Concrete scheme the last linear solve ran (`Auto` resolved).
    pub exec: &'static str,
    /// Artifact-cache outcome for this job.
    pub cache: CacheOutcome,
    /// Milliseconds spent queued before a team picked the job up.
    pub queue_ms: f64,
    /// Milliseconds of execution (prep + solve), excluding queueing.
    pub wall_ms: f64,
    /// FNV-64 over the converged state's bit pattern — lets a remote
    /// client (or the bitwise-identity test) compare solutions without
    /// shipping the state vector.
    pub state_fnv: u64,
}

/// Receives one [`SolveReply`] for one admitted job.
pub struct JobHandle {
    rx: mpsc::Receiver<SolveReply>,
}

impl JobHandle {
    /// Blocks until the job completes. Panics if the service was torn
    /// down with the job still queued (dispatchers drain on shutdown,
    /// so this only happens on a dispatcher panic).
    pub fn wait(self) -> SolveReply {
        self.rx.recv().expect("serve dispatcher dropped the job")
    }

    /// [`JobHandle::wait`] with a timeout; `Err` returns the handle.
    pub fn wait_timeout(self, d: Duration) -> Result<SolveReply, JobHandle> {
        match self.rx.recv_timeout(d) {
            Ok(r) => Ok(r),
            Err(mpsc::RecvTimeoutError::Timeout) => Err(self),
            Err(mpsc::RecvTimeoutError::Disconnected) => {
                panic!("serve dispatcher dropped the job")
            }
        }
    }
}

/// Service sizing and policy knobs.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Dispatcher teams (one persistent pool each).
    pub teams: usize,
    /// Workers per team pool (1 = serial teams, no pools at all).
    pub team_threads: usize,
    /// Global queued-job bound (admission control).
    pub queue_cap: usize,
    /// Per-tenant queued-job bound.
    pub tenant_queue_cap: usize,
    /// Prepared-app LRU entries per team.
    pub app_cache_per_team: usize,
    /// Shared first-factor cache entries.
    pub factor_cache_cap: usize,
    /// Master cache switch (`FUN3D_SERVE_CACHE=off` clears it).
    pub cache: bool,
    /// Tenant → weighted-round-robin weight (unlisted tenants get 1).
    pub tenant_weights: Vec<(String, u32)>,
}

impl ServeConfig {
    /// Sizing derived from [`MachineSpec::host`]: teams × team_threads
    /// ≤ cores, parallel teams only where the core budget supports
    /// them. The cache switch honours `FUN3D_SERVE_CACHE` (`off`/`0`/
    /// `false` disable — the `load_gen` cold-cache ablation).
    pub fn host_default() -> ServeConfig {
        let cores = MachineSpec::host().cores;
        // Prefer team parallelism once there are enough cores that a
        // 2-wide team still leaves ≥ 2 teams; the AutoPolicy decides
        // per job whether those workers actually pay.
        let team_threads = if cores >= 4 { 2 } else { 1 };
        let teams = (cores / team_threads).clamp(1, 4);
        ServeConfig {
            teams,
            team_threads,
            queue_cap: 64,
            tenant_queue_cap: 32,
            app_cache_per_team: 4,
            factor_cache_cap: 32,
            cache: !matches!(
                std::env::var("FUN3D_SERVE_CACHE").as_deref(),
                Ok("off") | Ok("0") | Ok("false")
            ),
            tenant_weights: Vec::new(),
        }
    }

    /// The worker budget this configuration is allowed to occupy.
    pub fn worker_budget(&self) -> usize {
        self.teams * self.team_threads
    }

    fn weight_of(&self, tenant: &str) -> u32 {
        self.tenant_weights
            .iter()
            .find(|(t, _)| t == tenant)
            .map(|&(_, w)| w.max(1))
            .unwrap_or(1)
    }
}

/// Aggregate service statistics.
#[derive(Clone, Copy, Debug)]
pub struct ServeStats {
    /// Jobs completed (replies delivered).
    pub completed: u64,
    /// Requests shed by admission control.
    pub rejected: u64,
    /// Configured worker budget (`teams * team_threads`).
    pub worker_budget: usize,
    /// Most pool workers ever leased simultaneously — must never
    /// exceed `worker_budget`.
    pub pool_high_water: usize,
    /// Deepest the global queue ever got.
    pub queue_high_water: usize,
    /// Cache counters (both layers).
    pub cache: CacheSnapshot,
}

struct Job {
    req: SolveRequest,
    enqueued: Instant,
    /// Admission time on the telemetry clock (the flight/metrics epoch),
    /// so `ServeStages` timestamps interleave with solver events.
    admit_ns: u64,
    reply: mpsc::Sender<SolveReply>,
}

struct RrSlot {
    tenant: String,
    weight: u32,
    credit: u32,
}

struct SchedState {
    queues: HashMap<String, VecDeque<Job>>,
    rr: Vec<RrSlot>,
    cursor: usize,
    queued: usize,
    queue_high_water: usize,
    active: usize,
    shutdown: bool,
}

impl SchedState {
    /// Weighted round-robin: serve up to `weight` consecutive jobs from
    /// the cursor tenant before advancing, skipping empty queues.
    fn next_job(&mut self) -> Option<Job> {
        if self.rr.is_empty() {
            return None;
        }
        for _ in 0..self.rr.len() {
            let slot = &mut self.rr[self.cursor];
            let job = self
                .queues
                .get_mut(&slot.tenant)
                .and_then(VecDeque::pop_front);
            match job {
                Some(job) => {
                    self.queued -= 1;
                    slot.credit = slot.credit.saturating_sub(1);
                    if slot.credit == 0 {
                        slot.credit = slot.weight;
                        self.cursor = (self.cursor + 1) % self.rr.len();
                    }
                    return Some(job);
                }
                None => {
                    slot.credit = slot.weight;
                    self.cursor = (self.cursor + 1) % self.rr.len();
                }
            }
        }
        None
    }
}

/// Process-wide serve gauges, resolved once (the registry lock is paid
/// at first use, not per request).
struct ServeGauges {
    queue_depth: Arc<metrics::Gauge>,
    inflight: Arc<metrics::Gauge>,
    cache_apps: Arc<metrics::Gauge>,
    cache_factors: Arc<metrics::Gauge>,
}

fn gauges() -> &'static ServeGauges {
    static GAUGES: std::sync::OnceLock<ServeGauges> = std::sync::OnceLock::new();
    GAUGES.get_or_init(|| ServeGauges {
        queue_depth: metrics::gauge("serve.queue_depth"),
        inflight: metrics::gauge("serve.inflight"),
        cache_apps: metrics::gauge("serve.cache.apps"),
        cache_factors: metrics::gauge("serve.cache.factors"),
    })
}

struct Shared {
    cfg: ServeConfig,
    state: Mutex<SchedState>,
    /// Signalled when work arrives or shutdown begins.
    work: Condvar,
    /// Signalled when a dispatcher goes idle (drain waits here).
    idle: Condvar,
    completed: AtomicU64,
    rejected: AtomicU64,
}

/// The running service: admission in front, dispatcher teams behind.
pub struct Service {
    shared: Arc<Shared>,
    pools: Option<Arc<PoolSet>>,
    counters: Arc<CacheCounters>,
    workers: Vec<JoinHandle<()>>,
}

impl Service {
    /// Starts the dispatcher teams and their pools.
    pub fn start(cfg: ServeConfig) -> Service {
        assert!(cfg.teams >= 1, "need at least one team");
        assert!(cfg.team_threads >= 1, "team_threads counts workers, min 1");
        let counters = Arc::new(CacheCounters::new(if cfg.cache {
            cfg.factor_cache_cap
        } else {
            0
        }));
        // Serial teams run on the dispatcher thread itself; only
        // parallel teams own doorbell pools.
        let pools = (cfg.team_threads > 1)
            .then(|| Arc::new(PoolSet::new(&vec![cfg.team_threads; cfg.teams])));
        let shared = Arc::new(Shared {
            cfg: cfg.clone(),
            state: Mutex::new(SchedState {
                queues: HashMap::new(),
                rr: Vec::new(),
                cursor: 0,
                queued: 0,
                queue_high_water: 0,
                active: 0,
                shutdown: false,
            }),
            work: Condvar::new(),
            idle: Condvar::new(),
            completed: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
        });
        let workers = (0..cfg.teams)
            .map(|team| {
                let shared = Arc::clone(&shared);
                let counters = Arc::clone(&counters);
                let lease = pools
                    .as_ref()
                    .map(|set| set.checkout_owned(cfg.team_threads).expect("pool per team"));
                std::thread::Builder::new()
                    .name(format!("serve-team{team}"))
                    .spawn(move || {
                        telemetry::set_thread_label(format!("serve-team{team}"));
                        let pool = lease.as_ref().map(|l| Arc::clone(l.pool()));
                        dispatcher_loop(team, shared, pool, counters);
                        drop(lease);
                    })
                    .expect("spawn dispatcher")
            })
            .collect();
        Service {
            shared,
            pools,
            counters,
            workers,
        }
    }

    /// Admits a request or sheds it with a structured reason. Emits the
    /// `serve_admit`/`serve_reject` flight event on this thread.
    pub fn submit(&self, req: SolveRequest) -> Result<JobHandle, Rejected> {
        let tenant = req.tenant.clone();
        let thash = tenant_hash(&tenant);
        let mut st = self.shared.state.lock().unwrap();
        let reject = if st.shutdown {
            Some((RejectReason::Shutdown, "service is shutting down"))
        } else if st.queued >= self.shared.cfg.queue_cap {
            Some((RejectReason::QueueFull, "global queue at capacity"))
        } else if st
            .queues
            .get(&tenant)
            .is_some_and(|q| q.len() >= self.shared.cfg.tenant_queue_cap)
        {
            Some((RejectReason::TenantQueueFull, "tenant queue at capacity"))
        } else {
            None
        };
        if let Some((reason, detail)) = reject {
            let depth = st.queued;
            drop(st);
            self.shared.rejected.fetch_add(1, Ordering::Relaxed);
            metrics::counter_add("serve.shed", 1);
            metrics::counter(&format!("serve.shed.{}", reason.slug())).incr();
            flight::emit(flight::EventKind::ServeReject {
                tenant: thash,
                reason: reason.code(),
                queue_depth: depth as u64,
            });
            return Err(Rejected {
                tenant,
                reason,
                detail: detail.to_string(),
                queue_depth: depth,
            });
        }
        let (tx, rx) = mpsc::channel();
        if !st.queues.contains_key(&tenant) {
            st.queues.insert(tenant.clone(), VecDeque::new());
            let weight = self.shared.cfg.weight_of(&tenant);
            st.rr.push(RrSlot {
                tenant: tenant.clone(),
                weight,
                credit: weight,
            });
        }
        st.queues.get_mut(&tenant).unwrap().push_back(Job {
            req,
            enqueued: Instant::now(),
            admit_ns: telemetry::now_ns(),
            reply: tx,
        });
        st.queued += 1;
        st.queue_high_water = st.queue_high_water.max(st.queued);
        let depth = st.queued;
        drop(st);
        self.shared.work.notify_one();
        metrics::counter_add("serve.admitted", 1);
        gauges().queue_depth.set(depth as u64);
        flight::emit(flight::EventKind::ServeAdmit {
            tenant: thash,
            queue_depth: depth as u64,
        });
        Ok(JobHandle { rx })
    }

    /// Blocks until every queued job has been executed and delivered.
    pub fn drain(&self) {
        let mut st = self.shared.state.lock().unwrap();
        while st.queued > 0 || st.active > 0 {
            st = self.shared.idle.wait(st).unwrap();
        }
    }

    /// Point-in-time statistics.
    pub fn stats(&self) -> ServeStats {
        let st = self.shared.state.lock().unwrap();
        ServeStats {
            completed: self.shared.completed.load(Ordering::Relaxed),
            rejected: self.shared.rejected.load(Ordering::Relaxed),
            worker_budget: self.shared.cfg.worker_budget(),
            pool_high_water: self.pools.as_ref().map_or(0, |p| p.high_water()),
            queue_high_water: st.queue_high_water,
            cache: self.counters.snapshot(),
        }
    }

    /// Drains outstanding jobs, stops the teams, and returns the final
    /// statistics.
    pub fn shutdown(mut self) -> ServeStats {
        {
            let mut st = self.shared.state.lock().unwrap();
            st.shutdown = true;
        }
        self.shared.work.notify_all();
        for h in self.workers.drain(..) {
            h.join().expect("dispatcher panicked");
        }
        self.stats()
    }
}

impl Drop for Service {
    fn drop(&mut self) {
        if self.workers.is_empty() {
            return; // consumed by shutdown()
        }
        {
            let mut st = self.shared.state.lock().unwrap();
            st.shutdown = true;
        }
        self.shared.work.notify_all();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

fn dispatcher_loop(
    team: usize,
    shared: Arc<Shared>,
    pool: Option<Arc<ThreadPool>>,
    counters: Arc<CacheCounters>,
) {
    let mut app_cache = TeamAppCache::new(if shared.cfg.cache {
        shared.cfg.app_cache_per_team
    } else {
        0
    });
    loop {
        let job = {
            let mut st = shared.state.lock().unwrap();
            loop {
                if let Some(job) = st.next_job() {
                    st.active += 1;
                    gauges().queue_depth.set(st.queued as u64);
                    gauges().inflight.set(st.active as u64);
                    break job;
                }
                if st.shutdown {
                    return;
                }
                st = shared.work.wait(st).unwrap();
            }
        };
        let reply_tx = job.reply.clone();
        let reply = execute(
            team,
            pool.as_ref(),
            job,
            &mut app_cache,
            &counters,
            shared.cfg.cache,
        );
        // A submitter that gave up (dropped the handle) is not an error.
        let _ = reply_tx.send(reply);
        shared.completed.fetch_add(1, Ordering::Relaxed);
        metrics::counter_add("serve.completed", 1);
        gauges().cache_apps.set(app_cache.len() as u64);
        gauges().cache_factors.set(counters.factors.len() as u64);
        {
            let mut st = shared.state.lock().unwrap();
            st.active -= 1;
            gauges().inflight.set(st.active as u64);
        }
        shared.idle.notify_all();
    }
}

/// Runs one job on this team: artifact-cache lookups, the solve, the
/// flight/telemetry tagging, and the reply.
fn execute(
    team: usize,
    pool: Option<&Arc<ThreadPool>>,
    job: Job,
    app_cache: &mut TeamAppCache,
    counters: &CacheCounters,
    cache_on: bool,
) -> SolveReply {
    let _span = telemetry::span("serve_job");
    let queue_ns = job.enqueued.elapsed().as_nanos() as u64;
    let admit_ns = job.admit_ns;
    let dispatch_ns = telemetry::now_ns();
    let req = job.req;
    let nt = pool.map_or(1, |p| p.size());
    let t0 = Instant::now();

    let prep_key = req.prep_key(nt);
    let (mut app, app_hit) = match app_cache.take(prep_key, counters) {
        Some(mut app) => {
            app.reset_for_reuse();
            (app, true)
        }
        None => {
            let mut mesh = req.mesh.build();
            Fun3dApp::rcm_reorder(&mut mesh);
            let app = Fun3dApp::with_pool(
                mesh,
                FlowConditions::default(),
                req.opt_config(nt),
                pool.cloned(),
            );
            (app, false)
        }
    };

    let factor_key = req.factor_key();
    let mut factor_hit = false;
    if cache_on {
        app.capture_first_factors(true);
        if let Some(seed) = counters.factors.get(factor_key) {
            app.set_factor_seed(Some(seed));
            factor_hit = true;
        }
    }

    let solve_start_ns = telemetry::now_ns();
    let (u, stats) = app.run(&req.ptc_config());
    let solve_end_ns = telemetry::now_ns();

    if cache_on && !factor_hit {
        if let Some(f) = app.first_factors() {
            counters.factors.insert(factor_key, f);
        }
    }
    let cache = CacheOutcome::new(app_hit, factor_hit);
    app_cache.put(prep_key, app, counters);

    let state_fnv = hash_state(&u);
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    let reply_ns = telemetry::now_ns();
    flight::emit_tagged(
        stats.solve_id,
        flight::EventKind::ServeJob {
            tenant: tenant_hash(&req.tenant),
            queue_ns,
            cache_hits: cache.hits(),
            cache_misses: 2 - cache.hits(),
        },
    );
    // Full stage record for `trace::assemble`: every boundary of this
    // request on the shared telemetry clock, tagged with its SolveId.
    flight::emit_tagged(
        stats.solve_id,
        flight::EventKind::ServeStages {
            tenant: tenant_hash(&req.tenant),
            admit_ns,
            dispatch_ns,
            solve_start_ns,
            solve_end_ns,
            reply_ns,
        },
    );
    record_stage_metrics(&req.tenant, admit_ns, dispatch_ns, solve_start_ns, solve_end_ns, reply_ns);
    metrics::counter_add("serve.cache.hits", cache.hits());
    metrics::counter_add("serve.cache.misses", 2 - cache.hits());
    SolveReply {
        tenant: req.tenant,
        solve_id: stats.solve_id,
        team,
        nt,
        converged: stats.converged,
        steps: stats.time_steps,
        linear_iters: stats.linear_iters,
        res: stats.res_history.last().copied().unwrap_or(f64::NAN),
        res_history: stats.res_history,
        exec: stats.exec,
        cache,
        queue_ms: queue_ns as f64 / 1e6,
        wall_ms,
        state_fnv,
    }
}

/// Records one finished request into the live stage histograms:
/// service-wide and per-tenant `queue/prep/solve/total` distributions
/// (tenant handles cached per dispatcher thread, so steady-state
/// recording never takes the registry lock).
fn record_stage_metrics(
    tenant: &str,
    admit_ns: u64,
    dispatch_ns: u64,
    solve_start_ns: u64,
    solve_end_ns: u64,
    reply_ns: u64,
) {
    if !metrics::enabled() {
        return;
    }
    let queue = dispatch_ns.saturating_sub(admit_ns);
    let prep = solve_start_ns.saturating_sub(dispatch_ns);
    let solve = solve_end_ns.saturating_sub(solve_start_ns);
    let total = reply_ns.saturating_sub(admit_ns);
    metrics::record_ns("serve.queue_ns", queue);
    metrics::record_ns("serve.prep_ns", prep);
    metrics::record_ns("serve.solve_ns", solve);
    metrics::record_ns("serve.total_ns", total);
    thread_local! {
        static TENANT_HISTS: std::cell::RefCell<
            HashMap<String, [Arc<metrics::Histogram>; 4]>,
        > = std::cell::RefCell::new(HashMap::new());
    }
    TENANT_HISTS.with(|cache| {
        let mut cache = cache.borrow_mut();
        let hists = cache.entry(tenant.to_string()).or_insert_with(|| {
            let h = |stage: &str| metrics::histogram(&format!("serve.tenant.{tenant}.{stage}"));
            [h("queue_ns"), h("prep_ns"), h("solve_ns"), h("total_ns")]
        });
        for (h, v) in hists.iter().zip([queue, prep, solve, total]) {
            h.record(v);
        }
    });
}

impl Service {
    /// One-line strict-JSON answer to the `{"cmd":"stats"}` admin
    /// request: service counters, per-tenant live p50/p99 (from the
    /// in-process histograms, not a bench log), cache hit rate, and the
    /// full `fun3d.metrics.v1` snapshot for machine consumers.
    pub fn stats_json(&self) -> Json {
        let stats = self.stats();
        let snap = metrics::snapshot();
        let tenants: Vec<(String, Json)> = snap
            .hists
            .iter()
            .filter_map(|h| {
                let name = h
                    .name
                    .strip_prefix("serve.tenant.")?
                    .strip_suffix(".total_ns")?;
                Some((
                    name.to_string(),
                    Json::obj(vec![
                        ("count", Json::num(h.count as f64)),
                        ("p50_ms", flight::json_f64(h.quantile(0.50) / 1e6)),
                        ("p99_ms", flight::json_f64(h.quantile(0.99) / 1e6)),
                        ("max_ms", Json::num(h.max_ns as f64 / 1e6)),
                    ]),
                ))
            })
            .collect();
        Json::obj(vec![
            ("ok", Json::Bool(true)),
            ("kind", Json::str("stats")),
            ("completed", Json::num(stats.completed as f64)),
            ("rejected", Json::num(stats.rejected as f64)),
            ("queue_depth", Json::num(snap.gauge("serve.queue_depth") as f64)),
            ("inflight", Json::num(snap.gauge("serve.inflight") as f64)),
            (
                "cache_hit_rate",
                flight::json_f64(stats.cache.combined_hit_rate()),
            ),
            ("tenants", Json::Obj(tenants)),
            ("metrics", metrics::snapshot_json(&snap)),
        ])
    }
}

/// FNV-64 over a state vector's exact bit pattern.
pub fn hash_state(u: &[f64]) -> u64 {
    u.iter()
        .fold(fnv1a(b"fun3d-state"), |h, x| fnv1a_word(h, x.to_bits()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use fun3d_mesh::generator::MeshPreset;

    fn quick_req(tenant: &str) -> SolveRequest {
        let mut req = SolveRequest::new(tenant, MeshPreset::Tiny);
        req.max_steps = 3;
        req.rtol = 1e-2;
        req
    }

    fn tiny_config() -> ServeConfig {
        ServeConfig {
            teams: 1,
            team_threads: 1,
            queue_cap: 8,
            tenant_queue_cap: 4,
            app_cache_per_team: 2,
            factor_cache_cap: 8,
            cache: true,
            tenant_weights: Vec::new(),
        }
    }

    #[test]
    fn submit_executes_and_replies() {
        let svc = Service::start(tiny_config());
        let reply = svc.submit(quick_req("t0")).unwrap().wait();
        assert_eq!(reply.tenant, "t0");
        assert!(reply.steps > 0 && reply.solve_id > 0);
        assert_eq!(reply.cache, CacheOutcome::Cold);
        let stats = svc.shutdown();
        assert_eq!(stats.completed, 1);
        assert_eq!(stats.rejected, 0);
    }

    #[test]
    fn repeat_requests_hit_both_cache_layers() {
        let svc = Service::start(tiny_config());
        let first = svc.submit(quick_req("t")).unwrap().wait();
        let second = svc.submit(quick_req("t")).unwrap().wait();
        assert_eq!(first.cache, CacheOutcome::Cold);
        assert_eq!(second.cache, CacheOutcome::AppAndFactor);
        assert_eq!(
            first.state_fnv, second.state_fnv,
            "cached reuse must be bitwise identical"
        );
        assert_eq!(first.res_history, second.res_history);
        let stats = svc.shutdown();
        assert!(stats.cache.app.hits >= 1 && stats.cache.factor.hits >= 1);
    }

    #[test]
    fn cache_off_stays_cold() {
        let mut cfg = tiny_config();
        cfg.cache = false;
        let svc = Service::start(cfg);
        for _ in 0..2 {
            let r = svc.submit(quick_req("t")).unwrap().wait();
            assert_eq!(r.cache, CacheOutcome::Cold);
        }
        let stats = svc.shutdown();
        assert_eq!(stats.cache.app.hits + stats.cache.factor.hits, 0);
    }

    #[test]
    fn admission_sheds_past_the_bounds() {
        // One team, kept busy by a deliberately slow first job, so the
        // subsequent submissions are pure queue arithmetic: tenant `a`
        // overflows its own cap first, then fresh tenants fill the
        // global queue. (Even if the dispatcher has not yet picked up
        // the slow job, both caps still trip — the slow job just
        // occupies one more global slot.)
        let mut cfg = tiny_config();
        cfg.queue_cap = 4;
        cfg.tenant_queue_cap = 2;
        let svc = Service::start(cfg);
        let mut slow = SolveRequest::new("z", MeshPreset::Small);
        slow.max_steps = 8;
        slow.rtol = 1e-10;
        let mut handles = vec![svc.submit(slow).unwrap()];
        let mut saw_tenant_full = false;
        let mut saw_global_full = false;
        for t in ["a", "a", "a", "b", "c", "d", "e"] {
            match svc.submit(quick_req(t)) {
                Ok(h) => handles.push(h),
                Err(r) => match r.reason {
                    RejectReason::TenantQueueFull => {
                        assert_eq!(r.tenant, "a");
                        saw_tenant_full = true;
                    }
                    RejectReason::QueueFull => saw_global_full = true,
                    other => panic!("unexpected reject {other:?}"),
                },
            }
        }
        assert!(saw_tenant_full, "tenant `a` should overflow its cap");
        assert!(saw_global_full, "fresh tenants should overflow the global cap");
        for h in handles {
            h.wait();
        }
        let stats = svc.shutdown();
        assert!(stats.rejected >= 2);
        assert!(stats.queue_high_water <= 4);
    }

    #[test]
    fn shutdown_drains_queued_jobs_and_refuses_new_ones() {
        let svc = Service::start(tiny_config());
        let handles: Vec<_> = (0..4)
            .map(|i| svc.submit(quick_req(&format!("t{i}"))).unwrap())
            .collect();
        let stats = svc.shutdown();
        assert_eq!(stats.completed, 4, "shutdown must drain the queue");
        for h in handles {
            h.wait();
        }
    }

    #[test]
    fn shutdown_rejects_with_reason() {
        let svc = Service::start(tiny_config());
        {
            let mut st = svc.shared.state.lock().unwrap();
            st.shutdown = true;
        }
        let err = match svc.submit(quick_req("t")) {
            Err(r) => r,
            Ok(_) => panic!("submit should be rejected after shutdown"),
        };
        assert_eq!(err.reason, RejectReason::Shutdown);
        assert_eq!(err.reason.slug(), "shutdown");
    }

    #[test]
    fn stats_json_reports_live_tenant_percentiles() {
        metrics::set_enabled(true);
        let svc = Service::start(tiny_config());
        for _ in 0..2 {
            svc.submit(quick_req("statsee")).unwrap().wait();
        }
        // The completed counter bumps after the reply send; drain waits
        // for the dispatcher to fully retire both jobs.
        svc.drain();
        let doc = svc.stats_json();
        let parsed = Json::parse(&doc.render()).expect("stats render is valid JSON");
        assert_eq!(parsed.get("ok"), Some(&Json::Bool(true)));
        assert!(parsed.get("completed").and_then(Json::as_f64).unwrap() >= 2.0);
        let tenant = parsed
            .get("tenants")
            .and_then(|t| t.get("statsee"))
            .expect("live per-tenant entry");
        assert!(tenant.get("count").and_then(Json::as_f64).unwrap() >= 2.0);
        let p50 = tenant.get("p50_ms").and_then(Json::as_f64).unwrap();
        let p99 = tenant.get("p99_ms").and_then(Json::as_f64).unwrap();
        assert!(p50 > 0.0 && p99 >= p50, "p50={p50} p99={p99}");
        assert!(parsed.get("cache_hit_rate").and_then(Json::as_f64).is_some());
        // The embedded metrics snapshot is itself schema-valid.
        let m = parsed.get("metrics").expect("metrics subdocument");
        metrics::check_snapshot(m).expect("embedded snapshot validates");
        svc.shutdown();
    }

    #[test]
    fn serve_stages_are_monotone_and_tagged() {
        metrics::set_enabled(true);
        flight::set_enabled(true);
        let svc = Service::start(tiny_config());
        let reply = svc.submit(quick_req("stager")).unwrap().wait();
        svc.shutdown();
        let log = flight::snapshot();
        let stages = log
            .solve(reply.solve_id)
            .into_iter()
            .find_map(|e| match e.kind {
                flight::EventKind::ServeStages {
                    tenant,
                    admit_ns,
                    dispatch_ns,
                    solve_start_ns,
                    solve_end_ns,
                    reply_ns,
                } => Some((tenant, [admit_ns, dispatch_ns, solve_start_ns, solve_end_ns, reply_ns])),
                _ => None,
            })
            .expect("a serve_stages event tagged with the reply's solve id");
        assert_eq!(stages.0, tenant_hash("stager"));
        assert!(
            stages.1.windows(2).all(|w| w[0] <= w[1]),
            "stage boundaries must be monotone: {:?}",
            stages.1
        );
    }

    #[test]
    fn weighted_round_robin_interleaves_tenants() {
        // Two tenants, heavy at weight 2: a full drain order of
        // h h l h h l … — verify the scheduler state machine directly.
        let mut st = SchedState {
            queues: HashMap::new(),
            rr: Vec::new(),
            cursor: 0,
            queued: 0,
            queue_high_water: 0,
            active: 0,
            shutdown: false,
        };
        let (tx, _rx) = mpsc::channel();
        let push = |st: &mut SchedState, tenant: &str, weight: u32| {
            if !st.queues.contains_key(tenant) {
                st.queues.insert(tenant.to_string(), VecDeque::new());
                st.rr.push(RrSlot {
                    tenant: tenant.to_string(),
                    weight,
                    credit: weight,
                });
            }
            st.queues.get_mut(tenant).unwrap().push_back(Job {
                req: quick_req(tenant),
                enqueued: Instant::now(),
                admit_ns: telemetry::now_ns(),
                reply: tx.clone(),
            });
            st.queued += 1;
        };
        for _ in 0..6 {
            push(&mut st, "heavy", 2);
        }
        for _ in 0..3 {
            push(&mut st, "light", 1);
        }
        let mut order = Vec::new();
        while let Some(job) = st.next_job() {
            order.push(job.req.tenant.clone());
        }
        assert_eq!(
            order,
            vec!["heavy", "heavy", "light", "heavy", "heavy", "light", "heavy", "heavy", "light"],
            "weight-2 tenant gets two slots per round, and nobody starves"
        );
        assert_eq!(st.queued, 0);
    }
}
