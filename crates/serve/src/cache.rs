//! Cross-request artifact caching.
//!
//! Two layers, split by what can safely cross threads:
//!
//! * **Prepared apps** ([`TeamAppCache`], one per dispatcher team):
//!   a complete `Fun3dApp` — reordered mesh, dual metrics, owner-writes
//!   partitions, tilings, symbolic ILU pattern, level/P2P schedules —
//!   keyed by [`crate::SolveRequest::prep_key`]. `Fun3dApp` is `!Send`
//!   (it shares `Rc` timers with its preconditioner), so instances
//!   never migrate: each team caches the apps it built, and the bounded
//!   LRU keeps a team's resident set small. Reuse is bitwise-identical
//!   to a fresh build (pinned by `fun3d-core`'s
//!   `reuse_and_factor_seed_are_bitwise_identical` test).
//! * **First ILU factors** (a process-wide
//!   [`KeyedCache`]`<IluFactors>`): factors are plain `Send + Sync`
//!   data, so every team shares one cache keyed by
//!   [`crate::SolveRequest::factor_key`] — `ilu_lag` generalized across
//!   requests.
//!
//! All counters aggregate into one [`CacheCounters`] so the service can
//! report hit rates over all teams, and `FUN3D_SERVE_CACHE=off` turns
//! both layers into always-miss caches (capacity 0) for the `load_gen`
//! cold/warm ablation.

use fun3d_core::Fun3dApp;
use fun3d_solver::factor_cache::{CacheStats, KeyedCache};
use fun3d_sparse::IluFactors;
use std::sync::atomic::{AtomicU64, Ordering};

/// Process-wide cache counters: the app layer's atomics (fed by every
/// team) plus the shared factor cache itself.
pub struct CacheCounters {
    app_hits: AtomicU64,
    app_misses: AtomicU64,
    app_insertions: AtomicU64,
    app_evictions: AtomicU64,
    /// The shared first-factor cache.
    pub factors: KeyedCache<IluFactors>,
}

impl CacheCounters {
    /// Counters plus a factor cache bounded to `factor_cap` entries.
    pub fn new(factor_cap: usize) -> CacheCounters {
        CacheCounters {
            app_hits: AtomicU64::new(0),
            app_misses: AtomicU64::new(0),
            app_insertions: AtomicU64::new(0),
            app_evictions: AtomicU64::new(0),
            factors: KeyedCache::new(factor_cap),
        }
    }

    /// Aggregated snapshot of both layers.
    pub fn snapshot(&self) -> CacheSnapshot {
        CacheSnapshot {
            app: CacheStats {
                hits: self.app_hits.load(Ordering::Relaxed),
                misses: self.app_misses.load(Ordering::Relaxed),
                insertions: self.app_insertions.load(Ordering::Relaxed),
                evictions: self.app_evictions.load(Ordering::Relaxed),
            },
            factor: self.factors.stats(),
        }
    }
}

/// Point-in-time view of both cache layers.
#[derive(Clone, Copy, Debug)]
pub struct CacheSnapshot {
    /// Prepared-app layer (summed over all teams).
    pub app: CacheStats,
    /// Shared first-factor layer.
    pub factor: CacheStats,
}

impl CacheSnapshot {
    /// Hit rate over both layers' lookups combined — the headline
    /// `cache_hit_rate` metric `load_gen` reports.
    pub fn combined_hit_rate(&self) -> f64 {
        let hits = self.app.hits + self.factor.hits;
        let total = hits + self.app.misses + self.factor.misses;
        if total == 0 {
            0.0
        } else {
            hits as f64 / total as f64
        }
    }
}

/// Bounded LRU of prepared apps, owned by one dispatcher thread.
/// Entries are *taken out* while a job runs (the job holds `&mut` on
/// the app) and put back afterwards, so the cache never aliases a live
/// solve.
pub struct TeamAppCache {
    entries: Vec<Entry>,
    capacity: usize,
    clock: u64,
}

struct Entry {
    key: u64,
    app: Fun3dApp,
    last_used: u64,
}

impl TeamAppCache {
    /// A cache holding at most `capacity` prepared apps (0 disables).
    pub fn new(capacity: usize) -> TeamAppCache {
        TeamAppCache {
            entries: Vec::new(),
            capacity,
            clock: 0,
        }
    }

    /// Removes and returns the app for `key`, counting hit/miss into
    /// the shared counters.
    pub fn take(&mut self, key: u64, counters: &CacheCounters) -> Option<Fun3dApp> {
        match self.entries.iter().position(|e| e.key == key) {
            Some(pos) => {
                counters.app_hits.fetch_add(1, Ordering::Relaxed);
                Some(self.entries.swap_remove(pos).app)
            }
            None => {
                counters.app_misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Returns an app to the cache (or stores a freshly built one),
    /// evicting the least-recently-used entry past capacity.
    pub fn put(&mut self, key: u64, app: Fun3dApp, counters: &CacheCounters) {
        if self.capacity == 0 {
            return;
        }
        self.clock += 1;
        // Same-key duplicates can't happen (take removes), but keep the
        // invariant anyway if a caller puts without taking.
        self.entries.retain(|e| e.key != key);
        if self.entries.len() >= self.capacity {
            if let Some(pos) = self
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(pos, _)| pos)
            {
                self.entries.swap_remove(pos);
                counters.app_evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
        self.entries.push(Entry {
            key,
            app,
            last_used: self.clock,
        });
        counters.app_insertions.fetch_add(1, Ordering::Relaxed);
    }

    /// Prepared apps currently resident.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fun3d_core::app::OptConfig;
    use fun3d_core::euler::FlowConditions;
    use fun3d_mesh::generator::MeshPreset;

    fn tiny_app() -> Fun3dApp {
        let mut mesh = MeshPreset::Tiny.build();
        Fun3dApp::rcm_reorder(&mut mesh);
        Fun3dApp::new(mesh, FlowConditions::default(), OptConfig::baseline())
    }

    #[test]
    fn take_put_cycle_counts_and_evicts() {
        let counters = CacheCounters::new(4);
        let mut cache = TeamAppCache::new(1);
        assert!(cache.take(1, &counters).is_none());
        cache.put(1, tiny_app(), &counters);
        let app = cache.take(1, &counters).expect("hit");
        assert!(cache.is_empty(), "taken apps leave the cache");
        cache.put(1, app, &counters);
        cache.put(2, tiny_app(), &counters); // evicts key 1
        assert!(cache.take(1, &counters).is_none());
        assert!(cache.take(2, &counters).is_some());
        let s = counters.snapshot().app;
        assert_eq!((s.hits, s.misses), (2, 2));
        assert_eq!((s.insertions, s.evictions), (3, 1));
    }

    #[test]
    fn zero_capacity_disables_the_layer() {
        let counters = CacheCounters::new(0);
        let mut cache = TeamAppCache::new(0);
        cache.put(1, tiny_app(), &counters);
        assert!(cache.take(1, &counters).is_none());
        assert_eq!(counters.snapshot().app.insertions, 0);
    }

    #[test]
    fn combined_hit_rate_spans_both_layers() {
        let counters = CacheCounters::new(4);
        let mut cache = TeamAppCache::new(2);
        cache.take(9, &counters); // app miss
        cache.put(9, tiny_app(), &counters);
        cache.take(9, &counters); // app hit
        counters.factors.get(1); // factor miss
        let snap = counters.snapshot();
        assert!((snap.combined_hit_rate() - 1.0 / 3.0).abs() < 1e-12);
    }
}
