//! `fun3d-serve` — solver-as-a-service front-end over the shared-memory
//! solver stack.
//!
//! The north-star workload is many concurrent small-to-medium solves,
//! not one giant one. This crate turns the repo's node-level machinery
//! into a request-level worker tier:
//!
//! * [`service`] — an in-process job queue with per-tenant weighted
//!   round-robin fairness and bounded-depth admission control, executed
//!   by a fixed set of dispatcher *teams*, each owning one persistent
//!   [`fun3d_threads::ThreadPool`] checked out of a
//!   [`fun3d_threads::PoolSet`] at startup (no pool churn between
//!   requests; the set's high-water mark proves the worker budget was
//!   never exceeded). Per-job thread choice rides the PR 6
//!   `AutoPolicy`: apps run `ExecMode::Auto`, so each solve resolves
//!   serial vs team from the machine model + measured sync costs.
//! * [`cache`] — the cross-request artifact cache: per-team prepared
//!   [`fun3d_core::Fun3dApp`] bundles (reordered mesh, dual metrics,
//!   partitions, tilings, ILU patterns, schedules) and a process-wide
//!   first-factor cache (`OptConfig::ilu_lag` generalized across
//!   requests, bitwise-identically — see
//!   [`fun3d_core::Fun3dApp::set_factor_seed`]).
//! * [`wire`] — a newline-delimited-JSON request/reply codec served
//!   over stdin/stdout or a Unix socket by the `fun3d-serve` binary.
//!
//! Every admitted request is tagged into the flight recorder
//! (`serve_admit` / `serve_job` / `serve_reject` events carrying FNV-64
//! tenant hashes and the job's `SolveId`) and wrapped in a telemetry
//! span, so one load run correlates service-level latency with
//! solver-level behaviour.

pub mod cache;
pub mod service;
pub mod wire;

pub use cache::{CacheCounters, CacheSnapshot};
pub use service::{
    JobHandle, RejectReason, Rejected, ServeConfig, ServeStats, Service, SolveReply,
};
pub use wire::SolveRequest;

/// FNV-64 tenant tag as carried on flight-recorder serve events.
pub fn tenant_hash(tenant: &str) -> u64 {
    fun3d_solver::factor_cache::fnv1a(tenant.as_bytes())
}
