//! Newline-delimited JSON request/reply codec.
//!
//! One request per line in, one reply per line out — the transport the
//! `fun3d-serve` binary speaks over stdin/stdout and Unix sockets, and
//! the schema `load_gen` emits. Parsing is strict: unknown mesh names
//! and malformed JSON become structured `bad_request` rejections, never
//! panics, because admission control is the first consumer of the
//! result.
//!
//! u64 values that must survive the wire exactly (tenant hashes, state
//! checksums) travel as fixed-width hex strings: the in-tree `Json`
//! number is an `f64`, which would silently round them.

use crate::service::{RejectReason, Rejected, SolveReply};
use fun3d_core::app::OptConfig;
use fun3d_mesh::generator::MeshPreset;
use fun3d_solver::factor_cache::{fnv1a, fnv1a_word};
use fun3d_solver::ptc::PtcConfig;
use fun3d_util::telemetry::json::Json;

/// One solve request: a mesh preset plus the `OptConfig`/ΨTC knobs a
/// tenant may turn. Everything else (execution scheme, partitioning,
/// SIMD, threading) belongs to the service, not the tenant.
#[derive(Clone, Debug, PartialEq)]
pub struct SolveRequest {
    /// Tenant name (fairness/accounting identity).
    pub tenant: String,
    /// Mesh preset to solve on.
    pub mesh: MeshPreset,
    /// Relative convergence tolerance.
    pub rtol: f64,
    /// Pseudo-time step budget.
    pub max_steps: usize,
    /// Initial pseudo-time step.
    pub dt0: f64,
    /// ILU fill level.
    pub ilu_fill: usize,
    /// Rebuild the ILU factors only every `n` steps.
    pub ilu_lag: usize,
    /// Venkatakrishnan limiter on the reconstruction gradients.
    pub use_limiter: bool,
    /// Weighted least-squares gradients instead of Green-Gauss.
    pub use_lsq_gradients: bool,
    /// Krylov iteration budget per linear solve (0 = solver default).
    /// Latency-sensitive tenants bound the work a request may cost.
    pub max_linear_iters: usize,
}

impl SolveRequest {
    /// A request with the service-default knobs for a mesh: a short,
    /// loosely-converged solve of the kind a latency-sensitive tenant
    /// issues.
    pub fn new(tenant: impl Into<String>, mesh: MeshPreset) -> SolveRequest {
        SolveRequest {
            tenant: tenant.into(),
            mesh,
            rtol: 1e-6,
            max_steps: 60,
            dt0: 2.0,
            ilu_fill: 1,
            ilu_lag: 1,
            use_limiter: false,
            use_lsq_gradients: false,
            max_linear_iters: 0,
        }
    }

    /// The solver configuration a dispatcher team with `nt` workers
    /// runs this request under: the paper's optimized kernels with
    /// `ExecMode::Auto`, so the PR 6 cost model picks serial vs team
    /// per solve, plus the tenant's discretization knobs.
    pub fn opt_config(&self, nt: usize) -> OptConfig {
        let mut cfg = OptConfig::optimized(nt);
        cfg.ilu_fill = self.ilu_fill;
        cfg.ilu_lag = self.ilu_lag;
        cfg.use_limiter = self.use_limiter;
        cfg.use_lsq_gradients = self.use_lsq_gradients;
        cfg
    }

    /// The ΨTC driver configuration for this request.
    pub fn ptc_config(&self) -> PtcConfig {
        let mut cfg = PtcConfig {
            dt0: self.dt0,
            rtol: self.rtol,
            max_steps: self.max_steps,
            ..Default::default()
        };
        if self.max_linear_iters > 0 {
            cfg.gmres.max_iters = self.max_linear_iters;
        }
        cfg
    }

    /// Cache key of the *prepared app* this request needs: everything
    /// that shapes the expensive immutable artifacts (mesh build + RCM,
    /// dual metrics, partitions/tilings, ILU pattern, schedules). Two
    /// requests with equal prep keys can share one `Fun3dApp` instance
    /// bitwise-safely; ΨTC knobs (`rtol`, `max_steps`, `dt0`) are per
    /// solve and deliberately excluded.
    pub fn prep_key(&self, nt: usize) -> u64 {
        let mut h = fnv1a(self.mesh.name().as_bytes());
        h = fnv1a_word(h, nt as u64);
        h = fnv1a_word(h, self.ilu_fill as u64);
        h = fnv1a_word(h, self.ilu_lag as u64);
        h = fnv1a_word(h, self.use_limiter as u64);
        h = fnv1a_word(h, self.use_lsq_gradients as u64);
        h
    }

    /// Cache key of the *first ILU factors* of this request's solve.
    /// ΨTC's first preconditioner build happens at `dt = dt0` on the
    /// free-stream state, and factorization is serial, so the factors
    /// are a pure function of (discretization, `dt0`) — independent of
    /// the team's thread count. The key extends [`SolveRequest::prep_key`]
    /// at `nt = 0` (a sentinel no team uses) with the `dt0` bits.
    pub fn factor_key(&self) -> u64 {
        fnv1a_word(self.prep_key(0), self.dt0.to_bits())
    }

    /// Parses one NDJSON request line. The error is the rejection the
    /// service returns verbatim (`bad_request` with a human detail).
    pub fn parse(line: &str) -> Result<SolveRequest, String> {
        let v = Json::parse(line).map_err(|e| format!("malformed JSON: {e}"))?;
        let tenant = v
            .get("tenant")
            .and_then(Json::as_str)
            .ok_or("missing string field 'tenant'")?
            .to_string();
        if tenant.is_empty() {
            return Err("'tenant' must be non-empty".into());
        }
        let mesh_name = v
            .get("mesh")
            .and_then(Json::as_str)
            .ok_or("missing string field 'mesh'")?;
        let mesh = MeshPreset::parse(mesh_name)
            .ok_or_else(|| format!("unknown mesh preset '{mesh_name}'"))?;
        let mut req = SolveRequest::new(tenant, mesh);
        if let Some(x) = opt_f64(&v, "rtol")? {
            if !(x > 0.0) {
                return Err("'rtol' must be > 0".into());
            }
            req.rtol = x;
        }
        if let Some(x) = opt_f64(&v, "dt0")? {
            if !(x > 0.0) {
                return Err("'dt0' must be > 0".into());
            }
            req.dt0 = x;
        }
        if let Some(x) = opt_usize(&v, "max_steps")? {
            if x == 0 {
                return Err("'max_steps' must be >= 1".into());
            }
            req.max_steps = x;
        }
        if let Some(x) = opt_usize(&v, "ilu_fill")? {
            if x > 3 {
                return Err("'ilu_fill' must be <= 3".into());
            }
            req.ilu_fill = x;
        }
        if let Some(x) = opt_usize(&v, "ilu_lag")? {
            if x == 0 {
                return Err("'ilu_lag' must be >= 1".into());
            }
            req.ilu_lag = x;
        }
        if let Some(x) = opt_usize(&v, "max_linear_iters")? {
            req.max_linear_iters = x;
        }
        if let Some(b) = opt_bool(&v, "limiter")? {
            req.use_limiter = b;
        }
        if let Some(b) = opt_bool(&v, "lsq_gradients")? {
            req.use_lsq_gradients = b;
        }
        Ok(req)
    }

    /// Renders the request as one NDJSON line (the `load_gen` emitter
    /// and the round-trip tests).
    pub fn render(&self) -> String {
        Json::obj(vec![
            ("tenant", Json::str(&self.tenant)),
            ("mesh", Json::str(self.mesh.name())),
            ("rtol", Json::num(self.rtol)),
            ("max_steps", Json::num(self.max_steps as f64)),
            ("dt0", Json::num(self.dt0)),
            ("ilu_fill", Json::num(self.ilu_fill as f64)),
            ("ilu_lag", Json::num(self.ilu_lag as f64)),
            ("max_linear_iters", Json::num(self.max_linear_iters as f64)),
            ("limiter", Json::Bool(self.use_limiter)),
            ("lsq_gradients", Json::Bool(self.use_lsq_gradients)),
        ])
        .render()
    }
}

fn opt_f64(v: &Json, key: &str) -> Result<Option<f64>, String> {
    match v.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(x) => x
            .as_f64()
            .filter(|x| x.is_finite())
            .map(Some)
            .ok_or_else(|| format!("'{key}' must be a finite number")),
    }
}

fn opt_usize(v: &Json, key: &str) -> Result<Option<usize>, String> {
    match opt_f64(v, key)? {
        None => Ok(None),
        Some(x) if x >= 0.0 && x.fract() == 0.0 => Ok(Some(x as usize)),
        Some(_) => Err(format!("'{key}' must be a non-negative integer")),
    }
}

fn opt_bool(v: &Json, key: &str) -> Result<Option<bool>, String> {
    match v.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(Json::Bool(b)) => Ok(Some(*b)),
        Some(_) => Err(format!("'{key}' must be a boolean")),
    }
}

/// Renders a completed solve as one NDJSON reply line.
pub fn render_reply(r: &SolveReply) -> String {
    Json::obj(vec![
        ("ok", Json::Bool(true)),
        ("tenant", Json::str(&r.tenant)),
        ("solve_id", Json::num(r.solve_id as f64)),
        ("converged", Json::Bool(r.converged)),
        ("steps", Json::num(r.steps as f64)),
        ("linear_iters", Json::num(r.linear_iters as f64)),
        ("res", Json::num(r.res)),
        ("exec", Json::str(r.exec)),
        ("nt", Json::num(r.nt as f64)),
        ("team", Json::num(r.team as f64)),
        ("cache", Json::str(r.cache.slug())),
        ("queue_ms", Json::num(r.queue_ms)),
        ("wall_ms", Json::num(r.wall_ms)),
        ("state_fnv", Json::str(format!("{:016x}", r.state_fnv))),
    ])
    .render()
}

/// Renders an admission rejection as one NDJSON reply line.
pub fn render_reject(r: &Rejected) -> String {
    Json::obj(vec![
        ("ok", Json::Bool(false)),
        ("tenant", Json::str(&r.tenant)),
        ("reason", Json::str(r.reason.slug())),
        ("detail", Json::str(&r.detail)),
        ("queue_depth", Json::num(r.queue_depth as f64)),
    ])
    .render()
}

/// Parses a reply line back into `(ok, object)` — used by `load_gen`
/// and the transport tests to validate the protocol strictly.
pub fn parse_reply(line: &str) -> Result<(bool, Json), String> {
    let v = Json::parse(line).map_err(|e| format!("malformed reply: {e}"))?;
    match v.get("ok") {
        Some(Json::Bool(ok)) => Ok((*ok, v)),
        _ => Err("reply missing boolean 'ok'".into()),
    }
}

/// The reject line for a request that failed to parse (no `SolveRequest`
/// exists yet, so the tenant may be unknown).
pub fn bad_request_line(detail: &str) -> String {
    render_reject(&Rejected {
        tenant: String::new(),
        reason: RejectReason::BadRequest,
        detail: detail.to_string(),
        queue_depth: 0,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_round_trips() {
        let mut req = SolveRequest::new("acme", MeshPreset::Small);
        req.rtol = 1e-4;
        req.max_steps = 7;
        req.ilu_lag = 3;
        req.max_linear_iters = 12;
        req.use_limiter = true;
        let back = SolveRequest::parse(&req.render()).unwrap();
        assert_eq!(req, back);
    }

    #[test]
    fn minimal_request_uses_defaults() {
        let req = SolveRequest::parse(r#"{"tenant":"t","mesh":"tiny"}"#).unwrap();
        assert_eq!(req, SolveRequest::new("t", MeshPreset::Tiny));
    }

    #[test]
    fn bad_requests_are_structured_errors() {
        for (line, needle) in [
            ("not json", "malformed"),
            (r#"{"mesh":"tiny"}"#, "tenant"),
            (r#"{"tenant":"t"}"#, "mesh"),
            (r#"{"tenant":"t","mesh":"pyramid"}"#, "unknown mesh"),
            (r#"{"tenant":"t","mesh":"tiny","rtol":0}"#, "rtol"),
            (r#"{"tenant":"t","mesh":"tiny","max_steps":0.5}"#, "max_steps"),
            (r#"{"tenant":"t","mesh":"tiny","ilu_lag":0}"#, "ilu_lag"),
            (r#"{"tenant":"","mesh":"tiny"}"#, "tenant"),
        ] {
            let err = SolveRequest::parse(line).unwrap_err();
            assert!(err.contains(needle), "{line}: {err}");
        }
    }

    #[test]
    fn keys_separate_what_must_not_alias() {
        let a = SolveRequest::new("t", MeshPreset::Tiny);
        let mut b = a.clone();
        b.ilu_fill = 0;
        assert_ne!(a.prep_key(1), b.prep_key(1), "fill shapes the pattern");
        assert_ne!(a.factor_key(), b.factor_key());
        let mut c = a.clone();
        c.dt0 = 4.0;
        assert_eq!(a.prep_key(1), c.prep_key(1), "dt0 is per-solve");
        assert_ne!(a.factor_key(), c.factor_key(), "dt0 shifts the factors");
        assert_ne!(a.prep_key(1), a.prep_key(2), "nt shapes partitions");
    }

    #[test]
    fn tenant_is_not_part_of_the_cache_keys() {
        let a = SolveRequest::new("alice", MeshPreset::Tiny);
        let b = SolveRequest::new("bob", MeshPreset::Tiny);
        assert_eq!(a.prep_key(2), b.prep_key(2));
        assert_eq!(a.factor_key(), b.factor_key());
    }
}
