//! `fun3d-serve` — the solver service over NDJSON.
//!
//! Two transports share one [`Service`]:
//!
//! * **stdin/stdout** (default): one JSON request per line in, one JSON
//!   reply per line out, in completion order. EOF drains and exits.
//! * **Unix socket** (`--socket PATH`): accepts concurrent connections,
//!   one thread per connection, same line protocol per connection.
//!   `SIGINT`-free shutdown: send the literal line `shutdown` on any
//!   connection.
//!
//! ```text
//! usage: fun3d-serve [--socket PATH] [--metrics-socket PATH] [--teams N]
//!                    [--team-threads N] [--queue-cap N] [--tenant-cap N]
//!                    [--stats]
//! ```
//!
//! Replies are [`fun3d_serve::wire::render_reply`] lines (`"ok":true`)
//! or [`fun3d_serve::wire::render_reject`] lines (`"ok":false` with a
//! structured reason) — admission rejects answer on the wire instead of
//! closing the connection, so load generators can count shed requests.
//!
//! Live observability (either transport):
//!
//! * the in-band request `{"cmd":"stats"}` answers one JSON line with
//!   live per-tenant latency percentiles, queue/inflight gauges, cache
//!   hit rate, and the full metrics snapshot;
//! * `--metrics-socket PATH` serves the metrics plane out-of-band: a
//!   client connects, sends one line (`prom` for Prometheus text
//!   exposition, anything else for the JSON snapshot), and reads the
//!   payload until EOF. `metrics_view --socket PATH` renders it.

use fun3d_serve::wire::{self, SolveRequest};
use fun3d_serve::{ServeConfig, Service};
use fun3d_util::telemetry::json::Json;
use fun3d_util::telemetry::metrics;
use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cfg = ServeConfig::host_default();
    let mut socket: Option<String> = None;
    let mut metrics_socket: Option<String> = None;
    let mut stats = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut num = |name: &str| -> usize {
            it.next()
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| fail(&format!("{name} needs a positive integer")))
        };
        match arg.as_str() {
            "--socket" => {
                socket = Some(
                    it.next()
                        .unwrap_or_else(|| fail("--socket needs a path"))
                        .clone(),
                )
            }
            "--metrics-socket" => {
                metrics_socket = Some(
                    it.next()
                        .unwrap_or_else(|| fail("--metrics-socket needs a path"))
                        .clone(),
                )
            }
            "--teams" => cfg.teams = num("--teams").max(1),
            "--team-threads" => cfg.team_threads = num("--team-threads").max(1),
            "--queue-cap" => cfg.queue_cap = num("--queue-cap").max(1),
            "--tenant-cap" => cfg.tenant_queue_cap = num("--tenant-cap").max(1),
            "--stats" => stats = true,
            "--help" | "-h" => {
                println!(
                    "usage: fun3d-serve [--socket PATH] [--metrics-socket PATH] [--teams N] \
                     [--team-threads N] [--queue-cap N] [--tenant-cap N] [--stats]"
                );
                return;
            }
            other => fail(&format!("unknown flag {other}")),
        }
    }

    eprintln!(
        "fun3d-serve: {} team(s) x {} thread(s), queue cap {} (per tenant {}), cache {}",
        cfg.teams,
        cfg.team_threads,
        cfg.queue_cap,
        cfg.tenant_queue_cap,
        if cfg.cache { "on" } else { "off" }
    );
    let svc = Service::start(cfg);
    if let Some(path) = metrics_socket {
        serve_metrics_socket(path);
    }
    match socket {
        Some(path) => serve_socket(svc, &path, stats),
        None => serve_stdio(svc, stats),
    }
}

/// Out-of-band metrics plane: a daemon listener that answers each
/// connection with one snapshot and closes. The client speaks first —
/// one line, `prom` for Prometheus text exposition, anything else
/// (conventionally `json`) for the strict-JSON snapshot.
fn serve_metrics_socket(path: String) {
    let _ = std::fs::remove_file(&path);
    let listener = UnixListener::bind(&path)
        .unwrap_or_else(|e| fail(&format!("cannot bind metrics socket {path}: {e}")));
    eprintln!("fun3d-serve: metrics on {path}");
    std::thread::spawn(move || {
        for stream in listener.incoming() {
            let mut stream = match stream {
                Ok(s) => s,
                Err(_) => break,
            };
            let mut first = String::new();
            let mut reader = BufReader::new(match stream.try_clone() {
                Ok(s) => s,
                Err(_) => continue,
            });
            if reader.read_line(&mut first).is_err() {
                continue;
            }
            let snap = metrics::snapshot();
            let payload = if first.trim() == "prom" {
                metrics::render_prometheus(&snap)
            } else {
                let mut s = metrics::snapshot_json(&snap).render();
                s.push('\n');
                s
            };
            let _ = stream.write_all(payload.as_bytes());
        }
    });
}

fn fail(msg: &str) -> ! {
    eprintln!("fun3d-serve: {msg}");
    std::process::exit(2)
}

/// Line-at-a-time over stdin/stdout. Replies stream in completion
/// order from a collector thread so a slow solve never blocks reading
/// the next request.
fn serve_stdio(svc: Service, stats: bool) {
    let (tx, rx) = std::sync::mpsc::channel::<String>();
    let writer = std::thread::spawn(move || {
        let stdout = std::io::stdout();
        for line in rx {
            let mut out = stdout.lock();
            let _ = writeln!(out, "{line}");
            let _ = out.flush();
        }
    });
    let stdin = std::io::stdin();
    let mut joiners = Vec::new();
    for line in stdin.lock().lines() {
        let line = match line {
            Ok(l) => l,
            Err(_) => break,
        };
        if line.trim().is_empty() {
            continue;
        }
        joiners.push(dispatch_line(&svc, &line, tx.clone()));
    }
    for j in joiners.into_iter().flatten() {
        let _ = j.join();
    }
    drop(tx);
    let _ = writer.join();
    finish(svc, stats);
}

/// One thread per connection; each connection gets its replies back on
/// its own stream, in completion order for that connection.
fn serve_socket(svc: Service, path: &str, stats: bool) {
    let _ = std::fs::remove_file(path);
    let listener = UnixListener::bind(path)
        .unwrap_or_else(|e| fail(&format!("cannot bind {path}: {e}")));
    eprintln!("fun3d-serve: listening on {path}");
    let svc = Arc::new(svc);
    let stop = Arc::new(AtomicBool::new(false));
    let mut conns = Vec::new();
    for stream in listener.incoming() {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        let stream = match stream {
            Ok(s) => s,
            Err(_) => break,
        };
        let svc = Arc::clone(&svc);
        let stop = Arc::clone(&stop);
        let path = path.to_string();
        conns.push(std::thread::spawn(move || {
            serve_conn(&svc, stream, &stop);
            if stop.load(Ordering::SeqCst) {
                // Self-connect to unblock the accept loop.
                let _ = UnixStream::connect(&path);
            }
        }));
    }
    for c in conns {
        let _ = c.join();
    }
    let _ = std::fs::remove_file(path);
    let svc = Arc::into_inner(svc).expect("all connections joined");
    finish(svc, stats);
}

fn serve_conn(svc: &Service, stream: UnixStream, stop: &AtomicBool) {
    let reader = BufReader::new(match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    });
    let (tx, rx) = std::sync::mpsc::channel::<String>();
    let mut write_half = stream;
    let writer = std::thread::spawn(move || {
        for line in rx {
            if writeln!(write_half, "{line}").is_err() {
                break;
            }
        }
    });
    let mut joiners = Vec::new();
    for line in reader.lines() {
        let line = match line {
            Ok(l) => l,
            Err(_) => break,
        };
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        if trimmed == "shutdown" {
            stop.store(true, Ordering::SeqCst);
            break;
        }
        joiners.push(dispatch_line(svc, trimmed, tx.clone()));
    }
    for j in joiners.into_iter().flatten() {
        let _ = j.join();
    }
    drop(tx);
    let _ = writer.join();
}

/// Parses one request line and routes the outcome to `tx`: control
/// commands (`{"cmd":"stats"}`) answer synchronously from live
/// metrics; parse errors and admission rejects answer immediately;
/// admitted jobs get a waiter thread that forwards the reply when the
/// solve lands.
fn dispatch_line(
    svc: &Service,
    line: &str,
    tx: std::sync::mpsc::Sender<String>,
) -> Option<std::thread::JoinHandle<()>> {
    if let Ok(doc) = Json::parse(line) {
        if let Some(cmd) = doc.get("cmd").and_then(|c| c.as_str()) {
            match cmd {
                "stats" => {
                    let _ = tx.send(svc.stats_json().render());
                }
                other => {
                    let _ = tx.send(wire::bad_request_line(&format!("unknown cmd {other:?}")));
                }
            }
            return None;
        }
    }
    let req = match SolveRequest::parse(line) {
        Ok(r) => r,
        Err(e) => {
            let _ = tx.send(wire::bad_request_line(&e));
            return None;
        }
    };
    match svc.submit(req) {
        Ok(handle) => Some(std::thread::spawn(move || {
            let reply = handle.wait();
            let _ = tx.send(wire::render_reply(&reply));
        })),
        Err(reject) => {
            let _ = tx.send(wire::render_reject(&reject));
            None
        }
    }
}

fn finish(svc: Service, stats: bool) {
    let s = svc.shutdown();
    if stats {
        eprintln!(
            "fun3d-serve: completed {} rejected {} | pool high-water {}/{} | \
             cache hit rate {:.3} (app {}/{}, factor {}/{})",
            s.completed,
            s.rejected,
            s.pool_high_water,
            s.worker_budget,
            s.cache.combined_hit_rate(),
            s.cache.app.hits,
            s.cache.app.hits + s.cache.app.misses,
            s.cache.factor.hits,
            s.cache.factor.hits + s.cache.factor.misses,
        );
    }
}
