//! Per-request trace assembly acceptance test: a 2-team service under
//! concurrent multi-tenant load, then [`trace::assemble`] for every
//! reply. Each assembled timeline must carry the full five-stage
//! admit→dispatch→solve→reply ladder in monotone order, resolve the
//! right tenant (hash *and* name, via the per-tenant live histograms),
//! and contain no flight events borrowed from any other request — the
//! isolation that makes a trace trustworthy evidence for one tenant's
//! latency complaint while the service keeps running others.

use fun3d_mesh::generator::MeshPreset;
use fun3d_serve::wire::SolveRequest;
use fun3d_serve::{tenant_hash, ServeConfig, Service, SolveReply};
use fun3d_util::telemetry::json::Json;
use fun3d_util::telemetry::{flight, metrics, trace};
use std::collections::HashSet;

fn req(tenant: &str) -> SolveRequest {
    let mut req = SolveRequest::new(tenant, MeshPreset::Tiny);
    req.max_steps = 3;
    req.rtol = 1e-3;
    req
}

const STAGE_ORDER: [&str; 5] = ["admit", "dispatch", "solve_start", "solve_end", "reply"];

#[test]
fn every_reply_assembles_an_isolated_monotone_timeline() {
    flight::set_enabled(true);
    metrics::set_enabled(true);

    let svc = Service::start(ServeConfig {
        teams: 2,
        team_threads: 2,
        queue_cap: 64,
        tenant_queue_cap: 32,
        app_cache_per_team: 2,
        factor_cache_cap: 8,
        cache: true,
        tenant_weights: Vec::new(),
    });

    // Two tenants, three jobs each, submitted from concurrent threads
    // so solves overlap across the two teams.
    let tenants = ["trace-a", "trace-b"];
    let replies: Vec<(String, SolveReply)> = std::thread::scope(|scope| {
        let svc = &svc;
        let handles: Vec<_> = tenants
            .iter()
            .map(|tenant| {
                scope.spawn(move || {
                    (0..3)
                        .map(|_| {
                            let h = svc.submit(req(tenant)).expect("queue has headroom");
                            (tenant.to_string(), h.wait())
                        })
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles.into_iter().flat_map(|h| h.join().unwrap()).collect()
    });
    assert_eq!(replies.len(), 6);
    let all_ids: HashSet<u64> = replies.iter().map(|(_, r)| r.solve_id).collect();
    assert_eq!(all_ids.len(), 6, "solve ids must be distinct");

    for (tenant, reply) in &replies {
        let t = trace::assemble(flight::SolveId(reply.solve_id))
            .unwrap_or_else(|| panic!("no trace for solve {}", reply.solve_id));
        assert_eq!(t.solve, reply.solve_id);

        // The full stage ladder, in order, with monotone timestamps.
        let names: Vec<&str> = t.stages.iter().map(|s| s.name).collect();
        assert_eq!(names, STAGE_ORDER, "solve {} stage ladder", reply.solve_id);
        for w in t.stages.windows(2) {
            assert!(
                w[0].t_ns <= w[1].t_ns,
                "solve {}: stage {} at {} after {} at {}",
                reply.solve_id,
                w[0].name,
                w[0].t_ns,
                w[1].name,
                w[1].t_ns
            );
        }

        // Tenant resolution: the flight-carried hash and the name
        // recovered from the per-tenant live histograms.
        assert_eq!(t.tenant, Some(tenant_hash(tenant)));
        assert_eq!(t.tenant_name.as_deref(), Some(tenant.as_str()));

        // Isolation: not one event borrowed from another request.
        assert!(!t.events.is_empty(), "trace should carry flight events");
        for e in &t.events {
            assert_eq!(
                e.solve, reply.solve_id,
                "event {:?} from solve {} leaked into solve {}",
                e.kind, e.solve, reply.solve_id
            );
        }

        // This tenant's stage histograms rode along; the other
        // tenant's did not.
        let other = tenants.iter().find(|t2| *t2 != tenant).unwrap();
        assert!(
            t.hists.iter().any(|h| h.name.contains(tenant.as_str())),
            "trace missing {tenant}'s stage histograms"
        );
        assert!(
            !t.hists.iter().any(|h| h.name.contains(other)),
            "trace for {tenant} carries {other}'s histograms"
        );

        // Both renderings hold together: the JSON round-trips with the
        // schema tag, the text timeline names every stage.
        let doc = Json::parse(&t.to_json().render()).expect("trace JSON parses");
        assert_eq!(
            doc.get("schema").and_then(Json::as_str),
            Some(trace::TRACE_SCHEMA)
        );
        let text = t.render_text();
        for s in STAGE_ORDER {
            assert!(text.contains(s), "text timeline missing stage {s}");
        }
    }

    svc.shutdown();
}
