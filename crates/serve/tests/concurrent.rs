//! Concurrency acceptance test for the serve tier: many submitter
//! threads pushing a mixed tiny/small workload through a multi-team
//! service must (a) produce bitwise-identical solutions to standalone
//! runs of the same requests — serial teams against serial runs,
//! parallel teams against same-width runs (reductions combine
//! per-thread partials in thread order, so results are deterministic
//! per width, not across widths) — (b) tag every job into the flight
//! recorder under a distinct `SolveId` with the right tenant hash, and
//! (c) never lease more pool workers than the configured budget.

use fun3d_core::{FlowConditions, Fun3dApp};
use fun3d_mesh::generator::MeshPreset;
use fun3d_serve::service::hash_state;
use fun3d_serve::wire::SolveRequest;
use fun3d_serve::{tenant_hash, ServeConfig, Service, SolveReply};
use fun3d_util::telemetry::flight;
use std::collections::HashMap;

fn tiny_req(tenant: &str) -> SolveRequest {
    let mut req = SolveRequest::new(tenant, MeshPreset::Tiny);
    req.max_steps = 4;
    req.rtol = 1e-3;
    req
}

fn small_req(tenant: &str) -> SolveRequest {
    let mut req = SolveRequest::new(tenant, MeshPreset::Small);
    req.max_steps = 2;
    req.rtol = 1e-3;
    req
}

/// A standalone, service-free solve of `req` at width `nt` — the
/// ground truth the service must reproduce bitwise.
fn reference(req: &SolveRequest, nt: usize) -> (u64, Vec<f64>) {
    let mut mesh = req.mesh.build();
    Fun3dApp::rcm_reorder(&mut mesh);
    let mut app = Fun3dApp::new(mesh, FlowConditions::default(), req.opt_config(nt));
    let (u, stats) = app.run(&req.ptc_config());
    (hash_state(&u), stats.res_history)
}

fn cfg(team_threads: usize) -> ServeConfig {
    ServeConfig {
        teams: 2,
        team_threads,
        queue_cap: 64,
        tenant_queue_cap: 32,
        app_cache_per_team: 2,
        factor_cache_cap: 8,
        cache: true,
        tenant_weights: vec![("alpha".into(), 2)],
    }
}

/// 4 submitter threads × 3 jobs: ten tiny solves and two small ones,
/// spread over three tenants. Returns `(tenant, is_small, reply)`.
fn submit_mixed_load(svc: &Service) -> Vec<(String, bool, SolveReply)> {
    let tenants = ["alpha", "beta", "gamma", "alpha"];
    std::thread::scope(|scope| {
        let handles: Vec<_> = tenants
            .iter()
            .enumerate()
            .map(|(i, tenant)| {
                scope.spawn(move || {
                    let mut replies = Vec::new();
                    for j in 0..3 {
                        let req = if (i, j) == (0, 0) || (i, j) == (1, 2) {
                            small_req(tenant)
                        } else {
                            tiny_req(tenant)
                        };
                        let is_small = req.mesh == MeshPreset::Small;
                        let handle = svc.submit(req).expect("queue is far from its caps");
                        replies.push((tenant.to_string(), is_small, handle.wait()));
                    }
                    replies
                })
            })
            .collect();
        handles.into_iter().flat_map(|h| h.join().unwrap()).collect()
    })
}

fn check_bitwise(
    replies: &[(String, bool, SolveReply)],
    tiny_ref: &(u64, Vec<f64>),
    small_ref: &(u64, Vec<f64>),
    label: &str,
) {
    assert_eq!(replies.len(), 12);
    for (tenant, is_small, reply) in replies {
        let (want_fnv, want_hist) = if *is_small { small_ref } else { tiny_ref };
        assert_eq!(
            reply.state_fnv, *want_fnv,
            "[{label}] tenant {tenant} (small={is_small}) diverged from the reference"
        );
        assert_eq!(&reply.res_history, want_hist, "[{label}] history diverged");
        assert_eq!(&reply.tenant, tenant);
        assert!(reply.team < 2);
    }
}

#[test]
fn concurrent_mixed_load_is_bitwise_identical_and_budgeted() {
    flight::set_enabled(true);

    // Ground truth per request shape and width (tenant does not affect
    // the solution).
    let tiny_serial = reference(&tiny_req("ref"), 1);
    let small_serial = reference(&small_req("ref"), 1);
    let tiny_team = reference(&tiny_req("ref"), 2);
    let small_team = reference(&small_req("ref"), 2);

    // Phase 1 — serial teams: concurrent submission + scheduling must
    // reproduce plain serial runs bitwise.
    let svc = Service::start(cfg(1));
    let serial_replies = submit_mixed_load(&svc);
    check_bitwise(&serial_replies, &tiny_serial, &small_serial, "serial teams");
    let serial_stats = svc.shutdown();
    assert_eq!(serial_stats.completed, 12);

    // Phase 2 — 2-wide teams: same workload, checked against
    // standalone runs at the teams' width.
    let team_cfg = cfg(2);
    let budget = team_cfg.worker_budget();
    let svc = Service::start(team_cfg);
    let team_replies = submit_mixed_load(&svc);
    check_bitwise(&team_replies, &tiny_team, &small_team, "2-wide teams");

    // (b) Distinct SolveIds across *both* phases, each carrying a
    // serve_job flight event tagged with the right tenant hash.
    let all: Vec<_> = serial_replies.iter().chain(team_replies.iter()).collect();
    let mut ids: Vec<u64> = all.iter().map(|(_, _, r)| r.solve_id).collect();
    ids.sort_unstable();
    let total = ids.len();
    ids.dedup();
    assert_eq!(ids.len(), total, "solve ids must be distinct per job");

    let log = flight::snapshot();
    let mut tagged: HashMap<u64, u64> = HashMap::new();
    for ev in &log.events {
        if let flight::EventKind::ServeJob { tenant, .. } = ev.kind {
            tagged.insert(ev.solve, tenant);
        }
    }
    for (tenant, _, reply) in &all {
        assert_eq!(
            tagged.get(&reply.solve_id),
            Some(&tenant_hash(tenant)),
            "solve {} should carry tenant tag for {tenant}",
            reply.solve_id
        );
    }
    assert!(log
        .events
        .iter()
        .any(|e| matches!(e.kind, flight::EventKind::ServeAdmit { .. })));

    // (c) The scheduler never leased more workers than configured.
    let stats = svc.shutdown();
    assert_eq!(stats.completed, 12);
    assert_eq!(stats.worker_budget, budget);
    assert!(
        stats.pool_high_water <= budget,
        "pool high-water {} exceeded budget {budget}",
        stats.pool_high_water
    );
    // Repeated shapes must have actually exercised the artifact cache.
    let cache = stats.cache;
    assert!(
        cache.app.hits + cache.factor.hits > 0,
        "repeated shapes should hit the artifact cache"
    );
}
