//! Microbenchmarks backing the figure harnesses: flux-kernel variants,
//! TRSV/ILU strategies, SpMV (BCSR vs scalar CSR), vector primitives and
//! the partitioner. Runs on the in-tree `fun3d_util::microbench` runner
//! (`harness = false`), so `cargo bench -p fun3d-bench` works offline
//! with zero external crates; pass a substring to filter, e.g.
//! `cargo bench -p fun3d-bench -- flux`.
//!
//! Sizes are deliberately small (the container has one core); the
//! statistically robust *ratios* between variants are what matters —
//! hence median/MAD rather than mean/stddev.

use fun3d_core::geom::NodeSoa;
use fun3d_core::{flux, EdgeGeom, FlowConditions, NodeAos};
use fun3d_mesh::generator::MeshPreset;
use fun3d_mesh::DualMesh;
use fun3d_partition::{partition_graph, MultilevelConfig};
use fun3d_solver::vecops;
use fun3d_sparse::{csr::Csr, ilu, trsv, Bcsr4, TempBuffer};
use fun3d_util::microbench::{BatchSize, Bench};
use fun3d_util::telemetry::{self, KernelCounts, Level};
use fun3d_util::Rng64;

fn fixture() -> (EdgeGeom, NodeAos, NodeSoa) {
    let mut mesh = MeshPreset::Small.build();
    fun3d_core::Fun3dApp::rcm_reorder(&mut mesh);
    let dual = DualMesh::build(&mesh);
    let geom = EdgeGeom::build(&mesh, &dual);
    let cond = FlowConditions::default();
    let mut node = NodeAos::zeros(mesh.nvertices());
    node.set_freestream(&cond.qinf);
    let mut rng = Rng64::new(1);
    for x in node.q.iter_mut() {
        *x += rng.range_f64(-0.05, 0.05);
    }
    let bc = fun3d_core::bc::BcData::build(&dual);
    fun3d_core::gradient::green_gauss(&geom, &bc, &dual.vol, &mut node);
    let soa = NodeSoa::from_aos(&node);
    (geom, node, soa)
}

fn bench_flux(c: &mut Bench) {
    let (geom, node, soa) = fixture();
    let n4 = node.n * 4;
    let mut g = c.group("flux");
    g.sample_size(20);
    g.bench_function("serial_soa", |b| {
        b.iter_batched_ref(
            || vec![0.0; n4],
            |res| flux::serial_soa(&geom, &soa, 1.0, res),
            BatchSize::LargeInput,
        )
    });
    g.bench_function("serial_aos", |b| {
        b.iter_batched_ref(
            || vec![0.0; n4],
            |res| flux::serial_aos(&geom, &node, 1.0, res),
            BatchSize::LargeInput,
        )
    });
    g.bench_function("serial_aos_simd", |b| {
        b.iter_batched_ref(
            || vec![0.0; n4],
            |res| flux::serial_aos_simd(&geom, &node, 1.0, res),
            BatchSize::LargeInput,
        )
    });
    g.bench_function("serial_aos_simd_prefetch", |b| {
        b.iter_batched_ref(
            || vec![0.0; n4],
            |res| flux::serial_aos_simd_prefetch(&geom, &node, 1.0, res),
            BatchSize::LargeInput,
        )
    });
    g.finish();
}

/// Prefetch-distance ablation: the same SIMD+prefetch flux kernel with
/// the lookahead swept across 4/8/16/32 edges. 16 is the shipped
/// [`flux::PREFETCH_DIST`]; the sweep documents how flat (or not) the
/// optimum is on this host.
fn bench_prefetch_dist(c: &mut Bench) {
    let (geom, node, _) = fixture();
    let n4 = node.n * 4;
    let mut g = c.group("prefetch_dist");
    g.sample_size(20);
    for dist in [4usize, 8, 16, 32] {
        g.bench_function(&format!("dist_{dist}"), |b| {
            b.iter_batched_ref(
                || vec![0.0; n4],
                |res| flux::serial_aos_simd_prefetch_dist(&geom, &node, 1.0, res, dist),
                BatchSize::LargeInput,
            )
        });
    }
    g.finish();
}

/// Tiled (cache-blocked) edge kernels against their streaming
/// counterparts, in both execution modes: `staged` pays the scratch-pad
/// copy, `direct` gathers straight from the global arrays in tile
/// order. The spread between them is the staging overhead this host's
/// LLC residency makes visible.
fn bench_tiled(c: &mut Bench) {
    use fun3d_core::flux::TileExec;
    let (geom, node, _) = fixture();
    let n4 = node.n * 4;
    let tiling = fun3d_partition::EdgeTiling::build(
        node.n,
        &geom.edges,
        &fun3d_partition::TilingConfig::for_machine(&fun3d_machine::MachineSpec::host()),
    );
    let tg = fun3d_core::TiledGeom::new(&tiling, &geom);
    let mut g = c.group("flux_tiled");
    g.sample_size(20);
    g.bench_function("direct", |b| {
        b.iter_batched_ref(
            || vec![0.0; n4],
            |res| flux::tiled(&tiling, &tg, &node, 1.0, TileExec::Direct, res),
            BatchSize::LargeInput,
        )
    });
    g.bench_function("staged", |b| {
        b.iter_batched_ref(
            || vec![0.0; n4],
            |res| flux::tiled(&tiling, &tg, &node, 1.0, TileExec::Staged, res),
            BatchSize::LargeInput,
        )
    });
    g.finish();

    // Gradient needs the bc/vol fixture the flux path doesn't carry.
    let mut mesh = MeshPreset::Small.build();
    fun3d_core::Fun3dApp::rcm_reorder(&mut mesh);
    let dual = DualMesh::build(&mesh);
    let bc = fun3d_core::bc::BcData::build(&dual);
    let mut g = c.group("gradient_tiled");
    g.sample_size(20);
    g.bench_function("serial", |b| {
        b.iter_batched_ref(
            || node.clone(),
            |n| fun3d_core::gradient::green_gauss(&geom, &bc, &dual.vol, n),
            BatchSize::LargeInput,
        )
    });
    g.bench_function("direct", |b| {
        b.iter_batched_ref(
            || node.clone(),
            |n| {
                fun3d_core::gradient::green_gauss_tiled(
                    &tiling,
                    &tg,
                    &bc,
                    &dual.vol,
                    TileExec::Direct,
                    n,
                )
            },
            BatchSize::LargeInput,
        )
    });
    g.bench_function("staged", |b| {
        b.iter_batched_ref(
            || node.clone(),
            |n| {
                fun3d_core::gradient::green_gauss_tiled(
                    &tiling,
                    &tg,
                    &bc,
                    &dual.vol,
                    TileExec::Staged,
                    n,
                )
            },
            BatchSize::LargeInput,
        )
    });
    g.finish();
}

fn jacobian() -> Bcsr4 {
    let mesh = MeshPreset::Small.build();
    let mut a = Bcsr4::from_edges(mesh.nvertices(), &mesh.edges());
    a.fill_diag_dominant(7);
    a
}

fn bench_recurrences(c: &mut Bench) {
    let a = jacobian();
    let pattern1 = ilu::symbolic_iluk(&a, 1);
    let factors = ilu::factor(&a, &pattern1, TempBuffer::Compressed);
    let n = a.dim();
    let b: Vec<f64> = (0..n).map(|i| (i as f64 * 0.3).sin()).collect();
    let mut g = c.group("recurrences");
    g.sample_size(15);
    g.bench_function("ilu1_full_buffer", |bch| {
        bch.iter(|| std::hint::black_box(ilu::factor(&a, &pattern1, TempBuffer::Full)))
    });
    g.bench_function("ilu1_compressed_buffer", |bch| {
        bch.iter(|| std::hint::black_box(ilu::factor(&a, &pattern1, TempBuffer::Compressed)))
    });
    g.bench_function("ilu0", |bch| bch.iter(|| std::hint::black_box(ilu::ilu0(&a))));
    g.bench_function("trsv", |bch| {
        bch.iter(|| std::hint::black_box(trsv::solve(&factors, &b)))
    });
    g.finish();
}

fn bench_spmv(c: &mut Bench) {
    let a = jacobian();
    let scalar = Csr::from_bcsr(&a);
    let n = a.dim();
    let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.17).cos()).collect();
    let mut y = vec![0.0; n];
    let mut g = c.group("spmv");
    g.sample_size(30);
    g.bench_function("bcsr4", |b| b.iter(|| a.spmv(&x, &mut y)));
    g.bench_function("scalar_csr", |b| b.iter(|| scalar.spmv(&x, &mut y)));
    g.finish();
}

fn bench_vecops(c: &mut Bench) {
    let n = 100_000;
    let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.01).sin()).collect();
    let ys: Vec<Vec<f64>> = (0..4)
        .map(|k| (0..n).map(|i| ((i + k) as f64 * 0.02).cos()).collect())
        .collect();
    let refs: Vec<&[f64]> = ys.iter().map(|v| v.as_slice()).collect();
    let mut out = vec![0.0; 4];
    let mut w = vec![0.0; n];
    let mut g = c.group("vecops");
    g.sample_size(30);
    g.bench_function("mdot4", |b| b.iter(|| vecops::mdot(&x, &refs, &mut out)));
    g.bench_function("maxpy4", |b| {
        b.iter(|| vecops::maxpy(&mut w, &[0.1, 0.2, 0.3, 0.4], &refs))
    });
    g.bench_function("norm2", |b| b.iter(|| std::hint::black_box(vecops::norm2(&x))));
    g.finish();
}

/// Telemetry overhead on the flux kernel: the same instrumented call
/// (one `span` + one `record_kernel` per invocation, exactly what
/// `Fun3dApp::run_flux` does) at `off` versus an uninstrumented baseline
/// and versus the default `counters` level. The off/uninstrumented pair
/// is the <2% acceptance claim; compare their medians in the CSV.
fn bench_telemetry_overhead(c: &mut Bench) {
    let (geom, node, _) = fixture();
    let n4 = node.n * 4;
    let nedges = geom.nedges();
    let mut g = c.group("telemetry");
    g.sample_size(20);
    g.bench_function("flux_uninstrumented", |b| {
        b.iter_batched_ref(
            || vec![0.0; n4],
            |res| flux::serial_aos(&geom, &node, 1.0, res),
            BatchSize::LargeInput,
        )
    });
    telemetry::set_level(Level::Off);
    g.bench_function("flux_instrumented_off", |b| {
        b.iter_batched_ref(
            || vec![0.0; n4],
            |res| {
                let _span = telemetry::span("flux");
                telemetry::record_kernel(
                    "flux",
                    KernelCounts::once(nedges as u64, 0, 0, 0),
                );
                flux::serial_aos(&geom, &node, 1.0, res)
            },
            BatchSize::LargeInput,
        )
    });
    telemetry::set_level(Level::Counters);
    g.bench_function("flux_instrumented_counters", |b| {
        b.iter_batched_ref(
            || vec![0.0; n4],
            |res| {
                let _span = telemetry::span("flux");
                telemetry::record_kernel(
                    "flux",
                    KernelCounts::once(nedges as u64, 0, 0, 0),
                );
                flux::serial_aos(&geom, &node, 1.0, res)
            },
            BatchSize::LargeInput,
        )
    });
    g.finish();
}

/// Flight-recorder overhead: the always-on claim. The same flux call
/// emitting one flight event per invocation (a far higher event rate
/// than the real per-step/per-solve sources) with the recorder enabled
/// (the default) versus disabled, plus the raw cost of one `emit`. The
/// on/off pair must stay within measurement noise — the acceptance
/// criterion `crates/util/tests/flight_overhead.rs` gates.
fn bench_flight_overhead(c: &mut Bench) {
    use fun3d_util::telemetry::flight;
    let (geom, node, _) = fixture();
    let n4 = node.n * 4;
    let mut g = c.group("flight");
    g.sample_size(20);
    flight::set_enabled(false);
    g.bench_function("flux_flight_off", |b| {
        b.iter_batched_ref(
            || vec![0.0; n4],
            |res| {
                flight::emit(flight::EventKind::PtcStep {
                    step: 1,
                    res: 1.0,
                    dt: 2.0,
                    gmres_iters: 3,
                });
                flux::serial_aos(&geom, &node, 1.0, res)
            },
            BatchSize::LargeInput,
        )
    });
    flight::set_enabled(true);
    g.bench_function("flux_flight_on", |b| {
        b.iter_batched_ref(
            || vec![0.0; n4],
            |res| {
                flight::emit(flight::EventKind::PtcStep {
                    step: 1,
                    res: 1.0,
                    dt: 2.0,
                    gmres_iters: 3,
                });
                flux::serial_aos(&geom, &node, 1.0, res)
            },
            BatchSize::LargeInput,
        )
    });
    g.bench_function("emit", |b| {
        b.iter(|| {
            flight::emit(flight::EventKind::PtcStep {
                step: 1,
                res: 1.0,
                dt: 2.0,
                gmres_iters: 3,
            })
        })
    });
    g.finish();
}

/// Metrics-plane overhead: the always-on claim for the histogram
/// record path. The same flux call recording one histogram sample per
/// invocation (a far higher record rate than the real per-request /
/// per-step sources) with metrics enabled (the default) versus
/// disabled, plus the raw cost of one shard `record` and of one full
/// registry snapshot (the collector side a `{"cmd":"stats"}` reply
/// pays). The on/off pair must stay within measurement noise — the
/// acceptance criterion `crates/util/tests/metrics_overhead.rs` gates.
fn bench_metrics_overhead(c: &mut Bench) {
    use fun3d_util::telemetry::metrics;
    let (geom, node, _) = fixture();
    let n4 = node.n * 4;
    let h = metrics::histogram("bench.flux_ns");
    let mut g = c.group("metrics");
    g.sample_size(20);
    metrics::set_enabled(false);
    g.bench_function("flux_metrics_off", |b| {
        b.iter_batched_ref(
            || vec![0.0; n4],
            |res| {
                h.record(1_234);
                flux::serial_aos(&geom, &node, 1.0, res)
            },
            BatchSize::LargeInput,
        )
    });
    metrics::set_enabled(true);
    g.bench_function("flux_metrics_on", |b| {
        b.iter_batched_ref(
            || vec![0.0; n4],
            |res| {
                h.record(1_234);
                flux::serial_aos(&geom, &node, 1.0, res)
            },
            BatchSize::LargeInput,
        )
    });
    g.bench_function("record", |b| b.iter(|| h.record(std::hint::black_box(1_234))));
    g.bench_function("snapshot", |b| b.iter(metrics::snapshot));
    g.finish();
}

fn bench_sampler_overhead(c: &mut Bench) {
    // The claim behind always-on profiling: the slot publication a span
    // performs (seqlock push/pop) costs a few uncontended atomic stores,
    // and a running sampler adds nothing to the instrumented thread.
    // Compare spans at Full with the sampler off and on.
    let (geom, node, _) = fixture();
    let n4 = node.n * 4;
    let mut g = c.group("sampler");
    g.sample_size(20);
    telemetry::set_level(Level::Full);
    g.bench_function("flux_spans_sampler_off", |b| {
        b.iter_batched_ref(
            || vec![0.0; n4],
            |res| {
                let _span = telemetry::span("flux");
                flux::serial_aos(&geom, &node, 1.0, res)
            },
            BatchSize::LargeInput,
        )
    });
    let sampler = telemetry::Sampler::start(std::time::Duration::from_micros(250));
    g.bench_function("flux_spans_sampler_on", |b| {
        b.iter_batched_ref(
            || vec![0.0; n4],
            |res| {
                let _span = telemetry::span("flux");
                flux::serial_aos(&geom, &node, 1.0, res)
            },
            BatchSize::LargeInput,
        )
    });
    let profile = sampler.stop();
    eprintln!(
        "# sampler: {} ticks, {} missed, {} busy samples",
        profile.ticks,
        profile.missed,
        profile.busy_samples()
    );
    telemetry::set_level(Level::Counters);
    g.finish();
}

fn bench_partitioner(c: &mut Bench) {
    let mesh = MeshPreset::Small.build();
    let graph = mesh.vertex_graph();
    let mut g = c.group("partitioner");
    g.sample_size(10);
    g.bench_function("multilevel_8way", |b| {
        b.iter(|| {
            std::hint::black_box(partition_graph(&graph, 8, &MultilevelConfig::default()))
        })
    });
    g.finish();
}

fn main() {
    let mut c = Bench::from_args();
    bench_flux(&mut c);
    bench_prefetch_dist(&mut c);
    bench_tiled(&mut c);
    bench_recurrences(&mut c);
    bench_spmv(&mut c);
    bench_vecops(&mut c);
    bench_telemetry_overhead(&mut c);
    bench_flight_overhead(&mut c);
    bench_metrics_overhead(&mut c);
    bench_sampler_overhead(&mut c);
    bench_partitioner(&mut c);
    c.finish();
}
