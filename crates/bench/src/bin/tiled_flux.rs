//! **tiled_flux** — measured ablation for the tiled (scratch-pad
//! staging) edge-kernel strategy against the streaming strategies.
//!
//! For each mesh the binary builds the host-L2-sized [`EdgeTiling`],
//! verifies every timed variant against the serial SoA reference
//! *before* timing it (a wrong-answer kernel must never produce a bench
//! number), then times:
//!
//! * `flux_serial_best` — the best streaming serial variant
//!   (AoS + SIMD + prefetch), the single-thread baseline;
//! * `flux_owner` — `owner_writes_opt` on a METIS plan, the strongest
//!   pre-existing threaded strategy, at each thread count;
//! * `flux_tiled` — the tiled kernel (serial at nt=1, pooled with
//!   inter-tile coloring at nt>1) at each thread count.
//!
//! Every variant's **effective GB/s** divides the *same* numerator —
//! the analytic streaming-model bytes ([`counts::flux`]) — by its wall
//! time, the paper's Fig. 6 convention: the kernel is credited with the
//! traffic a cache-less machine would move, so a number *above* the
//! STREAM roof is direct evidence of cache residency (the point of
//! tiling), and the `xSTREAM` column is the floor ratio the roofline
//! validator reads.
//!
//! Writes `target/experiments/tiled_flux.json` (shape-marked with
//! `"kind": "tiled_flux"` for `perf_regress --append`); `--check <file>`
//! validates a previously written artifact (the rot guard run by
//! `scripts/verify.sh`).
//!
//! Usage: `tiled_flux [--meshes a,b] [--threads 1,2,4] [--reps n]
//! [--check <json>]`

use fun3d_bench::{emit, KernelFixture};
use fun3d_core::{counts, flux};
use fun3d_core::geom::NodeSoa;
use fun3d_machine::MachineSpec;
use fun3d_mesh::generator::MeshPreset;
use fun3d_partition::{
    partition_graph, EdgeTiling, MultilevelConfig, OwnerWritesPlan, TileQuality, TilingConfig,
};
use fun3d_threads::ThreadPool;
use fun3d_util::report::{experiments_dir, fmt_g, write_json, Table};
use fun3d_util::telemetry::json::Json;

struct Args {
    meshes: Vec<MeshPreset>,
    threads: Vec<usize>,
    reps: usize,
    /// Tile scratch budget override in KiB (default: half the host L2,
    /// via [`TilingConfig::for_machine`]). Ablation knob.
    budget_kib: Option<usize>,
    check: Option<String>,
}

fn parse_args() -> Args {
    let mut out = Args {
        meshes: vec![MeshPreset::Medium],
        threads: vec![1, 2, 4],
        reps: 3,
        budget_kib: None,
        check: None,
    };
    let args: Vec<String> = std::env::args().collect();
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--meshes" | "--mesh" => {
                i += 1;
                out.meshes = args[i]
                    .split(',')
                    .map(|m| {
                        MeshPreset::parse(m.trim())
                            .unwrap_or_else(|| panic!("unknown mesh preset '{m}'"))
                    })
                    .collect();
            }
            "--threads" => {
                i += 1;
                out.threads = args[i]
                    .split(',')
                    .map(|t| t.trim().parse().expect("--threads takes integers"))
                    .collect();
            }
            "--reps" => {
                i += 1;
                out.reps = args[i].parse().expect("--reps takes an integer");
            }
            "--budget-kib" => {
                i += 1;
                out.budget_kib =
                    Some(args[i].parse().expect("--budget-kib takes an integer"));
            }
            "--check" => {
                i += 1;
                out.check = Some(args[i].clone());
            }
            "--help" | "-h" => {
                eprintln!(
                    "options: --meshes <small,medium,large> --threads <1,2,4> \
                     --reps <n> --budget-kib <n> --check <json>"
                );
                std::process::exit(0);
            }
            other => panic!("unknown argument '{other}'"),
        }
        i += 1;
    }
    assert!(!out.meshes.is_empty(), "--meshes list is empty");
    assert!(!out.threads.is_empty(), "--threads list is empty");
    out
}

/// Relative-tolerance equivalence against the serial SoA reference.
/// Accumulation orders differ between variants, so the bound is ULP-ish
/// (1e-11 relative), not bitwise; a miss aborts the run before any
/// timing happens.
fn check_equivalent(name: &str, got: &[f64], reference: &[f64]) {
    assert_eq!(got.len(), reference.len());
    for (i, (&g, &r)) in got.iter().zip(reference).enumerate() {
        let tol = 1e-11 * r.abs().max(1.0);
        if (g - r).abs() > tol {
            eprintln!(
                "tiled_flux: EQUIVALENCE FAILED — {name}[{i}] = {g:e}, reference {r:e}"
            );
            std::process::exit(1);
        }
    }
}

struct VariantRow {
    variant: &'static str,
    threads: usize,
    seconds: f64,
    gbps: f64,
    stream_ratio: f64,
}

struct MeshReport {
    mesh: MeshPreset,
    nedges: usize,
    nvertices: usize,
    quality: TileQuality,
    /// What `TileExec::auto` picked for this mesh on this host.
    exec: &'static str,
    rows: Vec<VariantRow>,
}

/// Which kernel a timed configuration runs.
#[derive(Clone, Copy, PartialEq)]
enum Variant {
    SerialBest,
    Owner(usize),
    Tiled(usize),
    /// Forced scratch-pad staging at nt=1 — the ablation row that
    /// prices the explicit copy against whatever `TileExec::auto`
    /// picked for this host.
    TiledStaged,
}

impl Variant {
    fn name(self) -> &'static str {
        match self {
            Variant::SerialBest => "flux_serial_best",
            Variant::Owner(_) => "flux_owner",
            Variant::Tiled(_) => "flux_tiled",
            Variant::TiledStaged => "flux_tiled_staged",
        }
    }
    fn threads(self) -> usize {
        match self {
            Variant::SerialBest | Variant::TiledStaged => 1,
            Variant::Owner(nt) | Variant::Tiled(nt) => nt,
        }
    }
}

fn run_mesh(args: &Args, preset: MeshPreset, machine: &MachineSpec) -> MeshReport {
    let fix = KernelFixture::new(preset);
    let soa = NodeSoa::from_aos(&fix.node);
    let beta = fix.cond.beta;
    let ne = fix.geom.nedges();
    let nv = fix.mesh.nvertices();
    let n4 = fix.node.n * 4;
    let tcfg = match args.budget_kib {
        Some(kib) => TilingConfig::with_target_bytes(kib * 1024),
        None => TilingConfig::for_machine(machine),
    };
    let tiling = EdgeTiling::build(nv, &fix.geom.edges, &tcfg);
    let tgeom = fun3d_core::TiledGeom::new(&tiling, &fix.geom);
    let texec = flux::TileExec::auto(machine, nv);
    let quality = TileQuality::of(&tiling);
    let graph = fun3d_mesh::Graph::from_edges(nv, &fix.geom.edges);

    // The Fig. 6 convention: one numerator (streaming-model bytes) for
    // every variant, so GB/s ranks variants by wall time alone and
    // above-STREAM readings expose cache residency.
    let stream_bytes = counts::flux(ne).bytes() as f64;
    let gbps_of = |secs: f64| stream_bytes / secs / 1e9;

    // One pool + owner-writes plan per threaded configuration.
    let pools: Vec<(usize, ThreadPool, OwnerWritesPlan)> = args
        .threads
        .iter()
        .filter(|&&nt| nt >= 2)
        .map(|&nt| {
            let plan = OwnerWritesPlan::build(
                &fix.geom.edges,
                &partition_graph(&graph, nt, &MultilevelConfig::default()),
                nt,
            );
            (nt, ThreadPool::new(nt), plan)
        })
        .collect();
    let mut variants = vec![Variant::SerialBest, Variant::Tiled(1)];
    if texec == flux::TileExec::Direct {
        // auto picked direct gathers (LLC-resident host): also time
        // forced staging so the copy's cost stays on the record.
        variants.push(Variant::TiledStaged);
    }
    for &(nt, _, _) in &pools {
        variants.push(Variant::Owner(nt));
        variants.push(Variant::Tiled(nt));
    }

    let mut res = vec![0.0; n4];
    let exec = |v: Variant, res: &mut [f64]| {
        res.iter_mut().for_each(|x| *x = 0.0);
        match v {
            Variant::SerialBest => {
                flux::serial_aos_simd_prefetch(&fix.geom, &fix.node, beta, res)
            }
            Variant::Owner(nt) => {
                let (_, pool, plan) = pools.iter().find(|p| p.0 == nt).unwrap();
                flux::owner_writes_opt(pool, plan, &fix.geom, &fix.node, beta, res);
            }
            Variant::Tiled(1) => flux::tiled(&tiling, &tgeom, &fix.node, beta, texec, res),
            Variant::Tiled(nt) => {
                let (_, pool, _) = pools.iter().find(|p| p.0 == nt).unwrap();
                flux::tiled_pooled(pool, &tiling, &tgeom, &fix.node, beta, texec, res);
            }
            Variant::TiledStaged => {
                flux::tiled(&tiling, &tgeom, &fix.node, beta, flux::TileExec::Staged, res)
            }
        }
    };

    // ---- equivalence before timing (doubles as warm-up) ------------
    let mut reference = vec![0.0; n4];
    flux::serial_soa(&fix.geom, &soa, beta, &mut reference);
    for &v in &variants {
        exec(v, &mut res);
        check_equivalent(v.name(), &res, &reference);
    }

    // ---- interleaved timing ----------------------------------------
    // One sample of every configuration per round, and the per-variant
    // *minimum* across rounds: machine-load drift (this is a shared
    // container) only ever adds time, so the best-case sample is the
    // least-contaminated estimate of each variant's true cost, and
    // interleaving gives every variant the same shot at the quiet
    // windows.
    let mut samples: Vec<Vec<f64>> = vec![Vec::with_capacity(args.reps); variants.len()];
    for _ in 0..args.reps {
        for (i, &v) in variants.iter().enumerate() {
            let t0 = std::time::Instant::now();
            exec(v, &mut res);
            samples[i].push(t0.elapsed().as_secs_f64());
        }
    }

    let rows = variants
        .iter()
        .zip(&mut samples)
        .map(|(&v, s)| {
            let t = s.iter().copied().fold(f64::INFINITY, f64::min);
            VariantRow {
                variant: v.name(),
                threads: v.threads(),
                seconds: t,
                gbps: gbps_of(t),
                stream_ratio: gbps_of(t) / machine.stream_gbs,
            }
        })
        .collect();

    MeshReport {
        mesh: preset,
        nedges: ne,
        nvertices: nv,
        quality,
        exec: match texec {
            flux::TileExec::Staged => "staged",
            flux::TileExec::Direct => "direct",
        },
        rows,
    }
}

/// `--check` mode: the artifact rot guard run by scripts/verify.sh.
fn do_check(path: &str) -> i32 {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("tiled_flux --check: cannot read {path}: {e}");
            return 1;
        }
    };
    let doc = match Json::parse(&text) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("tiled_flux --check: {path} is not valid JSON: {e}");
            return 1;
        }
    };
    let mut problems = Vec::new();
    if doc.get("kind").and_then(Json::as_str) != Some("tiled_flux") {
        problems.push("missing 'kind': 'tiled_flux' shape marker".to_string());
    }
    if !doc
        .get("stream_gbs")
        .and_then(Json::as_f64)
        .is_some_and(|s| s > 0.0)
    {
        problems.push("missing/nonpositive 'stream_gbs'".to_string());
    }
    match doc.get("meshes").and_then(Json::as_arr) {
        None => problems.push("missing 'meshes' array".to_string()),
        Some([]) => problems.push("'meshes' array is empty".to_string()),
        Some(meshes) => {
            for m in meshes {
                let name = m.get("mesh").and_then(Json::as_str).unwrap_or("<unnamed>");
                let Some(q) = m.get("tile_quality") else {
                    problems.push(format!("{name}: missing 'tile_quality'"));
                    continue;
                };
                // A tiling can do no worse than single-edge tiles
                // (reuse 0.5); colors and tiles are at least 1.
                match q.get("reuse").and_then(Json::as_f64) {
                    Some(r) if r >= 0.5 => {}
                    other => problems.push(format!("{name}: tile reuse {other:?} < 0.5")),
                }
                for key in ["ntiles", "ncolors"] {
                    match q.get(key).and_then(Json::as_f64) {
                        Some(v) if v >= 1.0 => {}
                        other => problems.push(format!("{name}: tile {key} {other:?} < 1")),
                    }
                }
                let Some(rows) = m.get("variants").and_then(Json::as_arr) else {
                    problems.push(format!("{name}: missing 'variants'"));
                    continue;
                };
                let mut saw_tiled = false;
                for r in rows {
                    let v = r.get("variant").and_then(Json::as_str).unwrap_or("?");
                    saw_tiled |= v == "flux_tiled";
                    for key in ["seconds", "gbps"] {
                        match r.get(key).and_then(Json::as_f64) {
                            Some(x) if x.is_finite() && x > 0.0 => {}
                            other => {
                                problems.push(format!("{name}/{v}: bad {key} {other:?}"))
                            }
                        }
                    }
                }
                if !saw_tiled {
                    problems.push(format!("{name}: no 'flux_tiled' variant row"));
                }
            }
        }
    }
    if problems.is_empty() {
        println!("tiled_flux --check: {path} ok");
        0
    } else {
        for p in &problems {
            eprintln!("tiled_flux --check: {p}");
        }
        1
    }
}

fn main() {
    let args = parse_args();
    if let Some(path) = &args.check {
        std::process::exit(do_check(path));
    }
    let machine = MachineSpec::host();

    let mut table = Table::new(
        "Tiled edge kernels: measured flux ablation (effective GB/s = streaming-model bytes / wall)",
        &["mesh", "variant", "threads", "seconds", "eff GB/s", "xSTREAM"],
    );
    let mut meshes_json = Vec::new();
    for &preset in &args.meshes {
        let rep = run_mesh(&args, preset, &machine);
        for r in &rep.rows {
            table.row(&[
                rep.mesh.name().to_string(),
                r.variant.to_string(),
                r.threads.to_string(),
                fmt_g(r.seconds),
                format!("{:.2}", r.gbps),
                format!("{:.2}", r.stream_ratio),
            ]);
        }
        println!(
            "{}: {} [tile exec: {}]",
            rep.mesh.name(),
            rep.quality.summary(),
            rep.exec
        );
        let q = &rep.quality;
        meshes_json.push(Json::obj(vec![
            ("mesh", Json::str(rep.mesh.name())),
            ("nedges", Json::num(rep.nedges as f64)),
            ("nvertices", Json::num(rep.nvertices as f64)),
            ("tile_exec", Json::str(rep.exec)),
            (
                "tile_quality",
                Json::obj(vec![
                    ("ntiles", Json::num(q.ntiles as f64)),
                    ("ncolors", Json::num(q.ncolors as f64)),
                    ("vertex_slots", Json::num(q.vertex_slots as f64)),
                    ("reuse", Json::num(q.reuse)),
                    ("halo_fraction", Json::num(q.halo_fraction)),
                ]),
            ),
            (
                "variants",
                Json::Arr(
                    rep.rows
                        .iter()
                        .map(|r| {
                            Json::obj(vec![
                                ("variant", Json::str(r.variant)),
                                ("threads", Json::num(r.threads as f64)),
                                ("seconds", Json::num(r.seconds)),
                                ("gbps", Json::num(r.gbps)),
                                ("stream_ratio", Json::num(r.stream_ratio)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ]));
    }
    emit("tiled_flux_table", &table);

    let summary = Json::obj(vec![
        ("kind", Json::str("tiled_flux")),
        ("reps", Json::num(args.reps as f64)),
        ("stream_gbs", Json::num(machine.stream_gbs)),
        ("meshes", Json::Arr(meshes_json)),
    ]);
    match write_json(&experiments_dir(), "tiled_flux", &summary) {
        Ok(path) => println!("[json written to {}]", path.display()),
        Err(e) => eprintln!("warning: could not write json: {e}"),
    }
    println!(
        "\nxSTREAM > 1 means effective bandwidth above the STREAM roof — \
         the gathers are resolving in cache, which is what tiling buys"
    );
}
