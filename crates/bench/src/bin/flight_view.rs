//! **flight_view** — renders a flight-recorder dump as per-solve
//! timeline tables, and can watch one live.
//!
//! * default: pretty-print the dump — header (trigger, event counts,
//!   drops) followed by one table per solve id (and one for unscoped
//!   events), each row `t, rank, event, fields`;
//! * `--check`: strictly validate the artifact (schema tag, known
//!   trigger/event names, `(t_ns, rank, solve)` on every entry, global
//!   time ordering) and exit 0/1 — the machine-readable rot guard
//!   `scripts/verify.sh` runs on every dump it provokes;
//! * `--follow`: poll the file (`--poll-ms`, default 500) and reprint a
//!   compact live summary whenever it changes; `--max-polls` bounds the
//!   watch for scripted use (0 = forever).
//!
//! Usage: `flight_view <dump.json> [--check] [--follow]
//! [--poll-ms <n>] [--max-polls <n>]`

use fun3d_util::report::Table;
use fun3d_util::telemetry::flight;
use fun3d_util::telemetry::json::Json;
use std::path::Path;

struct Args {
    path: String,
    check: bool,
    follow: bool,
    poll_ms: u64,
    max_polls: u64,
}

fn parse_args() -> Args {
    let mut out = Args {
        path: String::new(),
        check: false,
        follow: false,
        poll_ms: 500,
        max_polls: 0,
    };
    let args: Vec<String> = std::env::args().collect();
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--check" => out.check = true,
            "--follow" => out.follow = true,
            "--poll-ms" => {
                i += 1;
                out.poll_ms = args[i].parse().expect("--poll-ms takes an integer");
            }
            "--max-polls" => {
                i += 1;
                out.max_polls = args[i].parse().expect("--max-polls takes an integer");
            }
            "--help" | "-h" => {
                eprintln!(
                    "usage: flight_view <dump.json> [--check] [--follow] \
                     [--poll-ms <n>] [--max-polls <n>]"
                );
                std::process::exit(0);
            }
            other if out.path.is_empty() && !other.starts_with("--") => {
                out.path = other.to_string();
            }
            other => {
                eprintln!("unknown argument '{other}'");
                std::process::exit(1);
            }
        }
        i += 1;
    }
    if out.path.is_empty() {
        eprintln!("usage: flight_view <dump.json> [--check] [--follow]");
        std::process::exit(1);
    }
    out
}

/// One timeline entry's extra fields (everything beyond the four tags),
/// rendered `k=v` — the dump writer flattens each event's payload into
/// the entry, so this is the whole payload.
fn detail_of(entry: &Json) -> String {
    let Json::Obj(fields) = entry else {
        return String::new();
    };
    let mut parts = Vec::new();
    for (k, v) in fields {
        if matches!(k.as_str(), "t_ns" | "rank" | "solve" | "event") {
            continue;
        }
        parts.push(format!("{k}={}", render_value(v)));
    }
    parts.join("  ")
}

fn render_value(v: &Json) -> String {
    match v {
        Json::Null => "-".to_string(),
        Json::Bool(b) => b.to_string(),
        Json::Num(x) => {
            if *x == x.trunc() && x.abs() < 1e15 {
                format!("{}", *x as i64)
            } else {
                format!("{x:.4e}")
            }
        }
        Json::Str(s) => s.clone(),
        other => other.render(),
    }
}

fn load(path: &str) -> Result<Json, String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    Json::parse(&text).map_err(|e| format!("{path} is not valid JSON: {e}"))
}

fn timeline(doc: &Json) -> &[Json] {
    doc.get("timeline").and_then(Json::as_arr).unwrap_or(&[])
}

fn header_line(doc: &Json, path: &str) -> String {
    format!(
        "{path}: trigger '{}', {} events, {} dropped",
        doc.get("trigger").and_then(Json::as_str).unwrap_or("?"),
        doc.get("events").and_then(Json::as_f64).unwrap_or(0.0),
        doc.get("dropped").and_then(Json::as_f64).unwrap_or(0.0),
    )
}

/// Full render: header plus one timeline table per solve.
fn render(doc: &Json, path: &str) {
    println!("{}\n", header_line(doc, path));
    let entries = timeline(doc);
    // Distinct solve ids in first-appearance order; 0 = unscoped.
    let mut solves: Vec<u64> = Vec::new();
    for e in entries {
        let s = e.get("solve").and_then(Json::as_f64).unwrap_or(0.0) as u64;
        if !solves.contains(&s) {
            solves.push(s);
        }
    }
    for solve in solves {
        let title = if solve == 0 {
            "flight_view: events outside any solve".to_string()
        } else {
            format!("flight_view: solve {solve} timeline")
        };
        let mut table = Table::new(&title, &["t ms", "rank", "event", "fields"]);
        for e in entries {
            if e.get("solve").and_then(Json::as_f64).unwrap_or(0.0) as u64 != solve {
                continue;
            }
            table.row(&[
                format!(
                    "{:.3}",
                    e.get("t_ns").and_then(Json::as_f64).unwrap_or(0.0) * 1e-6
                ),
                format!("{}", e.get("rank").and_then(Json::as_f64).unwrap_or(0.0) as u64),
                e.get("event").and_then(Json::as_str).unwrap_or("?").to_string(),
                detail_of(e),
            ]);
        }
        print!("{}", table.render());
        println!();
    }
}

/// `--follow` summary: one screenful — the header plus the newest few
/// events — reprinted whenever the file changes.
fn render_summary(doc: &Json, path: &str) {
    println!("{}", header_line(doc, path));
    let entries = timeline(doc);
    let tail = entries.len().saturating_sub(8);
    for e in &entries[tail..] {
        println!(
            "  {:>12.3} ms  rank {}  solve {:>3}  {:<15} {}",
            e.get("t_ns").and_then(Json::as_f64).unwrap_or(0.0) * 1e-6,
            e.get("rank").and_then(Json::as_f64).unwrap_or(0.0) as u64,
            e.get("solve").and_then(Json::as_f64).unwrap_or(0.0) as u64,
            e.get("event").and_then(Json::as_str).unwrap_or("?"),
            detail_of(e),
        );
    }
}

fn follow(args: &Args) {
    let mut last_seen: Option<(std::time::SystemTime, u64)> = None;
    let mut polls = 0u64;
    loop {
        let stamp = std::fs::metadata(&args.path)
            .ok()
            .map(|m| (m.modified().unwrap_or(std::time::UNIX_EPOCH), m.len()));
        match stamp {
            None => {
                if last_seen.is_some() {
                    println!("flight_view: {} disappeared, waiting...", args.path);
                    last_seen = None;
                }
            }
            Some(s) if Some(s) != last_seen => {
                match load(&args.path) {
                    Ok(doc) => render_summary(&doc, &args.path),
                    // A writer may be mid-dump; pick it up next poll.
                    Err(e) => println!("flight_view: {e} (retrying)"),
                }
                last_seen = stamp;
            }
            Some(_) => {}
        }
        polls += 1;
        if args.max_polls > 0 && polls >= args.max_polls {
            return;
        }
        std::thread::sleep(std::time::Duration::from_millis(args.poll_ms));
    }
}

fn main() {
    let args = parse_args();
    if args.check {
        match flight::check_dump_file(Path::new(&args.path)) {
            Ok(n) => {
                println!("{}: OK ({n} flight events)", args.path);
                std::process::exit(0);
            }
            Err(e) => {
                eprintln!("check failed: {e}");
                std::process::exit(1);
            }
        }
    }
    if args.follow {
        follow(&args);
        return;
    }
    match load(&args.path) {
        Ok(doc) => render(&doc, &args.path),
        Err(e) => {
            eprintln!("flight_view: {e}");
            std::process::exit(1);
        }
    }
}
