//! **Table II** — ILU(0) vs ILU(1): parallelism, convergence, speed-up.
//!
//! Paper (Mesh-C): available parallelism 248× vs 60×; linear iterations
//! 777 vs 383; single-core 430 s vs 282 s; 10-core 62 s vs 81 s — the
//! *less* convergent ILU-0 wins at 10 cores (≈1.3×) because its shorter
//! dependency chains parallelize better.
//!
//! Here: iterations come from *real* solver runs at both fill levels;
//! parallelism is the paper's flops-over-critical-path metric computed
//! on the real factors; 10-core times combine each run's host-measured
//! serial profile with the modeled per-kernel speedups at that fill.

use fun3d_bench::model::model_speedups_fill;
use fun3d_bench::{build_mesh, emit, KernelFixture};
use fun3d_core::{Fun3dApp, FlowConditions, OptConfig};
use fun3d_machine::MachineSpec;
use fun3d_mesh::generator::MeshPreset;
use fun3d_solver::ptc::PtcConfig;
use fun3d_sparse::{ilu, DagStats, TempBuffer};
use fun3d_util::report::{fmt_g, Table};

struct FillCase {
    parallelism: f64,
    linear_iters: usize,
    serial_s: f64,
    ten_core_s: f64,
}

fn run_case(preset: MeshPreset, fill: usize) -> FillCase {
    // real solve at this fill level
    let mesh = build_mesh(preset);
    let mut cfg = OptConfig::baseline();
    cfg.ilu_fill = fill;
    let mut app = Fun3dApp::new(mesh, FlowConditions::default(), cfg);
    let (_, stats) = app.run(&PtcConfig {
        dt0: 2.0,
        rtol: 1e-8,
        max_steps: 100,
        ..Default::default()
    });
    assert!(stats.converged, "fill={fill} run failed");
    let prof = app.profile();
    let total = prof.seconds("total");

    // DAG parallelism on the real factors
    let fix = KernelFixture::new(preset);
    let jac = fun3d_bench::jacobian_fixture(&fix, 1.0);
    let pattern = ilu::symbolic_iluk(&jac, fill);
    let factors = ilu::factor(&jac, &pattern, TempBuffer::Compressed);
    let dag = DagStats::for_trsv(&factors.l, &factors.u);

    // modeled 10-core time: scale each host-measured phase by its
    // modeled speedup (flux/gradient/jacobian identical between fills;
    // trsv/ilu schedules rebuilt per fill inside model_speedups via the
    // fill-1 pattern — adequate for the fill-dependent *ratio* since the
    // dominant fill effect enters through the measured phase times and
    // the DAG parallelism cap below).
    let machine = MachineSpec::xeon_e5_2690v2();
    let s = model_speedups_fill(&fix, &machine, machine.cores, fill);
    // Cap recurrence speedups by this fill's own available parallelism.
    let trsv_speedup = s.trsv.min(dag.parallelism());
    let ilu_speedup = s.ilu.min(dag.parallelism());
    let tracked: f64 = ["flux", "trsv", "ilu", "gradient", "jacobian"]
        .iter()
        .map(|k| prof.seconds(k))
        .sum();
    let ten_core_s = prof.seconds("flux") / s.flux
        + prof.seconds("trsv") / trsv_speedup
        + prof.seconds("ilu") / ilu_speedup
        + prof.seconds("gradient") / s.gradient
        + prof.seconds("jacobian") / s.jacobian
        + (total - tracked) / s.other;

    FillCase {
        parallelism: dag.parallelism(),
        linear_iters: stats.linear_iters,
        serial_s: total,
        ten_core_s,
    }
}

fn main() {
    let cli = fun3d_bench::Cli::parse(MeshPreset::Medium);
    let c0 = run_case(cli.mesh, 0);
    let c1 = run_case(cli.mesh, 1);

    let mut table = Table::new(
        "Table II: ILU-0 vs ILU-1 (host-measured serial runs + modeled 10-core)",
        &["quantity", "ILU-0", "ILU-1", "paper ILU-0", "paper ILU-1"],
    );
    table.row(&[
        "available parallelism".into(),
        format!("{:.0}x", c0.parallelism),
        format!("{:.0}x", c1.parallelism),
        "248x".into(),
        "60x".into(),
    ]);
    table.row(&[
        "linear iterations".into(),
        c0.linear_iters.to_string(),
        c1.linear_iters.to_string(),
        "777".into(),
        "383".into(),
    ]);
    table.row(&[
        "serial time (s)".into(),
        fmt_g(c0.serial_s),
        fmt_g(c1.serial_s),
        "430".into(),
        "282".into(),
    ]);
    table.row(&[
        "10-core time (s, modeled)".into(),
        fmt_g(c0.ten_core_s),
        fmt_g(c1.ten_core_s),
        "62".into(),
        "81".into(),
    ]);
    table.row(&[
        "speedup over serial".into(),
        format!("{:.1}x", c0.serial_s / c0.ten_core_s),
        format!("{:.1}x", c1.serial_s / c1.ten_core_s),
        "6.9x".into(),
        "3.5x".into(),
    ]);
    emit("table2_ilu_fill", &table);
    println!(
        "\nILU-0 vs ILU-1 at 10 cores: {:.2}x (paper: ~1.3x in ILU-0's favor)",
        c1.ten_core_s / c0.ten_core_s
    );
}
