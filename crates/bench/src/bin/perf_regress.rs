//! **perf_regress** — performance-history regression gate.
//!
//! The bench artifacts under `target/experiments/` are overwritten on
//! every run; `BENCH_history.jsonl` is the append-only log that keeps
//! the trajectory. This binary is the tool on both ends of that file:
//!
//! * `--append <artifact.json>` distills a bench artifact
//!   (`sync_ablation.json` or `perf_report.json`) into a flat metric
//!   map and appends one history line with commit/date/config
//!   provenance (used by `scripts/bench_snapshot.sh`);
//! * `--history <file>` judges the newest entry against the median/MAD
//!   of the preceding window ([`fun3d_util::perfdb::judge`]) and
//!   reports per-metric verdicts. `FUN3D_PERF_GATE` picks the
//!   enforcement: `off` (skip), `soft` (report only, default), `hard`
//!   (any regression exits 1);
//! * `--self-test` checks the detector itself on a synthetic history
//!   with an injected 3× slowdown — exit 2 if the detector misses it,
//!   exit 1 under a hard gate once it is (correctly) flagged.
//!
//! Exit codes: 0 ok / soft findings, 1 hard-gate regression, 2 usage
//! or self-test failure.

use fun3d_util::perfdb::{self, Gate, GateConfig, PerfEntry, Verdict};
use fun3d_util::report::{fmt_g, Table};
use fun3d_util::telemetry::json::Json;
use std::path::PathBuf;

struct Args {
    history: Option<PathBuf>,
    append: Option<PathBuf>,
    commit: String,
    date: String,
    config: Vec<(String, String)>,
    window: usize,
    self_test: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: perf_regress --history <BENCH_history.jsonl> [--window K]\n\
         \x20      perf_regress --append <artifact.json> --history <file> \\\n\
         \x20                   [--commit <hash>] [--date <iso8601>] [--config k=v]...\n\
         \x20      perf_regress --self-test\n\
         gate: FUN3D_PERF_GATE=off|soft|hard (default soft)"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut out = Args {
        history: None,
        append: None,
        commit: "unknown".to_string(),
        date: "unknown".to_string(),
        config: Vec::new(),
        window: GateConfig::default().window,
        self_test: false,
    };
    let args: Vec<String> = std::env::args().collect();
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--history" => {
                i += 1;
                out.history = Some(PathBuf::from(args.get(i).unwrap_or_else(|| usage())));
            }
            "--append" => {
                i += 1;
                out.append = Some(PathBuf::from(args.get(i).unwrap_or_else(|| usage())));
            }
            "--commit" => {
                i += 1;
                out.commit = args.get(i).unwrap_or_else(|| usage()).clone();
            }
            "--date" => {
                i += 1;
                out.date = args.get(i).unwrap_or_else(|| usage()).clone();
            }
            "--config" => {
                i += 1;
                let kv = args.get(i).unwrap_or_else(|| usage());
                let (k, v) = kv.split_once('=').unwrap_or_else(|| usage());
                out.config.push((k.to_string(), v.to_string()));
            }
            "--window" => {
                i += 1;
                out.window = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--self-test" => out.self_test = true,
            "--help" | "-h" => usage(),
            _ => usage(),
        }
        i += 1;
    }
    out
}

/// Distills a bench artifact into `(config, metrics)`. Dispatches on
/// shape: `meshes` array → multi-mesh `sync_ablation.json`, `configs`
/// array → the legacy single-mesh ablation shape, `run` object →
/// `perf_report.json`. Metrics are lower-is-better except `*speedup*`
/// keys (see [`fun3d_util::perfdb::higher_is_better`]).
fn distill(doc: &Json) -> Result<(Vec<(String, String)>, Vec<(String, f64)>), String> {
    let mut config = Vec::new();
    let mut metrics = Vec::new();
    // tiled_flux.json also carries a `meshes` array, so its explicit
    // shape marker must dispatch before the generic meshes branch.
    if doc.get("kind").and_then(Json::as_str) == Some("tiled_flux") {
        let meshes = doc
            .get("meshes")
            .and_then(Json::as_arr)
            .ok_or("tiled_flux artifact without 'meshes'")?;
        if let Some(reps) = doc.get("reps").and_then(Json::as_f64) {
            config.push(("reps".to_string(), format!("{reps}")));
        }
        let names: Vec<&str> = meshes
            .iter()
            .filter_map(|m| m.get("mesh").and_then(Json::as_str))
            .collect();
        config.push(("meshes".to_string(), names.join(",")));
        for m in meshes {
            let name = m
                .get("mesh")
                .and_then(Json::as_str)
                .ok_or("mesh entry without 'mesh'")?;
            if let Some(e) = m.get("tile_exec").and_then(Json::as_str) {
                config.push((format!("{name}.tile_exec"), e.to_string()));
            }
            if let Some(r) = m
                .get("tile_quality")
                .and_then(|q| q.get("reuse"))
                .and_then(Json::as_f64)
            {
                metrics.push((format!("{name}.tile_reuse"), r));
            }
            let rows = m
                .get("variants")
                .and_then(Json::as_arr)
                .ok_or("mesh entry without 'variants'")?;
            for r in rows {
                let v = r
                    .get("variant")
                    .and_then(Json::as_str)
                    .ok_or("variant row without 'variant'")?;
                let t = r
                    .get("threads")
                    .and_then(Json::as_f64)
                    .ok_or("variant row without 'threads'")? as u64;
                let gbps = r
                    .get("gbps")
                    .and_then(Json::as_f64)
                    .ok_or("variant row without 'gbps'")?;
                metrics.push((format!("{name}.{v}.gbps@{t}t"), gbps));
            }
        }
        return Ok((config, metrics));
    }
    if doc.get("kind").and_then(Json::as_str) == Some("load_gen") {
        if let Some(svc) = doc.get("service") {
            for key in ["teams", "team_threads"] {
                if let Some(v) = svc.get(key).and_then(Json::as_f64) {
                    config.push((key.to_string(), format!("{v}")));
                }
            }
        }
        let ab = doc
            .get("ablation")
            .ok_or("load_gen artifact without 'ablation'")?;
        let speedup = ab
            .get("speedup")
            .and_then(Json::as_f64)
            .ok_or("ablation without 'speedup'")?;
        metrics.push(("serve.cache_speedup".to_string(), speedup));
        for pass in ["cold", "warm"] {
            let rps = ab
                .get(pass)
                .and_then(|p| p.get("rps"))
                .and_then(Json::as_f64)
                .ok_or("ablation pass without 'rps'")?;
            metrics.push((format!("serve.{pass}.rps"), rps));
        }
        if let Some(h) = ab
            .get("warm")
            .and_then(|p| p.get("hit_rate"))
            .and_then(Json::as_f64)
        {
            metrics.push(("serve.warm.hit_rate".to_string(), h));
        }
        let phases = doc
            .get("phases")
            .and_then(Json::as_arr)
            .ok_or("load_gen artifact without 'phases'")?;
        for p in phases {
            let rate = p
                .get("rate_hz")
                .and_then(Json::as_f64)
                .ok_or("phase without 'rate_hz'")?;
            let tag = format!("rate{rate}");
            for (key, suffix) in [
                ("rps", "rps"),
                ("p50_ms", "p50_ms"),
                ("p99_ms", "p99_ms"),
                ("hit_rate", "hit_rate"),
            ] {
                let v = p
                    .get(key)
                    .and_then(Json::as_f64)
                    .ok_or_else(|| format!("phase without '{key}'"))?;
                metrics.push((format!("serve.{tag}.{suffix}"), v));
            }
            // Service-side percentiles from the live metrics plane
            // (absent in pre-metrics artifacts, so optional).
            if let Some(live) = p.get("live") {
                for key in ["p50_ms", "p99_ms"] {
                    if let Some(v) = live.get(key).and_then(Json::as_f64) {
                        metrics.push((format!("serve.live.{tag}.{key}"), v));
                    }
                }
            }
        }
        if metrics.is_empty() {
            return Err("artifact distilled to zero metrics".to_string());
        }
        return Ok((config, metrics));
    }
    if let Some(meshes) = doc.get("meshes").and_then(Json::as_arr) {
        if let Some(reps) = doc.get("reps").and_then(Json::as_f64) {
            config.push(("reps".to_string(), format!("{reps}")));
        }
        let names: Vec<&str> = meshes
            .iter()
            .filter_map(|m| m.get("mesh").and_then(Json::as_str))
            .collect();
        config.push(("meshes".to_string(), names.join(",")));
        for m in meshes {
            let name = m
                .get("mesh")
                .and_then(Json::as_str)
                .ok_or("mesh entry without 'mesh'")?;
            if let Some(u) = m.get("unknowns").and_then(Json::as_f64) {
                config.push((format!("{name}.unknowns"), format!("{u}")));
            }
            let cfgs = m
                .get("configs")
                .and_then(Json::as_arr)
                .ok_or("mesh entry without 'configs'")?;
            for c in cfgs {
                let threads = c
                    .get("threads")
                    .and_then(Json::as_f64)
                    .ok_or("config entry without 'threads'")? as u64;
                let mode = c
                    .get("mode")
                    .and_then(Json::as_str)
                    .ok_or("config entry without 'mode'")?;
                let median = c
                    .get("median_iter_seconds")
                    .and_then(Json::as_f64)
                    .ok_or("config entry without 'median_iter_seconds'")?;
                if mode == "serial" {
                    metrics.push((format!("{name}.serial.s_iter"), median));
                } else {
                    metrics.push((format!("{name}.{mode}.s_iter@{threads}t"), median));
                }
                // auto's regions/iter track whatever scheme it resolved
                // to, so only the fixed modes are trended.
                if mode == "per-op" || mode == "team" {
                    if let Some(r) = c.get("regions_per_iter").and_then(Json::as_f64) {
                        metrics.push((format!("{name}.{mode}.regions_per_iter@{threads}t"), r));
                    }
                }
            }
            for s in m.get("scaling").and_then(Json::as_arr).unwrap_or(&[]) {
                let (Some(t), Some(sp)) = (
                    s.get("threads").and_then(Json::as_f64),
                    s.get("speedup_vs_nt1").and_then(Json::as_f64),
                ) else {
                    continue;
                };
                metrics.push((format!("{name}.speedup_nt{}_vs_nt1", t as u64), sp));
            }
        }
    } else if let Some(cfgs) = doc.get("configs").and_then(Json::as_arr) {
        for key in ["mesh", "reps"] {
            if let Some(v) = doc.get(key) {
                let s = v
                    .as_str()
                    .map(str::to_string)
                    .or_else(|| v.as_f64().map(|x| format!("{x}")))
                    .ok_or_else(|| format!("'{key}' is neither string nor number"))?;
                config.push((key.to_string(), s));
            }
        }
        for c in cfgs {
            let threads = c
                .get("threads")
                .and_then(Json::as_f64)
                .ok_or("config entry without 'threads'")? as u64;
            let mode = c
                .get("mode")
                .and_then(Json::as_str)
                .ok_or("config entry without 'mode'")?;
            let median = c
                .get("median_iter_seconds")
                .and_then(Json::as_f64)
                .ok_or("config entry without 'median_iter_seconds'")?;
            metrics.push((format!("{mode}.s_iter@{threads}t"), median));
            if let Some(r) = c.get("regions_per_iter").and_then(Json::as_f64) {
                metrics.push((format!("{mode}.regions_per_iter@{threads}t"), r));
            }
        }
    } else if let Some(run) = doc.get("run") {
        for key in ["mesh", "threads"] {
            if let Some(v) = run.get(key) {
                let s = v
                    .as_str()
                    .map(str::to_string)
                    .or_else(|| v.as_f64().map(|x| format!("{x}")))
                    .unwrap_or_default();
                config.push((key.to_string(), s));
            }
        }
        let wall = run
            .get("wall_seconds")
            .and_then(Json::as_f64)
            .ok_or("perf_report artifact without 'run.wall_seconds'")?;
        metrics.push(("wall_seconds".to_string(), wall));
        if let Some(kernels) = doc.get("kernels").and_then(Json::as_arr) {
            for k in kernels {
                let (Some(name), Some(secs)) = (
                    k.get("name").and_then(Json::as_str),
                    k.get("seconds").and_then(Json::as_f64),
                ) else {
                    continue;
                };
                if secs > 0.0 {
                    metrics.push((format!("kernel.{name}.seconds"), secs));
                }
            }
        }
    } else {
        return Err("unrecognized artifact shape (no 'configs' array, no 'run' object)".to_string());
    }
    if metrics.is_empty() {
        return Err("artifact distilled to zero metrics".to_string());
    }
    Ok((config, metrics))
}

/// The speedup-vs-threads gate rule, applied to a multi-mesh ablation
/// artifact: above the modeled crossover size, threads>1 **must** beat
/// the nt=1 baseline (hard violation otherwise); below it, parallel
/// execution is expected to sit within noise of serial (the adaptive
/// policy resolves to serial there), so a clearly-slower result is only
/// reported, never fatal. Returns `(hard_violations, soft_notes)`.
fn scaling_rule(doc: &Json) -> (Vec<String>, Vec<String>) {
    /// Below the crossover, "within noise" of the serial baseline.
    const SOFT_NOISE_FLOOR: f64 = 0.8;
    let (mut hard, mut soft) = (Vec::new(), Vec::new());
    let Some(meshes) = doc.get("meshes").and_then(Json::as_arr) else {
        return (hard, soft);
    };
    for m in meshes {
        let name = m.get("mesh").and_then(Json::as_str).unwrap_or("<unnamed>");
        for s in m.get("scaling").and_then(Json::as_arr).unwrap_or(&[]) {
            let (Some(t), Some(sp)) = (
                s.get("threads").and_then(Json::as_f64),
                s.get("speedup_vs_nt1").and_then(Json::as_f64),
            ) else {
                continue;
            };
            let above = matches!(s.get("above_crossover"), Some(Json::Bool(true)));
            if above && sp <= 1.0 {
                hard.push(format!(
                    "{name}: {t} threads not faster than 1 above the crossover \
                     (speedup {sp:.2}x — the thread-scaling inversion)"
                ));
            } else if !above && sp < SOFT_NOISE_FLOOR {
                soft.push(format!(
                    "{name}: {t} threads at {sp:.2}x vs 1 below the crossover \
                     (expected ~1.0 via the adaptive policy)"
                ));
            }
        }
    }
    (hard, soft)
}

/// Evaluates [`scaling_rule`] on an artifact and reports. Returns
/// nonzero only when a hard violation meets a hard gate.
fn enforce_scaling_rule(doc: &Json, gate: Gate) -> i32 {
    let (hard, soft) = scaling_rule(doc);
    for n in &soft {
        println!("scaling (soft): {n}");
    }
    for v in &hard {
        eprintln!("scaling VIOLATION: {v}");
    }
    if !hard.is_empty() && gate == Gate::Hard {
        eprintln!(
            "perf_regress: HARD GATE FAILED — {} scaling violation(s)",
            hard.len()
        );
        return 1;
    }
    if !hard.is_empty() {
        println!("perf_regress: soft gate — scaling violations reported, not failing");
    }
    0
}

fn do_append(args: &Args) -> i32 {
    let artifact = args.append.as_ref().unwrap();
    let Some(history) = args.history.as_ref() else {
        eprintln!("perf_regress: --append requires --history");
        return 2;
    };
    let text = match std::fs::read_to_string(artifact) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("perf_regress: cannot read {}: {e}", artifact.display());
            return 2;
        }
    };
    let doc = match Json::parse(&text) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("perf_regress: {} is not valid JSON: {e}", artifact.display());
            return 2;
        }
    };
    let (mut config, metrics) = match distill(&doc) {
        Ok(x) => x,
        Err(e) => {
            eprintln!("perf_regress: cannot distill {}: {e}", artifact.display());
            return 2;
        }
    };
    config.extend(args.config.iter().cloned());
    let entry = PerfEntry {
        commit: args.commit.clone(),
        date: args.date.clone(),
        config,
        metrics,
    };
    match perfdb::append(history, &entry) {
        Ok(()) => {
            println!(
                "appended {} metrics from {} to {}",
                entry.metrics.len(),
                artifact.display(),
                history.display()
            );
            // The speedup-vs-threads rule runs on the artifact itself
            // (it carries the per-mesh crossover verdicts the flat
            // history lines do not).
            enforce_scaling_rule(&doc, Gate::from_env())
        }
        Err(e) => {
            eprintln!("perf_regress: cannot append to {}: {e}", history.display());
            2
        }
    }
}

fn render_verdicts(verdicts: &[Verdict], latest: &PerfEntry) -> (usize, usize) {
    let mut table = Table::new(
        &format!(
            "perf_regress: '{}' ({}) vs baseline window",
            latest.commit, latest.date
        ),
        &["metric", "latest", "median", "MAD", "ratio", "n", "verdict"],
    );
    let (mut regressions, mut improvements) = (0, 0);
    for v in verdicts {
        let verdict = if !v.judged {
            "(baseline too short)".to_string()
        } else if v.regressed {
            regressions += 1;
            "REGRESSED".to_string()
        } else if v.improved {
            improvements += 1;
            "improved".to_string()
        } else {
            "ok".to_string()
        };
        table.row(&[
            v.metric.clone(),
            fmt_g(v.latest),
            if v.judged { fmt_g(v.baseline_median) } else { "-".to_string() },
            if v.judged { fmt_g(v.baseline_mad) } else { "-".to_string() },
            if v.judged { format!("{:.2}", v.ratio) } else { "-".to_string() },
            v.n_baseline.to_string(),
            verdict,
        ]);
    }
    print!("{}", table.render());
    (regressions, improvements)
}

fn do_judge(args: &Args) -> i32 {
    let gate = Gate::from_env();
    if gate == Gate::Off {
        println!("perf_regress: FUN3D_PERF_GATE=off, skipping");
        return 0;
    }
    let history = args.history.as_ref().unwrap();
    let entries = match perfdb::load(history) {
        Ok(e) => e,
        Err(e) => {
            eprintln!("perf_regress: {e}");
            return 2;
        }
    };
    if entries.len() < 2 {
        println!(
            "perf_regress: {} has {} entries — nothing to judge yet",
            history.display(),
            entries.len()
        );
        return 0;
    }
    let cfg = GateConfig {
        window: args.window,
        ..GateConfig::default()
    };
    let verdicts = perfdb::judge(&entries, &cfg);
    let (regressions, improvements) = render_verdicts(&verdicts, entries.last().unwrap());
    println!(
        "\n{} metrics, {} regressed, {} improved (gate: {:?}, window {})",
        verdicts.len(),
        regressions,
        improvements,
        gate,
        cfg.window
    );
    if regressions > 0 {
        if gate == Gate::Hard {
            eprintln!("perf_regress: HARD GATE FAILED — {regressions} metric(s) regressed");
            return 1;
        }
        println!("perf_regress: soft gate — regressions reported, not failing");
    }
    0
}

/// Detector self-check on synthetic data: a flat history plus one entry
/// 3× slower. The slowdown must be flagged and the flat companion
/// metric must not be. Exit 2 if the detector misses (broken detector),
/// exit 1 under a hard gate once it fires (the acceptance path).
fn do_self_test() -> i32 {
    let gate = Gate::from_env();
    let mut entries: Vec<PerfEntry> = (0..6)
        .map(|i| PerfEntry {
            commit: format!("base{i}"),
            date: "synthetic".to_string(),
            config: vec![("origin".to_string(), "self-test".to_string())],
            metrics: vec![
                // mild deterministic jitter so the MAD is nonzero
                (
                    "team.s_iter@2t".to_string(),
                    1.0e-4 * (1.0 + 0.02 * (i % 3) as f64),
                ),
                ("team.regions_per_iter@2t".to_string(), 1.25),
            ],
        })
        .collect();
    entries.push(PerfEntry {
        commit: "injected-slowdown".to_string(),
        date: "synthetic".to_string(),
        config: vec![("origin".to_string(), "self-test".to_string())],
        metrics: vec![
            ("team.s_iter@2t".to_string(), 3.0e-4),
            ("team.regions_per_iter@2t".to_string(), 1.25),
        ],
    });
    let verdicts = perfdb::judge(&entries, &GateConfig::default());
    let (regressions, _) = render_verdicts(&verdicts, entries.last().unwrap());
    let slow = verdicts
        .iter()
        .find(|v| v.metric == "team.s_iter@2t")
        .expect("synthetic metric missing");
    let flat = verdicts
        .iter()
        .find(|v| v.metric == "team.regions_per_iter@2t")
        .expect("synthetic metric missing");
    if !(slow.judged && slow.regressed) {
        eprintln!("perf_regress: SELF-TEST FAILED — injected 3x slowdown not detected");
        return 2;
    }
    if flat.regressed || flat.improved {
        eprintln!("perf_regress: SELF-TEST FAILED — flat metric falsely flagged");
        return 2;
    }
    println!(
        "\nself-test: injected 3x slowdown detected (ratio {:.2}), flat metric clean",
        slow.ratio
    );

    // Scaling-rule canary: a synthetic mesh above the crossover whose
    // best parallel mode is SLOWER than serial — the thread-scaling
    // inversion. The rule must flag it; a healthy companion (fast above
    // the crossover, ~1.0 below) must stay clean.
    let scaling_mesh = |name: &str, speedup: f64, above: bool| {
        Json::obj(vec![
            ("mesh", Json::str(name)),
            ("unknowns", Json::num(500_000.0)),
            ("configs", Json::Arr(vec![])),
            (
                "scaling",
                Json::Arr(vec![Json::obj(vec![
                    ("threads", Json::num(4.0)),
                    ("speedup_vs_nt1", Json::num(speedup)),
                    ("best_mode", Json::str("team")),
                    ("crossover_unknowns", Json::num(50_000.0)),
                    ("above_crossover", Json::Bool(above)),
                ])]),
            ),
        ])
    };
    let canary = Json::obj(vec![(
        "meshes",
        Json::Arr(vec![scaling_mesh("canary-inverted", 0.7, true)]),
    )]);
    let (canary_hard, _) = scaling_rule(&canary);
    if canary_hard.is_empty() {
        eprintln!(
            "perf_regress: SELF-TEST FAILED — threads-slower-than-serial canary not flagged"
        );
        return 2;
    }
    let healthy = Json::obj(vec![(
        "meshes",
        Json::Arr(vec![
            scaling_mesh("healthy-large", 1.8, true),
            scaling_mesh("healthy-tiny", 0.97, false),
        ]),
    )]);
    let (healthy_hard, healthy_soft) = scaling_rule(&healthy);
    if !healthy_hard.is_empty() || !healthy_soft.is_empty() {
        eprintln!("perf_regress: SELF-TEST FAILED — healthy scaling artifact falsely flagged");
        return 2;
    }
    println!("self-test: scaling canary flagged, healthy scaling clean");

    // tiled_flux distill canary: the shape marker must dispatch before
    // the generic meshes branch and produce higher-is-better gbps keys.
    let tiled = Json::obj(vec![
        ("kind", Json::str("tiled_flux")),
        ("reps", Json::num(3.0)),
        (
            "meshes",
            Json::Arr(vec![Json::obj(vec![
                ("mesh", Json::str("medium")),
                ("tile_exec", Json::str("direct")),
                (
                    "tile_quality",
                    Json::obj(vec![("reuse", Json::num(6.1))]),
                ),
                (
                    "variants",
                    Json::Arr(vec![Json::obj(vec![
                        ("variant", Json::str("flux_tiled")),
                        ("threads", Json::num(4.0)),
                        ("gbps", Json::num(12.0)),
                    ])]),
                ),
            ])]),
        ),
    ]);
    match distill(&tiled) {
        Ok((_, m)) => {
            let key = "medium.flux_tiled.gbps@4t";
            if !m.iter().any(|(k, v)| k == key && *v == 12.0) {
                eprintln!("perf_regress: SELF-TEST FAILED — tiled_flux distill missing {key}");
                return 2;
            }
            if !perfdb::higher_is_better(key) {
                eprintln!("perf_regress: SELF-TEST FAILED — {key} must be higher-is-better");
                return 2;
            }
        }
        Err(e) => {
            eprintln!("perf_regress: SELF-TEST FAILED — tiled_flux distill: {e}");
            return 2;
        }
    }
    println!("self-test: tiled_flux artifact distills to gbps metrics");

    // Serving-latency canary: a flat p99 history with an injected 4×
    // tail blow-up. Latency keys are lower-is-better (they contain
    // "p99"), so the spike must read as a REGRESSION even though the
    // raw number went *up*; the flat throughput companion — higher is
    // better — must stay clean.
    let mut serve_entries: Vec<PerfEntry> = (0..6)
        .map(|i| PerfEntry {
            commit: format!("serve-base{i}"),
            date: "synthetic".to_string(),
            config: vec![("origin".to_string(), "self-test".to_string())],
            metrics: vec![
                (
                    "serve.rate4.p99_ms".to_string(),
                    50.0 * (1.0 + 0.02 * (i % 3) as f64),
                ),
                ("serve.warm.rps".to_string(), 25.0),
            ],
        })
        .collect();
    serve_entries.push(PerfEntry {
        commit: "injected-p99-blow-up".to_string(),
        date: "synthetic".to_string(),
        config: vec![("origin".to_string(), "self-test".to_string())],
        metrics: vec![
            ("serve.rate4.p99_ms".to_string(), 200.0),
            ("serve.warm.rps".to_string(), 25.0),
        ],
    });
    let serve_verdicts = perfdb::judge(&serve_entries, &GateConfig::default());
    let p99 = serve_verdicts
        .iter()
        .find(|v| v.metric == "serve.rate4.p99_ms")
        .expect("synthetic p99 metric missing");
    let rps = serve_verdicts
        .iter()
        .find(|v| v.metric == "serve.warm.rps")
        .expect("synthetic rps metric missing");
    if perfdb::higher_is_better("serve.rate4.p99_ms")
        || !perfdb::higher_is_better("serve.warm.rps")
        || !perfdb::higher_is_better("serve.warm.hit_rate")
        || !perfdb::higher_is_better("serve.cache_speedup")
    {
        eprintln!("perf_regress: SELF-TEST FAILED — serve metric orientation wrong");
        return 2;
    }
    if !(p99.judged && p99.regressed) {
        eprintln!("perf_regress: SELF-TEST FAILED — injected p99 blow-up not detected");
        return 2;
    }
    if rps.regressed || rps.improved {
        eprintln!("perf_regress: SELF-TEST FAILED — flat rps metric falsely flagged");
        return 2;
    }
    println!("self-test: injected p99 blow-up detected (ratio {:.2}), throughput clean", p99.ratio);

    // load_gen distill canary: the kind marker must dispatch to the
    // serving branch and produce the latency/throughput keys.
    let load = Json::obj(vec![
        ("kind", Json::str("load_gen")),
        (
            "service",
            Json::obj(vec![
                ("teams", Json::num(2.0)),
                ("team_threads", Json::num(2.0)),
            ]),
        ),
        (
            "ablation",
            Json::obj(vec![
                (
                    "cold",
                    Json::obj(vec![("rps", Json::num(5.0))]),
                ),
                (
                    "warm",
                    Json::obj(vec![
                        ("rps", Json::num(13.0)),
                        ("hit_rate", Json::num(1.0)),
                    ]),
                ),
                ("speedup", Json::num(2.6)),
            ]),
        ),
        (
            "phases",
            Json::Arr(vec![Json::obj(vec![
                ("rate_hz", Json::num(4.0)),
                ("rps", Json::num(4.1)),
                ("p50_ms", Json::num(70.0)),
                ("p99_ms", Json::num(120.0)),
                ("hit_rate", Json::num(1.0)),
                (
                    "live",
                    Json::obj(vec![
                        ("count", Json::num(24.0)),
                        ("p50_ms", Json::num(68.0)),
                        ("p99_ms", Json::num(118.0)),
                    ]),
                ),
            ])]),
        ),
    ]);
    match distill(&load) {
        Ok((_, m)) => {
            for key in [
                "serve.cache_speedup",
                "serve.rate4.rps",
                "serve.rate4.p99_ms",
                "serve.live.rate4.p50_ms",
                "serve.live.rate4.p99_ms",
            ] {
                if !m.iter().any(|(k, _)| k == key) {
                    eprintln!("perf_regress: SELF-TEST FAILED — load_gen distill missing {key}");
                    return 2;
                }
            }
        }
        Err(e) => {
            eprintln!("perf_regress: SELF-TEST FAILED — load_gen distill: {e}");
            return 2;
        }
    }
    println!("self-test: load_gen artifact distills to serving metrics");
    let canary_code = enforce_scaling_rule(&canary, gate);

    if gate == Gate::Hard && (regressions > 0 || canary_code != 0) {
        eprintln!("perf_regress: HARD GATE FAILED — injected regressions correctly fatal");
        return 1;
    }
    0
}

fn main() {
    let args = parse_args();
    let code = if args.self_test {
        do_self_test()
    } else if args.append.is_some() {
        do_append(&args)
    } else if args.history.is_some() {
        do_judge(&args)
    } else {
        usage();
    };
    std::process::exit(code);
}
