//! **Figure 9** — strong scaling of Mesh-D to 256 Stampede nodes,
//! baseline vs cache+SIMD-optimized (both 16 MPI ranks/node).
//!
//! Paper: the optimized version is 16–28% faster at every node count;
//! scaling flattens as communication grows.
//!
//! Per-rank workloads: real multilevel decompositions of the requested
//! mesh up to the rank count where subdomains stay non-degenerate
//! (≥ ~500 vertices each), then the calibrated surface model
//! extrapolates to Mesh-D scale (2.76e6 vertices; see EXPERIMENTS.md).

use fun3d_bench::emit;
use fun3d_bench::multinode::{calibrate, workload, NODES};
use fun3d_cluster::scaling::{simulate_point, ExecStyle, ScalingConfig};
use fun3d_machine::{MachineSpec, NetworkSpec};
use fun3d_mesh::generator::MeshPreset;
use fun3d_util::report::{fmt_g, Table};

fn main() {
    let cli = fun3d_bench::Cli::parse(MeshPreset::Medium);
    let machine = MachineSpec::xeon_e5_2680();
    let net = NetworkSpec::stampede_fdr();
    let sm = calibrate(&cli.mesh);

    let mut table = Table::new(
        "Fig. 9: Mesh-D strong scaling on Stampede (modeled, seconds)",
        &["nodes", "baseline (s)", "optimized (s)", "opt. gain", "baseline iters"],
    );
    for nodes in NODES {
        let cb = ScalingConfig::mesh_d(ExecStyle::Baseline);
        let co = ScalingConfig::mesh_d(ExecStyle::Optimized);
        let pb = simulate_point(&machine, &net, &cb, nodes, &workload(&cli.mesh, &sm, &cb, nodes));
        let po = simulate_point(&machine, &net, &co, nodes, &workload(&cli.mesh, &sm, &co, nodes));
        table.row(&[
            nodes.to_string(),
            fmt_g(pb.total_s),
            fmt_g(po.total_s),
            format!("{:.0}%", 100.0 * (pb.total_s - po.total_s) / pb.total_s),
            format!("{:.0}", pb.linear_iters),
        ]);
    }
    emit("fig9_multinode_scaling", &table);
    println!("\npaper: optimized version 16%–28% faster at all scales");
}
