//! **Figure 8a** — optimized full-application "time to solution".
//!
//! Paper: 6.9× at 10 cores (20 threads) over the serial baseline; the
//! bandwidth-bound TRSV limits parallel efficiency to 69%.
//!
//! Method: run the *real* baseline application serially on this host to
//! obtain the per-kernel profile and call counts; model each kernel's
//! speedup at every core count from the real plans/schedules on the
//! paper machine; combine per Amdahl. Two profiles are combined: the
//! host-measured one (this implementation) and the paper's published
//! Fig. 5 shares (for direct comparison against the paper's 6.9×).

use fun3d_bench::model::{model_speedups, KernelSpeedups};
use fun3d_bench::{build_mesh, emit, KernelFixture, THREAD_SWEEP};
use fun3d_core::{Fun3dApp, FlowConditions, OptConfig};
use fun3d_machine::MachineSpec;
use fun3d_mesh::generator::MeshPreset;
use fun3d_solver::ptc::PtcConfig;
use fun3d_util::report::Table;

fn main() {
    let cli = fun3d_bench::Cli::parse(MeshPreset::Medium);
    let fix = KernelFixture::new(cli.mesh);
    let machine = MachineSpec::xeon_e5_2690v2();

    // Real baseline run for the host profile.
    let mesh = build_mesh(cli.mesh);
    let mut app = Fun3dApp::new(mesh, FlowConditions::default(), OptConfig::baseline());
    let (_, stats) = app.run(&PtcConfig {
        dt0: 2.0,
        rtol: 1e-8,
        max_steps: 100,
        ..Default::default()
    });
    assert!(stats.converged);
    let prof = app.profile();
    let total = prof.seconds("total");
    let shares_host: Vec<(&str, f64)> = {
        let tracked: f64 = ["flux", "trsv", "ilu", "gradient", "jacobian"]
            .iter()
            .map(|k| prof.seconds(k))
            .sum();
        vec![
            ("flux", prof.seconds("flux") / total),
            ("trsv", prof.seconds("trsv") / total),
            ("ilu", prof.seconds("ilu") / total),
            ("gradient", prof.seconds("gradient") / total),
            ("jacobian", prof.seconds("jacobian") / total),
            ("other", (total - tracked) / total),
        ]
    };
    let shares_paper: Vec<(&str, f64)> = vec![
        ("flux", 0.42),
        ("trsv", 0.17),
        ("ilu", 0.16),
        ("gradient", 0.13),
        ("jacobian", 0.07),
        ("other", 0.05),
    ];

    let combine = |shares: &[(&str, f64)], s: &KernelSpeedups| -> f64 {
        let reduced: f64 = shares
            .iter()
            .map(|(k, share)| {
                share
                    / match *k {
                        "flux" => s.flux,
                        "trsv" => s.trsv,
                        "ilu" => s.ilu,
                        "gradient" => s.gradient,
                        "jacobian" => s.jacobian,
                        _ => s.other,
                    }
            })
            .sum();
        1.0 / reduced
    };

    let mut table = Table::new(
        "Fig. 8a: full-application speedup vs cores (modeled on Xeon E5-2690v2)",
        &[
            "cores",
            "speedup (host profile)",
            "speedup (paper Fig.5 profile)",
        ],
    );
    for &cores in &THREAD_SWEEP {
        let s = model_speedups(&fix, &machine, cores);
        table.row(&[
            cores.to_string(),
            format!("{:.2}x", combine(&shares_host, &s)),
            format!("{:.2}x", combine(&shares_paper, &s)),
        ]);
    }
    emit("fig8a_app_speedup", &table);
    println!(
        "\nhost baseline run: {} steps, {} linear iterations, {:.3} s total",
        stats.time_steps, stats.linear_iters, total
    );
    println!("paper: 6.9x at 10 cores (parallel efficiency limited by bandwidth-bound TRSV)");
}
