//! Ablation studies beyond the paper's headline figures, backing the
//! design choices DESIGN.md calls out:
//!
//! 1. RCM reordering on/off for the flux kernel (locality);
//! 2. BCSR 4×4 vs scalar CSR SpMV (the 1999 papers' blocking claim);
//! 3. ILU temporary buffer: full vs compressed working set;
//! 4. lagged ILU factors: factorizations vs iterations trade;
//! 5. single-reduction GMRES: collectives per iteration (future work [28]);
//! 6. edge streaming order (sorted vs shuffled locality);
//! 7. software prefetch distance sweep.
//!
//! (ordering of sections in the output follows implementation history;
//! each emits its own table and CSV. The doc list above is the
//!    future-work direction [28]).
//!
//! All rows are host-measured (single-thread) except the working-set
//! sizes, which are exact counts.

use fun3d_bench::{emit, fmt_x, jacobian_fixture, measure, KernelFixture};
use fun3d_core::{flux, EdgeGeom, Fun3dApp, FlowConditions, NodeAos, OptConfig};
use fun3d_mesh::generator::MeshPreset;
use fun3d_mesh::DualMesh;
use fun3d_solver::gmres::{Gmres, GmresConfig};
use fun3d_solver::precond::IdentityPrecond;
use fun3d_solver::ptc::PtcConfig;
use fun3d_sparse::csr::Csr;
use fun3d_sparse::{ilu, TempBuffer};
use fun3d_util::report::{fmt_g, Table};
use fun3d_util::Rng64;

fn flux_time_on(mesh: &fun3d_mesh::Mesh, reps: usize) -> f64 {
    let dual = DualMesh::build(mesh);
    let geom = EdgeGeom::build(mesh, &dual);
    let cond = FlowConditions::default();
    let mut node = NodeAos::zeros(mesh.nvertices());
    node.set_freestream(&cond.qinf);
    let mut rng = Rng64::new(5);
    for x in node.q.iter_mut() {
        *x += rng.range_f64(-0.05, 0.05);
    }
    let bc = fun3d_core::bc::BcData::build(&dual);
    fun3d_core::gradient::green_gauss(&geom, &bc, &dual.vol, &mut node);
    let mut res = vec![0.0; node.n * 4];
    measure(reps, || {
        res.iter_mut().for_each(|x| *x = 0.0);
        flux::serial_aos(&geom, &node, cond.beta, &mut res);
    })
}

fn main() {
    let cli = fun3d_bench::Cli::parse(MeshPreset::Medium);

    // --- 1. RCM on/off -------------------------------------------------
    let scrambled = cli.mesh.build(); // generator scrambles by default
    let mut rcm = scrambled.clone();
    Fun3dApp::rcm_reorder(&mut rcm);
    let t_scrambled = flux_time_on(&scrambled, cli.reps);
    let t_rcm = flux_time_on(&rcm, cli.reps);
    let mut t1 = Table::new(
        "Ablation 1: vertex ordering and the flux kernel (host-measured)",
        &["ordering", "bandwidth", "seconds", "speedup"],
    );
    t1.row(&[
        "scrambled (as generated)".into(),
        scrambled.vertex_graph().bandwidth().to_string(),
        fmt_g(t_scrambled),
        fmt_x(1.0),
    ]);
    t1.row(&[
        "RCM".into(),
        rcm.vertex_graph().bandwidth().to_string(),
        fmt_g(t_rcm),
        fmt_x(t_scrambled / t_rcm),
    ]);
    emit("ablation1_rcm", &t1);

    // --- 2. BCSR vs scalar CSR -----------------------------------------
    let fix = KernelFixture::new(cli.mesh);
    let jac = jacobian_fixture(&fix, 1.0);
    let scalar = Csr::from_bcsr(&jac);
    let n = jac.dim();
    let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.17).cos()).collect();
    let mut y = vec![0.0; n];
    let t_bcsr = measure(cli.reps, || jac.spmv(&x, &mut y));
    let t_csr = measure(cli.reps, || scalar.spmv(&x, &mut y));
    let mut t2 = Table::new(
        "Ablation 2: SpMV storage (host-measured; paper's [2,3] blocking claim)",
        &["format", "index bytes", "seconds", "speedup"],
    );
    t2.row(&[
        "scalar CSR".into(),
        (scalar.col_idx.len() * 4).to_string(),
        fmt_g(t_csr),
        fmt_x(1.0),
    ]);
    t2.row(&[
        "BCSR 4x4".into(),
        (jac.col_idx.len() * 4).to_string(),
        fmt_g(t_bcsr),
        fmt_x(t_csr / t_bcsr),
    ]);
    emit("ablation2_bcsr", &t2);

    // --- 3. ILU buffer working set --------------------------------------
    let pattern = ilu::symbolic_iluk(&jac, 1);
    let t_full = measure(cli.reps, || {
        std::hint::black_box(ilu::factor(&jac, &pattern, TempBuffer::Full));
    });
    let t_comp = measure(cli.reps, || {
        std::hint::black_box(ilu::factor(&jac, &pattern, TempBuffer::Compressed));
    });
    let max_row = pattern.iter().map(Vec::len).max().unwrap_or(0);
    let full_ws = jac.nrows() * 128 + jac.nrows() * 4;
    let comp_ws = max_row * 128;
    let mut t3 = Table::new(
        "Ablation 3: ILU temporary buffer (paper Section V.B 'algorithmic optimization')",
        &["buffer", "scratch bytes touched", "seconds", "speedup"],
    );
    t3.row(&["full (n rows)".into(), full_ws.to_string(), fmt_g(t_full), fmt_x(1.0)]);
    t3.row(&[
        "compressed (pattern row)".into(),
        comp_ws.to_string(),
        fmt_g(t_comp),
        fmt_x(t_full / t_comp),
    ]);
    emit("ablation3_ilu_buffer", &t3);

    // --- 4. lagged ILU ---------------------------------------------------
    let mut t4 = Table::new(
        "Ablation 4: lagged preconditioner (real solves)",
        &["ilu lag", "time steps", "linear iters", "factorizations", "host seconds"],
    );
    for lag in [1usize, 2, 4] {
        let mut mesh = cli.mesh.build();
        Fun3dApp::rcm_reorder(&mut mesh);
        let mut cfg = OptConfig::baseline();
        cfg.ilu_lag = lag;
        let mut app = Fun3dApp::new(mesh, FlowConditions::default(), cfg);
        let (_, stats) = app.run(&PtcConfig {
            dt0: 2.0,
            rtol: 1e-8,
            max_steps: 150,
            ..Default::default()
        });
        let prof = app.profile();
        t4.row(&[
            lag.to_string(),
            stats.time_steps.to_string(),
            stats.linear_iters.to_string(),
            prof.calls("ilu").to_string(),
            fmt_g(prof.seconds("total")),
        ]);
    }
    emit("ablation4_ilu_lag", &t4);

    // --- 6. edge ordering ------------------------------------------------
    // The paper sorts each edge's endpoints and streams edges in
    // lexicographic order; shuffling the edge list destroys the gather
    // locality without changing the math.
    {
        let dual = DualMesh::build(&fix.mesh);
        let sorted = EdgeGeom::build(&fix.mesh, &dual);
        let mut rng = Rng64::new(99);
        let perm = rng.permutation(sorted.nedges());
        let shuffle = |v: &Vec<f64>| -> Vec<f64> { perm.iter().map(|&i| v[i]).collect() };
        let shuffled = EdgeGeom {
            edges: perm.iter().map(|&i| sorted.edges[i]).collect(),
            nx: shuffle(&sorted.nx),
            ny: shuffle(&sorted.ny),
            nz: shuffle(&sorted.nz),
            rx: shuffle(&sorted.rx),
            ry: shuffle(&sorted.ry),
            rz: shuffle(&sorted.rz),
        };
        let mut res = vec![0.0; fix.node.n * 4];
        let t_sorted = measure(cli.reps, || {
            res.iter_mut().for_each(|x| *x = 0.0);
            flux::serial_aos(&sorted, &fix.node, fix.cond.beta, &mut res);
        });
        let t_shuffled = measure(cli.reps, || {
            res.iter_mut().for_each(|x| *x = 0.0);
            flux::serial_aos(&shuffled, &fix.node, fix.cond.beta, &mut res);
        });
        let mut t6 = Table::new(
            "Ablation 6: edge streaming order (host-measured)",
            &["edge order", "seconds", "speedup"],
        );
        t6.row(&["shuffled".into(), fmt_g(t_shuffled), fmt_x(1.0)]);
        t6.row(&[
            "sorted (paper)".into(),
            fmt_g(t_sorted),
            fmt_x(t_shuffled / t_sorted),
        ]);
        emit("ablation6_edge_order", &t6);
    }

    // --- 7. prefetch distance sweep --------------------------------------
    {
        let dual = DualMesh::build(&fix.mesh);
        let geom = EdgeGeom::build(&fix.mesh, &dual);
        let mut res = vec![0.0; fix.node.n * 4];
        let mut t7 = Table::new(
            "Ablation 7: software prefetch distance (host-measured)",
            &["distance (edges)", "seconds"],
        );
        for dist in [0usize, 4, 8, 16, 32, 64] {
            let t = measure(cli.reps, || {
                res.iter_mut().for_each(|x| *x = 0.0);
                flux::serial_aos_simd_prefetch_dist(
                    &geom,
                    &fix.node,
                    fix.cond.beta,
                    &mut res,
                    dist,
                );
            });
            t7.row(&[dist.to_string(), fmt_g(t)]);
        }
        emit("ablation7_prefetch_distance", &t7);
    }

    // --- 5. single-reduction GMRES --------------------------------------
    let b: Vec<f64> = (0..n).map(|i| ((i % 11) as f64 - 5.0) * 0.1).collect();
    let cfg = GmresConfig {
        rtol: 1e-6,
        max_iters: 800,
        ..Default::default()
    };
    let r_std = Gmres::new(n, cfg).solve(&jac, &IdentityPrecond(n), &b, &mut vec![0.0; n]);
    let mut cfg1 = cfg;
    cfg1.single_reduction = true;
    let r_one = Gmres::new(n, cfg1).solve(&jac, &IdentityPrecond(n), &b, &mut vec![0.0; n]);
    let mut t5 = Table::new(
        "Ablation 5: single-reduction GMRES (paper future work [28])",
        &["variant", "iterations", "reductions", "reductions/iter"],
    );
    t5.row(&[
        "standard CGS".into(),
        r_std.iterations.to_string(),
        r_std.reductions.to_string(),
        format!("{:.2}", r_std.reductions as f64 / r_std.iterations.max(1) as f64),
    ]);
    t5.row(&[
        "single-reduction".into(),
        r_one.iterations.to_string(),
        r_one.reductions.to_string(),
        format!("{:.2}", r_one.reductions as f64 / r_one.iterations.max(1) as f64),
    ]);
    emit("ablation5_single_reduction", &t5);
}
