//! **Table I** — baseline mesh + solver statistics.
//!
//! Paper values (ONERA M6): Mesh-C 3.58e5 vertices / 2.40e6 edges, 13
//! time steps, 383 linear iterations, 282 s serial; Mesh-D 2.76e6 /
//! 1.89e7, 29 steps, 1709 iterations, 1.02e4 s.
//!
//! Default run uses the scaled presets (`small` and `medium`) so it
//! finishes quickly on this container; `--mesh mesh-c` generates the
//! paper-size mesh (statistics only unless you are patient). The modeled
//! serial time column projects the measured per-edge/per-row work onto
//! the paper's Xeon E5-2690v2 at Mesh-C/Mesh-D scale.

use fun3d_bench::{build_mesh, emit};
use fun3d_core::{Fun3dApp, FlowConditions, OptConfig};
use fun3d_mesh::generator::MeshPreset;
use fun3d_mesh::stats::MeshStats;
use fun3d_solver::ptc::PtcConfig;
use fun3d_util::report::{fmt_g, Table};
use fun3d_util::Timer;

fn run_case(preset: MeshPreset, table: &mut Table) {
    let mesh = build_mesh(preset);
    let stats = MeshStats::of(&mesh);
    let mut app = Fun3dApp::new(mesh, FlowConditions::default(), OptConfig::baseline());
    let t = Timer::start();
    let (_, solve) = app.run(&PtcConfig {
        dt0: 2.0,
        rtol: 1e-8,
        max_steps: 100,
        ..Default::default()
    });
    let secs = t.seconds();
    table.row(&[
        format!("{preset:?}"),
        stats.nvertices.to_string(),
        stats.nedges.to_string(),
        solve.time_steps.to_string(),
        solve.linear_iters.to_string(),
        fmt_g(secs),
        if solve.converged { "yes" } else { "NO" }.to_string(),
    ]);
}

fn main() {
    // Accept --mesh to override the larger of the two cases.
    let cli = fun3d_bench::Cli::parse(MeshPreset::Medium);
    let mut table = Table::new(
        "Table I: baseline (serial, out-of-the-box) solver statistics",
        &[
            "mesh",
            "vertices",
            "edges",
            "time steps",
            "linear iters",
            "exec time (s, host)",
            "converged",
        ],
    );
    // "Mesh-C'" and "Mesh-D'" stand-ins: one size below the requested
    // preset, and the requested preset.
    let smaller = match cli.mesh {
        MeshPreset::Tiny | MeshPreset::Small => MeshPreset::Tiny,
        MeshPreset::Medium => MeshPreset::Small,
        MeshPreset::Large => MeshPreset::Medium,
        MeshPreset::MeshC => MeshPreset::Large,
        MeshPreset::MeshD => MeshPreset::MeshC,
    };
    run_case(smaller, &mut table);
    run_case(cli.mesh, &mut table);
    emit("table1_baseline", &table);
    println!(
        "\npaper reference: Mesh-C 3.58e5 v / 2.40e6 e, 13 steps, 383 iters, 2.82e2 s;\n\
         Mesh-D 2.76e6 v / 1.89e7 e, 29 steps, 1709 iters, 1.02e4 s"
    );
}
