//! **load_gen** — latency-gated load benchmark for the `fun3d-serve`
//! tier.
//!
//! Three measurement sections, one artifact
//! (`target/experiments/load_gen.json`, `kind: "load_gen"`):
//!
//! 1. **Cache ablation** (closed-loop): the same repeated-mesh job mix
//!    is pushed through two services in the same process — one with the
//!    artifact cache enabled (timed on its *second*, fully-warm pass)
//!    and one with the cache disabled (every request pays mesh build,
//!    reordering, setup, and factorization; exactly what
//!    `FUN3D_SERVE_CACHE=off` does to a running service). The
//!    `speedup` = cold-throughput ÷ warm-throughput ratio is the
//!    headline number `--check` gates at ≥ 2×.
//! 2. **Open-loop phases**: requests arrive on a fixed schedule at
//!    configurable rates (`--rates`, req/s) over a tenant mix, against
//!    a warm service. Latency is measured from the *scheduled* arrival
//!    (so submitter stalls count, the open-loop discipline), and each
//!    phase reports offered/completed/rejected, achieved rps, p50/p99
//!    latency, and the phase's cache hit rate.
//! 3. **Reject probe**: a deliberately starved service (1 team, queue
//!    cap 1) is flooded to force admission control to shed load; the
//!    artifact records the observed structured reject reasons.
//!
//! Usage: `load_gen [--rates 4,8] [--requests N] [--repeats N]
//! [--teams N] [--team-threads N] [--check <file>]`

use fun3d_machine::MachineSpec;
use fun3d_mesh::generator::MeshPreset;
use fun3d_serve::wire::SolveRequest;
use fun3d_serve::{ServeConfig, Service};
use fun3d_util::report::{experiments_dir, write_json, Table};
use fun3d_util::telemetry::flight::json_f64;
use fun3d_util::telemetry::json::Json;
use fun3d_util::telemetry::metrics;
use std::time::{Duration, Instant};

struct Args {
    rates: Vec<f64>,
    requests: usize,
    repeats: usize,
    teams: usize,
    team_threads: usize,
    check: Option<String>,
}

fn parse_args() -> Args {
    let host = ServeConfig::host_default();
    let mut out = Args {
        rates: vec![4.0, 8.0],
        requests: 24,
        repeats: 6,
        teams: host.teams,
        team_threads: host.team_threads,
        check: None,
    };
    let args: Vec<String> = std::env::args().collect();
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--rates" => {
                i += 1;
                out.rates = args[i]
                    .split(',')
                    .map(|r| r.trim().parse().expect("--rates takes numbers (req/s)"))
                    .collect();
            }
            "--requests" => {
                i += 1;
                out.requests = args[i].parse().expect("--requests takes an integer");
            }
            "--repeats" => {
                i += 1;
                out.repeats = args[i].parse().expect("--repeats takes an integer");
            }
            "--teams" => {
                i += 1;
                out.teams = args[i].parse().expect("--teams takes an integer");
            }
            "--team-threads" => {
                i += 1;
                out.team_threads = args[i].parse().expect("--team-threads takes an integer");
            }
            "--check" => {
                i += 1;
                out.check = Some(args[i].clone());
            }
            "--help" | "-h" => {
                eprintln!(
                    "options: --rates <r1,r2> --requests <n> --repeats <n> \
                     --teams <n> --team-threads <n> --check <json>"
                );
                std::process::exit(0);
            }
            other => panic!("unknown argument '{other}'"),
        }
        i += 1;
    }
    assert!(!out.rates.is_empty(), "--rates list is empty");
    assert!(out.requests >= 4, "--requests must be at least 4");
    assert!(out.repeats >= 2, "--repeats must be at least 2");
    out
}

fn serve_config(args: &Args, cache: bool) -> ServeConfig {
    let mut cfg = ServeConfig::host_default();
    cfg.teams = args.teams.max(1);
    cfg.team_threads = args.team_threads.max(1);
    cfg.queue_cap = 256;
    cfg.tenant_queue_cap = 128;
    cfg.cache = cache;
    cfg
}

/// The repeated-mesh job mix: few distinct shapes, many repeats — the
/// serving workload the artifact cache exists for. Setup (mesh build,
/// RCM, metrics, partitions, symbolic ILU, first factorization)
/// dominates each request; the solve itself is short.
fn job_mix(tenant_of: impl Fn(usize) -> String, n: usize) -> Vec<SolveRequest> {
    (0..n)
        .map(|i| {
            // The small preset (~14k unknowns) makes preparation the
            // dominant cost per request, which is exactly the serving
            // regime: meshes repeat, solves are short.
            let mut req = SolveRequest::new(tenant_of(i), MeshPreset::Small);
            // Two shapes (distinct ILU fill ⇒ distinct prep + factor
            // keys) so the cache holds more than one artifact; the
            // high fills make factorization — fully cacheable — the
            // bulk of each cold request.
            req.ilu_fill = if i % 3 == 2 { 2 } else { 1 };
            req.max_steps = 1;
            req.rtol = 1e-1;
            // Latency-bounded request: cap the Krylov budget the way a
            // latency-sensitive tenant would.
            req.max_linear_iters = 4;
            req
        })
        .collect()
}

struct PassResult {
    wall_s: f64,
    rps: f64,
    hit_rate: f64,
}

/// Closed-loop: submit the whole mix, drain, measure the wall. Hit rate
/// is the delta over this pass only.
fn closed_loop_pass(svc: &Service, jobs: Vec<SolveRequest>) -> PassResult {
    let before = svc.stats().cache;
    let n = jobs.len();
    let t0 = Instant::now();
    let handles: Vec<_> = jobs
        .into_iter()
        .map(|j| svc.submit(j).expect("ablation queue overflow"))
        .collect();
    for h in handles {
        h.wait();
    }
    let wall_s = t0.elapsed().as_secs_f64();
    let after = svc.stats().cache;
    let hits = (after.app.hits - before.app.hits) + (after.factor.hits - before.factor.hits);
    let lookups = hits + (after.app.misses - before.app.misses)
        + (after.factor.misses - before.factor.misses);
    PassResult {
        wall_s,
        rps: n as f64 / wall_s,
        hit_rate: if lookups == 0 { 0.0 } else { hits as f64 / lookups as f64 },
    }
}

struct Ablation {
    jobs: usize,
    cold: PassResult,
    warm: PassResult,
    speedup: f64,
}

fn run_ablation(args: &Args) -> Ablation {
    let n = args.repeats * 4;
    let tenant = |i: usize| format!("t{}", i % 3);

    // Cache-on service: pass 1 populates, pass 2 is the warm number.
    let svc = Service::start(serve_config(args, true));
    closed_loop_pass(&svc, job_mix(tenant, n));
    let warm = closed_loop_pass(&svc, job_mix(tenant, n));
    svc.shutdown();

    // Cache-off service (what FUN3D_SERVE_CACHE=off forces): every
    // request rebuilds everything.
    let svc = Service::start(serve_config(args, false));
    let cold = closed_loop_pass(&svc, job_mix(tenant, n));
    svc.shutdown();

    let speedup = warm.rps / cold.rps;
    Ablation {
        jobs: n,
        cold,
        warm,
        speedup,
    }
}

struct Phase {
    rate_hz: f64,
    offered: usize,
    completed: usize,
    rejected: usize,
    rps: f64,
    p50_ms: f64,
    p99_ms: f64,
    mean_ms: f64,
    hit_rate: f64,
    /// The service's own view of this phase: the `serve.total_ns`
    /// live-histogram delta (admit→reply), cross-checked against the
    /// client-side sorted-vec percentiles above.
    live_count: u64,
    live_p50_ms: f64,
    live_p99_ms: f64,
}

/// Open-loop arrival at `rate_hz` against a shared warm service.
/// Latencies are measured from each request's *scheduled* arrival time.
fn run_phase(svc: &Service, args: &Args, rate_hz: f64) -> Phase {
    let before = svc.stats().cache;
    let live_before = metrics::snapshot();
    let jobs = job_mix(|i| format!("t{}", i % 3), args.requests);
    let offered = jobs.len();
    let epoch = Instant::now();
    let mut waiters = Vec::new();
    let mut rejected = 0usize;
    for (i, job) in jobs.into_iter().enumerate() {
        let scheduled = Duration::from_secs_f64(i as f64 / rate_hz);
        if let Some(sleep) = scheduled.checked_sub(epoch.elapsed()) {
            std::thread::sleep(sleep);
        }
        match svc.submit(job) {
            Ok(handle) => waiters.push(std::thread::spawn(move || {
                handle.wait();
                (epoch.elapsed() - scheduled).as_secs_f64() * 1e3
            })),
            Err(_) => rejected += 1,
        }
    }
    let mut latencies_ms: Vec<f64> = waiters
        .into_iter()
        .map(|w| w.join().expect("latency waiter panicked"))
        .collect();
    let span_s = epoch.elapsed().as_secs_f64();
    latencies_ms.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let completed = latencies_ms.len();
    let after = svc.stats().cache;
    let hits = (after.app.hits - before.app.hits) + (after.factor.hits - before.factor.hits);
    let lookups = hits + (after.app.misses - before.app.misses)
        + (after.factor.misses - before.factor.misses);

    // The service's own admit→reply histogram over exactly this phase
    // (the delta discards the priming pass and earlier phases). Every
    // admitted request lands in it once, so the counts must agree,
    // and the service-side window is contained in the client-side one
    // (scheduled arrival ≤ admit, reply ≤ wait() return) — so the
    // live percentiles can only sit below the client's, up to the
    // histogram's one-log-bucket resolution (1/64 relative).
    let live = {
        let now = metrics::snapshot();
        let empty = metrics::HistSnapshot::empty("serve.total_ns");
        let cur = now.hist("serve.total_ns").unwrap_or(&empty).clone();
        match live_before.hist("serve.total_ns") {
            Some(b) => cur.delta_from(b),
            None => cur,
        }
    };
    let live_p50_ms = live.quantile(0.50) * 1e-6;
    let live_p99_ms = live.quantile(0.99) * 1e-6;
    let p50_ms = metrics::quantile_sorted(&latencies_ms, 0.50);
    let p99_ms = metrics::quantile_sorted(&latencies_ms, 0.99);
    if completed > 0 && metrics::enabled() {
        assert_eq!(
            live.count, completed as u64,
            "live serve.total_ns delta disagrees with completed count"
        );
        for (client, service, which) in
            [(p50_ms, live_p50_ms, "p50"), (p99_ms, live_p99_ms, "p99")]
        {
            // One bucket of relative slack plus a small absolute floor
            // for sub-bucket jitter.
            assert!(
                service <= client * (1.0 + 1.0 / 64.0) + 0.5,
                "service-side {which} {service:.3} ms exceeds client-side \
                 {client:.3} ms beyond bucket error"
            );
        }
    }

    Phase {
        rate_hz,
        offered,
        completed,
        rejected,
        rps: completed as f64 / span_s,
        p50_ms,
        p99_ms,
        mean_ms: latencies_ms.iter().sum::<f64>() / completed.max(1) as f64,
        hit_rate: if lookups == 0 { 0.0 } else { hits as f64 / lookups as f64 },
        live_count: live.count,
        live_p50_ms,
        live_p99_ms,
    }
}

struct RejectProbe {
    offered: usize,
    rejected: usize,
    reasons: Vec<&'static str>,
}

/// Floods a deliberately starved service (1 serial team, queue cap 1)
/// so admission control must shed load.
fn run_reject_probe() -> RejectProbe {
    let cfg = ServeConfig {
        teams: 1,
        team_threads: 1,
        queue_cap: 1,
        tenant_queue_cap: 1,
        app_cache_per_team: 1,
        factor_cache_cap: 1,
        cache: true,
        tenant_weights: Vec::new(),
    };
    let svc = Service::start(cfg);
    let offered = 8;
    let mut rejected = 0;
    let mut reasons = Vec::new();
    let mut handles = Vec::new();
    for i in 0..offered {
        let mut req = SolveRequest::new(format!("flood{i}"), MeshPreset::Tiny);
        req.max_steps = 2;
        req.rtol = 1e-1;
        match svc.submit(req) {
            Ok(h) => handles.push(h),
            Err(r) => {
                rejected += 1;
                if !reasons.contains(&r.reason.slug()) {
                    reasons.push(r.reason.slug());
                }
            }
        }
    }
    for h in handles {
        h.wait();
    }
    svc.shutdown();
    RejectProbe {
        offered,
        rejected,
        reasons,
    }
}

/// `--check` mode: the artifact rot guard run by scripts/verify.sh.
/// Structural validity plus the two acceptance claims: artifact caching
/// is worth ≥ 2× throughput on the repeated-mesh mix, and admission
/// control demonstrably shed at least one request in the probe.
fn check_artifact(path: &str) -> ! {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("check failed: cannot read {path}: {e}");
        std::process::exit(1);
    });
    let doc = Json::parse(&text).unwrap_or_else(|e| {
        eprintln!("check failed: {path} is not valid JSON: {e}");
        std::process::exit(1);
    });
    let mut problems = Vec::new();
    if doc.get("kind").and_then(Json::as_str) != Some("load_gen") {
        problems.push("missing kind:\"load_gen\" marker".to_string());
    }
    for key in ["machine", "service", "ablation", "phases", "reject_probe"] {
        if doc.get(key).is_none() {
            problems.push(format!("missing key '{key}'"));
        }
    }
    if let Some(ab) = doc.get("ablation") {
        let speedup = ab.get("speedup").and_then(Json::as_f64);
        match speedup {
            Some(s) if s >= 2.0 => {}
            Some(s) => problems.push(format!(
                "ablation speedup {s:.2}x below the 2x acceptance floor \
                 (artifact caching is not paying for itself)"
            )),
            None => problems.push("ablation missing 'speedup'".to_string()),
        }
        for pass in ["cold", "warm"] {
            match ab.get(pass).and_then(|p| p.get("rps")).and_then(Json::as_f64) {
                Some(r) if r > 0.0 => {}
                _ => problems.push(format!("ablation '{pass}' missing positive rps")),
            }
        }
        match ab
            .get("warm")
            .and_then(|p| p.get("hit_rate"))
            .and_then(Json::as_f64)
        {
            Some(h) if h > 0.0 => {}
            _ => problems.push("warm pass shows no cache hits".to_string()),
        }
    }
    match doc.get("phases").and_then(Json::as_arr) {
        None => problems.push("'phases' is not an array".to_string()),
        Some(ps) if ps.is_empty() => problems.push("'phases' array is empty".to_string()),
        Some(ps) => {
            for (i, p) in ps.iter().enumerate() {
                let rate = p.get("rate_hz").and_then(Json::as_f64);
                let rps = p.get("rps").and_then(Json::as_f64);
                let p50 = p.get("p50_ms").and_then(Json::as_f64);
                let p99 = p.get("p99_ms").and_then(Json::as_f64);
                let completed = p.get("completed").and_then(Json::as_f64);
                let rejected = p.get("rejected").and_then(Json::as_f64);
                match (rate, rps, p50, p99, completed, rejected) {
                    (Some(rate), Some(rps), Some(p50), Some(p99), Some(c), Some(rej)) => {
                        if !(rate > 0.0 && rps > 0.0 && c > 0.0) {
                            problems.push(format!("phase {i}: non-positive rate/rps/completed"));
                        }
                        if !(p50 > 0.0 && p99 >= p50) {
                            problems.push(format!(
                                "phase {i}: latency order violated (p50 {p50}, p99 {p99})"
                            ));
                        }
                        // The smoke claim: at the lowest offered rate,
                        // nothing is shed.
                        if i == 0 && rej != 0.0 {
                            problems
                                .push(format!("phase 0 shed {rej} requests at the lowest rate"));
                        }
                        // The live cross-check: the service's own
                        // histogram saw every completed request, and
                        // its percentiles sit at or below the
                        // client-side ones within one log bucket
                        // (1/64 relative, 0.5 ms absolute slack).
                        let live = p.get("live");
                        let lcount =
                            live.and_then(|l| l.get("count")).and_then(Json::as_f64);
                        let lp50 =
                            live.and_then(|l| l.get("p50_ms")).and_then(Json::as_f64);
                        let lp99 =
                            live.and_then(|l| l.get("p99_ms")).and_then(Json::as_f64);
                        match (lcount, lp50, lp99) {
                            (Some(lc), Some(lp50), Some(lp99)) => {
                                if lc != c {
                                    problems.push(format!(
                                        "phase {i}: live count {lc} != completed {c}"
                                    ));
                                }
                                let tol = 1.0 + 1.0 / 64.0;
                                if !(lp50 > 0.0 && lp50 <= p50 * tol + 0.5) {
                                    problems.push(format!(
                                        "phase {i}: live p50 {lp50:.3} vs client {p50:.3} \
                                         outside bucket error"
                                    ));
                                }
                                if !(lp99 > 0.0 && lp99 <= p99 * tol + 0.5) {
                                    problems.push(format!(
                                        "phase {i}: live p99 {lp99:.3} vs client {p99:.3} \
                                         outside bucket error"
                                    ));
                                }
                            }
                            _ => problems.push(format!(
                                "phase {i}: missing live service-side section"
                            )),
                        }
                    }
                    _ => problems.push(format!("phase {i}: malformed entry")),
                }
            }
        }
    }
    match doc
        .get("reject_probe")
        .and_then(|r| r.get("rejected"))
        .and_then(Json::as_f64)
    {
        Some(r) if r >= 1.0 => {}
        _ => problems.push("reject probe observed no admission rejects".to_string()),
    }
    if problems.is_empty() {
        println!("{path}: OK");
        std::process::exit(0);
    }
    for p in &problems {
        eprintln!("check failed: {p}");
    }
    std::process::exit(1);
}

fn main() {
    let args = parse_args();
    if let Some(path) = &args.check {
        check_artifact(path);
    }

    println!(
        "load_gen: {} team(s) x {} thread(s), {} requests/phase, rates {:?} req/s",
        args.teams, args.team_threads, args.requests, args.rates
    );

    // 1. Cache ablation (closed-loop, same mix, warm vs cache-off).
    let ablation = run_ablation(&args);
    let mut table = Table::new(
        &format!(
            "load_gen: artifact-cache ablation ({} repeated-mesh jobs)",
            ablation.jobs
        ),
        &["pass", "wall s", "rps", "hit rate"],
    );
    for (name, pass) in [("cache off", &ablation.cold), ("warm", &ablation.warm)] {
        table.row(&[
            name.to_string(),
            format!("{:.3}", pass.wall_s),
            format!("{:.2}", pass.rps),
            format!("{:.3}", pass.hit_rate),
        ]);
    }
    table.row(&[
        "speedup".to_string(),
        String::new(),
        format!("{:.2}x", ablation.speedup),
        String::new(),
    ]);
    fun3d_bench::emit("load_gen[ablation]", &table);

    // 2. Open-loop phases against one warm shared service.
    let svc = Service::start(serve_config(&args, true));
    // Prime the caches so the phases measure steady-state serving.
    closed_loop_pass(&svc, job_mix(|i| format!("t{}", i % 3), 4));
    let phases: Vec<Phase> = args.rates.iter().map(|&r| run_phase(&svc, &args, r)).collect();
    let stats = svc.shutdown();
    assert!(
        stats.pool_high_water <= stats.worker_budget,
        "pool budget exceeded: {} > {}",
        stats.pool_high_water,
        stats.worker_budget
    );
    let mut table = Table::new(
        &format!("load_gen: open-loop phases ({} requests each)", args.requests),
        &[
            "rate req/s",
            "rps",
            "p50 ms",
            "p99 ms",
            "live p50",
            "live p99",
            "mean ms",
            "rejected",
            "hit rate",
        ],
    );
    for p in &phases {
        table.row(&[
            format!("{:.1}", p.rate_hz),
            format!("{:.2}", p.rps),
            format!("{:.2}", p.p50_ms),
            format!("{:.2}", p.p99_ms),
            format!("{:.2}", p.live_p50_ms),
            format!("{:.2}", p.live_p99_ms),
            format!("{:.2}", p.mean_ms),
            p.rejected.to_string(),
            format!("{:.3}", p.hit_rate),
        ]);
    }
    fun3d_bench::emit("load_gen[phases]", &table);

    // 3. Reject probe.
    let probe = run_reject_probe();
    println!(
        "reject probe: {}/{} shed ({})",
        probe.rejected,
        probe.offered,
        probe.reasons.join(",")
    );
    assert!(
        probe.rejected >= 1,
        "starved service must shed at least one request"
    );

    let pass_json = |p: &PassResult| {
        Json::obj(vec![
            ("wall_seconds", Json::num(p.wall_s)),
            ("rps", Json::num(p.rps)),
            ("hit_rate", Json::num(p.hit_rate)),
        ])
    };
    let summary = Json::obj(vec![
        ("kind", Json::str("load_gen")),
        (
            "machine",
            Json::obj(vec![(
                "cores",
                Json::num(MachineSpec::host().cores as f64),
            )]),
        ),
        (
            "service",
            Json::obj(vec![
                ("teams", Json::num(args.teams as f64)),
                ("team_threads", Json::num(args.team_threads as f64)),
                ("pool_high_water", Json::num(stats.pool_high_water as f64)),
                ("worker_budget", Json::num(stats.worker_budget as f64)),
            ]),
        ),
        (
            "ablation",
            Json::obj(vec![
                ("jobs", Json::num(ablation.jobs as f64)),
                ("cold", pass_json(&ablation.cold)),
                ("warm", pass_json(&ablation.warm)),
                ("speedup", Json::num(ablation.speedup)),
            ]),
        ),
        (
            "phases",
            Json::Arr(
                phases
                    .iter()
                    .map(|p| {
                        Json::obj(vec![
                            ("rate_hz", Json::num(p.rate_hz)),
                            ("offered", Json::num(p.offered as f64)),
                            ("completed", Json::num(p.completed as f64)),
                            ("rejected", Json::num(p.rejected as f64)),
                            ("rps", Json::num(p.rps)),
                            ("p50_ms", json_f64(p.p50_ms)),
                            ("p99_ms", json_f64(p.p99_ms)),
                            ("mean_ms", Json::num(p.mean_ms)),
                            ("hit_rate", Json::num(p.hit_rate)),
                            (
                                "live",
                                Json::obj(vec![
                                    ("count", Json::num(p.live_count as f64)),
                                    ("p50_ms", json_f64(p.live_p50_ms)),
                                    ("p99_ms", json_f64(p.live_p99_ms)),
                                ]),
                            ),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "reject_probe",
            Json::obj(vec![
                ("offered", Json::num(probe.offered as f64)),
                ("rejected", Json::num(probe.rejected as f64)),
                (
                    "reasons",
                    Json::Arr(probe.reasons.iter().map(|r| Json::str(*r)).collect()),
                ),
            ]),
        ),
    ]);
    let dir = experiments_dir();
    match write_json(&dir, "load_gen", &summary) {
        Ok(p) => println!("[json summary written to {}]", p.display()),
        Err(e) => eprintln!("warning: could not write json summary: {e}"),
    }
}
