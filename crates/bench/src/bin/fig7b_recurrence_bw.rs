//! **Figure 7b** — ILU/TRSV achieved bandwidth vs cores, level
//! scheduling vs P2P sparsification.
//!
//! Paper: TRSV with P2P reaches 94% of STREAM at 10 cores and saturates
//! around 4 cores; ILU scales to ~8 cores and achieves lower efficiency
//! (irregular access); level scheduling trails P2P everywhere.

use fun3d_bench::{emit, jacobian_fixture, KernelFixture, THREAD_SWEEP};
use fun3d_machine::{kernels, MachineSpec, RecurrenceCosts};
use fun3d_mesh::generator::MeshPreset;
use fun3d_sparse::{ilu, DagStats, LevelSchedule, P2pSchedule, TempBuffer};
use fun3d_util::report::Table;

fn main() {
    let cli = fun3d_bench::Cli::parse(MeshPreset::Medium);
    let fix = KernelFixture::new(cli.mesh);
    let jac = jacobian_fixture(&fix, 1.0);
    let pattern = ilu::symbolic_iluk(&jac, 1);
    let factors = ilu::factor(&jac, &pattern, TempBuffer::Compressed);
    let machine = MachineSpec::xeon_e5_2690v2();
    let costs = RecurrenceCosts::default();

    let fwd_blocks: Vec<usize> = (0..factors.nrows())
        .map(|r| factors.l.row_ptr[r + 1] - factors.l.row_ptr[r] + 1)
        .collect();
    let bwd_blocks: Vec<usize> = (0..factors.nrows())
        .map(|r| factors.u.row_ptr[r + 1] - factors.u.row_ptr[r] + 1)
        .collect();
    let trsv_bytes =
        (fwd_blocks.iter().sum::<usize>() + bwd_blocks.iter().sum::<usize>()) as f64
            * costs.trsv_bytes_per_block;

    let ilu_blocks: Vec<usize> = (0..factors.nrows())
        .map(|r| {
            let low = factors.l.row_ptr[r + 1] - factors.l.row_ptr[r];
            let updates: usize = factors.l.col_idx
                [factors.l.row_ptr[r]..factors.l.row_ptr[r + 1]]
                .iter()
                .map(|&k| factors.u.row_ptr[k as usize + 1] - factors.u.row_ptr[k as usize])
                .sum();
            low + updates + 1
        })
        .collect();
    let ilu_bytes = ilu_blocks.iter().sum::<usize>() as f64 * costs.ilu_bytes_per_block;

    let lvl_f = LevelSchedule::forward(&factors.l);
    let lvl_b = LevelSchedule::backward(&factors.u);
    let dag = DagStats::for_trsv(&factors.l, &factors.u);
    let ilu_dag = DagStats::for_ilu(&pattern);

    let level_weights = |s: &LevelSchedule, blocks: &[usize]| -> Vec<Vec<usize>> {
        s.rows
            .iter()
            .map(|rows| rows.iter().map(|&r| blocks[r as usize]).collect())
            .collect()
    };

    let mut table = Table::new(
        "Fig. 7b: achieved bandwidth (GB/s) vs cores (modeled; STREAM = 34.8 GB/s)",
        &[
            "cores",
            "TRSV level",
            "TRSV p2p",
            "TRSV p2p %STREAM",
            "ILU level",
            "ILU p2p",
        ],
    );
    for &cores in &THREAD_SWEEP {
        let threads = cores * machine.smt;
        let p2p_f = P2pSchedule::forward(&factors.l, threads);
        let p2p_b = P2pSchedule::backward(&factors.u, threads);
        let p2p_loads = |s: &P2pSchedule, blocks: &[usize]| -> (Vec<usize>, Vec<usize>) {
            (
                s.tasks
                    .iter()
                    .map(|t| t.iter().map(|task| blocks[task.row as usize]).sum())
                    .collect(),
                s.tasks
                    .iter()
                    .map(|t| t.iter().map(|task| task.waits.len()).sum())
                    .collect(),
            )
        };

        let t_lvl = kernels::level_sched_time(
            &machine,
            threads,
            &level_weights(&lvl_f, &fwd_blocks),
            costs.trsv_cycles_per_block,
            costs.trsv_bytes_per_block,
        ) + kernels::level_sched_time(
            &machine,
            threads,
            &level_weights(&lvl_b, &bwd_blocks),
            costs.trsv_cycles_per_block,
            costs.trsv_bytes_per_block,
        );
        let (fl, fw) = p2p_loads(&p2p_f, &fwd_blocks);
        let (bl, bw) = p2p_loads(&p2p_b, &bwd_blocks);
        let t_p2p = kernels::p2p_time(
            &machine,
            &fl,
            &fw,
            dag.critical_flops / 64.0,
            costs.trsv_cycles_per_block,
            costs.trsv_bytes_per_block,
        ) + kernels::p2p_time(
            &machine,
            &bl,
            &bw,
            dag.critical_flops / 64.0,
            costs.trsv_cycles_per_block,
            costs.trsv_bytes_per_block,
        );
        let t_ilu_lvl = kernels::level_sched_time(
            &machine,
            threads,
            &level_weights(&lvl_f, &ilu_blocks),
            costs.ilu_cycles_per_block,
            costs.ilu_bytes_per_block,
        );
        let (il, iw) = p2p_loads(&p2p_f, &ilu_blocks);
        let t_ilu_p2p = kernels::p2p_time(
            &machine,
            &il,
            &iw,
            ilu_dag.critical_flops / 128.0,
            costs.ilu_cycles_per_block,
            costs.ilu_bytes_per_block,
        );

        table.row(&[
            cores.to_string(),
            format!("{:.1}", trsv_bytes / t_lvl / 1e9),
            format!("{:.1}", trsv_bytes / t_p2p / 1e9),
            format!("{:.0}%", 100.0 * trsv_bytes / t_p2p / 1e9 / machine.stream_gbs),
            format!("{:.1}", ilu_bytes / t_ilu_lvl / 1e9),
            format!("{:.1}", ilu_bytes / t_ilu_p2p / 1e9),
        ]);
    }
    emit("fig7b_recurrence_bw", &table);
    println!("\npaper: TRSV-P2P hits 94% of STREAM at 10 cores, saturating near 4 cores");
}
