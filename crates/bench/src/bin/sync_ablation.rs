//! **sync_ablation** — synchronization-cost ablation for the solver,
//! across the mesh-size trajectory.
//!
//! Region-per-op GMRES launches a pool region (a full fork-join
//! rendezvous) for *every* vector op, SpMV, and triangular sweep;
//! persistent-SPMD-region GMRES runs each Arnoldi iteration inside ONE
//! region with spin-barrier phases and tree reductions inside. The two
//! paths are bitwise identical at a fixed thread count, so any timing
//! difference is pure synchronization cost — the shared-memory analogue
//! of the paper's collectives discussion (the `MPI_Allreduce`-bound
//! vector ops of Table 3).
//!
//! This bench is size-aware: it sweeps a *list* of mesh presets
//! (tiny → medium → large covers ~10³–10⁵·4 unknowns), because the
//! thread-scaling story inverts with problem size — below the
//! sync-cost crossover, every parallel scheme loses to plain serial
//! execution. For each mesh it runs four modes (`serial`, `per-op`,
//! `team`, and the adaptive `auto` policy) at each thread count and
//! reports every row's speedup against the nt=1 **serial** baseline, so
//! absolute slowdowns are visible (a per-op-relative speedup would mask
//! them).
//!
//! Emits, per mesh / thread count / mode:
//!
//! * median and MAD of the per-GMRES-iteration wall time, total wall
//!   seconds, and the per-config wall budget;
//! * pool regions launched per GMRES iteration;
//! * `speedup_vs_nt1_serial` (absolute, serial-anchored);
//!
//! plus a per-mesh `scaling` section (best-mode speedup vs nt=1 and the
//! modeled crossover size) and writes
//! `target/experiments/sync_ablation.json`.
//!
//! Usage: `sync_ablation [--meshes a,b,c] [--threads 1,2,4] [--reps n]
//! [--check <file>]`

use fun3d_bench::{jacobian_fixture, KernelFixture};
use fun3d_mesh::generator::MeshPreset;
use fun3d_solver::{AutoPolicy, Gmres, GmresConfig, GmresExec, SerialIlu};
use fun3d_threads::ThreadPool;
use fun3d_util::report::{experiments_dir, fmt_g, write_json, Table};
use fun3d_util::telemetry::json::Json;
use std::sync::Arc;

struct Args {
    meshes: Vec<MeshPreset>,
    threads: Vec<usize>,
    reps: usize,
    check: Option<String>,
}

fn parse_mesh_list(s: &str) -> Vec<MeshPreset> {
    s.split(',')
        .map(|m| {
            MeshPreset::parse(m.trim())
                .unwrap_or_else(|| panic!("unknown mesh preset '{m}'"))
        })
        .collect()
}

fn parse_args() -> Args {
    let mut out = Args {
        meshes: vec![MeshPreset::Tiny],
        threads: vec![1, 2, 4],
        reps: 5,
        check: None,
    };
    let args: Vec<String> = std::env::args().collect();
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            // --mesh kept as a single-mesh alias of --meshes
            "--meshes" | "--mesh" => {
                i += 1;
                out.meshes = parse_mesh_list(&args[i]);
            }
            "--threads" => {
                i += 1;
                out.threads = args[i]
                    .split(',')
                    .map(|t| t.trim().parse().expect("--threads takes integers"))
                    .collect();
            }
            "--reps" => {
                i += 1;
                out.reps = args[i].parse().expect("--reps takes an integer");
            }
            "--check" => {
                i += 1;
                out.check = Some(args[i].clone());
            }
            "--help" | "-h" => {
                eprintln!(
                    "options: --meshes <tiny,small,medium,large> --threads <1,2,4> \
                     --reps <n> --check <json>"
                );
                std::process::exit(0);
            }
            other => panic!("unknown argument '{other}'"),
        }
        i += 1;
    }
    assert!(!out.meshes.is_empty(), "--meshes list is empty");
    assert!(
        out.threads.contains(&1),
        "--threads must include 1 (the scaling baseline)"
    );
    out
}

/// (median, MAD) of a sample set; MAD is reported in the same units.
fn median_mad(samples: &mut [f64]) -> (f64, f64) {
    assert!(!samples.is_empty());
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let med = samples[samples.len() / 2];
    let mut dev: Vec<f64> = samples.iter().map(|s| (s - med).abs()).collect();
    dev.sort_by(|a, b| a.partial_cmp(b).unwrap());
    (med, dev[dev.len() / 2])
}

/// Per-config wall budget, seconds: room for `reps` solves of a
/// memory-bound system this size on a ~few-GB/s core, with a floor for
/// tiny fixtures. Overruns are reported (and recorded), not fatal —
/// the budget is the signal that a mesh is too big for its tier.
fn wall_budget_s(unknowns: usize, reps: usize) -> f64 {
    reps as f64 * (2e-4 * unknowns as f64).max(2.0)
}

struct ModeResult {
    /// Configured mode ("serial" | "per-op" | "team" | "auto").
    mode: &'static str,
    /// Concrete scheme that actually ran (differs from `mode` only for
    /// auto, which resolves per solve).
    exec: &'static str,
    threads: usize,
    iterations: usize,
    median_iter_s: f64,
    mad_iter_s: f64,
    regions_per_iter: f64,
    wall_s: f64,
    budget_s: f64,
    history: Vec<f64>,
}

struct ScalingRow {
    threads: usize,
    speedup_vs_nt1: f64,
    best_mode: &'static str,
    crossover_unknowns: Option<usize>,
    above_crossover: bool,
}

struct MeshReport {
    mesh: MeshPreset,
    unknowns: usize,
    rows: Vec<ModeResult>,
    scaling: Vec<ScalingRow>,
}

fn run_mesh(mesh: MeshPreset, threads: &[usize], reps: usize) -> MeshReport {
    // Fixture: the assembled first-step Jacobian and its ILU(1) factors —
    // the actual linear system the ΨNKS solve spends its time in.
    let fix = KernelFixture::new(mesh);
    let jac = jacobian_fixture(&fix, 2.0);
    let n = jac.dim();
    let b: Vec<f64> = (0..n).map(|i| ((i % 13) as f64 - 6.0) * 0.1).collect();
    let cfg = GmresConfig {
        rtol: 1e-10,
        max_iters: 400,
        ..Default::default()
    };
    let budget_s = wall_budget_s(n, reps);

    let mut rows: Vec<ModeResult> = Vec::new();
    let mut run = |mode: &'static str, nt: usize, pool: Option<&Arc<ThreadPool>>, ilu: &SerialIlu| {
        let mut samples = Vec::with_capacity(reps);
        let mut iterations = 0usize;
        let mut regions_per_iter = 0.0f64;
        let mut history = Vec::new();
        let mut exec_name = "serial";
        let wall = std::time::Instant::now();
        for _ in 0..reps {
            let mut x = vec![0.0; n];
            let mut gmres = Gmres::new(n, cfg);
            let exec = match (mode, pool) {
                ("serial", _) | (_, None) => GmresExec::Serial,
                ("per-op", Some(p)) => GmresExec::PerOp(p),
                ("team", Some(p)) => GmresExec::Team(p),
                (_, Some(p)) => GmresExec::Auto(p),
            };
            let regions_before = pool.map_or(0, |p| p.regions_launched());
            let t = std::time::Instant::now();
            let res = gmres.solve_with(&jac, ilu, &b, &mut x, exec);
            let secs = t.elapsed().as_secs_f64();
            let regions = pool.map_or(0, |p| p.regions_launched()) - regions_before;
            iterations = res.iterations;
            samples.push(secs / res.iterations.max(1) as f64);
            regions_per_iter = regions as f64 / res.iterations.max(1) as f64;
            exec_name = res.exec;
            history = res.history;
        }
        let wall_s = wall.elapsed().as_secs_f64();
        if wall_s > budget_s {
            eprintln!(
                "warning: {} {mode}@{nt}t took {wall_s:.1}s, over its {budget_s:.1}s budget",
                mesh.name()
            );
        }
        let (median_iter_s, mad_iter_s) = median_mad(&mut samples);
        rows.push(ModeResult {
            mode,
            exec: exec_name,
            threads: nt,
            iterations,
            median_iter_s,
            mad_iter_s,
            regions_per_iter,
            wall_s,
            budget_s,
            history,
        });
    };

    // The absolute baseline: plain serial execution, no pool at all.
    let serial_ilu = SerialIlu::new(&jac, 1);
    run("serial", 1, None, &serial_ilu);
    let mut scaling: Vec<ScalingRow> = Vec::new();
    let mut crossovers: Vec<(usize, Option<usize>)> = Vec::new();
    for &nt in threads {
        let pool = Arc::new(ThreadPool::new(nt));
        // Warm the policy's calibration cache before the timed reps:
        // the probe is a one-time per-process cost, not a per-solve
        // cost, and must not pollute the auto row's median.
        let policy = AutoPolicy::for_pool(&pool);
        let ilu = SerialIlu::new(&jac, 1).with_levels(pool.clone());
        for mode in ["per-op", "team"] {
            run(mode, nt, Some(&pool), &ilu);
        }
        // The auto row models a size-aware application: when the policy
        // resolves to serial, the pooled preconditioner is dropped too
        // (level-scheduled and serial sweeps are bitwise identical, so
        // the cross-mode history checks still hold).
        let auto_ilu = if policy.choose(n, nt) == fun3d_solver::ExecMode::Serial {
            &serial_ilu
        } else {
            &ilu
        };
        run("auto", nt, Some(&pool), auto_ilu);
        crossovers.push((nt, policy.crossover_unknowns(nt)));
    }

    // Sanity 1: per-op and team must agree bitwise at each thread count
    // (the "pure synchronization cost" claim — fail loudly if the
    // numerics ever drift).
    for &nt in threads {
        let find = |mode: &str| {
            rows.iter()
                .find(|r| r.mode == mode && r.threads == nt)
                .unwrap()
        };
        assert_eq!(
            find("per-op").history,
            find("team").history,
            "per-op and team histories diverged at {nt} threads ({})",
            mesh.name()
        );
        // Sanity 2: auto must be bitwise identical to the concrete mode
        // it reports having selected.
        let auto = find("auto");
        let reference = rows
            .iter()
            .find(|r| r.mode == auto.exec && (r.threads == nt || auto.exec == "serial"))
            .unwrap_or_else(|| panic!("auto selected unknown mode '{}'", auto.exec));
        assert_eq!(
            auto.history,
            reference.history,
            "auto diverged from its selected mode '{}' at {nt} threads ({})",
            auto.exec,
            mesh.name()
        );
    }

    // The scaling rows: best mode at nt vs best mode at the nt=1
    // baseline (serial included), per thread count.
    let best_at = |nt: usize| {
        rows.iter()
            .filter(|r| r.threads == nt)
            .min_by(|a, b| a.median_iter_s.partial_cmp(&b.median_iter_s).unwrap())
            .unwrap()
    };
    let best1 = best_at(1).median_iter_s;
    for &(nt, crossover) in &crossovers {
        if nt == 1 {
            continue;
        }
        let best = best_at(nt);
        scaling.push(ScalingRow {
            threads: nt,
            speedup_vs_nt1: best1 / best.median_iter_s,
            best_mode: best.mode,
            crossover_unknowns: crossover,
            above_crossover: crossover.is_some_and(|c| n >= c),
        });
    }

    MeshReport {
        mesh,
        unknowns: n,
        rows,
        scaling,
    }
}

/// `--check` mode: the artifact rot guard run by scripts/verify.sh.
fn check_artifact(path: &str) -> ! {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("check failed: cannot read {path}: {e}");
        std::process::exit(1);
    });
    let doc = Json::parse(&text).unwrap_or_else(|e| {
        eprintln!("check failed: {path} is not valid JSON: {e}");
        std::process::exit(1);
    });
    let mut problems = Vec::new();
    for key in ["reps", "thread_counts", "machine", "meshes"] {
        if doc.get(key).is_none() {
            problems.push(format!("missing key '{key}'"));
        }
    }
    let meshes = doc.get("meshes").and_then(Json::as_arr);
    match meshes {
        None => problems.push("'meshes' is not an array".to_string()),
        Some(ms) if ms.is_empty() => problems.push("'meshes' array is empty".to_string()),
        Some(ms) => {
            for m in ms {
                check_mesh(m, &mut problems);
            }
        }
    }
    if problems.is_empty() {
        println!("{path}: OK");
        std::process::exit(0);
    }
    for p in &problems {
        eprintln!("check failed: {p}");
    }
    std::process::exit(1);
}

fn check_mesh(m: &Json, problems: &mut Vec<String>) {
    let name = m
        .get("mesh")
        .and_then(Json::as_str)
        .unwrap_or("<unnamed>")
        .to_string();
    match m.get("unknowns").and_then(Json::as_f64) {
        Some(u) if u > 0.0 => {}
        _ => problems.push(format!("{name}: missing/non-positive 'unknowns'")),
    }
    let Some(cfgs) = m.get("configs").and_then(Json::as_arr) else {
        problems.push(format!("{name}: 'configs' is not an array"));
        return;
    };
    if cfgs.is_empty() {
        problems.push(format!("{name}: 'configs' array is empty"));
    }
    let mut per_op = std::collections::BTreeMap::new();
    let mut team = std::collections::BTreeMap::new();
    let mut has_serial = false;
    for c in cfgs {
        let threads = c.get("threads").and_then(Json::as_f64);
        let mode = c.get("mode").and_then(Json::as_str);
        let rpi = c.get("regions_per_iter").and_then(Json::as_f64);
        let med = c.get("median_iter_seconds").and_then(Json::as_f64);
        let speedup = c.get("speedup_vs_nt1_serial").and_then(Json::as_f64);
        let budget = c.get("wall_budget_seconds").and_then(Json::as_f64);
        match (threads, mode, rpi, med) {
            (Some(t), Some(mode), Some(rpi), Some(med)) => {
                if med <= 0.0 {
                    problems.push(format!("{name}: non-positive median at {t} threads"));
                }
                match speedup {
                    Some(s) if s > 0.0 => {}
                    _ => problems.push(format!(
                        "{name}: {mode}@{t}t missing/non-positive 'speedup_vs_nt1_serial'"
                    )),
                }
                if !matches!(budget, Some(b) if b > 0.0) {
                    problems.push(format!(
                        "{name}: {mode}@{t}t missing/non-positive 'wall_budget_seconds'"
                    ));
                }
                match mode {
                    "serial" => has_serial = true,
                    "per-op" => {
                        per_op.insert(t as usize, rpi);
                    }
                    "team" => {
                        team.insert(t as usize, rpi);
                    }
                    // auto's regions/iter track whatever mode it picked
                    "auto" => {}
                    other => problems.push(format!("{name}: unknown mode '{other}'")),
                }
            }
            _ => problems.push(format!("{name}: malformed config entry")),
        }
    }
    if !has_serial {
        problems.push(format!("{name}: no serial baseline row"));
    }
    // The structural claim of the experiment: persistent regions
    // collapse the fork-join count to ~1 per iteration, strictly
    // below the per-op count at every thread count.
    for (t, team_rpi) in &team {
        match per_op.get(t) {
            None => problems.push(format!("{name}: no per-op row for {t} threads")),
            Some(po_rpi) => {
                if team_rpi >= po_rpi {
                    problems.push(format!(
                        "{name}: team regions/iter {team_rpi} not below per-op {po_rpi} at {t} threads"
                    ));
                }
                if *team_rpi > 1.5 {
                    problems.push(format!(
                        "{name}: team regions/iter {team_rpi} at {t} threads (expected ~1)"
                    ));
                }
            }
        }
    }
    if team.is_empty() {
        problems.push(format!("{name}: no team rows"));
    }
    // The scaling section: one row per parallel thread count with a
    // positive best-mode speedup and the crossover verdict.
    match m.get("scaling").and_then(Json::as_arr) {
        None => problems.push(format!("{name}: 'scaling' is not an array")),
        Some(rows) => {
            if rows.is_empty() {
                problems.push(format!("{name}: 'scaling' array is empty"));
            }
            for r in rows {
                let t = r.get("threads").and_then(Json::as_f64);
                let s = r.get("speedup_vs_nt1").and_then(Json::as_f64);
                let above = matches!(r.get("above_crossover"), Some(Json::Bool(_)));
                match (t, s) {
                    (Some(_), Some(s)) if s > 0.0 && above => {}
                    _ => problems.push(format!("{name}: malformed scaling row")),
                }
            }
        }
    }
}

fn main() {
    let args = parse_args();
    if let Some(path) = &args.check {
        check_artifact(path);
    }

    let reports: Vec<MeshReport> = args
        .meshes
        .iter()
        .map(|&mesh| run_mesh(mesh, &args.threads, args.reps))
        .collect();

    let mut meshes_json = Vec::new();
    for rep in &reports {
        let mut table = Table::new(
            &format!(
                "sync_ablation: GMRES iteration cost by execution scheme \
                 ({}, {} unknowns, {} reps)",
                rep.mesh.name(),
                rep.unknowns,
                args.reps
            ),
            &[
                "threads",
                "mode",
                "exec",
                "iters",
                "s/iter (median)",
                "MAD",
                "regions/iter",
                "vs nt1 serial",
            ],
        );
        let serial_med = rep
            .rows
            .iter()
            .find(|r| r.mode == "serial")
            .expect("serial baseline row")
            .median_iter_s;
        let mut configs_json = Vec::new();
        for r in &rep.rows {
            let speedup_vs_serial = serial_med / r.median_iter_s;
            table.row(&[
                r.threads.to_string(),
                r.mode.to_string(),
                r.exec.to_string(),
                r.iterations.to_string(),
                fmt_g(r.median_iter_s),
                fmt_g(r.mad_iter_s),
                format!("{:.2}", r.regions_per_iter),
                format!("{speedup_vs_serial:.2}x"),
            ]);
            configs_json.push(Json::obj(vec![
                ("threads", Json::num(r.threads as f64)),
                ("mode", Json::str(r.mode)),
                ("exec", Json::str(r.exec)),
                ("iterations", Json::num(r.iterations as f64)),
                ("median_iter_seconds", Json::num(r.median_iter_s)),
                ("mad_iter_seconds", Json::num(r.mad_iter_s)),
                ("regions_per_iter", Json::num(r.regions_per_iter)),
                ("speedup_vs_nt1_serial", Json::num(speedup_vs_serial)),
                ("wall_seconds", Json::num(r.wall_s)),
                ("wall_budget_seconds", Json::num(r.budget_s)),
            ]));
        }
        fun3d_bench::emit(&format!("sync_ablation[{}]", rep.mesh.name()), &table);
        let scaling_json: Vec<Json> = rep
            .scaling
            .iter()
            .map(|s| {
                Json::obj(vec![
                    ("threads", Json::num(s.threads as f64)),
                    ("speedup_vs_nt1", Json::num(s.speedup_vs_nt1)),
                    ("best_mode", Json::str(s.best_mode)),
                    (
                        "crossover_unknowns",
                        s.crossover_unknowns
                            .map_or(Json::Null, |c| Json::num(c as f64)),
                    ),
                    ("above_crossover", Json::Bool(s.above_crossover)),
                ])
            })
            .collect();
        meshes_json.push(Json::obj(vec![
            ("mesh", Json::str(rep.mesh.name())),
            ("unknowns", Json::num(rep.unknowns as f64)),
            ("configs", Json::Arr(configs_json)),
            ("scaling", Json::Arr(scaling_json)),
        ]));
    }

    // Machine section: what the Auto policy saw (cores + the measured
    // sync costs + modeled crossover per thread count).
    let machine_scaling: Vec<Json> = args
        .threads
        .iter()
        .filter(|&&nt| nt > 1)
        .map(|&nt| {
            let pool = ThreadPool::new(nt);
            let p = AutoPolicy::for_pool(&pool);
            Json::obj(vec![
                ("threads", Json::num(nt as f64)),
                ("region_launch_seconds", Json::num(p.region_launch_s)),
                ("barrier_phase_seconds", Json::num(p.barrier_phase_s)),
                (
                    "crossover_unknowns",
                    p.crossover_unknowns(nt)
                        .map_or(Json::Null, |c| Json::num(c as f64)),
                ),
            ])
        })
        .collect();
    let machine = Json::obj(vec![
        (
            "effective_cores",
            Json::num(
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1) as f64,
            ),
        ),
        ("scaling", Json::Arr(machine_scaling)),
    ]);

    let summary = Json::obj(vec![
        ("reps", Json::num(args.reps as f64)),
        (
            "thread_counts",
            Json::Arr(args.threads.iter().map(|&t| Json::num(t as f64)).collect()),
        ),
        ("machine", machine),
        ("meshes", Json::Arr(meshes_json)),
    ]);
    let dir = experiments_dir();
    match write_json(&dir, "sync_ablation", &summary) {
        Ok(p) => println!("[json summary written to {}]", p.display()),
        Err(e) => eprintln!("warning: could not write json summary: {e}"),
    }
}
