//! **sync_ablation** — synchronization-cost ablation for the solver.
//!
//! Region-per-op GMRES launches a pool region (a full fork-join
//! rendezvous) for *every* vector op, SpMV, and triangular sweep;
//! persistent-SPMD-region GMRES runs each Arnoldi iteration inside ONE
//! region with spin-barrier phases and tree reductions inside. The two
//! paths are bitwise identical at a fixed thread count, so any timing
//! difference is pure synchronization cost — the shared-memory analogue
//! of the paper's collectives discussion (the `MPI_Allreduce`-bound
//! vector ops of Table 3).
//!
//! Emits, per thread count and mode:
//!
//! * median and MAD of the per-GMRES-iteration wall time;
//! * pool regions launched per GMRES iteration (the fork-join count the
//!   persistent restructuring is designed to collapse to ~1);
//!
//! and writes `target/experiments/sync_ablation.json`.
//!
//! Usage: `sync_ablation [--mesh <preset>] [--reps <n>] [--check <file>]`

use fun3d_bench::{jacobian_fixture, KernelFixture};
use fun3d_mesh::generator::MeshPreset;
use fun3d_solver::{Gmres, GmresConfig, GmresExec, SerialIlu};
use fun3d_threads::ThreadPool;
use fun3d_util::report::{experiments_dir, fmt_g, write_json, Table};
use fun3d_util::telemetry::json::Json;
use std::sync::Arc;

struct Args {
    mesh: MeshPreset,
    reps: usize,
    check: Option<String>,
}

fn parse_args() -> Args {
    let mut out = Args {
        mesh: MeshPreset::Tiny,
        reps: 5,
        check: None,
    };
    let args: Vec<String> = std::env::args().collect();
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--mesh" => {
                i += 1;
                out.mesh = MeshPreset::parse(&args[i])
                    .unwrap_or_else(|| panic!("unknown mesh preset '{}'", args[i]));
            }
            "--reps" => {
                i += 1;
                out.reps = args[i].parse().expect("--reps takes an integer");
            }
            "--check" => {
                i += 1;
                out.check = Some(args[i].clone());
            }
            "--help" | "-h" => {
                eprintln!("options: --mesh <tiny|small|medium|large> --reps <n> --check <json>");
                std::process::exit(0);
            }
            other => panic!("unknown argument '{other}'"),
        }
        i += 1;
    }
    out
}

/// (median, MAD) of a sample set; MAD is reported in the same units.
fn median_mad(samples: &mut [f64]) -> (f64, f64) {
    assert!(!samples.is_empty());
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let med = samples[samples.len() / 2];
    let mut dev: Vec<f64> = samples.iter().map(|s| (s - med).abs()).collect();
    dev.sort_by(|a, b| a.partial_cmp(b).unwrap());
    (med, dev[dev.len() / 2])
}

struct ModeResult {
    mode: &'static str,
    threads: usize,
    iterations: usize,
    median_iter_s: f64,
    mad_iter_s: f64,
    regions_per_iter: f64,
    history: Vec<f64>,
}

/// `--check` mode: the artifact rot guard run by scripts/verify.sh.
fn check_artifact(path: &str) -> ! {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("check failed: cannot read {path}: {e}");
        std::process::exit(1);
    });
    let doc = Json::parse(&text).unwrap_or_else(|e| {
        eprintln!("check failed: {path} is not valid JSON: {e}");
        std::process::exit(1);
    });
    let mut problems = Vec::new();
    for key in ["mesh", "reps", "configs"] {
        if doc.get(key).is_none() {
            problems.push(format!("missing key '{key}'"));
        }
    }
    let configs = doc.get("configs").and_then(Json::as_arr);
    match configs {
        None => problems.push("'configs' is not an array".to_string()),
        Some(cfgs) => {
            if cfgs.is_empty() {
                problems.push("'configs' array is empty".to_string());
            }
            let mut per_op = std::collections::BTreeMap::new();
            let mut team = std::collections::BTreeMap::new();
            for c in cfgs {
                let threads = c.get("threads").and_then(Json::as_f64);
                let mode = c.get("mode").and_then(Json::as_str);
                let rpi = c.get("regions_per_iter").and_then(Json::as_f64);
                let med = c.get("median_iter_seconds").and_then(Json::as_f64);
                match (threads, mode, rpi, med) {
                    (Some(t), Some(mode), Some(rpi), Some(med)) => {
                        if med <= 0.0 {
                            problems.push(format!("non-positive median at {t} threads"));
                        }
                        match mode {
                            "per-op" => {
                                per_op.insert(t as usize, rpi);
                            }
                            "team" => {
                                team.insert(t as usize, rpi);
                            }
                            other => problems.push(format!("unknown mode '{other}'")),
                        }
                    }
                    _ => problems.push("malformed config entry".to_string()),
                }
            }
            // The structural claim of the experiment: persistent regions
            // collapse the fork-join count to ~1 per iteration, strictly
            // below the per-op count at every thread count.
            for (t, team_rpi) in &team {
                match per_op.get(t) {
                    None => problems.push(format!("no per-op row for {t} threads")),
                    Some(po_rpi) => {
                        if team_rpi >= po_rpi {
                            problems.push(format!(
                                "team regions/iter {team_rpi} not below per-op {po_rpi} at {t} threads"
                            ));
                        }
                        if *team_rpi > 1.5 {
                            problems.push(format!(
                                "team regions/iter {team_rpi} at {t} threads (expected ~1)"
                            ));
                        }
                    }
                }
            }
            if team.is_empty() {
                problems.push("no team rows".to_string());
            }
        }
    }
    if problems.is_empty() {
        println!("{path}: OK");
        std::process::exit(0);
    }
    for p in &problems {
        eprintln!("check failed: {p}");
    }
    std::process::exit(1);
}

fn main() {
    let args = parse_args();
    if let Some(path) = &args.check {
        check_artifact(path);
    }

    // Fixture: the assembled first-step Jacobian and its ILU(1) factors —
    // the actual linear system the ΨNKS solve spends its time in.
    let fix = KernelFixture::new(args.mesh);
    let jac = jacobian_fixture(&fix, 2.0);
    let n = jac.dim();
    let b: Vec<f64> = (0..n).map(|i| ((i % 13) as f64 - 6.0) * 0.1).collect();
    let cfg = GmresConfig {
        rtol: 1e-10,
        max_iters: 400,
        ..Default::default()
    };

    let thread_counts = [1usize, 2, 4];
    let mut results: Vec<ModeResult> = Vec::new();

    for &nt in &thread_counts {
        let pool = Arc::new(ThreadPool::new(nt));
        let ilu = SerialIlu::new(&jac, 1).with_levels(pool.clone());
        for mode in ["per-op", "team"] {
            let mut samples = Vec::with_capacity(args.reps);
            let mut iterations = 0usize;
            let mut regions_per_iter = 0.0f64;
            let mut history = Vec::new();
            for _ in 0..args.reps {
                let mut x = vec![0.0; n];
                let mut gmres = Gmres::new(n, cfg);
                let exec = match mode {
                    "per-op" => GmresExec::PerOp(&pool),
                    _ => GmresExec::Team(&pool),
                };
                let regions_before = pool.regions_launched();
                let t = std::time::Instant::now();
                let res = gmres.solve_with(&jac, &ilu, &b, &mut x, exec);
                let secs = t.elapsed().as_secs_f64();
                let regions = pool.regions_launched() - regions_before;
                iterations = res.iterations;
                samples.push(secs / res.iterations.max(1) as f64);
                regions_per_iter = regions as f64 / res.iterations.max(1) as f64;
                history = res.history;
            }
            let (median_iter_s, mad_iter_s) = median_mad(&mut samples);
            results.push(ModeResult {
                mode,
                threads: nt,
                iterations,
                median_iter_s,
                mad_iter_s,
                regions_per_iter,
                history,
            });
        }
    }

    // Sanity: per-op and team must agree bitwise at each thread count
    // (this is the "pure synchronization cost" claim — fail loudly if
    // the numerics ever drift).
    for pair in results.chunks(2) {
        assert_eq!(
            pair[0].history, pair[1].history,
            "per-op and team histories diverged at {} threads",
            pair[0].threads
        );
    }

    let mut table = Table::new(
        &format!(
            "sync_ablation: GMRES iteration cost, region-per-op vs persistent regions \
             ({}, {} unknowns, {} reps)",
            args.mesh.name(),
            n,
            args.reps
        ),
        &[
            "threads", "mode", "iters", "s/iter (median)", "MAD", "regions/iter", "speedup",
        ],
    );
    let mut configs_json = Vec::new();
    for r in &results {
        let per_op_median = results
            .iter()
            .find(|q| q.threads == r.threads && q.mode == "per-op")
            .map(|q| q.median_iter_s)
            .unwrap_or(r.median_iter_s);
        table.row(&[
            r.threads.to_string(),
            r.mode.to_string(),
            r.iterations.to_string(),
            fmt_g(r.median_iter_s),
            fmt_g(r.mad_iter_s),
            format!("{:.2}", r.regions_per_iter),
            format!("{:.2}x", per_op_median / r.median_iter_s),
        ]);
        configs_json.push(Json::obj(vec![
            ("threads", Json::num(r.threads as f64)),
            ("mode", Json::str(r.mode)),
            ("iterations", Json::num(r.iterations as f64)),
            ("median_iter_seconds", Json::num(r.median_iter_s)),
            ("mad_iter_seconds", Json::num(r.mad_iter_s)),
            ("regions_per_iter", Json::num(r.regions_per_iter)),
            ("speedup_vs_per_op", Json::num(per_op_median / r.median_iter_s)),
        ]));
    }
    fun3d_bench::emit("sync_ablation", &table);

    let summary = Json::obj(vec![
        ("mesh", Json::str(args.mesh.name())),
        ("reps", Json::num(args.reps as f64)),
        ("unknowns", Json::num(n as f64)),
        ("configs", Json::Arr(configs_json)),
    ]);
    let dir = experiments_dir();
    match write_json(&dir, "sync_ablation", &summary) {
        Ok(p) => println!("[json summary written to {}]", p.display()),
        Err(e) => eprintln!("warning: could not write json summary: {e}"),
    }
}
