//! **Figure 7a** — ILU and TRSV optimization speed-ups.
//!
//! Paper (Mesh-C, 10 cores / 20 threads): ILU 9.4×, TRSV 3.2× over the
//! sequential code, via level scheduling → P2P sparsification →
//! compressed ILU temporary buffer → in-block SIMD.
//!
//! Host-measured rows cover the single-thread algorithmic options
//! (compressed vs full ILU buffer) on this container; modeled rows
//! charge the paper machine with the *real* schedules built from the
//! real factor patterns (level widths, P2P wait counts, critical path).

use fun3d_bench::{emit, fmt_x, jacobian_fixture, measure, KernelFixture};
use fun3d_machine::{kernels, MachineSpec, RecurrenceCosts};
use fun3d_mesh::generator::MeshPreset;
use fun3d_sparse::{ilu, trsv, DagStats, LevelSchedule, P2pSchedule, TempBuffer};
use fun3d_util::report::{fmt_g, Table};

fn main() {
    let cli = fun3d_bench::Cli::parse(MeshPreset::Medium);
    let fix = KernelFixture::new(cli.mesh);
    let jac = jacobian_fixture(&fix, 1.0);
    let pattern = ilu::symbolic_iluk(&jac, 1); // PETSc-FUN3D default: ILU(1)
    let factors = ilu::factor(&jac, &pattern, TempBuffer::Compressed);
    let n = jac.dim();
    let b: Vec<f64> = (0..n).map(|i| (i as f64 * 0.13).sin()).collect();

    // ---- host-measured single-thread options ------------------------
    let t_ilu_full = measure(cli.reps, || {
        std::hint::black_box(ilu::factor(&jac, &pattern, TempBuffer::Full));
    });
    let t_ilu_comp = measure(cli.reps, || {
        std::hint::black_box(ilu::factor(&jac, &pattern, TempBuffer::Compressed));
    });
    let t_trsv = measure(cli.reps, || {
        std::hint::black_box(trsv::solve(&factors, &b));
    });
    let mut host = Table::new(
        "Fig. 7a (host-measured, serial): ILU/TRSV single-thread options",
        &["kernel / option", "seconds", "speedup"],
    );
    host.row(&["ILU(1), full temp buffer".into(), fmt_g(t_ilu_full), fmt_x(1.0)]);
    host.row(&[
        "ILU(1), compressed buffer".into(),
        fmt_g(t_ilu_comp),
        fmt_x(t_ilu_full / t_ilu_comp),
    ]);
    host.row(&["TRSV (fwd+bwd, stored D^-1)".into(), fmt_g(t_trsv), "-".into()]);
    emit("fig7a_recurrence_host", &host);

    // ---- modeled parallel strategies on the paper machine ----------
    let machine = MachineSpec::xeon_e5_2690v2();
    let costs = RecurrenceCosts::default();
    let threads = machine.cores * machine.smt;

    // Real schedules from the real factor patterns.
    let lvl_f = LevelSchedule::forward(&factors.l);
    let lvl_b = LevelSchedule::backward(&factors.u);
    let p2p_f = P2pSchedule::forward(&factors.l, threads);
    let p2p_b = P2pSchedule::backward(&factors.u, threads);

    let blocks_of_row_fwd: Vec<usize> = (0..factors.nrows())
        .map(|r| factors.l.row_ptr[r + 1] - factors.l.row_ptr[r] + 1)
        .collect();
    let blocks_of_row_bwd: Vec<usize> = (0..factors.nrows())
        .map(|r| factors.u.row_ptr[r + 1] - factors.u.row_ptr[r] + 1)
        .collect();
    let level_weights = |s: &LevelSchedule, blocks: &[usize]| -> Vec<Vec<usize>> {
        s.rows
            .iter()
            .map(|rows| rows.iter().map(|&r| blocks[r as usize]).collect())
            .collect()
    };
    let p2p_loads = |s: &P2pSchedule, blocks: &[usize]| -> (Vec<usize>, Vec<usize>) {
        let loads = s
            .tasks
            .iter()
            .map(|t| t.iter().map(|task| blocks[task.row as usize]).sum())
            .collect();
        let waits = s
            .tasks
            .iter()
            .map(|t| t.iter().map(|task| task.waits.len()).sum())
            .collect();
        (loads, waits)
    };
    let dag = DagStats::for_trsv(&factors.l, &factors.u);
    let critical_blocks = dag.critical_flops / 32.0;

    // TRSV: serial, level-scheduled, p2p
    let total_blocks: usize =
        blocks_of_row_fwd.iter().sum::<usize>() + blocks_of_row_bwd.iter().sum::<usize>();
    let trsv_serial = machine.seconds(total_blocks as f64 * costs.trsv_cycles_per_block);
    let trsv_level = kernels::level_sched_time(
        &machine,
        threads,
        &level_weights(&lvl_f, &blocks_of_row_fwd),
        costs.trsv_cycles_per_block,
        costs.trsv_bytes_per_block,
    ) + kernels::level_sched_time(
        &machine,
        threads,
        &level_weights(&lvl_b, &blocks_of_row_bwd),
        costs.trsv_cycles_per_block,
        costs.trsv_bytes_per_block,
    );
    let (fw_loads, fw_waits) = p2p_loads(&p2p_f, &blocks_of_row_fwd);
    let (bw_loads, bw_waits) = p2p_loads(&p2p_b, &blocks_of_row_bwd);
    let trsv_p2p = kernels::p2p_time(
        &machine,
        &fw_loads,
        &fw_waits,
        critical_blocks / 2.0,
        costs.trsv_cycles_per_block,
        costs.trsv_bytes_per_block,
    ) + kernels::p2p_time(
        &machine,
        &bw_loads,
        &bw_waits,
        critical_blocks / 2.0,
        costs.trsv_cycles_per_block,
        costs.trsv_bytes_per_block,
    );

    // ILU: same DAG as the forward sweep, heavier per-block work.
    let ilu_blocks_of_row: Vec<usize> = (0..factors.nrows())
        .map(|r| {
            let low = factors.l.row_ptr[r + 1] - factors.l.row_ptr[r];
            let updates: usize = factors.l.col_idx
                [factors.l.row_ptr[r]..factors.l.row_ptr[r + 1]]
                .iter()
                .map(|&k| factors.u.row_ptr[k as usize + 1] - factors.u.row_ptr[k as usize])
                .sum();
            low + updates + 1
        })
        .collect();
    let ilu_total: usize = ilu_blocks_of_row.iter().sum();
    let ilu_serial = machine.seconds(ilu_total as f64 * costs.ilu_cycles_per_block);
    let ilu_level = kernels::level_sched_time(
        &machine,
        threads,
        &level_weights(&lvl_f, &ilu_blocks_of_row),
        costs.ilu_cycles_per_block,
        costs.ilu_bytes_per_block,
    );
    let (ilu_loads, ilu_waits) = p2p_loads(&p2p_f, &ilu_blocks_of_row);
    let ilu_dag = DagStats::for_ilu(&pattern);
    let ilu_p2p = kernels::p2p_time(
        &machine,
        &ilu_loads,
        &ilu_waits,
        ilu_dag.critical_flops / 128.0,
        costs.ilu_cycles_per_block,
        costs.ilu_bytes_per_block,
    );

    let mut model = Table::new(
        "Fig. 7a (modeled Xeon E5-2690v2, 10c/20t): parallel strategies",
        &["kernel", "strategy", "modeled seconds", "speedup vs serial"],
    );
    model.row(&["TRSV".into(), "serial".into(), fmt_g(trsv_serial), fmt_x(1.0)]);
    model.row(&[
        "TRSV".into(),
        "level scheduling".into(),
        fmt_g(trsv_level),
        fmt_x(trsv_serial / trsv_level),
    ]);
    model.row(&[
        "TRSV".into(),
        "P2P sparsified".into(),
        fmt_g(trsv_p2p),
        fmt_x(trsv_serial / trsv_p2p),
    ]);
    model.row(&["ILU".into(), "serial".into(), fmt_g(ilu_serial), fmt_x(1.0)]);
    model.row(&[
        "ILU".into(),
        "level scheduling".into(),
        fmt_g(ilu_level),
        fmt_x(ilu_serial / ilu_level),
    ]);
    model.row(&[
        "ILU".into(),
        "P2P sparsified".into(),
        fmt_g(ilu_p2p),
        fmt_x(ilu_serial / ilu_p2p),
    ]);
    emit("fig7a_recurrence_model", &model);

    println!(
        "\nschedule stats: {} fwd levels (avg width {:.1}), P2P waits {} of {} raw cross deps ({:.0}% sparsified)",
        lvl_f.nlevels(),
        lvl_f.avg_width(),
        p2p_f.nwaits,
        p2p_f.raw_cross_deps,
        100.0 * p2p_f.sparsification_ratio()
    );
    println!("paper: ILU 9.4x, TRSV 3.2x at 10 cores / 20 threads");
}
