//! **Figure 6b** — flux kernel scaling with cores for the three
//! partitioning strategies.
//!
//! Paper: "Basic partitioning with atomics" scales linearly but is slow
//! (atomic overhead); "Basic partitioning with replication" (natural
//! vertex split, owner-only writes) is faster but stops scaling (41%
//! redundant compute at 20 threads + imbalance); "METIS based
//! partitioning" is fastest and near-linear (4% replication).
//!
//! Per-thread workloads come from the *real* plans built on the real
//! mesh; the timing model charges the paper machine's costs. The real
//! threaded kernels themselves are validated against the serial kernel
//! in the test suite (bitwise for owner-writes).

use fun3d_bench::{emit, KernelFixture, THREAD_SWEEP};
use fun3d_core::counts;
use fun3d_machine::{kernels, EdgeLoopCosts, MachineSpec};
use fun3d_mesh::generator::MeshPreset;
use fun3d_partition::{
    natural_partition, partition_graph, EdgeTiling, MultilevelConfig, OwnerWritesPlan, TileQuality,
    TilingConfig,
};
use fun3d_util::report::Table;

fn main() {
    let cli = fun3d_bench::Cli::parse(MeshPreset::Medium);
    let fix = KernelFixture::new(cli.mesh);
    let machine = MachineSpec::xeon_e5_2690v2();
    let costs = EdgeLoopCosts::default();
    let graph = fun3d_mesh::Graph::from_edges(fix.mesh.nvertices(), &fix.geom.edges);
    let ne = fix.geom.nedges();

    let serial =
        kernels::edge_loop_time(&machine, &[ne], costs.scalar_aos, costs.dram_bytes_per_edge, 0.0);

    // Tiled staging: the same tiling serves every core count (tiles are
    // the unit of scheduling); its measured reuse scales the DRAM
    // traffic the model charges per edge.
    let tiling = EdgeTiling::build(
        fix.mesh.nvertices(),
        &fix.geom.edges,
        &TilingConfig::for_machine(&machine),
    );
    let tiled_bytes = costs.dram_bytes_per_edge
        * (counts::flux_tiled(ne, tiling.vertex_slots()).bytes() as f64
            / counts::flux(ne).bytes() as f64);

    let mut table = Table::new(
        "Fig. 6b: flux kernel speedup vs cores, per partitioning strategy (modeled)",
        &[
            "cores",
            "atomics",
            "natural replication",
            "METIS replication",
            "tiled staging",
            "natural repl. %",
            "METIS repl. %",
        ],
    );
    for &cores in &THREAD_SWEEP {
        let threads = cores * machine.smt;
        // Atomics: natural edge split, 8 atomic RMWs per edge.
        let per_thread_atomic: Vec<usize> = (0..threads)
            .map(|t| fun3d_threads::chunk_range(ne, threads, t).len())
            .collect();
        let t_atomic = kernels::edge_loop_time(
            &machine,
            &per_thread_atomic,
            costs.scalar_aos,
            costs.dram_bytes_per_edge,
            8.0,
        );
        // Natural owner-writes.
        let nat_plan = OwnerWritesPlan::build(
            &fix.geom.edges,
            &natural_partition(fix.mesh.nvertices(), threads),
            threads,
        );
        let nat: Vec<usize> = nat_plan.edges_of.iter().map(Vec::len).collect();
        let t_nat =
            kernels::edge_loop_time(&machine, &nat, costs.scalar_aos, costs.dram_bytes_per_edge, 0.0);
        // METIS owner-writes.
        let ml_plan = OwnerWritesPlan::build(
            &fix.geom.edges,
            &partition_graph(&graph, threads, &MultilevelConfig::default()),
            threads,
        );
        let ml: Vec<usize> = ml_plan.edges_of.iter().map(Vec::len).collect();
        let t_ml =
            kernels::edge_loop_time(&machine, &ml, costs.scalar_aos, costs.dram_bytes_per_edge, 0.0);
        // Tiled: color classes split across threads, reuse-shrunk traffic.
        let tiled: Vec<usize> = (0..threads)
            .map(|t| {
                (0..tiling.ncolors())
                    .map(|c| {
                        let class = &tiling.color_tiles[c];
                        fun3d_threads::chunk_range(class.len(), threads, t)
                            .map(|i| tiling.tiles[class[i] as usize].edges.len())
                            .sum::<usize>()
                    })
                    .sum()
            })
            .collect();
        let t_tiled = kernels::edge_loop_time(&machine, &tiled, costs.scalar_aos, tiled_bytes, 0.0);

        table.row(&[
            cores.to_string(),
            format!("{:.2}x", serial / t_atomic),
            format!("{:.2}x", serial / t_nat),
            format!("{:.2}x", serial / t_ml),
            format!("{:.2}x", serial / t_tiled),
            format!("{:.1}%", 100.0 * nat_plan.replication_overhead()),
            format!("{:.1}%", 100.0 * ml_plan.replication_overhead()),
        ]);
    }
    emit("fig6b_flux_scaling", &table);
    println!("tile quality: {}", TileQuality::of(&tiling).summary());
    println!("\npaper: METIS near-linear and fastest; natural replication 41% redundant at 20 thr; atomics scale but slowly");
}
