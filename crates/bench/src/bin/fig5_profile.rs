//! **Figure 5** — performance profile of the base (serial) application.
//!
//! Paper shares on Mesh-C: flux 42%, TRSV (MatSolve) 17%, ILU 16%,
//! gradient 13%, Jacobian construction 7% — together 95%, rest 5%.

use fun3d_bench::{build_mesh, emit};
use fun3d_core::{Fun3dApp, FlowConditions, OptConfig};
use fun3d_mesh::generator::MeshPreset;
use fun3d_solver::ptc::PtcConfig;
use fun3d_util::report::{fmt_g, Table};

fn main() {
    let cli = fun3d_bench::Cli::parse(MeshPreset::Medium);
    let mesh = build_mesh(cli.mesh);
    let mut app = Fun3dApp::new(mesh, FlowConditions::default(), OptConfig::baseline());
    let (_, stats) = app.run(&PtcConfig {
        dt0: 2.0,
        rtol: 1e-8,
        max_steps: 100,
        ..Default::default()
    });
    assert!(stats.converged, "baseline run failed to converge");

    let prof = app.profile();
    // percentage denominator: the "total" envelope bucket (run_seconds
    // falls back to the kernel sum if the envelope is ever absent)
    let total = prof.run_seconds();
    let tracked: f64 = ["flux", "trsv", "ilu", "gradient", "jacobian"]
        .iter()
        .map(|k| prof.seconds(k))
        .sum();

    let mut table = Table::new(
        "Fig. 5: profile of the base application (serial)",
        &["kernel", "seconds", "% of total", "paper %"],
    );
    let paper = [
        ("flux", 42.0),
        ("trsv", 17.0),
        ("ilu", 16.0),
        ("gradient", 13.0),
        ("jacobian", 7.0),
    ];
    for (kernel, paper_pct) in paper {
        let secs = prof.seconds(kernel);
        table.row(&[
            kernel.to_string(),
            fmt_g(secs),
            format!("{:.1}%", 100.0 * secs / total),
            format!("{paper_pct:.0}%"),
        ]);
    }
    table.row(&[
        "other".to_string(),
        fmt_g(total - tracked),
        format!("{:.1}%", 100.0 * (total - tracked) / total),
        "5%".to_string(),
    ]);
    table.row(&[
        "total".to_string(),
        fmt_g(total),
        "100.0%".to_string(),
        "100%".to_string(),
    ]);
    emit("fig5_profile", &table);
    println!(
        "\nrun: {} time steps, {} linear iterations",
        stats.time_steps, stats.linear_iters
    );
}
