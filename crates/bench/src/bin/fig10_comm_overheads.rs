//! **Figure 10** — communication overheads in the Mesh-D scaling study.
//!
//! Paper: communication grows to ~70% of execution time at 256 nodes;
//! 90%+ of it is `MPI_Allreduce` (the Krylov inner products); point-to-
//! point halo traffic is under 5%.

use fun3d_bench::emit;
use fun3d_bench::multinode as fig9;
use fun3d_cluster::scaling::{simulate_point, ExecStyle, ScalingConfig};
use fun3d_machine::{MachineSpec, NetworkSpec};
use fun3d_mesh::generator::MeshPreset;
use fun3d_util::report::Table;

fn main() {
    let cli = fun3d_bench::Cli::parse(MeshPreset::Medium);
    let machine = MachineSpec::xeon_e5_2680();
    let net = NetworkSpec::stampede_fdr();
    let sm = fig9::calibrate(&cli.mesh);
    let cfg = ScalingConfig::mesh_d(ExecStyle::Optimized);

    let mut table = Table::new(
        "Fig. 10: communication overheads vs nodes (modeled, optimized MPI-only)",
        &[
            "nodes",
            "compute (s)",
            "allreduce (s)",
            "p2p halo (s)",
            "comm fraction",
            "allreduce share of comm",
        ],
    );
    for nodes in fig9::NODES {
        let w = fig9::workload(&cli.mesh, &sm, &cfg, nodes);
        let p = simulate_point(&machine, &net, &cfg, nodes, &w);
        table.row(&[
            nodes.to_string(),
            format!("{:.2}", p.compute_s),
            format!("{:.2}", p.allreduce_s),
            format!("{:.3}", p.halo_s),
            format!("{:.0}%", 100.0 * p.comm_fraction()),
            format!("{:.0}%", 100.0 * p.allreduce_share()),
        ]);
    }
    emit("fig10_comm_overheads", &table);
    println!("\npaper: ~70% comm at 256 nodes, 90%+ of it allreduce, <5% point-to-point");
}
